#include "faultinject/faulty_link.h"

#include <gtest/gtest.h>

#include <string>

#include "common/clock.h"
#include "faultinject/schedule.h"
#include "obs/registry.h"
#include "transport/link.h"

namespace admire::faultinject {
namespace {

Bytes msg(const std::string& s) { return to_bytes(s); }

std::string text(const Bytes& b) {
  return std::string(as_string_view(ByteSpan(b.data(), b.size())));
}

using LinkPair = std::pair<std::shared_ptr<transport::MessageLink>,
                           std::shared_ptr<transport::MessageLink>>;

TEST(FaultyLink, NoFaultsIsTransparent) {
  auto [a, b] = transport::make_inprocess_link_pair(16);
  FaultyLink faulty(a);
  ASSERT_TRUE(b->send(msg("hello")).is_ok());
  auto got = faulty.receive_for(std::chrono::milliseconds(200));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(text(*got), "hello");
  ASSERT_TRUE(faulty.send(msg("back")).is_ok());
  auto back = b->receive_for(std::chrono::milliseconds(200));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(text(*back), "back");
}

TEST(FaultyLink, CrashStopBlackHolesBothDirections) {
  auto [a, b] = transport::make_inprocess_link_pair(16);
  FaultyLink faulty(a);
  faulty.crash();
  EXPECT_TRUE(faulty.crashed());
  // Outbound: swallowed silently (a crashed node does not error politely).
  ASSERT_TRUE(faulty.send(msg("out")).is_ok());
  EXPECT_FALSE(b->receive_for(std::chrono::milliseconds(50)).has_value());
  // Inbound: pulled off the wire and discarded.
  ASSERT_TRUE(b->send(msg("in")).is_ok());
  EXPECT_FALSE(faulty.receive_for(std::chrono::milliseconds(50)).has_value());
  EXPECT_EQ(faulty.dropped(), 2u);
  // heal() restores the pipe.
  faulty.heal();
  ASSERT_TRUE(b->send(msg("again")).is_ok());
  auto got = faulty.receive_for(std::chrono::milliseconds(200));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(text(*got), "again");
}

TEST(FaultyLink, OneWayPartitions) {
  auto [a, b] = transport::make_inprocess_link_pair(16);
  FaultyLink faulty(a);
  FaultSpec spec;
  spec.partition_in = true;
  faulty.set_faults(spec);
  ASSERT_TRUE(b->send(msg("lost")).is_ok());
  EXPECT_FALSE(faulty.receive_for(std::chrono::milliseconds(50)).has_value());
  // The other direction still works.
  ASSERT_TRUE(faulty.send(msg("through")).is_ok());
  EXPECT_TRUE(b->receive_for(std::chrono::milliseconds(200)).has_value());

  spec.partition_in = false;
  spec.partition_out = true;
  faulty.set_faults(spec);
  ASSERT_TRUE(faulty.send(msg("swallowed")).is_ok());
  EXPECT_FALSE(b->receive_for(std::chrono::milliseconds(50)).has_value());
}

TEST(FaultyLink, DeterministicDropSequence) {
  auto run = [](std::uint64_t seed) {
    auto [a, b] = transport::make_inprocess_link_pair(64);
    FaultyLink faulty(a, seed);
    FaultSpec spec;
    spec.drop_recv = 0.5;
    faulty.set_faults(spec);
    std::vector<std::string> delivered;
    for (int i = 0; i < 32; ++i) {
      EXPECT_TRUE(b->send(msg("m" + std::to_string(i))).is_ok());
    }
    while (auto got = faulty.receive_for(std::chrono::milliseconds(20))) {
      delivered.push_back(text(*got));
    }
    return delivered;
  };
  const auto first = run(7);
  const auto second = run(7);
  EXPECT_EQ(first, second);           // same seed -> same survivors
  EXPECT_FALSE(first.empty());
  EXPECT_LT(first.size(), 32u);       // some messages actually dropped
  EXPECT_NE(run(8), first);           // different seed -> different pattern
}

TEST(FaultyLink, DelayHoldsDeliveryOnInjectedClock) {
  auto clock = std::make_shared<ManualClock>();
  auto [a, b] = transport::make_inprocess_link_pair(16);
  FaultyLink faulty(a, 0xFA17, clock);
  FaultSpec spec;
  spec.delay = 10 * kMilli;
  faulty.set_faults(spec);
  ASSERT_TRUE(b->send(msg("slow")).is_ok());
  // The manual clock never advances inside this call: not yet visible.
  EXPECT_FALSE(faulty.receive_for(std::chrono::milliseconds(20)).has_value());
  clock->advance(11 * kMilli);
  auto got = faulty.receive_for(std::chrono::milliseconds(200));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(text(*got), "slow");
  EXPECT_EQ(faulty.delayed(), 1u);
}

TEST(FaultyLink, DuplicateDeliversTwice) {
  auto [a, b] = transport::make_inprocess_link_pair(16);
  FaultyLink faulty(a);
  FaultSpec spec;
  spec.duplicate = 1.0;
  faulty.set_faults(spec);
  ASSERT_TRUE(b->send(msg("twin")).is_ok());
  auto first = faulty.receive_for(std::chrono::milliseconds(200));
  auto second = faulty.receive_for(std::chrono::milliseconds(200));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(text(*first), "twin");
  EXPECT_EQ(text(*second), "twin");
  EXPECT_EQ(faulty.duplicated(), 1u);
}

TEST(FaultyLink, MetricsExported) {
  obs::Registry registry;
  auto [a, b] = transport::make_inprocess_link_pair(16);
  FaultyLink faulty(a);
  faulty.instrument(registry, "hb.mirror1");
  faulty.crash();
  ASSERT_TRUE(b->send(msg("x")).is_ok());
  EXPECT_FALSE(faulty.receive_for(std::chrono::milliseconds(50)).has_value());
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter_or("faults.link.hb.mirror1.dropped_total"), 1u);
}

TEST(Schedule, ActionsSortedAndDueWindowed) {
  Schedule schedule{
      {.at = 30 * kMilli, .mirror = 1, .kind = FaultKind::kHeal},
      {.at = 10 * kMilli, .mirror = 0, .kind = FaultKind::kCrashStop},
      {.at = 20 * kMilli, .mirror = 1, .kind = FaultKind::kPartitionIn},
  };
  ASSERT_EQ(schedule.actions().size(), 3u);
  EXPECT_EQ(schedule.actions()[0].kind, FaultKind::kCrashStop);
  EXPECT_EQ(schedule.actions()[2].kind, FaultKind::kHeal);
  // (from, to] semantics: a poll that lands exactly on `at` picks it up,
  // the next poll does not repeat it.
  auto due = schedule.due(0, 10 * kMilli);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].kind, FaultKind::kCrashStop);
  EXPECT_TRUE(schedule.due(10 * kMilli, 15 * kMilli).empty());
  EXPECT_EQ(schedule.due(10 * kMilli, kSecond).size(), 2u);
}

TEST(Schedule, ExpandedTurnsDurationsIntoHeals) {
  Schedule schedule{
      {.at = 5 * kMilli,
       .mirror = 2,
       .kind = FaultKind::kPartitionIn,
       .duration = 3 * kMilli},
  };
  const auto expanded = schedule.expanded();
  ASSERT_EQ(expanded.size(), 2u);
  EXPECT_EQ(expanded[0].kind, FaultKind::kPartitionIn);
  EXPECT_EQ(expanded[1].kind, FaultKind::kHeal);
  EXPECT_EQ(expanded[1].at, 8 * kMilli);
  EXPECT_EQ(expanded[1].mirror, 2u);
}

TEST(Schedule, ApplyDrivesLinkFaults) {
  auto [a, b] = transport::make_inprocess_link_pair(16);
  FaultyLink faulty(a);
  Schedule::apply({.at = 0, .mirror = 0, .kind = FaultKind::kCrashStop},
                  faulty);
  EXPECT_TRUE(faulty.crashed());
  Schedule::apply({.at = 0, .mirror = 0, .kind = FaultKind::kHeal}, faulty);
  EXPECT_FALSE(faulty.crashed());
  Schedule::apply({.at = 0,
                   .mirror = 0,
                   .kind = FaultKind::kDelay,
                   .delay = 7 * kMilli},
                  faulty);
  EXPECT_EQ(faulty.faults().delay, 7 * kMilli);
  Schedule::apply(
      {.at = 0, .mirror = 0, .kind = FaultKind::kDrop, .probability = 0.25},
      faulty);
  EXPECT_EQ(faulty.faults().drop_recv, 0.25);
  // kRejoin is cluster-level: a no-op on the link.
  Schedule::apply({.at = 0, .mirror = 0, .kind = FaultKind::kRejoin}, faulty);
  EXPECT_FALSE(faulty.crashed());
}

}  // namespace
}  // namespace admire::faultinject
