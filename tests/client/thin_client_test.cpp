#include "client/thin_client.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "workload/scenario.h"

namespace admire::client {
namespace {

event::Event status_update(FlightKey flight, event::FlightStatus status,
                           Nanos ingress = 0) {
  event::Derived d;
  d.flight = flight;
  d.kind = event::Derived::Kind::kStatusBroadcast;
  d.status = status;
  event::Event ev = event::make_derived(d);
  ev.mutable_header().ingress_time = ingress;
  return ev;
}

SnapshotRequester requester_for(ede::OperationalState& state) {
  return [&state](std::uint64_t id) -> Result<std::vector<event::Event>> {
    ede::SnapshotService service(&state);
    return service.build(id);
  };
}

TEST(ThinClient, InitializeRestoresServerView) {
  ede::OperationalState server;
  server.update(1, [](ede::FlightRecord& r) {
    r.status = event::FlightStatus::kBoarding;
  });
  server.update(2, [](ede::FlightRecord& r) {
    r.status = event::FlightStatus::kEnRoute;
  });
  auto channel = echo::EventChannel::create(1, "updates", echo::ChannelRole::kData);

  ThinClient display(42);
  ASSERT_TRUE(display.initialize(channel, requester_for(server)).is_ok());
  EXPECT_TRUE(display.initialized());
  EXPECT_EQ(display.known_flights(), 2u);
  EXPECT_EQ(display.flight_status(1), event::FlightStatus::kBoarding);
  EXPECT_EQ(display.flight_status(2), event::FlightStatus::kEnRoute);
  EXPECT_FALSE(display.flight_status(99).has_value());
}

TEST(ThinClient, AppliesLiveUpdatesAfterInit) {
  ede::OperationalState server;
  auto channel = echo::EventChannel::create(1, "updates", echo::ChannelRole::kData);
  ThinClient display(1);
  ASSERT_TRUE(display.initialize(channel, requester_for(server)).is_ok());

  channel->submit(status_update(7, event::FlightStatus::kLanded, 100));
  channel->submit(status_update(7, event::FlightStatus::kAtGate, 200));
  EXPECT_EQ(display.flight_status(7), event::FlightStatus::kAtGate);
  EXPECT_EQ(display.updates_applied(), 2u);
  EXPECT_EQ(display.freshest_update(), 200);
}

TEST(ThinClient, UpdatesDuringInitAreBufferedNotLost) {
  // A requester that publishes an update mid-initialization — the classic
  // race a display must not lose.
  ede::OperationalState server;
  auto channel = echo::EventChannel::create(1, "updates", echo::ChannelRole::kData);
  ThinClient display(1);
  SnapshotRequester racy = [&](std::uint64_t id)
      -> Result<std::vector<event::Event>> {
    channel->submit(status_update(5, event::FlightStatus::kDeparted));
    ede::SnapshotService service(&server);
    return service.build(id);
  };
  ASSERT_TRUE(display.initialize(channel, racy).is_ok());
  EXPECT_EQ(display.flight_status(5), event::FlightStatus::kDeparted);
  EXPECT_EQ(display.updates_buffered_during_init(), 1u);
}

TEST(ThinClient, FailedRequestLeavesClientDetached) {
  auto channel = echo::EventChannel::create(1, "updates", echo::ChannelRole::kData);
  ThinClient display(1);
  SnapshotRequester failing = [](std::uint64_t) -> Result<std::vector<event::Event>> {
    return err(StatusCode::kUnavailable, "no mirror reachable");
  };
  EXPECT_FALSE(display.initialize(channel, failing).is_ok());
  EXPECT_FALSE(display.initialized());
  channel->submit(status_update(1, event::FlightStatus::kLanded));
  EXPECT_EQ(display.updates_applied(), 0u);
  EXPECT_EQ(channel->subscriber_count(), 0u);
}

TEST(ThinClient, DetachStopsUpdates) {
  ede::OperationalState server;
  auto channel = echo::EventChannel::create(1, "updates", echo::ChannelRole::kData);
  ThinClient display(1);
  ASSERT_TRUE(display.initialize(channel, requester_for(server)).is_ok());
  display.detach();
  channel->submit(status_update(3, event::FlightStatus::kLanded));
  EXPECT_EQ(display.updates_applied(), 0u);
  EXPECT_FALSE(display.initialized());
}

TEST(ThinClient, ReinitializeAfterPowerFailure) {
  ede::OperationalState server;
  server.update(1, [](ede::FlightRecord& r) {
    r.status = event::FlightStatus::kBoarding;
  });
  auto channel = echo::EventChannel::create(1, "updates", echo::ChannelRole::kData);
  ThinClient display(1);
  ASSERT_TRUE(display.initialize(channel, requester_for(server)).is_ok());
  display.detach();  // power failure
  // Server state moves on while the display is dark.
  server.update(1, [](ede::FlightRecord& r) {
    r.status = event::FlightStatus::kArrived;
  });
  ASSERT_TRUE(display.initialize(channel, requester_for(server)).is_ok());
  EXPECT_EQ(display.flight_status(1), event::FlightStatus::kArrived);
  EXPECT_EQ(channel->subscriber_count(), 1u);  // no leaked subscription
}

TEST(ThinClient, EndToEndAgainstThreadedCluster) {
  cluster::ClusterConfig config;
  config.num_mirrors = 1;
  cluster::Cluster server(config);
  server.start();

  ThinClient display(99);
  auto updates = server.registry()->by_name("central.updates");
  ASSERT_NE(updates, nullptr);
  SnapshotRequester via_lb = [&](std::uint64_t id) {
    return server.request_snapshot(id);
  };
  ASSERT_TRUE(display.initialize(updates, via_lb).is_ok());

  workload::ScenarioConfig scenario;
  scenario.faa_events = 150;
  scenario.num_flights = 8;
  const auto trace = workload::make_ois_trace(scenario);
  for (const auto& item : trace.items) {
    ASSERT_TRUE(server.ingest(item.ev).is_ok());
  }
  server.drain();

  EXPECT_GT(display.updates_applied(), 0u);
  // The display's view of every flight's status matches the server's.
  for (const auto& rec : server.central().main_unit().state().all_flights()) {
    const auto seen = display.flight_status(rec.flight);
    ASSERT_TRUE(seen.has_value()) << "flight " << rec.flight;
    EXPECT_EQ(*seen, rec.status) << "flight " << rec.flight;
  }
  server.stop();
}

}  // namespace
}  // namespace admire::client
