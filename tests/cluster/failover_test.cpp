// End-to-end self-healing: a mirror is killed through the control plane's
// FaultyLink (crash-stop on its heartbeat path), the failure detector
// declares it dead within the suspicion window, fail_mirror() shrinks
// membership and the load balancer redirects, then a replacement mirror
// bootstraps and rejoins with event-stream continuity.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "cluster/cluster.h"
#include "workload/scenario.h"

namespace admire::cluster {
namespace {

using namespace std::chrono_literals;

ControlPlaneConfig tight_control_plane() {
  ControlPlaneConfig cp;
  cp.detector.heartbeat_interval = 10 * kMilli;
  cp.detector.suspect_after_missed = 3;
  cp.detector.confirm_window = 40 * kMilli;
  cp.detector.alive_after_beats = 2;
  cp.poll_interval = std::chrono::milliseconds(2);
  return cp;
}

ClusterConfig failover_config(std::size_t mirrors = 2) {
  ClusterConfig config;
  config.num_mirrors = mirrors;
  config.params = rules::MirroringParams{.function = rules::simple_mirroring()};
  config.control_plane = tight_control_plane();
  return config;
}

workload::Trace small_trace(std::size_t events = 200) {
  workload::ScenarioConfig cfg;
  cfg.faa_events = events;
  cfg.num_flights = 10;
  cfg.event_padding = 128;
  return workload::make_ois_trace(cfg);
}

template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

TEST(Failover, CrashStopIsDetectedFailedOverAndRejoined) {
  auto config = failover_config(2);
  config.control_plane->auto_rejoin = true;
  config.control_plane->rejoin_after = 0;
  Cluster cluster(config);
  cluster.start();
  auto* cp = cluster.control_plane();
  ASSERT_NE(cp, nullptr);

  // One trace, split around the failover: per-stream sequence numbers (and
  // so vector timestamps) must keep advancing across it.
  const auto trace = small_trace(450);
  for (std::size_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(cluster.ingest(trace.items[i].ev).is_ok());
  }
  cluster.drain();
  ASSERT_TRUE(wait_until([&] { return cluster.mirror(0).heartbeats_sent() > 0; },
                         2000ms));

  // Kill mirror 0 from the control plane's perspective: crash-stop its
  // heartbeat link. The site itself keeps running — the detector must
  // infer the death from silence alone.
  const Nanos crashed_at = cluster.clock()->now();
  cp->fault(0).crash();

  ASSERT_TRUE(wait_until([&] { return cluster.mirror_failed(0); }, 3000ms))
      << "death was never declared";

  // Detection latency: dead declaration within the suspicion window
  // (interval * suspect_after_missed + confirm_window) plus slack for the
  // last pre-crash beat and monitor-tick quantization.
  Nanos dead_at = 0;
  for (const auto& t : cp->detector().history()) {
    if (t.site == 1 && t.to == fd::Health::kDead) dead_at = t.at;
  }
  ASSERT_GT(dead_at, 0);
  const auto& d = config.control_plane->detector;
  EXPECT_GE(dead_at - crashed_at, d.confirm_window);
  EXPECT_LE(dead_at - crashed_at,
            d.heartbeat_interval * (d.suspect_after_missed + 2) +
                d.confirm_window + 500 * kMilli);

  // After detection the dead target is out of the pool: a request burst
  // must see zero failures and zero routes to mirror1.
  EXPECT_EQ(cluster.load_balancer().health("mirror1"), TargetHealth::kDown);
  const auto routed_before = cluster.load_balancer().routed_counts();
  for (std::uint64_t id = 1000; id < 1040; ++id) {
    auto res = cluster.request_snapshot(id);
    EXPECT_TRUE(res.is_ok()) << res.status().to_string();
  }
  const auto routed_after = cluster.load_balancer().routed_counts();
  EXPECT_EQ(routed_after[1], routed_before[1]);  // dead target untouched

  // Automatic rejoin: a replacement site bootstraps and completes.
  ASSERT_TRUE(wait_until(
      [&] {
        const auto records = cp->rejoin_records();
        return !records.empty() && records.front().rejoined_at != 0;
      },
      3000ms))
      << "rejoin never completed";
  const auto record = cp->rejoin_records().front();
  EXPECT_EQ(record.dead_site, 1u);
  EXPECT_EQ(record.new_site, 3u);
  EXPECT_GT(record.rejoined_at, record.dead_at);  // time-to-reintegration
  const auto obs_snapshot = cluster.obs().snapshot();
  const auto* rejoin_hist = obs_snapshot.histogram("fd.rejoin_time_ns");
  ASSERT_NE(rejoin_hist, nullptr);
  EXPECT_GE(rejoin_hist->count, 1u);

  // Event-stream continuity: traffic ingested after the rejoin folds into
  // the replacement identically to the central replica (sequence-numbered
  // state fingerprints match; duplicates or gaps would diverge them).
  for (std::size_t i = 300; i < trace.items.size(); ++i) {
    ASSERT_TRUE(cluster.ingest(trace.items[i].ev).is_ok());
  }
  cluster.drain();
  const auto fps = cluster.state_fingerprints();
  ASSERT_EQ(fps.size(), 4u);  // central, dead mirror (frozen), survivor, new
  EXPECT_EQ(fps[0], fps[2]);
  EXPECT_EQ(fps[0], fps[3]);
  EXPECT_EQ(cluster.load_balancer().health("mirror3"), TargetHealth::kHealthy);
  cluster.stop();
}

TEST(Failover, ScheduledScenarioDrivesFailoverWithoutTestIntervention) {
  // The same scenario text the simulator consumes, run on wall time: crash
  // mirror 0 50 ms in, rejoin scripted 150 ms later.
  auto config = failover_config(2);
  config.control_plane->schedule =
      faultinject::Schedule{{.at = 50 * kMilli,
                             .mirror = 0,
                             .kind = faultinject::FaultKind::kCrashStop},
                            {.at = 200 * kMilli,
                             .mirror = 0,
                             .kind = faultinject::FaultKind::kRejoin}};
  Cluster cluster(config);
  cluster.start();
  for (const auto& item : small_trace(100).items) {
    ASSERT_TRUE(cluster.ingest(item.ev).is_ok());
  }
  ASSERT_TRUE(wait_until([&] { return cluster.mirror_failed(0); }, 3000ms));
  ASSERT_TRUE(wait_until(
      [&] {
        const auto records = cluster.control_plane()->rejoin_records();
        return !records.empty() && records.front().rejoined_at != 0;
      },
      3000ms));
  cluster.drain();
  const auto fps = cluster.state_fingerprints();
  ASSERT_EQ(fps.size(), 4u);
  EXPECT_EQ(fps[0], fps[3]);
  cluster.stop();
}

TEST(Failover, RejoinUnderInFlightTrafficKeepsContinuity) {
  auto config = failover_config(2);
  config.control_plane->auto_rejoin = true;
  config.control_plane->rejoin_after = 20 * kMilli;
  Cluster cluster(config);
  cluster.start();

  // Feed traffic continuously through crash, detection, and rejoin.
  std::atomic<bool> keep_feeding{true};
  std::atomic<std::uint64_t> fed{0};
  const auto trace = small_trace(4000);
  std::thread feeder([&] {
    for (const auto& item : trace.items) {
      if (!keep_feeding.load()) break;
      if (cluster.ingest(item.ev).is_ok()) {
        fed.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    keep_feeding = false;
  });

  ASSERT_TRUE(
      wait_until([&] { return cluster.mirror(0).heartbeats_sent() > 2; },
                 2000ms));
  cluster.control_plane()->fault(0).crash();
  ASSERT_TRUE(wait_until([&] { return cluster.mirror_failed(0); }, 3000ms));
  ASSERT_TRUE(wait_until(
      [&] {
        const auto records = cluster.control_plane()->rejoin_records();
        return !records.empty() && records.front().rejoined_at != 0;
      },
      3000ms));
  keep_feeding = false;
  feeder.join();
  EXPECT_GT(fed.load(), 0u);
  cluster.drain();

  // The replacement saw the join mid-stream: its RejoinFilter deduplicates
  // the snapshot/live-stream overlap, and nothing is missing — replicas
  // converge bit-for-bit.
  const auto fps = cluster.state_fingerprints();
  ASSERT_EQ(fps.size(), 4u);
  EXPECT_EQ(fps[0], fps[2]) << "survivor diverged";
  EXPECT_EQ(fps[0], fps[3]) << "replacement missed or duplicated events";
  cluster.stop();
}

TEST(Failover, DoubleFailMirrorShrinksMembershipExactlyOnce) {
  ClusterConfig config;
  config.num_mirrors = 2;
  config.params = rules::MirroringParams{.function = rules::simple_mirroring()};
  Cluster cluster(config);
  cluster.start();
  for (const auto& item : small_trace(100).items) {
    ASSERT_TRUE(cluster.ingest(item.ev).is_ok());
  }
  cluster.drain();
  auto& coord = cluster.central().coordinator();
  ASSERT_EQ(coord.expected_replies(), 3u);  // central + 2 mirrors

  // Concurrent double-fail (e.g. the failure detector and an operator
  // script reacting to the same death) shrinks membership exactly once.
  std::vector<std::thread> racers;
  for (int i = 0; i < 4; ++i) {
    racers.emplace_back([&] { cluster.fail_mirror(0); });
  }
  for (auto& t : racers) t.join();
  EXPECT_TRUE(cluster.mirror_failed(0));
  EXPECT_EQ(coord.expected_replies(), 2u);

  // The surviving membership still commits checkpoints.
  cluster.checkpoint_and_wait();
  EXPECT_GT(coord.rounds_committed(), 0u);
  cluster.fail_mirror(0);  // straight double-fail: still a no-op
  EXPECT_EQ(coord.expected_replies(), 2u);
  cluster.stop();
}

TEST(LoadBalancerHealth, SuspectAndDeadTargetsLeaveTheRotation) {
  LoadBalancer lb(LbPolicy::kRoundRobin);
  int a_hits = 0, b_hits = 0, c_hits = 0;
  auto target = [](std::string name, int& hits) {
    return LoadBalancer::Target{std::move(name),
                                [&hits](std::uint64_t, ServiceCallback) {
                                  ++hits;
                                  return Status::ok();
                                },
                                [] { return std::uint64_t{0}; }};
  };
  lb.add_target(target("a", a_hits));
  lb.add_target(target("b", b_hits));
  lb.add_target(target("c", c_hits));

  lb.set_health("b", TargetHealth::kDegraded);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(lb.route(i, nullptr).is_ok());
  EXPECT_EQ(b_hits, 0);  // degraded: skipped while healthy targets exist
  EXPECT_EQ(a_hits + c_hits, 10);
  EXPECT_GT(lb.rerouted_count(), 0u);

  // No healthy target left: degrade the rest — the degraded one serves.
  lb.set_health("a", TargetHealth::kDown);
  lb.set_health("c", TargetHealth::kDown);
  for (int i = 10; i < 14; ++i) ASSERT_TRUE(lb.route(i, nullptr).is_ok());
  EXPECT_EQ(b_hits, 4);

  // All down: routing fails rather than hitting a dead site.
  lb.set_health("b", TargetHealth::kDown);
  EXPECT_FALSE(lb.route(99, nullptr).is_ok());
  EXPECT_EQ(lb.health("b"), TargetHealth::kDown);
  EXPECT_EQ(lb.health("no-such"), TargetHealth::kDown);  // unknown = down
}

TEST(LoadBalancerHealth, RequestBurstMidFailoverNeverFailsNorHitsDownTarget) {
  LoadBalancer lb(LbPolicy::kRoundRobin);
  std::atomic<int> m1_hits{0};
  std::atomic<int> others{0};
  lb.add_target({"central",
                 [&](std::uint64_t, ServiceCallback) {
                   ++others;
                   return Status::ok();
                 },
                 [] { return std::uint64_t{0}; }});
  lb.add_target({"mirror1",
                 [&](std::uint64_t, ServiceCallback) {
                   ++m1_hits;
                   return Status::ok();
                 },
                 [] { return std::uint64_t{0}; }});
  lb.add_target({"mirror2",
                 [&](std::uint64_t, ServiceCallback) {
                   ++others;
                   return Status::ok();
                 },
                 [] { return std::uint64_t{0}; }});

  // Burst from several clients while the control plane marks mirror1
  // degraded, then down, mid-flight.
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  std::atomic<bool> go{false};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 200; ++i) {
        if (!lb.route(static_cast<std::uint64_t>(c) * 1000 + i, nullptr)
                 .is_ok()) {
          ++failures;
        }
      }
    });
  }
  go = true;
  lb.set_health("mirror1", TargetHealth::kDegraded);
  std::this_thread::sleep_for(1ms);
  lb.set_health("mirror1", TargetHealth::kDown);
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);  // zero failed client requests

  // Once down, the target stays cold: further routes never touch it.
  const int frozen = m1_hits.load();
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(lb.route(9000 + i, nullptr).is_ok());
  EXPECT_EQ(m1_hits.load(), frozen);
  EXPECT_GT(others.load(), 0);
}

}  // namespace
}  // namespace admire::cluster
