#include "cluster/remote_mirror.h"

#include <gtest/gtest.h>

#include "transport/tcp.h"
#include "workload/scenario.h"

namespace admire::cluster {
namespace {

workload::Trace small_trace(std::size_t events = 250) {
  workload::ScenarioConfig cfg;
  cfg.faa_events = events;
  cfg.num_flights = 10;
  cfg.event_padding = 64;
  return workload::make_ois_trace(cfg);
}

void wait_until(const std::function<bool()>& cond, int ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (!cond() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST(RemoteMirror, ReplicatesOverInProcessLink) {
  ClusterConfig config;
  config.num_mirrors = 1;  // one local mirror + one remote
  Cluster server(config);
  server.start();

  auto [central_end, mirror_end] = transport::make_inprocess_link_pair();
  RemoteMirrorHost host({.site = 42}, mirror_end);
  host.start();
  auto attachment = attach_remote_mirror(server, central_end);

  const auto trace = small_trace();
  for (const auto& item : trace.items) {
    ASSERT_TRUE(server.ingest(item.ev).is_ok());
  }
  server.drain();
  wait_until([&] {
    return host.site().events_processed() ==
           server.mirror(0).events_processed();
  });
  host.drain();

  // Remote replica matches the local mirror exactly.
  EXPECT_EQ(host.main_unit().state().fingerprint(),
            server.mirror(0).main_unit().state().fingerprint());
  EXPECT_GT(attachment->events_forwarded(), trace.size());

  host.stop();
  attachment->detach();
  server.stop();
}

TEST(RemoteMirror, ParticipatesInCheckpointing) {
  ClusterConfig config;
  config.num_mirrors = 0;  // the ONLY mirror is remote
  config.params.function = rules::simple_mirroring();
  Cluster server(config);
  server.start();

  auto [central_end, mirror_end] = transport::make_inprocess_link_pair();
  RemoteMirrorHost host({.site = 7}, mirror_end);
  host.start();
  auto attachment = attach_remote_mirror(server, central_end);

  for (const auto& item : small_trace(120).items) {
    ASSERT_TRUE(server.ingest(item.ev).is_ok());
  }
  server.drain();
  wait_until([&] { return host.site().events_processed() >= 120; });
  host.drain();

  const auto commits_before =
      server.central().coordinator().rounds_committed();
  server.checkpoint_and_wait();
  EXPECT_GT(server.central().coordinator().rounds_committed(), commits_before);
  // Commit propagated over the bridge: remote backups trimmed.
  wait_until([&] { return host.site().aux().backup().size() == 0; });
  EXPECT_EQ(host.site().aux().backup().size(), 0u);

  host.stop();
  server.stop();
}

TEST(RemoteMirror, WorksOverRealTcp) {
  ClusterConfig config;
  config.num_mirrors = 0;
  Cluster server(config);
  server.start();

  auto listener = transport::TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  std::shared_ptr<transport::MessageLink> central_end;
  std::thread accepter([&] {
    auto res = listener.value()->accept();
    ASSERT_TRUE(res.is_ok());
    central_end = std::move(res).value();
  });
  auto mirror_end = transport::tcp_connect("127.0.0.1", listener.value()->port());
  accepter.join();
  ASSERT_TRUE(mirror_end.is_ok());

  RemoteMirrorHost host({.site = 9}, mirror_end.value());
  host.start();
  auto attachment = attach_remote_mirror(server, central_end);

  const auto trace = small_trace(180);
  for (const auto& item : trace.items) {
    ASSERT_TRUE(server.ingest(item.ev).is_ok());
  }
  server.drain();
  wait_until([&] { return host.site().events_processed() >= trace.size(); });
  host.drain();
  EXPECT_EQ(host.main_unit().state().fingerprint(),
            server.central().main_unit().state().fingerprint());

  host.stop();
  server.stop();
}

TEST(RemoteMirror, DetachShrinksMembershipSoCheckpointsContinue) {
  ClusterConfig config;
  config.num_mirrors = 1;
  Cluster server(config);
  server.start();

  auto [central_end, mirror_end] = transport::make_inprocess_link_pair();
  RemoteMirrorHost host({.site = 5}, mirror_end);
  host.start();
  auto attachment = attach_remote_mirror(server, central_end);

  // Remote dies; detach restores a 2-party membership (central + mirror0).
  host.stop();
  attachment->detach();

  for (const auto& item : small_trace(120).items) {
    ASSERT_TRUE(server.ingest(item.ev).is_ok());
  }
  server.drain();
  const auto before = server.central().coordinator().rounds_committed();
  server.checkpoint_and_wait();
  EXPECT_GT(server.central().coordinator().rounds_committed(), before);
  server.stop();
}

}  // namespace
}  // namespace admire::cluster
