#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include "workload/scenario.h"

namespace admire::cluster {
namespace {

ClusterConfig small_config(std::size_t mirrors = 2) {
  ClusterConfig config;
  config.num_mirrors = mirrors;
  config.params = rules::MirroringParams{.function = rules::simple_mirroring()};
  return config;
}

workload::Trace small_trace(std::size_t events = 300,
                            std::size_t padding = 128) {
  workload::ScenarioConfig cfg;
  cfg.faa_events = events;
  cfg.num_flights = 10;
  cfg.event_padding = padding;
  return workload::make_ois_trace(cfg);
}

TEST(Cluster, EventsReachEverySiteAndStatesConverge) {
  Cluster cluster(small_config(2));
  cluster.start();
  const auto trace = small_trace();
  for (const auto& item : trace.items) {
    ASSERT_TRUE(cluster.ingest(item.ev).is_ok());
  }
  cluster.drain();
  EXPECT_EQ(cluster.central().ingested(), trace.size());
  EXPECT_EQ(cluster.central().processed_by_ede(), trace.size());
  EXPECT_EQ(cluster.mirror(0).events_processed(),
            cluster.mirror(1).events_processed());
  const auto fps = cluster.state_fingerprints();
  ASSERT_EQ(fps.size(), 3u);
  EXPECT_EQ(fps[0], fps[1]);  // simple mirroring: central == mirrors
  EXPECT_EQ(fps[1], fps[2]);
  cluster.stop();
}

TEST(Cluster, SelectiveMirroringReducesMirrorTrafficNotLocalProcessing) {
  auto config = small_config(1);
  config.params.function = rules::selective_mirroring(8);
  Cluster cluster(config);
  cluster.start();
  const auto trace = small_trace();
  for (const auto& item : trace.items) {
    ASSERT_TRUE(cluster.ingest(item.ev).is_ok());
  }
  cluster.drain();
  // Central EDE sees the full stream.
  EXPECT_EQ(cluster.central().processed_by_ede(), trace.size());
  // The mirror received far fewer events.
  EXPECT_LT(cluster.mirror(0).events_processed(), trace.size() / 2);
  cluster.stop();
}

TEST(Cluster, CheckpointCommitsAndTrimsBackups) {
  Cluster cluster(small_config(2));
  cluster.start();
  const auto trace = small_trace(200);
  for (const auto& item : trace.items) {
    ASSERT_TRUE(cluster.ingest(item.ev).is_ok());
  }
  cluster.drain();
  cluster.checkpoint_and_wait();
  EXPECT_GT(cluster.central().coordinator().rounds_committed(), 0u);
  // Let the commit propagate to mirrors.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline &&
         (cluster.mirror(0).aux().backup().size() > 0 ||
          cluster.central().core().backup().size() > 0)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(cluster.central().core().backup().size(), 0u);
  EXPECT_EQ(cluster.mirror(0).aux().backup().size(), 0u);
  EXPECT_EQ(cluster.mirror(1).aux().backup().size(), 0u);
  cluster.stop();
}

TEST(Cluster, SnapshotRequestsServedFromAnySite) {
  Cluster cluster(small_config(2));
  cluster.start();
  for (const auto& item : small_trace(100).items) {
    ASSERT_TRUE(cluster.ingest(item.ev).is_ok());
  }
  cluster.drain();
  const auto reference = cluster.central().main_unit().state().fingerprint();
  // Round robin: three requests hit central, mirror1, mirror2 in turn.
  for (std::uint64_t id = 1; id <= 3; ++id) {
    auto res = cluster.request_snapshot(id);
    ASSERT_TRUE(res.is_ok()) << res.status().to_string();
    ede::OperationalState restored;
    ASSERT_TRUE(ede::SnapshotService::restore(res.value(), restored).is_ok());
    EXPECT_EQ(restored.fingerprint(), reference) << "request " << id;
  }
  const auto counts = cluster.load_balancer().routed_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  cluster.stop();
}

TEST(Cluster, MirrorsOnlyRequestPool) {
  auto config = small_config(2);
  config.central_serves_requests = false;
  Cluster cluster(config);
  cluster.start();
  for (std::uint64_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(cluster.request_snapshot(id).is_ok());
  }
  const auto counts = cluster.load_balancer().routed_counts();
  ASSERT_EQ(counts.size(), 2u);  // only the two mirrors
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  cluster.stop();
}

TEST(Cluster, AdaptationDirectiveReachesMirrors) {
  auto config = small_config(1);
  config.params.function = rules::fig9_function_a();
  adapt::AdaptationPolicy policy;
  // Primary 0 on ready-queue length => engages on the very first
  // evaluation (every monitored value >= 0).
  policy.thresholds = {{adapt::MonitoredVariable::kReadyQueueLength, 0.0, 1e9}};
  policy.mode = adapt::PolicyMode::kSwitchFunction;
  policy.normal_spec = rules::fig9_function_a();
  policy.engaged_spec = rules::fig9_function_b();
  config.adaptation = policy;
  Cluster cluster(config);
  cluster.start();
  for (const auto& item : small_trace(120).items) {
    ASSERT_TRUE(cluster.ingest(item.ev).is_ok());
  }
  cluster.drain();
  cluster.checkpoint_and_wait();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline &&
         cluster.mirror(0).installed_spec().name != "fig9-B") {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(cluster.central().adaptation_transitions(), 1u);
  EXPECT_EQ(cluster.mirror(0).installed_spec().name, "fig9-B");
  EXPECT_EQ(cluster.central().core().current_spec().name, "fig9-B");
  cluster.stop();
}

TEST(Cluster, UpdateDelaysRecorded) {
  Cluster cluster(small_config(1));
  cluster.start();
  for (const auto& item : small_trace(100).items) {
    ASSERT_TRUE(cluster.ingest(item.ev).is_ok());
  }
  cluster.drain();
  EXPECT_GT(cluster.central().update_delays().count(), 0u);
  EXPECT_GT(cluster.central().update_delays().mean(), 0.0);
  cluster.stop();
}

TEST(Cluster, StopIsIdempotentAndRestartSafe) {
  Cluster cluster(small_config(1));
  cluster.start();
  cluster.start();  // no-op
  ASSERT_TRUE(cluster.ingest(small_trace(1).items[0].ev).is_ok());
  cluster.drain();
  cluster.stop();
  cluster.stop();  // no-op
}

TEST(LoadBalancer, LeastLoadedPrefersIdleTarget) {
  LoadBalancer lb(LbPolicy::kLeastLoaded);
  std::uint64_t busy_pending = 5, idle_pending = 0;
  int busy_hits = 0, idle_hits = 0;
  lb.add_target({"busy",
                 [&](std::uint64_t, ServiceCallback) {
                   ++busy_hits;
                   return Status::ok();
                 },
                 [&] { return busy_pending; }});
  lb.add_target({"idle",
                 [&](std::uint64_t, ServiceCallback) {
                   ++idle_hits;
                   return Status::ok();
                 },
                 [&] { return idle_pending; }});
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(lb.route(i, nullptr).is_ok());
  EXPECT_EQ(idle_hits, 5);
  EXPECT_EQ(busy_hits, 0);
}

TEST(LoadBalancer, NoTargetsIsError) {
  LoadBalancer lb;
  EXPECT_EQ(lb.route(1, nullptr).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace admire::cluster
