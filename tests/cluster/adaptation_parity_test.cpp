// Threaded/DES strategy parity: both runtimes embed the SAME
// AdaptationController + ThresholdStrategy, so a scripted monitor-value
// sequence must produce the identical regime-transition sequence whether
// the decision plane runs on the threaded control task or on the
// discrete-event calendar. The script drives a SiteId outside the cluster
// (99) on a variable whose organic readings stay zero in both runtimes
// (kPendingRequests with no client load), so the crossings — and nothing
// else — determine the sequence.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "harness/experiments.h"
#include "sim/sim_cluster.h"

namespace admire::cluster {
namespace {

constexpr SiteId kScriptedSite = 99;

/// Dense-checkpoint mirror functions: coalescing off and a 5-send
/// checkpoint cadence, so evaluations comfortably outnumber the scripted
/// observations in the DES run (>= one evaluation between script steps).
rules::MirrorFunctionSpec dense_spec(const char* name,
                                     std::uint32_t overwrite_max) {
  rules::MirrorFunctionSpec spec;
  spec.name = name;
  spec.coalesce_enabled = false;
  spec.coalesce_max = 1;
  spec.overwrite_max = overwrite_max;
  spec.checkpoint_every = 5;
  return spec;
}

adapt::AdaptationPolicy parity_policy() {
  adapt::AdaptationPolicy policy;
  policy.thresholds = {{adapt::MonitoredVariable::kPendingRequests, 10, 5}};
  policy.mode = adapt::PolicyMode::kSwitchFunction;
  policy.normal_spec = dense_spec("parity-A", 10);
  policy.engaged_spec = dense_spec("parity-B", 20);
  return policy;
}

// Scripted pending-requests maxima and the transition sequence the
// threshold policy (primary 10, secondary 5) must derive from them:
// 2 (quiet) -> 12 engages -> 7 holds (hysteresis band) -> 4 releases ->
// 11 engages -> 1 releases.
const std::vector<double> kScript = {2.0, 12.0, 7.0, 4.0, 11.0, 1.0};
const std::vector<bool> kExpected = {true, false, true, false};

TEST(ClusterAdaptationParity, ThresholdTransitionSequenceMatchesDes) {
  // --- Threaded run: one evaluation per explicit checkpoint round ---------
  ClusterConfig threaded_config;
  threaded_config.num_mirrors = 1;
  threaded_config.params =
      rules::MirroringParams{.function = dense_spec("parity-A", 10)};
  threaded_config.adaptation = parity_policy();
  Cluster cluster(threaded_config);
  cluster.start();
  auto* controller = cluster.central().controller();
  ASSERT_NE(controller, nullptr);
  for (const double value : kScript) {
    controller->observe(kScriptedSite,
                        adapt::MonitoredVariable::kPendingRequests, value);
    cluster.checkpoint_and_wait();
  }
  const std::vector<bool> threaded_sequence =
      cluster.central().adaptation_sequence();
  const std::uint64_t threaded_transitions =
      cluster.central().adaptation_transitions();
  cluster.stop();

  EXPECT_EQ(threaded_sequence, kExpected);
  EXPECT_EQ(threaded_transitions, kExpected.size());

  // --- DES run: same policy, script injected at virtual times -------------
  harness::RunSpec spec;
  spec.faa_events = 2000;
  spec.num_flights = 20;
  spec.event_padding = 256;
  spec.mirrors = 1;
  spec.event_horizon = 4 * kSecond;  // paced replay spans the script window

  sim::SimConfig sim_config;
  sim_config.num_mirrors = 1;
  sim_config.params =
      rules::MirroringParams{.function = dense_spec("parity-A", 10)};
  sim_config.adaptation = parity_policy();
  sim_config.num_streams = workload::kOisStreams;
  for (std::size_t i = 0; i < kScript.size(); ++i) {
    sim_config.monitor_script.push_back(
        {.at = static_cast<Nanos>(i + 1) * 500 * kMilli,
         .site = kScriptedSite,
         .variable = adapt::MonitoredVariable::kPendingRequests,
         .value = kScript[i]});
  }

  sim::SimCluster sim(std::move(sim_config));
  const sim::SimResult r =
      sim.run(harness::make_trace(spec), workload::RequestTrace{});

  std::vector<bool> des_sequence;
  des_sequence.reserve(r.adaptation_timeline.size());
  for (const auto& [at, engaged] : r.adaptation_timeline) {
    des_sequence.push_back(engaged);
  }
  EXPECT_EQ(des_sequence, kExpected);
  EXPECT_EQ(r.adaptation_transitions, kExpected.size());
  EXPECT_GT(r.time_engaged, 0);
  EXPECT_LT(r.time_engaged, r.total_time);

  // The headline assertion: identical transition sequences across runtimes.
  EXPECT_EQ(threaded_sequence, des_sequence);
}

}  // namespace
}  // namespace admire::cluster
