// Send-path regression + behavior tests for the per-destination transmit
// stage (TxStage) and the two accounting bugs it shipped with:
//  - shutdown drop: stop() used to let the send loop exit while receiving
//    tasks were still granting credits, silently losing the tail of the
//    mirror stream;
//  - credit/send conflation: the old sends_done_ counter counted consumed
//    credits as "sends", overstating wire traffic under coalescing.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/tx_stage.h"
#include "workload/scenario.h"

namespace admire::cluster {
namespace {

ClusterConfig small_config(std::size_t mirrors = 2) {
  ClusterConfig config;
  config.num_mirrors = mirrors;
  config.params = rules::MirroringParams{.function = rules::simple_mirroring()};
  return config;
}

workload::Trace small_trace(std::size_t events = 300,
                            std::size_t padding = 128) {
  workload::ScenarioConfig cfg;
  cfg.faa_events = events;
  cfg.num_flights = 10;
  cfg.event_padding = padding;
  return workload::make_ois_trace(cfg);
}

event::Event flight_event(FlightKey flight, SeqNo seq) {
  event::FaaPosition pos;
  pos.flight = flight;
  return event::make_faa_position(0, seq, pos);
}

// Regression for the shutdown drop: an ingest-heavy run stopped WITHOUT
// drain() must still mirror every event the rule engine enqueued. Before
// the fix the send loop could observe !running_ and exit while the recv
// threads were still granting credits, so the tail of the ready queue was
// never published; stop() now joins the receivers first, lets the send
// loop consume every outstanding credit, and flushes the tx outboxes into
// the still-subscribed mirror inboxes (Cluster::stop is central-first).
TEST(ClusterTxPath, StopWithoutDrainDeliversEveryEnqueuedEvent) {
  Cluster cluster(small_config(2));
  cluster.start();
  const auto trace = small_trace(4000, 64);
  for (const auto& item : trace.items) {
    ASSERT_TRUE(cluster.ingest(item.ev).is_ok());
  }
  cluster.stop();  // no drain() — the whole point
  auto& central = cluster.central();
  const auto enqueued = central.core().counters().enqueued;
  EXPECT_EQ(enqueued, trace.size());  // simple mirroring enqueues everything
  // Every credit granted was consumed before the send loop exited...
  EXPECT_EQ(central.credits_granted(), enqueued);
  EXPECT_EQ(central.credits_consumed(), central.credits_granted());
  // ...and every published event reached every mirror's subscription.
  EXPECT_EQ(cluster.mirror(0).events_received(), enqueued);
  EXPECT_EQ(cluster.mirror(1).events_received(), enqueued);
}

// Regression for the accounting drift: the counters are credit counters,
// not send counters. Under coalescing (Fig. 9 function A combines up to 10
// events) the send loop consumes a credit per ready event while emitting
// far fewer wire events — the invariant is granted == consumed + pending,
// and the honest wire count lives in core().counters().sent.
TEST(ClusterTxPath, DrainCreditAccountingIsConsistentUnderCoalescing) {
  auto config = small_config(1);
  config.params.function = rules::fig9_function_a();
  Cluster cluster(config);
  cluster.start();
  const auto trace = small_trace(600, 64);
  for (const auto& item : trace.items) {
    ASSERT_TRUE(cluster.ingest(item.ev).is_ok());
  }
  cluster.drain();
  auto& central = cluster.central();
  EXPECT_EQ(central.pending_send_credits(), 0u);
  EXPECT_EQ(central.credits_granted(),
            central.credits_consumed() + central.pending_send_credits());
  // The old sends_done_ lie: consumed credits overstate wire sends when
  // coalescing combines events.
  EXPECT_LT(central.core().counters().sent, central.credits_consumed());
  EXPECT_GT(central.send_batches(), 0u);
  cluster.stop();
}

// Central start() registers one outbox per mirror channel destination plus
// the local fwd path; fail_mirror retires the dead destination (discarding
// its queue) and join_new_mirror registers the replacement before the donor
// snapshot is cut, so no event can fall in the gap.
TEST(ClusterTxPath, FailMirrorDiscardsOutboxAndRejoinRecreates) {
  Cluster cluster(small_config(2));
  cluster.start();
  auto& tx = cluster.central().tx();
  EXPECT_TRUE(tx.has_destination("mirror1"));
  EXPECT_TRUE(tx.has_destination("mirror2"));
  EXPECT_TRUE(
      tx.has_destination(ThreadedCentralSite::kLocalTxDestination));

  const auto trace = small_trace(400);
  const std::size_t half = trace.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(cluster.ingest(trace.items[i].ev).is_ok());
  }
  cluster.drain();

  cluster.fail_mirror(0);
  EXPECT_FALSE(tx.has_destination("mirror1"));
  EXPECT_TRUE(tx.has_destination("mirror2"));

  auto joined = cluster.join_new_mirror();
  ASSERT_TRUE(joined.is_ok()) << joined.status().to_string();
  const std::size_t new_idx = joined.value();
  EXPECT_TRUE(tx.has_destination("mirror3"));  // site ids 1,2 -> next is 3

  for (std::size_t i = half; i < trace.size(); ++i) {
    ASSERT_TRUE(cluster.ingest(trace.items[i].ev).is_ok());
  }
  cluster.central().drain();
  cluster.mirror(1).drain();
  cluster.mirror(new_idx).drain();
  // Simple mirroring through the recreated outbox: central, the survivor
  // and the joiner all converge.
  const auto fp_central = cluster.central().main_unit().state().fingerprint();
  EXPECT_EQ(cluster.mirror(1).main_unit().state().fingerprint(), fp_central);
  EXPECT_EQ(cluster.mirror(new_idx).main_unit().state().fingerprint(),
            fp_central);
  cluster.stop();
}

// --- TxStage unit behavior (suite named for the TSan CI regex) -----------

// kDropOldest bounds a stalled destination's staleness: with the worker
// wedged mid-sink, the outbox keeps only the newest cap's worth of events
// (drops are counted, never silently lost) and the survivors keep publish
// order — shedding never reorders.
TEST(TxStageConcurrency, DropOldestBoundsBacklogAndPreservesOrder) {
  TxStage stage(TxStageConfig{.queue_cap = 8, .policy = TxPolicy::kDropOldest});
  std::mutex gate;  // held while publishing => "slow" is wedged mid-sink
  std::vector<SeqNo> slow_seqs;
  stage.add_destination("slow", [&](std::span<const event::Event> evs) {
    std::lock_guard hold(gate);
    for (const auto& ev : evs) slow_seqs.push_back(ev.seq());
  });
  constexpr std::size_t kBatches = 100;
  {
    std::unique_lock wedge(gate);
    stage.start();
    for (SeqNo s = 1; s <= kBatches; ++s) {
      const auto ev = flight_event(7, s);
      stage.publish(std::span<const event::Event>(&ev, 1));
    }
    // The publisher never blocked on the wedged worker: all batches were
    // either queued (at most the cap) or shed immediately.
    EXPECT_LE(stage.depth_of("slow"), 8u);
  }
  stage.stop();
  // Conservation: every published event was sent or counted as dropped,
  // and the backlog bound held (cap 8 queued + at most 1 batch in flight).
  EXPECT_GT(stage.dropped_from("slow"), 0u);
  EXPECT_EQ(stage.sent_to("slow") + stage.dropped_from("slow"), kBatches);
  EXPECT_LE(slow_seqs.size(), 9u);
  // Survivors are a subsequence of the publish order.
  for (std::size_t i = 1; i < slow_seqs.size(); ++i) {
    EXPECT_LT(slow_seqs[i - 1], slow_seqs[i]);
  }
}

// kBlock backpressures the publisher instead of dropping: every event is
// delivered, and the stall counter records that the publisher waited.
TEST(TxStageConcurrency, BlockPolicyIsLosslessAndCountsStalls) {
  TxStage stage(TxStageConfig{.queue_cap = 4, .policy = TxPolicy::kBlock});
  std::atomic<std::uint64_t> delivered{0};
  stage.add_destination("slow", [&](std::span<const event::Event> evs) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    delivered.fetch_add(evs.size());
  });
  stage.start();
  constexpr std::size_t kBatches = 64;
  std::vector<event::Event> batch{flight_event(1, 1), flight_event(1, 2)};
  for (std::size_t i = 0; i < kBatches; ++i) stage.publish(batch);
  stage.stop();
  EXPECT_EQ(delivered.load(), kBatches * batch.size());
  EXPECT_EQ(stage.sent_to("slow"), kBatches * batch.size());
  EXPECT_EQ(stage.dropped_from("slow"), 0u);
  EXPECT_GT(stage.total_stalls(), 0u);
}

// A batch larger than the cap must still be accepted once the outbox is
// empty — otherwise a big coalesced SendStep would deadlock the publisher.
TEST(TxStageConcurrency, OversizedBatchDoesNotDeadlockBlockPolicy) {
  TxStage stage(TxStageConfig{.queue_cap = 2, .policy = TxPolicy::kBlock});
  std::atomic<std::uint64_t> delivered{0};
  stage.add_destination("d", [&](std::span<const event::Event> evs) {
    delivered.fetch_add(evs.size());
  });
  stage.start();
  std::vector<event::Event> big;
  for (SeqNo s = 1; s <= 10; ++s) big.push_back(flight_event(1, s));
  stage.publish(big);
  stage.publish(big);
  stage.stop();
  EXPECT_EQ(delivered.load(), 20u);
}

// remove_destination discards (counted as dropped); re-adding the same name
// resumes publishing; stop() flushes what is queued instead of dropping it.
TEST(TxStageConcurrency, RemoveDiscardsAndReAddResumes) {
  TxStage stage(TxStageConfig{});
  std::atomic<std::uint64_t> delivered{0};
  auto sink = [&](std::span<const event::Event> evs) {
    delivered.fetch_add(evs.size());
  };
  stage.add_destination("m", sink);
  // Not started: publishes queue up in the outbox.
  std::vector<event::Event> batch{flight_event(1, 1)};
  stage.publish(batch);
  stage.publish(batch);
  stage.remove_destination("m");
  EXPECT_EQ(delivered.load(), 0u);
  EXPECT_FALSE(stage.has_destination("m"));

  stage.add_destination("m", sink);
  stage.start();
  stage.publish(batch);
  stage.quiesce();
  EXPECT_EQ(delivered.load(), 1u);
  EXPECT_EQ(stage.sent_to("m"), 1u);
  stage.stop();
}

}  // namespace
}  // namespace admire::cluster
