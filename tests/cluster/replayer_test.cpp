#include "cluster/replayer.h"

#include <gtest/gtest.h>

#include "client/thin_client.h"
#include "workload/scenario.h"

namespace admire::cluster {
namespace {

workload::Trace paced_trace(std::size_t events, Nanos horizon) {
  workload::ScenarioConfig cfg;
  cfg.faa_events = events;
  cfg.num_flights = 8;
  cfg.event_padding = 64;
  cfg.event_horizon = horizon;
  return workload::make_ois_trace(cfg);
}

TEST(TraceReplayer, ThroughputModeIngestsEverything) {
  ClusterConfig config;
  config.num_mirrors = 1;
  Cluster server(config);
  server.start();
  TraceReplayer replayer({.speedup = 0.0}, &server);
  const auto trace = paced_trace(300, kSecond);
  ASSERT_TRUE(replayer.start(trace).is_ok());
  replayer.wait();
  EXPECT_EQ(replayer.replayed(), trace.size());
  server.drain();
  EXPECT_EQ(server.central().processed_by_ede(), trace.size());
  server.stop();
}

TEST(TraceReplayer, PacedModeRespectsTimeScale) {
  ClusterConfig config;
  config.num_mirrors = 0;
  Cluster server(config);
  server.start();
  // 200ms trace at 4x speedup => ~50ms wall clock.
  TraceReplayer replayer({.speedup = 4.0}, &server);
  const auto trace = paced_trace(50, 200 * kMilli);
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(replayer.start(trace).is_ok());
  replayer.wait();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(40));
  EXPECT_LT(elapsed, std::chrono::milliseconds(1500));
  server.stop();
}

TEST(TraceReplayer, DoubleStartRejected) {
  ClusterConfig config;
  config.num_mirrors = 0;
  Cluster server(config);
  server.start();
  TraceReplayer replayer({.speedup = 0.05}, &server);  // deliberately slow
  ASSERT_TRUE(replayer.start(paced_trace(100, kSecond)).is_ok());
  EXPECT_FALSE(replayer.start(paced_trace(10, kSecond)).is_ok());
  replayer.stop();
  server.stop();
}

TEST(TraceReplayer, StopAborts) {
  ClusterConfig config;
  config.num_mirrors = 0;
  Cluster server(config);
  server.start();
  TraceReplayer replayer({.speedup = 0.01}, &server);  // would take minutes
  ASSERT_TRUE(replayer.start(paced_trace(500, 2 * kSecond)).is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  replayer.stop();
  EXPECT_LT(replayer.replayed(), 500u);
  EXPECT_FALSE(replayer.running());
  server.stop();
}

TEST(TraceReplayer, LiveThinClientTracksPacedReplay) {
  ClusterConfig config;
  config.num_mirrors = 1;
  Cluster server(config);
  server.start();

  client::ThinClient display(5);
  auto updates = server.registry()->by_name("central.updates");
  ASSERT_TRUE(display
                  .initialize(updates,
                              [&](std::uint64_t id) {
                                return server.request_snapshot(id);
                              })
                  .is_ok());

  TraceReplayer replayer({.speedup = 20.0}, &server);
  const auto trace = paced_trace(200, kSecond);
  ASSERT_TRUE(replayer.start(trace).is_ok());
  replayer.wait();
  server.drain();

  EXPECT_GT(display.updates_applied(), 0u);
  for (const auto& rec : server.central().main_unit().state().all_flights()) {
    const auto seen = display.flight_status(rec.flight);
    ASSERT_TRUE(seen.has_value());
    EXPECT_EQ(*seen, rec.status);
  }
  server.stop();
}

}  // namespace
}  // namespace admire::cluster
