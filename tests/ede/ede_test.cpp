#include <gtest/gtest.h>

#include "ede/engine.h"
#include "ede/operational_state.h"
#include "ede/snapshot.h"

namespace admire::ede {
namespace {

using event::FlightStatus;

event::Event faa(FlightKey flight, SeqNo seq, double lat = 33.6) {
  event::FaaPosition pos;
  pos.flight = flight;
  pos.lat_deg = lat;
  pos.lon_deg = -84.4;
  pos.altitude_ft = 30000;
  event::Event ev = event::make_faa_position(0, seq, pos, 64);
  ev.mutable_header().vts.observe(0, seq);
  ev.mutable_header().ingress_time = static_cast<Nanos>(seq) * kMilli;
  return ev;
}

event::Event delta(FlightKey flight, SeqNo seq, FlightStatus status,
                   std::uint32_t ticketed = 0) {
  event::DeltaStatus st;
  st.flight = flight;
  st.status = status;
  st.passengers_ticketed = ticketed;
  st.gate = 12;
  event::Event ev = event::make_delta_status(1, seq, st);
  ev.mutable_header().vts.observe(1, seq);
  return ev;
}

TEST(OperationalState, UpdateCreatesRecord) {
  OperationalState state;
  state.update(5, [](FlightRecord& r) { r.status = FlightStatus::kBoarding; });
  ASSERT_TRUE(state.get(5).has_value());
  EXPECT_EQ(state.get(5)->status, FlightStatus::kBoarding);
  EXPECT_EQ(state.flight_count(), 1u);
  EXPECT_GE(state.version(), 1u);
}

TEST(OperationalState, SerializeDeserializeRoundTrip) {
  OperationalState a;
  a.update(1, [](FlightRecord& r) {
    r.status = FlightStatus::kEnRoute;
    r.has_position = true;
    r.position.lat_deg = 10.5;
    r.passengers_boarded = 42;
    r.app_body = to_bytes("opaque");
  });
  a.update(2, [](FlightRecord& r) { r.gate = 7; });
  const Bytes wire = a.serialize();
  OperationalState b;
  ASSERT_TRUE(b.deserialize(ByteSpan(wire.data(), wire.size())).is_ok());
  EXPECT_EQ(b.flight_count(), 2u);
  EXPECT_EQ(b.get(1)->passengers_boarded, 42u);
  EXPECT_DOUBLE_EQ(b.get(1)->position.lat_deg, 10.5);
  EXPECT_EQ(b.get(1)->app_body, to_bytes("opaque"));
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(OperationalState, DeserializeRejectsGarbage) {
  OperationalState s;
  Bytes junk = to_bytes("not a state blob at all");
  EXPECT_FALSE(s.deserialize(ByteSpan(junk.data(), junk.size())).is_ok());
}

TEST(OperationalState, FingerprintSensitivity) {
  OperationalState a, b;
  a.update(1, [](FlightRecord& r) { r.status = FlightStatus::kLanded; });
  b.update(1, [](FlightRecord& r) { r.status = FlightStatus::kAtGate; });
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b.update(1, [](FlightRecord& r) { r.status = FlightStatus::kLanded; });
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(OperationalState, FingerprintIgnoresUpdateCounts) {
  // Coalescing folds several raw events into one applied update at mirrors;
  // semantic equality must survive that.
  OperationalState a, b;
  a.update(1, [](FlightRecord& r) { r.updates_applied = 10; });
  b.update(1, [](FlightRecord& r) { r.updates_applied = 1; });
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(Ede, PositionUpdatesStateAndEmitsBroadcast) {
  OperationalState state;
  Ede ede(&state);
  const auto out = ede.process(faa(1, 1));
  ASSERT_EQ(out.size(), 1u);
  const auto* d = out[0].as<event::Derived>();
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->kind, event::Derived::Kind::kStatusBroadcast);
  EXPECT_EQ(out[0].header().ingress_time, kMilli);  // inherited for delay
  EXPECT_TRUE(state.get(1)->has_position);
  EXPECT_EQ(state.get(1)->status, FlightStatus::kEnRoute);
  EXPECT_EQ(state.get(1)->app_body.size(), 64u);
}

TEST(Ede, StatusTransitionRecorded) {
  OperationalState state;
  Ede ede(&state);
  ede.process(delta(2, 1, FlightStatus::kBoarding, 100));
  EXPECT_EQ(state.get(2)->status, FlightStatus::kBoarding);
  EXPECT_EQ(state.get(2)->passengers_ticketed, 100u);
  EXPECT_EQ(state.get(2)->gate, 12u);
}

TEST(Ede, AllBoardedDerivedEvent) {
  // §2: "determines from multiple events received from gate readers that
  // all passengers of a flight have boarded".
  OperationalState state;
  Ede ede(&state);
  ede.process(delta(3, 1, FlightStatus::kBoarding, 3));
  for (std::uint32_t p = 0; p < 2; ++p) {
    event::PassengerBoarded pb{3, p};
    const auto out = ede.process(event::make_passenger_boarded(1, 2 + p, pb));
    EXPECT_TRUE(out.empty());
  }
  event::PassengerBoarded last{3, 2};
  const auto out = ede.process(event::make_passenger_boarded(1, 5, last));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].as<event::Derived>()->kind,
            event::Derived::Kind::kAllBoarded);
  EXPECT_EQ(state.get(3)->status, FlightStatus::kAllBoarded);
  EXPECT_EQ(ede.counters().all_boarded_derived, 1u);
}

TEST(Ede, DerivedArrivedFoldsIntoState) {
  OperationalState state;
  Ede ede(&state);
  event::Derived d;
  d.flight = 4;
  d.kind = event::Derived::Kind::kFlightArrived;
  d.status = FlightStatus::kArrived;
  const auto out = ede.process(event::make_derived(d));
  EXPECT_EQ(state.get(4)->status, FlightStatus::kArrived);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(ede.counters().arrivals_recorded, 1u);
}

TEST(Ede, ProgressTracksVts) {
  OperationalState state;
  Ede ede(&state);
  ede.process(faa(1, 5));
  ede.process(delta(1, 3, FlightStatus::kDeparted));
  const auto p = ede.progress();
  EXPECT_EQ(p.component(0), 5u);
  EXPECT_EQ(p.component(1), 3u);
}

TEST(Ede, IdenticalInputsYieldIdenticalState) {
  OperationalState s1, s2;
  Ede e1(&s1), e2(&s2);
  for (SeqNo i = 1; i <= 50; ++i) {
    e1.process(faa(1 + i % 3, i, static_cast<double>(i)));
    e2.process(faa(1 + i % 3, i, static_cast<double>(i)));
  }
  EXPECT_EQ(s1.fingerprint(), s2.fingerprint());
}

TEST(Snapshot, BuildAndRestoreRoundTrip) {
  OperationalState state;
  Ede ede(&state);
  for (SeqNo i = 1; i <= 30; ++i) ede.process(faa(1 + i % 7, i));
  SnapshotService service(&state, /*max_chunk_bytes=*/256);
  const auto chunks = service.build(99);
  EXPECT_GT(chunks.size(), 1u);  // forced multi-chunk
  for (const auto& c : chunks) {
    EXPECT_EQ(c.as<event::Snapshot>()->request_id, 99u);
  }
  OperationalState restored;
  ASSERT_TRUE(SnapshotService::restore(chunks, restored).is_ok());
  EXPECT_EQ(restored.fingerprint(), state.fingerprint());
  EXPECT_EQ(service.snapshots_built(), 1u);
  EXPECT_GT(service.last_state_bytes(), 0u);
}

TEST(Snapshot, EmptyStateStillAnswers) {
  OperationalState state;
  SnapshotService service(&state);
  const auto chunks = service.build(1);
  ASSERT_EQ(chunks.size(), 1u);
  OperationalState restored;
  EXPECT_TRUE(SnapshotService::restore(chunks, restored).is_ok());
  EXPECT_EQ(restored.flight_count(), 0u);
}

TEST(Snapshot, RestoreOutOfOrderChunks) {
  OperationalState state;
  for (FlightKey f = 1; f <= 40; ++f) {
    state.update(f, [](FlightRecord& r) { r.gate = 1; });
  }
  SnapshotService service(&state, 128);
  auto chunks = service.build(7);
  ASSERT_GT(chunks.size(), 2u);
  std::swap(chunks.front(), chunks.back());
  OperationalState restored;
  EXPECT_TRUE(SnapshotService::restore(chunks, restored).is_ok());
  EXPECT_EQ(restored.fingerprint(), state.fingerprint());
}

TEST(Snapshot, IncompleteChunksRejected) {
  OperationalState state;
  for (FlightKey f = 1; f <= 40; ++f) {
    state.update(f, [](FlightRecord& r) { r.gate = 1; });
  }
  SnapshotService service(&state, 128);
  auto chunks = service.build(7);
  ASSERT_GT(chunks.size(), 1u);
  chunks.pop_back();
  OperationalState restored;
  EXPECT_FALSE(SnapshotService::restore(chunks, restored).is_ok());
}

TEST(Snapshot, MixedRequestsRejected) {
  OperationalState state;
  SnapshotService service(&state);
  auto a = service.build(1);
  auto b = service.build(2);
  a.insert(a.end(), b.begin(), b.end());
  OperationalState restored;
  EXPECT_FALSE(SnapshotService::restore(a, restored).is_ok());
}

TEST(Snapshot, SnapshotBytesGrowWithEventPadding) {
  // The request-servicing cost model depends on this property (Fig. 6).
  OperationalState small_state, big_state;
  Ede small_ede(&small_state), big_ede(&big_state);
  for (SeqNo i = 1; i <= 20; ++i) {
    event::FaaPosition pos;
    pos.flight = 1 + i % 5;
    small_ede.process(event::make_faa_position(0, i, pos, 64));
    big_ede.process(event::make_faa_position(0, i, pos, 4096));
  }
  EXPECT_GT(big_state.serialize().size(),
            small_state.serialize().size() + 5 * 3000);
}

}  // namespace
}  // namespace admire::ede
namespace admire::ede {
namespace {

TEST(EdeAnalytics, GateChangeDetected) {
  OperationalState state;
  Ede ede(&state);
  event::DeltaStatus first;
  first.flight = 11;
  first.status = FlightStatus::kScheduled;
  first.gate = 4;
  ede.process(event::make_delta_status(1, 1, first));
  event::DeltaStatus moved = first;
  moved.status = FlightStatus::kBoarding;
  moved.gate = 9;
  const auto out = ede.process(event::make_delta_status(1, 2, moved));
  ASSERT_EQ(out.size(), 2u);  // status broadcast + gate-change alert
  EXPECT_EQ(out[1].as<event::Derived>()->kind,
            event::Derived::Kind::kGateChanged);
  EXPECT_EQ(state.get(11)->gate, 9u);
  EXPECT_EQ(ede.counters().gate_changes, 1u);
  // Same gate again: no alert.
  moved.status = FlightStatus::kDeparted;
  EXPECT_EQ(ede.process(event::make_delta_status(1, 3, moved)).size(), 1u);
}

TEST(EdeAnalytics, IncompleteDepartureAlert) {
  OperationalState state;
  Ede ede(&state);
  event::DeltaStatus boarding;
  boarding.flight = 12;
  boarding.status = FlightStatus::kBoarding;
  boarding.passengers_ticketed = 5;
  ede.process(event::make_delta_status(1, 1, boarding));
  event::PassengerBoarded pb{12, 1};
  ede.process(event::make_passenger_boarded(1, 2, pb));  // 1 of 5 boarded
  event::DeltaStatus departed = boarding;
  departed.status = FlightStatus::kDeparted;
  const auto out = ede.process(event::make_delta_status(1, 3, departed));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].as<event::Derived>()->kind,
            event::Derived::Kind::kDepartureIncomplete);
  EXPECT_EQ(ede.counters().incomplete_departures, 1u);
}

TEST(EdeAnalytics, CompleteDepartureRaisesNoAlert) {
  OperationalState state;
  Ede ede(&state);
  event::DeltaStatus boarding;
  boarding.flight = 13;
  boarding.status = FlightStatus::kBoarding;
  boarding.passengers_ticketed = 2;
  ede.process(event::make_delta_status(1, 1, boarding));
  for (std::uint32_t p = 0; p < 2; ++p) {
    event::PassengerBoarded pb{13, p};
    ede.process(event::make_passenger_boarded(1, 2 + p, pb));
  }
  event::DeltaStatus departed = boarding;
  departed.status = FlightStatus::kDeparted;
  const auto out = ede.process(event::make_delta_status(1, 5, departed));
  EXPECT_EQ(out.size(), 1u);  // just the status broadcast
  EXPECT_EQ(ede.counters().incomplete_departures, 0u);
}

}  // namespace
}  // namespace admire::ede
