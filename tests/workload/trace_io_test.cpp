#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "workload/scenario.h"

namespace admire::workload {
namespace {

Trace sample_trace() {
  ScenarioConfig cfg;
  cfg.faa_events = 300;
  cfg.num_flights = 10;
  cfg.event_padding = 100;
  return make_ois_trace(cfg);
}

TEST(TraceIo, EncodeDecodeIdentity) {
  const Trace original = sample_trace();
  const Bytes wire = encode_trace(original);
  auto decoded = decode_trace(ByteSpan(wire.data(), wire.size()));
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  ASSERT_EQ(decoded.value().size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded.value().items[i].at, original.items[i].at);
    ASSERT_EQ(decoded.value().items[i].ev, original.items[i].ev);
  }
}

TEST(TraceIo, EmptyTrace) {
  const Bytes wire = encode_trace(Trace{});
  auto decoded = decode_trace(ByteSpan(wire.data(), wire.size()));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(TraceIo, CorruptionDetected) {
  Bytes wire = encode_trace(sample_trace());
  wire[wire.size() / 2] = static_cast<std::byte>(
      static_cast<unsigned>(wire[wire.size() / 2]) ^ 0xFF);
  EXPECT_FALSE(decode_trace(ByteSpan(wire.data(), wire.size())).is_ok());
}

TEST(TraceIo, TruncationDetected) {
  const Bytes wire = encode_trace(sample_trace());
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{10},
                          wire.size() / 2, wire.size() - 1}) {
    EXPECT_FALSE(decode_trace(ByteSpan(wire.data(), cut)).is_ok())
        << "cut at " << cut;
  }
}

TEST(TraceIo, WrongMagicRejected) {
  Bytes junk = to_bytes("not a trace file at all, sorry");
  EXPECT_FALSE(decode_trace(ByteSpan(junk.data(), junk.size())).is_ok());
}

TEST(TraceIo, FileRoundTrip) {
  const Trace original = sample_trace();
  const std::string path = "/tmp/admire_trace_test.bin";
  ASSERT_TRUE(save_trace(original, path).is_ok());
  auto loaded = load_trace(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().size(), original.size());
  EXPECT_EQ(loaded.value().total_bytes(), original.total_bytes());
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileIsNotFound) {
  auto res = load_trace("/tmp/definitely_missing_admire_trace.bin");
  EXPECT_EQ(res.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace admire::workload
