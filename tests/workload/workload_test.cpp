#include <gtest/gtest.h>

#include "workload/delta_stream.h"
#include "workload/faa_stream.h"
#include "workload/requests.h"
#include "workload/scenario.h"

namespace admire::workload {
namespace {

TEST(FaaStream, DeterministicForSeed) {
  FaaStreamConfig cfg;
  cfg.num_events = 500;
  const Trace a = generate_faa_stream(cfg);
  const Trace b = generate_faa_stream(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.items[i].at, b.items[i].at);
    EXPECT_EQ(a.items[i].ev, b.items[i].ev);
  }
}

TEST(FaaStream, SeqNumbersUniqueAndIncreasing) {
  FaaStreamConfig cfg;
  cfg.num_events = 1000;
  const Trace t = generate_faa_stream(cfg);
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_EQ(t.items[i].ev.seq(), t.items[i - 1].ev.seq() + 1);
    EXPECT_GE(t.items[i].at, t.items[i - 1].at);
  }
}

TEST(FaaStream, CoversAllFlights) {
  FaaStreamConfig cfg;
  cfg.num_flights = 10;
  cfg.num_events = 2000;
  const Trace t = generate_faa_stream(cfg);
  std::set<FlightKey> flights;
  for (const auto& item : t.items) flights.insert(item.ev.key());
  EXPECT_EQ(flights.size(), 10u);
}

TEST(FaaStream, PaddingAppliedToEveryEvent) {
  FaaStreamConfig cfg;
  cfg.num_events = 50;
  cfg.padding_bytes = 777;
  const Trace t = generate_faa_stream(cfg);
  for (const auto& item : t.items) {
    EXPECT_EQ(item.ev.padding().size(), 777u);
  }
}

TEST(FaaStream, PositionsStayPlausible) {
  FaaStreamConfig cfg;
  cfg.num_events = 2000;
  const Trace t = generate_faa_stream(cfg);
  for (const auto& item : t.items) {
    const auto* pos = item.ev.as<event::FaaPosition>();
    ASSERT_NE(pos, nullptr);
    EXPECT_GT(pos->ground_speed_kts, 0.0);
    EXPECT_GE(pos->heading_deg, 0.0);
    EXPECT_LT(pos->heading_deg, 360.0);
  }
}

TEST(DeltaStream, LifecycleOrderPerFlight) {
  DeltaStreamConfig cfg;
  cfg.num_flights = 20;
  cfg.arriving_fraction = 1.0;
  const Trace t = generate_delta_stream(cfg);
  std::map<FlightKey, std::vector<event::FlightStatus>> statuses;
  for (const auto& item : t.items) {
    if (const auto* st = item.ev.as<event::DeltaStatus>()) {
      statuses[st->flight].push_back(st->status);
    }
  }
  ASSERT_EQ(statuses.size(), 20u);
  for (const auto& [flight, seq] : statuses) {
    ASSERT_EQ(seq.size(), 6u) << "flight " << flight;
    EXPECT_EQ(seq[0], event::FlightStatus::kScheduled);
    EXPECT_EQ(seq[1], event::FlightStatus::kBoarding);
    EXPECT_EQ(seq[2], event::FlightStatus::kDeparted);
    EXPECT_EQ(seq[3], event::FlightStatus::kLanded);
    EXPECT_EQ(seq[4], event::FlightStatus::kAtRunway);
    EXPECT_EQ(seq[5], event::FlightStatus::kAtGate);
  }
}

TEST(DeltaStream, ArrivingFractionRespected) {
  DeltaStreamConfig cfg;
  cfg.num_flights = 100;
  cfg.arriving_fraction = 0.0;
  const Trace none = generate_delta_stream(cfg);
  for (const auto& item : none.items) {
    if (const auto* st = item.ev.as<event::DeltaStatus>()) {
      EXPECT_NE(st->status, event::FlightStatus::kLanded);
    }
  }
}

TEST(DeltaStream, PassengerAndBaggageCounts) {
  DeltaStreamConfig cfg;
  cfg.num_flights = 5;
  cfg.passengers_per_flight = 7;
  cfg.bags_per_flight = 3;
  const Trace t = generate_delta_stream(cfg);
  EXPECT_EQ(t.count_type(event::EventType::kPassengerBoarded), 35u);
  EXPECT_EQ(t.count_type(event::EventType::kBaggageLoaded), 15u);
}

TEST(DeltaStream, SeqAssignedAfterTimeSort) {
  const Trace t = generate_delta_stream({});
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GE(t.items[i].at, t.items[i - 1].at);
    EXPECT_EQ(t.items[i].ev.seq(), t.items[i - 1].ev.seq() + 1);
  }
}

TEST(MergeTraces, GlobalTimeOrderPreservesPerStreamFifo) {
  FaaStreamConfig faa;
  faa.num_events = 300;
  DeltaStreamConfig delta;
  const Trace merged =
      merge_traces({generate_faa_stream(faa), generate_delta_stream(delta)});
  SeqNo last_faa = 0, last_delta = 0;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(merged.items[i].at, merged.items[i - 1].at);
    }
    const auto& ev = merged.items[i].ev;
    if (ev.stream() == 0) {
      EXPECT_GT(ev.seq(), last_faa);
      last_faa = ev.seq();
    } else {
      EXPECT_GT(ev.seq(), last_delta);
      last_delta = ev.seq();
    }
  }
}

TEST(Scenario, OisTraceContainsBothStreams) {
  ScenarioConfig cfg;
  cfg.faa_events = 500;
  const Trace t = make_ois_trace(cfg);
  EXPECT_EQ(t.count_type(event::EventType::kFaaPosition), 500u);
  EXPECT_GT(t.count_type(event::EventType::kDeltaStatus), 0u);
  EXPECT_GT(t.total_bytes(), 500u * cfg.event_padding);
}

TEST(Requests, ConstantRateCountApproximatesRate) {
  const auto t = constant_rate_requests(100.0, 10 * kSecond);
  EXPECT_NEAR(static_cast<double>(t.size()), 1000.0, 60.0);
  EXPECT_NEAR(t.rate_over(10 * kSecond), 100.0, 6.0);
  for (std::size_t i = 1; i < t.arrivals.size(); ++i) {
    EXPECT_GE(t.arrivals[i], t.arrivals[i - 1]);
  }
}

TEST(Requests, ZeroRateOrDurationIsEmpty) {
  EXPECT_EQ(constant_rate_requests(0.0, kSecond).size(), 0u);
  EXPECT_EQ(constant_rate_requests(10.0, 0).size(), 0u);
  EXPECT_EQ(poisson_requests(0.0, kSecond).size(), 0u);
}

TEST(Requests, PoissonMeanRate) {
  const auto t = poisson_requests(200.0, 20 * kSecond, 9);
  EXPECT_NEAR(static_cast<double>(t.size()), 4000.0, 300.0);
}

TEST(Requests, BurstyConcentratesInDutyWindow) {
  const auto t = bursty_requests(/*base=*/10, /*burst=*/500, /*period=*/kSecond,
                                 /*duty=*/0.4, /*duration=*/10 * kSecond, 3);
  std::size_t in_burst = 0;
  for (const Nanos at : t.arrivals) {
    const double phase =
        static_cast<double>(at % kSecond) / static_cast<double>(kSecond);
    in_burst += phase < 0.4;
  }
  // Expected split: 200/s-equivalent in 40% of time vs 10/s elsewhere.
  EXPECT_GT(static_cast<double>(in_burst),
            0.9 * static_cast<double>(t.size() - in_burst));
}

TEST(Requests, RecoverySpikeAddsSimultaneousBatch) {
  const auto t =
      recovery_spike_requests(500, 5 * kSecond, 1.0, 10 * kSecond, 4);
  std::size_t near_spike = 0;
  for (const Nanos at : t.arrivals) {
    if (at >= 5 * kSecond && at <= 5 * kSecond + 100 * kMilli) ++near_spike;
  }
  EXPECT_GE(near_spike, 500u);
  for (std::size_t i = 1; i < t.arrivals.size(); ++i) {
    EXPECT_GE(t.arrivals[i], t.arrivals[i - 1]);  // sorted
  }
}

TEST(Requests, MergeSorts) {
  auto merged = merge_requests(
      {poisson_requests(50, kSecond, 1), poisson_requests(50, kSecond, 2)});
  for (std::size_t i = 1; i < merged.arrivals.size(); ++i) {
    EXPECT_GE(merged.arrivals[i], merged.arrivals[i - 1]);
  }
  EXPECT_GT(merged.size(), 50u);
}

}  // namespace
}  // namespace admire::workload
