// Scenario library + matrix runner (DESIGN.md §16): the standard library
// covers the required situations, the generators are deterministic, and a
// same-seed rerun of any matrix cell reproduces its ScoreCard bit-for-bit
// (exact double equality — the DES guarantees it).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "scenario/scenario.h"

namespace admire::scenario {
namespace {

TEST(ScenarioMatrix, StandardLibraryCoversRequiredSituations) {
  const auto scenarios = standard_scenarios(42);
  EXPECT_GE(scenarios.size(), 6u);
  std::set<std::string> names;
  for (const auto& s : scenarios) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
    EXPECT_FALSE(s.description.empty()) << s.name;
    EXPECT_GT(s.spec.event_horizon, 0) << s.name << " must be paced replay";
  }
  for (const char* required :
       {"diurnal_load", "flash_crowd", "sustained_overload",
        "correlated_failures", "one_way_partition", "lossy_wan"}) {
    EXPECT_TRUE(names.contains(required)) << required;
  }
}

TEST(ScenarioMatrix, AllStrategiesCoversEveryKindThresholdFirst) {
  const auto strategies = all_strategies();
  ASSERT_EQ(strategies.size(), 4u);
  EXPECT_EQ(strategies[0].kind, adapt::StrategyKind::kThreshold);
  std::set<adapt::StrategyKind> kinds;
  for (const auto& s : strategies) kinds.insert(s.kind);
  EXPECT_EQ(kinds.size(), 4u);
  // The shared base policy defaults to the paper's strategy.
  EXPECT_EQ(default_scenario_policy().strategy.kind,
            adapt::StrategyKind::kThreshold);
}

TEST(ScenarioMatrix, DiurnalRequestsDeterministicSortedAndBounded) {
  const Nanos period = kSecond;
  const Nanos duration = 2 * kSecond;
  const auto a = diurnal_requests(20.0, 200.0, period, duration, 99);
  const auto b = diurnal_requests(20.0, 200.0, period, duration, 99);
  EXPECT_EQ(a.arrivals, b.arrivals);
  ASSERT_FALSE(a.arrivals.empty());
  EXPECT_TRUE(std::is_sorted(a.arrivals.begin(), a.arrivals.end()));
  EXPECT_GE(a.arrivals.front(), 0);
  EXPECT_LT(a.arrivals.back(), duration);
  // The wave peaks mid-period: the busiest half carries clearly more
  // arrivals than the trough half.
  const auto mid_of = [&](Nanos t) {
    const Nanos phase = t % period;
    return phase >= period / 4 && phase < 3 * period / 4;
  };
  std::size_t mid = 0;
  for (const Nanos t : a.arrivals) {
    if (mid_of(t)) ++mid;
  }
  EXPECT_GT(mid, a.arrivals.size() - mid);
}

TEST(ScenarioMatrix, SameSeedReproducesIdenticalScoreCards) {
  const ScenarioRunner runner;
  const auto scenario = flash_crowd(/*seed=*/7);
  for (const auto& strategy : runner.config().strategies) {
    const ScoreCard first = runner.run_one(scenario, strategy);
    const ScoreCard again = runner.run_one(scenario, strategy);
    EXPECT_EQ(first, again) << first.strategy;
    EXPECT_EQ(first.scenario, "flash_crowd");
  }
}

TEST(ScenarioMatrix, RunMatrixIsScenarioMajorAndComplete) {
  const ScenarioRunner runner;
  const std::vector<Scenario> scenarios = {flash_crowd(5), slow_wan(5)};
  const auto cards = runner.run_matrix(scenarios);
  const auto& strategies = runner.config().strategies;
  ASSERT_EQ(cards.size(), scenarios.size() * strategies.size());
  for (std::size_t i = 0; i < cards.size(); ++i) {
    const auto& card = cards[i];
    EXPECT_EQ(card.scenario, scenarios[i / strategies.size()].name);
    EXPECT_EQ(card.strategy, adapt::strategy_kind_name(
                                 strategies[i % strategies.size()].kind));
  }
  // The flash crowd actually sheds under every strategy — the
  // serving-plane signal the utility/bandit strategies feed on is live.
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    EXPECT_GT(cards[i].requests_shed, 0u) << cards[i].strategy;
  }
}

}  // namespace
}  // namespace admire::scenario
