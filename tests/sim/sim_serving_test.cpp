// Serving plane under the discrete-event simulator: typed queries answered
// by the real serve::RequestHandler at each simulated site, with virtual
// admission control, retry-after backoff, and the snapshot cache charging
// the cheaper hit cost. This is the DES variant of the update/query
// interleaving asserted end to end by tests/serve/cache_invalidation_test.cpp
// — both runtimes drive the same handler class.
#include <gtest/gtest.h>

#include "harness/experiments.h"
#include "sim/sim_cluster.h"

namespace admire::sim {
namespace {

constexpr std::uint32_t kFlights = 32;

SimConfig serving_config() {
  SimConfig config;
  config.num_mirrors = 2;
  config.params.function = rules::simple_mirroring();
  config.serving = serve::ServeConfig{};
  config.serve_flight_space = kFlights;
  return config;
}

harness::RunSpec paced_spec(double request_rate) {
  harness::RunSpec spec;
  spec.faa_events = 300;
  spec.num_flights = kFlights;
  spec.event_padding = 128;
  spec.event_horizon = kSecond;  // events pace out: updates race queries
  spec.request_rate = request_rate;
  spec.requests_while_events = false;
  spec.request_window = kSecond;
  return spec;
}

SimResult run(SimConfig config, const harness::RunSpec& spec) {
  SimCluster cluster(std::move(config));
  return cluster.run(harness::make_trace(spec), harness::make_requests(spec));
}

TEST(SimServing, TypedQueriesAreServedAndAccounted) {
  const auto spec = paced_spec(500);
  const auto offered = harness::make_requests(spec).size();
  const auto r = run(serving_config(), spec);
  EXPECT_EQ(r.requests_served + r.requests_dropped, offered);
  EXPECT_GT(r.requests_served, 0u);
  ASSERT_NE(r.request_latency, nullptr);
  EXPECT_EQ(r.request_latency->count(), r.requests_served);
}

TEST(SimServing, CacheInterleavesWithUpdateInvalidation) {
  const auto r = run(serving_config(), paced_spec(2000));
  // Queries and paced updates overlap in virtual time: the cache must both
  // serve hits and be invalidated mid-run — the DES interleaving variant.
  EXPECT_GT(r.serve_cache_hits, 0u);
  EXPECT_GT(r.serve_cache_misses, 0u);
  EXPECT_GT(r.serve_cache_hit_ratio, 0.0);
  EXPECT_LT(r.serve_cache_hit_ratio, 1.0);
  const auto snap = r.obs->snapshot();
  double invalidations = 0;
  for (const char* site : {"central", "mirror1", "mirror2"}) {
    invalidations += static_cast<double>(snap.counter_or(
        std::string("serve.") + site + ".cache.invalidations_total"));
  }
  EXPECT_GT(invalidations, 0.0);
  // Replicas still converge with the serving plane active.
  const auto& fps = r.state_fingerprints;
  ASSERT_EQ(fps.size(), 3u);
  EXPECT_EQ(fps[0], fps[1]);
  EXPECT_EQ(fps[1], fps[2]);
}

TEST(SimServing, SaturationShedsAndEveryClientIsResolved) {
  auto config = serving_config();
  config.serving->max_in_flight = 4;
  config.serving->retry_after_ms = 10;
  config.serve_max_retries = 3;
  const auto spec = paced_spec(20'000);
  const auto offered = harness::make_requests(spec).size();
  const auto r = run(std::move(config), spec);
  EXPECT_GT(r.requests_shed, 0u);
  EXPECT_EQ(r.requests_served + r.requests_dropped, offered);
  const auto snap = r.obs->snapshot();
  double shed = 0;
  for (const char* site : {"central", "mirror1", "mirror2"}) {
    shed += static_cast<double>(
        snap.counter_or(std::string("serve.") + site + ".shed_total"));
  }
  EXPECT_EQ(shed, static_cast<double>(r.requests_shed));
}

TEST(SimServing, DeterministicAcrossIdenticalRuns) {
  const auto spec = paced_spec(5000);
  const auto a = run(serving_config(), spec);
  const auto b = run(serving_config(), spec);
  EXPECT_EQ(a.requests_served, b.requests_served);
  EXPECT_EQ(a.requests_shed, b.requests_shed);
  EXPECT_EQ(a.requests_dropped, b.requests_dropped);
  EXPECT_EQ(a.serve_cache_hits, b.serve_cache_hits);
  EXPECT_EQ(a.serve_cache_misses, b.serve_cache_misses);
  EXPECT_EQ(a.total_time, b.total_time);
  ASSERT_NE(a.request_latency, nullptr);
  ASSERT_NE(b.request_latency, nullptr);
  EXPECT_EQ(a.request_latency->percentile(0.99),
            b.request_latency->percentile(0.99));
}

TEST(SimServing, DisabledCacheStillServesEveryQuery) {
  auto config = serving_config();
  config.serving->cache_enabled = false;
  const auto spec = paced_spec(1000);
  const auto offered = harness::make_requests(spec).size();
  const auto r = run(std::move(config), spec);
  EXPECT_EQ(r.serve_cache_hits, 0u);
  EXPECT_EQ(r.serve_cache_hit_ratio, 0.0);
  EXPECT_EQ(r.requests_served + r.requests_dropped, offered);
}

TEST(SimServing, IndexedBuildsHappenAndExportMetrics) {
  auto config = serving_config();
  config.serve_flight_dist.kind = serve::FlightDist::Kind::kZipfian;
  const auto r = run(std::move(config), paced_spec(2000));
  EXPECT_GT(r.serve_indexed_builds, 0u);
  const auto snap = r.obs->snapshot();
  double indexed = 0, scanned = 0;
  for (const char* site : {"central", "mirror1", "mirror2"}) {
    indexed += static_cast<double>(snap.counter_or(
        std::string("index.") + site + ".builds_indexed_total"));
    scanned += static_cast<double>(snap.counter_or(
        std::string("index.") + site + ".builds_scanned_total"));
  }
  EXPECT_EQ(indexed, static_cast<double>(r.serve_indexed_builds));
  EXPECT_EQ(scanned, static_cast<double>(r.serve_scanned_builds));
  // The cracking family is live under query load.
  EXPECT_GT(snap.counter_or("index.central.cracks_total") +
                snap.counter_or("index.mirror1.cracks_total") +
                snap.counter_or("index.mirror2.cracks_total"),
            0u);
}

TEST(SimServing, IndexingIsBitDeterministicAcrossRepeats) {
  auto make = [] {
    auto config = serving_config();
    config.serve_flight_dist.kind = serve::FlightDist::Kind::kZipfian;
    return config;
  };
  const auto spec = paced_spec(5000);
  const auto a = run(make(), spec);
  const auto b = run(make(), spec);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.requests_served, b.requests_served);
  EXPECT_EQ(a.serve_indexed_builds, b.serve_indexed_builds);
  EXPECT_EQ(a.serve_scanned_builds, b.serve_scanned_builds);
  EXPECT_EQ(a.serve_index_fallbacks, b.serve_index_fallbacks);
  EXPECT_EQ(a.serve_cache_hits, b.serve_cache_hits);
  EXPECT_EQ(a.state_fingerprints, b.state_fingerprints);
  ASSERT_NE(a.request_latency, nullptr);
  ASSERT_NE(b.request_latency, nullptr);
  EXPECT_EQ(a.request_latency->percentile(0.99),
            b.request_latency->percentile(0.99));
}

TEST(SimServing, DisablingTheIndexOnlyChangesCostNeverAnswers) {
  auto indexed_cfg = serving_config();
  indexed_cfg.serve_flight_dist.kind = serve::FlightDist::Kind::kHotspot;
  auto scan_cfg = serving_config();
  scan_cfg.serve_flight_dist.kind = serve::FlightDist::Kind::kHotspot;
  scan_cfg.serving->index_enabled = false;
  const auto spec = paced_spec(2000);
  const auto a = run(std::move(indexed_cfg), spec);
  const auto b = run(std::move(scan_cfg), spec);
  // Identical answers => identical cache behavior and replica state; only
  // the virtual-time cost of the builds may differ.
  EXPECT_EQ(a.requests_served, b.requests_served);
  EXPECT_EQ(a.serve_cache_hits, b.serve_cache_hits);
  EXPECT_EQ(a.serve_cache_misses, b.serve_cache_misses);
  EXPECT_EQ(a.state_fingerprints, b.state_fingerprints);
  EXPECT_GT(a.serve_indexed_builds, 0u);
  EXPECT_EQ(b.serve_indexed_builds, 0u);
  EXPECT_EQ(b.obs->snapshot().counter_or("index.central.cracks_total"), 0u);
}

TEST(SimServing, SkewedDistsAreServedEndToEnd) {
  for (const serve::FlightDist::Kind kind :
       {serve::FlightDist::Kind::kZipfian,
        serve::FlightDist::Kind::kHotspot}) {
    auto config = serving_config();
    config.serve_flight_dist.kind = kind;
    const auto spec = paced_spec(1000);
    const auto offered = harness::make_requests(spec).size();
    const auto r = run(std::move(config), spec);
    EXPECT_EQ(r.requests_served + r.requests_dropped, offered)
        << serve::flight_dist_name(kind);
    // Skew concentrates repeat queries: the cache must see hits.
    EXPECT_GT(r.serve_cache_hits, 0u) << serve::flight_dist_name(kind);
  }
}

TEST(SimServing, LegacyRequestPathUnchangedWhenServingUnset) {
  SimConfig config;
  config.num_mirrors = 1;
  config.params.function = rules::simple_mirroring();
  const auto spec = paced_spec(500);
  const auto r = run(std::move(config), spec);
  EXPECT_EQ(r.requests_shed, 0u);
  EXPECT_EQ(r.requests_dropped, 0u);
  EXPECT_EQ(r.serve_cache_hits, 0u);
  EXPECT_EQ(r.serve_cache_hit_ratio, 0.0);
  EXPECT_GT(r.requests_served, 0u);
}

}  // namespace
}  // namespace admire::sim
