// Failover under the discrete-event simulator: the SAME fd::FailureDetector
// state machine the threaded control plane runs, driven on virtual time.
// Scenarios are fault schedules; runs are bit-for-bit deterministic, and the
// suspicion-state transition sequence matches the threaded runtime's for the
// same scenario.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "cluster/cluster.h"
#include "harness/experiments.h"

namespace admire::sim {
namespace {

fd::DetectorConfig sim_detector() {
  fd::DetectorConfig d;
  d.heartbeat_interval = 10 * kMilli;
  d.suspect_after_missed = 3;
  d.confirm_window = 40 * kMilli;
  d.alive_after_beats = 2;
  return d;
}

SimConfig failover_config() {
  SimConfig config;
  config.num_mirrors = 2;
  config.params.function = rules::simple_mirroring();
  config.fd = sim_detector();
  config.fault_schedule = faultinject::Schedule{
      {.at = 200 * kMilli,
       .mirror = 0,
       .kind = faultinject::FaultKind::kCrashStop},
  };
  config.fd_auto_rejoin = true;
  config.fd_rejoin_after = 100 * kMilli;
  return config;
}

workload::Trace spread_trace(std::uint64_t events = 600) {
  harness::RunSpec spec;
  spec.faa_events = events;
  spec.num_flights = 10;
  spec.event_padding = 128;
  spec.event_horizon = kSecond;  // arrivals span crash, death, and rejoin
  return harness::make_trace(spec);
}

std::vector<std::pair<fd::Health, fd::Health>> site_story(
    const std::vector<fd::Transition>& transitions, SiteId site) {
  std::vector<std::pair<fd::Health, fd::Health>> story;
  for (const auto& t : transitions) {
    if (t.site == site) story.emplace_back(t.from, t.to);
  }
  return story;
}

TEST(FailoverSim, CrashIsDetectedDeclaredDeadAndRevived) {
  SimCluster cluster(failover_config());
  harness::RunSpec spec;
  spec.faa_events = 600;
  spec.num_flights = 10;
  spec.event_padding = 128;
  spec.event_horizon = kSecond;
  spec.request_rate = 200;
  spec.requests_while_events = false;  // explicit Poisson request trace
  spec.request_window = kSecond;       // spans crash, death, and rejoin
  const auto r = cluster.run(harness::make_trace(spec),
                             harness::make_requests(spec));

  // The full per-slot story for the crashed mirror (sim site 1).
  const std::vector<std::pair<fd::Health, fd::Health>> expected{
      {fd::Health::kAlive, fd::Health::kSuspect},
      {fd::Health::kSuspect, fd::Health::kDead},
      {fd::Health::kDead, fd::Health::kRejoining},
      {fd::Health::kRejoining, fd::Health::kAlive},
  };
  EXPECT_EQ(site_story(r.fd_transitions, 1), expected);
  EXPECT_TRUE(site_story(r.fd_transitions, 2).empty());  // survivor steady

  // Dead declaration falls inside the suspicion window after the crash.
  Nanos dead_at = 0;
  for (const auto& t : r.fd_transitions) {
    if (t.site == 1 && t.to == fd::Health::kDead) dead_at = t.at;
  }
  const auto d = sim_detector();
  EXPECT_GE(dead_at - 200 * kMilli, d.confirm_window);
  EXPECT_LE(dead_at - 200 * kMilli,
            d.heartbeat_interval * (d.suspect_after_missed + 2) +
                d.confirm_window + 2 * d.heartbeat_interval);

  // One completed rejoin, at least fd_rejoin_after past the declaration.
  ASSERT_EQ(r.rejoin_times.size(), 1u);
  EXPECT_GE(r.rejoin_times[0], 100 * kMilli);
  EXPECT_GE(r.obs->snapshot().counter_or("fd.rejoin_completed_total"), 1u);

  // Continuity: the revived mirror folded the bootstrap snapshot plus the
  // live stream with no duplicates or gaps — replicas converge.
  ASSERT_EQ(r.state_fingerprints.size(), 3u);
  EXPECT_EQ(r.state_fingerprints[0], r.state_fingerprints[1]);
  EXPECT_EQ(r.state_fingerprints[0], r.state_fingerprints[2]);

  // Health-aware balancing: no request ever hit the dead site, so none
  // failed — everything offered was served.
  EXPECT_GT(r.requests_served, 0u);
}

TEST(FailoverSim, IdenticalScenariosReplayIdentically) {
  auto run_once = [] {
    SimCluster cluster(failover_config());
    harness::RunSpec spec;
    spec.faa_events = 400;
    spec.event_horizon = kSecond;
    spec.request_rate = 100;
    spec.requests_while_events = false;
    spec.request_window = kSecond;
    return cluster.run(harness::make_trace(spec),
                       harness::make_requests(spec));
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.fd_transitions.size(), b.fd_transitions.size());
  for (std::size_t i = 0; i < a.fd_transitions.size(); ++i) {
    EXPECT_EQ(a.fd_transitions[i].site, b.fd_transitions[i].site);
    EXPECT_EQ(a.fd_transitions[i].from, b.fd_transitions[i].from);
    EXPECT_EQ(a.fd_transitions[i].to, b.fd_transitions[i].to);
    EXPECT_EQ(a.fd_transitions[i].at, b.fd_transitions[i].at);
  }
  EXPECT_EQ(a.rejoin_times, b.rejoin_times);
  EXPECT_EQ(a.state_fingerprints, b.state_fingerprints);
  EXPECT_EQ(a.requests_served, b.requests_served);
  EXPECT_EQ(a.total_time, b.total_time);
}

TEST(FailoverSim, DelayOnlyFaultsCauseNoMisdetection) {
  // Heartbeat delay well inside the suspicion budget: the detector must not
  // transition at all (misdetection rate zero under delay-only faults).
  auto config = failover_config();
  config.fault_schedule = faultinject::Schedule{
      {.at = 100 * kMilli,
       .mirror = 0,
       .kind = faultinject::FaultKind::kDelay,
       .delay = 5 * kMilli},
  };
  config.fd_auto_rejoin = false;
  SimCluster cluster(config);
  const auto r = cluster.run(spread_trace(400), {});
  EXPECT_TRUE(r.fd_transitions.empty());
  EXPECT_TRUE(r.rejoin_times.empty());
  EXPECT_EQ(r.obs->snapshot().counter_or("fd.dead_total"), 0u);
  ASSERT_EQ(r.state_fingerprints.size(), 3u);
  EXPECT_EQ(r.state_fingerprints[0], r.state_fingerprints[1]);
}

TEST(FailoverSim, ShortPartitionSuspectsThenRecovers) {
  // A partition longer than the overdue threshold but healed before the
  // confirm window expires: suspect -> alive, never dead (hysteresis).
  auto config = failover_config();
  config.fd->confirm_window = 60 * kMilli;
  config.fault_schedule = faultinject::Schedule{
      {.at = 200 * kMilli,
       .mirror = 0,
       .kind = faultinject::FaultKind::kPartitionIn,
       .duration = 45 * kMilli},  // expanded() emits the heal
  };
  config.fd_auto_rejoin = false;
  SimCluster cluster(config);
  const auto r = cluster.run(spread_trace(400), {});
  const std::vector<std::pair<fd::Health, fd::Health>> expected{
      {fd::Health::kAlive, fd::Health::kSuspect},
      {fd::Health::kSuspect, fd::Health::kAlive},
  };
  EXPECT_EQ(site_story(r.fd_transitions, 1), expected);
  EXPECT_EQ(r.obs->snapshot().counter_or("fd.recovered_total"), 1u);
  EXPECT_EQ(r.obs->snapshot().counter_or("fd.dead_total"), 0u);
}

TEST(FailoverSim, ChunkedReviveConvergesUnderLiveTraffic) {
  // Chunked revive (DESIGN.md §17) under the DES: the revived mirror
  // subscribes first, then streams donor state in bounded chunks while the
  // live trace keeps folding. Per-range anchors classify every buffered
  // duplicate; replicas must converge exactly.
  auto config = failover_config();
  config.recovery_chunk_records = 16;
  config.recovery_chunk_interval = kMilli;
  SimCluster cluster(config);
  harness::RunSpec spec;
  spec.faa_events = 800;
  spec.num_flights = 100;  // enough distinct keys for several chunks
  spec.event_padding = 128;
  spec.event_horizon = kSecond;
  const auto r = cluster.run(harness::make_trace(spec), {});

  ASSERT_EQ(r.state_fingerprints.size(), 3u);
  EXPECT_EQ(r.state_fingerprints[0], r.state_fingerprints[1]);
  EXPECT_EQ(r.state_fingerprints[0], r.state_fingerprints[2]);

  // The transfer really happened in bounded pieces.
  EXPECT_GT(r.recovery_chunks, 1u);
  EXPECT_GT(r.recovery_bytes, 0u);
  ASSERT_EQ(r.recovery_transfer_times.size(), 1u);
  EXPECT_GT(r.recovery_transfer_times[0], 0);
  // Chunk pacing stretches the transfer across at least the inter-chunk
  // gaps (first capture is free of a preceding interval).
  EXPECT_GE(r.recovery_transfer_times[0],
            static_cast<Nanos>(r.recovery_chunks - 1) * kMilli);

  // The fd story is unchanged by the transfer mechanics.
  const std::vector<std::pair<fd::Health, fd::Health>> expected{
      {fd::Health::kAlive, fd::Health::kSuspect},
      {fd::Health::kSuspect, fd::Health::kDead},
      {fd::Health::kDead, fd::Health::kRejoining},
      {fd::Health::kRejoining, fd::Health::kAlive},
  };
  EXPECT_EQ(site_story(r.fd_transitions, 1), expected);

  // Obs parity with the threaded runtime's recovery.* family.
  const auto snap = r.obs->snapshot();
  EXPECT_EQ(snap.counter_or("recovery.chunks_total"), r.recovery_chunks);
  EXPECT_EQ(snap.counter_or("recovery.bytes_total"), r.recovery_bytes);
  EXPECT_EQ(snap.counter_or("recovery.bootstraps_total"), 1u);
}

TEST(FailoverSim, ChunkedReviveIsDeterministic) {
  auto run_once = [] {
    auto config = failover_config();
    config.recovery_chunk_records = 16;
    config.recovery_chunk_interval = kMilli;
    SimCluster cluster(config);
    harness::RunSpec spec;
    spec.faa_events = 500;
    spec.num_flights = 60;
    spec.event_horizon = kSecond;
    return cluster.run(harness::make_trace(spec), {});
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.state_fingerprints, b.state_fingerprints);
  EXPECT_EQ(a.recovery_chunks, b.recovery_chunks);
  EXPECT_EQ(a.recovery_bytes, b.recovery_bytes);
  EXPECT_EQ(a.recovery_replay_events, b.recovery_replay_events);
  EXPECT_EQ(a.recovery_transfer_times, b.recovery_transfer_times);
  EXPECT_EQ(a.total_time, b.total_time);
}

TEST(FailoverSim, HugeChunkDegeneratesToMonolithicAndStillConverges) {
  // chunk_records >= table size: one covering chunk — the chunked path's
  // degenerate case must behave like the legacy bootstrap.
  auto config = failover_config();
  config.recovery_chunk_records = 1'000'000;
  SimCluster cluster(config);
  const auto r = cluster.run(spread_trace(500), {});
  EXPECT_EQ(r.recovery_chunks, 1u);
  ASSERT_EQ(r.state_fingerprints.size(), 3u);
  EXPECT_EQ(r.state_fingerprints[0], r.state_fingerprints[1]);
  EXPECT_EQ(r.state_fingerprints[0], r.state_fingerprints[2]);
}

TEST(FailoverSim, LegacyReviveReportsNoChunkMetrics) {
  // recovery_chunk_records = 0 keeps the original one-shot revive; the
  // recovery.* family must stay silent so dashboards can tell them apart.
  SimCluster cluster(failover_config());
  const auto r = cluster.run(spread_trace(500), {});
  ASSERT_EQ(r.state_fingerprints.size(), 3u);
  EXPECT_EQ(r.state_fingerprints[0], r.state_fingerprints[1]);
  EXPECT_EQ(r.recovery_chunks, 0u);
  EXPECT_EQ(r.recovery_bytes, 0u);
  EXPECT_TRUE(r.recovery_transfer_times.empty());
  EXPECT_EQ(r.obs->snapshot().counter_or("recovery.chunks_total"), 0u);
}

TEST(FailoverSim, ThreadedAndSimAgreeOnTransitionSequence) {
  // The acceptance bar for "the SAME logic runs in both runtimes": one
  // scenario (crash-stop, auto-rejoin), two drivers, identical suspicion
  // state-machine stories. Times differ (wall vs virtual), sites may differ
  // (the threaded rejoin bootstraps a replacement site), the (from, to)
  // sequence may not.
  fd::DetectorConfig d;
  d.heartbeat_interval = 10 * kMilli;
  d.suspect_after_missed = 5;  // generous: no spurious suspects under CI load
  d.confirm_window = 60 * kMilli;
  d.alive_after_beats = 2;

  // Simulated run.
  SimConfig sim_config;
  sim_config.num_mirrors = 2;
  sim_config.params.function = rules::simple_mirroring();
  sim_config.fd = d;
  sim_config.fault_schedule = faultinject::Schedule{
      {.at = 50 * kMilli,
       .mirror = 0,
       .kind = faultinject::FaultKind::kCrashStop},
  };
  sim_config.fd_auto_rejoin = true;
  sim_config.fd_rejoin_after = 50 * kMilli;
  SimCluster sim_cluster(sim_config);
  const auto sim_result = sim_cluster.run(spread_trace(300), {});
  const auto sim_story = site_story(sim_result.fd_transitions, 1);

  // Threaded run of the same scenario.
  cluster::ClusterConfig threaded;
  threaded.num_mirrors = 2;
  threaded.params =
      rules::MirroringParams{.function = rules::simple_mirroring()};
  threaded.control_plane = cluster::ControlPlaneConfig{};
  threaded.control_plane->detector = d;
  threaded.control_plane->auto_rejoin = true;
  threaded.control_plane->rejoin_after = 50 * kMilli;
  threaded.control_plane->poll_interval = std::chrono::milliseconds(2);
  threaded.control_plane->schedule = faultinject::Schedule{
      {.at = 50 * kMilli,
       .mirror = 0,
       .kind = faultinject::FaultKind::kCrashStop},
  };
  cluster::Cluster cluster(threaded);
  cluster.start();
  harness::RunSpec spec;
  spec.faa_events = 300;
  for (const auto& item : harness::make_trace(spec).items) {
    ASSERT_TRUE(cluster.ingest(item.ev).is_ok());
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  auto rejoined = [&] {
    const auto records = cluster.control_plane()->rejoin_records();
    return !records.empty() && records.front().rejoined_at != 0;
  };
  while (std::chrono::steady_clock::now() < deadline && !rejoined()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(rejoined());
  // The threaded story spans the dead original (site 1) and its
  // replacement (site 3); the healthy survivor (site 2) stays silent.
  const auto history = cluster.control_plane()->detector().history();
  std::vector<std::pair<fd::Health, fd::Health>> threaded_story;
  for (const auto& t : history) {
    if (t.site != 2) threaded_story.emplace_back(t.from, t.to);
  }
  cluster.stop();

  EXPECT_EQ(threaded_story, sim_story);
  ASSERT_EQ(sim_story.size(), 4u);
  EXPECT_EQ(sim_story.back().second, fd::Health::kAlive);
}

}  // namespace
}  // namespace admire::sim
