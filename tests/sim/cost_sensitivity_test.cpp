// Sensitivity analysis promised by DESIGN.md §6: the qualitative figure
// properties hold when every CPU cost constant is scaled by 0.5x..2x.
#include <gtest/gtest.h>

#include "harness/experiments.h"

namespace admire::sim {
namespace {

class CostSensitivity : public ::testing::TestWithParam<double> {};

harness::RunSpec base_spec(double scale) {
  harness::RunSpec spec;
  spec.faa_events = 600;
  spec.num_flights = 20;
  spec.event_padding = 1024;
  spec.costs = CostModel{}.scaled(scale);
  return spec;
}

TEST_P(CostSensitivity, MirroringOverheadOrderingHolds) {
  const double scale = GetParam();
  auto none = base_spec(scale);
  none.mirroring_enabled = false;
  none.mirrors = 0;
  auto simple = base_spec(scale);
  auto selective = base_spec(scale);
  selective.function = rules::selective_mirroring(8);

  const auto rn = harness::run_sim(none);
  const auto rs = harness::run_sim(simple);
  const auto rl = harness::run_sim(selective);

  // Fig. 4 ordering: none < selective < simple.
  EXPECT_LT(rn.total_time, rl.total_time);
  EXPECT_LT(rl.total_time, rs.total_time);
  // Overhead in a sane band (paper: ~15-20%; we accept 5-40% across scales).
  const double overhead = harness::percent_over(
      static_cast<double>(rs.total_time), static_cast<double>(rn.total_time));
  EXPECT_GT(overhead, 5.0);
  EXPECT_LT(overhead, 40.0);
}

TEST_P(CostSensitivity, PerMirrorCostStaysModest) {
  const double scale = GetParam();
  auto m1 = base_spec(scale);
  m1.mirrors = 1;
  auto m4 = base_spec(scale);
  m4.mirrors = 4;
  const auto r1 = harness::run_sim(m1);
  const auto r4 = harness::run_sim(m4);
  // Fig. 5: < 10% per additional mirror (allow 15% headroom across scales).
  const double per_mirror =
      harness::percent_over(static_cast<double>(r4.total_time),
                            static_cast<double>(r1.total_time)) /
      3.0;
  EXPECT_GT(per_mirror, 0.0);
  EXPECT_LT(per_mirror, 15.0);
}

TEST_P(CostSensitivity, SelectiveWinsUnderLoad) {
  const double scale = GetParam();
  auto simple = base_spec(scale);
  simple.request_rate = 200.0;
  simple.lb = LbPolicy::kMirrorsOnly;
  auto selective = simple;
  selective.function = rules::selective_mirroring(8);
  const auto rs = harness::run_sim(simple);
  const auto rl = harness::run_sim(selective);
  EXPECT_LT(rl.total_time, rs.total_time);
}

INSTANTIATE_TEST_SUITE_P(Scales, CostSensitivity,
                         ::testing::Values(0.5, 1.0, 2.0),
                         [](const auto& param_info) {
                           return param_info.param == 0.5   ? "half"
                                  : param_info.param == 1.0 ? "nominal"
                                                            : "double";
                         });

}  // namespace
}  // namespace admire::sim
