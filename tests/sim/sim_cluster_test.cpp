#include "sim/sim_cluster.h"

#include <gtest/gtest.h>

#include "harness/experiments.h"

namespace admire::sim {
namespace {

harness::RunSpec small_spec() {
  harness::RunSpec spec;
  spec.faa_events = 400;
  spec.num_flights = 10;
  spec.event_padding = 256;
  return spec;
}

TEST(SimCluster, ProcessesEverythingAndConverges) {
  auto spec = small_spec();
  spec.mirrors = 2;
  const auto r = harness::run_sim(spec);
  EXPECT_GT(r.total_time, 0);
  EXPECT_EQ(r.events_offered, harness::make_trace(spec).size());
  // Simple mirroring: every event mirrored to each of the 2 mirrors.
  EXPECT_EQ(r.wire_events_mirrored, r.pipeline_counters.sent * 2);
  // All replicas identical (simple mirroring => lossless).
  ASSERT_EQ(r.state_fingerprints.size(), 3u);
  EXPECT_EQ(r.state_fingerprints[0], r.state_fingerprints[1]);
  EXPECT_EQ(r.state_fingerprints[1], r.state_fingerprints[2]);
  EXPECT_GT(r.checkpoints_committed, 0u);
  EXPECT_GT(r.update_delays->count(), 0u);
}

TEST(SimCluster, DeterministicAcrossRuns) {
  const auto a = harness::run_sim(small_spec());
  const auto b = harness::run_sim(small_spec());
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.checkpoints_committed, b.checkpoints_committed);
  EXPECT_EQ(a.state_fingerprints, b.state_fingerprints);
  EXPECT_DOUBLE_EQ(a.update_delays->mean(), b.update_delays->mean());
}

TEST(SimCluster, MirroringCostsMoreThanBaseline) {
  auto none = small_spec();
  none.mirroring_enabled = false;
  none.mirrors = 0;
  auto simple = small_spec();
  const auto rn = harness::run_sim(none);
  const auto rs = harness::run_sim(simple);
  EXPECT_GT(rs.total_time, rn.total_time);
}

TEST(SimCluster, SelectiveMirrorsFewerEvents) {
  auto simple = small_spec();
  auto selective = small_spec();
  selective.function = rules::selective_mirroring(8);
  const auto rs = harness::run_sim(simple);
  const auto rl = harness::run_sim(selective);
  // 400 FAA events collapse ~8x; the small Delta stream is untouched.
  EXPECT_LT(rl.wire_events_mirrored, rs.wire_events_mirrored / 2);
  EXPECT_LT(rl.total_time, rs.total_time);
  // No event is lost from accounting even when discarded for mirroring.
  EXPECT_EQ(rl.rule_counters.total_seen(), rl.events_offered);
}

TEST(SimCluster, MirrorsConvergeToEachOtherUnderSelective) {
  auto spec = small_spec();
  spec.mirrors = 3;
  spec.function = rules::selective_mirroring(8);
  const auto r = harness::run_sim(spec);
  ASSERT_EQ(r.state_fingerprints.size(), 4u);
  // All mirrors saw the same filtered stream.
  EXPECT_EQ(r.state_fingerprints[1], r.state_fingerprints[2]);
  EXPECT_EQ(r.state_fingerprints[2], r.state_fingerprints[3]);
  // The central's state (full stream) may legitimately differ.
}

TEST(SimCluster, RequestsAreServedAndRecorded) {
  auto spec = small_spec();
  spec.request_rate = 200.0;
  spec.requests_while_events = false;
  spec.request_window = kSecond / 2;
  const auto r = harness::run_sim(spec);
  EXPECT_GT(r.requests_served, 0u);
  EXPECT_EQ(r.requests_served, r.request_latency->count());
  EXPECT_GT(r.request_completion, 0);
}

TEST(SimCluster, AutoRequestsStopWithEventCompletion) {
  auto spec = small_spec();
  spec.request_rate = 300.0;  // auto mode (requests_while_events default)
  const auto r = harness::run_sim(spec);
  EXPECT_GT(r.requests_served, 0u);
  // The generator stops once events are done; total completion is bounded.
  EXPECT_LT(r.total_time, 60 * kSecond);
}

TEST(SimCluster, LoadSlowsTotalCompletion) {
  auto unloaded = small_spec();
  auto loaded = small_spec();
  loaded.request_rate = 400.0;
  const auto ru = harness::run_sim(unloaded);
  const auto rl = harness::run_sim(loaded);
  EXPECT_GT(rl.total_time, ru.total_time);
}

TEST(SimCluster, MirrorsOnlyLbNeverHitsCentral) {
  auto spec = small_spec();
  spec.mirrors = 2;
  spec.request_rate = 300.0;
  spec.lb = LbPolicy::kMirrorsOnly;
  const auto r = harness::run_sim(spec);
  EXPECT_GT(r.requests_served, 0u);
  // Central utilization reflects only event work; its update delays should
  // be low because no request contended there. Compare against all-sites.
  auto all = spec;
  all.lb = LbPolicy::kAllSites;
  const auto ra = harness::run_sim(all);
  EXPECT_LE(r.update_delays->mean(), ra.update_delays->mean() * 1.5 + 1e6);
}

TEST(SimCluster, MoreMirrorsCostMoreWithoutLoad) {
  auto spec1 = small_spec();
  spec1.mirrors = 1;
  auto spec4 = small_spec();
  spec4.mirrors = 4;
  EXPECT_LT(harness::run_sim(spec1).total_time,
            harness::run_sim(spec4).total_time);
}

TEST(SimCluster, PacedArrivalsRespectHorizon) {
  auto spec = small_spec();
  spec.event_horizon = 2 * kSecond;  // paced replay
  const auto r = harness::run_sim(spec);
  EXPECT_GE(r.event_completion, 2 * kSecond);
  // Under-loaded paced run: delays stay far below the horizon.
  EXPECT_LT(r.update_delays->mean(), static_cast<double>(kSecond));
}

TEST(SimCluster, AdaptationEngagesUnderBurst) {
  harness::RunSpec spec;
  spec.faa_events = 4000;
  spec.event_horizon = 6 * kSecond;
  spec.event_padding = 1024;
  spec.bursty = true;
  spec.request_rate = 20;
  spec.burst_rate = 700;
  spec.burst_period = 3 * kSecond;
  spec.burst_duty = 0.4;
  spec.request_window = 6 * kSecond;
  spec.requests_while_events = false;
  spec.function = rules::fig9_function_a();
  adapt::AdaptationPolicy policy;
  policy.thresholds = {{adapt::MonitoredVariable::kPendingRequests, 3, 2}};
  policy.mode = adapt::PolicyMode::kSwitchFunction;
  policy.normal_spec = rules::fig9_function_a();
  policy.engaged_spec = rules::fig9_function_b();
  spec.adaptation = policy;
  const auto r = harness::run_sim(spec);
  EXPECT_GE(r.adaptation_transitions, 2u);  // engaged and released
}

TEST(SimCluster, ParallelTxMatchesSerialSemanticsAndIsNoSlower) {
  auto serial = small_spec();
  serial.mirrors = 3;
  auto parallel = serial;
  parallel.tx_parallel = true;
  const auto rs = harness::run_sim(serial);
  const auto rp = harness::run_sim(parallel);
  // The transmit stage changes only *when* destination work happens, never
  // what is sent: identical rule decisions, wire traffic and replica state.
  EXPECT_EQ(rp.rule_counters.total_seen(), rs.rule_counters.total_seen());
  EXPECT_EQ(rp.rule_counters.accepted, rs.rule_counters.accepted);
  EXPECT_EQ(rp.pipeline_counters.sent, rs.pipeline_counters.sent);
  EXPECT_EQ(rp.wire_events_mirrored, rs.wire_events_mirrored);
  EXPECT_EQ(rp.state_fingerprints, rs.state_fingerprints);
  // Overlapping the per-destination send chains cannot lose time: with 3
  // mirrors the serialized send task is the bottleneck the stage removes.
  EXPECT_LE(rp.total_time, rs.total_time);
}

TEST(SimCluster, ParallelTxIsDeterministic) {
  auto spec = small_spec();
  spec.mirrors = 2;
  spec.tx_parallel = true;
  const auto a = harness::run_sim(spec);
  const auto b = harness::run_sim(spec);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.state_fingerprints, b.state_fingerprints);
}

TEST(SimCluster, DrainShardsMatchSerialSemanticsAndAreNoSlower) {
  auto serial = small_spec();
  serial.mirrors = 3;
  serial.rx_shards = 4;
  auto sharded = serial;
  sharded.drain_shards = 4;
  const auto rs = harness::run_sim(serial);
  const auto rp = harness::run_sim(sharded);
  // Drain sharding changes only *when* send-side work is charged, never
  // what is sent: identical rule decisions, wire traffic, replica state.
  EXPECT_EQ(rp.rule_counters.total_seen(), rs.rule_counters.total_seen());
  EXPECT_EQ(rp.rule_counters.accepted, rs.rule_counters.accepted);
  EXPECT_EQ(rp.pipeline_counters.sent, rs.pipeline_counters.sent);
  EXPECT_EQ(rp.wire_events_mirrored, rs.wire_events_mirrored);
  EXPECT_EQ(rp.state_fingerprints, rs.state_fingerprints);
  // Overlapping the per-drain-shard host chains cannot lose time: the
  // serialized drain is exactly the stage the sharding removes.
  EXPECT_LE(rp.total_time, rs.total_time);
}

TEST(SimCluster, DrainShardsAreDeterministicAndClamped) {
  auto spec = small_spec();
  spec.mirrors = 2;
  spec.rx_shards = 2;
  spec.drain_shards = 2;
  const auto a = harness::run_sim(spec);
  const auto b = harness::run_sim(spec);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.state_fingerprints, b.state_fingerprints);
  // More drain shards than rx shards clamps to the rx count — byte-for-byte
  // the same schedule, not an error.
  auto over = spec;
  over.drain_shards = 8;
  const auto c = harness::run_sim(over);
  EXPECT_EQ(c.total_time, a.total_time);
  EXPECT_EQ(c.state_fingerprints, a.state_fingerprints);
}

TEST(SimCluster, CheckpointsTrimBackupQueues) {
  const auto spec = small_spec();
  sim::SimConfig config;
  config.num_mirrors = 1;
  config.params.function = rules::simple_mirroring();
  config.closed_loop_source = true;
  SimCluster cluster(config);
  const auto r = cluster.run(harness::make_trace(spec), {});
  EXPECT_GT(r.checkpoints_committed, 0u);
  // After the run the pipeline's backup holds only post-last-commit events:
  // far fewer than everything ever sent.
  EXPECT_LT(r.pipeline_counters.sent, r.events_offered + 1);
}

}  // namespace
}  // namespace admire::sim
