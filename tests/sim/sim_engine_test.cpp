#include <gtest/gtest.h>

#include "sim/cost_model.h"
#include "sim/engine.h"
#include "sim/resources.h"

namespace admire::sim {
namespace {

TEST(SimEngine, ExecutesInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.schedule_at(300, [&] { order.push_back(3); });
  engine.schedule_at(100, [&] { order.push_back(1); });
  engine.schedule_at(200, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 300);
  EXPECT_EQ(engine.executed(), 3u);
}

TEST(SimEngine, FifoTieBreakAtEqualTimes) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimEngine, ActionsMayScheduleMore) {
  SimEngine engine;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) engine.schedule_after(10, chain);
  };
  engine.schedule_at(0, chain);
  engine.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(engine.now(), 40);
}

TEST(SimEngine, PastScheduleClampsToNow) {
  SimEngine engine;
  Nanos observed = -1;
  engine.schedule_at(100, [&] {
    engine.schedule_at(50, [&] { observed = engine.now(); });  // in the past
  });
  engine.run();
  EXPECT_EQ(observed, 100);
}

TEST(SimEngine, RunBoundedStops) {
  SimEngine engine;
  std::function<void()> forever = [&] { engine.schedule_after(1, forever); };
  engine.schedule_at(0, forever);
  EXPECT_EQ(engine.run_bounded(100), 100u);
  EXPECT_GT(engine.pending(), 0u);
}

TEST(CpuResource, SingleCpuSerializesJobs) {
  CpuResource cpu(1);
  EXPECT_EQ(cpu.schedule_job(0, 100), 100);
  EXPECT_EQ(cpu.schedule_job(0, 100), 200);   // queued behind the first
  EXPECT_EQ(cpu.schedule_job(500, 100), 600); // idle gap then run
  EXPECT_EQ(cpu.jobs(), 3u);
  EXPECT_EQ(cpu.busy_time(), 300);
}

TEST(CpuResource, TwoCpusRunInParallel) {
  CpuResource cpu(2);
  EXPECT_EQ(cpu.schedule_job(0, 100), 100);
  EXPECT_EQ(cpu.schedule_job(0, 100), 100);  // second processor
  EXPECT_EQ(cpu.schedule_job(0, 100), 200);  // queues on the earliest
  EXPECT_EQ(cpu.busy_until(), 200);
}

TEST(CpuResource, UtilizationAccounting) {
  CpuResource cpu(2);
  cpu.schedule_job(0, 100);
  cpu.schedule_job(0, 100);
  EXPECT_DOUBLE_EQ(cpu.utilization(100), 1.0);
  EXPECT_DOUBLE_EQ(cpu.utilization(200), 0.5);
}

TEST(CpuResource, ZeroCpusClampedToOne) {
  CpuResource cpu(0);
  EXPECT_EQ(cpu.cpus(), 1u);
}

TEST(SimLink, BandwidthSerializesBackToBack) {
  SimLink link(1e9, 0);  // 1 GB/s, no latency
  EXPECT_EQ(link.delivery_time(0, 1000), 1000);    // 1 us transmit
  EXPECT_EQ(link.delivery_time(0, 1000), 2000);    // queued behind first
  EXPECT_EQ(link.delivery_time(10000, 1000), 11000);
  EXPECT_EQ(link.bytes_carried(), 3000u);
}

TEST(SimLink, LatencyAddsAfterTransmit) {
  SimLink link(1e9, 500);
  EXPECT_EQ(link.delivery_time(0, 1000), 1500);
}

TEST(SimLink, UnlimitedBandwidth) {
  SimLink link(0.0, 100);
  EXPECT_EQ(link.delivery_time(0, 1'000'000), 100);
  EXPECT_EQ(link.delivery_time(0, 1'000'000), 100);  // no serialization
}

TEST(CostModel, HelpersAreAffine) {
  CostModel costs;
  EXPECT_EQ(costs.recv_cost(0), costs.recv_base);
  EXPECT_GT(costs.recv_cost(1000), costs.recv_cost(100));
  EXPECT_EQ(costs.ede_cost(0), costs.ede_base);
  EXPECT_EQ(costs.request_cost(0), costs.request_base);
}

TEST(CostModel, ScaledMultipliesEverything) {
  CostModel base;
  const CostModel doubled = base.scaled(2.0);
  EXPECT_EQ(doubled.recv_base, 2 * base.recv_base);
  EXPECT_DOUBLE_EQ(doubled.ede_per_byte, 2 * base.ede_per_byte);
  EXPECT_EQ(doubled.chkpt_coordinator, 2 * base.chkpt_coordinator);
  EXPECT_EQ(doubled.request_cost(100), 2 * base.request_cost(100));
  // Link properties are not CPU costs and stay put.
  EXPECT_DOUBLE_EQ(doubled.cluster_link_bps, base.cluster_link_bps);
}

}  // namespace
}  // namespace admire::sim
