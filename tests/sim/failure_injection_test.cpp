// Failure injection: the paper's no-timeout argument for the checkpoint
// protocol — "if a control event is lost, the subsequent checkpointing
// calls will result in commits of more recent events ... checkpointing
// will commit eventually" — exercised by dropping control messages on the
// simulated cluster network.
#include <gtest/gtest.h>

#include "harness/experiments.h"

namespace admire::sim {
namespace {

SimConfig lossy_config(double loss, std::size_t mirrors = 2) {
  SimConfig config;
  config.num_mirrors = mirrors;
  config.params.function = rules::simple_mirroring();
  config.closed_loop_source = true;
  config.control_loss_probability = loss;
  return config;
}

workload::Trace trace_of(std::uint64_t events) {
  harness::RunSpec spec;
  spec.faa_events = events;
  spec.num_flights = 10;
  spec.event_padding = 128;
  return harness::make_trace(spec);
}

TEST(FailureInjection, CheckpointsStillCommitUnderLoss) {
  SimCluster cluster(lossy_config(0.3));
  const auto r = cluster.run(trace_of(2000), {});
  EXPECT_GT(r.control_messages_dropped, 0u);
  // Some rounds stall, but encapsulation keeps the committed view moving.
  EXPECT_GT(r.checkpoints_committed, r.checkpoints_started / 4);
  EXPECT_LT(r.checkpoints_committed, r.checkpoints_started + 1);
}

TEST(FailureInjection, DataPathUnaffectedByControlLoss) {
  SimCluster lossless(lossy_config(0.0));
  SimCluster lossy(lossy_config(0.5));
  const auto r0 = lossless.run(trace_of(1000), {});
  const auto r1 = lossy.run(trace_of(1000), {});
  // Every event still reaches every replica; state convergence is a
  // data-plane property, independent of control losses.
  EXPECT_EQ(r1.wire_events_mirrored, r0.wire_events_mirrored);
  ASSERT_EQ(r1.state_fingerprints.size(), 3u);
  EXPECT_EQ(r1.state_fingerprints[0], r1.state_fingerprints[1]);
  EXPECT_EQ(r1.state_fingerprints[1], r1.state_fingerprints[2]);
}

TEST(FailureInjection, BackupQueuesBoundedWhenSomeCommitsLand) {
  // With moderate loss, enough commits land that the backup queues do not
  // retain the whole run.
  SimCluster cluster(lossy_config(0.2));
  const auto r = cluster.run(trace_of(3000), {});
  ASSERT_FALSE(r.backup_sizes.empty());
  for (const std::size_t size : r.backup_sizes) {
    EXPECT_LT(size, r.events_offered / 2)
        << "backup retained most of the run despite commits";
  }
}

TEST(FailureInjection, TotalLossNeverViolatesSafety) {
  // Even when EVERY control message is lost, data still flows; only the
  // consistency view stalls (backups are never trimmed).
  SimCluster cluster(lossy_config(1.0, 1));
  const auto r = cluster.run(trace_of(500), {});
  EXPECT_EQ(r.checkpoints_committed, 0u);
  ASSERT_EQ(r.state_fingerprints.size(), 2u);
  EXPECT_EQ(r.state_fingerprints[0], r.state_fingerprints[1]);
  // Backup queues hold everything — the price of a dead control plane.
  EXPECT_GT(r.backup_sizes[0], 0u);
}

TEST(FailureInjection, CommittedViewIsMonotoneUnderChaos) {
  // Sweep seeds; the run must always complete with consistent accounting.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SimConfig config = lossy_config(0.4);
    config.fault_seed = seed;
    SimCluster cluster(config);
    const auto r = cluster.run(trace_of(800), {});
    EXPECT_EQ(r.rule_counters.total_seen(), r.events_offered);
    EXPECT_LE(r.checkpoints_committed, r.checkpoints_started);
  }
}

}  // namespace
}  // namespace admire::sim
namespace admire::sim {
namespace {

TEST(Outage, BrownedOutMirrorDefersWorkButLosesNothing) {
  SimConfig config;
  config.num_mirrors = 2;
  config.params.function = rules::simple_mirroring();
  config.outage_mirror = 0;
  config.outage_from = 0;  // down from the start...
  config.outage_duration = 30 * kSecond;  // ...past the whole run
  SimCluster cluster(config);
  harness::RunSpec spec;
  spec.faa_events = 300;
  spec.num_flights = 8;
  spec.event_padding = 64;
  spec.event_horizon = kSecond;
  const auto r = cluster.run(harness::make_trace(spec), {});
  // All events were still delivered and (after the window) processed;
  // replicas converge, but completion waited for the outage to end.
  ASSERT_EQ(r.state_fingerprints.size(), 3u);
  EXPECT_EQ(r.state_fingerprints[1], r.state_fingerprints[2]);
  EXPECT_GE(r.event_completion, 30 * kSecond);
}

TEST(Outage, PoolDepthAndLoadBalancingMaskTheBrownOut) {
  auto run_with = [](std::size_t mirrors, LbPolicy lb, bool outage) {
    SimConfig config;
    config.num_mirrors = mirrors;
    config.params.function = rules::selective_mirroring(8);
    config.lb = lb;
    if (outage) {
      config.outage_mirror = 0;
      config.outage_from = kSecond;
      config.outage_duration = 2 * kSecond;
    }
    SimCluster cluster(config);
    harness::RunSpec spec;
    spec.faa_events = 1000;
    spec.event_horizon = 5 * kSecond;
    spec.request_rate = 100;
    spec.requests_while_events = false;
    spec.request_window = 5 * kSecond;
    return cluster.run(harness::make_trace(spec), harness::make_requests(spec));
  };

  // A lone mirror (the only request server) browning out stalls requests
  // for up to the outage length...
  const auto lone = run_with(1, LbPolicy::kMirrorsOnly, true);
  const auto lone_base = run_with(1, LbPolicy::kMirrorsOnly, false);
  EXPECT_GT(lone.request_latency->percentile(0.99),
            10.0 * std::max(lone_base.request_latency->percentile(0.99), 1.0));
  EXPECT_GT(lone.request_latency->max(), 1.5e9);  // >1.5 s stalls observed

  // ...while a least-loaded balancer over a deeper pool steers around the
  // dead site: tail within a small factor of the undisturbed baseline.
  const auto pool = run_with(3, LbPolicy::kLeastLoaded, true);
  const auto pool_base = run_with(3, LbPolicy::kLeastLoaded, false);
  EXPECT_LT(pool.request_latency->percentile(0.99),
            3.0 * std::max(pool_base.request_latency->percentile(0.99), 1.0) +
                50e6);
  EXPECT_EQ(pool.requests_served, lone.requests_served);
}

}  // namespace
}  // namespace admire::sim
