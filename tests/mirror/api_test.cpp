// Tests for the paper's Table 1 API surface.
#include "mirror/mirroring_api.h"

#include <gtest/gtest.h>

namespace admire::mirror {
namespace {

event::Event faa(FlightKey flight, SeqNo seq) {
  event::FaaPosition pos;
  pos.flight = flight;
  return event::make_faa_position(0, seq, pos);
}

TEST(MirroringApi, InitSetsFunctionKnobs) {
  MirroringApi api;
  api.init(/*coalesce=*/true, /*number=*/5, /*l=*/8);
  const auto p = api.params();
  EXPECT_TRUE(p.function.coalesce_enabled);
  EXPECT_EQ(p.function.coalesce_max, 5u);
  EXPECT_EQ(p.function.overwrite_max, 8u);
}

TEST(MirroringApi, SetParamsUpdatesCheckpointFrequency) {
  MirroringApi api;
  api.set_params(false, 1, 200);
  EXPECT_EQ(api.params().function.checkpoint_every, 200u);
}

TEST(MirroringApi, SetOverwriteReplacesExistingRuleForType) {
  MirroringApi api;
  api.set_overwrite(event::EventType::kFaaPosition, 4);
  api.set_overwrite(event::EventType::kFaaPosition, 9);
  const auto p = api.params();
  ASSERT_EQ(p.overwrite_rules.size(), 1u);
  EXPECT_EQ(p.overwrite_rules[0].max_length, 9u);
  EXPECT_EQ(p.overwrite_length_for(event::EventType::kFaaPosition), 9u);
}

TEST(MirroringApi, SetComplexSeqAndTupleAccumulate) {
  MirroringApi api;
  api.set_complex_seq(event::EventType::kDeltaStatus,
                      rules::match_delta_status(event::FlightStatus::kLanded),
                      event::EventType::kFaaPosition);
  rules::ComplexTupleRule tuple;
  tuple.constituents = {{event::EventType::kDeltaStatus, rules::match_any()}};
  api.set_complex_tuple(std::move(tuple));
  const auto p = api.params();
  EXPECT_EQ(p.complex_seq_rules.size(), 1u);
  EXPECT_EQ(p.complex_tuple_rules.size(), 1u);
}

TEST(MirroringApi, InitResetsAccumulatedRules) {
  MirroringApi api;
  api.set_overwrite(event::EventType::kFaaPosition, 4);
  api.init(false, 1, 1);
  EXPECT_TRUE(api.params().overwrite_rules.empty());
}

TEST(MirroringApi, AdaptationPolicyFromSetAdaptAndMonitors) {
  MirroringApi api;
  api.set_monitor_values(adapt::MonitoredVariable::kPendingRequests, 10, 5);
  api.set_adapt(adapt::ParamId::kOverwriteMax, 100);
  ASSERT_TRUE(api.adaptation_configured());
  const auto policy = api.adaptation_policy();
  EXPECT_EQ(policy.mode, adapt::PolicyMode::kAdjustParams);
  ASSERT_EQ(policy.thresholds.size(), 1u);
  EXPECT_DOUBLE_EQ(policy.thresholds[0].primary, 10.0);
  ASSERT_EQ(policy.adjustments.size(), 1u);
  EXPECT_EQ(policy.adjustments[0].percent, 100);
}

TEST(MirroringApi, SetAdaptFunctionPrefersSwitchMode) {
  MirroringApi api;
  api.set_monitor_values(adapt::MonitoredVariable::kReadyQueueLength, 50, 25);
  api.set_adapt_function(rules::fig9_function_b());
  const auto policy = api.adaptation_policy();
  EXPECT_EQ(policy.mode, adapt::PolicyMode::kSwitchFunction);
  EXPECT_EQ(policy.engaged_spec, rules::fig9_function_b());
}

TEST(MirroringApi, SetMonitorValuesReplacesSameVariable) {
  MirroringApi api;
  api.set_monitor_values(adapt::MonitoredVariable::kPendingRequests, 10, 5);
  api.set_monitor_values(adapt::MonitoredVariable::kPendingRequests, 20, 8);
  const auto policy = api.adaptation_policy();
  ASSERT_EQ(policy.thresholds.size(), 1u);
  EXPECT_DOUBLE_EQ(policy.thresholds[0].primary, 20.0);
}

TEST(MirroringApi, MirrorAndFwdUseSinksWhenBound) {
  MirroringApi api;
  PipelineCore core(api.params(), 2);
  std::vector<event::Event> mirrored, forwarded;
  api.bind(
      &core, [&](const event::Event& ev) { mirrored.push_back(ev); },
      [&](const event::Event& ev) { forwarded.push_back(ev); }, [] {});
  EXPECT_TRUE(api.bound());
  api.mirror(faa(1, 1));
  api.fwd(faa(1, 2));
  ASSERT_EQ(mirrored.size(), 1u);
  ASSERT_EQ(forwarded.size(), 1u);
  EXPECT_EQ(mirrored[0].seq(), 1u);
  EXPECT_EQ(forwarded[0].seq(), 2u);
}

TEST(MirroringApi, CustomMirrorFunctionCanFilterOrDelegate) {
  // set_mirror(func): "set new mirroring function func".
  MirroringApi api;
  PipelineCore core(api.params(), 2);
  std::vector<event::Event> mirrored;
  api.bind(
      &core, [&](const event::Event& ev) { mirrored.push_back(ev); },
      [](const event::Event&) {}, [] {});
  api.set_mirror([](const event::Event& ev, const EventSink& fallthrough) {
    if (ev.key() % 2 == 0) fallthrough(ev);  // mirror only even flights
  });
  api.mirror(faa(1, 1));
  api.mirror(faa(2, 2));
  api.mirror(faa(3, 3));
  ASSERT_EQ(mirrored.size(), 1u);
  EXPECT_EQ(mirrored[0].key(), 2u);
}

TEST(MirroringApi, CustomFwdFunction) {
  MirroringApi api;
  PipelineCore core(api.params(), 2);
  int fwd_calls = 0;
  api.bind(
      &core, [](const event::Event&) {},
      [&](const event::Event&) { ++fwd_calls; }, [] {});
  api.set_fwd([](const event::Event& ev, const EventSink& fallthrough) {
    fallthrough(ev);
    fallthrough(ev);  // custom: duplicate delivery
  });
  api.fwd(faa(1, 1));
  EXPECT_EQ(fwd_calls, 2);
}

TEST(MirroringApi, CheckpointTriggerInvoked) {
  MirroringApi api;
  PipelineCore core(api.params(), 2);
  int triggers = 0;
  api.bind(&core, [](const event::Event&) {}, [](const event::Event&) {},
           [&] { ++triggers; });
  api.checkpoint();
  api.checkpoint();
  EXPECT_EQ(triggers, 2);
}

TEST(MirroringApi, ConfigChangesPropagateToBoundCore) {
  MirroringApi api;
  PipelineCore core(api.params(), 2);
  api.bind(&core, [](const event::Event&) {}, [](const event::Event&) {},
           [] {});
  api.use_function(rules::selective_mirroring(8, 75));
  EXPECT_EQ(core.current_spec().name, "selective");
  EXPECT_EQ(core.checkpoint_every(), 75u);
}

TEST(MirroringApi, UnboundCallsAreSafeNoops) {
  MirroringApi api;
  api.mirror(faa(1, 1));
  api.fwd(faa(1, 2));
  api.checkpoint();  // must not crash
  EXPECT_FALSE(api.bound());
}

}  // namespace
}  // namespace admire::mirror
