// Drain-shard invariants: the number of drain shards must not change any
// send decision — merged rule counters, per-flight send order, backup
// contents, checkpoint cadence and sent/bytes accounting are all identical
// whether one sending task drains every segment or D tasks drain their own
// flight partitions. These tests run everything sequentially so failures
// implicate the drain sharding itself, not a race;
// tests/stress/drain_concurrency_test.cpp hammers the same invariants from
// concurrent drainer threads.
#include "mirror/sharded_pipeline_core.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "obs/registry.h"

namespace admire::mirror {
namespace {

event::Event faa(FlightKey flight, StreamId stream, SeqNo seq) {
  event::FaaPosition pos;
  pos.flight = flight;
  return event::make_faa_position(stream, seq, pos, 32);
}

event::Event delta(FlightKey flight, StreamId stream, SeqNo seq,
                   event::FlightStatus status) {
  event::DeltaStatus st;
  st.flight = flight;
  st.status = status;
  return event::make_delta_status(stream, seq, st);
}

rules::MirroringParams params_of(rules::MirrorFunctionSpec spec) {
  rules::MirroringParams p;
  p.function = std::move(spec);
  return p;
}

std::vector<event::Event> mixed_workload(std::size_t count,
                                         std::size_t flights) {
  std::vector<event::Event> out;
  out.reserve(count);
  SeqNo seq[2] = {0, 0};
  const event::FlightStatus cycle[] = {event::FlightStatus::kLanded,
                                       event::FlightStatus::kAtRunway,
                                       event::FlightStatus::kAtGate};
  for (std::size_t i = 0; i < count; ++i) {
    const auto flight = static_cast<FlightKey>(1 + i % flights);
    const auto stream = static_cast<StreamId>(i % 2);
    if (i % 7 == 6) {
      out.push_back(delta(flight, stream, ++seq[stream], cycle[(i / 7) % 3]));
    } else {
      out.push_back(faa(flight, stream, ++seq[stream]));
    }
  }
  return out;
}

/// Ingest everything, then drain by visiting every drain shard round-robin
/// in small batches (the drain pool's schedule, minus the threads), then
/// flush. Returns the wire events in emission order.
std::vector<event::Event> run_through_shards(
    ShardedPipelineCore& core, const std::vector<event::Event>& evs) {
  for (const auto& ev : evs) core.on_incoming(ev, 0);
  std::vector<event::Event> sent;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t d = 0; d < core.num_drain_shards(); ++d) {
      if (auto step = core.try_send_batch_shard(d, 8, 0)) {
        progress = true;
        for (auto& ev : step->to_send) sent.push_back(std::move(ev));
      }
    }
  }
  for (auto& ev : core.flush(0).to_send) sent.push_back(std::move(ev));
  return sent;
}

std::map<FlightKey, std::vector<SeqNo>> per_flight_order(
    const std::vector<event::Event>& evs) {
  std::map<FlightKey, std::vector<SeqNo>> order;
  for (const auto& ev : evs) order[ev.key()].push_back(ev.seq());
  return order;
}

/// Everything still in the backup view, keyed per flight — the paper's
/// replay payload, which must not depend on how many drains produced it.
std::map<FlightKey, std::vector<SeqNo>> backup_contents(
    const ShardedPipelineCore& core) {
  const event::VectorTimestamp none(4);
  return per_flight_order(core.backup().entries_after(none));
}

TEST(DrainShard, SendResultsInvariantToDrainShardCount) {
  const auto evs = mixed_workload(1200, 17);
  rules::RuleCounters baseline_rules;
  PipelineCounters baseline_pc;
  std::map<FlightKey, std::vector<SeqNo>> baseline_order;
  std::map<FlightKey, std::vector<SeqNo>> baseline_backup;
  for (const std::size_t drains : {1u, 2u, 4u, 8u}) {
    ShardedPipelineCore core(
        rules::ois_default_rules(rules::selective_mirroring(3)), 2,
        /*num_shards=*/8, drains);
    ASSERT_EQ(core.num_drain_shards(), drains);
    const auto order = per_flight_order(run_through_shards(core, evs));
    if (drains == 1) {
      baseline_rules = core.rule_counters();
      baseline_pc = core.counters();
      baseline_order = order;
      baseline_backup = backup_contents(core);
      EXPECT_EQ(baseline_rules.total_seen(), evs.size());
      continue;
    }
    EXPECT_EQ(core.rule_counters(), baseline_rules) << drains << " drains";
    EXPECT_EQ(core.counters().received, baseline_pc.received);
    EXPECT_EQ(core.counters().enqueued, baseline_pc.enqueued);
    EXPECT_EQ(core.counters().sent, baseline_pc.sent);
    EXPECT_EQ(core.counters().bytes_sent, baseline_pc.bytes_sent);
    EXPECT_EQ(core.counters().checkpoints_due, baseline_pc.checkpoints_due);
    // Global interleaving may differ; each flight's subsequence may not.
    EXPECT_EQ(order, baseline_order) << drains << " drains";
    EXPECT_EQ(backup_contents(core), baseline_backup) << drains << " drains";
    EXPECT_EQ(core.backup().size(), baseline_pc.sent);
  }
}

TEST(DrainShard, ShardedDrainMatchesSerialDrainWithCoalescing) {
  // Coalescing is the stateful part of the drain: release decisions live
  // in per-flight combine buffers. They must be identical whether the
  // serial drain or a drain shard owns the buffer.
  auto spec = rules::selective_mirroring(2);
  spec.coalesce_enabled = true;
  spec.coalesce_max = 4;
  const auto evs = mixed_workload(800, 9);
  ShardedPipelineCore serial(params_of(spec), 2, 8, 1);
  ShardedPipelineCore sharded(params_of(spec), 2, 8, 4);
  const auto serial_order = per_flight_order(run_through_shards(serial, evs));
  const auto sharded_order = per_flight_order(run_through_shards(sharded, evs));
  EXPECT_EQ(serial_order, sharded_order);
  EXPECT_EQ(serial.counters().sent, sharded.counters().sent);
  EXPECT_EQ(backup_contents(serial), backup_contents(sharded));
}

TEST(DrainShard, OwnershipPartitionsRxShards) {
  // Every rx shard belongs to exactly one drain shard; rx shard 0 (control
  // events) always belongs to drain shard 0.
  for (const std::size_t drains : {1u, 2u, 3u, 4u, 8u}) {
    std::set<std::size_t> seen;
    for (std::size_t rx = 0; rx < 8; ++rx) {
      const std::size_t d = ShardedPipelineCore::drain_shard_of(rx, drains);
      EXPECT_LT(d, drains);
      seen.insert(d);
    }
    EXPECT_EQ(seen.size(), std::min<std::size_t>(drains, 8));
    EXPECT_EQ(ShardedPipelineCore::drain_shard_of(0, drains), 0u);
  }
}

TEST(DrainShard, BatchShardPopsOnlyOwnedSegments) {
  ShardedPipelineCore core(params_of(rules::simple_mirroring()), 2, 8, 2);
  SeqNo seq = 0;
  for (FlightKey key = 1; key <= 64; ++key) core.on_incoming(faa(key, 0, ++seq), 0);
  auto step = core.try_send_batch_shard(0, 64, 0);
  ASSERT_TRUE(step.has_value());
  EXPECT_FALSE(step->to_send.empty());
  for (const auto& ev : step->to_send) {
    const std::size_t rx = ShardedPipelineCore::shard_of_key(ev.key(), 8);
    EXPECT_EQ(ShardedPipelineCore::drain_shard_of(rx, 2), 0u)
        << "drain shard 0 popped a segment it does not own";
  }
  // The other drain shard still holds its half.
  auto rest = core.try_send_batch_shard(1, 64, 0);
  ASSERT_TRUE(rest.has_value());
  EXPECT_EQ(step->to_send.size() + rest->to_send.size(), 64u);
  EXPECT_EQ(core.drain_shard_drained(0), step->consumed);
  EXPECT_EQ(core.drain_shard_drained(1), rest->consumed);
}

TEST(DrainShard, FlushIsExactlyOnceAndIdempotent) {
  auto spec = rules::simple_mirroring();
  spec.coalesce_enabled = true;
  spec.coalesce_max = 100;
  ShardedPipelineCore core(params_of(spec), 2, 8, 4);
  SeqNo seq = 0;
  for (FlightKey key = 1; key <= 32; ++key) core.on_incoming(faa(key, 0, ++seq), 0);
  // Buffer everything into the shard coalescers across all drain shards...
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t d = 0; d < core.num_drain_shards(); ++d) {
      progress |= core.try_send_batch_shard(d, 8, 0).has_value();
    }
  }
  EXPECT_EQ(core.ready_size(), 0u);
  // ...one flush releases exactly one combined event per flight...
  const auto step = core.flush(0);
  EXPECT_EQ(step.to_send.size(), 32u);
  EXPECT_EQ(core.backup().size(), 32u);
  // ...and a second flush finds a quiesced pipeline (no double release).
  const auto again = core.flush(0);
  EXPECT_TRUE(again.to_send.empty());
  EXPECT_EQ(again.consumed, 0u);
  EXPECT_EQ(core.backup().size(), 32u);
  EXPECT_EQ(core.counters().sent, 32u);
}

TEST(DrainShard, ResolveDrainShardsClampsLikeRxShards) {
  // Explicit requests clamp to [1, rx shards].
  EXPECT_EQ(ShardedPipelineCore::resolve_drain_shards(3, 8), 3u);
  EXPECT_EQ(ShardedPipelineCore::resolve_drain_shards(16, 4), 4u);
  EXPECT_EQ(ShardedPipelineCore::resolve_drain_shards(1, 1), 1u);
  EXPECT_EQ(ShardedPipelineCore::resolve_drain_shards(5, 0), 1u);
  // 0 = auto: the same hardware-concurrency cap as rx shards, then the
  // rx-count bound (shared helper, no duplicated clamp logic).
  const std::size_t auto_rx = ShardedPipelineCore::resolve_shards(0);
  EXPECT_EQ(ShardedPipelineCore::resolve_drain_shards(0, 64), auto_rx);
  EXPECT_EQ(ShardedPipelineCore::resolve_drain_shards(0, 2),
            std::min<std::size_t>(auto_rx, 2));
  EXPECT_GE(auto_rx, 1u);
  EXPECT_LE(auto_rx, ShardedPipelineCore::kMaxAutoShards);
  // The constructor applies the same bound even on raw inputs.
  ShardedPipelineCore over(params_of(rules::simple_mirroring()), 2, 2, 9);
  EXPECT_EQ(over.num_drain_shards(), 2u);
}

TEST(DrainShard, CheckpointSuggestionCoversEverySegment) {
  ShardedPipelineCore core(params_of(rules::simple_mirroring()), 2, 8, 4);
  const auto evs = mixed_workload(200, 13);
  run_through_shards(core, evs);
  const auto last = core.backup().last_vts();
  ASSERT_TRUE(last.has_value());
  // The merged suggestion dominates every entry any drain shard backed up.
  const event::VectorTimestamp none(4);
  for (const auto& ev : core.backup().entries_after(none)) {
    EXPECT_TRUE(last->dominates(ev.header().vts));
  }
  // And trimming with it empties the whole view.
  const std::size_t trimmed = core.backup().trim_committed(*last);
  EXPECT_EQ(trimmed, core.backup().trimmed_count());
  EXPECT_TRUE(core.backup().empty());
}

TEST(DrainShard, InstrumentAddsDrainMetricsAndKeepsAggregates) {
  obs::Registry registry;
  ShardedPipelineCore core(params_of(rules::simple_mirroring()), 2, 8, 4);
  core.instrument(registry, "central");
  const auto evs = mixed_workload(160, 11);
  run_through_shards(core, evs);
  const auto snap = registry.snapshot();
  // Classic aggregates survive the sharded drain.
  EXPECT_EQ(snap.gauge_or("pipeline.central.received_total"), 160.0);
  EXPECT_EQ(snap.gauge_or("pipeline.central.sent_total"),
            static_cast<double>(core.counters().sent));
  EXPECT_EQ(snap.gauge_or("queue.central.backup.depth"),
            static_cast<double>(core.backup().size()));
  // Per-drain-shard drained counters sum to the aggregate, which equals
  // every event that reached the ready queue (everything was drained).
  double drained_sum = 0.0;
  for (int k = 0; k < 4; ++k) {
    drained_sum += snap.gauge_or("pipeline.central.drain.shard" +
                                 std::to_string(k) + ".drained_total");
  }
  EXPECT_EQ(drained_sum, snap.gauge_or("pipeline.central.drain.drained_total"));
  EXPECT_EQ(drained_sum, static_cast<double>(core.counters().enqueued));
  // The lock-wait histogram exists and saw every drain acquisition.
  const auto* hist = snap.histogram("pipeline.central.drain.lock_wait_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_GT(hist->count, 0u);
}

TEST(DrainShard, SingleSegmentBackupViewDelegatesClassicNames) {
  obs::Registry registry;
  ShardedPipelineCore core(params_of(rules::simple_mirroring()), 2, 1, 1);
  core.instrument(registry, "central");
  SeqNo seq = 0;
  for (FlightKey key = 1; key <= 10; ++key) core.on_incoming(faa(key, 0, ++seq), 0);
  while (core.try_send_batch(4, 0).has_value()) {
  }
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.gauge_or("queue.central.backup.depth"), 10.0);
  EXPECT_EQ(snap.gauge_or("queue.central.backup.high_water"), 10.0);
  // No shard<k> backup families at one shard.
  EXPECT_EQ(snap.gauge_or("queue.central.shard0.backup.depth", -1.0), -1.0);
}

}  // namespace
}  // namespace admire::mirror
