#include "mirror/pipeline_core.h"

#include <gtest/gtest.h>

namespace admire::mirror {
namespace {

event::Event faa(FlightKey flight, StreamId stream, SeqNo seq) {
  event::FaaPosition pos;
  pos.flight = flight;
  return event::make_faa_position(stream, seq, pos, 32);
}

rules::MirroringParams params_of(rules::MirrorFunctionSpec spec) {
  rules::MirroringParams p;
  p.function = std::move(spec);
  return p;
}

TEST(PipelineCore, StampsIngressTimeAndVts) {
  PipelineCore core(params_of(rules::simple_mirroring()), 2);
  const auto outcome = core.on_incoming(faa(1, 0, 5), 1000);
  ASSERT_TRUE(outcome.forward.has_value());
  EXPECT_EQ(outcome.forward->header().ingress_time, 1000);
  EXPECT_EQ(outcome.forward->header().vts.component(0), 5u);
  EXPECT_EQ(core.stamp().component(0), 5u);
}

TEST(PipelineCore, PreservesExistingIngressTime) {
  PipelineCore core(params_of(rules::simple_mirroring()), 2);
  event::Event ev = faa(1, 0, 1);
  ev.mutable_header().ingress_time = 42;
  const auto outcome = core.on_incoming(std::move(ev), 1000);
  EXPECT_EQ(outcome.forward->header().ingress_time, 42);
}

TEST(PipelineCore, VtsMergesAcrossStreams) {
  PipelineCore core(params_of(rules::simple_mirroring()), 2);
  core.on_incoming(faa(1, 0, 3), 0);
  const auto outcome = core.on_incoming(faa(1, 1, 7), 0);
  EXPECT_EQ(outcome.forward->header().vts.component(0), 3u);
  EXPECT_EQ(outcome.forward->header().vts.component(1), 7u);
}

TEST(PipelineCore, ForwardIsSetEvenWhenMirrorDiscards) {
  // Selective mirroring reduces mirror traffic, but the local main unit
  // still sees the full stream.
  PipelineCore core(params_of(rules::selective_mirroring(4)), 2);
  int forwarded = 0, enqueued = 0;
  for (SeqNo i = 1; i <= 8; ++i) {
    const auto outcome = core.on_incoming(faa(1, 0, i), 0);
    forwarded += outcome.forward.has_value();
    enqueued += outcome.enqueued;
  }
  EXPECT_EQ(forwarded, 8);
  EXPECT_EQ(enqueued, 2);  // 1 of every 4
  EXPECT_EQ(core.ready().size(), 2u);
}

TEST(PipelineCore, SendStepMovesReadyToBackup) {
  PipelineCore core(params_of(rules::simple_mirroring()), 2);
  core.on_incoming(faa(1, 0, 1), 0);
  auto step = core.try_send_step();
  ASSERT_TRUE(step.has_value());
  ASSERT_EQ(step->to_send.size(), 1u);
  EXPECT_GT(step->offered_bytes, 0u);
  EXPECT_EQ(core.ready().size(), 0u);
  EXPECT_EQ(core.backup().size(), 1u);
  EXPECT_EQ(core.counters().sent, 1u);
  EXPECT_GT(core.counters().bytes_sent, 0u);
}

TEST(PipelineCore, SendStepEmptyWhenNoReady) {
  PipelineCore core(params_of(rules::simple_mirroring()), 2);
  EXPECT_FALSE(core.try_send_step().has_value());
}

TEST(PipelineCore, CheckpointDueEveryNProcessedEvents) {
  auto spec = rules::simple_mirroring();
  spec.checkpoint_every = 10;
  PipelineCore core(params_of(spec), 2);
  int due = 0;
  for (SeqNo i = 1; i <= 35; ++i) {
    due += core.on_incoming(faa(1, 0, i), 0).checkpoint_due;
  }
  EXPECT_EQ(due, 3);
  EXPECT_EQ(core.counters().checkpoints_due, 3u);
}

TEST(PipelineCore, CheckpointFrequencyAppliesToProcessedNotSent) {
  // With selective mirroring most events are discarded, yet checkpointing
  // still runs at the processed-event rate (§3.2.1's "once per 50
  // processed events").
  auto spec = rules::selective_mirroring(8);
  spec.checkpoint_every = 10;
  PipelineCore core(params_of(spec), 2);
  int due = 0;
  for (SeqNo i = 1; i <= 40; ++i) {
    due += core.on_incoming(faa(1, 0, i), 0).checkpoint_due;
  }
  EXPECT_EQ(due, 4);
}

TEST(PipelineCore, CoalescingHoldsThenReleases) {
  auto spec = rules::simple_mirroring();
  spec.coalesce_enabled = true;
  spec.coalesce_max = 3;
  PipelineCore core(params_of(spec), 2);
  for (SeqNo i = 1; i <= 3; ++i) core.on_incoming(faa(1, 0, i), 0);
  auto s1 = core.try_send_step();
  ASSERT_TRUE(s1.has_value());
  EXPECT_TRUE(s1->to_send.empty());  // buffered
  auto s2 = core.try_send_step();
  ASSERT_TRUE(s2.has_value());
  EXPECT_TRUE(s2->to_send.empty());
  auto s3 = core.try_send_step();
  ASSERT_TRUE(s3.has_value());
  ASSERT_EQ(s3->to_send.size(), 1u);
  EXPECT_EQ(s3->to_send[0].header().coalesced, 3u);
}

TEST(PipelineCore, FlushDrainsReadyAndCoalescer) {
  auto spec = rules::simple_mirroring();
  spec.coalesce_enabled = true;
  spec.coalesce_max = 100;
  PipelineCore core(params_of(spec), 2);
  for (SeqNo i = 1; i <= 5; ++i) core.on_incoming(faa(i, 0, i), 0);
  const auto step = core.flush();
  EXPECT_EQ(step.to_send.size(), 5u);  // one buffered event per flight
  EXPECT_EQ(core.ready().size(), 0u);
  EXPECT_EQ(core.backup().size(), 5u);
}

TEST(PipelineCore, InstallSwitchesFunctionLive) {
  PipelineCore core(params_of(rules::simple_mirroring()), 2);
  core.install(rules::selective_mirroring(2, 25));
  EXPECT_EQ(core.current_spec().name, "selective");
  EXPECT_EQ(core.checkpoint_every(), 25u);
  int enqueued = 0;
  for (SeqNo i = 1; i <= 8; ++i) {
    enqueued += core.on_incoming(faa(1, 0, i), 0).enqueued;
  }
  EXPECT_EQ(enqueued, 4);  // 1 of 2
}

TEST(PipelineCore, CombinedEventEnqueued) {
  PipelineCore core(rules::ois_default_rules(rules::simple_mirroring()), 2);
  auto mk = [](FlightKey f, SeqNo s, event::FlightStatus st) {
    event::DeltaStatus d;
    d.flight = f;
    d.status = st;
    return event::make_delta_status(1, s, d);
  };
  core.on_incoming(mk(1, 1, event::FlightStatus::kLanded), 0);
  core.on_incoming(mk(1, 2, event::FlightStatus::kAtRunway), 0);
  const auto outcome =
      core.on_incoming(mk(1, 3, event::FlightStatus::kAtGate), 0);
  EXPECT_TRUE(outcome.combined_enqueued);
  EXPECT_FALSE(outcome.enqueued);  // the constituent itself was absorbed
  EXPECT_TRUE(outcome.forward.has_value());  // main unit still gets the raw
  EXPECT_EQ(core.ready().size(), 1u);
  auto step = core.try_send_step();
  ASSERT_TRUE(step.has_value());
  ASSERT_EQ(step->to_send.size(), 1u);
  EXPECT_EQ(step->to_send[0].type(), event::EventType::kDerived);
}

TEST(PipelineCore, RuleAndPipelineCountersConsistent) {
  PipelineCore core(params_of(rules::selective_mirroring(4)), 2);
  for (SeqNo i = 1; i <= 100; ++i) core.on_incoming(faa(1, 0, i), 0);
  while (core.try_send_step().has_value()) {
  }
  const auto pc = core.counters();
  const auto rc = core.rule_counters();
  EXPECT_EQ(pc.received, 100u);
  EXPECT_EQ(rc.total_seen(), 100u);
  EXPECT_EQ(pc.enqueued, rc.accepted);
  EXPECT_EQ(pc.sent, pc.enqueued);  // no coalescing
}

}  // namespace
}  // namespace admire::mirror
