#include <gtest/gtest.h>

#include "mirror/main_unit_core.h"
#include "mirror/mirror_aux_core.h"

namespace admire::mirror {
namespace {

event::Event faa(FlightKey flight, SeqNo seq) {
  event::FaaPosition pos;
  pos.flight = flight;
  event::Event ev = event::make_faa_position(0, seq, pos, 16);
  ev.mutable_header().vts.observe(0, seq);
  ev.mutable_header().ingress_time = static_cast<Nanos>(seq);
  return ev;
}

checkpoint::ControlMessage chkpt_msg(std::uint64_t round, SeqNo upto) {
  checkpoint::ControlMessage m;
  m.kind = checkpoint::ControlKind::kChkpt;
  m.round = round;
  m.vts.observe(0, upto);
  return m;
}

checkpoint::ControlMessage commit_msg(SeqNo upto) {
  checkpoint::ControlMessage m;
  m.kind = checkpoint::ControlKind::kCommit;
  m.vts.observe(0, upto);
  return m;
}

TEST(MainUnitCore, ProcessUpdatesStateAndBackup) {
  MainUnitCore main(0);
  const auto out = main.process(faa(1, 1));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(main.backup().size(), 1u);
  EXPECT_EQ(main.state().flight_count(), 1u);
  EXPECT_EQ(main.progress().component(0), 1u);
}

TEST(MainUnitCore, ChkptReplyIsMinOfSuggestedAndProgress) {
  MainUnitCore main(2);
  for (SeqNo i = 1; i <= 5; ++i) main.process(faa(1, i));
  // Suggested beyond local progress -> reply clamps to local.
  auto reply = main.on_chkpt(chkpt_msg(1, 9));
  EXPECT_EQ(reply.vts.component(0), 5u);
  EXPECT_EQ(reply.from, 2u);
  // Suggested behind local progress -> reply clamps to suggestion.
  reply = main.on_chkpt(chkpt_msg(2, 3));
  EXPECT_EQ(reply.vts.component(0), 3u);
}

TEST(MainUnitCore, CommitTrimsBackup) {
  MainUnitCore main(0);
  for (SeqNo i = 1; i <= 6; ++i) main.process(faa(1, i));
  EXPECT_EQ(main.on_commit(commit_msg(4)), 4u);
  EXPECT_EQ(main.backup().size(), 2u);
  // Stale commit is ignored.
  EXPECT_EQ(main.on_commit(commit_msg(2)), 0u);
}

TEST(MainUnitCore, SnapshotReflectsProcessedEvents) {
  MainUnitCore main(1);
  for (SeqNo i = 1; i <= 10; ++i) main.process(faa(1 + i % 3, i));
  const auto chunks = main.build_snapshot(5);
  ASSERT_FALSE(chunks.empty());
  ede::OperationalState restored;
  ASSERT_TRUE(ede::SnapshotService::restore(chunks, restored).is_ok());
  EXPECT_EQ(restored.fingerprint(), main.state().fingerprint());
}

TEST(MirrorAuxCore, MirroredEventsFlowToMainQueue) {
  MirrorAuxCore aux(1);
  aux.on_mirrored(faa(1, 1));
  aux.on_mirrored(faa(1, 2));
  EXPECT_EQ(aux.mirrored_received(), 2u);
  EXPECT_EQ(aux.backup().size(), 2u);
  EXPECT_EQ(aux.ready().size(), 2u);
  auto next = aux.next_for_main();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->seq(), 1u);
  EXPECT_EQ(aux.ready().size(), 1u);
}

TEST(MirrorAuxCore, RelayChkptIsIdentity) {
  MirrorAuxCore aux(1);
  const auto m = chkpt_msg(3, 7);
  EXPECT_EQ(aux.relay_chkpt(m), m);
}

TEST(MirrorAuxCore, RelayReplyForwardsFreshReplies) {
  MirrorAuxCore aux(1);
  aux.on_mirrored(faa(1, 1));
  checkpoint::ControlMessage reply;
  reply.kind = checkpoint::ControlKind::kChkptReply;
  reply.vts.observe(0, 1);
  EXPECT_TRUE(aux.relay_reply(reply).has_value());
}

TEST(MirrorAuxCore, RelayReplyDropsProvablyStale) {
  MirrorAuxCore aux(1);
  for (SeqNo i = 1; i <= 4; ++i) aux.on_mirrored(faa(1, i));
  aux.on_commit(commit_msg(4));  // applied view now covers seq 4
  EXPECT_EQ(aux.backup().size(), 0u);
  checkpoint::ControlMessage stale;
  stale.kind = checkpoint::ControlKind::kChkptReply;
  stale.vts.observe(0, 2);  // older than applied, not in backup
  EXPECT_FALSE(aux.relay_reply(stale).has_value());
}

TEST(MirrorAuxCore, CommitTrimsBackupAndForwards) {
  MirrorAuxCore aux(1);
  for (SeqNo i = 1; i <= 5; ++i) aux.on_mirrored(faa(1, i));
  const auto forwarded = aux.on_commit(commit_msg(3));
  EXPECT_EQ(forwarded.vts.component(0), 3u);  // forwarded to main unit
  EXPECT_EQ(aux.backup().size(), 2u);
}

TEST(Integration, AuxPlusMainMirrorChainConverges) {
  // Simulates one mirror site: everything mirrored is processed and state
  // matches an identically-fed reference main unit.
  MirrorAuxCore aux(1);
  MainUnitCore mirror_main(1);
  MainUnitCore reference(0);
  for (SeqNo i = 1; i <= 40; ++i) {
    auto ev = faa(1 + i % 4, i);
    reference.process(ev);
    aux.on_mirrored(std::move(ev));
    while (auto next = aux.next_for_main()) mirror_main.process(*next);
  }
  EXPECT_EQ(mirror_main.state().fingerprint(),
            reference.state().fingerprint());
}

}  // namespace
}  // namespace admire::mirror
