// ShardedPipelineCore invariants: shard count must not change any rule
// decision, per-flight order, checkpoint cadence or merged counter — only
// the degree of ingest parallelism. These tests run everything
// sequentially so failures implicate the sharding logic itself, not a
// race; tests/stress/shard_concurrency_test.cpp hammers the same
// invariants from many threads.
#include "mirror/sharded_pipeline_core.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mirror/pipeline_core.h"
#include "obs/registry.h"

namespace admire::mirror {
namespace {

event::Event faa(FlightKey flight, StreamId stream, SeqNo seq) {
  event::FaaPosition pos;
  pos.flight = flight;
  return event::make_faa_position(stream, seq, pos, 32);
}

event::Event delta(FlightKey flight, StreamId stream, SeqNo seq,
                   event::FlightStatus status) {
  event::DeltaStatus st;
  st.flight = flight;
  st.status = status;
  return event::make_delta_status(stream, seq, st);
}

rules::MirroringParams params_of(rules::MirrorFunctionSpec spec) {
  rules::MirroringParams p;
  p.function = std::move(spec);
  return p;
}

/// Deterministic mixed workload: many flights interleaved over two
/// streams, FAA positions with periodic status deltas so the OIS default
/// rules (overwrite runs, suppression latches, complex tuples) all fire.
std::vector<event::Event> mixed_workload(std::size_t count,
                                         std::size_t flights) {
  std::vector<event::Event> out;
  out.reserve(count);
  SeqNo seq[2] = {0, 0};
  const event::FlightStatus cycle[] = {event::FlightStatus::kLanded,
                                       event::FlightStatus::kAtRunway,
                                       event::FlightStatus::kAtGate};
  for (std::size_t i = 0; i < count; ++i) {
    const auto flight = static_cast<FlightKey>(1 + i % flights);
    const auto stream = static_cast<StreamId>(i % 2);
    if (i % 7 == 6) {
      out.push_back(delta(flight, stream, ++seq[stream], cycle[(i / 7) % 3]));
    } else {
      out.push_back(faa(flight, stream, ++seq[stream]));
    }
  }
  return out;
}

/// Ingest the whole workload, then drain via small batches + flush.
/// Returns the wire events in emission order.
std::vector<event::Event> run_through(ShardedPipelineCore& core,
                                      const std::vector<event::Event>& evs) {
  for (const auto& ev : evs) core.on_incoming(ev, 0);
  std::vector<event::Event> sent;
  while (auto step = core.try_send_batch(8, 0)) {
    for (auto& ev : step->to_send) sent.push_back(std::move(ev));
  }
  for (auto& ev : core.flush(0).to_send) sent.push_back(std::move(ev));
  return sent;
}

std::map<FlightKey, std::vector<SeqNo>> per_flight_order(
    const std::vector<event::Event>& evs) {
  std::map<FlightKey, std::vector<SeqNo>> order;
  for (const auto& ev : evs) order[ev.key()].push_back(ev.seq());
  return order;
}

TEST(ShardedPipeline, SingleShardMatchesPipelineCoreExactly) {
  const auto evs = mixed_workload(500, 12);
  PipelineCore classic(rules::ois_default_rules(rules::selective_mirroring(3)),
                       2);
  ShardedPipelineCore sharded(
      rules::ois_default_rules(rules::selective_mirroring(3)), 2, 1);
  const auto classic_sent = run_through(classic, evs);
  const auto sharded_sent = run_through(sharded, evs);
  EXPECT_EQ(classic.rule_counters(), sharded.rule_counters());
  EXPECT_EQ(classic.counters().received, sharded.counters().received);
  EXPECT_EQ(classic.counters().enqueued, sharded.counters().enqueued);
  EXPECT_EQ(classic.counters().sent, sharded.counters().sent);
  ASSERT_EQ(classic_sent.size(), sharded_sent.size());
  for (std::size_t i = 0; i < classic_sent.size(); ++i) {
    EXPECT_EQ(classic_sent[i].key(), sharded_sent[i].key());
    EXPECT_EQ(classic_sent[i].seq(), sharded_sent[i].seq());
  }
}

TEST(ShardedPipeline, RuleCountersInvariantToShardCount) {
  const auto evs = mixed_workload(1200, 17);
  rules::RuleCounters baseline;
  PipelineCounters baseline_pc;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    ShardedPipelineCore core(
        rules::ois_default_rules(rules::selective_mirroring(3)), 2, shards);
    run_through(core, evs);
    if (shards == 1) {
      baseline = core.rule_counters();
      baseline_pc = core.counters();
      EXPECT_EQ(baseline.total_seen(), evs.size());
      continue;
    }
    EXPECT_EQ(core.rule_counters(), baseline) << shards << " shards";
    EXPECT_EQ(core.counters().received, baseline_pc.received);
    EXPECT_EQ(core.counters().enqueued, baseline_pc.enqueued);
    EXPECT_EQ(core.counters().sent, baseline_pc.sent);
  }
}

TEST(ShardedPipeline, PerFlightSendOrderInvariantToShardCount) {
  const auto evs = mixed_workload(800, 9);
  ShardedPipelineCore one(params_of(rules::selective_mirroring(2)), 2, 1);
  ShardedPipelineCore four(params_of(rules::selective_mirroring(2)), 2, 4);
  const auto order_one = per_flight_order(run_through(one, evs));
  const auto order_four = per_flight_order(run_through(four, evs));
  // The global interleaving may differ (fair drain vs single FIFO); each
  // flight's subsequence may not.
  EXPECT_EQ(order_one, order_four);
}

TEST(ShardedPipeline, RoutingIsStableAndCoversShards) {
  std::set<std::size_t> hit;
  for (FlightKey key = 1; key <= 256; ++key) {
    const std::size_t shard = ShardedPipelineCore::shard_of_key(key, 4);
    EXPECT_EQ(shard, ShardedPipelineCore::shard_of_key(key, 4));
    EXPECT_LT(shard, 4u);
    hit.insert(shard);
  }
  EXPECT_EQ(hit.size(), 4u);
  // Keyless (control) events always land on shard 0.
  EXPECT_EQ(ShardedPipelineCore::shard_of_key(0, 4), 0u);
  EXPECT_EQ(ShardedPipelineCore::shard_of_key(123, 1), 0u);
}

TEST(ShardedPipeline, FairDrainTakesFromEverySegment) {
  ShardedPipelineCore core(params_of(rules::simple_mirroring()), 2, 4);
  // Load every shard with its own flights.
  SeqNo seq = 0;
  for (FlightKey key = 1; key <= 64; ++key) {
    core.on_incoming(faa(key, 0, ++seq), 0);
  }
  auto step = core.try_send_batch(16, 0);
  ASSERT_TRUE(step.has_value());
  EXPECT_EQ(step->to_send.size(), 16u);
  std::set<std::size_t> shards_drained;
  for (const auto& ev : step->to_send) {
    shards_drained.insert(ShardedPipelineCore::shard_of_key(ev.key(), 4));
  }
  // One batch must interleave segments, not exhaust one shard first.
  EXPECT_EQ(shards_drained.size(), 4u);
}

TEST(ShardedPipeline, CheckpointCadenceIsGlobalAcrossShards) {
  auto spec = rules::simple_mirroring();
  spec.checkpoint_every = 10;
  ShardedPipelineCore core(params_of(spec), 2, 4);
  int due = 0;
  SeqNo seq = 0;
  for (std::size_t i = 0; i < 35; ++i) {
    // Spread over flights -> all shards; cadence counts globally.
    due += core.on_incoming(faa(static_cast<FlightKey>(1 + i % 16), 0, ++seq), 0)
               .checkpoint_due;
  }
  EXPECT_EQ(due, 3);
  EXPECT_EQ(core.counters().checkpoints_due, 3u);
}

TEST(ShardedPipeline, StampMergesStreamsAcrossShards) {
  ShardedPipelineCore core(params_of(rules::simple_mirroring()), 2, 4);
  core.on_incoming(faa(1, 0, 3), 0);
  core.on_incoming(faa(2, 1, 7), 0);  // different flight -> likely other shard
  const auto vts = core.stamp();
  EXPECT_EQ(vts.component(0), 3u);
  EXPECT_EQ(vts.component(1), 7u);
  // Streams beyond the construction-time stripe spill into the overflow.
  core.on_incoming(faa(3, 5, 11), 0);
  EXPECT_EQ(core.stamp().component(5), 11u);
}

TEST(ShardedPipeline, FlushDrainsEveryShardCoalescer) {
  auto spec = rules::simple_mirroring();
  spec.coalesce_enabled = true;
  spec.coalesce_max = 100;
  ShardedPipelineCore core(params_of(spec), 2, 4);
  SeqNo seq = 0;
  for (FlightKey key = 1; key <= 32; ++key) {
    core.on_incoming(faa(key, 0, ++seq), 0);
  }
  // try_send_batch buffers everything into the shard coalescers...
  while (core.try_send_batch(8, 0).has_value()) {
  }
  EXPECT_EQ(core.ready_size(), 0u);
  // ...and flush releases one combined event per flight from all shards.
  const auto step = core.flush(0);
  EXPECT_EQ(step.to_send.size(), 32u);
  EXPECT_EQ(core.backup().size(), 32u);
}

TEST(ShardedPipeline, InstallAppliesToEveryShard) {
  ShardedPipelineCore core(params_of(rules::simple_mirroring()), 2, 4);
  core.install(rules::selective_mirroring(2, 25));
  EXPECT_EQ(core.current_spec().name, "selective");
  EXPECT_EQ(core.checkpoint_every(), 25u);
  int enqueued = 0;
  SeqNo seq = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    // 8 flights x 4 events each: every shard must apply the 1-of-2 rule.
    enqueued +=
        core.on_incoming(faa(static_cast<FlightKey>(1 + i % 8), 0, ++seq), 0)
            .enqueued;
  }
  EXPECT_EQ(enqueued, 16);
}

TEST(ShardedPipeline, InstrumentKeepsAggregateNamesAndAddsShardMetrics) {
  obs::Registry registry;
  ShardedPipelineCore core(params_of(rules::simple_mirroring()), 2, 4);
  core.instrument(registry, "central");
  SeqNo seq = 0;
  for (FlightKey key = 1; key <= 40; ++key) {
    core.on_incoming(faa(key, 0, ++seq), 0);
  }
  const auto snap = registry.snapshot();
  // Aggregates keep the classic single-core names.
  EXPECT_EQ(snap.gauge_or("pipeline.central.received_total"), 40.0);
  EXPECT_EQ(snap.gauge_or("queue.central.ready.pushed_total"), 40.0);
  EXPECT_EQ(snap.gauge_or("queue.central.ready.depth"), 40.0);
  EXPECT_EQ(snap.counter_or("rules.central.seen_total"), 40u);
  // Per-shard breakdowns sum to the aggregate.
  double shard_sum = 0.0;
  for (int k = 0; k < 4; ++k) {
    shard_sum += snap.gauge_or("pipeline.central.shard" + std::to_string(k) +
                               ".received_total");
  }
  EXPECT_EQ(shard_sum, 40.0);
  EXPECT_GE(snap.gauge_or("pipeline.central.shard_imbalance"), 1.0);
}

}  // namespace
}  // namespace admire::mirror
