#include "harness/experiments.h"

#include <gtest/gtest.h>

#include "common/logging.h"

namespace admire::harness {
namespace {

TEST(Harness, MakeTraceRespectsSpec) {
  RunSpec spec;
  spec.faa_events = 250;
  spec.event_padding = 333;
  spec.include_delta_stream = false;
  const auto trace = make_trace(spec);
  EXPECT_EQ(trace.size(), 250u);
  for (const auto& item : trace.items) {
    EXPECT_EQ(item.ev.padding().size(), 333u);
  }
}

TEST(Harness, BatchModeZeroesArrivals) {
  RunSpec spec;
  spec.faa_events = 100;
  spec.event_horizon = 0;
  const auto trace = make_trace(spec);
  for (const auto& item : trace.items) EXPECT_EQ(item.at, 0);
}

TEST(Harness, PacedModeSpansHorizon) {
  RunSpec spec;
  spec.faa_events = 500;
  spec.event_horizon = 4 * kSecond;
  const auto trace = make_trace(spec);
  EXPECT_EQ(trace.duration(), 4 * kSecond);
  EXPECT_GT(trace.items[trace.size() / 2].at, 0);
}

TEST(Harness, RescaleEmptyAndSingle) {
  EXPECT_TRUE(rescale_trace({}, kSecond).empty());
  workload::Trace one;
  one.items.push_back({5 * kSecond, event::make_faa_position(0, 1, {})});
  const auto scaled = rescale_trace(std::move(one), 2 * kSecond);
  EXPECT_EQ(scaled.items[0].at, 2 * kSecond);
}

TEST(Harness, RequestsModes) {
  RunSpec spec;
  spec.request_rate = 100;
  spec.requests_while_events = true;
  EXPECT_EQ(make_requests(spec).size(), 0u);  // auto mode: sim generates

  spec.requests_while_events = false;
  spec.request_window = 2 * kSecond;
  EXPECT_NEAR(static_cast<double>(make_requests(spec).size()), 200.0, 25.0);

  spec.bursty = true;
  spec.burst_rate = 1000;
  spec.burst_period = kSecond;
  spec.burst_duty = 0.5;
  EXPECT_GT(make_requests(spec).size(), 500u);
}

TEST(Harness, PercentOver) {
  EXPECT_DOUBLE_EQ(percent_over(120.0, 100.0), 20.0);
  EXPECT_DOUBLE_EQ(percent_over(80.0, 100.0), -20.0);
  EXPECT_DOUBLE_EQ(percent_over(5.0, 0.0), 0.0);  // guarded
}

TEST(Logging, LevelGateAndSink) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below threshold: discarded without touching the sink (no crash, fast).
  log(LogLevel::kDebug, "dropped ", 42);
  log(LogLevel::kError, "emitted ", 42, " and ", 3.5);
  set_log_level(before);
}

}  // namespace
}  // namespace admire::harness
