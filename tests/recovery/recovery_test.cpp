#include "recovery/recovery.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <limits>
#include <thread>

#include "cluster/cluster.h"
#include "oplog/oplog.h"
#include "workload/scenario.h"

namespace admire::recovery {
namespace {

event::Event faa(FlightKey flight, SeqNo seq) {
  event::FaaPosition pos;
  pos.flight = flight;
  pos.lat_deg = static_cast<double>(seq);
  event::Event ev = event::make_faa_position(0, seq, pos, 32);
  ev.mutable_header().vts.observe(0, seq);
  return ev;
}

TEST(Recovery, BootstrapPackageCarriesStateAndProgress) {
  mirror::MainUnitCore donor(0);
  for (SeqNo i = 1; i <= 20; ++i) donor.process(faa(1 + i % 3, i));
  const auto package = build_bootstrap_package(donor, 7);
  EXPECT_FALSE(package.snapshot_chunks.empty());
  EXPECT_EQ(package.as_of.component(0), 20u);
  EXPECT_TRUE(package.replay.empty());
}

TEST(Recovery, InstallBootstrapReproducesDonorState) {
  mirror::MainUnitCore donor(0);
  for (SeqNo i = 1; i <= 30; ++i) donor.process(faa(1 + i % 5, i));
  const auto package = build_bootstrap_package(donor, 1);
  mirror::MainUnitCore joiner(9);
  ASSERT_TRUE(install_package(package, joiner).is_ok());
  EXPECT_EQ(joiner.state().fingerprint(), donor.state().fingerprint());
  EXPECT_EQ(joiner.progress(), donor.progress());
}

TEST(Recovery, RejoinPackageReplaysOnlyTheGap) {
  mirror::MainUnitCore donor(0);
  mirror::MainUnitCore stale(2);
  // Both process 1..10; the stale node then misses 11..25.
  for (SeqNo i = 1; i <= 10; ++i) {
    donor.process(faa(1, i));
    stale.process(faa(1, i));
  }
  for (SeqNo i = 11; i <= 25; ++i) donor.process(faa(1, i));

  auto package = build_rejoin_package(donor, stale.progress());
  ASSERT_TRUE(package.is_ok()) << package.status().to_string();
  EXPECT_EQ(package.value().replay.size(), 15u);
  EXPECT_TRUE(package.value().snapshot_chunks.empty());
  ASSERT_TRUE(install_package(package.value(), stale).is_ok());
  EXPECT_EQ(stale.state().fingerprint(), donor.state().fingerprint());
  EXPECT_EQ(stale.progress(), donor.progress());
}

TEST(Recovery, RejoinRefusedWhenGapWasTrimmed) {
  mirror::MainUnitCore donor(0);
  mirror::MainUnitCore stale(2);
  for (SeqNo i = 1; i <= 5; ++i) {
    donor.process(faa(1, i));
    stale.process(faa(1, i));
  }
  for (SeqNo i = 6; i <= 20; ++i) donor.process(faa(1, i));
  // A committed checkpoint trims the donor's backup past the gap start.
  checkpoint::ControlMessage commit;
  commit.kind = checkpoint::ControlKind::kCommit;
  commit.vts.observe(0, 12);
  donor.on_commit(commit);

  auto package = build_rejoin_package(donor, stale.progress());
  ASSERT_FALSE(package.is_ok());
  EXPECT_EQ(package.status().code(), StatusCode::kExhausted);
}

TEST(Recovery, RejoinAllowedWhenStalePointAtOrBeyondCommit) {
  mirror::MainUnitCore donor(0);
  mirror::MainUnitCore stale(2);
  for (SeqNo i = 1; i <= 12; ++i) {
    donor.process(faa(1, i));
    stale.process(faa(1, i));
  }
  for (SeqNo i = 13; i <= 20; ++i) donor.process(faa(1, i));
  checkpoint::ControlMessage commit;
  commit.kind = checkpoint::ControlKind::kCommit;
  commit.vts.observe(0, 12);
  donor.on_commit(commit);  // trims exactly up to the stale point

  auto package = build_rejoin_package(donor, stale.progress());
  ASSERT_TRUE(package.is_ok());
  EXPECT_EQ(package.value().replay.size(), 8u);
}

TEST(ChunkedRecovery, CursorWalksTableInBoundedChunks) {
  mirror::MainUnitCore donor(0);
  for (SeqNo i = 1; i <= 60; ++i) donor.process(faa(1 + i % 30, i));
  ASSERT_EQ(donor.state().flight_count(), 30u);

  ChunkCursor cursor(donor, 8);
  ede::OperationalState rebuilt;
  while (!cursor.done()) {
    const auto chunk = cursor.next();
    EXPECT_LE(chunk.count, 8u);
    ASSERT_TRUE(install_chunk(chunk, rebuilt).is_ok());
  }
  EXPECT_EQ(cursor.chunks_produced(), 4u);  // ceil(30 / 8)
  EXPECT_GT(cursor.bytes_produced(), 0u);
  EXPECT_EQ(rebuilt.fingerprint(), donor.state().fingerprint());

  // The range set is strictly ascending and covers the whole key space.
  const auto& ranges = cursor.ranges();
  ASSERT_EQ(ranges.size(), 4u);
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_GT(ranges[i].upto, ranges[i - 1].upto);
  }
  EXPECT_EQ(ranges.back().upto, std::numeric_limits<FlightKey>::max());
  EXPECT_EQ(cursor.end_anchor().component(0), 60u);
}

TEST(ChunkedRecovery, EmptyDonorYieldsOneFinalCoveringChunk) {
  mirror::MainUnitCore donor(0);
  ChunkCursor cursor(donor, 8);
  ASSERT_FALSE(cursor.done());
  const auto chunk = cursor.next();
  EXPECT_EQ(chunk.count, 0u);
  EXPECT_TRUE(chunk.final_chunk);
  EXPECT_EQ(chunk.upto, std::numeric_limits<FlightKey>::max());
  EXPECT_TRUE(cursor.done());
  ASSERT_EQ(cursor.ranges().size(), 1u);
}

TEST(ChunkedRecovery, AnchorsReflectLiveFoldsBetweenCaptures) {
  // The donor keeps folding between captures: each chunk's anchor is the
  // donor progress AT ITS capture, so later chunks carry later anchors —
  // the property the per-range RejoinFilter depends on.
  mirror::MainUnitCore donor(0);
  for (SeqNo i = 1; i <= 16; ++i) donor.process(faa(1 + i % 16, i));
  ChunkCursor cursor(donor, 8);
  const auto first = cursor.next();
  donor.process(faa(1, 17));  // live fold mid-transfer
  const auto second = cursor.next();
  EXPECT_EQ(first.anchor.component(0), 16u);
  EXPECT_EQ(second.anchor.component(0), 17u);
  EXPECT_TRUE(cursor.done());
}

TEST(ChunkedRecovery, InstallChunkRejectsCorruptRecords) {
  ede::OperationalState target;
  StateChunk garbage;
  garbage.records = Bytes{std::byte{0xFF}, std::byte{0x01}, std::byte{0x02},
                          std::byte{0x03}};
  garbage.count = 1;
  EXPECT_EQ(install_chunk(garbage, target).code(), StatusCode::kCorrupt);

  mirror::MainUnitCore donor(0);
  for (SeqNo i = 1; i <= 4; ++i) donor.process(faa(i, i));
  ChunkCursor cursor(donor, 16);
  auto chunk = cursor.next();
  ++chunk.count;  // claimed count no longer matches the payload
  EXPECT_EQ(install_chunk(chunk, target).code(), StatusCode::kCorrupt);
}

TEST(Recovery, InstallPackagePropagatesFirstReplayFailure) {
  mirror::MainUnitCore donor(0);
  for (SeqNo i = 1; i <= 5; ++i) donor.process(faa(1, i));
  auto package = build_bootstrap_package(donor, 1);
  package.replay.push_back(faa(2, 6));
  event::Event bad = faa(2, 7);
  bad.mutable_header().type = event::EventType::kDeltaStatus;  // wrong payload
  package.replay.push_back(bad);
  package.replay.push_back(faa(2, 8));

  mirror::MainUnitCore joiner(9);
  std::size_t applied = 0;
  const auto status = install_package(package, joiner, &applied);
  ASSERT_FALSE(status.is_ok());  // silently dropping the event would
                                 // leave the joiner divergent forever
  EXPECT_EQ(status.code(), StatusCode::kCorrupt);
  EXPECT_EQ(applied, 1u);  // only the event before the failure landed
}

TEST(Recovery, ReplayLogTailSkipsCoveredAndReportsCounts) {
  const std::string base = "/tmp/admire_recovery_log_replay_test";
  oplog::remove_log(base);
  {
    oplog::LogWriter writer(base);
    ASSERT_TRUE(writer.ok());
    for (SeqNo i = 1; i <= 20; ++i) {
      ASSERT_TRUE(writer.append(faa(1 + i % 4, i)).is_ok());
    }
    ASSERT_TRUE(writer.flush().is_ok());
  }
  event::VectorTimestamp after;
  after.observe(0, 12);
  mirror::MainUnitCore node(3);
  const auto report = replay_log_tail(base, after, node);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report.value().events_seen, 20u);
  EXPECT_EQ(report.value().events_applied, 8u);  // 13..20
  EXPECT_FALSE(report.value().truncated_tail);
  EXPECT_FALSE(report.value().gap_segment.has_value());
  EXPECT_EQ(node.progress().component(0), 20u);
  oplog::remove_log(base);
}

TEST(RejoinFilter, SkipsCoveredAppliesNew) {
  event::VectorTimestamp restore;
  restore.observe(0, 10);
  RejoinFilter filter(restore);
  EXPECT_FALSE(filter.should_apply(faa(1, 5)));   // covered
  EXPECT_FALSE(filter.should_apply(faa(1, 10)));  // boundary: covered
  EXPECT_TRUE(filter.should_apply(faa(1, 11)));   // new
  EXPECT_EQ(filter.skipped(), 2u);
}

TEST(RejoinFilter, UnstampedEventsAlwaysApply) {
  event::VectorTimestamp restore;
  restore.observe(0, 10);
  RejoinFilter filter(restore);
  event::FaaPosition pos;
  pos.flight = 1;
  event::Event raw = event::make_faa_position(0, 3, pos);  // empty vts
  EXPECT_TRUE(filter.should_apply(raw));
}

TEST(RejoinFilter, RangeAnchorsGatePerKey) {
  // Two chunks: keys <= 10 transferred at donor progress 5, the rest at
  // progress 8. Whether a live event is a duplicate depends on which
  // chunk carries ITS key, not on any global floor.
  event::VectorTimestamp a5, a8;
  a5.observe(0, 5);
  a8.observe(0, 8);
  std::vector<RejoinFilter::Range> ranges;
  ranges.push_back({10, a5});
  ranges.push_back({std::numeric_limits<FlightKey>::max(), a8});
  RejoinFilter filter(std::move(ranges));

  EXPECT_FALSE(filter.should_apply(faa(3, 5)));   // in the key<=10 chunk
  EXPECT_TRUE(filter.should_apply(faa(3, 6)));    // folded after its capture
  EXPECT_FALSE(filter.should_apply(faa(20, 8)));  // in the second chunk
  EXPECT_TRUE(filter.should_apply(faa(20, 9)));
  EXPECT_EQ(filter.skipped(), 2u);

  // A raised floor composes with the ranges (post-transfer whole-state
  // replay advances every key at once).
  filter.raise_floor(a8);
  EXPECT_FALSE(filter.should_apply(faa(3, 7)));
  EXPECT_TRUE(filter.should_apply(faa(3, 9)));
}

TEST(RecoveryCluster, FailAndReplaceMirrorAtRuntime) {
  cluster::ClusterConfig config;
  config.num_mirrors = 2;
  config.params.function = rules::simple_mirroring();
  cluster::Cluster server(config);
  server.start();

  workload::ScenarioConfig scenario;
  scenario.faa_events = 200;
  scenario.num_flights = 10;
  scenario.event_padding = 64;
  const auto trace = workload::make_ois_trace(scenario);
  const std::size_t half = trace.size() / 2;

  for (std::size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(server.ingest(trace.items[i].ev).is_ok());
  }
  server.drain();

  // Mirror 2 dies; a replacement bootstraps from mirror 1 mid-run.
  server.fail_mirror(1);
  auto joined = server.join_new_mirror(/*donor=*/1);
  ASSERT_TRUE(joined.is_ok()) << joined.status().to_string();
  const std::size_t new_idx = joined.value();

  for (std::size_t i = half; i < trace.size(); ++i) {
    ASSERT_TRUE(server.ingest(trace.items[i].ev).is_ok());
  }
  server.central().drain();
  server.mirror(0).drain();
  server.mirror(new_idx).drain();

  // The replacement converged with the surviving mirror.
  const auto fp_survivor = server.mirror(0).main_unit().state().fingerprint();
  const auto fp_joiner =
      server.mirror(new_idx).main_unit().state().fingerprint();
  EXPECT_EQ(fp_joiner, fp_survivor);
  // And it serves snapshot requests as a full pool member.
  auto snapshot = server.request_snapshot(4242);
  ASSERT_TRUE(snapshot.is_ok());
  server.stop();
}

TEST(RecoveryCluster, JoinerSkipsDuplicateLiveEvents) {
  cluster::ClusterConfig config;
  config.num_mirrors = 1;
  cluster::Cluster server(config);
  server.start();

  workload::ScenarioConfig scenario;
  scenario.faa_events = 150;
  scenario.num_flights = 5;
  const auto trace = workload::make_ois_trace(scenario);
  for (std::size_t i = 0; i < trace.size() / 2; ++i) {
    ASSERT_TRUE(server.ingest(trace.items[i].ev).is_ok());
  }
  server.drain();

  auto joined = server.join_new_mirror(/*donor=*/0);
  ASSERT_TRUE(joined.is_ok());
  for (std::size_t i = trace.size() / 2; i < trace.size(); ++i) {
    ASSERT_TRUE(server.ingest(trace.items[i].ev).is_ok());
  }
  server.drain();
  // Central state (donor) and joiner agree under simple mirroring.
  EXPECT_EQ(server.mirror(joined.value()).main_unit().state().fingerprint(),
            server.central().main_unit().state().fingerprint());
  server.stop();
}

TEST(RecoveryCluster, ChunkedJoinUnderLiveTrafficConverges) {
  cluster::ClusterConfig config;
  config.num_mirrors = 1;
  cluster::Cluster server(config);
  server.start();

  workload::ScenarioConfig scenario;
  scenario.faa_events = 400;
  scenario.num_flights = 40;
  scenario.event_padding = 64;
  const auto trace = workload::make_ois_trace(scenario);
  const std::size_t half = trace.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(server.ingest(trace.items[i].ev).is_ok());
  }
  server.drain();

  // Publisher keeps folding the second half WHILE the chunked transfer
  // runs — the per-range anchors must classify every live duplicate.
  std::thread publisher([&] {
    for (std::size_t i = half; i < trace.size(); ++i) {
      ASSERT_TRUE(server.ingest(trace.items[i].ev).is_ok());
    }
  });

  cluster::Cluster::JoinOptions options;
  options.donor = 0;
  options.chunk_records = 8;
  options.chunk_interval = std::chrono::microseconds(200);
  std::atomic<std::size_t> chunks{0};
  options.on_chunk = [&](std::size_t) { chunks.fetch_add(1); };
  auto joined = server.join_new_mirror(options);
  publisher.join();
  ASSERT_TRUE(joined.is_ok()) << joined.status().to_string();
  EXPECT_GT(chunks.load(), 1u) << "transfer was not actually chunked";

  server.drain();
  EXPECT_EQ(server.mirror(joined.value()).main_unit().state().fingerprint(),
            server.central().main_unit().state().fingerprint());
  server.stop();
}

TEST(RecoveryCluster, JoinDoesNotHoldMembershipLockDuringTransfer) {
  cluster::ClusterConfig config;
  config.num_mirrors = 1;
  cluster::Cluster server(config);
  server.start();

  workload::ScenarioConfig scenario;
  scenario.faa_events = 200;
  scenario.num_flights = 25;
  const auto trace = workload::make_ois_trace(scenario);
  for (const auto& item : trace.items) {
    ASSERT_TRUE(server.ingest(item.ev).is_ok());
  }
  server.drain();

  cluster::Cluster::JoinOptions options;
  options.donor = 0;
  options.chunk_records = 4;
  std::atomic<bool> probed{false};
  options.on_chunk = [&](std::size_t) {
    if (probed.exchange(true)) return;
    // num_mirrors() takes membership_mu_. If join_new_mirror still held
    // it across chunk production, this would deadlock — bound the probe.
    auto fut = std::async(std::launch::async, [&] {
      return server.num_mirrors();
    });
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(2)),
              std::future_status::ready)
        << "membership lock held across the state transfer";
    EXPECT_EQ(fut.get(), 1u);
  };
  auto joined = server.join_new_mirror(options);
  ASSERT_TRUE(joined.is_ok()) << joined.status().to_string();
  EXPECT_TRUE(probed.load());
  server.drain();
  EXPECT_EQ(server.mirror(joined.value()).main_unit().state().fingerprint(),
            server.central().main_unit().state().fingerprint());
  server.stop();
}

}  // namespace
}  // namespace admire::recovery
