#include "recovery/recovery.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "workload/scenario.h"

namespace admire::recovery {
namespace {

event::Event faa(FlightKey flight, SeqNo seq) {
  event::FaaPosition pos;
  pos.flight = flight;
  pos.lat_deg = static_cast<double>(seq);
  event::Event ev = event::make_faa_position(0, seq, pos, 32);
  ev.mutable_header().vts.observe(0, seq);
  return ev;
}

TEST(Recovery, BootstrapPackageCarriesStateAndProgress) {
  mirror::MainUnitCore donor(0);
  for (SeqNo i = 1; i <= 20; ++i) donor.process(faa(1 + i % 3, i));
  const auto package = build_bootstrap_package(donor, 7);
  EXPECT_FALSE(package.snapshot_chunks.empty());
  EXPECT_EQ(package.as_of.component(0), 20u);
  EXPECT_TRUE(package.replay.empty());
}

TEST(Recovery, InstallBootstrapReproducesDonorState) {
  mirror::MainUnitCore donor(0);
  for (SeqNo i = 1; i <= 30; ++i) donor.process(faa(1 + i % 5, i));
  const auto package = build_bootstrap_package(donor, 1);
  mirror::MainUnitCore joiner(9);
  ASSERT_TRUE(install_package(package, joiner).is_ok());
  EXPECT_EQ(joiner.state().fingerprint(), donor.state().fingerprint());
  EXPECT_EQ(joiner.progress(), donor.progress());
}

TEST(Recovery, RejoinPackageReplaysOnlyTheGap) {
  mirror::MainUnitCore donor(0);
  mirror::MainUnitCore stale(2);
  // Both process 1..10; the stale node then misses 11..25.
  for (SeqNo i = 1; i <= 10; ++i) {
    donor.process(faa(1, i));
    stale.process(faa(1, i));
  }
  for (SeqNo i = 11; i <= 25; ++i) donor.process(faa(1, i));

  auto package = build_rejoin_package(donor, stale.progress());
  ASSERT_TRUE(package.is_ok()) << package.status().to_string();
  EXPECT_EQ(package.value().replay.size(), 15u);
  EXPECT_TRUE(package.value().snapshot_chunks.empty());
  ASSERT_TRUE(install_package(package.value(), stale).is_ok());
  EXPECT_EQ(stale.state().fingerprint(), donor.state().fingerprint());
  EXPECT_EQ(stale.progress(), donor.progress());
}

TEST(Recovery, RejoinRefusedWhenGapWasTrimmed) {
  mirror::MainUnitCore donor(0);
  mirror::MainUnitCore stale(2);
  for (SeqNo i = 1; i <= 5; ++i) {
    donor.process(faa(1, i));
    stale.process(faa(1, i));
  }
  for (SeqNo i = 6; i <= 20; ++i) donor.process(faa(1, i));
  // A committed checkpoint trims the donor's backup past the gap start.
  checkpoint::ControlMessage commit;
  commit.kind = checkpoint::ControlKind::kCommit;
  commit.vts.observe(0, 12);
  donor.on_commit(commit);

  auto package = build_rejoin_package(donor, stale.progress());
  ASSERT_FALSE(package.is_ok());
  EXPECT_EQ(package.status().code(), StatusCode::kExhausted);
}

TEST(Recovery, RejoinAllowedWhenStalePointAtOrBeyondCommit) {
  mirror::MainUnitCore donor(0);
  mirror::MainUnitCore stale(2);
  for (SeqNo i = 1; i <= 12; ++i) {
    donor.process(faa(1, i));
    stale.process(faa(1, i));
  }
  for (SeqNo i = 13; i <= 20; ++i) donor.process(faa(1, i));
  checkpoint::ControlMessage commit;
  commit.kind = checkpoint::ControlKind::kCommit;
  commit.vts.observe(0, 12);
  donor.on_commit(commit);  // trims exactly up to the stale point

  auto package = build_rejoin_package(donor, stale.progress());
  ASSERT_TRUE(package.is_ok());
  EXPECT_EQ(package.value().replay.size(), 8u);
}

TEST(RejoinFilter, SkipsCoveredAppliesNew) {
  event::VectorTimestamp restore;
  restore.observe(0, 10);
  RejoinFilter filter(restore);
  EXPECT_FALSE(filter.should_apply(faa(1, 5)));   // covered
  EXPECT_FALSE(filter.should_apply(faa(1, 10)));  // boundary: covered
  EXPECT_TRUE(filter.should_apply(faa(1, 11)));   // new
  EXPECT_EQ(filter.skipped(), 2u);
}

TEST(RejoinFilter, UnstampedEventsAlwaysApply) {
  event::VectorTimestamp restore;
  restore.observe(0, 10);
  RejoinFilter filter(restore);
  event::FaaPosition pos;
  pos.flight = 1;
  event::Event raw = event::make_faa_position(0, 3, pos);  // empty vts
  EXPECT_TRUE(filter.should_apply(raw));
}

TEST(RecoveryCluster, FailAndReplaceMirrorAtRuntime) {
  cluster::ClusterConfig config;
  config.num_mirrors = 2;
  config.params.function = rules::simple_mirroring();
  cluster::Cluster server(config);
  server.start();

  workload::ScenarioConfig scenario;
  scenario.faa_events = 200;
  scenario.num_flights = 10;
  scenario.event_padding = 64;
  const auto trace = workload::make_ois_trace(scenario);
  const std::size_t half = trace.size() / 2;

  for (std::size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(server.ingest(trace.items[i].ev).is_ok());
  }
  server.drain();

  // Mirror 2 dies; a replacement bootstraps from mirror 1 mid-run.
  server.fail_mirror(1);
  auto joined = server.join_new_mirror(/*donor=*/1);
  ASSERT_TRUE(joined.is_ok()) << joined.status().to_string();
  const std::size_t new_idx = joined.value();

  for (std::size_t i = half; i < trace.size(); ++i) {
    ASSERT_TRUE(server.ingest(trace.items[i].ev).is_ok());
  }
  server.central().drain();
  server.mirror(0).drain();
  server.mirror(new_idx).drain();

  // The replacement converged with the surviving mirror.
  const auto fp_survivor = server.mirror(0).main_unit().state().fingerprint();
  const auto fp_joiner =
      server.mirror(new_idx).main_unit().state().fingerprint();
  EXPECT_EQ(fp_joiner, fp_survivor);
  // And it serves snapshot requests as a full pool member.
  auto snapshot = server.request_snapshot(4242);
  ASSERT_TRUE(snapshot.is_ok());
  server.stop();
}

TEST(RecoveryCluster, JoinerSkipsDuplicateLiveEvents) {
  cluster::ClusterConfig config;
  config.num_mirrors = 1;
  cluster::Cluster server(config);
  server.start();

  workload::ScenarioConfig scenario;
  scenario.faa_events = 150;
  scenario.num_flights = 5;
  const auto trace = workload::make_ois_trace(scenario);
  for (std::size_t i = 0; i < trace.size() / 2; ++i) {
    ASSERT_TRUE(server.ingest(trace.items[i].ev).is_ok());
  }
  server.drain();

  auto joined = server.join_new_mirror(/*donor=*/0);
  ASSERT_TRUE(joined.is_ok());
  for (std::size_t i = trace.size() / 2; i < trace.size(); ++i) {
    ASSERT_TRUE(server.ingest(trace.items[i].ev).is_ok());
  }
  server.drain();
  // Central state (donor) and joiner agree under simple mirroring.
  EXPECT_EQ(server.mirror(joined.value()).main_unit().state().fingerprint(),
            server.central().main_unit().state().fingerprint());
  server.stop();
}

}  // namespace
}  // namespace admire::recovery
