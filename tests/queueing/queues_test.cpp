#include <gtest/gtest.h>

#include "queueing/backup_queue.h"
#include "queueing/ready_queue.h"
#include "queueing/status_table.h"

namespace admire::queueing {
namespace {

event::Event ev_with_vts(StreamId stream, SeqNo seq) {
  event::FaaPosition pos;
  pos.flight = 1;
  event::Event ev = event::make_faa_position(stream, seq, pos);
  ev.mutable_header().vts.observe(stream, seq);
  return ev;
}

TEST(ReadyQueue, FifoAndCounts) {
  ReadyQueue q;
  EXPECT_TRUE(q.empty());
  q.push(ev_with_vts(0, 1));
  q.push(ev_with_vts(0, 2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pushed_count(), 2u);
  EXPECT_EQ(q.try_pop()->seq(), 1u);
  EXPECT_EQ(q.try_pop()->seq(), 2u);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(ReadyQueue, HighWaterMark) {
  ReadyQueue q;
  for (SeqNo i = 0; i < 10; ++i) q.push(ev_with_vts(0, i));
  for (int i = 0; i < 5; ++i) (void)q.try_pop();
  for (SeqNo i = 10; i < 12; ++i) q.push(ev_with_vts(0, i));
  EXPECT_EQ(q.high_water(), 10u);
}

TEST(ReadyQueue, PopBatch) {
  ReadyQueue q;
  for (SeqNo i = 1; i <= 5; ++i) q.push(ev_with_vts(0, i));
  auto batch = q.pop_batch(3);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].seq(), 1u);
  EXPECT_EQ(batch[2].seq(), 3u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop_batch(10).size(), 2u);
}

TEST(ReadyQueue, PushBatchKeepsFifoAndCounts) {
  ReadyQueue q;
  q.push(ev_with_vts(0, 1));
  std::vector<event::Event> batch;
  for (SeqNo i = 2; i <= 6; ++i) batch.push_back(ev_with_vts(0, i));
  q.push_batch(std::move(batch));
  EXPECT_EQ(q.size(), 6u);
  EXPECT_EQ(q.pushed_count(), 6u);
  EXPECT_EQ(q.high_water(), 6u);
  for (SeqNo i = 1; i <= 6; ++i) EXPECT_EQ(q.try_pop()->seq(), i);
  EXPECT_TRUE(q.empty());
}

TEST(ReadyQueue, PushBatchEmptyIsANoop) {
  ReadyQueue q;
  q.push_batch({});
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pushed_count(), 0u);
}

TEST(ReadyQueue, PushBatchThenPopBatchRoundTrips) {
  ReadyQueue q;
  std::vector<event::Event> batch;
  for (SeqNo i = 1; i <= 100; ++i) batch.push_back(ev_with_vts(0, i));
  q.push_batch(std::move(batch));
  auto out = q.pop_batch(1000);  // more than size: whole-queue fast path
  ASSERT_EQ(out.size(), 100u);
  EXPECT_EQ(out.front().seq(), 1u);
  EXPECT_EQ(out.back().seq(), 100u);
  EXPECT_TRUE(q.empty());
}

TEST(BackupQueue, LastAndFirstVts) {
  BackupQueue q;
  EXPECT_FALSE(q.last_vts().has_value());
  q.push(ev_with_vts(0, 1));
  q.push(ev_with_vts(0, 2));
  q.push(ev_with_vts(0, 3));
  EXPECT_EQ(q.first_vts()->component(0), 1u);
  EXPECT_EQ(q.last_vts()->component(0), 3u);
}

TEST(BackupQueue, TrimRemovesDominatedPrefix) {
  BackupQueue q;
  for (SeqNo i = 1; i <= 10; ++i) q.push(ev_with_vts(0, i));
  event::VectorTimestamp commit;
  commit.observe(0, 6);
  EXPECT_EQ(q.trim_committed(commit), 6u);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.first_vts()->component(0), 7u);
}

TEST(BackupQueue, StaleCommitIsIgnored) {
  BackupQueue q;
  for (SeqNo i = 5; i <= 8; ++i) q.push(ev_with_vts(0, i));
  event::VectorTimestamp old_commit;
  old_commit.observe(0, 2);  // refers to events no longer present
  EXPECT_EQ(q.trim_committed(old_commit), 0u);
  EXPECT_EQ(q.size(), 4u);
}

TEST(BackupQueue, ContainsExactVts) {
  BackupQueue q;
  q.push(ev_with_vts(0, 3));
  event::VectorTimestamp present, absent;
  present.observe(0, 3);
  absent.observe(0, 4);
  EXPECT_TRUE(q.contains(present));
  EXPECT_FALSE(q.contains(absent));
}

TEST(BackupQueue, MultiStreamTrimRequiresDominance) {
  BackupQueue q;
  // Interleaved streams: commit must dominate on every component.
  event::Event e1 = ev_with_vts(0, 1);
  e1.mutable_header().vts.observe(1, 1);
  event::Event e2 = ev_with_vts(1, 2);
  e2.mutable_header().vts.observe(0, 1);
  q.push(e1);
  q.push(e2);
  event::VectorTimestamp partial;
  partial.observe(0, 1);  // nothing for stream 1
  EXPECT_EQ(q.trim_committed(partial), 0u);
  partial.observe(1, 2);
  EXPECT_EQ(q.trim_committed(partial), 2u);
}

TEST(BackupQueue, EntriesAfterForReplay) {
  BackupQueue q;
  for (SeqNo i = 1; i <= 5; ++i) q.push(ev_with_vts(0, i));
  event::VectorTimestamp from;
  from.observe(0, 3);
  const auto replay = q.entries_after(from);
  ASSERT_EQ(replay.size(), 2u);
  EXPECT_EQ(replay[0].seq(), 4u);
  EXPECT_EQ(replay[1].seq(), 5u);
}

TEST(BackupQueue, HighWater) {
  BackupQueue q;
  for (SeqNo i = 1; i <= 7; ++i) q.push(ev_with_vts(0, i));
  event::VectorTimestamp commit;
  commit.observe(0, 7);
  q.trim_committed(commit);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.high_water(), 7u);
}

TEST(BackupView, SingleSegmentDelegatesVerbatim) {
  BackupQueue seg;
  BackupView view;
  view.attach({&seg});
  for (SeqNo i = 1; i <= 5; ++i) seg.push(ev_with_vts(0, i));
  EXPECT_EQ(view.size(), seg.size());
  EXPECT_EQ(view.high_water(), seg.high_water());
  EXPECT_EQ(*view.last_vts(), *seg.last_vts());
  event::VectorTimestamp from;
  from.observe(0, 3);
  EXPECT_EQ(view.entries_after(from).size(), 2u);
  event::VectorTimestamp commit;
  commit.observe(0, 4);
  EXPECT_EQ(view.trim_committed(commit), 4u);
  EXPECT_EQ(view.trimmed_count(), seg.trimmed_count());
  EXPECT_EQ(view.size(), 1u);
}

TEST(BackupView, MergedLastVtsIsComponentMax) {
  // Segments advance different streams; the merged suggestion must cover
  // both (the paper's "most recent value" generalized to a sharded drain).
  BackupQueue a, b;
  BackupView view;
  view.attach({&a, &b});
  EXPECT_FALSE(view.last_vts().has_value());
  a.push(ev_with_vts(0, 7));
  b.push(ev_with_vts(1, 3));
  const auto last = view.last_vts();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->component(0), 7u);
  EXPECT_EQ(last->component(1), 3u);
  EXPECT_TRUE(last->dominates(*a.last_vts()));
  EXPECT_TRUE(last->dominates(*b.last_vts()));
  // Trimming with the merged suggestion reclaims every segment.
  EXPECT_EQ(view.trim_committed(*last), 2u);
  EXPECT_TRUE(view.empty());
}

TEST(BackupView, TrimAndContainsSpanSegments) {
  BackupQueue a, b;
  BackupView view;
  view.attach({&a, &b});
  for (SeqNo i = 1; i <= 4; ++i) a.push(ev_with_vts(0, i));
  for (SeqNo i = 1; i <= 4; ++i) b.push(ev_with_vts(1, i));
  EXPECT_EQ(view.size(), 8u);
  event::VectorTimestamp probe;
  probe.observe(1, 2);
  EXPECT_TRUE(view.contains(probe));  // lives in segment b only
  event::VectorTimestamp commit;
  commit.observe(0, 2);
  commit.observe(1, 3);
  EXPECT_EQ(view.trim_committed(commit), 5u);  // 2 from a + 3 from b
  EXPECT_EQ(view.trimmed_count(), 5u);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 1u);
  // high_water is the max segment mark (floor convention).
  EXPECT_EQ(view.high_water(), 4u);
  // Replay concatenates in segment order; per-stream order is exact.
  const auto replay = view.entries_after(event::VectorTimestamp());
  ASSERT_EQ(replay.size(), 3u);
  EXPECT_EQ(replay[0].seq(), 3u);  // a: 3, 4 then b: 4
  EXPECT_EQ(replay[1].seq(), 4u);
  EXPECT_EQ(replay[2].seq(), 4u);
}

TEST(BackupView, InstrumentAggregatesAcrossSegments) {
  obs::Registry registry;
  BackupQueue a, b;
  BackupView view;
  view.attach({&a, &b});
  view.instrument(registry, "queue.test.backup");
  for (SeqNo i = 1; i <= 3; ++i) a.push(ev_with_vts(0, i));
  b.push(ev_with_vts(1, 1));
  event::VectorTimestamp commit;
  commit.observe(0, 2);
  view.trim_committed(commit);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.gauge_or("queue.test.backup.depth"), 2.0);
  EXPECT_EQ(snap.gauge_or("queue.test.backup.trimmed_total"), 2.0);
  const auto* hist = snap.histogram("queue.test.backup.trim_events");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1u);  // one observation per trim call, merged size
  EXPECT_EQ(hist->sum, 2.0);
}

TEST(StatusTable, RunCountersPerTypeAndKey) {
  StatusTable t;
  EXPECT_EQ(t.bump_run_counter(event::EventType::kFaaPosition, 1), 0u);
  EXPECT_EQ(t.bump_run_counter(event::EventType::kFaaPosition, 1), 1u);
  EXPECT_EQ(t.bump_run_counter(event::EventType::kFaaPosition, 2), 0u);
  EXPECT_EQ(t.bump_run_counter(event::EventType::kDeltaStatus, 1), 0u);
  EXPECT_EQ(t.run_counter(event::EventType::kFaaPosition, 1), 2u);
  t.reset_run_counter(event::EventType::kFaaPosition, 1);
  EXPECT_EQ(t.run_counter(event::EventType::kFaaPosition, 1), 0u);
}

TEST(StatusTable, FlightStatus) {
  StatusTable t;
  EXPECT_FALSE(t.flight_status(5).has_value());
  t.set_flight_status(5, event::FlightStatus::kLanded);
  EXPECT_EQ(*t.flight_status(5), event::FlightStatus::kLanded);
  EXPECT_EQ(t.tracked_flights(), 1u);
}

TEST(StatusTable, SuppressionLatch) {
  StatusTable t;
  EXPECT_FALSE(t.suppressed(event::EventType::kFaaPosition, 1));
  t.set_suppressed(event::EventType::kFaaPosition, 1, true);
  EXPECT_TRUE(t.suppressed(event::EventType::kFaaPosition, 1));
  EXPECT_FALSE(t.suppressed(event::EventType::kFaaPosition, 2));
  EXPECT_FALSE(t.suppressed(event::EventType::kDeltaStatus, 1));
  t.set_suppressed(event::EventType::kFaaPosition, 1, false);
  EXPECT_FALSE(t.suppressed(event::EventType::kFaaPosition, 1));
}

TEST(StatusTable, TupleProgressBitmask) {
  StatusTable t;
  EXPECT_EQ(t.tuple_mark(0, 9, 0), 0b001u);
  EXPECT_EQ(t.tuple_mark(0, 9, 2), 0b101u);
  EXPECT_EQ(t.tuple_mark(0, 9, 1), 0b111u);
  EXPECT_EQ(t.tuple_mark(1, 9, 0), 0b001u);  // independent rule id
  t.tuple_reset(0, 9);
  EXPECT_EQ(t.tuple_mark(0, 9, 0), 0b001u);  // restarted
}

TEST(StatusTable, ClearResetsEverything) {
  StatusTable t;
  t.bump_run_counter(event::EventType::kFaaPosition, 1);
  t.set_flight_status(1, event::FlightStatus::kBoarding);
  t.set_suppressed(event::EventType::kFaaPosition, 1, true);
  t.tuple_mark(0, 1, 0);
  t.clear();
  EXPECT_EQ(t.run_counter(event::EventType::kFaaPosition, 1), 0u);
  EXPECT_FALSE(t.flight_status(1).has_value());
  EXPECT_FALSE(t.suppressed(event::EventType::kFaaPosition, 1));
  EXPECT_EQ(t.tracked_flights(), 0u);
}

}  // namespace
}  // namespace admire::queueing
