// Strategy-extraction tests (DESIGN.md §16): the pluggable decision makers
// behind AdaptationController. The centerpiece is the bit-reproduction
// property test — the refactored controller with ThresholdStrategy must
// produce the exact directive sequence the pre-refactor threshold+hysteresis
// controller produced for arbitrary observe/exclude/evaluate interleavings,
// not merely pass the same example-based tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "adapt/controller.h"
#include "adapt/strategy.h"
#include "common/rng.h"
#include "obs/registry.h"

namespace admire::adapt {
namespace {

AdaptationPolicy threshold_policy(std::vector<ThresholdSpec> thresholds) {
  AdaptationPolicy p;
  p.thresholds = std::move(thresholds);
  p.mode = PolicyMode::kSwitchFunction;
  p.normal_spec = rules::fig9_function_a();
  p.engaged_spec = rules::fig9_function_b();
  return p;
}

StrategyInputs inputs_with(MonitoredVariable v, double value) {
  StrategyInputs in;
  in.of(v) = value;
  return in;
}

// --- Bit-reproduction: the pre-refactor controller as an oracle -------------

/// The pre-refactor controller's decision logic, transcribed verbatim from
/// the seed's AdaptationController::evaluate(): engage when ANY monitored
/// variable's non-excluded cluster max reaches its primary threshold;
/// once engaged, stay while ANY max is still >= (primary - secondary).
struct LegacyThresholdOracle {
  std::vector<ThresholdSpec> thresholds;
  std::map<std::pair<SiteId, MonitoredVariable>, double> values;
  std::set<SiteId> excluded;
  bool engaged = false;
  std::uint64_t epoch = 0;

  double max_of(MonitoredVariable v) const {
    double best = 0.0;
    for (const auto& [key, value] : values) {
      if (key.second != v || excluded.count(key.first) > 0) continue;
      best = std::max(best, value);
    }
    return best;
  }

  /// Mirrors evaluate(): (epoch, engaged) when the regime flips.
  std::optional<std::pair<std::uint64_t, bool>> evaluate() {
    bool should_engage = engaged;
    if (!engaged) {
      for (const auto& t : thresholds) {
        if (max_of(t.variable) >= t.primary) {
          should_engage = true;
          break;
        }
      }
    } else {
      bool any_above_release = false;
      for (const auto& t : thresholds) {
        if (max_of(t.variable) >= t.primary - t.secondary) {
          any_above_release = true;
          break;
        }
      }
      should_engage = any_above_release;
    }
    if (should_engage == engaged) return std::nullopt;
    engaged = should_engage;
    ++epoch;
    return std::make_pair(epoch, engaged);
  }
};

TEST(StrategyBitRepro, RandomSequencesMatchLegacyController) {
  // Random policies x random observe/exclude/evaluate interleavings: the
  // refactored controller and the legacy oracle must emit identical
  // directive sequences (same epochs, same engaged flags, same specs).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 0x9E3779B9);
    std::vector<ThresholdSpec> thresholds;
    const std::size_t num_thresholds = 1 + seed % 3;
    for (std::size_t i = 0; i < num_thresholds; ++i) {
      ThresholdSpec t;
      t.variable =
          static_cast<MonitoredVariable>(static_cast<std::uint8_t>(
              rng.next_double() * static_cast<double>(kNumMonitoredVariables)));
      t.primary = 5.0 + rng.next_double() * 10.0;
      t.secondary = 1.0 + rng.next_double() * (t.primary - 1.0);
      thresholds.push_back(t);
    }

    AdaptationController controller(threshold_policy(thresholds));
    LegacyThresholdOracle oracle;
    oracle.thresholds = thresholds;

    for (int op = 0; op < 2000; ++op) {
      const double pick = rng.next_double();
      if (pick < 0.55) {
        const SiteId site = static_cast<SiteId>(rng.next_double() * 6.0);
        const auto variable =
            static_cast<MonitoredVariable>(static_cast<std::uint8_t>(
                rng.next_double() *
                static_cast<double>(kNumMonitoredVariables)));
        const double value = rng.next_double() * 20.0;
        controller.observe(site, variable, value);
        oracle.values[{site, variable}] = value;
      } else if (pick < 0.70) {
        const SiteId site = static_cast<SiteId>(rng.next_double() * 6.0);
        const bool exclude = rng.next_bool(0.5);
        controller.set_site_excluded(site, exclude);
        if (exclude) {
          oracle.excluded.insert(site);
        } else {
          oracle.excluded.erase(site);
        }
      } else {
        const auto got = controller.evaluate();
        const auto want = oracle.evaluate();
        ASSERT_EQ(got.has_value(), want.has_value())
            << "seed " << seed << " op " << op;
        if (got.has_value()) {
          EXPECT_EQ(got->epoch, want->first) << "seed " << seed;
          EXPECT_EQ(got->engaged, want->second) << "seed " << seed;
          EXPECT_EQ(got->spec, want->second ? rules::fig9_function_b()
                                            : rules::fig9_function_a());
        }
        EXPECT_EQ(controller.engaged(), oracle.engaged);
      }
    }
    EXPECT_EQ(controller.transitions(), oracle.epoch) << "seed " << seed;
  }
}

// --- ThresholdStrategy ------------------------------------------------------

TEST(ThresholdStrategyTest, EngageAtPrimaryReleaseBelowBand) {
  ThresholdStrategy s({{MonitoredVariable::kPendingRequests, 10, 5}});
  s.ingest(inputs_with(MonitoredVariable::kPendingRequests, 9.99));
  EXPECT_EQ(s.evaluate(false), std::nullopt);
  s.ingest(inputs_with(MonitoredVariable::kPendingRequests, 10.0));
  EXPECT_EQ(s.evaluate(false), std::make_optional(true));
  // Inside the hysteresis band: no opinion either way.
  s.ingest(inputs_with(MonitoredVariable::kPendingRequests, 5.0));
  EXPECT_EQ(s.evaluate(true), std::nullopt);
  s.ingest(inputs_with(MonitoredVariable::kPendingRequests, 4.99));
  EXPECT_EQ(s.evaluate(true), std::make_optional(false));
}

// --- PidStrategy ------------------------------------------------------------

PidStrategyConfig pid_config() {
  PidStrategyConfig c;
  c.variable = MonitoredVariable::kPendingRequests;
  c.setpoint = 5.0;
  c.kp = 1.0;
  c.ki = 0.5;
  c.kd = 0.0;
  c.integral_limit = 10.0;
  c.engage_above = 4.0;
  c.release_below = -4.0;
  return c;
}

TEST(PidStrategyTest, EngagesOnSustainedErrorNotBlip) {
  PidStrategy s(pid_config());
  // error = +1: output = 1*1 + 0.5*integral — takes sustained pressure.
  s.ingest(inputs_with(MonitoredVariable::kPendingRequests, 6.0));
  EXPECT_EQ(s.evaluate(false), std::nullopt);
  std::optional<bool> decision;
  for (int round = 0; round < 10 && !decision.has_value(); ++round) {
    s.ingest(inputs_with(MonitoredVariable::kPendingRequests, 6.0));
    decision = s.evaluate(false);
  }
  EXPECT_EQ(decision, std::make_optional(true));
}

TEST(PidStrategyTest, AntiWindupClampsIntegralAndReleasesPromptly) {
  PidStrategy s(pid_config());
  // Saturate: error = +20 per round would integrate to 200 unclamped.
  for (int round = 0; round < 10; ++round) {
    s.ingest(inputs_with(MonitoredVariable::kPendingRequests, 25.0));
    (void)s.evaluate(true);
  }
  EXPECT_DOUBLE_EQ(s.integral(), 10.0);  // clamped at +integral_limit
  // Load vanishes (error = -5 per round). With the clamp the integral
  // unwinds within a few rounds and the strategy releases; an unclamped
  // integral of 200 would hold it engaged for ~40 rounds.
  std::optional<bool> decision;
  int rounds_to_release = 0;
  while (rounds_to_release < 10) {
    ++rounds_to_release;
    s.ingest(inputs_with(MonitoredVariable::kPendingRequests, 0.0));
    decision = s.evaluate(true);
    if (decision.has_value()) break;
  }
  EXPECT_EQ(decision, std::make_optional(false));
  EXPECT_LE(rounds_to_release, 5);
  EXPECT_GE(s.integral(), -10.0);  // clamped at -integral_limit too
}

TEST(PidStrategyTest, DeadBandBetweenEngageAndReleaseHoldsRegime) {
  PidStrategy s(pid_config());
  // error = 0 forever: output 0 sits strictly inside (-4, 4).
  for (int round = 0; round < 5; ++round) {
    s.ingest(inputs_with(MonitoredVariable::kPendingRequests, 5.0));
    EXPECT_EQ(s.evaluate(false), std::nullopt);
    s.ingest(inputs_with(MonitoredVariable::kPendingRequests, 5.0));
    EXPECT_EQ(s.evaluate(true), std::nullopt);
  }
}

// --- UtilityStrategy --------------------------------------------------------

TEST(UtilityStrategyTest, ArgmaxSwitchesUnderLoadAndBackAtIdle) {
  UtilityStrategyConfig config;  // relief 0.5, penalty 4, margin 0.5
  UtilityStrategy s(config);
  // load = 2.0 * pending. Engaging pays when load * relief > penalty +
  // margin, i.e. pending > 4.5.
  s.ingest(inputs_with(MonitoredVariable::kPendingRequests, 4.0));
  EXPECT_EQ(s.evaluate(false), std::nullopt);
  s.ingest(inputs_with(MonitoredVariable::kPendingRequests, 5.0));
  EXPECT_EQ(s.evaluate(false), std::make_optional(true));
  // Idle: the engaged regime's fidelity penalty dominates.
  s.ingest(inputs_with(MonitoredVariable::kPendingRequests, 0.0));
  EXPECT_EQ(s.evaluate(true), std::make_optional(false));
}

TEST(UtilityStrategyTest, SwitchMarginPreventsFlappingAtIndifference) {
  UtilityStrategyConfig config;
  UtilityStrategy s(config);
  // pending = 4.0 -> load = 8.0: u(engaged) - u(normal) = 8*0.5 - 4 = 0.
  // Exactly indifferent — the margin keeps whichever regime is incumbent.
  s.ingest(inputs_with(MonitoredVariable::kPendingRequests, 4.0));
  EXPECT_EQ(s.evaluate(false), std::nullopt);
  s.ingest(inputs_with(MonitoredVariable::kPendingRequests, 4.0));
  EXPECT_EQ(s.evaluate(true), std::nullopt);
}

TEST(UtilityStrategyTest, CostWeightsFoldAllFiveVariables) {
  CostWeights w;
  StrategyInputs in;
  in.of(MonitoredVariable::kReadyQueueLength) = 1.0;
  in.of(MonitoredVariable::kBackupQueueLength) = 2.0;
  in.of(MonitoredVariable::kPendingRequests) = 3.0;
  in.of(MonitoredVariable::kUpdateDelayMs) = 4.0;
  in.of(MonitoredVariable::kShedRate) = 5.0;
  // 1*1 + 2*0.5 + 3*2 + 4*1 + 5*4 = 32.
  EXPECT_DOUBLE_EQ(w.cost(in), 32.0);
}

// --- BanditStrategy ---------------------------------------------------------

TEST(BanditStrategyTest, DeterministicGivenSeed) {
  BanditStrategyConfig config;
  config.epsilon = 0.3;  // exploration-heavy: the PRNG matters
  BanditStrategy a(config);
  BanditStrategy b(config);
  Rng load(7);
  bool engaged_a = false;
  bool engaged_b = false;
  for (int round = 0; round < 300; ++round) {
    const auto in = inputs_with(MonitoredVariable::kPendingRequests,
                                load.next_double() * 10.0);
    a.ingest(in);
    b.ingest(in);
    const auto da = a.evaluate(engaged_a);
    const auto db = b.evaluate(engaged_b);
    ASSERT_EQ(da, db) << "round " << round;
    engaged_a = da.value_or(engaged_a);
    engaged_b = db.value_or(engaged_b);
  }
}

TEST(BanditStrategyTest, MinDwellFreezesChoiceAfterSwitch) {
  BanditStrategyConfig config;
  config.epsilon = 0.5;
  config.min_dwell = 3;
  BanditStrategy s(config);
  bool engaged = false;
  int rounds_since_switch = 1000;
  for (int round = 0; round < 400; ++round) {
    s.ingest(inputs_with(MonitoredVariable::kReadyQueueLength, 1.0));
    const auto d = s.evaluate(engaged);
    if (d.has_value() && *d != engaged) {
      // A regime flip must be preceded by >= min_dwell frozen rounds.
      EXPECT_GE(rounds_since_switch, 3) << "round " << round;
      rounds_since_switch = 0;
      engaged = *d;
    } else {
      ++rounds_since_switch;
    }
  }
}

TEST(BanditStrategyTest, ExploresUnplayedRegimeBeforeExploiting) {
  BanditStrategyConfig config;
  config.epsilon = 0.0;  // pure exploitation after both arms have data
  config.min_dwell = 0;
  // Running in the normal regime: the engaged arm has no reward sample yet,
  // so the first decision explores it regardless of the reward comparison.
  BanditStrategy from_normal(config);
  from_normal.ingest(inputs_with(MonitoredVariable::kPendingRequests, 1.0));
  EXPECT_EQ(from_normal.evaluate(false), std::make_optional(true));
  // Symmetric: starting engaged, the unplayed normal arm is tried first.
  BanditStrategy from_engaged(config);
  from_engaged.ingest(inputs_with(MonitoredVariable::kPendingRequests, 1.0));
  EXPECT_EQ(from_engaged.evaluate(true), std::make_optional(false));
}

// --- Factory + config plumbing ----------------------------------------------

TEST(StrategyFactory, MakesEveryKindWithMatchingName) {
  const std::vector<ThresholdSpec> thresholds = {
      {MonitoredVariable::kReadyQueueLength, 10, 5}};
  for (const auto& [kind, want] :
       {std::pair{StrategyKind::kThreshold, "threshold"},
        std::pair{StrategyKind::kPid, "pid"},
        std::pair{StrategyKind::kUtility, "utility"},
        std::pair{StrategyKind::kBandit, "bandit"}}) {
    StrategyConfig config;
    config.kind = kind;
    const auto s = make_strategy(config, thresholds);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), want);
    EXPECT_STREQ(strategy_kind_name(kind), want);
  }
}

TEST(StrategyFactory, ControllerSelectsStrategyFromPolicy) {
  AdaptationPolicy policy =
      threshold_policy({{MonitoredVariable::kPendingRequests, 10, 5}});
  policy.strategy.kind = StrategyKind::kPid;
  policy.strategy.pid = pid_config();
  AdaptationController controller(policy);
  EXPECT_EQ(controller.strategy_name(), "pid");
  // The PID decision plane actually drives directives end to end.
  std::optional<AdaptationDirective> directive;
  for (int round = 0; round < 10 && !directive.has_value(); ++round) {
    controller.observe(1, MonitoredVariable::kPendingRequests, 25.0);
    directive = controller.evaluate();
  }
  ASSERT_TRUE(directive.has_value());
  EXPECT_TRUE(directive->engaged);
  EXPECT_EQ(directive->spec, rules::fig9_function_b());
}

// --- New monitored variables ------------------------------------------------

TEST(MonitoredVariables, ExtendedSetHasNamesAndCodecSupport) {
  EXPECT_STREQ(monitored_variable_name(MonitoredVariable::kUpdateDelayMs),
               "update_delay_ms");
  EXPECT_STREQ(monitored_variable_name(MonitoredVariable::kShedRate),
               "shed_rate");
  MonitorReport r;
  r.site = 7;
  r.samples = {{MonitoredVariable::kUpdateDelayMs, 12.5},
               {MonitoredVariable::kShedRate, 3.0}};
  const Bytes body = encode_report(r);
  const auto decoded = decode_report(ByteSpan(body.data(), body.size()));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), r);
}

// --- forget_site ------------------------------------------------------------

TEST(ControllerForget, DropsValuesAndExclusionMark) {
  AdaptationController c(
      threshold_policy({{MonitoredVariable::kPendingRequests, 10, 5}}));
  c.observe(1, MonitoredVariable::kPendingRequests, 50.0);
  c.observe(1, MonitoredVariable::kReadyQueueLength, 3.0);
  c.observe(2, MonitoredVariable::kPendingRequests, 2.0);
  EXPECT_EQ(c.tracked_sites(), 2u);
  EXPECT_DOUBLE_EQ(c.max_value(MonitoredVariable::kPendingRequests), 50.0);

  // Without forget_site the dead site 1 pins the maximum at 50 forever.
  c.forget_site(1);
  EXPECT_EQ(c.tracked_sites(), 1u);
  EXPECT_DOUBLE_EQ(c.max_value(MonitoredVariable::kPendingRequests), 2.0);
  EXPECT_FALSE(c.evaluate().has_value());
  EXPECT_FALSE(c.engaged());

  // The exclusion mark dies with the site: a replacement incarnation
  // reusing the SiteId starts with a clean slate and a live vote.
  c.observe(3, MonitoredVariable::kPendingRequests, 1.0);
  c.set_site_excluded(3, true);
  c.forget_site(3);
  EXPECT_FALSE(c.site_excluded(3));
  c.observe(3, MonitoredVariable::kPendingRequests, 11.0);
  EXPECT_TRUE(c.evaluate().has_value());
  EXPECT_TRUE(c.engaged());
}

// --- Instrumentation (adapt.* family, OBSERVABILITY.md) ---------------------

TEST(ControllerInstrument, PublishesAdaptMetricFamily) {
  obs::Registry registry;
  AdaptationController c(
      threshold_policy({{MonitoredVariable::kPendingRequests, 10, 5}}));
  c.instrument(registry);

  c.observe(1, MonitoredVariable::kPendingRequests, 12.0);
  EXPECT_TRUE(c.evaluate().has_value());  // engage
  c.observe(1, MonitoredVariable::kPendingRequests, 1.0);
  EXPECT_TRUE(c.evaluate().has_value());  // release
  c.set_site_excluded(1, true);
  EXPECT_FALSE(c.evaluate().has_value());  // refreshes the value gauges

  EXPECT_DOUBLE_EQ(registry.gauge("adapt.value.pending_requests").value(),
                   0.0);  // excluded site no longer drives the max
  EXPECT_DOUBLE_EQ(registry.gauge("adapt.engaged").value(), 0.0);
  EXPECT_DOUBLE_EQ(registry.gauge("adapt.excluded_sites").value(), 1.0);
  EXPECT_EQ(registry.counter("adapt.transitions_total").value(), 2u);
  EXPECT_EQ(registry.counter("adapt.engage_total").value(), 1u);
  EXPECT_EQ(registry.counter("adapt.release_total").value(), 1u);
  // One decision-latency sample per evaluate(), keyed by strategy name.
  EXPECT_EQ(registry
                .histogram("adapt.decision_ns.threshold",
                           obs::Histogram::latency_bounds())
                .count(),
            3u);
}

}  // namespace
}  // namespace admire::adapt
