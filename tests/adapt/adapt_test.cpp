#include <gtest/gtest.h>

#include "adapt/controller.h"
#include "adapt/directive.h"

namespace admire::adapt {
namespace {

AdaptationPolicy switch_policy(double primary = 10, double secondary = 5) {
  AdaptationPolicy p;
  p.thresholds = {{MonitoredVariable::kPendingRequests, primary, secondary}};
  p.mode = PolicyMode::kSwitchFunction;
  p.normal_spec = rules::fig9_function_a();
  p.engaged_spec = rules::fig9_function_b();
  return p;
}

TEST(Directive, CodecRoundTrip) {
  AdaptationDirective d;
  d.epoch = 9;
  d.engaged = true;
  d.spec = rules::selective_mirroring(16, 200);
  const Bytes body = encode_directive(d);
  auto decoded = decode_directive(ByteSpan(body.data(), body.size()));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), d);
}

TEST(Directive, ReportCodecRoundTrip) {
  MonitorReport r;
  r.site = 3;
  r.samples = {{MonitoredVariable::kReadyQueueLength, 42.5},
               {MonitoredVariable::kPendingRequests, 7.0}};
  const Bytes body = encode_report(r);
  auto decoded = decode_report(ByteSpan(body.data(), body.size()));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), r);
}

TEST(Directive, WrongTagRejectedByEachDecoder) {
  const Bytes d = encode_directive({});
  const Bytes r = encode_report({});
  EXPECT_FALSE(decode_report(ByteSpan(d.data(), d.size())).is_ok());
  EXPECT_FALSE(decode_directive(ByteSpan(r.data(), r.size())).is_ok());
  EXPECT_FALSE(decode_directive({}).is_ok());
}

TEST(Adjustments, PercentMath) {
  rules::MirrorFunctionSpec spec = rules::selective_mirroring(10, 50);
  const auto out = apply_adjustments(
      spec, {{ParamId::kOverwriteMax, 100}, {ParamId::kCheckpointEvery, 50}});
  EXPECT_EQ(out.overwrite_max, 20u);
  EXPECT_EQ(out.checkpoint_every, 75u);
}

TEST(Adjustments, NeverBelowOne) {
  rules::MirrorFunctionSpec spec = rules::selective_mirroring(2, 10);
  const auto out = apply_adjustments(spec, {{ParamId::kOverwriteMax, -99},
                                            {ParamId::kCheckpointEvery, -200}});
  EXPECT_GE(out.overwrite_max, 1u);
  EXPECT_GE(out.checkpoint_every, 1u);
}

TEST(Adjustments, CoalesceEnableFollowsValue) {
  rules::MirrorFunctionSpec spec = rules::simple_mirroring();
  spec.coalesce_max = 1;
  const auto out = apply_adjustments(spec, {{ParamId::kCoalesceMax, 400}});
  EXPECT_EQ(out.coalesce_max, 5u);
  EXPECT_TRUE(out.coalesce_enabled);
}

TEST(Controller, EngagesAtPrimaryThreshold) {
  AdaptationController c(switch_policy(10, 5));
  c.observe(1, MonitoredVariable::kPendingRequests, 9.0);
  EXPECT_FALSE(c.evaluate().has_value());
  EXPECT_FALSE(c.engaged());
  c.observe(1, MonitoredVariable::kPendingRequests, 10.0);
  auto d = c.evaluate();
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->engaged);
  EXPECT_EQ(d->spec, rules::fig9_function_b());
  EXPECT_EQ(d->epoch, 1u);
  EXPECT_TRUE(c.engaged());
}

TEST(Controller, HysteresisReleaseBelowPrimaryMinusSecondary) {
  AdaptationController c(switch_policy(10, 5));
  c.observe(1, MonitoredVariable::kPendingRequests, 12.0);
  ASSERT_TRUE(c.evaluate().has_value());
  // Paper: "the re-installation of the original mechanism takes place when
  // the monitored value falls below (primary - secondary)".
  c.observe(1, MonitoredVariable::kPendingRequests, 7.0);  // in the band
  EXPECT_FALSE(c.evaluate().has_value());
  EXPECT_TRUE(c.engaged());
  c.observe(1, MonitoredVariable::kPendingRequests, 4.9);  // below band
  auto d = c.evaluate();
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->engaged);
  EXPECT_EQ(d->spec, rules::fig9_function_a());
  EXPECT_EQ(d->epoch, 2u);
}

TEST(Controller, NoDirectiveWhileStateUnchanged) {
  AdaptationController c(switch_policy());
  c.observe(1, MonitoredVariable::kPendingRequests, 100.0);
  EXPECT_TRUE(c.evaluate().has_value());
  EXPECT_FALSE(c.evaluate().has_value());  // still engaged, no re-issue
  EXPECT_EQ(c.transitions(), 1u);
}

TEST(Controller, MaxAcrossSitesDrivesDecision) {
  AdaptationController c(switch_policy(10, 5));
  c.observe(1, MonitoredVariable::kPendingRequests, 2.0);
  c.observe(2, MonitoredVariable::kPendingRequests, 11.0);
  c.observe(3, MonitoredVariable::kPendingRequests, 1.0);
  EXPECT_TRUE(c.evaluate().has_value());
  EXPECT_DOUBLE_EQ(c.max_value(MonitoredVariable::kPendingRequests), 11.0);
  // Release requires EVERY site back under the band.
  c.observe(2, MonitoredVariable::kPendingRequests, 4.0);
  c.observe(1, MonitoredVariable::kPendingRequests, 6.0);
  EXPECT_FALSE(c.evaluate().has_value());
  c.observe(1, MonitoredVariable::kPendingRequests, 2.0);
  EXPECT_TRUE(c.evaluate().has_value());
}

TEST(Controller, IngestReportsFromMirrors) {
  AdaptationController c(switch_policy(10, 5));
  MonitorReport report;
  report.site = 4;
  report.samples = {{MonitoredVariable::kPendingRequests, 50.0}};
  c.ingest(report);
  EXPECT_TRUE(c.evaluate().has_value());
}

TEST(Controller, AdjustParamsMode) {
  AdaptationPolicy p;
  p.thresholds = {{MonitoredVariable::kReadyQueueLength, 100, 50}};
  p.mode = PolicyMode::kAdjustParams;
  p.normal_spec = rules::selective_mirroring(10, 50);
  p.adjustments = {{ParamId::kOverwriteMax, 100}};
  AdaptationController c(p);
  c.observe(0, MonitoredVariable::kReadyQueueLength, 200.0);
  auto d = c.evaluate();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->spec.overwrite_max, 20u);
  EXPECT_EQ(c.current_spec().overwrite_max, 20u);
}

TEST(Controller, MultipleThresholdsAnyEngages) {
  AdaptationPolicy p = switch_policy(10, 5);
  p.thresholds.push_back({MonitoredVariable::kReadyQueueLength, 100, 50});
  AdaptationController c(p);
  c.observe(1, MonitoredVariable::kReadyQueueLength, 150.0);
  EXPECT_TRUE(c.evaluate().has_value());
}

TEST(Controller, ExcludedSitesDoNotDriveAdaptation) {
  // Failure-detection hook: a suspect/dead mirror's queues look long
  // precisely because it stopped making progress — its stale monitor
  // values must not engage the cluster-wide regime.
  AdaptationController c(switch_policy(10, 5));
  c.observe(1, MonitoredVariable::kPendingRequests, 50.0);
  c.observe(2, MonitoredVariable::kPendingRequests, 2.0);
  c.set_site_excluded(1, true);
  EXPECT_TRUE(c.site_excluded(1));
  EXPECT_DOUBLE_EQ(c.max_value(MonitoredVariable::kPendingRequests), 2.0);
  EXPECT_FALSE(c.evaluate().has_value());
  EXPECT_FALSE(c.engaged());
  // Re-inclusion (the site rejoined healthy) restores its vote.
  c.set_site_excluded(1, false);
  EXPECT_FALSE(c.site_excluded(1));
  EXPECT_DOUBLE_EQ(c.max_value(MonitoredVariable::kPendingRequests), 50.0);
  EXPECT_TRUE(c.evaluate().has_value());
  EXPECT_TRUE(c.engaged());
}

TEST(Applier, OutOfOrderArrivalKeepsNewestEpoch) {
  // Directives ride on checkpoint messages, which can be reordered across
  // rounds: a mirror seeing epoch 3 first must ignore the late epoch 2.
  DirectiveApplier applier;
  AdaptationDirective d2{2, false, rules::fig9_function_a()};
  AdaptationDirective d3{3, true, rules::fig9_function_b()};
  ASSERT_TRUE(applier.apply(d3).has_value());
  EXPECT_FALSE(applier.apply(d2).has_value());  // arrived late, stale
  EXPECT_EQ(applier.last_epoch(), 3u);
  EXPECT_EQ(applier.applied_count(), 1u);
}

TEST(Applier, EpochGapsAreForwardJumpsNotErrors) {
  // A mirror that missed rounds (e.g. dropped control messages) catches up
  // on the next directive it does see; epochs need not be contiguous.
  DirectiveApplier applier;
  AdaptationDirective d1{1, true, rules::fig9_function_b()};
  AdaptationDirective d5{5, false, rules::fig9_function_a()};
  ASSERT_TRUE(applier.apply(d1).has_value());
  const auto spec = applier.apply(d5);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(*spec, rules::fig9_function_a());
  EXPECT_EQ(applier.last_epoch(), 5u);
  EXPECT_EQ(applier.applied_count(), 2u);
}

TEST(Applier, AppliesInEpochOrderOnce) {
  DirectiveApplier applier;
  AdaptationDirective d1{1, true, rules::fig9_function_b()};
  AdaptationDirective d2{2, false, rules::fig9_function_a()};
  EXPECT_TRUE(applier.apply(d1).has_value());
  EXPECT_FALSE(applier.apply(d1).has_value());  // duplicate
  EXPECT_TRUE(applier.apply(d2).has_value());
  EXPECT_FALSE(applier.apply(d1).has_value());  // stale
  EXPECT_EQ(applier.last_epoch(), 2u);
  EXPECT_EQ(applier.applied_count(), 2u);
}

}  // namespace
}  // namespace admire::adapt
