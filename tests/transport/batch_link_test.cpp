// Framing equivalence and zero-copy semantics of the batched send/receive
// paths, over both link implementations: a batch must be indistinguishable
// on the wire from the same messages sent one by one.
#include <gtest/gtest.h>

#include <thread>

#include "obs/registry.h"
#include "transport/link.h"
#include "transport/tcp.h"

namespace admire::transport {
namespace {

Bytes patterned(std::size_t size, int salt) {
  Bytes out(size);
  for (std::size_t i = 0; i < size; ++i) {
    out[i] = static_cast<std::byte>(static_cast<int>(i) * 13 + salt);
  }
  return out;
}

std::vector<Bytes> varied_messages() {
  std::vector<Bytes> out;
  for (int i = 0; i < 17; ++i) {
    out.push_back(patterned(1 + (i * 97) % 700, i));
  }
  return out;
}

struct LinkPair {
  std::shared_ptr<MessageLink> sender;
  std::shared_ptr<MessageLink> receiver;
  std::unique_ptr<TcpListener> listener;  // keeps TCP pairs alive
};

LinkPair make_tcp_pair() {
  auto listener_res = TcpListener::bind(0);
  EXPECT_TRUE(listener_res.is_ok());
  LinkPair pair;
  pair.listener = std::move(listener_res).value();
  std::thread accepter([&] {
    auto server = pair.listener->accept();
    ASSERT_TRUE(server.is_ok());
    pair.receiver = std::move(server).value();
  });
  auto client = tcp_connect("127.0.0.1", pair.listener->port());
  accepter.join();
  EXPECT_TRUE(client.is_ok());
  pair.sender = std::move(client).value();
  return pair;
}

LinkPair make_inproc_pair(std::size_t capacity = 1024) {
  auto [a, b] = make_inprocess_link_pair(capacity);
  return LinkPair{a, b, nullptr};
}

void expect_receives_exactly(MessageLink& receiver,
                             const std::vector<Bytes>& expected) {
  for (const Bytes& want : expected) {
    auto got = receiver.receive();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, want);
  }
}

class BatchLinkTest : public ::testing::TestWithParam<bool> {
 protected:
  LinkPair make_pair() { return GetParam() ? make_tcp_pair() : make_inproc_pair(); }
};

INSTANTIATE_TEST_SUITE_P(BothLinks, BatchLinkTest, ::testing::Values(false, true),
                         [](const auto& suite_info) {
                           return suite_info.param ? "Tcp" : "InProcess";
                         });

TEST_P(BatchLinkTest, SendBatchMatchesSingleSends) {
  auto pair = make_pair();
  const std::vector<Bytes> messages = varied_messages();
  std::vector<ByteSpan> spans;
  for (const Bytes& m : messages) spans.emplace_back(m.data(), m.size());
  std::thread sender([&] {
    ASSERT_TRUE(pair.sender
                    ->send_batch(std::span<const ByteSpan>(spans.data(),
                                                           spans.size()))
                    .is_ok());
  });
  expect_receives_exactly(*pair.receiver, messages);
  sender.join();
}

TEST_P(BatchLinkTest, SendBatchOwnedMatchesSingleSends) {
  auto pair = make_pair();
  const std::vector<Bytes> messages = varied_messages();
  std::thread sender([&] {
    std::vector<Bytes> copy = messages;
    ASSERT_TRUE(pair.sender->send_batch_owned(std::move(copy)).is_ok());
  });
  expect_receives_exactly(*pair.receiver, messages);
  sender.join();
}

TEST_P(BatchLinkTest, SendBatchSharedMatchesSingleSends) {
  auto pair = make_pair();
  const std::vector<Bytes> messages = varied_messages();
  std::thread sender([&] {
    std::vector<SharedBytes> shared;
    for (const Bytes& m : messages) {
      shared.push_back(std::make_shared<const Bytes>(m));
    }
    ASSERT_TRUE(pair.sender
                    ->send_batch_shared(std::span<const SharedBytes>(
                        shared.data(), shared.size()))
                    .is_ok());
  });
  expect_receives_exactly(*pair.receiver, messages);
  sender.join();
}

TEST_P(BatchLinkTest, EmptyBatchIsANoop) {
  auto pair = make_pair();
  EXPECT_TRUE(pair.sender->send_batch({}).is_ok());
  EXPECT_TRUE(pair.sender->send_batch_owned({}).is_ok());
  EXPECT_TRUE(pair.sender->send_batch_shared({}).is_ok());
  ASSERT_TRUE(pair.sender->send(to_bytes("after")).is_ok());
  auto got = pair.receiver->receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, to_bytes("after"));
}

TEST_P(BatchLinkTest, ReceiveBatchDrainsWhatIsAvailable) {
  auto pair = make_pair();
  std::vector<Bytes> messages;
  for (int i = 0; i < 10; ++i) messages.push_back(patterned(64, i));
  std::vector<ByteSpan> spans;
  for (const Bytes& m : messages) spans.emplace_back(m.data(), m.size());
  ASSERT_TRUE(pair.sender
                  ->send_batch(std::span<const ByteSpan>(spans.data(),
                                                         spans.size()))
                  .is_ok());
  std::size_t seen = 0;
  while (seen < messages.size()) {
    auto batch = pair.receiver->receive_batch(4);
    ASSERT_FALSE(batch.empty());
    ASSERT_LE(batch.size(), 4u);
    for (const Bytes& got : batch) {
      EXPECT_EQ(got, messages[seen]);
      ++seen;
    }
  }
}

TEST_P(BatchLinkTest, ReceiveBatchEmptyMeansClosedAndDrained) {
  auto pair = make_pair();
  ASSERT_TRUE(pair.sender->send(to_bytes("last")).is_ok());
  pair.sender->close();
  // The queued message must still come out before the closed signal.
  std::vector<Bytes> drained;
  while (true) {
    auto batch = pair.receiver->receive_batch(16);
    if (batch.empty()) break;
    for (Bytes& b : batch) drained.push_back(std::move(b));
  }
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0], to_bytes("last"));
}

TEST_P(BatchLinkTest, ReceiveBatchSharedRoundTrips) {
  auto pair = make_pair();
  const std::vector<Bytes> messages = varied_messages();
  std::thread sender([&] {
    std::vector<SharedBytes> shared;
    for (const Bytes& m : messages) {
      shared.push_back(std::make_shared<const Bytes>(m));
    }
    ASSERT_TRUE(pair.sender
                    ->send_batch_shared(std::span<const SharedBytes>(
                        shared.data(), shared.size()))
                    .is_ok());
  });
  std::size_t seen = 0;
  while (seen < messages.size()) {
    auto batch = pair.receiver->receive_batch_shared(1024);
    ASSERT_FALSE(batch.empty());
    for (const SharedBytes& got : batch) {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, messages[seen]);
      ++seen;
    }
  }
  sender.join();
}

TEST(InProcessBatchLink, SharedSendIsZeroCopyThroughTheQueue) {
  // The receiver must get the sender's buffer itself, not a copy: that is
  // the mechanism that makes M-mirror fan-out cost M refcounts per event.
  auto pair = make_inproc_pair();
  auto message = std::make_shared<const Bytes>(patterned(2048, 3));
  const std::byte* sent_data = message->data();
  std::vector<SharedBytes> batch{message};
  ASSERT_TRUE(pair.sender
                  ->send_batch_shared(
                      std::span<const SharedBytes>(batch.data(), batch.size()))
                  .is_ok());
  auto got = pair.receiver->receive_batch_shared(4);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0]->data(), sent_data);  // same buffer, no copy
  EXPECT_EQ(got[0].get(), message.get());
}

TEST(InProcessBatchLink, BatchLargerThanCapacityCompletes) {
  auto pair = make_inproc_pair(/*capacity=*/4);
  std::vector<Bytes> messages;
  for (int i = 0; i < 64; ++i) messages.push_back(patterned(32, i));
  std::vector<ByteSpan> spans;
  for (const Bytes& m : messages) spans.emplace_back(m.data(), m.size());
  std::thread sender([&] {
    ASSERT_TRUE(pair.sender
                    ->send_batch(std::span<const ByteSpan>(spans.data(),
                                                           spans.size()))
                    .is_ok());
  });
  expect_receives_exactly(*pair.receiver, messages);
  sender.join();
}

TEST(InProcessBatchLink, BatchMetricsRecorded) {
  auto pair = make_inproc_pair();
  obs::Registry registry;
  pair.sender->instrument(registry, "bt");
  std::vector<Bytes> messages;
  for (int i = 0; i < 5; ++i) messages.push_back(patterned(100, i));
  std::vector<ByteSpan> spans;
  for (const Bytes& m : messages) spans.emplace_back(m.data(), m.size());
  ASSERT_TRUE(pair.sender
                  ->send_batch(std::span<const ByteSpan>(spans.data(),
                                                         spans.size()))
                  .is_ok());
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or("transport.link.bt.msgs_out_total"), 5u);
  EXPECT_EQ(snap.counter_or("transport.link.bt.bytes_out_total"), 500u);
  const auto* hist = snap.histogram("transport.link.bt.batch_size");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1u);  // one batch observation of size 5
  EXPECT_DOUBLE_EQ(hist->sum, 5.0);
}

TEST(TcpBatchLink, WritevCallsCountedAndChunked) {
  auto pair = make_tcp_pair();
  obs::Registry registry;
  pair.sender->instrument(registry, "wv");
  // 200 messages exceeds the 128-messages-per-sendmsg chunk, so the batch
  // must take at least two vectored writes — but far fewer than 200.
  std::vector<Bytes> messages;
  for (int i = 0; i < 200; ++i) messages.push_back(patterned(48, i));
  std::vector<ByteSpan> spans;
  for (const Bytes& m : messages) spans.emplace_back(m.data(), m.size());
  std::thread sender([&] {
    ASSERT_TRUE(pair.sender
                    ->send_batch(std::span<const ByteSpan>(spans.data(),
                                                           spans.size()))
                    .is_ok());
  });
  expect_receives_exactly(*pair.receiver, messages);
  sender.join();
  const auto snap = registry.snapshot();
  const std::uint64_t calls = snap.counter_or("transport.link.wv.writev_calls_total");
  EXPECT_GE(calls, 2u);
  EXPECT_LE(calls, 16u);
  const auto* hist = snap.histogram("transport.link.wv.batch_size");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1u);
  EXPECT_DOUBLE_EQ(hist->sum, 200.0);
}

}  // namespace
}  // namespace admire::transport
