#include <gtest/gtest.h>

#include <thread>

#include "transport/tcp.h"

namespace admire::transport {
namespace {

struct TcpPair {
  std::unique_ptr<TcpListener> listener;
  std::shared_ptr<MessageLink> server;
  std::shared_ptr<MessageLink> client;
};

TcpPair make_pair_or_die() {
  auto listener_res = TcpListener::bind(0);
  EXPECT_TRUE(listener_res.is_ok()) << listener_res.status().to_string();
  TcpPair pair;
  pair.listener = std::move(listener_res).value();
  std::thread accepter([&] {
    auto server = pair.listener->accept();
    ASSERT_TRUE(server.is_ok());
    pair.server = std::move(server).value();
  });
  auto client = tcp_connect("127.0.0.1", pair.listener->port());
  accepter.join();
  EXPECT_TRUE(client.is_ok()) << client.status().to_string();
  pair.client = std::move(client).value();
  return pair;
}

TEST(Tcp, BindEphemeralPortIsNonZero) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  EXPECT_GT(listener.value()->port(), 0);
}

TEST(Tcp, RoundTrip) {
  auto pair = make_pair_or_die();
  ASSERT_TRUE(pair.client->send(to_bytes("hello server")).is_ok());
  auto got = pair.server->receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, to_bytes("hello server"));
  ASSERT_TRUE(pair.server->send(to_bytes("hello client")).is_ok());
  got = pair.client->receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, to_bytes("hello client"));
}

TEST(Tcp, ManyMessagesPreserveOrderAndFraming) {
  auto pair = make_pair_or_die();
  constexpr int kN = 500;
  std::thread sender([&] {
    for (int i = 0; i < kN; ++i) {
      Bytes msg(1 + (i % 300));
      msg[0] = static_cast<std::byte>(i % 256);
      ASSERT_TRUE(pair.client->send(std::move(msg)).is_ok());
    }
  });
  for (int i = 0; i < kN; ++i) {
    auto got = pair.server->receive();
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(got->size(), static_cast<std::size_t>(1 + (i % 300)));
    EXPECT_EQ(static_cast<int>((*got)[0]), i % 256);
  }
  sender.join();
}

TEST(Tcp, LargeMessage) {
  auto pair = make_pair_or_die();
  Bytes big(512 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::byte>(i * 7);
  }
  std::thread sender([&] { ASSERT_TRUE(pair.client->send(big).is_ok()); });
  auto got = pair.server->receive();
  sender.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, big);
}

TEST(Tcp, PeerCloseEndsReceive) {
  auto pair = make_pair_or_die();
  pair.client->close();
  EXPECT_FALSE(pair.server->receive().has_value());
}

TEST(Tcp, ReceiveForTimesOut) {
  auto pair = make_pair_or_die();
  EXPECT_FALSE(
      pair.server->receive_for(std::chrono::milliseconds(30)).has_value());
}

TEST(Tcp, ConnectToClosedPortFails) {
  // Bind then immediately close to get a (very likely) dead port.
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  const auto port = listener.value()->port();
  listener.value()->close();
  auto res = tcp_connect("127.0.0.1", port, std::chrono::milliseconds(100));
  EXPECT_FALSE(res.is_ok());
}

TEST(Tcp, ListenerCloseUnblocksAccept) {
  auto listener_res = TcpListener::bind(0);
  ASSERT_TRUE(listener_res.is_ok());
  auto& listener = *listener_res.value();
  std::thread t([&] {
    auto res = listener.accept();
    EXPECT_FALSE(res.is_ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  listener.close();
  t.join();
}

}  // namespace
}  // namespace admire::transport
