#include <gtest/gtest.h>

#include <thread>

#include "transport/link.h"

namespace admire::transport {
namespace {

TEST(InProcessLink, RoundTripBothDirections) {
  auto [a, b] = make_inprocess_link_pair();
  ASSERT_TRUE(a->send(to_bytes("ping")).is_ok());
  auto got = b->receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, to_bytes("ping"));
  ASSERT_TRUE(b->send(to_bytes("pong")).is_ok());
  got = a->receive();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, to_bytes("pong"));
}

TEST(InProcessLink, FifoPerDirection) {
  auto [a, b] = make_inprocess_link_pair();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(a->send(Bytes{static_cast<std::byte>(i)}).is_ok());
  }
  for (int i = 0; i < 100; ++i) {
    auto got = b->receive();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(static_cast<int>((*got)[0]), i);
  }
}

TEST(InProcessLink, CloseUnblocksReceiver) {
  auto [a, b] = make_inprocess_link_pair();
  std::thread t([&b = b] { EXPECT_FALSE(b->receive().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  a->close();
  t.join();
  EXPECT_TRUE(a->is_closed());
  EXPECT_EQ(a->send(to_bytes("x")).code(), StatusCode::kClosed);
}

TEST(InProcessLink, ReceiveForTimesOut) {
  auto [a, b] = make_inprocess_link_pair();
  EXPECT_FALSE(b->receive_for(std::chrono::milliseconds(30)).has_value());
  (void)a;
}

TEST(InProcessLink, PendingCount) {
  auto [a, b] = make_inprocess_link_pair();
  EXPECT_EQ(b->pending(), 0u);
  ASSERT_TRUE(a->send(to_bytes("1")).is_ok());
  ASSERT_TRUE(a->send(to_bytes("2")).is_ok());
  EXPECT_EQ(b->pending(), 2u);
  (void)b->receive();
  EXPECT_EQ(b->pending(), 1u);
}

TEST(InProcessLink, BackpressureAtCapacity) {
  auto [a, b] = make_inprocess_link_pair(/*capacity=*/2);
  ASSERT_TRUE(a->send(to_bytes("1")).is_ok());
  ASSERT_TRUE(a->send(to_bytes("2")).is_ok());
  std::atomic<bool> third_sent{false};
  std::thread t([&a = a, &third_sent] {
    ASSERT_TRUE(a->send(to_bytes("3")).is_ok());
    third_sent.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(third_sent.load());  // blocked on full queue
  (void)b->receive();
  t.join();
  EXPECT_TRUE(third_sent.load());
}

TEST(InProcessLink, LatencyShapingDelaysDelivery) {
  LinkShaping shaping;
  shaping.latency = 50 * kMilli;
  auto [a, b] = make_inprocess_link_pair(64, shaping);
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(a->send(to_bytes("delayed")).is_ok());
  auto got = b->receive();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(got.has_value());
  EXPECT_GE(elapsed, std::chrono::milliseconds(45));
}

TEST(InProcessLink, BandwidthShapingSerializes) {
  LinkShaping shaping;
  shaping.bytes_per_second = 1e6;  // 1 MB/s
  auto [a, b] = make_inprocess_link_pair(64, shaping);
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(a->send(Bytes(50'000)).is_ok());  // 50 ms of transmit time
  auto got = b->receive();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 50'000u);
  EXPECT_GE(elapsed, std::chrono::milliseconds(40));
}

}  // namespace
}  // namespace admire::transport
