// Concurrency stress for the chunked donor path (DESIGN.md §17): a new
// mirror streams bounded state chunks out of a live donor while producer
// threads keep ingesting and a reader thread hammers request_snapshot.
// The donor's fold lock is only held per capture and membership_mu_ only
// around the join bookends, so nothing here may deadlock or diverge.
// Suite names contain "Concurrency" so the ADMIRE_TSAN CI job picks them
// up; the CMake target labels them `slow`.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "workload/scenario.h"

namespace admire {
namespace {

workload::Trace stress_trace(std::uint64_t events, std::uint32_t flights) {
  workload::ScenarioConfig scenario;
  scenario.faa_events = events;
  scenario.num_flights = flights;
  scenario.event_padding = 64;
  return workload::make_ois_trace(scenario);
}

TEST(RecoveryConcurrency, ChunkedJoinUnderConcurrentPublishAndRequests) {
  cluster::ClusterConfig config;
  config.num_mirrors = 2;
  config.params.function = rules::simple_mirroring();
  cluster::Cluster server(config);
  server.start();

  const auto trace = stress_trace(3000, 48);
  const std::size_t half = trace.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(server.ingest(trace.items[i].ev).is_ok());
  }
  server.drain();

  std::atomic<bool> stop_requests{false};
  std::atomic<std::size_t> served{0};
  std::thread reader([&] {
    std::uint64_t id = 9'000'000;
    while (!stop_requests.load()) {
      if (server.request_snapshot(id++).is_ok()) served.fetch_add(1);
    }
  });
  std::thread publisher([&] {
    for (std::size_t i = half; i < trace.size(); ++i) {
      ASSERT_TRUE(server.ingest(trace.items[i].ev).is_ok());
    }
  });

  // Two chunked joins back to back while both side threads run: the
  // second exercises a join whose donor membership changed mid-run.
  cluster::Cluster::JoinOptions options;
  options.donor = 0;
  options.chunk_records = 8;
  options.chunk_interval = std::chrono::microseconds(100);
  std::atomic<std::size_t> chunks{0};
  options.on_chunk = [&](std::size_t) { chunks.fetch_add(1); };
  auto first = server.join_new_mirror(options);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  options.donor = 1;  // bootstrap the second joiner from a mirror
  auto second = server.join_new_mirror(options);
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();

  publisher.join();
  stop_requests.store(true);
  reader.join();
  server.drain();

  EXPECT_GT(chunks.load(), 2u);
  EXPECT_GT(served.load(), 0u);
  const auto want = server.central().main_unit().state().fingerprint();
  EXPECT_EQ(server.mirror(first.value()).main_unit().state().fingerprint(),
            want);
  EXPECT_EQ(server.mirror(second.value()).main_unit().state().fingerprint(),
            want);
  server.stop();
}

TEST(RecoveryConcurrency, RepeatedChunkedFailAndReplaceStaysConsistent) {
  // Churn loop: fail a mirror and chunk-bootstrap its replacement while
  // ingest never pauses. Every survivor must agree with central at the end.
  cluster::ClusterConfig config;
  config.num_mirrors = 2;
  config.params.function = rules::simple_mirroring();
  cluster::Cluster server(config);
  server.start();

  const auto trace = stress_trace(4000, 32);
  std::atomic<std::size_t> fed{0};
  std::thread publisher([&] {
    for (const auto& item : trace.items) {
      ASSERT_TRUE(server.ingest(item.ev).is_ok());
      fed.fetch_add(1);
    }
  });

  cluster::Cluster::JoinOptions options;
  options.chunk_records = 16;
  std::vector<std::size_t> alive{0, 1};
  for (int round = 0; round < 3; ++round) {
    const std::size_t victim = alive[round % alive.size()];
    server.fail_mirror(victim);
    options.donor = 0;  // central always survives
    auto joined = server.join_new_mirror(options);
    ASSERT_TRUE(joined.is_ok()) << joined.status().to_string();
    alive[round % alive.size()] = joined.value();
  }

  publisher.join();
  server.drain();
  const auto want = server.central().main_unit().state().fingerprint();
  for (const std::size_t idx : alive) {
    EXPECT_EQ(server.mirror(idx).main_unit().state().fingerprint(), want);
  }
  server.stop();
}

}  // namespace
}  // namespace admire
