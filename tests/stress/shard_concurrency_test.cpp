// Concurrency stress for the sharded receive path: multiple threads call
// on_incoming while a drainer runs try_send_batch, exactly the contract
// the ThreadedCentralSite rx pool relies on. Suite names contain
// "Concurrency" so the ADMIRE_TSAN CI job picks them up; the CMake target
// labels them `slow`.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "mirror/sharded_pipeline_core.h"
#include "workload/scenario.h"

namespace admire {
namespace {

event::Event faa(FlightKey flight, StreamId stream, SeqNo seq) {
  event::FaaPosition pos;
  pos.flight = flight;
  return event::make_faa_position(stream, seq, pos, 16);
}

rules::MirroringParams params_of(rules::MirrorFunctionSpec spec) {
  rules::MirroringParams p;
  p.function = std::move(spec);
  return p;
}

constexpr std::size_t kThreads = 4;
constexpr std::size_t kFlights = 64;
constexpr SeqNo kPerThread = 8000;

/// Partition flights over producer threads the same way the rx pool routes
/// inboxes: one flight -> one thread, so each flight's events are offered
/// in order even though threads interleave freely.
bool owns(std::size_t thread_idx, FlightKey key) {
  return mirror::ShardedPipelineCore::shard_of_key(key, kThreads) ==
         thread_idx;
}

TEST(ShardConcurrency, ParallelIngestPreservesPerFlightOrder) {
  mirror::ShardedPipelineCore core(params_of(rules::simple_mirroring()),
                                   kThreads, 4);
  std::atomic<bool> done{false};
  std::mutex sent_mu;
  std::map<FlightKey, std::vector<SeqNo>> sent_order;
  std::thread drainer([&] {
    const auto collect = [&](std::vector<event::Event> evs) {
      std::lock_guard lock(sent_mu);
      for (const auto& ev : evs) sent_order[ev.key()].push_back(ev.seq());
    };
    while (!done.load() || core.ready_size() > 0) {
      if (auto step = core.try_send_batch(64, 0)) {
        collect(std::move(step->to_send));
      } else {
        std::this_thread::yield();
      }
    }
    collect(core.flush(0).to_send);
  });

  std::vector<std::map<FlightKey, std::vector<SeqNo>>> pushed(kThreads);
  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&core, &pushed, t] {
      SeqNo seq = 0;
      for (SeqNo i = 1; i <= kPerThread; ++i) {
        const auto key = static_cast<FlightKey>(1 + i % kFlights);
        if (!owns(t, key)) continue;
        const auto stream = static_cast<StreamId>(t);
        core.on_incoming(faa(key, stream, ++seq), 0);
        pushed[t][key].push_back(seq);
      }
    });
  }
  for (auto& th : producers) th.join();
  done.store(true);
  drainer.join();

  // Every flight's wire order must equal its ingest order.
  std::map<FlightKey, std::vector<SeqNo>> pushed_order;
  std::uint64_t total = 0;
  for (const auto& per_thread : pushed) {
    for (const auto& [key, seqs] : per_thread) {
      auto& dst = pushed_order[key];
      dst.insert(dst.end(), seqs.begin(), seqs.end());
      total += seqs.size();
    }
  }
  EXPECT_EQ(sent_order, pushed_order);
  EXPECT_EQ(core.counters().received, total);
  EXPECT_EQ(core.counters().sent, total);  // simple mirroring: all accepted
  EXPECT_EQ(core.backup().size(), total);
}

TEST(ShardConcurrency, MergedCountersConserveTotalSeen) {
  mirror::ShardedPipelineCore core(params_of(rules::selective_mirroring(4)),
                                   kThreads, 4);
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> wire_sent{0};
  std::thread drainer([&] {
    while (!done.load() || core.ready_size() > 0) {
      if (auto step = core.try_send_batch(32, 0)) {
        wire_sent.fetch_add(step->to_send.size());
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::vector<std::thread> producers;
  std::atomic<std::uint64_t> offered{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      SeqNo seq = 0;
      for (SeqNo i = 1; i <= kPerThread; ++i) {
        const auto key = static_cast<FlightKey>(1 + i % kFlights);
        if (!owns(t, key)) continue;
        core.on_incoming(faa(key, static_cast<StreamId>(t), ++seq), 0);
        offered.fetch_add(1);
      }
    });
  }
  for (auto& th : producers) th.join();
  done.store(true);
  drainer.join();

  // Conservation: every offered event is accounted for exactly once in the
  // merged per-shard rule counters, and everything accepted was sent.
  const auto rc = core.rule_counters();
  const auto pc = core.counters();
  EXPECT_EQ(rc.total_seen(), offered.load());
  EXPECT_EQ(pc.received, offered.load());
  EXPECT_EQ(pc.enqueued, rc.accepted);
  EXPECT_EQ(pc.sent, pc.enqueued);  // no coalescing configured
  EXPECT_EQ(wire_sent.load(), pc.sent);
  // Per-stream monotone vector timestamp despite cross-shard interleaving.
  const auto vts = core.stamp();
  std::uint64_t stamped = 0;
  for (StreamId s = 0; s < kThreads; ++s) stamped += vts.component(s);
  EXPECT_EQ(stamped, offered.load());
}

TEST(ShardConcurrency, InstallWhileShardedIngestAndDrain) {
  mirror::ShardedPipelineCore core(params_of(rules::simple_mirroring()), 2, 4);
  std::atomic<bool> stop{false};
  std::thread installer([&] {
    bool selective = false;
    while (!stop.load()) {
      core.install(selective ? rules::selective_mirroring(8)
                             : rules::simple_mirroring());
      selective = !selective;
      std::this_thread::yield();
    }
  });
  std::thread drainer([&] {
    while (!stop.load()) {
      if (!core.try_send_batch(16, 0).has_value()) std::this_thread::yield();
    }
  });
  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < 2; ++t) {
    producers.emplace_back([&core, t] {
      SeqNo seq = 0;
      for (SeqNo i = 1; i <= 10000; ++i) {
        const auto key = static_cast<FlightKey>(1 + i % 32);
        if (!owns(t, key) && !owns(t + 2, key)) continue;
        core.on_incoming(faa(key, static_cast<StreamId>(t), ++seq), 0);
      }
    });
  }
  for (auto& th : producers) th.join();
  stop.store(true);
  installer.join();
  drainer.join();
  EXPECT_EQ(core.counters().received, core.rule_counters().total_seen());
}

TEST(ShardConcurrencyCluster, RxPoolEndToEnd) {
  cluster::ClusterConfig config;
  config.num_mirrors = 2;
  config.rx_shards = 4;
  config.rx_threads = 4;
  cluster::Cluster server(config);
  server.start();

  workload::ScenarioConfig scenario;
  scenario.faa_events = 4000;
  scenario.num_flights = 32;
  scenario.event_padding = 64;
  const auto trace = workload::make_ois_trace(scenario);
  // Two feeder threads, flights partitioned between them so each flight's
  // events hit ingest() in trace order.
  std::vector<std::thread> feeders;
  for (std::size_t t = 0; t < 2; ++t) {
    feeders.emplace_back([&, t] {
      for (const auto& item : trace.items) {
        if (mirror::ShardedPipelineCore::shard_of_key(item.ev.key(), 2) != t) {
          continue;
        }
        ASSERT_TRUE(server.ingest(item.ev).is_ok());
      }
    });
  }
  for (auto& th : feeders) th.join();
  server.drain();
  server.checkpoint_and_wait();

  EXPECT_EQ(server.central().processed_by_ede(), trace.size());
  EXPECT_EQ(server.central().core().counters().received, trace.size());
  // Both mirrors fold the same mirrored stream -> identical state.
  const auto fps = server.state_fingerprints();
  EXPECT_EQ(fps[1], fps[2]);
  server.stop();
}

}  // namespace
}  // namespace admire
