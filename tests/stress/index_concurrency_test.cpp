// Multi-threaded stress over the adaptive index: reader threads hammer
// cracking lookups while writers insert flights (update hooks) and
// periodically replace the whole table (reset), the serving-plane shape
// where mirror update application races query builds. Suite name contains
// "Concurrency" so the ADMIRE_TSAN CI job includes it.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "index/adaptive_index.h"
#include "serve/request_handler.h"

namespace admire::index {
namespace {

void apply_update(ede::OperationalState& state, FlightKey key,
                  std::uint32_t salt) {
  state.update(key, [salt](ede::FlightRecord& rec) {
    rec.status = event::FlightStatus::kEnRoute;
    rec.passengers_boarded = salt;
  });
}

TEST(IndexConcurrency, CandidatesStaySoundUnderChurn) {
  ede::OperationalState state;
  for (std::uint32_t k = 1; k <= 256; ++k) apply_update(state, k, k);
  AdaptiveIndex index(&state);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<bool> sound{true};

  // Readers: every candidate key must derive to the queried value — the
  // membership invariant holds on every interleaving, because attributes
  // derive from the immutable key.
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(0x1DE7 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto shape = static_cast<serve::QueryShape>(
            1 + rng.next_below(3));  // airport / airline / region
        const std::uint32_t domain =
            shape == serve::QueryShape::kAirport  ? serve::kNumAirports
            : shape == serve::QueryShape::kAirline ? serve::kNumAirlines
                                                   : serve::kNumRegions;
        const auto value = static_cast<std::uint32_t>(rng.next_below(domain));
        const auto cand = index.candidates(shape, value);
        if (!cand) continue;
        for (const FlightKey key : cand->keys) {
          if (!serve::query_matches(shape, value, key)) {
            sound.store(false, std::memory_order_relaxed);
          }
        }
        lookups.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: fresh inserts + hooks, with occasional whole-table replaces.
  std::thread writer([&] {
    Rng rng(0xF00D);
    FlightKey next = 257;
    for (int i = 0; i < 20'000; ++i) {
      if (rng.next_bool(0.002)) {
        state.clear();
        for (std::uint32_t k = 1; k <= 64; ++k) apply_update(state, k, k);
        index.reset();
        continue;
      }
      const FlightKey key = rng.next_bool(0.5)
                                ? next++
                                : static_cast<FlightKey>(
                                      1 + rng.next_below(next - 1));
      apply_update(state, key, static_cast<std::uint32_t>(i));
      index.note_flight(key);
    }
    stop.store(true, std::memory_order_release);
  });

  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_TRUE(sound.load());
  EXPECT_GT(lookups.load(), 0u);
  EXPECT_GT(index.resets(), 0u);

  // Quiesced: a final lookup agrees exactly with a fresh table scan.
  const auto cand = index.candidates(serve::QueryShape::kAirport, 1);
  ASSERT_TRUE(cand.has_value());
  std::vector<FlightKey> expect;
  for (const auto& rec : state.all_flights()) {
    if (serve::airport_of(rec.flight) == 1) expect.push_back(rec.flight);
  }
  EXPECT_EQ(cand->keys, expect);
}

TEST(IndexConcurrency, HandlerBuildsRaceUpdatesWithoutDivergence) {
  ede::OperationalState state;
  for (std::uint32_t k = 1; k <= 128; ++k) apply_update(state, k, k);
  serve::ServeConfig cfg;
  cfg.cache_enabled = false;  // every request exercises the build path
  serve::RequestHandler handler(&state, cfg);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};

  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(0xC11E47 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        serve::Request req;
        req.id = rng.next_u64();
        req.shape = static_cast<serve::QueryShape>(rng.next_below(5));
        req.key = static_cast<std::uint32_t>(rng.next_below(256));
        const auto out = handler.handle_admitted(req);
        if (out.response.code == serve::ResponseCode::kOk) {
          served.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::thread updater([&] {
    Rng rng(0xBEEF);
    for (int i = 0; i < 15'000; ++i) {
      if (rng.next_bool(0.001)) {
        state.clear();
        for (std::uint32_t k = 1; k <= 32; ++k) apply_update(state, k, k);
        handler.on_state_replaced();
        continue;
      }
      const FlightKey key =
          static_cast<FlightKey>(1 + rng.next_below(192));
      apply_update(state, key, static_cast<std::uint32_t>(i));
      handler.on_state_update(key);
    }
    stop.store(true, std::memory_order_release);
  });

  updater.join();
  for (auto& t : clients) t.join();

  EXPECT_GT(served.load(), 0u);
  EXPECT_GT(handler.builds_indexed(), 0u);
  // Quiesced equivalence: the indexed build answers exactly like a scan
  // oracle over the final table.
  serve::ServeConfig oracle_cfg;
  oracle_cfg.cache_enabled = false;
  oracle_cfg.index_enabled = false;
  serve::RequestHandler oracle(&state, oracle_cfg);
  for (std::uint32_t value = 0; value < serve::kNumAirports; ++value) {
    serve::Request req;
    req.id = value;
    req.shape = serve::QueryShape::kAirport;
    req.key = value;
    const auto a = handler.handle_admitted(req);
    const auto b = oracle.handle_admitted(req);
    ASSERT_NE(a.response.state, nullptr);
    ASSERT_NE(b.response.state, nullptr);
    EXPECT_EQ(*a.response.state, *b.response.state) << "airport " << value;
  }
}

}  // namespace
}  // namespace admire::index
