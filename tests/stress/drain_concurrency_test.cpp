// Concurrency stress for the sharded drain: producer threads ingest while
// D drainer threads each run try_send_batch_shard on their own drain
// shard — the exact contract the ThreadedCentralSite drain pool relies
// on — plus flush() racing active drainers and a cluster-level fail/rejoin
// run with a multi-drainer send path. Suite names contain "Concurrency" so
// the ADMIRE_TSAN CI job picks them up; the CMake target labels them
// `slow`.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "mirror/sharded_pipeline_core.h"
#include "workload/scenario.h"

namespace admire {
namespace {

event::Event faa(FlightKey flight, StreamId stream, SeqNo seq) {
  event::FaaPosition pos;
  pos.flight = flight;
  return event::make_faa_position(stream, seq, pos, 16);
}

rules::MirroringParams params_of(rules::MirrorFunctionSpec spec) {
  rules::MirroringParams p;
  p.function = std::move(spec);
  return p;
}

constexpr std::size_t kProducers = 4;
constexpr std::size_t kRxShards = 8;
constexpr std::size_t kDrains = 4;
constexpr std::size_t kFlights = 64;
constexpr SeqNo kPerThread = 8000;

bool owns(std::size_t thread_idx, FlightKey key) {
  return mirror::ShardedPipelineCore::shard_of_key(key, kProducers) ==
         thread_idx;
}

TEST(DrainConcurrency, ParallelDrainersPreservePerFlightOrder) {
  mirror::ShardedPipelineCore core(params_of(rules::simple_mirroring()),
                                   kProducers, kRxShards, kDrains);
  ASSERT_EQ(core.num_drain_shards(), kDrains);
  std::atomic<bool> done{false};
  // One collector per drain shard: a flight is drained by exactly one
  // drainer, so per-drainer vectors capture per-flight order without any
  // shared lock between drainers.
  std::vector<std::map<FlightKey, std::vector<SeqNo>>> drained(kDrains);
  std::vector<std::thread> drainers;
  for (std::size_t d = 0; d < kDrains; ++d) {
    drainers.emplace_back([&core, &done, &drained, d] {
      auto& mine = drained[d];
      while (!done.load() || core.ready_size() > 0) {
        if (auto step = core.try_send_batch_shard(d, 64, 0)) {
          for (const auto& ev : step->to_send) {
            mine[ev.key()].push_back(ev.seq());
          }
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<std::map<FlightKey, std::vector<SeqNo>>> pushed(kProducers);
  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kProducers; ++t) {
    producers.emplace_back([&core, &pushed, t] {
      SeqNo seq = 0;
      for (SeqNo i = 1; i <= kPerThread; ++i) {
        const auto key = static_cast<FlightKey>(1 + i % kFlights);
        if (!owns(t, key)) continue;
        core.on_incoming(faa(key, static_cast<StreamId>(t), ++seq), 0);
        pushed[t][key].push_back(seq);
      }
    });
  }
  for (auto& th : producers) th.join();
  done.store(true);
  for (auto& th : drainers) th.join();
  for (const auto& ev : core.flush(0).to_send) {
    drained[0][ev.key()].push_back(ev.seq());  // quiesced: shard is moot
  }

  std::map<FlightKey, std::vector<SeqNo>> pushed_order;
  std::uint64_t total = 0;
  for (const auto& per_thread : pushed) {
    for (const auto& [key, seqs] : per_thread) {
      auto& dst = pushed_order[key];
      dst.insert(dst.end(), seqs.begin(), seqs.end());
      total += seqs.size();
    }
  }
  std::map<FlightKey, std::vector<SeqNo>> sent_order;
  std::uint64_t per_drain_sum = 0;
  for (std::size_t d = 0; d < kDrains; ++d) {
    per_drain_sum += core.drain_shard_drained(d);
    for (auto& [key, seqs] : drained[d]) {
      auto& dst = sent_order[key];
      dst.insert(dst.end(), seqs.begin(), seqs.end());
    }
  }
  EXPECT_EQ(sent_order, pushed_order);
  EXPECT_EQ(core.counters().received, total);
  EXPECT_EQ(core.counters().sent, total);  // simple mirroring: all accepted
  EXPECT_EQ(per_drain_sum, total);
  EXPECT_EQ(core.backup().size(), total);
}

TEST(DrainConcurrency, FlushRacingDrainersReleasesExactlyOnce) {
  // Coalescing on: the dangerous window is an event sitting in a shard
  // coalescer while flush sweeps — a racing drainer must never re-release
  // it, and flush must never emit what a drainer already released.
  auto spec = rules::simple_mirroring();
  spec.coalesce_enabled = true;
  spec.coalesce_max = 8;
  mirror::ShardedPipelineCore core(params_of(spec), kProducers, kRxShards,
                                   kDrains);
  std::atomic<bool> done{false};
  std::mutex wire_mu;
  std::map<FlightKey, std::vector<SeqNo>> wire_order;
  std::atomic<std::uint64_t> wire_raw{0};  // Σ coalesced over wire events
  const auto collect = [&](const std::vector<event::Event>& evs) {
    std::lock_guard lock(wire_mu);
    for (const auto& ev : evs) {
      wire_order[ev.key()].push_back(ev.seq());
      wire_raw.fetch_add(ev.header().coalesced);
    }
  };
  std::vector<std::thread> drainers;
  for (std::size_t d = 0; d < kDrains; ++d) {
    drainers.emplace_back([&, d] {
      while (!done.load() || core.ready_size() > 0) {
        if (auto step = core.try_send_batch_shard(d, 32, 0)) {
          collect(step->to_send);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  std::atomic<std::uint64_t> offered{0};
  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      SeqNo seq = 0;
      for (SeqNo i = 1; i <= kPerThread; ++i) {
        const auto key = static_cast<FlightKey>(1 + i % kFlights);
        if (!owns(t, key)) continue;
        core.on_incoming(faa(key, static_cast<StreamId>(t), ++seq), 0);
        offered.fetch_add(1);
        // Flushes race the drainers mid-stream from one producer.
        if (t == 0 && i % 1000 == 0) collect(core.flush(0).to_send);
      }
    });
  }
  for (auto& th : producers) th.join();
  done.store(true);
  for (auto& th : drainers) th.join();
  // Final flushes: the first may release stragglers, the second must find
  // a quiesced pipeline (idempotence under the same counters).
  collect(core.flush(0).to_send);
  const auto again = core.flush(0);
  EXPECT_TRUE(again.to_send.empty());
  EXPECT_EQ(again.consumed, 0u);

  // Conservation: every ingested event is represented in exactly one wire
  // event (coalesced counts sum back to the raw total), and per-flight seqs
  // are strictly increasing (no duplicate or reordered release).
  EXPECT_EQ(core.counters().enqueued, offered.load());
  EXPECT_EQ(wire_raw.load(), offered.load());
  std::uint64_t wire_events = 0;
  for (const auto& [key, seqs] : wire_order) {
    wire_events += seqs.size();
    for (std::size_t i = 1; i < seqs.size(); ++i) {
      ASSERT_LT(seqs[i - 1], seqs[i]) << "flight " << key;
    }
  }
  EXPECT_EQ(wire_events, core.counters().sent);
  EXPECT_EQ(core.backup().size(), core.counters().sent);
}

TEST(DrainConcurrencyCluster, DrainPoolEndToEndWithFailRejoin) {
  cluster::ClusterConfig config;
  config.num_mirrors = 2;
  config.rx_shards = 8;
  config.rx_threads = 4;
  config.drain_shards = 4;
  cluster::Cluster server(config);
  server.start();

  workload::ScenarioConfig scenario;
  scenario.faa_events = 6000;
  scenario.num_flights = 48;
  scenario.event_padding = 64;
  const auto trace = workload::make_ois_trace(scenario);
  const std::size_t half = trace.items.size() / 2;
  std::vector<std::thread> feeders;
  for (std::size_t t = 0; t < 2; ++t) {
    feeders.emplace_back([&, t] {
      for (std::size_t i = 0; i < half; ++i) {
        const auto& item = trace.items[i];
        if (mirror::ShardedPipelineCore::shard_of_key(item.ev.key(), 2) != t) {
          continue;
        }
        ASSERT_TRUE(server.ingest(item.ev).is_ok());
      }
    });
  }
  for (auto& th : feeders) th.join();

  // Membership churns while the drain pool is still pushing: mirror 1 dies,
  // a replacement bootstraps from the central replica (the donor whose
  // main unit is guaranteed ahead of anything still in a tx outbox).
  server.fail_mirror(0);
  auto joined = server.join_new_mirror(/*donor=*/0);
  ASSERT_TRUE(joined.is_ok()) << joined.status().to_string();

  feeders.clear();
  for (std::size_t t = 0; t < 2; ++t) {
    feeders.emplace_back([&, t] {
      for (std::size_t i = half; i < trace.items.size(); ++i) {
        const auto& item = trace.items[i];
        if (mirror::ShardedPipelineCore::shard_of_key(item.ev.key(), 2) != t) {
          continue;
        }
        ASSERT_TRUE(server.ingest(item.ev).is_ok());
      }
    });
  }
  for (auto& th : feeders) th.join();
  server.drain();
  server.checkpoint_and_wait();

  EXPECT_EQ(server.central().core().counters().received, trace.size());
  // Survivor and replacement converge on the central replica's state.
  const auto fps = server.state_fingerprints();
  ASSERT_EQ(fps.size(), 4u);  // central, dead (frozen), survivor, replacement
  EXPECT_EQ(fps[0], fps[2]) << "survivor diverged";
  EXPECT_EQ(fps[0], fps[3]) << "replacement missed or duplicated events";
  server.stop();
}

}  // namespace
}  // namespace admire
