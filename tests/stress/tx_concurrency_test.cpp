// Concurrency stress for the per-destination transmit stage: one stalled
// destination must not block the healthy fan-out, per-destination delivery
// must preserve per-flight FIFO, and destination membership may churn under
// publish load without losing the conservation invariant. Suite names
// contain "Concurrency" so the ADMIRE_TSAN CI job picks them up; the CMake
// target labels them `slow`.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/tx_stage.h"
#include "obs/registry.h"
#include "workload/scenario.h"

namespace admire::cluster {
namespace {

event::Event faa(FlightKey flight, SeqNo seq) {
  event::FaaPosition pos;
  pos.flight = flight;
  return event::make_faa_position(0, seq, pos, 16);
}

// One destination is wedged solid (its sink blocks on a gate held for the
// whole publish phase) while three stay healthy. With unbounded outboxes
// the publisher never blocks, so every healthy destination receives the
// entire stream — in per-flight FIFO order — while the wedged one has
// delivered at most its first batch. Releasing the gate and stopping then
// flushes the wedged backlog losslessly.
TEST(TxConcurrency, StalledDestinationDoesNotBlockHealthyFanout) {
  TxStage stage(TxStageConfig{});  // unbounded: isolation without shedding
  constexpr std::size_t kHealthy = 3;
  std::vector<std::map<FlightKey, std::vector<SeqNo>>> seen(kHealthy);
  for (std::size_t d = 0; d < kHealthy; ++d) {
    stage.add_destination(
        "healthy" + std::to_string(d),
        [&seen, d](std::span<const event::Event> evs) {
          for (const auto& ev : evs) seen[d][ev.key()].push_back(ev.seq());
        });
  }
  std::mutex gate;
  std::atomic<std::uint64_t> stalled_delivered{0};
  stage.add_destination("stalled", [&](std::span<const event::Event> evs) {
    std::lock_guard wedge(gate);
    stalled_delivered.fetch_add(evs.size());
  });

  constexpr std::size_t kFlights = 8;
  constexpr SeqNo kPerFlight = 400;
  constexpr std::uint64_t kTotal = kFlights * kPerFlight;
  std::map<FlightKey, std::vector<SeqNo>> published;
  {
    std::unique_lock hold(gate);
    stage.start();
    std::vector<event::Event> batch;
    for (SeqNo s = 1; s <= kPerFlight; ++s) {
      batch.clear();
      for (FlightKey f = 1; f <= kFlights; ++f) {
        batch.push_back(faa(f, s));
        published[f].push_back(s);
      }
      stage.publish(batch);
    }
    // Healthy destinations finish the whole stream while the stalled one is
    // still wedged on its first batch (bounded wait, not a sleep).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (std::size_t d = 0; d < kHealthy; ++d) {
      while (stage.sent_to("healthy" + std::to_string(d)) < kTotal &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    for (std::size_t d = 0; d < kHealthy; ++d) {
      EXPECT_EQ(stage.sent_to("healthy" + std::to_string(d)), kTotal);
    }
    EXPECT_LE(stalled_delivered.load(), kFlights);  // at most batch one
  }
  stage.stop();  // flush: the wedged backlog now drains losslessly

  for (std::size_t d = 0; d < kHealthy; ++d) {
    const auto name = "healthy" + std::to_string(d);
    EXPECT_EQ(stage.dropped_from(name), 0u) << name;
    // Per-flight FIFO survives the per-destination hand-off.
    EXPECT_EQ(seen[d], published) << name;
  }
  EXPECT_EQ(stalled_delivered.load(), kTotal);
  EXPECT_EQ(stage.dropped_from("stalled"), 0u);
}

// Destination membership churns (mirror fail/rejoin) while the publisher
// runs full speed. After the dust settles every destination's obs counters
// obey enqueued == sent + dropped — removal discards are counted, never
// silently lost — and the survivor destinations saw a prefix-consistent
// stream (monotone seq per flight).
TEST(TxConcurrency, MembershipChurnUnderLoadConservesEvents) {
  obs::Registry reg;
  TxStage stage(TxStageConfig{.queue_cap = 64,
                              .policy = TxPolicy::kDropOldest,
                              .obs = &reg});
  std::atomic<std::uint64_t> stable_delivered{0};
  stage.add_destination("stable", [&](std::span<const event::Event> evs) {
    stable_delivered.fetch_add(evs.size());
  });
  std::atomic<std::uint64_t> churn_delivered{0};
  const auto churn_sink = [&](std::span<const event::Event> evs) {
    churn_delivered.fetch_add(evs.size());
  };
  stage.start();

  std::atomic<bool> done{false};
  std::thread churner([&] {
    while (!done.load()) {
      stage.add_destination("churn", churn_sink);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      stage.remove_destination("churn");
    }
  });

  constexpr SeqNo kBatches = 2000;
  for (SeqNo s = 1; s <= kBatches; ++s) {
    const auto ev = faa(1, s);
    stage.publish(std::span<const event::Event>(&ev, 1));
  }
  done.store(true);
  churner.join();
  stage.stop();

  // The always-present destination conserves every publish (a descheduled
  // worker may legitimately shed a few under kDropOldest, so assert
  // conservation, not losslessness).
  EXPECT_EQ(stage.sent_to("stable") + stage.dropped_from("stable"), kBatches);
  EXPECT_EQ(stable_delivered.load(), stage.sent_to("stable"));

  // Conservation for the churned destination across all of its lives —
  // the obs counters persist across remove/re-add (sequence continuity).
  const auto enq = reg.counter("tx.churn.enqueued_total").value();
  const auto sent = reg.counter("tx.churn.sent_total").value();
  const auto dropped = reg.counter("tx.churn.dropped_total").value();
  EXPECT_EQ(enq, sent + dropped);
  EXPECT_EQ(sent, churn_delivered.load());
  EXPECT_LE(enq, kBatches);
}

// End-to-end: a cluster ingesting from two feeder threads with the tx
// stage capped and blocking keeps every invariant of the uncapped path —
// nothing dropped, mirrors converge, credit accounting closes.
TEST(TxConcurrencyCluster, BoundedBlockingOutboxesEndToEnd) {
  ClusterConfig config;
  config.num_mirrors = 2;
  config.rx_threads = 2;
  config.params = rules::MirroringParams{.function = rules::simple_mirroring()};
  config.tx_queue_cap = 128;
  config.tx_policy = TxPolicy::kBlock;
  Cluster server(config);
  server.start();

  workload::ScenarioConfig scenario;
  scenario.faa_events = 4000;
  scenario.num_flights = 32;
  scenario.event_padding = 64;
  const auto trace = workload::make_ois_trace(scenario);
  std::vector<std::thread> feeders;
  for (std::size_t t = 0; t < 2; ++t) {
    feeders.emplace_back([&, t] {
      for (const auto& item : trace.items) {
        if (mirror::ShardedPipelineCore::shard_of_key(item.ev.key(), 2) != t) {
          continue;
        }
        ASSERT_TRUE(server.ingest(item.ev).is_ok());
      }
    });
  }
  for (auto& th : feeders) th.join();
  server.drain();

  auto& central = server.central();
  EXPECT_EQ(central.credits_granted(),
            central.credits_consumed() + central.pending_send_credits());
  EXPECT_EQ(central.pending_send_credits(), 0u);
  EXPECT_EQ(central.tx().total_dropped(), 0u);  // kBlock never sheds
  EXPECT_EQ(server.mirror(0).events_received(), trace.size());
  EXPECT_EQ(server.mirror(1).events_received(), trace.size());
  const auto fps = server.state_fingerprints();
  EXPECT_EQ(fps[1], fps[2]);
  server.stop();
}

}  // namespace
}  // namespace admire::cluster
