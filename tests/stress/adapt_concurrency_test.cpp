// Multi-threaded stress over the adaptation plane: DirectiveApplier's
// at-most-once epoch ordering under racing appliers, and the
// AdaptationController's observe/ingest/evaluate/exclude/forget surface
// hammered from many threads. Suite names contain "Concurrency" so the
// ADMIRE_TSAN CI job picks them up.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "adapt/controller.h"
#include "obs/registry.h"

namespace admire::adapt {
namespace {

TEST(AdaptConcurrency, ApplierGrantsEachEpochToAtMostOneThread) {
  // Every thread walks the same directive sequence 1..kEpochs in order —
  // the checkpoint fan-in can deliver the same piggybacked directive to the
  // applier through several paths. Each epoch must be installed by exactly
  // one racer in total, and the applier must end at the final epoch.
  constexpr std::uint64_t kEpochs = 400;
  constexpr int kThreads = 8;

  DirectiveApplier applier;
  std::vector<std::atomic<int>> installs(kEpochs + 1);
  std::atomic<bool> go{false};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load()) {
      }
      for (std::uint64_t epoch = 1; epoch <= kEpochs; ++epoch) {
        AdaptationDirective d;
        d.epoch = epoch;
        d.engaged = epoch % 2 == 1;
        d.spec = d.engaged ? rules::fig9_function_b()
                           : rules::fig9_function_a();
        if (applier.apply(d).has_value()) {
          installs[epoch].fetch_add(1);
        }
      }
    });
  }
  go.store(true);
  for (auto& th : threads) th.join();

  std::uint64_t total_installs = 0;
  for (std::uint64_t epoch = 1; epoch <= kEpochs; ++epoch) {
    EXPECT_LE(installs[epoch].load(), 1) << "epoch " << epoch;
    total_installs += static_cast<std::uint64_t>(installs[epoch].load());
  }
  // The last epoch is always installed: whichever thread reaches it first
  // finds last_epoch < kEpochs.
  EXPECT_EQ(installs[kEpochs].load(), 1);
  EXPECT_EQ(applier.last_epoch(), kEpochs);
  EXPECT_EQ(applier.applied_count(), total_installs);
}

TEST(AdaptConcurrency, ControllerSurvivesObserveEvaluateExcludeForgetRace) {
  // Observers, report ingesters, an exclusion toggler and a forgetter all
  // race the evaluating thread on one instrumented controller. Directive
  // epochs must come out strictly increasing and agree with the transition
  // counter — and TSan must stay quiet across every entry point.
  AdaptationPolicy policy;
  policy.thresholds = {{MonitoredVariable::kPendingRequests, 10, 5},
                       {MonitoredVariable::kReadyQueueLength, 40, 20}};
  policy.mode = PolicyMode::kSwitchFunction;
  policy.normal_spec = rules::fig9_function_a();
  policy.engaged_spec = rules::fig9_function_b();

  obs::Registry registry;
  AdaptationController controller(policy);
  controller.instrument(registry);

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;

  for (SiteId site = 1; site <= 4; ++site) {
    workers.emplace_back([&, site] {
      std::uint64_t i = 0;
      while (!stop.load()) {
        // Sawtooth across the hysteresis band so regimes actually flip.
        controller.observe(site, MonitoredVariable::kPendingRequests,
                           static_cast<double>(i % 20));
        ++i;
      }
    });
  }
  workers.emplace_back([&] {
    MonitorReport report;
    report.site = 5;
    std::uint64_t i = 0;
    while (!stop.load()) {
      report.samples = {
          {MonitoredVariable::kReadyQueueLength, static_cast<double>(i % 60)},
          {MonitoredVariable::kShedRate, static_cast<double>(i % 3)}};
      controller.ingest(report);
      ++i;
    }
  });
  workers.emplace_back([&] {
    bool exclude = true;
    while (!stop.load()) {
      controller.set_site_excluded(2, exclude);
      (void)controller.site_excluded(2);
      (void)controller.max_value(MonitoredVariable::kPendingRequests);
      exclude = !exclude;
    }
  });
  workers.emplace_back([&] {
    while (!stop.load()) {
      controller.forget_site(3);
      (void)controller.tracked_sites();
      std::this_thread::yield();
    }
  });

  std::vector<AdaptationDirective> directives;
  for (int round = 0; round < 3000; ++round) {
    if (auto d = controller.evaluate()) directives.push_back(*d);
  }
  stop.store(true);
  for (auto& th : workers) th.join();

  for (std::size_t i = 1; i < directives.size(); ++i) {
    EXPECT_EQ(directives[i].epoch, directives[i - 1].epoch + 1);
    EXPECT_NE(directives[i].engaged, directives[i - 1].engaged);
  }
  EXPECT_EQ(controller.transitions(), directives.size());
  EXPECT_EQ(registry.counter("adapt.transitions_total").value(),
            directives.size());
}

}  // namespace
}  // namespace admire::adapt
