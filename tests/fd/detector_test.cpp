#include "fd/detector.h"

#include <gtest/gtest.h>

#include "fd/heartbeat.h"
#include "obs/registry.h"

namespace admire::fd {
namespace {

DetectorConfig tight_config() {
  DetectorConfig config;
  config.heartbeat_interval = 10 * kMilli;
  config.suspect_after_missed = 3;
  config.confirm_window = 50 * kMilli;
  config.alive_after_beats = 2;
  return config;
}

Heartbeat beat(SiteId site, std::uint64_t seq, Nanos sent_at = 0) {
  Heartbeat hb;
  hb.site = site;
  hb.seq = seq;
  hb.sent_at = sent_at;
  return hb;
}

TEST(HeartbeatCodec, RoundTrips) {
  Heartbeat hb;
  hb.site = 7;
  hb.seq = 42;
  hb.queue_depth = 13;
  hb.last_applied = 99 * kMilli;
  hb.sent_at = 123 * kMilli;
  const Bytes wire = encode_heartbeat(hb);
  auto decoded = decode_heartbeat(ByteSpan(wire.data(), wire.size()));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), hb);
}

TEST(HeartbeatCodec, RejectsGarbage) {
  Bytes junk{std::byte{0x01}, std::byte{0x02}, std::byte{0x03}};
  EXPECT_FALSE(decode_heartbeat(ByteSpan(junk.data(), junk.size())).is_ok());
  EXPECT_FALSE(decode_heartbeat(ByteSpan()).is_ok());
}

TEST(HeartbeatCodec, EventRoundTrips) {
  Heartbeat hb = beat(3, 5, 7 * kMilli);
  hb.queue_depth = 2;
  auto ev = to_heartbeat_event(hb);
  auto decoded = from_heartbeat_event(ev);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), hb);
}

TEST(FailureDetector, StaysAliveWhileBeating) {
  FailureDetector fd(tight_config());
  fd.track(1, 0);
  Nanos now = 0;
  for (std::uint64_t seq = 1; seq <= 20; ++seq) {
    now += 10 * kMilli;
    EXPECT_TRUE(fd.on_heartbeat(beat(1, seq), now).empty());
    EXPECT_TRUE(fd.poll(now).empty());
  }
  EXPECT_EQ(fd.health(1), Health::kAlive);
  EXPECT_TRUE(fd.history().empty());
}

TEST(FailureDetector, SuspectsAfterMissedBeatsThenConfirmsDead) {
  const auto config = tight_config();
  FailureDetector fd(config);
  fd.track(1, 0);
  (void)fd.on_heartbeat(beat(1, 1), 10 * kMilli);

  // Not yet overdue at 3 intervals sharp.
  EXPECT_TRUE(fd.poll(10 * kMilli + 3 * config.heartbeat_interval).empty());

  const Nanos suspect_at = 10 * kMilli + 3 * config.heartbeat_interval + 1;
  auto transitions = fd.poll(suspect_at);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].to, Health::kSuspect);
  EXPECT_EQ(fd.health(1), Health::kSuspect);

  // Still inside the confirm window: no dead declaration.
  EXPECT_TRUE(fd.poll(suspect_at + config.confirm_window - 1).empty());

  transitions = fd.poll(suspect_at + config.confirm_window + 1);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].from, Health::kSuspect);
  EXPECT_EQ(transitions[0].to, Health::kDead);
  EXPECT_EQ(fd.health(1), Health::kDead);
}

TEST(FailureDetector, HysteresisClearsSuspicionOnlyAfterEnoughBeats) {
  FailureDetector fd(tight_config());
  fd.track(1, 0);
  (void)fd.on_heartbeat(beat(1, 1), 10 * kMilli);
  auto transitions = fd.poll(200 * kMilli);  // far overdue -> suspect (+dead?)
  ASSERT_FALSE(transitions.empty());
  // Drive it back from suspect with fresh beats: one beat must NOT clear.
  fd.track(1, 0);  // reset to a clean slate
  (void)fd.on_heartbeat(beat(1, 1), 10 * kMilli);
  ASSERT_EQ(fd.poll(60 * kMilli).size(), 1u);  // -> suspect
  EXPECT_TRUE(fd.on_heartbeat(beat(1, 2), 61 * kMilli).empty());
  EXPECT_EQ(fd.health(1), Health::kSuspect);  // hysteresis holds
  auto cleared = fd.on_heartbeat(beat(1, 3), 62 * kMilli);
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_EQ(cleared[0].to, Health::kAlive);
}

TEST(FailureDetector, DeadIsStickyUnderZombieBeats) {
  FailureDetector fd(tight_config());
  fd.track(1, 0);
  (void)fd.on_heartbeat(beat(1, 5), 10 * kMilli);
  (void)fd.poll(kSecond);       // long overdue -> suspect
  (void)fd.poll(10 * kSecond);  // confirm window expired -> dead
  ASSERT_EQ(fd.health(1), Health::kDead);
  // The zombie resumes beating — membership already shrank, stay dead.
  for (std::uint64_t seq = 6; seq < 16; ++seq) {
    EXPECT_TRUE(fd.on_heartbeat(beat(1, seq), 11 * kSecond).empty());
  }
  EXPECT_EQ(fd.health(1), Health::kDead);
}

TEST(FailureDetector, StaleAndDuplicateBeatsIgnored) {
  obs::Registry registry;
  FailureDetector fd(tight_config());
  fd.instrument(registry);
  fd.track(1, 0);
  (void)fd.on_heartbeat(beat(1, 5), 10 * kMilli);
  (void)fd.on_heartbeat(beat(1, 5), 11 * kMilli);  // duplicate
  (void)fd.on_heartbeat(beat(1, 3), 12 * kMilli);  // out of order
  auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter_or("fd.heartbeats_total"), 1u);
  EXPECT_EQ(snapshot.counter_or("fd.heartbeats_stale_total"), 2u);
  auto signals = fd.signals(1);
  ASSERT_TRUE(signals.has_value());
  EXPECT_EQ(signals->last_beat, 10 * kMilli);  // stale beats don't refresh
}

TEST(FailureDetector, RejoinCompletesWithHysteresis) {
  FailureDetector fd(tight_config());
  fd.track(1, 0);
  (void)fd.poll(kSecond);       // -> suspect
  (void)fd.poll(10 * kSecond);  // -> dead
  ASSERT_EQ(fd.health(1), Health::kDead);
  auto transitions = fd.mark_rejoining(1, 11 * kSecond);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].to, Health::kRejoining);
  EXPECT_TRUE(fd.on_heartbeat(beat(1, 100), 11 * kSecond + kMilli).empty());
  auto alive = fd.on_heartbeat(beat(1, 101), 11 * kSecond + 2 * kMilli);
  ASSERT_EQ(alive.size(), 1u);
  EXPECT_EQ(alive[0].from, Health::kRejoining);
  EXPECT_EQ(alive[0].to, Health::kAlive);
  // Full per-slot story: alive -> suspect -> dead -> rejoining -> alive.
  const auto history = fd.history();
  ASSERT_EQ(history.size(), 4u);
  EXPECT_EQ(history[0].to, Health::kSuspect);
  EXPECT_EQ(history[1].to, Health::kDead);
  EXPECT_EQ(history[2].to, Health::kRejoining);
  EXPECT_EQ(history[3].to, Health::kAlive);
}

TEST(FailureDetector, BeginRejoinRetiresDeadSlotForReplacementSite) {
  FailureDetector fd(tight_config());
  fd.track(1, 0);
  (void)fd.poll(kSecond);
  (void)fd.poll(10 * kSecond);
  ASSERT_EQ(fd.health(1), Health::kDead);
  auto transitions = fd.begin_rejoin(/*old=*/1, /*new=*/4, 11 * kSecond);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].site, 4u);
  EXPECT_EQ(transitions[0].from, Health::kDead);
  EXPECT_EQ(transitions[0].to, Health::kRejoining);
  EXPECT_FALSE(fd.health(1).has_value());  // retired
  EXPECT_EQ(fd.health(4), Health::kRejoining);
  (void)fd.on_heartbeat(beat(4, 1), 11 * kSecond + kMilli);
  auto alive = fd.on_heartbeat(beat(4, 2), 11 * kSecond + 2 * kMilli);
  ASSERT_EQ(alive.size(), 1u);
  EXPECT_EQ(alive[0].to, Health::kAlive);
}

TEST(FailureDetector, BeginRejoinNoOpUnlessDead) {
  FailureDetector fd(tight_config());
  fd.track(1, 0);
  EXPECT_TRUE(fd.begin_rejoin(1, 9, kMilli).empty());   // alive, not dead
  EXPECT_TRUE(fd.begin_rejoin(7, 9, kMilli).empty());   // untracked
  EXPECT_EQ(fd.health(1), Health::kAlive);
}

TEST(FailureDetector, MetricsCountLifecycle) {
  obs::Registry registry;
  FailureDetector fd(tight_config());
  fd.instrument(registry);
  fd.track(1, 0);
  fd.track(2, 0);
  (void)fd.on_heartbeat(beat(1, 1), 10 * kMilli);
  (void)fd.on_heartbeat(beat(2, 1), 10 * kMilli);
  (void)fd.poll(kSecond);       // both -> suspect
  (void)fd.poll(10 * kSecond);  // both -> dead
  (void)fd.begin_rejoin(1, 1, 11 * kSecond);
  (void)fd.on_heartbeat(beat(1, 2), 11 * kSecond + kMilli);
  (void)fd.on_heartbeat(beat(1, 3), 11 * kSecond + 2 * kMilli);
  auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter_or("fd.suspect_total"), 2u);
  EXPECT_EQ(snapshot.counter_or("fd.dead_total"), 2u);
  EXPECT_EQ(snapshot.counter_or("fd.rejoin_completed_total"), 1u);
  EXPECT_EQ(snapshot.gauge_or("fd.dead"), 1.0);
  EXPECT_EQ(snapshot.gauge_or("fd.alive"), 1.0);
  const auto* detection = snapshot.histogram("fd.detection_latency_ns");
  ASSERT_NE(detection, nullptr);
  EXPECT_EQ(detection->count, 2u);
}

}  // namespace
}  // namespace admire::fd
