#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace admire {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i).is_ok());
  for (int i = 0; i < 5; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, TryPushFullReportsWouldBlock) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1).is_ok());
  EXPECT_TRUE(q.try_push(2).is_ok());
  EXPECT_EQ(q.try_push(3).code(), StatusCode::kWouldBlock);
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, CloseWakesBlockedPop) {
  BoundedQueue<int> q(2);
  std::thread t([&] {
    auto v = q.pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  t.join();
}

TEST(BoundedQueue, CloseDrainsRemainingItems) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(1).is_ok());
  ASSERT_TRUE(q.push(2).is_ok());
  q.close();
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_EQ(q.push(3).code(), StatusCode::kClosed);
}

TEST(BoundedQueue, PopForTimesOut) {
  BoundedQueue<int> q(2);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_for(std::chrono::milliseconds(30)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(25));
}

TEST(BoundedQueue, BlockingPushWaitsForSpace) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1).is_ok());
  std::thread t([&] { EXPECT_TRUE(q.push(2).is_ok()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(q.pop().value(), 1);
  t.join();
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, MpmcStress) {
  constexpr int kProducers = 4, kPerProducer = 2000;
  BoundedQueue<int> q(64);
  std::atomic<long> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i).is_ok());
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (consumed.load() < kProducers * kPerProducer) {
        if (auto v = q.pop_for(std::chrono::milliseconds(100))) {
          sum.fetch_add(*v);
          consumed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace admire
