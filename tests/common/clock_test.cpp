#include "common/clock.h"

#include <gtest/gtest.h>

#include "common/cpu_work.h"

namespace admire {
namespace {

TEST(SteadyClock, Monotone) {
  SteadyClock clock;
  Nanos prev = clock.now();
  for (int i = 0; i < 100; ++i) {
    const Nanos now = clock.now();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(ManualClock, AdvanceAndSet) {
  ManualClock clock(100);
  EXPECT_EQ(clock.now(), 100);
  EXPECT_EQ(clock.advance(50), 150);
  EXPECT_EQ(clock.now(), 150);
  clock.set_at_least(120);  // backwards: ignored
  EXPECT_EQ(clock.now(), 150);
  clock.set_at_least(200);
  EXPECT_EQ(clock.now(), 200);
}

TEST(CpuWork, CalibrationPositive) {
  EXPECT_GT(calibrate_iterations_per_nano(), 0.0);
}

TEST(CpuWork, BurnTakesRoughlyRequestedTime) {
  SteadyClock clock;
  (void)burn_for(kMilli);  // warm
  const Nanos t0 = clock.now();
  (void)burn_for(20 * kMilli);
  const Nanos elapsed = clock.now() - t0;
  EXPECT_GT(elapsed, 5 * kMilli);
  EXPECT_LT(elapsed, 400 * kMilli);
}

TEST(CpuWork, ZeroAndNegativeAreNoops) {
  EXPECT_EQ(burn_for(0), 0u);
  EXPECT_EQ(burn_for(-100), 0u);
}

}  // namespace
}  // namespace admire
