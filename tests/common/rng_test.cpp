#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace admire {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
  EXPECT_EQ(rng.next_below(0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.next_exponential(100.0);
  EXPECT_NEAR(sum / kN, 100.0, 5.0);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(SplitMix, KnownToAdvanceState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace admire
