#include "common/status.h"

#include <gtest/gtest.h>

namespace admire {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = err(StatusCode::kTimeout, "waited 5s");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  EXPECT_EQ(s.message(), "waited 5s");
  EXPECT_EQ(s.to_string(), "TIMEOUT: waited 5s");
}

TEST(Status, EqualityComparesCodeOnly) {
  EXPECT_EQ(err(StatusCode::kCorrupt, "a"), err(StatusCode::kCorrupt, "b"));
  EXPECT_FALSE(err(StatusCode::kCorrupt) == err(StatusCode::kClosed));
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnavailable); ++c) {
    EXPECT_STRNE(status_code_name(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = err(StatusCode::kNotFound, "missing");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string(1000, 'x');
  std::string v = std::move(r).value();
  EXPECT_EQ(v.size(), 1000u);
}

}  // namespace
}  // namespace admire
