#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace admire {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesCombinedStream) {
  Rng rng(7);
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double() * 100.0;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(SampleStats, Percentiles) {
  SampleStats s;
  for (int i = 100; i >= 1; --i) s.add(i);  // 1..100 reversed
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.0, 1.0);
  EXPECT_NEAR(s.percentile(0.9), 90.0, 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleStats, AddAfterQueryResorts) {
  SampleStats s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(LogHistogram, BucketsAndQuantiles) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.add(1000);   // bucket ~2^9..2^10
  for (int i = 0; i < 10; ++i) h.add(1000000); // much slower tail
  EXPECT_EQ(h.total(), 110u);
  EXPECT_LE(h.quantile_upper_bound(0.5), 2048);
  EXPECT_GE(h.quantile_upper_bound(0.99), 1000000);
}

TEST(LogHistogram, NegativeClampsToZeroBucket) {
  LogHistogram h;
  h.add(-5);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.bucket(0), 1u);
}

TEST(TimeSeries, BinsAndGaps) {
  TimeSeries ts(kSecond);
  ts.add(0, 10.0);
  ts.add(kSecond / 2, 20.0);
  ts.add(3 * kSecond, 30.0);
  auto bins = ts.bins();
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_EQ(bins[0].n, 2u);
  EXPECT_DOUBLE_EQ(bins[0].mean, 15.0);
  EXPECT_DOUBLE_EQ(bins[0].max, 20.0);
  EXPECT_EQ(bins[1].n, 0u);  // gap preserved
  EXPECT_EQ(bins[2].n, 0u);
  EXPECT_EQ(bins[3].n, 1u);
  EXPECT_DOUBLE_EQ(bins[3].mean, 30.0);
}

TEST(FormatSeries, ContainsHeaderAndPoints) {
  const std::string out =
      format_series("curve", {{1.0, 2.0}, {3.0, 4.5}}, "x", "y");
  EXPECT_NE(out.find("# series: curve"), std::string::npos);
  EXPECT_NE(out.find("1.000"), std::string::npos);
  EXPECT_NE(out.find("4.500"), std::string::npos);
}

}  // namespace
}  // namespace admire
