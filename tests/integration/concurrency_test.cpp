// Concurrency stress: the thread-safety contracts the threaded runtime
// relies on, hammered from multiple threads.
#include <gtest/gtest.h>

#include <thread>

#include "cluster/cluster.h"
#include "echo/channel.h"
#include "mirror/pipeline_core.h"
#include "workload/scenario.h"

namespace admire {
namespace {

event::Event faa(FlightKey flight, StreamId stream, SeqNo seq) {
  event::FaaPosition pos;
  pos.flight = flight;
  return event::make_faa_position(stream, seq, pos, 16);
}

TEST(Concurrency, ChannelSubmitAndSubscribeRace) {
  auto channel = echo::EventChannel::create(1, "race", echo::ChannelRole::kData);
  std::atomic<std::uint64_t> received{0};
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    // Continuously add and remove subscriptions while submits run.
    while (!stop.load()) {
      auto sub = channel->subscribe(
          [&](const event::Event&) { received.fetch_add(1); });
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> submitters;
  constexpr int kPerThread = 3000;
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&, t] {
      for (SeqNo i = 1; i <= kPerThread; ++i) {
        channel->submit(faa(1, static_cast<StreamId>(t), i));
      }
    });
  }
  for (auto& th : submitters) th.join();
  stop.store(true);
  churner.join();
  EXPECT_EQ(channel->submitted_count(), 3u * kPerThread);
}

TEST(Concurrency, PipelineCoreParallelIngestAndSend) {
  mirror::PipelineCore core(
      rules::MirroringParams{.function = rules::selective_mirroring(4)}, 4);
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> sent{0};
  std::thread sender([&] {
    while (!done.load() || core.ready().size() > 0) {
      if (auto step = core.try_send_step()) {
        sent.fetch_add(step->to_send.size());
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::vector<std::thread> producers;
  constexpr SeqNo kPerStream = 4000;
  for (StreamId s = 0; s < 3; ++s) {
    producers.emplace_back([&core, s] {
      for (SeqNo i = 1; i <= kPerStream; ++i) {
        core.on_incoming(faa(1 + i % 7, s, i), 0);
      }
    });
  }
  for (auto& th : producers) th.join();
  done.store(true);
  sender.join();

  const auto counters = core.counters();
  EXPECT_EQ(counters.received, 3u * kPerStream);
  EXPECT_EQ(sent.load(), counters.sent);
  EXPECT_EQ(core.rule_counters().total_seen(), 3u * kPerStream);
  // Per-stream monotone vector timestamp despite interleaving.
  const auto vts = core.stamp();
  for (StreamId s = 0; s < 3; ++s) EXPECT_EQ(vts.component(s), kPerStream);
}

TEST(Concurrency, PipelineInstallWhileIngesting) {
  mirror::PipelineCore core(
      rules::MirroringParams{.function = rules::simple_mirroring()}, 2);
  std::atomic<bool> stop{false};
  std::thread installer([&] {
    bool selective = false;
    while (!stop.load()) {
      core.install(selective ? rules::selective_mirroring(8)
                             : rules::simple_mirroring());
      selective = !selective;
      std::this_thread::yield();
    }
  });
  for (SeqNo i = 1; i <= 20000; ++i) {
    core.on_incoming(faa(1, 0, i), 0);
    if (i % 16 == 0) {
      while (core.try_send_step().has_value()) {
      }
    }
  }
  stop.store(true);
  installer.join();
  EXPECT_EQ(core.counters().received, 20000u);
  EXPECT_EQ(core.rule_counters().total_seen(), 20000u);
}

TEST(Concurrency, ClusterParallelIngestAndRequests) {
  cluster::ClusterConfig config;
  config.num_mirrors = 2;
  cluster::Cluster server(config);
  server.start();

  std::atomic<int> snapshots_ok{0};
  std::thread requester([&] {
    for (int i = 0; i < 40; ++i) {
      if (server.request_snapshot(i + 1).is_ok()) snapshots_ok.fetch_add(1);
    }
  });
  workload::ScenarioConfig scenario;
  scenario.faa_events = 600;
  scenario.num_flights = 12;
  scenario.event_padding = 64;
  const auto trace = workload::make_ois_trace(scenario);
  for (const auto& item : trace.items) {
    ASSERT_TRUE(server.ingest(item.ev).is_ok());
  }
  requester.join();
  server.drain();
  EXPECT_EQ(snapshots_ok.load(), 40);
  EXPECT_EQ(server.central().processed_by_ede(), trace.size());
  const auto fps = server.state_fingerprints();
  EXPECT_EQ(fps[1], fps[2]);
  server.stop();
}

}  // namespace
}  // namespace admire
