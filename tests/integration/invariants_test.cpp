// End-to-end invariants (DESIGN.md §8) swept across the mirroring
// configuration space with parameterized tests:
//  * no event loss: every offered event is accounted exactly once by the
//    rule engine (accepted / overwritten / suppressed / absorbed);
//  * mirror convergence: all mirror replicas are identical after
//    quiescence, for every configuration;
//  * full-stream locality: the central EDE always processes the entire
//    stream regardless of mirror-side filtering;
//  * backup-queue safety: checkpoint commits never trim an event a
//    participant still needs (committed view <= every site's progress).
#include <gtest/gtest.h>

#include "harness/experiments.h"

namespace admire {
namespace {

struct ConfigCase {
  const char* name;
  rules::MirrorFunctionSpec function;
  bool ois_rules;
  std::size_t mirrors;
};

std::vector<ConfigCase> config_matrix() {
  return {
      {"simple_1m", rules::simple_mirroring(), false, 1},
      {"simple_rules_2m", rules::simple_mirroring(), true, 2},
      {"selective2_2m", rules::selective_mirroring(2), false, 2},
      {"selective8_3m", rules::selective_mirroring(8), false, 3},
      {"selective8_rules_2m", rules::selective_mirroring(8), true, 2},
      {"selective32_chkpt10_1m", rules::selective_mirroring(32, 10), false, 1},
      {"coalesce5_2m", rules::fig9_function_a(), false, 2},
      {"coalesce_rules_3m", rules::fig9_function_a(), true, 3},
      {"fnB_2m", rules::fig9_function_b(), false, 2},
  };
}

class ConfigSweep : public ::testing::TestWithParam<ConfigCase> {
 protected:
  sim::SimResult run() const {
    harness::RunSpec spec;
    spec.faa_events = 800;
    spec.num_flights = 25;
    spec.event_padding = 200;
    spec.function = GetParam().function;
    spec.ois_rules = GetParam().ois_rules;
    spec.mirrors = GetParam().mirrors;
    return harness::run_sim(spec);
  }
};

TEST_P(ConfigSweep, NoEventLossAccounting) {
  const auto r = run();
  EXPECT_EQ(r.rule_counters.total_seen(), r.events_offered);
  // Wire events never outnumber accepted events, and with coalescing the
  // raw events they represent must cover everything accepted: the final
  // flush leaves nothing stranded in the coalescer.
  EXPECT_LE(r.pipeline_counters.sent, r.pipeline_counters.enqueued);
  EXPECT_EQ(r.pipeline_counters.received, r.events_offered);
}

TEST_P(ConfigSweep, EveryWireEventReachesEveryMirror) {
  const auto r = run();
  EXPECT_EQ(r.wire_events_mirrored,
            r.pipeline_counters.sent * GetParam().mirrors);
}

TEST_P(ConfigSweep, MirrorsConvergeToEachOther) {
  const auto r = run();
  ASSERT_EQ(r.state_fingerprints.size(), GetParam().mirrors + 1);
  for (std::size_t i = 2; i < r.state_fingerprints.size(); ++i) {
    EXPECT_EQ(r.state_fingerprints[i], r.state_fingerprints[1])
        << "mirror " << i << " diverged under " << GetParam().name;
  }
}

TEST_P(ConfigSweep, LosslessConfigsMatchCentralExactly) {
  const auto r = run();
  const auto& spec = GetParam().function;
  const bool lossless = !GetParam().ois_rules && spec.overwrite_max <= 1 &&
                        !spec.coalesce_enabled;
  if (lossless) {
    EXPECT_EQ(r.state_fingerprints[0], r.state_fingerprints[1]);
  }
}

TEST_P(ConfigSweep, CentralEdeSeesFullStream) {
  const auto r = run();
  // One update-delay sample per EDE output; every FAA/Delta/derived input
  // yields at least the status broadcast except pure boarding/bag events.
  EXPECT_GE(r.update_delays->count(), r.events_offered / 2);
}

TEST_P(ConfigSweep, CheckpointsCommitAndBoundBackups) {
  const auto r = run();
  EXPECT_GT(r.checkpoints_committed, 0u) << GetParam().name;
  ASSERT_FALSE(r.backup_sizes.empty());
  // After quiescence the retained backlog is far below everything sent.
  for (const auto size : r.backup_sizes) {
    EXPECT_LT(size, std::max<std::uint64_t>(r.pipeline_counters.sent, 200));
  }
}

TEST_P(ConfigSweep, DeterministicAcrossRepeats) {
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.state_fingerprints, b.state_fingerprints);
}

INSTANTIATE_TEST_SUITE_P(MirrorConfigs, ConfigSweep,
                         ::testing::ValuesIn(config_matrix()),
                         [](const auto& param_info) { return param_info.param.name; });

}  // namespace
}  // namespace admire
