// Cross-runtime validation of the PipelineCore seam (DESIGN.md §5): the
// threaded cluster and the discrete-event simulator drive the same
// decision logic, so for any non-coalescing configuration they must agree
// on every *logical* outcome — events mirrored, rule decisions, and final
// replica states. (Coalescing emission depends on send-task timing, so
// wire-event counts legitimately differ there; the replicas still
// converge, which is asserted separately.)
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "harness/experiments.h"

namespace admire {
namespace {

struct Outcome {
  std::uint64_t sent = 0;
  rules::RuleCounters rules;
  std::vector<std::uint64_t> fingerprints;
};

harness::RunSpec spec_for(const rules::MirrorFunctionSpec& fn, bool ois) {
  harness::RunSpec spec;
  spec.faa_events = 500;
  spec.num_flights = 15;
  spec.event_padding = 128;
  spec.function = fn;
  spec.ois_rules = ois;
  spec.mirrors = 2;
  return spec;
}

Outcome run_simulated(const harness::RunSpec& spec) {
  const auto r = harness::run_sim(spec);
  return {r.pipeline_counters.sent, r.rule_counters, r.state_fingerprints};
}

Outcome run_threaded(const harness::RunSpec& spec) {
  cluster::ClusterConfig config;
  config.num_mirrors = spec.mirrors;
  config.params = spec.ois_rules
                      ? rules::ois_default_rules(spec.function)
                      : rules::MirroringParams{.function = spec.function};
  cluster::Cluster server(config);
  server.start();
  for (const auto& item : harness::make_trace(spec).items) {
    EXPECT_TRUE(server.ingest(item.ev).is_ok());
  }
  server.drain();
  Outcome out;
  out.sent = server.central().core().counters().sent;
  out.rules = server.central().core().rule_counters();
  out.fingerprints = server.state_fingerprints();
  server.stop();
  return out;
}

struct CrossCase {
  const char* name;
  rules::MirrorFunctionSpec function;
  bool ois_rules;
};

class CrossRuntime : public ::testing::TestWithParam<CrossCase> {};

TEST_P(CrossRuntime, RuntimesAgreeOnLogicalOutcomes) {
  const auto spec = spec_for(GetParam().function, GetParam().ois_rules);
  const Outcome sim = run_simulated(spec);
  const Outcome threaded = run_threaded(spec);

  EXPECT_EQ(sim.sent, threaded.sent);
  EXPECT_EQ(sim.rules.accepted, threaded.rules.accepted);
  EXPECT_EQ(sim.rules.discarded_overwritten,
            threaded.rules.discarded_overwritten);
  EXPECT_EQ(sim.rules.discarded_suppressed,
            threaded.rules.discarded_suppressed);
  EXPECT_EQ(sim.rules.absorbed_tuple, threaded.rules.absorbed_tuple);
  EXPECT_EQ(sim.rules.emitted_combined, threaded.rules.emitted_combined);
  ASSERT_EQ(sim.fingerprints.size(), threaded.fingerprints.size());
  for (std::size_t i = 0; i < sim.fingerprints.size(); ++i) {
    EXPECT_EQ(sim.fingerprints[i], threaded.fingerprints[i])
        << "site " << i << " diverged between runtimes";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CrossRuntime,
    ::testing::Values(CrossCase{"simple", rules::simple_mirroring(), false},
                      CrossCase{"selective4", rules::selective_mirroring(4),
                                false},
                      CrossCase{"selective8_rules",
                                rules::selective_mirroring(8), true}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(CrossRuntime, CoalescingConvergesEvenIfEmissionTimingDiffers) {
  const auto spec = spec_for(rules::fig9_function_a(), false);
  const Outcome sim = run_simulated(spec);
  const Outcome threaded = run_threaded(spec);
  // Central replicas identical (full stream on both runtimes).
  EXPECT_EQ(sim.fingerprints[0], threaded.fingerprints[0]);
  // Mirrors converge within each runtime.
  EXPECT_EQ(sim.fingerprints[1], sim.fingerprints[2]);
  EXPECT_EQ(threaded.fingerprints[1], threaded.fingerprints[2]);
}

}  // namespace
}  // namespace admire
