// Model-based property tests: feed long random event sequences through the
// real components and compare against small, obviously-correct reference
// models written inline.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "queueing/backup_queue.h"
#include "rules/coalescer.h"
#include "rules/rule_engine.h"

namespace admire {
namespace {

event::Event faa(FlightKey flight, SeqNo seq) {
  event::FaaPosition pos;
  pos.flight = flight;
  event::Event ev = event::make_faa_position(0, seq, pos);
  ev.mutable_header().vts.observe(0, seq);
  return ev;
}

TEST(ModelBased, OverwriteSemanticsMatchReferenceModel) {
  // Reference model: per (type, flight) counter; keep when counter % L == 0.
  for (const std::uint32_t L : {2u, 3u, 5u, 8u}) {
    rules::RuleEngine engine(
        rules::MirroringParams{.function = rules::selective_mirroring(L)});
    queueing::StatusTable table;
    std::map<FlightKey, std::uint64_t> model_counters;
    Rng rng(L * 1234);
    for (SeqNo i = 1; i <= 3000; ++i) {
      const auto flight = static_cast<FlightKey>(1 + rng.next_below(12));
      const bool model_keep = model_counters[flight]++ % L == 0;
      const auto action = engine.on_receive(faa(flight, i), table).action;
      ASSERT_EQ(action == rules::ReceiveAction::kAccept, model_keep)
          << "L=" << L << " event " << i << " flight " << flight;
    }
  }
}

TEST(ModelBased, SuppressionMatchesReferenceModel) {
  rules::MirroringParams params;
  params.function = rules::simple_mirroring();
  rules::ComplexSeqRule rule;
  rule.trigger_type = event::EventType::kDeltaStatus;
  rule.trigger_value = rules::match_delta_status(event::FlightStatus::kLanded);
  rule.suppressed_type = event::EventType::kFaaPosition;
  params.complex_seq_rules.push_back(std::move(rule));
  rules::RuleEngine engine(std::move(params));
  queueing::StatusTable table;

  std::map<FlightKey, bool> model_landed;
  Rng rng(99);
  for (SeqNo i = 1; i <= 3000; ++i) {
    const auto flight = static_cast<FlightKey>(1 + rng.next_below(10));
    if (rng.next_bool(0.05)) {
      event::DeltaStatus st;
      st.flight = flight;
      st.status = event::FlightStatus::kLanded;
      engine.on_receive(event::make_delta_status(1, i, st), table);
      model_landed[flight] = true;
      continue;
    }
    const bool model_suppressed = model_landed[flight];
    const auto action = engine.on_receive(faa(flight, i), table).action;
    ASSERT_EQ(action == rules::ReceiveAction::kDiscardSuppressed,
              model_suppressed)
        << "event " << i << " flight " << flight;
  }
}

TEST(ModelBased, BackupQueueMatchesReferenceUnderRandomOps) {
  // Reference model: a vector of seqnos; trim removes the prefix <= commit.
  queueing::BackupQueue backup;
  std::vector<SeqNo> model;
  Rng rng(7);
  SeqNo next_seq = 1;
  SeqNo committed = 0;
  for (int op = 0; op < 5000; ++op) {
    const double coin = rng.next_double();
    if (coin < 0.7) {
      backup.push(faa(1, next_seq));
      model.push_back(next_seq);
      ++next_seq;
    } else if (coin < 0.9) {
      // Commit a random point between the last commit and the newest seq.
      committed += rng.next_below(4);
      event::VectorTimestamp vts;
      vts.observe(0, committed);
      const std::size_t trimmed = backup.trim_committed(vts);
      std::size_t model_trimmed = 0;
      while (!model.empty() && model.front() <= committed) {
        model.erase(model.begin());
        ++model_trimmed;
      }
      ASSERT_EQ(trimmed, model_trimmed) << "op " << op;
    } else {
      ASSERT_EQ(backup.size(), model.size()) << "op " << op;
      if (!model.empty()) {
        ASSERT_EQ(backup.first_vts()->component(0), model.front());
        ASSERT_EQ(backup.last_vts()->component(0), model.back());
      }
    }
  }
  ASSERT_EQ(backup.size(), model.size());
}

TEST(ModelBased, CoalescerConservesRawEventCounts) {
  // Property: at any point, (emitted coalesced counts) + (buffered counts)
  // == raw events offered.
  rules::Coalescer coalescer(true, 7);
  Rng rng(3);
  std::uint64_t offered = 0, emitted_raw = 0;
  for (SeqNo i = 1; i <= 4000; ++i) {
    const auto flight = static_cast<FlightKey>(1 + rng.next_below(9));
    ++offered;
    for (const auto& out : coalescer.offer(faa(flight, i))) {
      emitted_raw += out.header().coalesced;
    }
  }
  for (const auto& out : coalescer.flush_all()) {
    emitted_raw += out.header().coalesced;
  }
  EXPECT_EQ(emitted_raw, offered);
}

}  // namespace
}  // namespace admire
