#include "event/event.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace admire::event {
namespace {

TEST(Event, BuildersSetHeaderKeyFromPayload) {
  FaaPosition pos;
  pos.flight = 17;
  const Event ev = make_faa_position(0, 42, pos, 128);
  EXPECT_EQ(ev.type(), EventType::kFaaPosition);
  EXPECT_EQ(ev.stream(), 0);
  EXPECT_EQ(ev.seq(), 42u);
  EXPECT_EQ(ev.key(), 17u);
  EXPECT_EQ(ev.padding().size(), 128u);
}

TEST(Event, TypedAccessor) {
  DeltaStatus st;
  st.flight = 3;
  st.status = FlightStatus::kLanded;
  Event ev = make_delta_status(1, 7, st);
  ASSERT_NE(ev.as<DeltaStatus>(), nullptr);
  EXPECT_EQ(ev.as<DeltaStatus>()->status, FlightStatus::kLanded);
  EXPECT_EQ(ev.as<FaaPosition>(), nullptr);
}

TEST(Event, WireSizeComponents) {
  FaaPosition pos;
  pos.flight = 1;
  const Event small = make_faa_position(0, 1, pos, 0);
  const Event padded = make_faa_position(0, 1, pos, 1000);
  EXPECT_EQ(padded.wire_size(), small.wire_size() + 1000);
  EXPECT_GE(small.wire_size(), kHeaderWireSize);
}

TEST(Event, WireSizeGrowsWithVts) {
  FaaPosition pos;
  pos.flight = 1;
  Event ev = make_faa_position(0, 1, pos, 0);
  const std::size_t before = ev.wire_size();
  ev.mutable_header().vts.observe(3, 9);
  EXPECT_EQ(ev.wire_size(), before + 4 * sizeof(SeqNo));
}

TEST(Event, DescribeMentionsTypeAndFlight) {
  PassengerBoarded pb;
  pb.flight = 9;
  pb.passenger_id = 1234;
  const Event ev = make_passenger_boarded(1, 5, pb);
  const std::string d = ev.describe();
  EXPECT_NE(d.find("PASSENGER_BOARDED"), std::string::npos);
  EXPECT_NE(d.find("flight=9"), std::string::npos);
}

TEST(Event, ControlEventsAreNotDataEvents) {
  EXPECT_FALSE(is_data_event(EventType::kControl));
  EXPECT_TRUE(is_data_event(EventType::kFaaPosition));
  EXPECT_TRUE(is_data_event(EventType::kSnapshot));
}

TEST(Payload, FlightExtraction) {
  EXPECT_EQ(payload_flight(FaaPosition{.flight = 5}), 5u);
  EXPECT_EQ(payload_flight(DeltaStatus{.flight = 6}), 6u);
  EXPECT_EQ(payload_flight(PassengerBoarded{.flight = 7}), 7u);
  EXPECT_EQ(payload_flight(BaggageLoaded{.flight = 8}), 8u);
  EXPECT_EQ(payload_flight(Derived{.flight = 9}), 9u);
  EXPECT_EQ(payload_flight(Snapshot{}), 0u);
  EXPECT_EQ(payload_flight(Control{}), 0u);
}

TEST(Payload, WireSizeIncludesVariableParts) {
  Snapshot s;
  EXPECT_EQ(payload_wire_size(Payload{s}), 16u);
  s.state.resize(100);
  EXPECT_EQ(payload_wire_size(Payload{s}), 116u);
  Control c;
  c.body.resize(33);
  EXPECT_EQ(payload_wire_size(Payload{c}), 33u);
}

TEST(FlightStatus, NamesAndFinality) {
  EXPECT_STREQ(flight_status_name(FlightStatus::kArrived), "ARRIVED");
  EXPECT_TRUE(is_on_ground_final(FlightStatus::kLanded));
  EXPECT_TRUE(is_on_ground_final(FlightStatus::kAtGate));
  EXPECT_FALSE(is_on_ground_final(FlightStatus::kEnRoute));
  EXPECT_FALSE(is_on_ground_final(FlightStatus::kBoarding));
}

TEST(EventType, Names) {
  EXPECT_STREQ(event_type_name(EventType::kFaaPosition), "FAA_POSITION");
  EXPECT_STREQ(event_type_name(EventType::kControl), "CONTROL");
}

TEST(Event, PaddingIsDeterministic) {
  FaaPosition pos;
  const Event a = make_faa_position(0, 1, pos, 64);
  const Event b = make_faa_position(0, 1, pos, 64);
  EXPECT_TRUE(std::ranges::equal(a.padding(), b.padding()));
}

TEST(Event, EqualityIsDeep) {
  FaaPosition pos;
  pos.flight = 2;
  Event a = make_faa_position(0, 1, pos, 16);
  Event b = make_faa_position(0, 1, pos, 16);
  EXPECT_EQ(a, b);
  b.mutable_header().seq = 2;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace admire::event
