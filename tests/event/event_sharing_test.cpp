// Shared-storage and copy-on-write semantics of Event: copies must share
// payload/padding storage (the cheap-fan-out property), mutation must
// detach and invalidate the encoded-frame cache, and padding views must
// stay valid for as long as any copy is alive.
#include "event/event.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace admire::event {
namespace {

Event big_event(SeqNo seq = 1, std::size_t padding = 1024) {
  FaaPosition pos;
  pos.flight = 17;
  return make_faa_position(0, seq, pos, padding);
}

TEST(EventSharing, CopySharesPayloadAndPaddingStorage) {
  const Event a = big_event();
  const Event b = a;
  // Same underlying buffers, no deep copy of up to 8 KB per hop.
  EXPECT_EQ(a.padding().data(), b.padding().data());
  EXPECT_EQ(&a.payload(), &b.payload());
  EXPECT_EQ(a, b);
}

TEST(EventSharing, MutablePayloadDetachesFromSharers) {
  Event a = big_event();
  Event b = a;
  auto* pos = b.mutable_as<FaaPosition>();
  ASSERT_NE(pos, nullptr);
  pos->flight = 99;
  EXPECT_NE(&a.payload(), &b.payload());  // detached
  EXPECT_EQ(a.as<FaaPosition>()->flight, 17u);
  EXPECT_EQ(b.as<FaaPosition>()->flight, 99u);
  EXPECT_EQ(a.padding().data(), b.padding().data());  // padding still shared
}

TEST(EventSharing, MutableHeaderDoesNotDetachSharedStorage) {
  Event a = big_event();
  Event b = a;
  b.mutable_header().seq = 2;
  EXPECT_EQ(a.seq(), 1u);
  EXPECT_EQ(b.seq(), 2u);
  // The header lives inline; payload/padding stay shared.
  EXPECT_EQ(a.padding().data(), b.padding().data());
  EXPECT_EQ(&a.payload(), &b.payload());
}

TEST(EventSharing, PaddingOutlivesOriginalCopy) {
  ByteSpan view;
  Event survivor;
  {
    Event original = big_event();
    view = original.padding();
    survivor = original;
  }
  ASSERT_EQ(survivor.padding().size(), 1024u);
  EXPECT_EQ(survivor.padding().data(), view.data());
  // Read through the view: the storage must still be alive.
  EXPECT_TRUE(std::ranges::equal(view, survivor.padding()));
}

TEST(EventSharing, SetPaddingViewAliasesCallerBuffer) {
  auto buffer = std::make_shared<const Bytes>(Bytes(256));
  Event ev = big_event();
  ev.set_padding_view(buffer, ByteSpan(buffer->data() + 16, 100));
  EXPECT_EQ(ev.padding().size(), 100u);
  EXPECT_EQ(ev.padding().data(), buffer->data() + 16);
}

TEST(EventSharing, EncodedCacheSharedByCopiesAndClearedByMutation) {
  Event a = big_event();
  auto frame = std::make_shared<const Bytes>(Bytes{std::byte{1}, std::byte{2}});
  a.set_encoded_cache(frame);
  const Event b = a;  // copy made after population shares the cache
  EXPECT_EQ(b.encoded_cache(), frame);
  a.mutable_header().seq = 5;
  EXPECT_EQ(a.encoded_cache(), nullptr);  // mutation invalidates
  EXPECT_EQ(b.encoded_cache(), frame);    // the copy keeps its own slot
  Event c = b;
  c.set_padding(Bytes(8));
  EXPECT_EQ(c.encoded_cache(), nullptr);
}

TEST(EventSharing, ConcurrentCopiesAreSafe) {
  // Copies taken from many threads must agree on the shared storage and
  // never corrupt the refcounts (TSan-ready smoke; meaningful even without).
  const Event source = big_event(1, 4096);
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        Event copy = source;
        if (copy.padding().data() != source.padding().data()) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace admire::event
