#include "event/vector_timestamp.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace admire::event {
namespace {

TEST(VectorTimestamp, ObserveGrowsAndKeepsMax) {
  VectorTimestamp v;
  v.observe(0, 5);
  v.observe(2, 7);
  EXPECT_EQ(v.component(0), 5u);
  EXPECT_EQ(v.component(1), 0u);
  EXPECT_EQ(v.component(2), 7u);
  v.observe(0, 3);  // stale observation must not regress
  EXPECT_EQ(v.component(0), 5u);
  EXPECT_EQ(v.num_streams(), 3u);
}

TEST(VectorTimestamp, MissingComponentsReadZero) {
  VectorTimestamp v;
  EXPECT_EQ(v.component(9), 0u);
}

TEST(VectorTimestamp, MergeIsComponentMax) {
  VectorTimestamp a, b;
  a.observe(0, 10);
  a.observe(1, 2);
  b.observe(1, 5);
  b.observe(2, 1);
  a.merge(b);
  EXPECT_EQ(a.component(0), 10u);
  EXPECT_EQ(a.component(1), 5u);
  EXPECT_EQ(a.component(2), 1u);
}

TEST(VectorTimestamp, DominatesReflexiveAndPartial) {
  VectorTimestamp a, b;
  a.observe(0, 3);
  b.observe(1, 3);
  EXPECT_TRUE(a.dominates(a));
  EXPECT_FALSE(a.dominates(b));
  EXPECT_FALSE(b.dominates(a));  // incomparable
  VectorTimestamp c = a;
  c.merge(b);
  EXPECT_TRUE(c.dominates(a));
  EXPECT_TRUE(c.dominates(b));
}

TEST(VectorTimestamp, DominatesWithDifferentLengths) {
  VectorTimestamp shorter, longer;
  shorter.observe(0, 5);
  longer.observe(0, 5);
  longer.observe(3, 0);  // trailing zero component
  EXPECT_TRUE(shorter.dominates(longer));
  EXPECT_TRUE(longer.dominates(shorter));
  EXPECT_EQ(shorter, longer);
}

TEST(VectorTimestamp, HappensBefore) {
  VectorTimestamp a, b;
  a.observe(0, 1);
  b.observe(0, 2);
  EXPECT_TRUE(a.happens_before(b));
  EXPECT_FALSE(b.happens_before(a));
  EXPECT_FALSE(a.happens_before(a));
}

TEST(VectorTimestamp, ComponentMin) {
  VectorTimestamp a, b, c;
  a.observe(0, 10);
  a.observe(1, 5);
  b.observe(0, 7);
  b.observe(1, 9);
  c.observe(0, 8);  // no component 1 => treated as 0
  const auto m = VectorTimestamp::component_min({a, b, c});
  EXPECT_EQ(m.component(0), 7u);
  EXPECT_EQ(m.component(1), 0u);
}

TEST(VectorTimestamp, ComponentMinEmptyInput) {
  const auto m = VectorTimestamp::component_min({});
  EXPECT_EQ(m.num_streams(), 0u);
}

TEST(VectorTimestamp, ComponentMinIsDominatedByAll) {
  Rng rng(3);
  std::vector<VectorTimestamp> vts(5);
  for (auto& v : vts) {
    for (StreamId s = 0; s < 3; ++s) v.observe(s, rng.next_below(100));
  }
  const auto m = VectorTimestamp::component_min(vts);
  for (const auto& v : vts) EXPECT_TRUE(v.dominates(m));
}

TEST(VectorTimestamp, TotalOrderConsistent) {
  VectorTimestamp a, b;
  a.observe(0, 1);
  b.observe(0, 2);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a <= a);
}

TEST(VectorTimestamp, ToStringFormat) {
  VectorTimestamp v;
  v.observe(0, 12);
  v.observe(1, 4);
  EXPECT_EQ(v.to_string(), "[s0:12 s1:4]");
}

}  // namespace
}  // namespace admire::event
