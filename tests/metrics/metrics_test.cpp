#include "metrics/metrics.h"

#include <gtest/gtest.h>

namespace admire::metrics {
namespace {

TEST(LatencyRecorder, BasicStats) {
  LatencyRecorder rec(kSecond);
  rec.add(0, 10 * kMilli);
  rec.add(kSecond, 20 * kMilli);
  rec.add(2 * kSecond, 30 * kMilli);
  EXPECT_EQ(rec.count(), 3u);
  EXPECT_DOUBLE_EQ(rec.mean(), 20.0 * kMilli);
  EXPECT_DOUBLE_EQ(rec.max(), 30.0 * kMilli);
  EXPECT_DOUBLE_EQ(rec.percentile(1.0), 30.0 * kMilli);
}

TEST(LatencyRecorder, SeriesBinsByArrivalTime) {
  LatencyRecorder rec(kSecond);
  rec.add(100, 5.0 * kMilli);
  rec.add(200, 15.0 * kMilli);
  rec.add(2 * kSecond + 1, 100.0 * kMilli);
  const auto bins = rec.series_bins();
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[0].n, 2u);
  EXPECT_DOUBLE_EQ(bins[0].mean, 10.0 * kMilli);
  EXPECT_EQ(bins[1].n, 0u);
  EXPECT_EQ(bins[2].n, 1u);
}

TEST(LatencyRecorder, PerturbationIsCoefficientOfVariation) {
  LatencyRecorder steady(kSecond);
  for (int i = 0; i < 100; ++i) steady.add(i, 10 * kMilli);
  EXPECT_NEAR(steady.perturbation(), 0.0, 1e-9);

  LatencyRecorder bursty(kSecond);
  for (int i = 0; i < 100; ++i) {
    bursty.add(i, i % 10 == 0 ? 100 * kMilli : kMilli);
  }
  EXPECT_GT(bursty.perturbation(), 1.0);
}

TEST(LatencyRecorder, EmptyIsSafe) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_DOUBLE_EQ(rec.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rec.perturbation(), 0.0);
  EXPECT_TRUE(rec.series_bins().empty());
}

TEST(PrintCheck, ReturnsVerdict) {
  EXPECT_TRUE(print_check("always-true", true, "detail"));
  EXPECT_FALSE(print_check("always-false", false, "detail"));
}

TEST(PrintFigure, DoesNotCrash) {
  print_figure("Fig. X", "demo", "x", "y",
               {{"curve-a", {{1, 2}, {3, 4}}}, {"curve-b", {}}});
}

}  // namespace
}  // namespace admire::metrics
