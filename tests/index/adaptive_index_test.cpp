// Unit tests for the adaptive (cracking) index: piece evolution, absent
// masks, convergence, hook absorption, reset/reseed, and determinism —
// the src/index invariants the serving plane's completeness proof leans
// on.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "index/adaptive_index.h"

namespace admire::index {
namespace {

constexpr std::uint32_t kFlights = 512;

void populate(ede::OperationalState& state, std::uint32_t flights,
              std::uint32_t first = 1) {
  for (std::uint32_t f = first; f < first + flights; ++f) {
    state.update(f, [](ede::FlightRecord& rec) {
      rec.status = event::FlightStatus::kEnRoute;
    });
  }
}

std::vector<FlightKey> matching_keys(serve::QueryShape shape,
                                     std::uint32_t value,
                                     const ede::OperationalState& state) {
  std::vector<FlightKey> out;
  for (const auto& rec : state.all_flights()) {
    if (serve::query_matches(shape, value, rec.flight)) {
      out.push_back(rec.flight);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(AdaptiveIndex, FirstLookupCracksAndReturnsExactMatches) {
  ede::OperationalState state;
  populate(state, kFlights);
  AdaptiveIndex index(&state);
  EXPECT_FALSE(index.seeded());

  const auto cand = index.candidates(serve::QueryShape::kAirport, 3);
  ASSERT_TRUE(cand.has_value());
  EXPECT_TRUE(index.seeded());
  EXPECT_EQ(cand->keys, matching_keys(serve::QueryShape::kAirport, 3, state));
  EXPECT_GT(cand->crack_keys, 0u);  // the seed piece had to be partitioned
  EXPECT_EQ(index.cracks(), 1u);
  EXPECT_EQ(cand->expected_inserts, state.inserts_total());
  EXPECT_EQ(cand->expected_replaces, state.replaces_total());
}

TEST(AdaptiveIndex, RepeatLookupTouchesNoMixedPieces) {
  ede::OperationalState state;
  populate(state, kFlights);
  AdaptiveIndex index(&state);
  const auto first = index.candidates(serve::QueryShape::kAirline, 5);
  ASSERT_TRUE(first.has_value());
  const std::uint64_t cracks_after_first = index.cracks();

  const auto again = index.candidates(serve::QueryShape::kAirline, 5);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->keys, first->keys);
  EXPECT_EQ(again->crack_keys, 0u);  // resolved run + absent mask only
  EXPECT_EQ(index.cracks(), cracks_after_first);
}

TEST(AdaptiveIndex, HotColumnConvergesColdColumnsStayUntouched) {
  ede::OperationalState state;
  populate(state, kFlights);
  AdaptiveIndex index(&state);
  for (std::uint32_t v = 0; v < serve::kNumAirports; ++v) {
    ASSERT_TRUE(index.candidates(serve::QueryShape::kAirport, v).has_value());
  }
  EXPECT_DOUBLE_EQ(index.coverage(serve::QueryShape::kAirport), 1.0);
  EXPECT_DOUBLE_EQ(index.coverage(serve::QueryShape::kAirline), 0.0);
  EXPECT_DOUBLE_EQ(index.coverage(serve::QueryShape::kRegion), 0.0);
  // Shapes the index does not cover report zero coverage.
  EXPECT_DOUBLE_EQ(index.coverage(serve::QueryShape::kFlight), 0.0);
  EXPECT_DOUBLE_EQ(index.coverage(serve::QueryShape::kFullState), 0.0);
}

TEST(AdaptiveIndex, AbstainsBelowMinKeysAndForUncoveredShapes) {
  ede::OperationalState state;
  populate(state, 8);
  AdaptiveIndex small(&state, IndexConfig{.min_keys = 64});
  EXPECT_FALSE(small.candidates(serve::QueryShape::kAirport, 0).has_value());

  AdaptiveIndex index(&state);
  EXPECT_FALSE(index.candidates(serve::QueryShape::kFlight, 1).has_value());
  EXPECT_FALSE(index.candidates(serve::QueryShape::kFullState, 0).has_value());
}

TEST(AdaptiveIndex, OutOfDomainValueMatchesNothingWithoutCracking) {
  ede::OperationalState state;
  populate(state, kFlights);
  AdaptiveIndex index(&state);
  const auto cand = index.candidates(serve::QueryShape::kRegion, 999);
  ASSERT_TRUE(cand.has_value());
  EXPECT_TRUE(cand->keys.empty());
  EXPECT_EQ(cand->crack_keys, 0u);
  EXPECT_EQ(index.cracks(), 0u);
}

TEST(AdaptiveIndex, NotedInsertIsAbsorbedOnNextLookup) {
  ede::OperationalState state;
  populate(state, kFlights);
  AdaptiveIndex index(&state);
  ASSERT_TRUE(index.candidates(serve::QueryShape::kAirport, 0).has_value());

  // A new flight that derives to airport 0 (keys are 1-based; kFlights is a
  // multiple of kNumAirports, so key kFlights + 16 derives to 0).
  const FlightKey fresh = kFlights + serve::kNumAirports;
  ASSERT_EQ(serve::airport_of(fresh), 0u);
  populate(state, 1, fresh);
  index.note_flight(fresh);
  index.note_flight(fresh);  // duplicate hooks are a no-op

  const auto cand = index.candidates(serve::QueryShape::kAirport, 0);
  ASSERT_TRUE(cand.has_value());
  EXPECT_TRUE(std::binary_search(cand->keys.begin(), cand->keys.end(), fresh));
  EXPECT_EQ(cand->expected_inserts, state.inserts_total());
  EXPECT_EQ(cand->keys, matching_keys(serve::QueryShape::kAirport, 0, state));
  EXPECT_EQ(index.absorbed_keys(), 1u);
}

TEST(AdaptiveIndex, UpdateToKnownFlightIsANoOp) {
  ede::OperationalState state;
  populate(state, kFlights);
  AdaptiveIndex index(&state);
  const auto before = index.candidates(serve::QueryShape::kRegion, 1);
  ASSERT_TRUE(before.has_value());
  state.update(7, [](ede::FlightRecord& rec) { rec.gate = 42; });
  index.note_flight(7);  // attributes derive from the key: nothing moves
  const auto after = index.candidates(serve::QueryShape::kRegion, 1);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->keys, before->keys);
  EXPECT_EQ(index.absorbed_keys(), 0u);
}

TEST(AdaptiveIndex, ResetTearsDownAndReseedsFromTheNewTable) {
  ede::OperationalState state;
  populate(state, kFlights);
  AdaptiveIndex index(&state);
  ASSERT_TRUE(index.candidates(serve::QueryShape::kAirport, 1).has_value());

  state.clear();  // snapshot restore / rejoin path
  populate(state, 64, /*first=*/1000);
  index.reset();
  EXPECT_FALSE(index.seeded());
  EXPECT_EQ(index.resets(), 1u);

  const auto cand = index.candidates(serve::QueryShape::kAirport, 1);
  ASSERT_TRUE(cand.has_value());
  EXPECT_EQ(cand->keys, matching_keys(serve::QueryShape::kAirport, 1, state));
  EXPECT_EQ(cand->expected_replaces, state.replaces_total());
}

TEST(AdaptiveIndex, CountersLetGetManyProveCompleteness) {
  ede::OperationalState state;
  populate(state, kFlights);
  AdaptiveIndex index(&state);
  const auto cand = index.candidates(serve::QueryShape::kAirline, 2);
  ASSERT_TRUE(cand.has_value());
  const auto got = state.get_many(cand->keys);
  EXPECT_EQ(got.missing, 0u);
  EXPECT_EQ(got.inserts, cand->expected_inserts);
  EXPECT_EQ(got.replaces, cand->expected_replaces);

  // A racing insert the index has NOT absorbed must fail the proof.
  populate(state, 1, /*first=*/kFlights + 1);
  const auto stale = state.get_many(cand->keys);
  EXPECT_NE(stale.inserts, cand->expected_inserts);
}

TEST(AdaptiveIndex, IdenticalQuerySequencesEvolveIdentically) {
  ede::OperationalState state;
  populate(state, kFlights);
  AdaptiveIndex a(&state);
  AdaptiveIndex b(&state);
  const std::uint32_t values[] = {3, 0, 3, 7, 1, 15, 2, 3};
  for (const std::uint32_t v : values) {
    const auto ca = a.candidates(serve::QueryShape::kAirport, v);
    const auto cb = b.candidates(serve::QueryShape::kAirport, v);
    ASSERT_TRUE(ca.has_value());
    ASSERT_TRUE(cb.has_value());
    EXPECT_EQ(ca->keys, cb->keys);
    EXPECT_EQ(ca->crack_keys, cb->crack_keys);
  }
  EXPECT_EQ(a.piece_count(), b.piece_count());
  EXPECT_EQ(a.cracks(), b.cracks());
  EXPECT_EQ(a.crack_keys_total(), b.crack_keys_total());
  EXPECT_DOUBLE_EQ(a.coverage(serve::QueryShape::kAirport),
                   b.coverage(serve::QueryShape::kAirport));
}

TEST(AdaptiveIndex, InstrumentExportsTheIndexFamily) {
  ede::OperationalState state;
  populate(state, kFlights);
  obs::Registry registry;  // must outlive the index's probe group
  AdaptiveIndex index(&state);
  index.instrument(registry, "central");
  ASSERT_TRUE(index.candidates(serve::QueryShape::kAirport, 4).has_value());

  const auto snap = registry.snapshot();
  EXPECT_GT(snap.counter_or("index.central.cracks_total"), 0u);
  EXPECT_GT(snap.counter_or("index.central.crack_keys_total"), 0u);
  EXPECT_EQ(snap.counter_or("index.central.resets_total"), 0u);
  EXPECT_EQ(snap.gauge_or("index.central.keys"),
            static_cast<double>(kFlights));
  EXPECT_GT(snap.gauge_or("index.central.pieces"), 0.0);
  EXPECT_GT(snap.gauge_or("index.central.coverage.airport"), 0.0);
}

}  // namespace
}  // namespace admire::index
