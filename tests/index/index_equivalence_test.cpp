// Randomized equivalence property: a RequestHandler with the adaptive
// index enabled must answer byte-identically to the scan-only oracle
// under any interleaving of updates, queries, delayed update hooks and
// whole-table replaces (rejoin/snapshot restore). The index may only ever
// change cost — never answers. Deterministic seeds, so a failure replays.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "ede/operational_state.h"
#include "serve/request_handler.h"

namespace admire::serve {
namespace {

constexpr std::uint32_t kKeySpace = 192;

Request random_query(Rng& rng) {
  Request req;
  req.id = rng.next_u64();
  switch (rng.next_below(5)) {
    case 0:
      req.shape = QueryShape::kFlight;
      req.key = static_cast<std::uint32_t>(1 + rng.next_below(kKeySpace));
      break;
    case 1:
      req.shape = QueryShape::kAirport;
      req.key = static_cast<std::uint32_t>(rng.next_below(kNumAirports));
      break;
    case 2:
      req.shape = QueryShape::kAirline;
      req.key = static_cast<std::uint32_t>(rng.next_below(kNumAirlines));
      break;
    case 3:
      req.shape = QueryShape::kRegion;
      req.key = static_cast<std::uint32_t>(rng.next_below(kNumRegions));
      break;
    default:
      req.shape = QueryShape::kFullState;
      req.key = 0;
      break;
  }
  return req;
}

void apply_update(ede::OperationalState& state, FlightKey key,
                  std::uint32_t salt) {
  state.update(key, [salt](ede::FlightRecord& rec) {
    rec.status = event::FlightStatus::kBoarding;
    rec.gate = static_cast<std::uint16_t>(salt % 131);
    rec.passengers_boarded = salt;
    rec.app_body.assign(1 + salt % 24, static_cast<std::byte>(salt));
  });
}

/// One run of the property machine. `cache_on` exercises the indexed
/// handler with its snapshot cache too — invalidation must keep cached
/// indexed answers equivalent as well.
void run_property(std::uint64_t seed, bool cache_on) {
  SCOPED_TRACE(::testing::Message() << "seed=" << seed
                                    << " cache_on=" << cache_on);
  ede::OperationalState state;
  ServeConfig idx_cfg;
  idx_cfg.index_enabled = true;
  idx_cfg.cache_enabled = cache_on;
  ServeConfig scan_cfg;
  scan_cfg.index_enabled = false;
  scan_cfg.cache_enabled = false;  // the oracle always scans
  RequestHandler indexed(&state, idx_cfg);
  RequestHandler scan(&state, scan_cfg);

  Rng rng(seed);
  std::vector<FlightKey> delayed_hooks;  // update applied, hook not yet run
  std::uint32_t salt = 0;
  std::uint64_t queries = 0;

  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t op = rng.next_below(100);
    if (op < 45) {  // update (sometimes with a delayed hook: the race)
      const FlightKey key =
          static_cast<FlightKey>(1 + rng.next_below(kKeySpace));
      apply_update(state, key, ++salt);
      scan.on_state_update(key);
      // Delayed hooks model the update/build race (only without the
      // cache: invalidation is synchronous in both real runtimes, so a
      // delayed hook would violate the cache contract, not exercise it).
      if (!cache_on && rng.next_bool(0.15)) {
        delayed_hooks.push_back(key);  // index briefly behind the table
      } else {
        indexed.on_state_update(key);
      }
    } else if (op < 50) {  // deliver the delayed hooks (the race resolves)
      for (const FlightKey key : delayed_hooks) {
        indexed.on_state_update(key);
      }
      delayed_hooks.clear();
    } else if (op < 53) {  // rejoin / snapshot restore: table swapped
      state.clear();
      const std::uint64_t reseed = 1 + rng.next_below(kKeySpace);
      for (std::uint64_t k = 1; k <= reseed; ++k) {
        apply_update(state, static_cast<FlightKey>(k), ++salt);
      }
      delayed_hooks.clear();
      indexed.on_state_replaced();
      scan.on_state_replaced();
    } else {  // query both handlers, require byte equality
      const Request req = random_query(rng);
      const HandleOutcome a = indexed.handle_admitted(req);
      const HandleOutcome b = scan.handle_admitted(req);
      ASSERT_EQ(a.response.code, b.response.code);
      if (!cache_on) {
        // A cache hit legitimately reports the (older) version it was
        // built at; without the cache both sides read the live table.
        ASSERT_EQ(a.response.version, b.response.version)
            << "shape=" << query_shape_name(req.shape) << " key=" << req.key;
      }
      ASSERT_NE(a.response.state, nullptr);
      ASSERT_NE(b.response.state, nullptr);
      ASSERT_EQ(*a.response.state, *b.response.state)
          << "shape=" << query_shape_name(req.shape) << " key=" << req.key;
      ++queries;
    }
  }

  EXPECT_GT(queries, 0u);
  // The machine must have exercised the interesting paths: indexed builds
  // happened, and delayed hooks forced at least one completeness fallback.
  EXPECT_GT(indexed.builds_indexed(), 0u);
  if (!cache_on) EXPECT_GT(indexed.index_fallbacks(), 0u);
}

TEST(IndexEquivalence, RandomInterleavingsMatchTheScanOracle) {
  for (const std::uint64_t seed : {0x1DE7ull, 0xC0FFEEull, 0xBADF00Dull}) {
    run_property(seed, /*cache_on=*/false);
  }
}

TEST(IndexEquivalence, CachedIndexedHandlerStaysEquivalent) {
  for (const std::uint64_t seed : {0x5EEDull, 0xFACADEull}) {
    run_property(seed, /*cache_on=*/true);
  }
}

TEST(IndexEquivalence, FallbackRealignsAfterDelayedHooksArrive) {
  ede::OperationalState state;
  for (std::uint32_t k = 1; k <= 64; ++k) apply_update(state, k, k);
  ServeConfig cfg;
  cfg.cache_enabled = false;
  RequestHandler indexed(&state, cfg);

  Request req;
  req.id = 1;
  req.shape = QueryShape::kAirport;
  req.key = 2;
  ASSERT_EQ(indexed.handle_admitted(req).index_used, true);  // seeds + cracks

  // An insert whose hook never ran: the completeness proof must fail and
  // the build must fall back to the scan (still correct).
  apply_update(state, 65, 65);
  const HandleOutcome stale = indexed.handle_admitted(req);
  EXPECT_FALSE(stale.index_used);
  EXPECT_EQ(indexed.index_fallbacks(), 1u);

  // Once the hook arrives the proof holds again — no permanent scan mode.
  indexed.on_state_update(65);
  const HandleOutcome realigned = indexed.handle_admitted(req);
  EXPECT_TRUE(realigned.index_used);
}

}  // namespace
}  // namespace admire::serve
