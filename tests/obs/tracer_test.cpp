#include "obs/tracer.h"

#include <gtest/gtest.h>

#include "obs/registry.h"

namespace admire::obs {
namespace {

TEST(Tracer, SamplesOneInN) {
  Tracer tracer(/*sample_every=*/4);
  int sampled = 0;
  for (SeqNo seq = 0; seq < 100; ++seq) {
    if (tracer.sampled(seq)) ++sampled;
  }
  EXPECT_EQ(sampled, 25);
  EXPECT_TRUE(tracer.sampled(0));
  EXPECT_FALSE(tracer.sampled(1));
  EXPECT_TRUE(Tracer(1).sampled(7));  // sample_every=1 traces everything
}

TEST(Tracer, KeyOfSeparatesStreams) {
  EXPECT_NE(Tracer::key_of(0, 5), Tracer::key_of(1, 5));
  EXPECT_NE(Tracer::key_of(2, 5), Tracer::key_of(2, 6));
  EXPECT_EQ(Tracer::key_of(3, 9), Tracer::key_of(3, 9));
}

TEST(Tracer, ApplyCompletesSpanWithOrderedStages) {
  Tracer tracer(1, 16);
  const auto key = Tracer::key_of(0, 1);
  tracer.record(key, Stage::kIngest, 100);
  tracer.record(key, Stage::kRules, 150);
  tracer.record(key, Stage::kReadyQueue, 200);
  tracer.record(key, Stage::kMirrorSend, 400);
  EXPECT_EQ(tracer.spans_completed(), 0u);  // still active
  tracer.record(key, Stage::kApply, 500);
  EXPECT_EQ(tracer.spans_started(), 1u);
  EXPECT_EQ(tracer.spans_completed(), 1u);
  const auto spans = tracer.completed();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].at[static_cast<std::size_t>(Stage::kIngest)], 100);
  EXPECT_EQ(spans[0].at[static_cast<std::size_t>(Stage::kApply)], 500);
}

TEST(Tracer, FinishClosesDiscardedEventSpanEarly) {
  Tracer tracer(1, 16);
  const auto key = Tracer::key_of(0, 2);
  tracer.record(key, Stage::kIngest, 100);
  tracer.record(key, Stage::kRules, 120);
  tracer.finish(key);  // rule-discarded: never reaches the ready queue
  const auto spans = tracer.completed();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].at[static_cast<std::size_t>(Stage::kReadyQueue)], 0);
}

TEST(Tracer, FlushQuiescesActiveSpansAndRingIsBounded) {
  Tracer tracer(1, /*capacity=*/4);
  for (SeqNo seq = 0; seq < 10; ++seq) {
    tracer.record(Tracer::key_of(0, seq), Stage::kIngest, 100 + seq);
  }
  tracer.flush();
  EXPECT_EQ(tracer.spans_started(), 10u);
  EXPECT_LE(tracer.completed().size(), 4u);  // ring keeps the newest only
  tracer.flush();                            // idempotent on empty
  EXPECT_LE(tracer.completed().size(), 4u);
}

TEST(Tracer, FeedsStageLatencyHistograms) {
  Registry registry;
  Tracer tracer(1, 16, &registry);
  const auto key = Tracer::key_of(1, 1);
  tracer.record(key, Stage::kIngest, 1000);
  tracer.record(key, Stage::kReadyQueue, 1400);
  tracer.record(key, Stage::kMirrorSend, 1900);
  tracer.record(key, Stage::kApply, 2500);
  const auto snap = registry.snapshot();
  const auto* ready = snap.histogram("trace.ingest_to_ready_ns");
  ASSERT_NE(ready, nullptr);
  EXPECT_EQ(ready->count, 1u);
  EXPECT_DOUBLE_EQ(ready->sum, 400.0);
  const auto* send = snap.histogram("trace.ready_to_send_ns");
  ASSERT_NE(send, nullptr);
  EXPECT_DOUBLE_EQ(send->sum, 500.0);
  const auto* apply = snap.histogram("trace.ingest_to_apply_ns");
  ASSERT_NE(apply, nullptr);
  EXPECT_DOUBLE_EQ(apply->sum, 1500.0);
}

TEST(Tracer, StageNamesAreStable) {
  EXPECT_STREQ(stage_name(Stage::kIngest), "ingest");
  EXPECT_STREQ(stage_name(Stage::kApply), "apply");
}

}  // namespace
}  // namespace admire::obs
