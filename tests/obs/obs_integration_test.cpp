// End-to-end observability check: a threaded cluster run must export a
// JSON-lines snapshot carrying the OBSERVABILITY.md headline metrics —
// queue depths, per-rule suppression counts, checkpoint round latency and
// transport byte counters — with nonzero values for the traffic it saw.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cluster/cluster.h"
#include "sim/sim_cluster.h"
#include "workload/scenario.h"

namespace admire {
namespace {

TEST(ObsIntegration, ThreadedClusterExportsLiveMetrics) {
  const std::string path = ::testing::TempDir() + "admire_obs_export.jsonl";
  std::remove(path.c_str());

  cluster::ClusterConfig config;
  config.num_mirrors = 2;
  config.params.function = rules::selective_mirroring(/*overwrite_max=*/8,
                                                      /*checkpoint_every=*/50);
  config.obs_export_path = path;
  config.obs_export_interval = std::chrono::milliseconds(50);
  config.trace_sample_every = 16;
  cluster::Cluster cluster(config);
  cluster.start();

  workload::ScenarioConfig scenario;
  scenario.faa_events = 600;
  scenario.num_flights = 10;
  scenario.event_padding = 256;
  const auto trace = workload::make_ois_trace(scenario);
  for (const auto& item : trace.items) {
    ASSERT_TRUE(cluster.ingest(item.ev).is_ok());
  }
  cluster.drain();
  cluster.checkpoint_and_wait();
  cluster.stop();  // exporter writes its final snapshot before shutdown

  // Registry values: queue flow, rule suppression, checkpoint latency and
  // wire traffic all observed the run.
  const auto snap = cluster.obs().snapshot();
  EXPECT_GT(snap.gauge_or("queue.central.ready.pushed_total"), 0.0);
  EXPECT_GT(snap.gauge_or("queue.central.ready.high_water"), 0.0);
  EXPECT_GT(snap.gauge_or("queue.mirror1.backup.high_water"), 0.0);
  EXPECT_GT(snap.counter_or("rules.central.seen_total"), 0u);
  EXPECT_GT(snap.counter_or("rules.central.discarded_overwritten_total"), 0u);
  const auto* round_latency =
      snap.histogram("checkpoint.coordinator.round_latency_ns");
  ASSERT_NE(round_latency, nullptr);
  EXPECT_GT(round_latency->count, 0u);
  EXPECT_GT(snap.counter_or("transport.channel.central.data.bytes_total"), 0u);
  EXPECT_GT(snap.counter_or("transport.channel.central.updates.msgs_total"),
            0u);
  // Selective mirroring: fewer wire events than events seen.
  EXPECT_LT(snap.counter_or("transport.channel.central.data.msgs_total"),
            snap.counter_or("rules.central.seen_total"));
  // The 1-in-16 tracer completed spans through to apply.
  ASSERT_NE(cluster.central().tracer(), nullptr);
  EXPECT_GT(cluster.central().tracer()->spans_completed(), 0u);
  const auto* apply = snap.histogram("trace.ingest_to_apply_ns");
  ASSERT_NE(apply, nullptr);
  EXPECT_GT(apply->count, 0u);

  // Exported file: at least one JSON line naming each headline metric.
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "export file missing: " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string contents = buf.str();
  ASSERT_FALSE(contents.empty());
  std::string last_line;
  std::istringstream lines(contents);
  for (std::string line; std::getline(lines, line);) {
    if (!line.empty()) last_line = line;
  }
  ASSERT_FALSE(last_line.empty());
  EXPECT_EQ(last_line.front(), '{');
  EXPECT_EQ(last_line.back(), '}');
  for (const char* metric :
       {"queue.central.ready.depth", "queue.central.backup.depth",
        "queue.mirror1.backup.depth", "rules.central.discarded_overwritten_total",
        "checkpoint.coordinator.round_latency_ns",
        "transport.channel.central.data.bytes_total"}) {
    EXPECT_NE(last_line.find(metric), std::string::npos)
        << "final snapshot missing " << metric;
  }
  std::remove(path.c_str());
}

TEST(ObsIntegration, SimAndThreadedShareTheMetricVocabulary) {
  // The sim emits the same names (OBSERVABILITY.md: one vocabulary), so
  // figure benches and production dashboards read identical keys.
  sim::SimConfig config;
  config.num_mirrors = 1;
  config.params.function = rules::selective_mirroring(8);
  sim::SimCluster sim_cluster(std::move(config));
  workload::ScenarioConfig scenario;
  scenario.faa_events = 400;
  scenario.num_flights = 10;
  const auto r = sim_cluster.run(workload::make_ois_trace(scenario), {});
  ASSERT_NE(r.obs, nullptr);
  const auto snap = r.obs->snapshot();
  EXPECT_GT(snap.counter_or("rules.central.seen_total"), 0u);
  EXPECT_GT(snap.counter_or("rules.central.discarded_overwritten_total"), 0u);
  EXPECT_GT(snap.counter_or("transport.channel.central.data.bytes_total"), 0u);
  EXPECT_GT(snap.gauge_or("queue.central.ready.pushed_total"), 0.0);
  const auto* round_latency =
      snap.histogram("checkpoint.coordinator.round_latency_ns");
  ASSERT_NE(round_latency, nullptr);
  EXPECT_GT(round_latency->count, 0u);
}

}  // namespace
}  // namespace admire
