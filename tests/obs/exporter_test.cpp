#include "obs/exporter.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

namespace admire::obs {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::size_t count_lines(const std::string& path) {
  std::ifstream in(path);
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) ++lines;
  }
  return lines;
}

TEST(Exporter, ExportNowAppendsOneJsonLinePerCall) {
  const std::string path = temp_path("exporter_now.jsonl");
  std::remove(path.c_str());
  Registry registry;
  registry.counter("a.total").inc(7);
  SnapshotExporter exporter(registry, {.path = path});
  ASSERT_TRUE(exporter.export_now().is_ok());
  ASSERT_TRUE(exporter.export_now().is_ok());
  EXPECT_EQ(count_lines(path), 2u);
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"a.total\":7"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Exporter, PeriodicThreadWritesAndStopFlushesFinalSnapshot) {
  const std::string path = temp_path("exporter_periodic.jsonl");
  std::remove(path.c_str());
  Registry registry;
  registry.counter("b.total").inc();
  SnapshotExporter exporter(
      registry, {.path = path, .interval = std::chrono::milliseconds(20)});
  ASSERT_TRUE(exporter.start().is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(70));
  exporter.stop();
  EXPECT_GE(exporter.exports_written(), 2u);  // ticks + final snapshot
  EXPECT_GE(count_lines(path), 2u);
  exporter.stop();  // idempotent
  std::remove(path.c_str());
}

TEST(Exporter, StartFailsCleanlyOnUnwritablePath) {
  Registry registry;
  SnapshotExporter exporter(registry,
                            {.path = "/nonexistent-dir/nope/metrics.jsonl"});
  EXPECT_FALSE(exporter.start().is_ok());
  exporter.stop();  // safe even though start failed
}

TEST(Exporter, DumpHumanWritesReadableSnapshot) {
  Registry registry;
  registry.counter("c.total").inc(3);
  registry.gauge("c.depth").set(2.0);
  SnapshotExporter exporter(registry, {});
  const std::string path = temp_path("exporter_human.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  exporter.dump_human(f);
  std::fclose(f);
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("c.total"), std::string::npos);
  EXPECT_NE(contents.find("c.depth"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace admire::obs
