#include "obs/registry.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace admire::obs {
namespace {

TEST(Registry, CounterFindOrCreateReturnsStableInstrument) {
  Registry registry;
  Counter& a = registry.counter("x.total");
  Counter& b = registry.counter("x.total");
  EXPECT_EQ(&a, &b);
  a.inc();
  b.inc(4);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(registry.num_instruments(), 1u);
}

TEST(Registry, GaugeSetAddAndHighWater) {
  Registry registry;
  Gauge& g = registry.gauge("depth");
  g.set(3.0);
  g.add(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  Gauge& hw = registry.gauge("hw");
  hw.set_max(7.0);
  hw.set_max(4.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(hw.value(), 7.0);
  hw.set_max(9.0);
  EXPECT_DOUBLE_EQ(hw.value(), 9.0);
}

TEST(Registry, ConcurrentCountersLoseNoIncrements) {
  Registry registry;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Half the threads race find-or-create, all race the increments.
      Counter& c = registry.counter("contended.total");
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("contended.total").value(), kThreads * kPerThread);
}

TEST(Registry, ConcurrentRegistrationAndSnapshotsDoNotRace) {
  Registry registry;
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load()) {
      const auto snap = registry.snapshot();
      ASSERT_LE(snap.counters.size(), 64u);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&registry, t] {
      for (int i = 0; i < 16; ++i) {
        registry.counter("w" + std::to_string(t) + ".c" + std::to_string(i))
            .inc();
        registry.histogram("w" + std::to_string(t) + ".h",
                           Histogram::latency_bounds())
            .observe(1000.0);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  snapshotter.join();
  EXPECT_EQ(registry.snapshot().counters.size(), 64u);
}

TEST(Histogram, InclusiveUpperBoundsAndOverflowBucket) {
  Histogram h({10.0, 100.0, 1000.0});
  h.observe(10.0);    // lands in bucket 0: bounds are inclusive
  h.observe(10.001);  // bucket 1
  h.observe(100.0);   // bucket 1
  h.observe(1000.0);  // bucket 2
  h.observe(5000.0);  // +inf overflow
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), (10.0 + 10.0 + 100.0 + 1000.0 + 5000.0) / 5.0);
}

TEST(Histogram, FirstRegistrationWinsOnBounds) {
  Registry registry;
  Histogram& a = registry.histogram("h", {1.0, 2.0});
  Histogram& b = registry.histogram("h", {99.0});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.bounds().size(), 2u);
}

TEST(Registry, ProbesSampledAtSnapshotTimeOnly) {
  Registry registry;
  int calls = 0;
  const auto id = registry.register_probe("probe.depth", [&calls] {
    ++calls;
    return 42.0;
  });
  EXPECT_EQ(calls, 0);  // registration alone never samples
  const auto snap = registry.snapshot();
  EXPECT_EQ(calls, 1);
  EXPECT_DOUBLE_EQ(snap.gauge_or("probe.depth"), 42.0);
  registry.unregister_probe(id);
  EXPECT_EQ(registry.snapshot().gauges.size(), 0u);
}

TEST(Registry, ProbeGroupUnregistersOnDestruction) {
  Registry registry;
  {
    ProbeGroup group;
    group.add(registry, "a", [] { return 1.0; });
    group.add(registry, "b", [] { return 2.0; });
    EXPECT_EQ(registry.snapshot().gauges.size(), 2u);
  }
  EXPECT_EQ(registry.snapshot().gauges.size(), 0u);
}

TEST(Snapshot, LookupHelpersAndJsonLine) {
  Registry registry;
  registry.counter("c.total").inc(3);
  registry.gauge("g.depth").set(1.5);
  registry.histogram("h.ns", {100.0}).observe(50.0);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or("c.total"), 3u);
  EXPECT_EQ(snap.counter_or("missing", 9u), 9u);
  EXPECT_DOUBLE_EQ(snap.gauge_or("g.depth"), 1.5);
  ASSERT_NE(snap.histogram("h.ns"), nullptr);
  EXPECT_EQ(snap.histogram("h.ns")->count, 1u);
  EXPECT_EQ(snap.histogram("nope"), nullptr);

  const std::string json = snap.to_json_line();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"c.total\":3"), std::string::npos);
  EXPECT_NE(json.find("h.ns"), std::string::npos);
  EXPECT_NE(snap.to_human().find("c.total"), std::string::npos);
}

}  // namespace
}  // namespace admire::obs
