#include "rules/rule_engine.h"

#include <gtest/gtest.h>

namespace admire::rules {
namespace {

using event::EventType;
using event::FlightStatus;

event::Event faa(FlightKey flight, SeqNo seq) {
  event::FaaPosition pos;
  pos.flight = flight;
  return event::make_faa_position(0, seq, pos);
}

event::Event delta(FlightKey flight, SeqNo seq, FlightStatus status) {
  event::DeltaStatus st;
  st.flight = flight;
  st.status = status;
  return event::make_delta_status(1, seq, st);
}

TEST(RuleEngine, SimpleFunctionAcceptsEverything) {
  RuleEngine engine(MirroringParams{.function = simple_mirroring()});
  queueing::StatusTable table;
  for (SeqNo i = 1; i <= 20; ++i) {
    EXPECT_EQ(engine.on_receive(faa(1, i), table).action,
              ReceiveAction::kAccept);
  }
  EXPECT_EQ(engine.counters().accepted, 20u);
  EXPECT_EQ(engine.counters().total_seen(), 20u);
}

TEST(RuleEngine, OverwriteKeepsOneOfEveryRun) {
  RuleEngine engine(MirroringParams{.function = selective_mirroring(4)});
  queueing::StatusTable table;
  int accepted = 0;
  for (SeqNo i = 1; i <= 16; ++i) {
    const auto d = engine.on_receive(faa(1, i), table);
    if (d.action == ReceiveAction::kAccept) ++accepted;
  }
  EXPECT_EQ(accepted, 4);  // 1 of every 4
  EXPECT_EQ(engine.counters().discarded_overwritten, 12u);
}

TEST(RuleEngine, OverwriteRunsArePerFlight) {
  RuleEngine engine(MirroringParams{.function = selective_mirroring(4)});
  queueing::StatusTable table;
  // Interleave two flights: each flight's first event must be accepted.
  EXPECT_EQ(engine.on_receive(faa(1, 1), table).action, ReceiveAction::kAccept);
  EXPECT_EQ(engine.on_receive(faa(2, 2), table).action, ReceiveAction::kAccept);
  EXPECT_EQ(engine.on_receive(faa(1, 3), table).action,
            ReceiveAction::kDiscardOverwritten);
  EXPECT_EQ(engine.on_receive(faa(2, 4), table).action,
            ReceiveAction::kDiscardOverwritten);
}

TEST(RuleEngine, OverwriteDoesNotAffectStatusEvents) {
  RuleEngine engine(MirroringParams{.function = selective_mirroring(4)});
  queueing::StatusTable table;
  for (SeqNo i = 1; i <= 8; ++i) {
    EXPECT_EQ(
        engine.on_receive(delta(1, i, FlightStatus::kBoarding), table).action,
        ReceiveAction::kAccept);
  }
}

TEST(RuleEngine, ExplicitOverwriteRuleBeatsFunctionDefault) {
  MirroringParams params;
  params.function = selective_mirroring(4);
  params.overwrite_rules.push_back(
      OverwriteRule{EventType::kFaaPosition, 2});
  RuleEngine engine(std::move(params));
  queueing::StatusTable table;
  int accepted = 0;
  for (SeqNo i = 1; i <= 8; ++i) {
    accepted += engine.on_receive(faa(1, i), table).action ==
                ReceiveAction::kAccept;
  }
  EXPECT_EQ(accepted, 4);  // 1 of every 2, not 1 of every 4
}

TEST(RuleEngine, ComplexSeqSuppressesAfterTrigger) {
  // The paper's example: discard FAA positions after Delta "flight landed".
  MirroringParams params;
  params.function = simple_mirroring();
  ComplexSeqRule rule;
  rule.trigger_type = EventType::kDeltaStatus;
  rule.trigger_value = match_delta_status(FlightStatus::kLanded);
  rule.suppressed_type = EventType::kFaaPosition;
  params.complex_seq_rules.push_back(std::move(rule));
  RuleEngine engine(std::move(params));
  queueing::StatusTable table;

  EXPECT_EQ(engine.on_receive(faa(1, 1), table).action, ReceiveAction::kAccept);
  EXPECT_EQ(engine.on_receive(delta(1, 2, FlightStatus::kLanded), table).action,
            ReceiveAction::kAccept);  // the trigger itself is mirrored
  EXPECT_EQ(engine.on_receive(faa(1, 3), table).action,
            ReceiveAction::kDiscardSuppressed);
  // A different flight is unaffected.
  EXPECT_EQ(engine.on_receive(faa(2, 4), table).action, ReceiveAction::kAccept);
  EXPECT_EQ(engine.counters().discarded_suppressed, 1u);
}

TEST(RuleEngine, ComplexSeqTriggerValueMustMatch) {
  MirroringParams params;
  params.function = simple_mirroring();
  ComplexSeqRule rule;
  rule.trigger_type = EventType::kDeltaStatus;
  rule.trigger_value = match_delta_status(FlightStatus::kLanded);
  rule.suppressed_type = EventType::kFaaPosition;
  params.complex_seq_rules.push_back(std::move(rule));
  RuleEngine engine(std::move(params));
  queueing::StatusTable table;

  engine.on_receive(delta(1, 1, FlightStatus::kDeparted), table);  // no match
  EXPECT_EQ(engine.on_receive(faa(1, 2), table).action, ReceiveAction::kAccept);
}

TEST(RuleEngine, ComplexTupleCollapsesIntoDerivedEvent) {
  // landed + at-runway + at-gate => FLIGHT_ARRIVED (paper §3.2.1).
  RuleEngine engine(ois_default_rules(simple_mirroring()));
  queueing::StatusTable table;

  auto d1 = engine.on_receive(delta(3, 1, FlightStatus::kLanded), table);
  EXPECT_EQ(d1.action, ReceiveAction::kAbsorbIntoTuple);
  EXPECT_FALSE(d1.combined.has_value());
  auto d2 = engine.on_receive(delta(3, 2, FlightStatus::kAtRunway), table);
  EXPECT_EQ(d2.action, ReceiveAction::kAbsorbIntoTuple);
  auto d3 = engine.on_receive(delta(3, 3, FlightStatus::kAtGate), table);
  EXPECT_EQ(d3.action, ReceiveAction::kAbsorbIntoTuple);
  ASSERT_TRUE(d3.combined.has_value());
  const auto* derived = d3.combined->as<event::Derived>();
  ASSERT_NE(derived, nullptr);
  EXPECT_EQ(derived->kind, event::Derived::Kind::kFlightArrived);
  EXPECT_EQ(derived->status, FlightStatus::kArrived);
  EXPECT_EQ(d3.combined->key(), 3u);
  EXPECT_EQ(d3.combined->header().coalesced, 3u);
  EXPECT_EQ(engine.counters().emitted_combined, 1u);
}

TEST(RuleEngine, TupleCompletionSuppressesPositions) {
  RuleEngine engine(ois_default_rules(simple_mirroring()));
  queueing::StatusTable table;
  engine.on_receive(delta(3, 1, FlightStatus::kLanded), table);
  engine.on_receive(delta(3, 2, FlightStatus::kAtRunway), table);
  engine.on_receive(delta(3, 3, FlightStatus::kAtGate), table);
  // "The presence of such an event implies that all position events for
  // that flight can be discarded from the queues."
  EXPECT_EQ(engine.on_receive(faa(3, 4), table).action,
            ReceiveAction::kDiscardSuppressed);
}

TEST(RuleEngine, TupleOrderDoesNotMatter) {
  RuleEngine engine(ois_default_rules(simple_mirroring()));
  queueing::StatusTable table;
  engine.on_receive(delta(4, 1, FlightStatus::kAtGate), table);
  engine.on_receive(delta(4, 2, FlightStatus::kLanded), table);
  auto d = engine.on_receive(delta(4, 3, FlightStatus::kAtRunway), table);
  EXPECT_TRUE(d.combined.has_value());
}

TEST(RuleEngine, ControlEventsBypassRules) {
  RuleEngine engine(ois_default_rules(selective_mirroring(4)));
  queueing::StatusTable table;
  const auto d = engine.on_receive(event::make_control(to_bytes("ctl")), table);
  EXPECT_EQ(d.action, ReceiveAction::kAccept);
}

TEST(RuleEngine, InstallSwapsConfiguration) {
  RuleEngine engine(MirroringParams{.function = simple_mirroring()});
  queueing::StatusTable table;
  EXPECT_EQ(engine.on_receive(faa(1, 1), table).action, ReceiveAction::kAccept);
  EXPECT_EQ(engine.on_receive(faa(1, 2), table).action, ReceiveAction::kAccept);

  engine.install(MirroringParams{.function = selective_mirroring(2)});
  // Run counter carried over: positions 2,3 for this flight continue a run.
  int accepted = 0;
  for (SeqNo i = 3; i <= 6; ++i) {
    accepted += engine.on_receive(faa(1, i), table).action ==
                ReceiveAction::kAccept;
  }
  EXPECT_EQ(accepted, 2);
}

TEST(RuleEngine, StatusTableRecordsFlightStatus) {
  RuleEngine engine(MirroringParams{.function = simple_mirroring()});
  queueing::StatusTable table;
  engine.on_receive(delta(7, 1, FlightStatus::kBoarding), table);
  EXPECT_EQ(*table.flight_status(7), FlightStatus::kBoarding);
}

TEST(RuleEngine, NoLossAccounting) {
  RuleEngine engine(ois_default_rules(selective_mirroring(8)));
  queueing::StatusTable table;
  const SeqNo kTotal = 200;
  for (SeqNo i = 1; i <= kTotal; ++i) {
    engine.on_receive(faa(1 + (i % 5), i), table);
  }
  const auto& c = engine.counters();
  // Every event is accounted for exactly once.
  EXPECT_EQ(c.total_seen(), kTotal);
}

}  // namespace
}  // namespace admire::rules
