#include "rules/params.h"

#include <gtest/gtest.h>

namespace admire::rules {
namespace {

TEST(Params, SimplePreset) {
  const auto spec = simple_mirroring();
  EXPECT_EQ(spec.name, "simple");
  EXPECT_FALSE(spec.coalesce_enabled);
  EXPECT_EQ(spec.overwrite_max, 1u);
  EXPECT_EQ(spec.checkpoint_every, 50u);
}

TEST(Params, SelectivePreset) {
  const auto spec = selective_mirroring(8, 100);
  EXPECT_EQ(spec.name, "selective");
  EXPECT_EQ(spec.overwrite_max, 8u);
  EXPECT_EQ(spec.checkpoint_every, 100u);
}

TEST(Params, Fig9Functions) {
  const auto a = fig9_function_a();
  EXPECT_TRUE(a.coalesce_enabled);
  EXPECT_EQ(a.coalesce_max, 10u);
  EXPECT_EQ(a.overwrite_max, 10u);
  EXPECT_EQ(a.checkpoint_every, 50u);
  const auto b = fig9_function_b();
  EXPECT_FALSE(b.coalesce_enabled);
  EXPECT_EQ(b.overwrite_max, 20u);
  EXPECT_EQ(b.checkpoint_every, 100u);
}

TEST(Params, OverwriteLengthResolution) {
  MirroringParams params;
  params.function = selective_mirroring(8);
  // FAA positions take the function default.
  EXPECT_EQ(params.overwrite_length_for(event::EventType::kFaaPosition), 8u);
  // Other types are never overwritten by default.
  EXPECT_EQ(params.overwrite_length_for(event::EventType::kDeltaStatus), 1u);
  // Explicit rules win.
  params.overwrite_rules.push_back({event::EventType::kFaaPosition, 3});
  EXPECT_EQ(params.overwrite_length_for(event::EventType::kFaaPosition), 3u);
  // Zero-length rules are clamped to 1 (no overwriting).
  params.overwrite_rules.push_back({event::EventType::kBaggageLoaded, 0});
  EXPECT_EQ(params.overwrite_length_for(event::EventType::kBaggageLoaded), 1u);
}

TEST(Params, OisDefaultRulesShape) {
  const auto params = ois_default_rules(selective_mirroring());
  EXPECT_EQ(params.complex_seq_rules.size(), 1u);
  EXPECT_EQ(params.complex_tuple_rules.size(), 1u);
  EXPECT_EQ(params.complex_tuple_rules[0].constituents.size(), 3u);
  EXPECT_EQ(params.complex_seq_rules[0].suppressed_type,
            event::EventType::kFaaPosition);
}

TEST(Matchers, MatchDeltaStatus) {
  const auto m = match_delta_status(event::FlightStatus::kLanded);
  event::DeltaStatus landed;
  landed.status = event::FlightStatus::kLanded;
  event::DeltaStatus boarding;
  boarding.status = event::FlightStatus::kBoarding;
  EXPECT_TRUE(m(event::make_delta_status(0, 1, landed)));
  EXPECT_FALSE(m(event::make_delta_status(0, 1, boarding)));
  // Non-DeltaStatus payloads never match.
  EXPECT_FALSE(m(event::make_faa_position(0, 1, {})));
}

TEST(Matchers, MatchTypeAndAny) {
  EXPECT_TRUE(match_any()(event::make_faa_position(0, 1, {})));
  const auto m = match_type(event::EventType::kFaaPosition);
  EXPECT_TRUE(m(event::make_faa_position(0, 1, {})));
  EXPECT_FALSE(m(event::make_delta_status(0, 1, {})));
}

}  // namespace
}  // namespace admire::rules
