// Type/content filter rules (§1: "filtering events based on their data
// types and/or their data contents").
#include <gtest/gtest.h>

#include "mirror/mirroring_api.h"
#include "rules/rule_engine.h"

namespace admire::rules {
namespace {

event::Event position(FlightKey flight, SeqNo seq, double altitude,
                      double speed = 400.0) {
  event::FaaPosition pos;
  pos.flight = flight;
  pos.altitude_ft = altitude;
  pos.ground_speed_kts = speed;
  return event::make_faa_position(0, seq, pos);
}

event::Event bag(FlightKey flight, SeqNo seq) {
  event::BaggageLoaded bl;
  bl.flight = flight;
  bl.bag_id = static_cast<std::uint32_t>(seq);
  return event::make_baggage_loaded(1, seq, bl);
}

TEST(FilterRule, TypeFilterDropsWholeType) {
  MirroringParams params;
  params.function = simple_mirroring();
  params.filter_rules.push_back({event::EventType::kBaggageLoaded, nullptr});
  RuleEngine engine(std::move(params));
  queueing::StatusTable table;
  EXPECT_EQ(engine.on_receive(bag(1, 1), table).action,
            ReceiveAction::kDiscardFiltered);
  EXPECT_EQ(engine.on_receive(position(1, 2, 30000), table).action,
            ReceiveAction::kAccept);
  EXPECT_EQ(engine.counters().discarded_filtered, 1u);
}

TEST(FilterRule, ContentFilterUsesPredicate) {
  MirroringParams params;
  params.function = simple_mirroring();
  // Mirrors don't need high-altitude cruise positions; only approaches.
  params.filter_rules.push_back(
      {event::EventType::kFaaPosition,
       [](const event::Event& ev) {
         return ev.as<event::FaaPosition>()->altitude_ft > 10'000.0;
       }});
  RuleEngine engine(std::move(params));
  queueing::StatusTable table;
  EXPECT_EQ(engine.on_receive(position(1, 1, 35'000), table).action,
            ReceiveAction::kDiscardFiltered);
  EXPECT_EQ(engine.on_receive(position(1, 2, 3'000), table).action,
            ReceiveAction::kAccept);
}

TEST(FilterRule, FilterRunsBeforeOverwriteCounting) {
  MirroringParams params;
  params.function = selective_mirroring(2);
  params.filter_rules.push_back({event::EventType::kFaaPosition, nullptr});
  RuleEngine engine(std::move(params));
  queueing::StatusTable table;
  for (SeqNo i = 1; i <= 6; ++i) {
    EXPECT_EQ(engine.on_receive(position(1, i, 30'000), table).action,
              ReceiveAction::kDiscardFiltered);
  }
  // No overwrite-run state was consumed by filtered events.
  EXPECT_EQ(table.run_counter(event::EventType::kFaaPosition, 1), 0u);
}

TEST(FilterRule, Matchers) {
  const auto low_alt = match_altitude_below(10'000);
  EXPECT_TRUE(low_alt(position(1, 1, 5'000)));
  EXPECT_FALSE(low_alt(position(1, 1, 20'000)));
  EXPECT_FALSE(low_alt(bag(1, 1)));  // wrong payload kind never matches
  const auto slow = match_ground_speed_below(100);
  EXPECT_TRUE(slow(position(1, 1, 0, 50)));
  EXPECT_FALSE(slow(position(1, 1, 0, 450)));
}

TEST(FilterRule, ApiSetFilterAndCounting) {
  mirror::MirroringApi api;
  mirror::PipelineCore core(api.params(), 2);
  api.bind(&core, [](const event::Event&) {}, [](const event::Event&) {},
           [] {});
  api.set_filter(event::EventType::kFaaPosition,
                 match_ground_speed_below(100.0));
  // Slow taxiing updates are filtered from mirroring; cruise updates pass.
  auto slow_ev = position(1, 1, 100, 12.0);
  auto fast_ev = position(1, 2, 30'000, 450.0);
  const auto r1 = core.on_incoming(std::move(slow_ev), 0);
  const auto r2 = core.on_incoming(std::move(fast_ev), 0);
  EXPECT_EQ(r1.action, ReceiveAction::kDiscardFiltered);
  EXPECT_TRUE(r1.forward.has_value());  // local main unit still gets it
  EXPECT_EQ(r2.action, ReceiveAction::kAccept);
  EXPECT_EQ(core.rule_counters().discarded_filtered, 1u);
}

TEST(FilterRule, InitClearsFilters) {
  mirror::MirroringApi api;
  api.set_filter(event::EventType::kBaggageLoaded);
  EXPECT_EQ(api.params().filter_rules.size(), 1u);
  api.init(false, 1, 1);
  EXPECT_TRUE(api.params().filter_rules.empty());
}

}  // namespace
}  // namespace admire::rules
