#include "rules/coalescer.h"

#include <gtest/gtest.h>

namespace admire::rules {
namespace {

event::Event faa(FlightKey flight, SeqNo seq, double lat = 0.0) {
  event::FaaPosition pos;
  pos.flight = flight;
  pos.lat_deg = lat;
  return event::make_faa_position(0, seq, pos);
}

event::Event delta(FlightKey flight, SeqNo seq) {
  event::DeltaStatus st;
  st.flight = flight;
  st.status = event::FlightStatus::kBoarding;
  return event::make_delta_status(1, seq, st);
}

TEST(Coalescer, DisabledPassesThrough) {
  Coalescer c(false, 10);
  auto out = c.offer(faa(1, 1));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].seq(), 1u);
  EXPECT_EQ(c.buffered_flights(), 0u);
}

TEST(Coalescer, MaxOnePassesThrough) {
  Coalescer c(true, 1);
  EXPECT_EQ(c.offer(faa(1, 1)).size(), 1u);
}

TEST(Coalescer, BuffersUntilMaxThenEmitsLatest) {
  Coalescer c(true, 3);
  EXPECT_TRUE(c.offer(faa(1, 1, 10.0)).empty());
  EXPECT_TRUE(c.offer(faa(1, 2, 20.0)).empty());
  auto out = c.offer(faa(1, 3, 30.0));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].seq(), 3u);  // newest constituent's identity
  EXPECT_EQ(out[0].header().coalesced, 3u);
  EXPECT_DOUBLE_EQ(out[0].as<event::FaaPosition>()->lat_deg, 30.0);
  EXPECT_EQ(c.buffered_flights(), 0u);
}

TEST(Coalescer, PerFlightBuffers) {
  Coalescer c(true, 2);
  EXPECT_TRUE(c.offer(faa(1, 1)).empty());
  EXPECT_TRUE(c.offer(faa(2, 2)).empty());
  EXPECT_EQ(c.buffered_flights(), 2u);
  EXPECT_EQ(c.offer(faa(1, 3)).size(), 1u);
  EXPECT_EQ(c.buffered_flights(), 1u);
}

TEST(Coalescer, StatusEventFlushesSameFlightFirst) {
  Coalescer c(true, 10);
  EXPECT_TRUE(c.offer(faa(1, 1)).empty());
  auto out = c.offer(delta(1, 2));
  // Ordering: buffered position released before the status event.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].type(), event::EventType::kFaaPosition);
  EXPECT_EQ(out[1].type(), event::EventType::kDeltaStatus);
}

TEST(Coalescer, StatusEventForOtherFlightDoesNotFlush) {
  Coalescer c(true, 10);
  EXPECT_TRUE(c.offer(faa(1, 1)).empty());
  auto out = c.offer(delta(2, 2));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(c.buffered_flights(), 1u);
}

TEST(Coalescer, FlushAllReturnsDeterministicOrder) {
  Coalescer c(true, 10);
  (void)c.offer(faa(3, 1));
  (void)c.offer(faa(1, 2));
  (void)c.offer(faa(2, 3));
  auto out = c.flush_all();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].key(), 1u);
  EXPECT_EQ(out[1].key(), 2u);
  EXPECT_EQ(out[2].key(), 3u);
  EXPECT_EQ(c.buffered_flights(), 0u);
}

TEST(Coalescer, FlushFlight) {
  Coalescer c(true, 10);
  (void)c.offer(faa(1, 1));
  EXPECT_FALSE(c.flush_flight(2).has_value());
  auto out = c.flush_flight(1);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->key(), 1u);
}

TEST(Coalescer, AbsorbedCountAccumulates) {
  Coalescer c(true, 5);
  for (SeqNo i = 1; i <= 4; ++i) (void)c.offer(faa(1, i));
  EXPECT_EQ(c.absorbed(), 3u);  // first buffered, next three absorbed
}

TEST(Coalescer, CoalescedCountsCompose) {
  Coalescer c(true, 4);
  // Offer an already-coalesced event (represents 2 raw events).
  event::Event pre = faa(1, 1);
  pre.mutable_header().coalesced = 2;
  EXPECT_TRUE(c.offer(std::move(pre)).empty());
  EXPECT_TRUE(c.offer(faa(1, 2)).empty());  // total now 3
  auto out = c.offer(faa(1, 3));            // total 4 == max
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].header().coalesced, 4u);
}

TEST(Coalescer, ReconfigureMidStream) {
  Coalescer c(true, 100);
  (void)c.offer(faa(1, 1));
  (void)c.offer(faa(1, 2));
  c.configure(true, 3);
  auto out = c.offer(faa(1, 3));  // count 3 >= new max 3
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].header().coalesced, 3u);
}

TEST(Coalescer, DisableMidStreamStillFlushable) {
  Coalescer c(true, 10);
  (void)c.offer(faa(1, 1));
  c.configure(false, 1);
  // New events pass through; the old buffer is still retrievable.
  EXPECT_EQ(c.offer(faa(2, 2)).size(), 1u);
  EXPECT_EQ(c.flush_all().size(), 1u);
}

}  // namespace
}  // namespace admire::rules
