#include "echo/channel.h"

#include <gtest/gtest.h>

namespace admire::echo {
namespace {

event::Event test_event(FlightKey flight = 1) {
  event::FaaPosition pos;
  pos.flight = flight;
  return event::make_faa_position(0, 1, pos);
}

TEST(EventChannel, DeliversToSubscribers) {
  auto ch = EventChannel::create(1, "test", ChannelRole::kData);
  int calls = 0;
  auto sub = ch->subscribe([&](const event::Event&) { ++calls; });
  EXPECT_EQ(ch->submit(test_event()), 1u);
  EXPECT_EQ(ch->submit(test_event()), 1u);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(ch->submitted_count(), 2u);
}

TEST(EventChannel, MultipleSubscribersAllReceive) {
  auto ch = EventChannel::create(1, "test", ChannelRole::kData);
  int a = 0, b = 0;
  auto s1 = ch->subscribe([&](const event::Event&) { ++a; });
  auto s2 = ch->subscribe([&](const event::Event&) { ++b; });
  EXPECT_EQ(ch->submit(test_event()), 2u);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(EventChannel, UnsubscribeOnDestruction) {
  auto ch = EventChannel::create(1, "test", ChannelRole::kData);
  int calls = 0;
  {
    auto sub = ch->subscribe([&](const event::Event&) { ++calls; });
    ch->submit(test_event());
  }
  ch->submit(test_event());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(ch->subscriber_count(), 0u);
}

TEST(EventChannel, SubscriptionResetIsIdempotent) {
  auto ch = EventChannel::create(1, "test", ChannelRole::kData);
  auto sub = ch->subscribe([](const event::Event&) {});
  EXPECT_TRUE(sub.active());
  sub.reset();
  EXPECT_FALSE(sub.active());
  sub.reset();  // no-op
  EXPECT_EQ(ch->subscriber_count(), 0u);
}

TEST(EventChannel, SubscriptionMoveTransfersOwnership) {
  auto ch = EventChannel::create(1, "test", ChannelRole::kData);
  auto sub = ch->subscribe([](const event::Event&) {});
  Subscription other = std::move(sub);
  EXPECT_FALSE(sub.active());  // NOLINT moved-from check is the point
  EXPECT_TRUE(other.active());
  EXPECT_EQ(ch->subscriber_count(), 1u);
  other.reset();
  EXPECT_EQ(ch->subscriber_count(), 0u);
}

TEST(EventChannel, HandlerMaySubscribeWithoutDeadlock) {
  auto ch = EventChannel::create(1, "test", ChannelRole::kData);
  std::vector<Subscription> extra;
  auto sub = ch->subscribe([&](const event::Event&) {
    extra.push_back(ch->subscribe([](const event::Event&) {}));
  });
  ch->submit(test_event());
  EXPECT_EQ(ch->subscriber_count(), 2u);
}

TEST(EventChannel, SubscriptionOutlivesChannelSafely) {
  Subscription sub;
  {
    auto ch = EventChannel::create(1, "ephemeral", ChannelRole::kData);
    sub = ch->subscribe([](const event::Event&) {});
  }
  sub.reset();  // channel gone; must not crash
}

TEST(EventChannel, SubmitBatchDeliversEveryEventInOrder) {
  auto ch = EventChannel::create(1, "test", ChannelRole::kData);
  std::vector<SeqNo> seen;
  auto sub = ch->subscribe([&](const event::Event& ev) { seen.push_back(ev.seq()); });
  std::vector<event::Event> batch;
  for (SeqNo s = 1; s <= 5; ++s) {
    event::FaaPosition pos;
    pos.flight = 1;
    batch.push_back(event::make_faa_position(0, s, pos));
  }
  EXPECT_EQ(ch->submit_batch(batch), 1u);  // one handler invoked
  EXPECT_EQ(seen, (std::vector<SeqNo>{1, 2, 3, 4, 5}));
  EXPECT_EQ(ch->submitted_count(), 5u);
}

TEST(EventChannel, BatchSubscriberSeesWholeSpanOnce) {
  auto ch = EventChannel::create(1, "test", ChannelRole::kData);
  std::size_t calls = 0;
  std::size_t total = 0;
  auto sub = ch->subscribe_batch([&](std::span<const event::Event> evs) {
    ++calls;
    total += evs.size();
  });
  std::vector<event::Event> batch(3, test_event());
  ch->submit_batch(batch);
  ch->submit_batch(batch);
  EXPECT_EQ(calls, 2u);  // one call per batch, not per event
  EXPECT_EQ(total, 6u);
}

TEST(EventChannel, SingleSubmitReachesBatchSubscriberAsSpanOfOne) {
  auto ch = EventChannel::create(1, "test", ChannelRole::kData);
  std::size_t sizes_sum = 0;
  auto sub = ch->subscribe_batch(
      [&](std::span<const event::Event> evs) { sizes_sum += evs.size(); });
  ch->submit(test_event());
  EXPECT_EQ(sizes_sum, 1u);
}

TEST(EventChannel, BatchSubscriptionUnsubscribes) {
  auto ch = EventChannel::create(1, "test", ChannelRole::kData);
  int calls = 0;
  {
    auto sub = ch->subscribe_batch([&](std::span<const event::Event>) { ++calls; });
    EXPECT_EQ(ch->subscriber_count(), 1u);
    std::vector<event::Event> batch(2, test_event());
    ch->submit_batch(batch);
  }
  EXPECT_EQ(ch->subscriber_count(), 0u);
  std::vector<event::Event> batch(2, test_event());
  ch->submit_batch(batch);
  EXPECT_EQ(calls, 1);
}

TEST(EventChannel, EmptyBatchIsANoop) {
  auto ch = EventChannel::create(1, "test", ChannelRole::kData);
  int calls = 0;
  auto sub = ch->subscribe([&](const event::Event&) { ++calls; });
  EXPECT_EQ(ch->submit_batch({}), 0u);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(ch->submitted_count(), 0u);
}

TEST(EventChannel, NamedDestinationReceivesBroadcastAndTargetedBatches) {
  auto ch = EventChannel::create(1, "test", ChannelRole::kData);
  std::size_t mirror1 = 0, mirror2 = 0;
  auto s1 = ch->subscribe_batch_as(
      "mirror1", [&](std::span<const event::Event> evs) { mirror1 += evs.size(); });
  auto s2 = ch->subscribe_batch_as(
      "mirror2", [&](std::span<const event::Event> evs) { mirror2 += evs.size(); });
  std::vector<event::Event> batch(3, test_event());
  ch->submit_batch(batch);  // broadcast reaches both names
  EXPECT_EQ(mirror1, 3u);
  EXPECT_EQ(mirror2, 3u);
  EXPECT_EQ(ch->submit_batch_to("mirror2", batch), 1u);  // targeted: one only
  EXPECT_EQ(mirror1, 3u);
  EXPECT_EQ(mirror2, 6u);
  EXPECT_EQ(ch->submit_batch_to("unknown", batch), 0u);
  // Targeted delivery does NOT count: the caller accounts the logical
  // submission once via note_batch and then fans out per destination.
  EXPECT_EQ(ch->submitted_count(), 3u);
}

TEST(EventChannel, DuplicateDestinationNameYieldsInactiveSubscription) {
  auto ch = EventChannel::create(1, "test", ChannelRole::kData);
  auto s1 = ch->subscribe_batch_as("mirror1",
                                   [](std::span<const event::Event>) {});
  auto dup = ch->subscribe_batch_as("mirror1",
                                    [](std::span<const event::Event>) {});
  EXPECT_TRUE(s1.active());
  EXPECT_FALSE(dup.active());
  EXPECT_EQ(ch->destinations(), (std::vector<std::string>{"mirror1"}));
}

TEST(EventChannel, DestinationsEnumerateAndUnsubscribeRemoves) {
  auto ch = EventChannel::create(1, "test", ChannelRole::kData);
  auto s1 = ch->subscribe_batch_as("a", [](std::span<const event::Event>) {});
  {
    auto s2 = ch->subscribe_batch_as("b", [](std::span<const event::Event>) {});
    EXPECT_EQ(ch->destinations(), (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(ch->subscriber_count(), 2u);
  }
  EXPECT_EQ(ch->destinations(), (std::vector<std::string>{"a"}));
  EXPECT_EQ(ch->subscriber_count(), 1u);
}

TEST(EventChannel, NoteBatchCountsWithoutDelivering) {
  auto ch = EventChannel::create(1, "test", ChannelRole::kData);
  std::size_t seen = 0;
  auto sub = ch->subscribe_batch_as(
      "m", [&](std::span<const event::Event> evs) { seen += evs.size(); });
  std::vector<event::Event> batch(4, test_event());
  ch->note_batch(batch);
  EXPECT_EQ(seen, 0u);
  EXPECT_EQ(ch->submitted_count(), 4u);
}

TEST(EventChannel, SubmitBatchUnnamedSkipsNamedDestinations) {
  auto ch = EventChannel::create(1, "test", ChannelRole::kData);
  std::size_t named = 0, anon_batch = 0;
  int per_event = 0;
  auto s1 = ch->subscribe_batch_as(
      "m", [&](std::span<const event::Event> evs) { named += evs.size(); });
  auto s2 = ch->subscribe_batch(
      [&](std::span<const event::Event> evs) { anon_batch += evs.size(); });
  auto s3 = ch->subscribe([&](const event::Event&) { ++per_event; });
  std::vector<event::Event> batch(2, test_event());
  ch->submit_batch_unnamed(batch);
  EXPECT_EQ(named, 0u);
  EXPECT_EQ(anon_batch, 2u);
  EXPECT_EQ(per_event, 2);
  EXPECT_EQ(ch->submitted_count(), 0u);  // unnamed delivery never counts
}

TEST(ChannelRegistry, CreateAndLookup) {
  ChannelRegistry reg;
  auto res = reg.create(10, "data", ChannelRole::kData);
  ASSERT_TRUE(res.is_ok());
  EXPECT_EQ(reg.by_id(10), res.value());
  EXPECT_EQ(reg.by_name("data"), res.value());
  EXPECT_EQ(reg.by_id(99), nullptr);
  EXPECT_EQ(reg.by_name("nope"), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ChannelRegistry, DuplicateIdAndNameRejected) {
  ChannelRegistry reg;
  ASSERT_TRUE(reg.create(1, "a", ChannelRole::kData).is_ok());
  EXPECT_FALSE(reg.create(1, "b", ChannelRole::kData).is_ok());
  EXPECT_FALSE(reg.create(2, "a", ChannelRole::kData).is_ok());
}

TEST(ChannelRegistry, AutoIdsAreUnique) {
  ChannelRegistry reg;
  auto a = reg.create_auto("a", ChannelRole::kData);
  auto b = reg.create_auto("b", ChannelRole::kControl);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a->id(), b->id());
  EXPECT_EQ(b->role(), ChannelRole::kControl);
}

TEST(ChannelRegistry, AutoIdSkipsExplicitIds) {
  ChannelRegistry reg;
  ASSERT_TRUE(reg.create(5, "five", ChannelRole::kData).is_ok());
  auto a = reg.create_auto("auto", ChannelRole::kData);
  ASSERT_NE(a, nullptr);
  EXPECT_GT(a->id(), 5u);
}

}  // namespace
}  // namespace admire::echo
