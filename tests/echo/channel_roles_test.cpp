// Smaller substrate gaps: channel roles, link shaping determinism, and the
// event describe() surface used by logs.
#include <gtest/gtest.h>

#include "echo/channel.h"
#include "transport/link.h"

namespace admire {
namespace {

TEST(ChannelRoles, RolesAreVisibleToWiring) {
  echo::ChannelRegistry reg;
  auto data = reg.create(1, "data", echo::ChannelRole::kData).value();
  auto ctrl = reg.create(2, "ctrl", echo::ChannelRole::kControl).value();
  EXPECT_EQ(data->role(), echo::ChannelRole::kData);
  EXPECT_EQ(ctrl->role(), echo::ChannelRole::kControl);
  EXPECT_EQ(reg.by_name("ctrl")->role(), echo::ChannelRole::kControl);
}

TEST(LinkShaping, BandwidthSerializesConsecutiveMessages) {
  // Two back-to-back messages at 1 MB/s: the second's delivery must wait
  // for the first's transmit time (FIFO serialization on the link).
  transport::LinkShaping shaping;
  shaping.bytes_per_second = 1e6;
  auto [a, b] = transport::make_inprocess_link_pair(64, shaping);
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(a->send(Bytes(20'000)).is_ok());  // 20 ms
  ASSERT_TRUE(a->send(Bytes(20'000)).is_ok());  // +20 ms
  (void)b->receive();
  (void)b->receive();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(35));
}

TEST(LinkShaping, UnshapedDeliversImmediately) {
  auto [a, b] = transport::make_inprocess_link_pair();
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(a->send(Bytes(100'000)).is_ok());
  (void)b->receive();
  EXPECT_LT(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(100));
}

TEST(EventDescribe, CoversControlAndSnapshot) {
  const auto ctrl = event::make_control(to_bytes("x"));
  EXPECT_NE(ctrl.describe().find("CONTROL"), std::string::npos);
  event::Snapshot snap;
  snap.request_id = 1;
  const auto ev = event::make_snapshot(snap);
  EXPECT_NE(ev.describe().find("SNAPSHOT"), std::string::npos);
}

}  // namespace
}  // namespace admire
