#include "echo/bridge.h"

#include <gtest/gtest.h>

#include <mutex>
#include <thread>

#include "obs/registry.h"
#include "serialize/event_codec.h"
#include "transport/tcp.h"

namespace admire::echo {
namespace {

event::Event test_event(SeqNo seq) {
  event::FaaPosition pos;
  pos.flight = 7;
  return event::make_faa_position(0, seq, pos, 32);
}

struct BridgedPair {
  std::shared_ptr<ChannelRegistry> reg_a = std::make_shared<ChannelRegistry>();
  std::shared_ptr<ChannelRegistry> reg_b = std::make_shared<ChannelRegistry>();
  std::shared_ptr<EventChannel> ch_a;
  std::shared_ptr<EventChannel> ch_b;
  std::unique_ptr<RemoteChannelBridge> bridge_a;
  std::unique_ptr<RemoteChannelBridge> bridge_b;

  BridgedPair() {
    // Same channel id on both sides: the bridge routes by id.
    ch_a = reg_a->create(42, "shared", ChannelRole::kData).value();
    ch_b = reg_b->create(42, "shared", ChannelRole::kData).value();
    auto [link_a, link_b] = transport::make_inprocess_link_pair();
    bridge_a = std::make_unique<RemoteChannelBridge>(link_a, reg_a);
    bridge_b = std::make_unique<RemoteChannelBridge>(link_b, reg_b);
    bridge_a->export_channel(ch_a);
    bridge_b->export_channel(ch_b);
    bridge_a->start();
    bridge_b->start();
  }
};

void wait_for(const std::function<bool()>& cond, int ms = 2000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (!cond() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(Bridge, ForwardsAcrossLink) {
  BridgedPair pair;
  std::atomic<int> received{0};
  auto sub = pair.ch_b->subscribe([&](const event::Event& ev) {
    EXPECT_EQ(ev.key(), 7u);
    received.fetch_add(1);
  });
  pair.ch_a->submit(test_event(1));
  pair.ch_a->submit(test_event(2));
  wait_for([&] { return received.load() == 2; });
  EXPECT_EQ(received.load(), 2);
  EXPECT_EQ(pair.bridge_a->forwarded(), 2u);
  wait_for([&] { return pair.bridge_b->delivered() == 2; });
  EXPECT_EQ(pair.bridge_b->delivered(), 2u);
}

TEST(Bridge, NoReflectionLoop) {
  BridgedPair pair;
  std::atomic<int> b_received{0};
  auto sub = pair.ch_b->subscribe(
      [&](const event::Event&) { b_received.fetch_add(1); });
  pair.ch_a->submit(test_event(1));
  wait_for([&] { return b_received.load() == 1; });
  // Give any would-be echo time to happen, then verify it did not.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(b_received.load(), 1);
  EXPECT_EQ(pair.bridge_b->forwarded(), 0u);  // b never re-exported it
  EXPECT_EQ(pair.ch_a->submitted_count(), 1u);
}

TEST(Bridge, BidirectionalTraffic) {
  BridgedPair pair;
  std::atomic<int> at_a{0}, at_b{0};
  auto sub_a = pair.ch_a->subscribe([&](const event::Event&) { at_a++; });
  auto sub_b = pair.ch_b->subscribe([&](const event::Event&) { at_b++; });
  pair.ch_a->submit(test_event(1));
  pair.ch_b->submit(test_event(2));
  wait_for([&] { return at_a.load() >= 2 && at_b.load() >= 2; });
  // Each side sees its local submit plus the remote one.
  EXPECT_EQ(at_a.load(), 2);
  EXPECT_EQ(at_b.load(), 2);
}

TEST(Bridge, UnknownChannelIdCountedAndDropped) {
  auto reg_a = std::make_shared<ChannelRegistry>();
  auto reg_b = std::make_shared<ChannelRegistry>();
  auto ch_a = reg_a->create(1, "only-on-a", ChannelRole::kData).value();
  auto [link_a, link_b] = transport::make_inprocess_link_pair();
  RemoteChannelBridge bridge_a(link_a, reg_a);
  RemoteChannelBridge bridge_b(link_b, reg_b);
  bridge_a.export_channel(ch_a);
  bridge_a.start();
  bridge_b.start();
  ch_a->submit(test_event(1));
  wait_for([&] { return bridge_b.dropped_unknown() == 1; });
  EXPECT_EQ(bridge_b.dropped_unknown(), 1u);
  EXPECT_EQ(bridge_b.delivered(), 0u);
}

TEST(Bridge, StopIsIdempotentAndStopsForwarding) {
  BridgedPair pair;
  pair.bridge_a->stop();
  pair.bridge_a->stop();
  pair.ch_a->submit(test_event(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(pair.bridge_b->delivered(), 0u);
}

TEST(Bridge, BatchSubmitForwardsEveryEventInOrder) {
  BridgedPair pair;
  std::vector<SeqNo> seen;
  std::mutex seen_mu;
  auto sub = pair.ch_b->subscribe([&](const event::Event& ev) {
    std::lock_guard lock(seen_mu);
    seen.push_back(ev.seq());
  });
  std::vector<event::Event> batch;
  for (SeqNo s = 1; s <= 20; ++s) batch.push_back(test_event(s));
  pair.ch_a->submit_batch(batch);
  wait_for([&] {
    std::lock_guard lock(seen_mu);
    return seen.size() == 20;
  });
  std::lock_guard lock(seen_mu);
  ASSERT_EQ(seen.size(), 20u);
  for (SeqNo s = 1; s <= 20; ++s) EXPECT_EQ(seen[s - 1], s);
  EXPECT_EQ(pair.bridge_a->forwarded(), 20u);
}

TEST(Bridge, GroupLargerThanPumpDrainSurvivesBatchBoundaries) {
  // A single exported group can exceed the pump's per-iteration drain
  // (kDrainMax); the receiving pump must carry group state across
  // receive_batch calls and deliver every frame to the right channel.
  BridgedPair pair;
  std::atomic<std::size_t> received{0};
  auto sub = pair.ch_b->subscribe(
      [&](const event::Event&) { received.fetch_add(1); });
  std::vector<event::Event> batch;
  for (SeqNo s = 1; s <= 1000; ++s) batch.push_back(test_event(s));
  pair.ch_a->submit_batch(batch);
  wait_for([&] { return received.load() == 1000; }, 5000);
  EXPECT_EQ(received.load(), 1000u);
  EXPECT_EQ(pair.bridge_b->delivered(), 1000u);
  EXPECT_EQ(pair.bridge_b->dropped_unknown(), 0u);
}

TEST(Bridge, FanOutEncodesEachEventExactlyOnce) {
  // Acceptance criterion: with M mirrors attached, exporting N events costs
  // exactly N serializations — the bridges share the cached frame.
  constexpr int kMirrors = 3;
  constexpr SeqNo kEvents = 50;
  auto reg_src = std::make_shared<ChannelRegistry>();
  auto ch_src = reg_src->create(42, "shared", ChannelRole::kData).value();
  std::vector<std::shared_ptr<ChannelRegistry>> mirror_regs;
  std::vector<std::shared_ptr<EventChannel>> mirror_chs;
  std::vector<std::unique_ptr<RemoteChannelBridge>> bridges;
  std::atomic<std::size_t> received{0};
  std::vector<Subscription> subs;
  for (int m = 0; m < kMirrors; ++m) {
    auto reg = std::make_shared<ChannelRegistry>();
    auto ch = reg->create(42, "shared", ChannelRole::kData).value();
    subs.push_back(
        ch->subscribe([&](const event::Event&) { received.fetch_add(1); }));
    auto [src_end, mirror_end] = transport::make_inprocess_link_pair();
    auto src_bridge = std::make_unique<RemoteChannelBridge>(src_end, reg_src);
    auto mirror_bridge = std::make_unique<RemoteChannelBridge>(mirror_end, reg);
    src_bridge->export_channel(ch_src);
    src_bridge->start();
    mirror_bridge->start();
    bridges.push_back(std::move(src_bridge));
    bridges.push_back(std::move(mirror_bridge));
    mirror_regs.push_back(std::move(reg));
    mirror_chs.push_back(std::move(ch));
  }
  auto& encodes = obs::Registry::global().counter("serialize.encode_events_total");
  const std::uint64_t before = encodes.value();
  std::vector<event::Event> batch;
  for (SeqNo s = 1; s <= kEvents; ++s) batch.push_back(test_event(s));
  ch_src->submit_batch(batch);
  wait_for([&] { return received.load() == kMirrors * kEvents; }, 5000);
  EXPECT_EQ(received.load(), kMirrors * kEvents);
  // One encode per event, regardless of mirror count.
  EXPECT_EQ(encodes.value() - before, kEvents);
}

TEST(Bridge, WorksOverTcp) {
  auto reg_a = std::make_shared<ChannelRegistry>();
  auto reg_b = std::make_shared<ChannelRegistry>();
  auto ch_a = reg_a->create(9, "tcp-shared", ChannelRole::kData).value();
  auto ch_b = reg_b->create(9, "tcp-shared", ChannelRole::kData).value();

  auto listener = transport::TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  std::shared_ptr<transport::MessageLink> server_link;
  std::thread accepter([&] {
    auto res = listener.value()->accept();
    ASSERT_TRUE(res.is_ok());
    server_link = std::move(res).value();
  });
  auto client_link = transport::tcp_connect("127.0.0.1", listener.value()->port());
  accepter.join();
  ASSERT_TRUE(client_link.is_ok());

  RemoteChannelBridge bridge_a(client_link.value(), reg_a);
  RemoteChannelBridge bridge_b(server_link, reg_b);
  bridge_a.export_channel(ch_a);
  bridge_a.start();
  bridge_b.start();

  std::atomic<int> received{0};
  auto sub = ch_b->subscribe([&](const event::Event& ev) {
    EXPECT_EQ(ev.seq(), 5u);
    received.fetch_add(1);
  });
  ch_a->submit(test_event(5));
  wait_for([&] { return received.load() == 1; });
  EXPECT_EQ(received.load(), 1);
}

}  // namespace
}  // namespace admire::echo
