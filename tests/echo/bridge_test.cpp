#include "echo/bridge.h"

#include <gtest/gtest.h>

#include <thread>

#include "transport/tcp.h"

namespace admire::echo {
namespace {

event::Event test_event(SeqNo seq) {
  event::FaaPosition pos;
  pos.flight = 7;
  return event::make_faa_position(0, seq, pos, 32);
}

struct BridgedPair {
  std::shared_ptr<ChannelRegistry> reg_a = std::make_shared<ChannelRegistry>();
  std::shared_ptr<ChannelRegistry> reg_b = std::make_shared<ChannelRegistry>();
  std::shared_ptr<EventChannel> ch_a;
  std::shared_ptr<EventChannel> ch_b;
  std::unique_ptr<RemoteChannelBridge> bridge_a;
  std::unique_ptr<RemoteChannelBridge> bridge_b;

  BridgedPair() {
    // Same channel id on both sides: the bridge routes by id.
    ch_a = reg_a->create(42, "shared", ChannelRole::kData).value();
    ch_b = reg_b->create(42, "shared", ChannelRole::kData).value();
    auto [link_a, link_b] = transport::make_inprocess_link_pair();
    bridge_a = std::make_unique<RemoteChannelBridge>(link_a, reg_a);
    bridge_b = std::make_unique<RemoteChannelBridge>(link_b, reg_b);
    bridge_a->export_channel(ch_a);
    bridge_b->export_channel(ch_b);
    bridge_a->start();
    bridge_b->start();
  }
};

void wait_for(const std::function<bool()>& cond, int ms = 2000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (!cond() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(Bridge, ForwardsAcrossLink) {
  BridgedPair pair;
  std::atomic<int> received{0};
  auto sub = pair.ch_b->subscribe([&](const event::Event& ev) {
    EXPECT_EQ(ev.key(), 7u);
    received.fetch_add(1);
  });
  pair.ch_a->submit(test_event(1));
  pair.ch_a->submit(test_event(2));
  wait_for([&] { return received.load() == 2; });
  EXPECT_EQ(received.load(), 2);
  EXPECT_EQ(pair.bridge_a->forwarded(), 2u);
  wait_for([&] { return pair.bridge_b->delivered() == 2; });
  EXPECT_EQ(pair.bridge_b->delivered(), 2u);
}

TEST(Bridge, NoReflectionLoop) {
  BridgedPair pair;
  std::atomic<int> b_received{0};
  auto sub = pair.ch_b->subscribe(
      [&](const event::Event&) { b_received.fetch_add(1); });
  pair.ch_a->submit(test_event(1));
  wait_for([&] { return b_received.load() == 1; });
  // Give any would-be echo time to happen, then verify it did not.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(b_received.load(), 1);
  EXPECT_EQ(pair.bridge_b->forwarded(), 0u);  // b never re-exported it
  EXPECT_EQ(pair.ch_a->submitted_count(), 1u);
}

TEST(Bridge, BidirectionalTraffic) {
  BridgedPair pair;
  std::atomic<int> at_a{0}, at_b{0};
  auto sub_a = pair.ch_a->subscribe([&](const event::Event&) { at_a++; });
  auto sub_b = pair.ch_b->subscribe([&](const event::Event&) { at_b++; });
  pair.ch_a->submit(test_event(1));
  pair.ch_b->submit(test_event(2));
  wait_for([&] { return at_a.load() >= 2 && at_b.load() >= 2; });
  // Each side sees its local submit plus the remote one.
  EXPECT_EQ(at_a.load(), 2);
  EXPECT_EQ(at_b.load(), 2);
}

TEST(Bridge, UnknownChannelIdCountedAndDropped) {
  auto reg_a = std::make_shared<ChannelRegistry>();
  auto reg_b = std::make_shared<ChannelRegistry>();
  auto ch_a = reg_a->create(1, "only-on-a", ChannelRole::kData).value();
  auto [link_a, link_b] = transport::make_inprocess_link_pair();
  RemoteChannelBridge bridge_a(link_a, reg_a);
  RemoteChannelBridge bridge_b(link_b, reg_b);
  bridge_a.export_channel(ch_a);
  bridge_a.start();
  bridge_b.start();
  ch_a->submit(test_event(1));
  wait_for([&] { return bridge_b.dropped_unknown() == 1; });
  EXPECT_EQ(bridge_b.dropped_unknown(), 1u);
  EXPECT_EQ(bridge_b.delivered(), 0u);
}

TEST(Bridge, StopIsIdempotentAndStopsForwarding) {
  BridgedPair pair;
  pair.bridge_a->stop();
  pair.bridge_a->stop();
  pair.ch_a->submit(test_event(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(pair.bridge_b->delivered(), 0u);
}

TEST(Bridge, WorksOverTcp) {
  auto reg_a = std::make_shared<ChannelRegistry>();
  auto reg_b = std::make_shared<ChannelRegistry>();
  auto ch_a = reg_a->create(9, "tcp-shared", ChannelRole::kData).value();
  auto ch_b = reg_b->create(9, "tcp-shared", ChannelRole::kData).value();

  auto listener = transport::TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  std::shared_ptr<transport::MessageLink> server_link;
  std::thread accepter([&] {
    auto res = listener.value()->accept();
    ASSERT_TRUE(res.is_ok());
    server_link = std::move(res).value();
  });
  auto client_link = transport::tcp_connect("127.0.0.1", listener.value()->port());
  accepter.join();
  ASSERT_TRUE(client_link.is_ok());

  RemoteChannelBridge bridge_a(client_link.value(), reg_a);
  RemoteChannelBridge bridge_b(server_link, reg_b);
  bridge_a.export_channel(ch_a);
  bridge_a.start();
  bridge_b.start();

  std::atomic<int> received{0};
  auto sub = ch_b->subscribe([&](const event::Event& ev) {
    EXPECT_EQ(ev.seq(), 5u);
    received.fetch_add(1);
  });
  ch_a->submit(test_event(5));
  wait_for([&] { return received.load() == 1; });
  EXPECT_EQ(received.load(), 1);
}

}  // namespace
}  // namespace admire::echo
