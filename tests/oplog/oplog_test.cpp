#include "oplog/oplog.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "workload/scenario.h"

namespace admire::oplog {
namespace {

std::string segment_suffix(std::uint32_t index) {
  char buf[16];
  std::snprintf(buf, sizeof buf, ".%05u", index);
  return buf;
}

event::Event update(FlightKey flight, SeqNo seq) {
  event::Derived d;
  d.flight = flight;
  d.kind = event::Derived::Kind::kStatusBroadcast;
  d.status = event::FlightStatus::kEnRoute;
  event::Event ev = event::make_derived(d);
  ev.mutable_header().seq = seq;
  return ev;
}

class OplogTest : public ::testing::Test {
 protected:
  void TearDown() override { remove_log(base_); }
  std::string base_ = "/tmp/admire_oplog_test";
};

TEST_F(OplogTest, AppendAndReadBack) {
  {
    LogWriter writer(base_);
    ASSERT_TRUE(writer.ok());
    for (SeqNo i = 1; i <= 100; ++i) {
      ASSERT_TRUE(writer.append(update(1 + i % 5, i)).is_ok());
    }
    ASSERT_TRUE(writer.flush().is_ok());
    EXPECT_EQ(writer.records_written(), 100u);
  }
  auto read = read_log(base_);
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  ASSERT_EQ(read.value().events.size(), 100u);
  EXPECT_FALSE(read.value().truncated_tail);
  for (SeqNo i = 1; i <= 100; ++i) {
    EXPECT_EQ(read.value().events[i - 1].seq(), i);
  }
}

TEST_F(OplogTest, RotationSplitsSegmentsAndPreservesOrder) {
  LogWriterConfig config;
  config.max_segment_bytes = 512;  // force frequent rotation
  LogWriter writer(base_, config);
  ASSERT_TRUE(writer.ok());
  for (SeqNo i = 1; i <= 60; ++i) {
    ASSERT_TRUE(writer.append(update(1, i)).is_ok());
  }
  ASSERT_TRUE(writer.flush().is_ok());
  EXPECT_GT(writer.segments(), 3u);
  auto read = read_log(base_);
  ASSERT_TRUE(read.is_ok());
  ASSERT_EQ(read.value().events.size(), 60u);
  for (SeqNo i = 1; i <= 60; ++i) {
    EXPECT_EQ(read.value().events[i - 1].seq(), i);
  }
}

TEST_F(OplogTest, TornTailIsSalvagedAndFlagged) {
  {
    LogWriter writer(base_);
    for (SeqNo i = 1; i <= 20; ++i) {
      ASSERT_TRUE(writer.append(update(1, i)).is_ok());
    }
    ASSERT_TRUE(writer.flush().is_ok());
  }
  // Simulate a crash mid-append: chop bytes off the segment tail.
  const std::string segment = base_ + ".00000";
  std::FILE* f = std::fopen(segment.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  ASSERT_TRUE(::truncate(segment.c_str(), size - 7) == 0);
  std::fclose(f);

  auto read = read_log(base_);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().events.size(), 19u);  // last record torn
  EXPECT_TRUE(read.value().truncated_tail);
}

TEST_F(OplogTest, CorruptMiddleStopsAtCorruption) {
  {
    LogWriter writer(base_);
    for (SeqNo i = 1; i <= 10; ++i) {
      ASSERT_TRUE(writer.append(update(1, i)).is_ok());
    }
    ASSERT_TRUE(writer.flush().is_ok());
  }
  const std::string segment = base_ + ".00000";
  std::FILE* f = std::fopen(segment.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 150, SEEK_SET);  // somewhere inside an early record
  const char junk = 0x5A;
  std::fwrite(&junk, 1, 1, f);
  std::fclose(f);

  auto read = read_log(base_);
  ASSERT_TRUE(read.is_ok());
  EXPECT_LT(read.value().events.size(), 10u);
  EXPECT_TRUE(read.value().truncated_tail);
}

TEST_F(OplogTest, ReopenResumesInsteadOfTruncating) {
  {
    LogWriter writer(base_);
    for (SeqNo i = 1; i <= 20; ++i) {
      ASSERT_TRUE(writer.append(update(1, i)).is_ok());
    }
    ASSERT_TRUE(writer.flush().is_ok());
  }
  // The crash/restart path: a second writer on the same base path must
  // continue the history, not wipe it ("wb" would have).
  LogWriter writer(base_);
  ASSERT_TRUE(writer.ok()) << writer.status().to_string();
  EXPECT_TRUE(writer.resumed());
  EXPECT_EQ(writer.salvaged_records(), 20u);
  for (SeqNo i = 21; i <= 30; ++i) {
    ASSERT_TRUE(writer.append(update(1, i)).is_ok());
  }
  ASSERT_TRUE(writer.flush().is_ok());

  auto read = read_log(base_);
  ASSERT_TRUE(read.is_ok());
  ASSERT_EQ(read.value().events.size(), 30u);
  EXPECT_FALSE(read.value().truncated_tail);
  for (SeqNo i = 1; i <= 30; ++i) {
    EXPECT_EQ(read.value().events[i - 1].seq(), i);
  }
}

TEST_F(OplogTest, ReopenSalvagesTornTailThenAppendsCleanly) {
  {
    LogWriter writer(base_);
    for (SeqNo i = 1; i <= 20; ++i) {
      ASSERT_TRUE(writer.append(update(1, i)).is_ok());
    }
    ASSERT_TRUE(writer.flush().is_ok());
  }
  // Crash mid-append: the final record is torn. A resuming writer must
  // drop the torn bytes BEFORE appending, or the new records would sit
  // unreachable behind the hole.
  const std::string segment = base_ + ".00000";
  std::FILE* f = std::fopen(segment.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(::truncate(segment.c_str(), size - 7), 0);

  LogWriter writer(base_);
  ASSERT_TRUE(writer.ok()) << writer.status().to_string();
  EXPECT_TRUE(writer.resumed());
  EXPECT_EQ(writer.salvaged_records(), 19u);  // record 20 was torn away
  ASSERT_TRUE(writer.append(update(1, 100)).is_ok());
  ASSERT_TRUE(writer.flush().is_ok());

  auto read = read_log(base_);
  ASSERT_TRUE(read.is_ok());
  ASSERT_EQ(read.value().events.size(), 20u);
  EXPECT_FALSE(read.value().truncated_tail);  // salvage left no hole
  EXPECT_EQ(read.value().events.back().seq(), 100u);
}

TEST_F(OplogTest, TruncateExistingConfigStillWipes) {
  {
    LogWriter writer(base_);
    for (SeqNo i = 1; i <= 20; ++i) {
      ASSERT_TRUE(writer.append(update(1, i)).is_ok());
    }
    ASSERT_TRUE(writer.flush().is_ok());
  }
  LogWriterConfig config;
  config.truncate_existing = true;
  LogWriter writer(base_, config);
  ASSERT_TRUE(writer.ok());
  EXPECT_FALSE(writer.resumed());
  for (SeqNo i = 1; i <= 5; ++i) {
    ASSERT_TRUE(writer.append(update(1, i)).is_ok());
  }
  ASSERT_TRUE(writer.flush().is_ok());
  auto read = read_log(base_);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().events.size(), 5u);
}

TEST_F(OplogTest, TornNonFinalSegmentStopsReplayAtTheGap) {
  LogWriterConfig config;
  config.max_segment_bytes = 512;
  {
    LogWriter writer(base_, config);
    for (SeqNo i = 1; i <= 60; ++i) {
      ASSERT_TRUE(writer.append(update(1, i)).is_ok());
    }
    ASSERT_TRUE(writer.flush().is_ok());
    ASSERT_GT(writer.segments(), 3u);
  }
  // Corrupt a record in segment .00001 — a hole in the MIDDLE of history.
  const std::string segment = base_ + ".00001";
  std::FILE* f = std::fopen(segment.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 40, SEEK_SET);
  const char junk = 0x5A;
  ASSERT_EQ(std::fwrite(&junk, 1, 1, f), 1u);
  std::fclose(f);

  auto read = read_log(base_);
  ASSERT_TRUE(read.is_ok());
  EXPECT_TRUE(read.value().truncated_tail);
  // Replay stopped AT the hole: later segments exist but were not spliced
  // in after it (that would reorder history), and the gap is reported.
  ASSERT_TRUE(read.value().gap_segment.has_value());
  EXPECT_EQ(*read.value().gap_segment, 1u);
  ASSERT_FALSE(read.value().events.empty());
  SeqNo prev = 0;
  for (const auto& ev : read.value().events) {
    EXPECT_EQ(ev.seq(), prev + 1);  // contiguous prefix, nothing skipped
    prev = ev.seq();
  }
  EXPECT_LT(read.value().events.size(), 60u);
}

TEST_F(OplogTest, ReadErrorIsUnavailableNotTornTail) {
  // A directory where a segment should be: fopen succeeds, fread fails.
  // That is an I/O error, not a torn record — the reader must not present
  // it as a salvageable truncation.
  const std::string segment = base_ + ".00000";
  ASSERT_EQ(::mkdir(segment.c_str(), 0755), 0);
  const auto read = read_log(base_);
  EXPECT_FALSE(read.is_ok());
  EXPECT_EQ(read.status().code(), StatusCode::kUnavailable);
  ASSERT_EQ(::rmdir(segment.c_str()), 0);
}

TEST_F(OplogTest, CrashReopenPropertyLoopNeverLosesDurablePrefix) {
  // Repeated crash/salvage/append rounds across segment rotations: after
  // every reopen the log must read back as a clean, contiguous prefix of
  // everything appended, and new appends must land after the salvage.
  LogWriterConfig config;
  config.max_segment_bytes = 256;
  config.flush_every = 1;  // every append is durable before the "crash"
  SeqNo next_seq = 1;
  Rng rng(7);
  for (int round = 0; round < 8; ++round) {
    {
      LogWriter writer(base_, config);
      ASSERT_TRUE(writer.ok()) << writer.status().to_string();
      for (int k = 0; k < 12; ++k) {
        ASSERT_TRUE(writer.append(update(1, next_seq)).is_ok());
        ++next_seq;
      }
      ASSERT_TRUE(writer.flush().is_ok());
    }
    // Chop a few bytes off the newest segment: at most the last record is
    // lost; the durable prefix must survive intact.
    std::uint32_t last = 0;
    while (std::FILE* f =
               std::fopen((base_ + segment_suffix(last + 1)).c_str(), "rb")) {
      std::fclose(f);
      ++last;
    }
    const std::string tail_segment = base_ + segment_suffix(last);
    std::FILE* f = std::fopen(tail_segment.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    const long chop = static_cast<long>(rng.next_below(10));
    if (size > chop) {
      ASSERT_EQ(::truncate(tail_segment.c_str(), size - chop), 0);
    }

    auto read = read_log(base_);
    ASSERT_TRUE(read.is_ok()) << read.status().to_string();
    EXPECT_FALSE(read.value().gap_segment.has_value());
    SeqNo prev = 0;
    for (const auto& ev : read.value().events) {
      ASSERT_EQ(ev.seq(), prev + 1);
      prev = ev.seq();
    }
    // Rewind the sequence to just past the salvaged prefix so the next
    // round's appends stay contiguous.
    next_seq = prev + 1;
  }
  EXPECT_GT(next_seq, 60u);  // several rounds' worth of history survived
}

TEST_F(OplogTest, MissingLogIsNotFound) {
  EXPECT_EQ(read_log("/tmp/admire_missing_log").status().code(),
            StatusCode::kNotFound);
}

TEST_F(OplogTest, UnwritablePathSurfacesAtConstruction) {
  LogWriter writer("/definitely/not/a/dir/log");
  EXPECT_FALSE(writer.ok());
  EXPECT_FALSE(writer.append(update(1, 1)).is_ok());
}

TEST_F(OplogTest, ClusterLogsEveryPublishedUpdate) {
  cluster::ClusterConfig config;
  config.num_mirrors = 1;
  config.oplog_path = base_;
  cluster::Cluster server(config);
  server.start();
  workload::ScenarioConfig scenario;
  scenario.faa_events = 120;
  scenario.num_flights = 6;
  scenario.event_padding = 32;
  const auto trace = workload::make_ois_trace(scenario);
  for (const auto& item : trace.items) {
    ASSERT_TRUE(server.ingest(item.ev).is_ok());
  }
  server.drain();
  ASSERT_NE(server.update_log(), nullptr);
  ASSERT_TRUE(server.update_log()->flush().is_ok());
  const std::uint64_t published = server.update_log()->records_written();
  EXPECT_GT(published, 0u);
  server.stop();

  auto read = read_log(base_);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().events.size(), published);
  EXPECT_FALSE(read.value().truncated_tail);
  // The log is replayable: folding it into a fresh EDE view reproduces
  // every flight the server knew about.
  ede::OperationalState replayed;
  ede::Ede ede(&replayed);
  for (const auto& ev : read.value().events) ede.process(ev);
  EXPECT_EQ(replayed.flight_count(),
            server.central().main_unit().state().flight_count());
}

}  // namespace
}  // namespace admire::oplog
