#include "oplog/oplog.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "cluster/cluster.h"
#include "workload/scenario.h"

namespace admire::oplog {
namespace {

event::Event update(FlightKey flight, SeqNo seq) {
  event::Derived d;
  d.flight = flight;
  d.kind = event::Derived::Kind::kStatusBroadcast;
  d.status = event::FlightStatus::kEnRoute;
  event::Event ev = event::make_derived(d);
  ev.mutable_header().seq = seq;
  return ev;
}

class OplogTest : public ::testing::Test {
 protected:
  void TearDown() override { remove_log(base_); }
  std::string base_ = "/tmp/admire_oplog_test";
};

TEST_F(OplogTest, AppendAndReadBack) {
  {
    LogWriter writer(base_);
    ASSERT_TRUE(writer.ok());
    for (SeqNo i = 1; i <= 100; ++i) {
      ASSERT_TRUE(writer.append(update(1 + i % 5, i)).is_ok());
    }
    ASSERT_TRUE(writer.flush().is_ok());
    EXPECT_EQ(writer.records_written(), 100u);
  }
  auto read = read_log(base_);
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  ASSERT_EQ(read.value().events.size(), 100u);
  EXPECT_FALSE(read.value().truncated_tail);
  for (SeqNo i = 1; i <= 100; ++i) {
    EXPECT_EQ(read.value().events[i - 1].seq(), i);
  }
}

TEST_F(OplogTest, RotationSplitsSegmentsAndPreservesOrder) {
  LogWriterConfig config;
  config.max_segment_bytes = 512;  // force frequent rotation
  LogWriter writer(base_, config);
  ASSERT_TRUE(writer.ok());
  for (SeqNo i = 1; i <= 60; ++i) {
    ASSERT_TRUE(writer.append(update(1, i)).is_ok());
  }
  ASSERT_TRUE(writer.flush().is_ok());
  EXPECT_GT(writer.segments(), 3u);
  auto read = read_log(base_);
  ASSERT_TRUE(read.is_ok());
  ASSERT_EQ(read.value().events.size(), 60u);
  for (SeqNo i = 1; i <= 60; ++i) {
    EXPECT_EQ(read.value().events[i - 1].seq(), i);
  }
}

TEST_F(OplogTest, TornTailIsSalvagedAndFlagged) {
  {
    LogWriter writer(base_);
    for (SeqNo i = 1; i <= 20; ++i) {
      ASSERT_TRUE(writer.append(update(1, i)).is_ok());
    }
    ASSERT_TRUE(writer.flush().is_ok());
  }
  // Simulate a crash mid-append: chop bytes off the segment tail.
  const std::string segment = base_ + ".00000";
  std::FILE* f = std::fopen(segment.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  ASSERT_TRUE(::truncate(segment.c_str(), size - 7) == 0);
  std::fclose(f);

  auto read = read_log(base_);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().events.size(), 19u);  // last record torn
  EXPECT_TRUE(read.value().truncated_tail);
}

TEST_F(OplogTest, CorruptMiddleStopsAtCorruption) {
  {
    LogWriter writer(base_);
    for (SeqNo i = 1; i <= 10; ++i) {
      ASSERT_TRUE(writer.append(update(1, i)).is_ok());
    }
    ASSERT_TRUE(writer.flush().is_ok());
  }
  const std::string segment = base_ + ".00000";
  std::FILE* f = std::fopen(segment.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 150, SEEK_SET);  // somewhere inside an early record
  const char junk = 0x5A;
  std::fwrite(&junk, 1, 1, f);
  std::fclose(f);

  auto read = read_log(base_);
  ASSERT_TRUE(read.is_ok());
  EXPECT_LT(read.value().events.size(), 10u);
  EXPECT_TRUE(read.value().truncated_tail);
}

TEST_F(OplogTest, MissingLogIsNotFound) {
  EXPECT_EQ(read_log("/tmp/admire_missing_log").status().code(),
            StatusCode::kNotFound);
}

TEST_F(OplogTest, UnwritablePathSurfacesAtConstruction) {
  LogWriter writer("/definitely/not/a/dir/log");
  EXPECT_FALSE(writer.ok());
  EXPECT_FALSE(writer.append(update(1, 1)).is_ok());
}

TEST_F(OplogTest, ClusterLogsEveryPublishedUpdate) {
  cluster::ClusterConfig config;
  config.num_mirrors = 1;
  config.oplog_path = base_;
  cluster::Cluster server(config);
  server.start();
  workload::ScenarioConfig scenario;
  scenario.faa_events = 120;
  scenario.num_flights = 6;
  scenario.event_padding = 32;
  const auto trace = workload::make_ois_trace(scenario);
  for (const auto& item : trace.items) {
    ASSERT_TRUE(server.ingest(item.ev).is_ok());
  }
  server.drain();
  ASSERT_NE(server.update_log(), nullptr);
  ASSERT_TRUE(server.update_log()->flush().is_ok());
  const std::uint64_t published = server.update_log()->records_written();
  EXPECT_GT(published, 0u);
  server.stop();

  auto read = read_log(base_);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().events.size(), published);
  EXPECT_FALSE(read.value().truncated_tail);
  // The log is replayable: folding it into a fresh EDE view reproduces
  // every flight the server knew about.
  ede::OperationalState replayed;
  ede::Ede ede(&replayed);
  for (const auto& ev : read.value().events) ede.process(ev);
  EXPECT_EQ(replayed.flight_count(),
            server.central().main_unit().state().flight_count());
}

}  // namespace
}  // namespace admire::oplog
