// Epoll TCP front end: end-to-end framed request/response over loopback
// (driven by the real multi-connection client driver), malformed-frame
// handling, and shutdown behavior.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "ede/operational_state.h"
#include "serve/front_end.h"
#include "serve/request_handler.h"
#include "workload/serve_driver.h"

namespace admire::serve {
namespace {

struct Server {
  ede::OperationalState state;
  std::unique_ptr<RequestHandler> handler;
  std::unique_ptr<FrontEnd> front;

  explicit Server(std::uint32_t flights = 32) {
    for (FlightKey f = 1; f <= flights; ++f) {
      state.update(f, [](ede::FlightRecord& r) { ++r.updates_applied; });
    }
    handler = std::make_unique<RequestHandler>(&state, ServeConfig{});
    auto started = FrontEnd::start(
        FrontEndConfig{},
        [this](const Request& req) { return handler->handle(req).response; });
    EXPECT_TRUE(started);
    front = std::move(started.value());
  }
};

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

TEST(FrontEnd, PicksAFreePortAndServesOneRequest) {
  Server server;
  ASSERT_NE(server.front->port(), 0);

  const int fd = connect_to(server.front->port());
  Request req;
  req.id = 99;
  req.shape = QueryShape::kFlight;
  req.key = 3;
  const Bytes frame = frame_request(req);
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));

  FrameReader reader;
  Bytes chunk(4096);
  std::optional<Bytes> body;
  while (!body.has_value()) {
    const ssize_t n = ::recv(fd, chunk.data(), chunk.size(), 0);
    ASSERT_GT(n, 0);
    reader.feed(ByteSpan(chunk.data(), static_cast<std::size_t>(n)));
    body = reader.next();
  }
  const auto resp = decode_response(ByteSpan(body->data(), body->size()));
  ASSERT_TRUE(resp);
  EXPECT_EQ(resp.value().id, 99u);
  EXPECT_TRUE(resp.value().ok());
  const auto records = decode_record_set(
      ByteSpan(resp.value().state->data(), resp.value().state->size()));
  ASSERT_TRUE(records);
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_EQ(records.value()[0].flight, 3u);
  ::close(fd);
}

TEST(FrontEnd, ServesAMultiConnectionCrowd) {
  Server server;
  workload::ServeDriverConfig driver;
  driver.port = server.front->port();
  driver.threads = 2;
  driver.connections = 64;
  driver.requests_per_connection = 4;
  driver.flight_space = 32;
  const auto report = workload::run_serve_driver(driver);
  EXPECT_EQ(report.connections_opened, 64u);
  EXPECT_EQ(report.connect_failures, 0u);
  EXPECT_EQ(report.requests_ok, 256u);
  EXPECT_EQ(report.protocol_errors, 0u);
  EXPECT_EQ(report.io_errors, 0u);
  EXPECT_GT(report.payload_bytes, 0u);
  EXPECT_EQ(report.latency_ns.count(), 256u);
  EXPECT_GE(server.front->accepted_connections(), 64u);
  // The crowd re-asks the same 32-flight space: the cache must engage.
  EXPECT_GT(server.handler->cache().hits(), 0u);
}

TEST(FrontEnd, MalformedFrameDropsTheConnection) {
  Server server;
  const int fd = connect_to(server.front->port());
  // Length prefix far past kMaxFrameBytes poisons the reader.
  const std::uint32_t len = 0xFFFFFFFF;
  ASSERT_EQ(::send(fd, &len, sizeof len, 0), static_cast<ssize_t>(sizeof len));
  Bytes chunk(64);
  EXPECT_EQ(::recv(fd, chunk.data(), chunk.size(), 0), 0);  // server closed
  ::close(fd);

  for (int i = 0; i < 100 && server.front->protocol_errors() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server.front->protocol_errors(), 1u);

  // The front end is still healthy for well-formed clients.
  workload::ServeDriverConfig driver;
  driver.port = server.front->port();
  driver.threads = 1;
  driver.connections = 4;
  driver.flight_space = 32;
  EXPECT_EQ(workload::run_serve_driver(driver).requests_ok, 4u);
}

TEST(FrontEnd, StopIsIdempotentAndClosesConnections) {
  Server server;
  const int fd = connect_to(server.front->port());
  server.front->stop();
  server.front->stop();
  Bytes chunk(16);
  EXPECT_LE(::recv(fd, chunk.data(), chunk.size(), 0), 0);
  ::close(fd);
}

}  // namespace
}  // namespace admire::serve
