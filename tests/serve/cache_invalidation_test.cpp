// The serving plane's freshness contract, exercised by interleaving state
// updates with cached queries: an answer is never staler than the site's
// status table as of the last update whose invalidation completed before
// the request was admitted.
//
//   * ServeCacheConcurrency — a writer thread folds updates into an
//     OperationalState and publishes each version only AFTER the cache
//     invalidation hook ran, while reader threads hammer the same handler;
//     every response must carry a version at least as new as the last
//     published one. (Suite name contains "Concurrency" so the TSan CI job
//     runs it under the race detector.)
//   * CacheInvalidationCluster — the threaded runtime end to end: ingest a
//     delta, drain, query through the load balancer; the decoded record
//     must reflect the drained update, every iteration.
//
// The DES variant of the same interleaving lives in
// tests/sim/sim_serving_test.cpp (both runtimes drive the same
// RequestHandler, so the contract is asserted once per execution mode).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cluster/cluster.h"
#include "ede/operational_state.h"
#include "serve/request_handler.h"

namespace admire::serve {
namespace {

Request flight_query(std::uint32_t key) {
  Request req;
  req.id = 1;
  req.shape = QueryShape::kFlight;
  req.key = key;
  return req;
}

TEST(ServeCacheConcurrency, AnswersNeverStalerThanPublishedVersion) {
  constexpr FlightKey kFlight = 7;
  constexpr std::uint64_t kUpdates = 4000;
  constexpr std::size_t kReaders = 3;

  ede::OperationalState state;
  RequestHandler handler(&state, ServeConfig{});

  // `published` is the newest state version whose cache invalidation has
  // completed — exactly the point from which the freshness contract holds.
  std::atomic<std::uint64_t> published{0};
  std::atomic<bool> done{false};
  std::atomic<std::size_t> ready{0};
  std::atomic<std::uint64_t> reads{0};

  std::thread writer([&] {
    while (ready.load(std::memory_order_acquire) < kReaders) {
      std::this_thread::yield();
    }
    for (std::uint64_t i = 1; i <= kUpdates; ++i) {
      state.update(kFlight, [&](ede::FlightRecord& r) {
        r.passengers_ticketed = static_cast<std::uint32_t>(i);
        ++r.updates_applied;
      });
      handler.on_state_update(kFlight);
      published.store(i, std::memory_order_release);
      // Pace against the readers so updates genuinely interleave with
      // queries instead of the writer finishing before the first lookup.
      if (i % 64 == 0) {
        const std::uint64_t target = reads.load(std::memory_order_acquire) + 1;
        while (reads.load(std::memory_order_acquire) < target) {
          std::this_thread::yield();
        }
      }
    }
    done.store(true, std::memory_order_release);
  });

  std::atomic<std::uint64_t> hits{0};
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      ready.fetch_add(1, std::memory_order_release);
      while (!done.load(std::memory_order_acquire)) {
        reads.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t floor = published.load(std::memory_order_acquire);
        const auto out = handler.handle(flight_query(kFlight));
        ASSERT_TRUE(out.response.ok());
        // Every state.update() bumps the version by exactly one, so the
        // version floor doubles as an update-count floor.
        ASSERT_GE(out.response.version, floor);
        if (floor > 0) {
          const auto records = decode_record_set(ByteSpan(
              out.response.state->data(), out.response.state->size()));
          ASSERT_TRUE(records);
          ASSERT_EQ(records.value().size(), 1u);
          ASSERT_GE(records.value()[0].passengers_ticketed, floor);
        }
        if (out.cache_hit) hits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();

  // The interleaving really exercised both paths.
  EXPECT_GT(handler.cache().invalidations() + handler.cache().misses(), 0u);
  const auto final_out = handler.handle(flight_query(kFlight));
  EXPECT_EQ(final_out.response.version, state.version());
}

TEST(CacheInvalidationCluster, DrainedUpdatesAreVisibleThroughTheCache) {
  cluster::ClusterConfig config;
  config.num_mirrors = 2;
  config.params = rules::MirroringParams{.function = rules::simple_mirroring()};
  cluster::Cluster cluster(config);
  cluster.start();

  constexpr FlightKey kFlight = 3;
  for (std::uint32_t i = 1; i <= 25; ++i) {
    event::DeltaStatus st;
    st.flight = kFlight;
    st.status = event::FlightStatus::kBoarding;
    st.passengers_ticketed = i;
    event::Event ev = event::make_delta_status(1, i, st);
    ev.mutable_header().vts.observe(1, i);
    ASSERT_TRUE(cluster.ingest(std::move(ev)).is_ok());
    cluster.drain();

    // Query four times: the balancer round-robins over three sites, so at
    // least one site answers twice — a rebuild then a warm cache hit — and
    // every answer must show the drained update.
    for (int repeat = 0; repeat < 4; ++repeat) {
      const Response resp = cluster.serve(flight_query(kFlight));
      ASSERT_TRUE(resp.ok()) << "iteration " << i;
      const auto records =
          decode_record_set(ByteSpan(resp.state->data(), resp.state->size()));
      ASSERT_TRUE(records);
      ASSERT_EQ(records.value().size(), 1u);
      EXPECT_EQ(records.value()[0].passengers_ticketed, i)
          << "stale answer after drain, iteration " << i;
    }
  }

  // The repeats above hit warm entries: the cache must show real traffic.
  const auto snap = cluster.obs().snapshot();
  double hits = 0;
  for (const char* site : {"central", "mirror1", "mirror2"}) {
    hits += static_cast<double>(
        snap.counter_or(std::string("serve.") + site + ".cache.hits_total"));
  }
  EXPECT_GT(hits, 0.0);
  cluster.stop();
}

}  // namespace
}  // namespace admire::serve
