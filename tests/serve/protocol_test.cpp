// Serving-plane wire protocol: frame round trips, record-set codec,
// incremental reassembly, and the poisoning rules that make a malformed
// client connection safe to drop (PROTOCOL.md §8).
#include <gtest/gtest.h>

#include "serve/protocol.h"
#include "serve/query.h"

namespace admire::serve {
namespace {

ede::FlightRecord sample_record(FlightKey f) {
  ede::FlightRecord rec;
  rec.flight = f;
  rec.position.flight = f;  // the codec canonicalizes this from `flight`
  rec.status = event::FlightStatus::kBoarding;
  rec.gate = 12;
  rec.passengers_boarded = 100 + f;
  rec.passengers_ticketed = 150 + f;
  rec.updates_applied = 3;
  rec.app_body = to_bytes("body");
  return rec;
}

ByteSpan body_of(const Bytes& frame) {
  return ByteSpan(frame.data() + 4, frame.size() - 4);
}

TEST(ServeProtocol, RequestFrameRoundTrip) {
  Request req;
  req.id = 0xDEADBEEF12345678;
  req.shape = QueryShape::kAirport;
  req.key = 7;
  const Bytes frame = frame_request(req);
  const auto decoded = decode_request(body_of(frame));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded.value(), req);
}

TEST(ServeProtocol, ResponseFrameRoundTrip) {
  Response resp;
  resp.id = 42;
  resp.code = ResponseCode::kOk;
  resp.version = 99;
  resp.state = std::make_shared<const Bytes>(
      encode_record_set({sample_record(3), sample_record(19)}));
  const Bytes frame = frame_response(resp);
  const auto decoded = decode_response(body_of(frame));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded.value().id, 42u);
  EXPECT_EQ(decoded.value().code, ResponseCode::kOk);
  EXPECT_EQ(decoded.value().version, 99u);
  const auto records = decode_record_set(
      ByteSpan(decoded.value().state->data(), decoded.value().state->size()));
  ASSERT_TRUE(records);
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_EQ(records.value()[0], sample_record(3));
  EXPECT_EQ(records.value()[1], sample_record(19));
}

TEST(ServeProtocol, RetryAfterCarriesHint) {
  Response resp;
  resp.code = ResponseCode::kRetryAfter;
  resp.retry_after_ms = 75;
  const auto decoded = decode_response(body_of(frame_response(resp)));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded.value().code, ResponseCode::kRetryAfter);
  EXPECT_EQ(decoded.value().retry_after_ms, 75u);
}

TEST(ServeProtocol, EmptyRecordSetRoundTrip) {
  const Bytes payload = encode_record_set({});
  const auto records = decode_record_set(ByteSpan(payload.data(), payload.size()));
  ASSERT_TRUE(records);
  EXPECT_TRUE(records.value().empty());
}

TEST(ServeProtocol, DecodeRejectsWrongFrameKind) {
  const Bytes req_frame = frame_request(Request{});
  EXPECT_FALSE(decode_response(body_of(req_frame)));
  const Bytes resp_frame = frame_response(Response{});
  EXPECT_FALSE(decode_request(body_of(resp_frame)));
}

TEST(ServeProtocol, DecodeRejectsUnknownQueryShape) {
  Bytes frame = frame_request(Request{});
  // Body layout: version u8, kind u8, id u64, shape u8 — offset 14 with
  // the length prefix.
  frame[4 + 1 + 1 + 8] = std::byte{kNumQueryShapes};
  EXPECT_FALSE(decode_request(body_of(frame)));
}

TEST(ServeProtocol, DecodeRejectsTruncatedBody) {
  const Bytes frame = frame_request(Request{});
  EXPECT_FALSE(decode_request(ByteSpan(frame.data() + 4, frame.size() - 6)));
}

TEST(ServeProtocol, FrameReaderReassemblesByteByByte) {
  Request req;
  req.id = 7;
  req.shape = QueryShape::kRegion;
  req.key = 2;
  const Bytes frame = frame_request(req);
  FrameReader reader;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    reader.feed(ByteSpan(frame.data() + i, 1));
    EXPECT_FALSE(reader.next().has_value());
  }
  reader.feed(ByteSpan(frame.data() + frame.size() - 1, 1));
  const auto body = reader.next();
  ASSERT_TRUE(body.has_value());
  const auto decoded = decode_request(ByteSpan(body->data(), body->size()));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded.value(), req);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(ServeProtocol, FrameReaderPopsMultipleFramesFromOneFeed) {
  Bytes wire;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    Request req;
    req.id = id;
    const Bytes frame = frame_request(req);
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  FrameReader reader;
  reader.feed(ByteSpan(wire.data(), wire.size()));
  for (std::uint64_t id = 1; id <= 3; ++id) {
    const auto body = reader.next();
    ASSERT_TRUE(body.has_value());
    const auto decoded = decode_request(ByteSpan(body->data(), body->size()));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded.value().id, id);
  }
  EXPECT_FALSE(reader.next().has_value());
}

TEST(ServeProtocol, FrameReaderPoisonsOnVersionMismatch) {
  Bytes frame = frame_request(Request{});
  frame[4] = std::byte{kServeProtocolVersion + 1};
  FrameReader reader;
  reader.feed(ByteSpan(frame.data(), frame.size()));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.poisoned());
  // Poisoned is permanent: a good frame afterwards stays unread.
  const Bytes good = frame_request(Request{});
  reader.feed(ByteSpan(good.data(), good.size()));
  EXPECT_FALSE(reader.next().has_value());
}

TEST(ServeProtocol, FrameReaderPoisonsOnOversizedLength) {
  const std::uint32_t len = kMaxFrameBytes + 1;
  Bytes wire(4);
  for (std::size_t i = 0; i < 4; ++i) {
    wire[i] = static_cast<std::byte>((len >> (8 * i)) & 0xFF);
  }
  FrameReader reader;
  reader.feed(ByteSpan(wire.data(), wire.size()));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.poisoned());
}

TEST(ServeQuery, DerivedAttributesArePureArithmetic) {
  for (FlightKey f = 0; f < 200; ++f) {
    EXPECT_EQ(airport_of(f), f % kNumAirports);
    EXPECT_EQ(airline_of(f), (f / kNumAirports) % kNumAirlines);
    EXPECT_EQ(region_of(f), airport_of(f) % kNumRegions);
    EXPECT_TRUE(query_matches(QueryShape::kFlight, f, f));
    EXPECT_TRUE(query_matches(QueryShape::kAirport, airport_of(f), f));
    EXPECT_TRUE(query_matches(QueryShape::kAirline, airline_of(f), f));
    EXPECT_TRUE(query_matches(QueryShape::kRegion, region_of(f), f));
    EXPECT_TRUE(query_matches(QueryShape::kFullState, 0, f));
  }
  EXPECT_FALSE(query_matches(QueryShape::kFlight, 1, 2));
  EXPECT_FALSE(query_matches(QueryShape::kAirport, airport_of(5) + 1, 5));
}

TEST(ServeQuery, PickQueryIsDeterministicAndCoversEveryShape) {
  QueryMix mix;  // defaults: every shape has weight
  bool saw[kNumQueryShapes] = {};
  for (int i = 0; i < 100; ++i) {
    const double draw = static_cast<double>(i) / 100.0;
    const QueryKey a = pick_query(mix, draw, 17);
    const QueryKey b = pick_query(mix, draw, 17);
    EXPECT_EQ(a, b);
    saw[static_cast<std::size_t>(a.shape)] = true;
  }
  for (std::size_t s = 0; s < kNumQueryShapes; ++s) {
    EXPECT_TRUE(saw[s]) << "shape " << s << " never drawn";
  }
}

}  // namespace
}  // namespace admire::serve
