// SnapshotCache freshness contract: generation-validated entries, covering
// invalidation, and the insert-vs-update race resolution (a build that
// raced an invalidation is discarded, never resurrected).
#include <gtest/gtest.h>

#include "serve/snapshot_cache.h"

namespace admire::serve {
namespace {

CachedSnapshot snap(std::uint64_t version) {
  CachedSnapshot s;
  s.payload = std::make_shared<const Bytes>(to_bytes("payload"));
  s.version = version;
  s.records = 1;
  return s;
}

/// Build-and-insert with no interleaved invalidation (the happy path).
void put(SnapshotCache& cache, const QueryKey& key, std::uint64_t version) {
  const auto token = cache.begin_build(key);
  cache.insert(token, snap(version));
}

TEST(SnapshotCache, MissThenHit) {
  SnapshotCache cache;
  const QueryKey key{QueryShape::kFlight, 7};
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  put(cache, key, 5);
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->version, 5u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(cache.hit_ratio(), 0.0);
}

TEST(SnapshotCache, InvalidateFlightDropsEveryCoveringKey) {
  SnapshotCache cache;
  const FlightKey f = 21;
  const std::vector<QueryKey> covering = {
      {QueryShape::kFlight, f},
      {QueryShape::kAirport, airport_of(f)},
      {QueryShape::kAirline, airline_of(f)},
      {QueryShape::kRegion, region_of(f)},
      {QueryShape::kFullState, 0},
  };
  for (const auto& key : covering) put(cache, key, 1);
  EXPECT_EQ(cache.entries(), covering.size());
  cache.invalidate_flight(f);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.invalidations(), covering.size());
  for (const auto& key : covering) {
    EXPECT_FALSE(cache.lookup(key).has_value());
  }
}

TEST(SnapshotCache, InvalidateFlightKeepsDisjointKeys) {
  SnapshotCache cache;
  const FlightKey f = 21;
  // Keys whose result sets cannot contain flight 21.
  const QueryKey other_flight{QueryShape::kFlight, f + 1};
  const QueryKey other_airport{QueryShape::kAirport,
                               (airport_of(f) + 1) % kNumAirports};
  put(cache, other_flight, 1);
  put(cache, other_airport, 1);
  cache.invalidate_flight(f);
  EXPECT_TRUE(cache.lookup(other_flight).has_value());
  EXPECT_TRUE(cache.lookup(other_airport).has_value());
}

TEST(SnapshotCache, InsertRacingInvalidationIsDiscarded) {
  SnapshotCache cache;
  const QueryKey key{QueryShape::kFlight, 9};
  const auto token = cache.begin_build(key);
  // An update lands after the builder captured its token (and thus
  // possibly after it read pre-update state): the insert must not publish.
  cache.invalidate_flight(9);
  cache.insert(token, snap(1));
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.entries(), 0u);
  // A token minted after the invalidation publishes normally.
  put(cache, key, 2);
  EXPECT_TRUE(cache.lookup(key).has_value());
}

TEST(SnapshotCache, InsertRacingInvalidateAllIsDiscarded) {
  SnapshotCache cache;
  const QueryKey key{QueryShape::kAirport, 3};
  const auto token = cache.begin_build(key);
  cache.invalidate_all();
  cache.insert(token, snap(1));
  EXPECT_FALSE(cache.lookup(key).has_value());
}

TEST(SnapshotCache, InvalidateAllDropsEverything) {
  SnapshotCache cache;
  put(cache, {QueryShape::kFlight, 1}, 1);
  put(cache, {QueryShape::kFullState, 0}, 1);
  cache.invalidate_all();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.invalidations(), 2u);
}

TEST(SnapshotCache, EntryBudgetIsEnforced) {
  SnapshotCache cache(/*max_entries=*/2);
  put(cache, {QueryShape::kFlight, 1}, 1);
  put(cache, {QueryShape::kFlight, 2}, 1);
  put(cache, {QueryShape::kFlight, 3}, 1);
  EXPECT_EQ(cache.entries(), 2u);
  // Re-inserting an existing key is not capacity pressure.
  put(cache, {QueryShape::kFlight, 3}, 2);
  EXPECT_EQ(cache.entries(), 2u);
}

}  // namespace
}  // namespace admire::serve
