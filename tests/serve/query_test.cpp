// Query vocabulary invariants: the shared covering-key derivation (cache
// invalidation and the adaptive index derive membership from the SAME
// list) and the deterministic flight-key distributions both client
// populations draw from.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "serve/query.h"

namespace admire::serve {
namespace {

TEST(CoveringKeys, ExactlyOneEntryPerShapeInWireOrder) {
  for (const FlightKey flight : {1u, 17u, 255u, 65'536u}) {
    const auto keys = covering_keys(flight);
    ASSERT_EQ(keys.size(), kNumQueryShapes);
    for (std::uint8_t s = 0; s < kNumQueryShapes; ++s) {
      // Wire-value order, so adding a QueryShape without extending
      // covering_keys() trips this loop rather than silently skipping
      // invalidation for the new shape.
      EXPECT_EQ(static_cast<std::uint8_t>(keys[s].shape), s);
    }
  }
}

TEST(CoveringKeys, EveryEntryMatchesTheFlightItCovers) {
  for (const FlightKey flight : {1u, 16u, 129u, 4'095u}) {
    for (const QueryKey& k : covering_keys(flight)) {
      EXPECT_TRUE(query_matches(k.shape, k.key, flight))
          << query_shape_name(k.shape) << " key=" << k.key
          << " flight=" << flight;
    }
  }
}

TEST(CoveringKeys, UsesTheSharedDerivations) {
  const FlightKey flight = 1234;
  const auto keys = covering_keys(flight);
  EXPECT_EQ(keys[0].key, flight);
  EXPECT_EQ(keys[1].key, airport_of(flight));
  EXPECT_EQ(keys[2].key, airline_of(flight));
  EXPECT_EQ(keys[3].key, region_of(flight));
  EXPECT_EQ(keys[4].key, 0u);  // full state ignores the key
}

TEST(FlightPickerTest, AllKindsStayInBoundsAndAreDeterministic) {
  constexpr std::uint32_t kSpace = 1000;
  for (const FlightDist::Kind kind :
       {FlightDist::Kind::kUniform, FlightDist::Kind::kZipfian,
        FlightDist::Kind::kHotspot}) {
    FlightDist dist;
    dist.kind = kind;
    const FlightPicker a(dist, kSpace);
    const FlightPicker b(dist, kSpace);
    Rng rng(0x5EED);
    for (int i = 0; i < 20'000; ++i) {
      const double u = rng.next_double();
      const FlightKey key = a.pick(u);
      EXPECT_GE(key, 1u);
      EXPECT_LE(key, kSpace);
      EXPECT_EQ(key, b.pick(u)) << flight_dist_name(kind) << " u=" << u;
    }
    // Boundary draws must not escape [1, space].
    EXPECT_GE(a.pick(0.0), 1u);
    EXPECT_LE(a.pick(0.0), kSpace);
    EXPECT_GE(a.pick(0.999999999), 1u);
    EXPECT_LE(a.pick(0.999999999), kSpace);
  }
}

TEST(FlightPickerTest, ZipfianConcentratesMassOnLowRanks) {
  FlightDist dist;
  dist.kind = FlightDist::Kind::kZipfian;
  const std::uint32_t kSpace = 10'000;
  const FlightPicker picker(dist, kSpace);
  Rng rng(0xC11E47);
  std::map<FlightKey, std::uint64_t> counts;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) ++counts[picker.pick(rng.next_double())];
  // Under uniform the hottest key would get ~5 draws; Zipf(0.99) gives the
  // head orders of magnitude more.
  std::uint64_t head = 0;
  for (FlightKey k = 1; k <= 10; ++k) head += counts[k];
  EXPECT_GT(head, kDraws / 10) << "top-10 keys got " << head << " draws";
  EXPECT_GT(counts[1], counts.count(kSpace) ? counts[kSpace] * 10 : 100u);
}

TEST(FlightPickerTest, HotspotPutsHotWeightOnTheHotPrefix) {
  FlightDist dist;
  dist.kind = FlightDist::Kind::kHotspot;
  dist.hot_fraction = 0.10;
  dist.hot_weight = 0.90;
  const std::uint32_t kSpace = 1000;
  const FlightPicker picker(dist, kSpace);
  Rng rng(0xF00D);
  constexpr int kDraws = 50'000;
  int hot = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (picker.pick(rng.next_double()) <= kSpace / 10) ++hot;
  }
  const double hot_share = static_cast<double>(hot) / kDraws;
  EXPECT_GT(hot_share, 0.85);
  EXPECT_LT(hot_share, 0.95);
}

TEST(FlightPickerTest, UniformMatchesTheLegacyDraw) {
  FlightDist dist;  // default kUniform
  const std::uint32_t kSpace = 256;
  const FlightPicker picker(dist, kSpace);
  Rng rng(0xABCD);
  std::map<FlightKey, std::uint64_t> counts;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) ++counts[picker.pick(rng.next_double())];
  EXPECT_EQ(counts.size(), kSpace);  // every key reachable
  for (const auto& [key, n] : counts) {
    // Each key expects ~390 draws; 4x slack keeps this airtight-free.
    EXPECT_GT(n, 100u) << "key " << key;
    EXPECT_LT(n, 1600u) << "key " << key;
  }
}

TEST(FlightPickerTest, DegenerateSpaceAlwaysPicksTheOnlyKey) {
  for (const FlightDist::Kind kind :
       {FlightDist::Kind::kUniform, FlightDist::Kind::kZipfian,
        FlightDist::Kind::kHotspot}) {
    FlightDist dist;
    dist.kind = kind;
    const FlightPicker picker(dist, 1);
    Rng rng(7);
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(picker.pick(rng.next_double()), 1u);
    }
  }
}

}  // namespace
}  // namespace admire::serve
