// RequestHandler: query evaluation against the operational state, version
// stamping, cache behavior, admission shedding and shutdown draining — the
// transport-independent serving core every runtime shares.
#include <gtest/gtest.h>

#include "ede/operational_state.h"
#include "serve/request_handler.h"

namespace admire::serve {
namespace {

using ede::OperationalState;

void set_flight(OperationalState& state, FlightKey f, std::uint32_t ticketed) {
  state.update(f, [&](ede::FlightRecord& r) {
    r.passengers_ticketed = ticketed;
    ++r.updates_applied;
  });
}

std::vector<ede::FlightRecord> records_of(const HandleOutcome& out) {
  EXPECT_TRUE(out.response.ok());
  if (!out.response.state) return {};
  const auto decoded = decode_record_set(
      ByteSpan(out.response.state->data(), out.response.state->size()));
  EXPECT_TRUE(decoded);
  return decoded ? decoded.value() : std::vector<ede::FlightRecord>{};
}

Request query(QueryShape shape, std::uint32_t key) {
  Request req;
  req.id = 1;
  req.shape = shape;
  req.key = key;
  return req;
}

TEST(RequestHandler, FlightQueryReturnsExactlyThatFlight) {
  OperationalState state;
  set_flight(state, 5, 50);
  set_flight(state, 6, 60);
  RequestHandler h(&state, ServeConfig{});
  const auto out = h.handle(query(QueryShape::kFlight, 5));
  const auto records = records_of(out);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].flight, 5u);
  EXPECT_EQ(records[0].passengers_ticketed, 50u);
  EXPECT_EQ(out.response.version, state.version());
  EXPECT_FALSE(out.shed);
}

TEST(RequestHandler, GroupQueriesSelectDerivedSets) {
  OperationalState state;
  // Flights 0..31: airports 0..15 twice over, airlines 0 and 1.
  for (FlightKey f = 0; f < 32; ++f) set_flight(state, f, 1);
  RequestHandler h(&state, ServeConfig{});

  const auto airport = records_of(h.handle(query(QueryShape::kAirport, 3)));
  ASSERT_EQ(airport.size(), 2u);  // flights 3 and 19
  for (const auto& rec : airport) EXPECT_EQ(airport_of(rec.flight), 3u);

  const auto airline = records_of(h.handle(query(QueryShape::kAirline, 1)));
  ASSERT_EQ(airline.size(), 16u);  // flights 16..31
  for (const auto& rec : airline) EXPECT_EQ(airline_of(rec.flight), 1u);

  const auto region = records_of(h.handle(query(QueryShape::kRegion, 2)));
  ASSERT_EQ(region.size(), 8u);  // airports 2, 6, 10, 14 twice over
  for (const auto& rec : region) EXPECT_EQ(region_of(rec.flight), 2u);

  const auto full = records_of(h.handle(query(QueryShape::kFullState, 0)));
  EXPECT_EQ(full.size(), 32u);
}

TEST(RequestHandler, UnknownFlightAnswersEmptyOk) {
  OperationalState state;
  RequestHandler h(&state, ServeConfig{});
  const auto out = h.handle(query(QueryShape::kFlight, 404));
  EXPECT_TRUE(out.response.ok());
  EXPECT_TRUE(records_of(out).empty());
}

TEST(RequestHandler, RepeatQueryHitsTheCache) {
  OperationalState state;
  set_flight(state, 7, 70);
  RequestHandler h(&state, ServeConfig{});
  const auto first = h.handle(query(QueryShape::kFlight, 7));
  EXPECT_FALSE(first.cache_hit);
  const auto second = h.handle(query(QueryShape::kFlight, 7));
  EXPECT_TRUE(second.cache_hit);
  // Zero-copy: both answers share the same encoded buffer.
  EXPECT_EQ(first.response.state.get(), second.response.state.get());
  EXPECT_EQ(second.response.version, first.response.version);
}

TEST(RequestHandler, UpdateInvalidatesCoveredQueriesOnly) {
  OperationalState state;
  set_flight(state, 7, 70);
  set_flight(state, 8, 80);
  RequestHandler h(&state, ServeConfig{});
  (void)h.handle(query(QueryShape::kFlight, 7));
  (void)h.handle(query(QueryShape::kFlight, 8));

  set_flight(state, 7, 71);
  h.on_state_update(7);

  const auto refetched = h.handle(query(QueryShape::kFlight, 7));
  EXPECT_FALSE(refetched.cache_hit);
  const auto records = records_of(refetched);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].passengers_ticketed, 71u);
  EXPECT_EQ(refetched.response.version, state.version());

  // Flight 8's entry survived (different flight, airport, airline, region).
  EXPECT_TRUE(h.handle(query(QueryShape::kFlight, 8)).cache_hit);
}

TEST(RequestHandler, CacheDisabledAlwaysRebuilds) {
  OperationalState state;
  set_flight(state, 7, 70);
  ServeConfig config;
  config.cache_enabled = false;
  RequestHandler h(&state, config);
  EXPECT_FALSE(h.handle(query(QueryShape::kFlight, 7)).cache_hit);
  EXPECT_FALSE(h.handle(query(QueryShape::kFlight, 7)).cache_hit);
  EXPECT_EQ(h.cache().hits(), 0u);
}

TEST(RequestHandler, SaturatedGateShedsWithRetryHint) {
  OperationalState state;
  ServeConfig config;
  config.max_in_flight = 1;
  config.retry_after_ms = 33;
  RequestHandler h(&state, config);
  // Occupy the only admission slot, as a concurrent request would.
  ASSERT_TRUE(h.admission().try_acquire());
  const auto out = h.handle(query(QueryShape::kFullState, 0));
  EXPECT_TRUE(out.shed);
  EXPECT_EQ(out.response.code, ResponseCode::kRetryAfter);
  EXPECT_EQ(out.response.retry_after_ms, 33u);
  h.admission().release();
  // Slot free again: the same request is served.
  EXPECT_TRUE(h.handle(query(QueryShape::kFullState, 0)).response.ok());
  EXPECT_EQ(h.admission().shed(), 1u);
}

TEST(RequestHandler, ShutdownAnswersShuttingDown) {
  OperationalState state;
  RequestHandler h(&state, ServeConfig{});
  h.begin_shutdown();
  const auto out = h.handle(query(QueryShape::kFullState, 0));
  EXPECT_EQ(out.response.code, ResponseCode::kShuttingDown);
}

TEST(RequestHandler, StateReplacedDropsWholeCache) {
  OperationalState state;
  set_flight(state, 1, 10);
  RequestHandler h(&state, ServeConfig{});
  (void)h.handle(query(QueryShape::kFlight, 1));
  EXPECT_EQ(h.cache().entries(), 1u);
  h.on_state_replaced();
  EXPECT_EQ(h.cache().entries(), 0u);
  EXPECT_FALSE(h.handle(query(QueryShape::kFlight, 1)).cache_hit);
}

}  // namespace
}  // namespace admire::serve
