// Randomized protocol soak: thousands of rounds with random reply subsets,
// reorderings, duplicate deliveries and membership changes. Safety
// (commits monotone, never beyond any reporting participant's progress)
// and liveness (the committed view keeps advancing) must survive all of it.
#include <gtest/gtest.h>

#include <deque>

#include "checkpoint/coordinator.h"
#include "checkpoint/participant.h"
#include "common/rng.h"

namespace admire::checkpoint {
namespace {

event::VectorTimestamp vts(SeqNo s) {
  event::VectorTimestamp v;
  v.observe(0, s);
  return v;
}

TEST(ProtocolSoak, ChaosRunPreservesSafetyAndLiveness) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    std::size_t members = 2 + rng.next_below(4);
    Coordinator coord(0, members);
    // Per-site business-logic progress; sites advance at different speeds.
    std::vector<SeqNo> progress(8, 0);
    std::deque<ControlMessage> in_flight;  // delayed replies
    event::VectorTimestamp last_commit;
    SeqNo min_reported_at_commit = 0;

    for (int step = 0; step < 2000; ++step) {
      const double coin = rng.next_double();
      if (coin < 0.30) {
        // Sites make progress.
        for (std::size_t s = 0; s < members; ++s) {
          progress[s] += rng.next_below(5);
        }
      } else if (coin < 0.55) {
        // Coordinator opens a round; sites reply (some replies delayed,
        // some lost, some duplicated).
        const SeqNo suggested =
            *std::max_element(progress.begin(), progress.begin() + members);
        const auto chkpt = coord.begin_round(vts(suggested));
        for (std::size_t s = 0; s < members; ++s) {
          Participant p(static_cast<SiteId>(s + 1));
          ControlMessage reply = p.make_reply(chkpt, vts(progress[s]));
          if (rng.next_double() < 0.15) continue;      // lost
          if (rng.next_double() < 0.3) {
            in_flight.push_back(reply);                // delayed
          } else {
            auto commit = coord.on_reply(reply);
            if (rng.next_double() < 0.1) (void)coord.on_reply(reply);  // dup
            if (commit.has_value()) {
              ASSERT_TRUE(commit->vts.dominates(last_commit));
              last_commit = commit->vts;
              min_reported_at_commit = std::max<SeqNo>(
                  min_reported_at_commit, last_commit.component(0));
            }
          }
        }
      } else if (coin < 0.85 && !in_flight.empty()) {
        // A delayed (possibly stale-round) reply arrives.
        const std::size_t pick = rng.next_below(in_flight.size());
        auto reply = in_flight[pick];
        in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(pick));
        auto commit = coord.on_reply(reply);
        if (commit.has_value()) {
          ASSERT_TRUE(commit->vts.dominates(last_commit));
          last_commit = commit->vts;
        }
      } else if (coin < 0.92) {
        // Membership churn.
        members = 1 + rng.next_below(6);
        auto commit = coord.set_expected_replies(members);
        if (commit.has_value()) {
          ASSERT_TRUE(commit->vts.dominates(last_commit));
          last_commit = commit->vts;
        }
      }
      // Safety: the committed view never exceeds the fastest site's
      // progress (replies are mins of suggested and local progress).
      const SeqNo fastest =
          *std::max_element(progress.begin(), progress.end());
      ASSERT_LE(last_commit.component(0), fastest) << "seed " << seed;
    }
    // Liveness: despite losses and churn, the view advanced substantially.
    EXPECT_GT(coord.rounds_committed(), 25u) << "seed " << seed;
    EXPECT_GT(last_commit.component(0), 100u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace admire::checkpoint
