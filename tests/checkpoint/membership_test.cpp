// Coordinator membership changes (recovery extension): shrinking must not
// leave rounds stalled on dead sites, growing must wait for the joiner.
#include <gtest/gtest.h>

#include "checkpoint/coordinator.h"

namespace admire::checkpoint {
namespace {

event::VectorTimestamp vts(SeqNo s0) {
  event::VectorTimestamp v;
  v.observe(0, s0);
  return v;
}

ControlMessage reply(std::uint64_t round, SiteId from, SeqNo upto) {
  ControlMessage m;
  m.kind = ControlKind::kChkptReply;
  m.round = round;
  m.from = from;
  m.vts = vts(upto);
  return m;
}

TEST(Membership, ShrinkUnblocksStalledRound) {
  Coordinator coord(0, 3);
  const auto chkpt = coord.begin_round(vts(10));
  EXPECT_FALSE(coord.on_reply(reply(chkpt.round, 1, 10)).has_value());
  EXPECT_FALSE(coord.on_reply(reply(chkpt.round, 2, 8)).has_value());
  // Site 3 died; membership drops to 2 and the round commits immediately.
  auto commit = coord.set_expected_replies(2);
  ASSERT_TRUE(commit.has_value());
  EXPECT_EQ(commit->vts, vts(8));
  EXPECT_EQ(coord.expected_replies(), 2u);
}

TEST(Membership, ShrinkWithNoCompletableRoundReturnsNothing) {
  Coordinator coord(0, 3);
  (void)coord.begin_round(vts(10));  // zero replies so far
  EXPECT_FALSE(coord.set_expected_replies(2).has_value());
  EXPECT_EQ(coord.open_rounds(), 1u);
}

TEST(Membership, ShrinkCommitsNewestCompletableRound) {
  Coordinator coord(0, 3);
  const auto r1 = coord.begin_round(vts(10));
  const auto r2 = coord.begin_round(vts(20));
  (void)coord.on_reply(reply(r1.round, 1, 9));
  (void)coord.on_reply(reply(r1.round, 2, 9));
  (void)coord.on_reply(reply(r2.round, 1, 19));
  (void)coord.on_reply(reply(r2.round, 2, 18));
  auto commit = coord.set_expected_replies(2);
  ASSERT_TRUE(commit.has_value());
  EXPECT_EQ(commit->round, r2.round);  // newest wins; r1 encapsulated
  EXPECT_EQ(commit->vts, vts(18));
  EXPECT_EQ(coord.open_rounds(), 0u);
}

TEST(Membership, GrowRequiresJoinerReply) {
  Coordinator coord(0, 1);
  EXPECT_FALSE(coord.set_expected_replies(2).has_value());
  const auto chkpt = coord.begin_round(vts(5));
  EXPECT_FALSE(coord.on_reply(reply(chkpt.round, 1, 5)).has_value());
  auto commit = coord.on_reply(reply(chkpt.round, 9, 4));
  ASSERT_TRUE(commit.has_value());
  EXPECT_EQ(commit->vts, vts(4));
}

TEST(Membership, ShrinkClampsToOne) {
  Coordinator coord(0, 2);
  (void)coord.set_expected_replies(0);
  EXPECT_EQ(coord.expected_replies(), 1u);
}

}  // namespace
}  // namespace admire::checkpoint
