#include <gtest/gtest.h>

#include "checkpoint/coordinator.h"
#include "checkpoint/participant.h"
#include "common/rng.h"

namespace admire::checkpoint {
namespace {

event::VectorTimestamp vts(SeqNo s0, SeqNo s1 = 0) {
  event::VectorTimestamp v;
  v.observe(0, s0);
  if (s1 > 0) v.observe(1, s1);
  return v;
}

ControlMessage reply(std::uint64_t round, SiteId from,
                     const event::VectorTimestamp& v) {
  ControlMessage m;
  m.kind = ControlKind::kChkptReply;
  m.round = round;
  m.from = from;
  m.vts = v;
  return m;
}

TEST(Messages, CodecRoundTrip) {
  ControlMessage m;
  m.kind = ControlKind::kCommit;
  m.round = 17;
  m.from = 3;
  m.vts = vts(100, 50);
  m.piggyback = to_bytes("directive");
  const Bytes body = encode_control(m);
  auto decoded = decode_control(ByteSpan(body.data(), body.size()));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), m);
}

TEST(Messages, ThroughControlEvent) {
  ControlMessage m;
  m.kind = ControlKind::kChkpt;
  m.round = 1;
  m.vts = vts(5);
  const event::Event ev = to_control_event(m);
  EXPECT_EQ(ev.type(), event::EventType::kControl);
  auto decoded = from_control_event(ev);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), m);
}

TEST(Messages, NonControlEventRejected) {
  auto res = from_control_event(event::make_faa_position(0, 1, {}));
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(Messages, CorruptBodyRejected) {
  Bytes junk = to_bytes("\x09garbage");
  EXPECT_FALSE(decode_control(ByteSpan(junk.data(), junk.size())).is_ok());
  EXPECT_FALSE(decode_control({}).is_ok());
}

TEST(Messages, KindNames) {
  EXPECT_STREQ(control_kind_name(ControlKind::kChkpt), "CHKPT");
  EXPECT_STREQ(control_kind_name(ControlKind::kChkptReply), "CHKPT_REP");
  EXPECT_STREQ(control_kind_name(ControlKind::kCommit), "COMMIT");
}

TEST(Coordinator, SingleRoundCommitIsMinOfReplies) {
  Coordinator coord(0, 3);
  const auto chkpt = coord.begin_round(vts(10, 10));
  EXPECT_EQ(chkpt.kind, ControlKind::kChkpt);
  EXPECT_FALSE(coord.on_reply(reply(chkpt.round, 0, vts(10, 10))).has_value());
  EXPECT_FALSE(coord.on_reply(reply(chkpt.round, 1, vts(8, 10))).has_value());
  auto commit = coord.on_reply(reply(chkpt.round, 2, vts(10, 6)));
  ASSERT_TRUE(commit.has_value());
  EXPECT_EQ(commit->kind, ControlKind::kCommit);
  EXPECT_EQ(commit->vts, vts(8, 6));
  EXPECT_EQ(coord.rounds_committed(), 1u);
  EXPECT_EQ(coord.open_rounds(), 0u);
}

TEST(Coordinator, DuplicateReplyFromSameSiteReplaces) {
  Coordinator coord(0, 2);
  const auto chkpt = coord.begin_round(vts(10));
  EXPECT_FALSE(coord.on_reply(reply(chkpt.round, 1, vts(4))).has_value());
  EXPECT_FALSE(coord.on_reply(reply(chkpt.round, 1, vts(6))).has_value());
  auto commit = coord.on_reply(reply(chkpt.round, 2, vts(9)));
  ASSERT_TRUE(commit.has_value());
  EXPECT_EQ(commit->vts, vts(6));
}

TEST(Coordinator, LaterCommitEncapsulatesEarlierRound) {
  // Paper: "if a checkpointing procedure has not completed a commit before
  // the following one is initiated, the later commit will encapsulate the
  // earlier one."
  Coordinator coord(0, 2);
  const auto r1 = coord.begin_round(vts(10));
  const auto r2 = coord.begin_round(vts(20));
  // Round 2 completes first.
  EXPECT_FALSE(coord.on_reply(reply(r2.round, 1, vts(18))).has_value());
  auto commit2 = coord.on_reply(reply(r2.round, 2, vts(19)));
  ASSERT_TRUE(commit2.has_value());
  EXPECT_EQ(commit2->vts, vts(18));
  // Straggler replies for round 1 are ignored — it was encapsulated.
  EXPECT_FALSE(coord.on_reply(reply(r1.round, 1, vts(9))).has_value());
  EXPECT_FALSE(coord.on_reply(reply(r1.round, 2, vts(9))).has_value());
  EXPECT_EQ(coord.rounds_committed(), 1u);
  EXPECT_EQ(coord.committed(), vts(18));
}

TEST(Coordinator, CommitsAreMonotone) {
  Coordinator coord(0, 1);
  const auto r1 = coord.begin_round(vts(10));
  auto c1 = coord.on_reply(reply(r1.round, 1, vts(10)));
  ASSERT_TRUE(c1.has_value());
  const auto r2 = coord.begin_round(vts(20));
  // A lagging participant reports older progress than the last commit.
  auto c2 = coord.on_reply(reply(r2.round, 1, vts(5)));
  ASSERT_TRUE(c2.has_value());
  EXPECT_TRUE(c2->vts.dominates(c1->vts));  // merged, never regresses
  EXPECT_EQ(c2->vts, vts(10));
}

TEST(Coordinator, UnknownRoundIgnored) {
  Coordinator coord(0, 1);
  EXPECT_FALSE(coord.on_reply(reply(999, 1, vts(5))).has_value());
}

TEST(Coordinator, PiggybackTravelsOnChkpt) {
  Coordinator coord(0, 1);
  const auto chkpt = coord.begin_round(vts(1), to_bytes("adapt-directive"));
  EXPECT_EQ(chkpt.piggyback, to_bytes("adapt-directive"));
}

TEST(Participant, ReplyIsComponentMin) {
  Participant p(2);
  ControlMessage chkpt;
  chkpt.kind = ControlKind::kChkpt;
  chkpt.round = 4;
  chkpt.vts = vts(10, 20);
  const auto r = p.make_reply(chkpt, vts(15, 12));
  EXPECT_EQ(r.kind, ControlKind::kChkptReply);
  EXPECT_EQ(r.round, 4u);
  EXPECT_EQ(r.from, 2u);
  EXPECT_EQ(r.vts, vts(10, 12));
}

TEST(Participant, ApplyCommitTrimsAndIsMonotone) {
  Participant p(1);
  queueing::BackupQueue backup;
  for (SeqNo i = 1; i <= 10; ++i) {
    event::FaaPosition pos;
    pos.flight = 1;
    event::Event ev = event::make_faa_position(0, i, pos);
    ev.mutable_header().vts = vts(i);
    backup.push(std::move(ev));
  }
  ControlMessage commit;
  commit.kind = ControlKind::kCommit;
  commit.vts = vts(6);
  EXPECT_EQ(p.apply_commit(commit, backup), 6u);
  EXPECT_EQ(p.applied(), vts(6));
  // Stale commit: "if a unit receives a commit identifying an event no
  // longer in its backup, this event is ignored."
  ControlMessage stale;
  stale.kind = ControlKind::kCommit;
  stale.vts = vts(3);
  EXPECT_EQ(p.apply_commit(stale, backup), 0u);
  EXPECT_EQ(p.commits_ignored(), 1u);
  EXPECT_EQ(p.commits_applied(), 1u);
  EXPECT_EQ(backup.size(), 4u);
}

TEST(ProtocolProperty, CommitNeverExceedsAnyParticipantProgress) {
  // Randomized: for any reply pattern, the commit must be dominated by
  // every participant's reported progress (safety: no one is asked to
  // discard an event another site still needs).
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.next_below(6);
    Coordinator coord(0, n);
    const auto chkpt = coord.begin_round(vts(rng.next_below(100), rng.next_below(100)));
    std::vector<event::VectorTimestamp> progress;
    std::optional<ControlMessage> commit;
    for (std::size_t i = 0; i < n; ++i) {
      const auto local = vts(rng.next_below(100), rng.next_below(100));
      progress.push_back(
          event::VectorTimestamp::component_min({chkpt.vts, local}));
      commit = coord.on_reply(
          reply(chkpt.round, static_cast<SiteId>(i + 1), progress.back()));
    }
    ASSERT_TRUE(commit.has_value());
    for (const auto& pr : progress) {
      EXPECT_TRUE(pr.dominates(commit->vts))
          << "commit " << commit->vts.to_string() << " exceeds participant "
          << pr.to_string();
    }
  }
}

TEST(ProtocolProperty, OverlappingRoundsConvergeEventually) {
  // Lost replies stall a round, but later rounds commit and encapsulate it
  // (the paper's no-timeout argument).
  Rng rng(5);
  Coordinator coord(0, 2);
  event::VectorTimestamp last_commit;
  SeqNo progress = 0;
  for (int round = 0; round < 50; ++round) {
    progress += 10;
    const auto chkpt = coord.begin_round(vts(progress));
    // Site 1's reply is "lost" 30% of the time.
    std::optional<ControlMessage> commit;
    if (rng.next_double() > 0.3) {
      commit = coord.on_reply(reply(chkpt.round, 1, vts(progress)));
    }
    auto c2 = coord.on_reply(reply(chkpt.round, 2, vts(progress)));
    if (c2.has_value()) commit = c2;
    if (commit.has_value()) last_commit = commit->vts;
  }
  // Despite losses, the committed view advanced substantially.
  EXPECT_GE(last_commit.component(0), 100u);
}

}  // namespace
}  // namespace admire::checkpoint
