#include "serialize/wire.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace admire::serialize {
namespace {

TEST(Wire, ScalarRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.14159);
  Reader r(ByteSpan(w.buffer().data(), w.buffer().size()));
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Wire, VarintBoundaries) {
  for (std::uint64_t v : std::initializer_list<std::uint64_t>{
           0, 1, 127, 128, 16383, 16384,
           std::numeric_limits<std::uint64_t>::max()}) {
    Writer w;
    w.varint(v);
    Reader r(ByteSpan(w.buffer().data(), w.buffer().size()));
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.ok());
  }
}

TEST(Wire, VarintRandomRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_u64() >> (rng.next_below(64));
    Writer w;
    w.varint(v);
    Reader r(ByteSpan(w.buffer().data(), w.buffer().size()));
    ASSERT_EQ(r.varint(), v);
  }
}

TEST(Wire, BytesLengthPrefixed) {
  Writer w;
  w.bytes(to_bytes("hello"));
  w.bytes({});
  Reader r(ByteSpan(w.buffer().data(), w.buffer().size()));
  const Bytes a = r.bytes();
  EXPECT_EQ(as_string_view(ByteSpan(a.data(), a.size())), "hello");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.ok());
}

TEST(Wire, TruncatedReadIsStickyFailure) {
  Writer w;
  w.u32(1);
  Reader r(ByteSpan(w.buffer().data(), 2));  // only half the u32
  (void)r.u32();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0);  // still failing, returns zero
  EXPECT_FALSE(r.ok());
}

TEST(Wire, TruncatedVarintFails) {
  Bytes bad{std::byte{0x80}, std::byte{0x80}};  // continuation never ends
  Reader r(ByteSpan(bad.data(), bad.size()));
  (void)r.varint();
  EXPECT_FALSE(r.ok());
}

TEST(Wire, OversizedBytesLengthFails) {
  Writer w;
  w.varint(1000);  // claims 1000 bytes, provides none
  Reader r(ByteSpan(w.buffer().data(), w.buffer().size()));
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Wire, NegativeDoubleRoundTrip) {
  Writer w;
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());
  Reader r(ByteSpan(w.buffer().data(), w.buffer().size()));
  EXPECT_DOUBLE_EQ(r.f64(), -0.0);
  EXPECT_TRUE(std::isinf(r.f64()));
}

TEST(Bytes, Fnv1aStableAndSensitive) {
  const Bytes a = to_bytes("abc");
  const Bytes b = to_bytes("abd");
  EXPECT_EQ(fnv1a(ByteSpan(a.data(), a.size())),
            fnv1a(ByteSpan(a.data(), a.size())));
  EXPECT_NE(fnv1a(ByteSpan(a.data(), a.size())),
            fnv1a(ByteSpan(b.data(), b.size())));
}

}  // namespace
}  // namespace admire::serialize
