// Encode-once / zero-copy properties of the event path: the encoded-frame
// cache, the serialization counter behind it, the aliasing decoder, and the
// FrameParser's bounded-memory guarantee.
#include <gtest/gtest.h>

#include <algorithm>

#include "obs/registry.h"
#include "serialize/event_codec.h"

namespace admire::serialize {
namespace {

using event::Event;

Event sample(SeqNo seq = 1, std::size_t padding = 512) {
  event::FaaPosition pos;
  pos.flight = 4;
  pos.lat_deg = 33.6;
  return event::make_faa_position(0, seq, pos, padding);
}

std::uint64_t encode_count() {
  return obs::Registry::global()
      .counter("serialize.encode_events_total")
      .value();
}

TEST(EncodeOnce, SharedEncodingIsCachedAndCountedOnce) {
  const Event ev = sample();
  const std::uint64_t before = encode_count();
  const auto first = encode_event_shared(ev);
  const auto second = encode_event_shared(ev);
  const auto third = encode_event_shared(ev);
  EXPECT_EQ(first.get(), second.get());  // same buffer, not re-serialized
  EXPECT_EQ(first.get(), third.get());
  EXPECT_EQ(encode_count() - before, 1u);
  // The cached bytes are the real encoding.
  auto decoded = decode_event(ByteSpan(first->data(), first->size()));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), ev);
}

TEST(EncodeOnce, CopiesMadeAfterEncodingShareTheCache) {
  Event ev = sample();
  const std::uint64_t before = encode_count();
  (void)encode_event_shared(ev);
  const Event copy_a = ev;
  const Event copy_b = copy_a;
  (void)encode_event_shared(copy_a);
  (void)encode_event_shared(copy_b);
  EXPECT_EQ(encode_count() - before, 1u);  // fan-out copies reuse the bytes
}

TEST(EncodeOnce, MutationInvalidatesAndReencodes) {
  Event ev = sample();
  const auto first = encode_event_shared(ev);
  ev.mutable_header().seq = 99;
  EXPECT_EQ(ev.encoded_cache(), nullptr);
  const std::uint64_t before = encode_count();
  const auto second = encode_event_shared(ev);
  EXPECT_EQ(encode_count() - before, 1u);
  EXPECT_NE(first.get(), second.get());
  // Stale bytes must never be served: the re-encoding reflects the new seq.
  auto decoded = decode_event(ByteSpan(second->data(), second->size()));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().seq(), 99u);
}

TEST(ZeroCopyDecode, PaddingAliasesTheFrameBuffer) {
  const Event ev = sample(7, 1024);
  auto frame = std::make_shared<const Bytes>(encode_event(ev));
  auto decoded = decode_event_shared(frame);
  ASSERT_TRUE(decoded.is_ok());
  const Event& got = decoded.value();
  EXPECT_EQ(got, ev);
  // The padding view must point INTO the frame buffer — no copy was taken.
  const std::byte* begin = frame->data();
  const std::byte* end = frame->data() + frame->size();
  ASSERT_EQ(got.padding().size(), 1024u);
  EXPECT_GE(got.padding().data(), begin);
  EXPECT_LE(got.padding().data() + got.padding().size(), end);
}

TEST(ZeroCopyDecode, FrameBecomesTheEncodedCache) {
  const Event ev = sample(8, 256);
  auto frame = std::make_shared<const Bytes>(encode_event(ev));
  auto decoded = decode_event_shared(frame);
  ASSERT_TRUE(decoded.is_ok());
  // Re-exporting the decoded event (mirror chains) costs zero encodes.
  EXPECT_EQ(decoded.value().encoded_cache().get(), frame.get());
  const std::uint64_t before = encode_count();
  const auto reencoded = encode_event_shared(decoded.value());
  EXPECT_EQ(encode_count(), before);
  EXPECT_EQ(reencoded.get(), frame.get());
}

TEST(ZeroCopyDecode, FrameOutlivesDecoderScope) {
  Event got;
  {
    auto frame = std::make_shared<const Bytes>(encode_event(sample(9, 2048)));
    auto decoded = decode_event_shared(frame);
    ASSERT_TRUE(decoded.is_ok());
    got = std::move(decoded).value();
  }  // the local shared_ptr dies; the event keeps the buffer alive
  EXPECT_EQ(got.padding().size(), 2048u);
  EXPECT_EQ(got.seq(), 9u);
  volatile std::byte sink{};
  for (std::byte b : got.padding()) sink = b;  // must not be use-after-free
  (void)sink;
}

TEST(ZeroCopyDecode, CorruptFrameRejected) {
  auto truncated = std::make_shared<const Bytes>(Bytes(3));
  EXPECT_FALSE(decode_event_shared(truncated).is_ok());
  Bytes mangled = encode_event(sample());
  mangled.resize(mangled.size() / 2);
  EXPECT_FALSE(
      decode_event_shared(std::make_shared<const Bytes>(std::move(mangled)))
          .is_ok());
}

TEST(ZeroCopyDecode, MatchesCopyingDecoder) {
  for (std::size_t padding : {std::size_t{0}, std::size_t{1},
                              std::size_t{700}, std::size_t{8192}}) {
    const Event ev = sample(3, padding);
    const Bytes frame = encode_event(ev);
    auto by_span = decode_event(ByteSpan(frame.data(), frame.size()));
    auto by_share = decode_event_shared(std::make_shared<const Bytes>(frame));
    ASSERT_TRUE(by_span.is_ok());
    ASSERT_TRUE(by_share.is_ok());
    EXPECT_EQ(by_span.value(), by_share.value());
  }
}

TEST(FrameParserMemory, CapacityBoundedUnderSustainedTraffic) {
  // Regression guard: a long-lived stream must not retain memory
  // proportional to total bytes ever fed — only to the live suffix.
  FrameParser parser;
  const Bytes one_frame = frame(Bytes(1000));
  std::size_t parsed = 0;
  for (int i = 0; i < 2000; ++i) {  // ~2 MB fed over the stream's life
    parser.feed(ByteSpan(one_frame.data(), one_frame.size()));
    while (true) {
      auto next = parser.next();
      if (!next.is_ok()) {
        EXPECT_EQ(next.status().code(), StatusCode::kWouldBlock);
        break;
      }
      ++parsed;
    }
  }
  EXPECT_EQ(parsed, 2000u);
  EXPECT_EQ(parser.pending_bytes(), 0u);
  // Capacity stays near the compaction threshold, far below bytes fed.
  EXPECT_LT(parser.pending_capacity(), 4 * FrameParser::kCompactThreshold);
}

TEST(FrameParserMemory, BurstThenDrainReleasesCapacity) {
  FrameParser parser;
  // One huge feed: 512 frames in a single chunk.
  Bytes burst;
  const Bytes one_frame = frame(Bytes(4096));
  for (int i = 0; i < 512; ++i) {
    burst.insert(burst.end(), one_frame.begin(), one_frame.end());
  }
  parser.feed(ByteSpan(burst.data(), burst.size()));
  std::size_t parsed = 0;
  while (parser.next().is_ok()) ++parsed;
  EXPECT_EQ(parsed, 512u);
  EXPECT_EQ(parser.pending_bytes(), 0u);
  // The burst's multi-MB buffer must have been given back.
  EXPECT_LT(parser.pending_capacity(), burst.size() / 4);
}

}  // namespace
}  // namespace admire::serialize
