#include <gtest/gtest.h>

#include "common/rng.h"
#include "serialize/event_codec.h"

namespace admire::serialize {
namespace {

using event::Event;
using event::EventType;
using event::make_baggage_loaded;
using event::make_control;
using event::make_delta_status;
using event::make_derived;
using event::make_faa_position;
using event::make_passenger_boarded;
using event::make_snapshot;

Event sample_event(EventType type, Rng& rng) {
  const auto flight = static_cast<FlightKey>(1 + rng.next_below(100));
  const auto seq = rng.next_u64() >> 20;
  const std::size_t pad = rng.next_below(512);
  switch (type) {
    case EventType::kFaaPosition: {
      event::FaaPosition p;
      p.flight = flight;
      p.lat_deg = rng.next_double() * 90;
      p.lon_deg = -rng.next_double() * 120;
      p.altitude_ft = rng.next_double() * 40000;
      p.ground_speed_kts = rng.next_double() * 500;
      p.heading_deg = rng.next_double() * 360;
      return make_faa_position(0, seq, p, pad);
    }
    case EventType::kDeltaStatus: {
      event::DeltaStatus p;
      p.flight = flight;
      p.status = static_cast<event::FlightStatus>(rng.next_below(10));
      p.gate = static_cast<std::uint16_t>(rng.next_below(100));
      p.passengers_boarded = static_cast<std::uint32_t>(rng.next_below(300));
      p.passengers_ticketed = static_cast<std::uint32_t>(rng.next_below(300));
      return make_delta_status(1, seq, p, pad);
    }
    case EventType::kPassengerBoarded: {
      event::PassengerBoarded p{flight,
                                static_cast<std::uint32_t>(rng.next_u64())};
      return make_passenger_boarded(1, seq, p);
    }
    case EventType::kBaggageLoaded: {
      event::BaggageLoaded p{flight, static_cast<std::uint32_t>(rng.next_u64())};
      return make_baggage_loaded(1, seq, p);
    }
    case EventType::kDerived: {
      event::Derived p;
      p.flight = flight;
      p.kind = static_cast<event::Derived::Kind>(rng.next_below(3));
      p.status = static_cast<event::FlightStatus>(rng.next_below(10));
      return make_derived(p);
    }
    case EventType::kSnapshot: {
      event::Snapshot p;
      p.request_id = rng.next_u64();
      p.chunk_index = 0;
      p.chunk_count = 1;
      p.state.resize(rng.next_below(256));
      for (auto& b : p.state) b = static_cast<std::byte>(rng.next_below(256));
      return make_snapshot(p);
    }
    case EventType::kControl: {
      Bytes body(rng.next_below(64));
      for (auto& b : body) b = static_cast<std::byte>(rng.next_below(256));
      return make_control(std::move(body));
    }
  }
  return {};
}

class CodecRoundTrip : public ::testing::TestWithParam<EventType> {};

TEST_P(CodecRoundTrip, EncodeDecodeIdentity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int i = 0; i < 50; ++i) {
    Event original = sample_event(GetParam(), rng);
    original.mutable_header().ingress_time = static_cast<Nanos>(rng.next_below(1u << 30));
    original.mutable_header().coalesced = static_cast<std::uint32_t>(1 + rng.next_below(20));
    original.mutable_header().vts.observe(0, rng.next_below(1000));
    original.mutable_header().vts.observe(1, rng.next_below(1000));
    const Bytes wire = encode_event(original);
    auto decoded = decode_event(ByteSpan(wire.data(), wire.size()));
    ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
    EXPECT_EQ(decoded.value(), original);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPayloads, CodecRoundTrip,
    ::testing::Values(EventType::kFaaPosition, EventType::kDeltaStatus,
                      EventType::kPassengerBoarded, EventType::kBaggageLoaded,
                      EventType::kDerived, EventType::kSnapshot,
                      EventType::kControl),
    [](const auto& param_info) { return event::event_type_name(param_info.param); });

TEST(Codec, TruncationAlwaysFailsCleanly) {
  Rng rng(99);
  const Event ev = sample_event(EventType::kFaaPosition, rng);
  const Bytes wire = encode_event(ev);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    auto res = decode_event(ByteSpan(wire.data(), cut));
    EXPECT_FALSE(res.is_ok()) << "decoded from " << cut << " bytes";
  }
}

TEST(Codec, TrailingGarbageRejected) {
  Rng rng(100);
  Bytes wire = encode_event(sample_event(EventType::kDeltaStatus, rng));
  wire.push_back(std::byte{0x42});
  auto res = decode_event(ByteSpan(wire.data(), wire.size()));
  EXPECT_FALSE(res.is_ok());
}

TEST(Codec, RandomBytesDoNotCrash) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    Bytes junk(rng.next_below(200));
    for (auto& b : junk) b = static_cast<std::byte>(rng.next_below(256));
    (void)decode_event(ByteSpan(junk.data(), junk.size()));  // must not crash
  }
}

TEST(Frame, RoundTripThroughParser) {
  const Bytes body = to_bytes("payload-123");
  const Bytes framed = frame(ByteSpan(body.data(), body.size()));
  FrameParser parser;
  parser.feed(ByteSpan(framed.data(), framed.size()));
  auto out = parser.next();
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value(), body);
  EXPECT_EQ(parser.next().status().code(), StatusCode::kWouldBlock);
}

TEST(Frame, ByteAtATimeDelivery) {
  const Bytes body = to_bytes("slow network");
  const Bytes framed = frame(ByteSpan(body.data(), body.size()));
  FrameParser parser;
  for (std::size_t i = 0; i < framed.size(); ++i) {
    parser.feed(ByteSpan(&framed[i], 1));
    auto res = parser.next();
    if (i + 1 < framed.size()) {
      EXPECT_EQ(res.status().code(), StatusCode::kWouldBlock);
    } else {
      ASSERT_TRUE(res.is_ok());
      EXPECT_EQ(res.value(), body);
    }
  }
}

TEST(Frame, MultipleFramesInOneChunk) {
  Bytes stream;
  for (int i = 0; i < 5; ++i) {
    const Bytes body = to_bytes(std::string(i + 1, 'a' + i));
    const Bytes framed = frame(ByteSpan(body.data(), body.size()));
    stream.insert(stream.end(), framed.begin(), framed.end());
  }
  FrameParser parser;
  parser.feed(ByteSpan(stream.data(), stream.size()));
  for (int i = 0; i < 5; ++i) {
    auto res = parser.next();
    ASSERT_TRUE(res.is_ok());
    EXPECT_EQ(res.value().size(), static_cast<std::size_t>(i + 1));
  }
  EXPECT_EQ(parser.next().status().code(), StatusCode::kWouldBlock);
}

TEST(Frame, ChecksumMismatchIsCorrupt) {
  const Bytes body = to_bytes("content");
  Bytes framed = frame(ByteSpan(body.data(), body.size()));
  framed.back() = static_cast<std::byte>(
      static_cast<unsigned>(framed.back()) ^ 0xFF);  // flip a body byte
  FrameParser parser;
  parser.feed(ByteSpan(framed.data(), framed.size()));
  EXPECT_EQ(parser.next().status().code(), StatusCode::kCorrupt);
}

TEST(Frame, OversizedLengthIsCorrupt) {
  Writer w;
  w.u32(100 * 1024 * 1024);  // 100 MB claimed
  w.u64(0);
  FrameParser parser;
  parser.feed(ByteSpan(w.buffer().data(), w.buffer().size()));
  EXPECT_EQ(parser.next().status().code(), StatusCode::kCorrupt);
}

TEST(Frame, EventFrameRoundTrip) {
  Rng rng(11);
  const Event ev = sample_event(EventType::kSnapshot, rng);
  const Bytes framed = frame_event(ev);
  FrameParser parser;
  parser.feed(ByteSpan(framed.data(), framed.size()));
  auto body = parser.next();
  ASSERT_TRUE(body.is_ok());
  auto decoded = decode_event(ByteSpan(body.value().data(), body.value().size()));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), ev);
}

}  // namespace
}  // namespace admire::serialize
