#!/usr/bin/env bash
# One-shot verification: configure, build, run the full test suite, then
# every bench binary (paper-figure reproductions exit nonzero if a
# paper-expected property fails to hold).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

status=0
for b in build/bench/*; do
  echo "==== $b"
  "$b" || status=$?
done
exit "$status"
