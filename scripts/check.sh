#!/usr/bin/env bash
# One-shot verification: configure, build, run the full test suite, then
# every bench binary (paper-figure reproductions exit nonzero if a
# paper-expected property fails to hold).
#
# Usage: scripts/check.sh [--no-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

run_bench=1
for arg in "$@"; do
  case "$arg" in
    --no-bench) run_bench=0 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

# Prefer Ninja for speed but fall back to CMake's default generator
# (usually Unix Makefiles) so the script works on hosts without it.
generator=()
if command -v ninja >/dev/null 2>&1; then
  generator=(-G Ninja)
fi

cmake -B build "${generator[@]}"
cmake --build build -j "$(nproc 2>/dev/null || echo 4)"
ctest --test-dir build --output-on-failure --timeout 600

status=0
if [[ "$run_bench" -eq 1 ]]; then
  for b in build/bench/*; do
    [[ -f "$b" && -x "$b" ]] || continue
    echo "==== $b"
    "$b" || status=$?
  done
fi
exit "$status"
