#!/usr/bin/env bash
# Docs-consistency gate: the documentation names real things.
#
#   1. Every metric name documented in OBSERVABILITY.md must be
#      registered somewhere in src/ (names are assembled from prefix +
#      suffix at registration sites, so each literal piece between
#      <placeholders> is checked independently).
#   2. Every metric-name family registered in src/ must appear in
#      OBSERVABILITY.md (as a literal or through a <placeholder> form).
#   3. Every BENCH_*.json artifact named in the docs must be produced by
#      CI, and every artifact CI produces must be documented.
#   4. The PROTOCOL.md §8 constants table must match the values in
#      src/serve/protocol.h and src/serve/query.h.
#
# Usage: scripts/check_docs.sh   (exits nonzero on any dangling reference)
set -euo pipefail
cd "$(dirname "$0")/.."

python3 - <<'EOF'
import glob, re, sys

failures = []


def fail(msg):
    failures.append(msg)


def read(path):
    with open(path, encoding="utf-8") as f:
        return f.read()


obs = read("OBSERVABILITY.md")
src = ""
for path in sorted(glob.glob("src/**/*.h", recursive=True) +
                   glob.glob("src/**/*.cpp", recursive=True)):
    src += read(path)

# --- 1. documented metric names exist in src -----------------------------
doc_names = set()
for m in re.finditer(r"`([a-z][a-z0-9_.<>]*)`", obs):
    name = m.group(1)
    if "." in name and not name.endswith((".h", ".cpp", ".md", ".sh",
                                          ".json", ".jsonl")):
        doc_names.add(name)
for name in sorted(doc_names):
    # Placeholders (<site>, <chan>, <dest>, <name>, <k>, <target>, ...)
    # stand for runtime labels; each literal piece around them must
    # appear in a registration site. Registration assembles names with
    # string concatenation, so a piece may appear as "prefix" + ... +
    # ".suffix" — check dotted sub-segments individually as a fallback.
    pieces = [p.strip(".") for p in re.split(r"<[^>]+>", name) if p.strip(".")]
    for piece in pieces:
        if piece in src:
            continue
        segments = [s for s in piece.split(".") if s]
        if all(seg in src for seg in segments):
            continue
        fail(f"OBSERVABILITY.md names `{name}` but `{piece}` "
             "is not registered anywhere in src/")

# --- 2. registered metric families are documented ------------------------
# Full literal names ("fd.dead_total") register in one string; assembled
# names contribute their suffix pieces, which step 1 already ties back.
for m in re.finditer(r'"([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+)"', src):
    name = m.group(1)
    if name in obs:
        continue
    # A documented <placeholder> form covers it when the family prefix
    # and the final suffix both appear in the doc (the middle segments
    # are runtime labels the doc writes as <site>/<chan>/<dest>/...).
    segments = name.split(".")
    if segments[0] in obs and segments[-1] in obs:
        continue
    fail(f"src/ registers metric `{name}` but OBSERVABILITY.md "
         "does not document it")

# --- 2b. the sharded-drain metric family is pinned by name ---------------
# The drain shards (DESIGN.md §14) added a metric family whose names the
# bench sweep and the obs tests read back literally; a silent rename in
# either the doc or the registration site would pass the generic checks
# above (the pieces still exist) but break those readers. Pin the exact
# documented forms and their registration suffixes.
for doc_form in ("pipeline.<site>.drain.lock_wait_ns",
                 "pipeline.<site>.drain.drained_total",
                 "pipeline.<site>.drain.shard<k>.drained_total",
                 "queue.<site>.shard<k>.backup.*"):
    if f"`{doc_form}`" not in obs:
        fail(f"OBSERVABILITY.md must document `{doc_form}` "
             "(sharded-drain metric family, DESIGN.md §14)")
for reg_piece in ('".drain.lock_wait_ns"', '".drain.drained_total"',
                  '".drained_total"'):
    if reg_piece not in src:
        fail(f"src/ no longer registers {reg_piece} — the drain.* family "
             "documented in OBSERVABILITY.md went stale")

# --- 2c. the adaptive-index metric family is pinned by name ---------------
# The index.<site>.* family (SERVING.md §7) is read back literally by the
# DES tests and bench/micro_index; pin the documented forms and the
# registration suffixes the same way §2b pins the drain family.
for doc_form in ("index.<site>.builds_indexed_total",
                 "index.<site>.builds_scanned_total",
                 "index.<site>.fallback_scans_total",
                 "index.<site>.cracks_total",
                 "index.<site>.crack_keys_total",
                 "index.<site>.absorbed_keys_total",
                 "index.<site>.resets_total",
                 "index.<site>.keys",
                 "index.<site>.pieces",
                 "index.<site>.coverage.airport",
                 "index.<site>.coverage.airline",
                 "index.<site>.coverage.region"):
    if f"`{doc_form}`" not in obs:
        fail(f"OBSERVABILITY.md must document `{doc_form}` "
             "(adaptive-index metric family, SERVING.md §7)")
for reg_piece in ('".builds_indexed_total"', '".builds_scanned_total"',
                  '".fallback_scans_total"', '".cracks_total"',
                  '".crack_keys_total"', '".absorbed_keys_total"',
                  '".resets_total"', '".coverage.airport"'):
    if reg_piece not in src:
        fail(f"src/ no longer registers {reg_piece} — the index.* family "
             "documented in OBSERVABILITY.md went stale")

# --- 2d. the adaptation metric family is pinned by name -------------------
# The adapt.* family (DESIGN.md §16) is read back literally by the
# controller tests; pin the documented forms and the registration
# suffixes the same way §2b/§2c pin theirs.
for doc_form in ("adapt.value.<variable>",
                 "adapt.engaged",
                 "adapt.excluded_sites",
                 "adapt.transitions_total",
                 "adapt.engage_total",
                 "adapt.release_total",
                 "adapt.decision_ns.<strategy>"):
    if f"`{doc_form}`" not in obs:
        fail(f"OBSERVABILITY.md must document `{doc_form}` "
             "(adaptation metric family, DESIGN.md §16)")
for reg_piece in ('"adapt.value."', '"adapt.engaged"', '"adapt.excluded_sites"',
                  '"adapt.transitions_total"', '"adapt.engage_total"',
                  '"adapt.release_total"', '"adapt.decision_ns."'):
    if reg_piece not in src:
        fail(f"src/ no longer registers {reg_piece} — the adapt.* family "
             "documented in OBSERVABILITY.md went stale")

# --- 2e. the chunked-recovery metric family is pinned by name -------------
# The recovery.* family (DESIGN.md §17) is read back literally by the
# DES failover tests and by dashboards comparing monolithic vs chunked
# bootstraps; pin the documented forms and registration literals the
# same way §2b-§2d pin theirs.
for doc_form in ("recovery.chunks_total",
                 "recovery.bytes_total",
                 "recovery.replay_events_total",
                 "recovery.bootstraps_total",
                 "recovery.donor_pause_ns",
                 "recovery.reintegration_ns"):
    if f"`{doc_form}`" not in obs:
        fail(f"OBSERVABILITY.md must document `{doc_form}` "
             "(chunked-recovery metric family, DESIGN.md §17)")
for reg_piece in ('"recovery.chunks_total"', '"recovery.bytes_total"',
                  '"recovery.replay_events_total"',
                  '"recovery.bootstraps_total"', '"recovery.donor_pause_ns"',
                  '"recovery.reintegration_ns"'):
    if reg_piece not in src:
        fail(f"src/ no longer registers {reg_piece} — the recovery.* family "
             "documented in OBSERVABILITY.md went stale")

# --- 3. bench artifacts: docs vs CI -------------------------------------
doc_text = "".join(read(p) for p in sorted(glob.glob("*.md")))
ci = read(".github/workflows/ci.yml")
bench_src = "".join(read(p) for p in sorted(glob.glob("bench/*")))
doc_artifacts = set(re.findall(r"BENCH_[A-Za-z0-9_]+\.json", doc_text))
ci_artifacts = set(re.findall(r"BENCH_[A-Za-z0-9_]+\.json", ci))
for art in sorted(doc_artifacts - ci_artifacts):
    fail(f"docs name artifact {art} but CI never produces it")
for art in sorted(ci_artifacts - doc_artifacts):
    fail(f"CI produces artifact {art} but no doc mentions it")
# Every artifact needs a bench that can emit JSON at all.
if doc_artifacts and "--json" not in bench_src:
    fail("docs name BENCH_*.json artifacts but no bench takes --json")
# The chunked-rejoin experiment (DESIGN.md §17) lands in the failover
# artifact; pin it so neither the doc mention nor the CI production can
# silently drop.
if "BENCH_failover.json" not in (doc_artifacts & ci_artifacts):
    fail("BENCH_failover.json (chunked-rejoin gate, DESIGN.md §17) must be "
         "documented and produced by CI")
if "chunked_rejoin" not in bench_src:
    fail("bench/fig_failover no longer emits the chunked_rejoin JSON block "
         "documented with DESIGN.md §17")

# --- 4. PROTOCOL.md §8 constants match the serve headers ----------------
proto_doc = read("PROTOCOL.md")
headers = read("src/serve/protocol.h") + read("src/serve/query.h")


def header_value(pattern, what):
    m = re.search(pattern, headers)
    if not m:
        fail(f"cannot find {what} in serve headers (check_docs.sh "
             "pattern needs updating)")
        return None
    return m.group(1)


def doc_value(row_key):
    m = re.search(r"\|\s*" + re.escape(row_key) + r"\s*\|\s*(\d+)\s*\|",
                  proto_doc)
    if not m:
        fail(f"PROTOCOL.md §8 constants table has no row for {row_key}")
        return None
    return m.group(1)


expected = {
    "`SERVE_PROTOCOL_VERSION`":
        header_value(r"kServeProtocolVersion\s*=\s*(\d+)",
                     "kServeProtocolVersion"),
    "`FRAME_REQUEST`":
        header_value(r"kFrameRequest\s*=\s*(\d+)", "kFrameRequest"),
    "`FRAME_RESPONSE`":
        header_value(r"kFrameResponse\s*=\s*(\d+)", "kFrameResponse"),
    "`NUM_QUERY_SHAPES`":
        header_value(r"kNumQueryShapes\s*=\s*(\d+)", "kNumQueryShapes"),
    "`NUM_AIRPORTS`":
        header_value(r"kNumAirports\s*=\s*(\d+)", "kNumAirports"),
    "`NUM_AIRLINES`":
        header_value(r"kNumAirlines\s*=\s*(\d+)", "kNumAirlines"),
    "`NUM_REGIONS`":
        header_value(r"kNumRegions\s*=\s*(\d+)", "kNumRegions"),
    "shape `FLIGHT`": header_value(r"kFlight\s*=\s*(\d+)", "kFlight"),
    "shape `AIRPORT`": header_value(r"kAirport\s*=\s*(\d+)", "kAirport"),
    "shape `AIRLINE`": header_value(r"kAirline\s*=\s*(\d+)", "kAirline"),
    "shape `REGION`": header_value(r"kRegion\s*=\s*(\d+)", "kRegion"),
    "shape `FULL_STATE`":
        header_value(r"kFullState\s*=\s*(\d+)", "kFullState"),
    "code `OK`": header_value(r"kOk\s*=\s*(\d+)", "kOk"),
    "code `RETRY_AFTER`":
        header_value(r"kRetryAfter\s*=\s*(\d+)", "kRetryAfter"),
    "code `BAD_REQUEST`":
        header_value(r"kBadRequest\s*=\s*(\d+)", "kBadRequest"),
    "code `SHUTTING_DOWN`":
        header_value(r"kShuttingDown\s*=\s*(\d+)", "kShuttingDown"),
}
m = re.search(r"kMaxFrameBytes\s*=\s*(\d+)u\s*\*\s*(\d+)\s*\*\s*(\d+)",
              headers)
if m:
    a, b, c = (int(x) for x in m.groups())
    expected["`MAX_FRAME_BYTES`"] = str(a * b * c)
else:
    fail("cannot parse kMaxFrameBytes from src/serve/protocol.h")
for row_key, want in expected.items():
    if want is None:
        continue
    got = doc_value(row_key)
    if got is not None and got != want:
        fail(f"PROTOCOL.md §8 says {row_key} = {got}, headers say {want}")

if failures:
    for msg in failures:
        print(f"check_docs: {msg}", file=sys.stderr)
    print(f"check_docs: {len(failures)} inconsistencies", file=sys.stderr)
    sys.exit(1)
print("check_docs: docs and source agree")
EOF
