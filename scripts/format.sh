#!/usr/bin/env bash
# clang-format check over the first-party sources. Degrades gracefully:
# exits 0 with a notice when clang-format is not installed (it is not part
# of the baked toolchain on every host/CI image).
#
# Usage: scripts/format.sh [--fix]
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format.sh: clang-format not found; skipping format check." >&2
  exit 0
fi

mode=(--dry-run --Werror)
if [[ "${1:-}" == "--fix" ]]; then
  mode=(-i)
fi

mapfile -t files < <(find src tests bench examples \
  -name '*.h' -o -name '*.cpp' | sort)
clang-format "${mode[@]}" --style=file "${files[@]}"
