file(REMOVE_RECURSE
  "CMakeFiles/fig9_adaptation.dir/fig9_adaptation.cpp.o"
  "CMakeFiles/fig9_adaptation.dir/fig9_adaptation.cpp.o.d"
  "fig9_adaptation"
  "fig9_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
