file(REMOVE_RECURSE
  "CMakeFiles/fig8_update_delay.dir/fig8_update_delay.cpp.o"
  "CMakeFiles/fig8_update_delay.dir/fig8_update_delay.cpp.o.d"
  "fig8_update_delay"
  "fig8_update_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_update_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
