# Empty dependencies file for fig5_mirror_scaling.
# This may be replaced when dependencies are built.
