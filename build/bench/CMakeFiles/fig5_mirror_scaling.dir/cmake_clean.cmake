file(REMOVE_RECURSE
  "CMakeFiles/fig5_mirror_scaling.dir/fig5_mirror_scaling.cpp.o"
  "CMakeFiles/fig5_mirror_scaling.dir/fig5_mirror_scaling.cpp.o.d"
  "fig5_mirror_scaling"
  "fig5_mirror_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mirror_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
