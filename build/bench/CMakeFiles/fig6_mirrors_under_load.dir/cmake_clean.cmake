file(REMOVE_RECURSE
  "CMakeFiles/fig6_mirrors_under_load.dir/fig6_mirrors_under_load.cpp.o"
  "CMakeFiles/fig6_mirrors_under_load.dir/fig6_mirrors_under_load.cpp.o.d"
  "fig6_mirrors_under_load"
  "fig6_mirrors_under_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mirrors_under_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
