# Empty compiler generated dependencies file for fig6_mirrors_under_load.
# This may be replaced when dependencies are built.
