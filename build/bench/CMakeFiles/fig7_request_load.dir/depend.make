# Empty dependencies file for fig7_request_load.
# This may be replaced when dependencies are built.
