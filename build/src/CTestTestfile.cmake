# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("event")
subdirs("serialize")
subdirs("transport")
subdirs("echo")
subdirs("queueing")
subdirs("rules")
subdirs("checkpoint")
subdirs("adapt")
subdirs("ede")
subdirs("mirror")
subdirs("recovery")
subdirs("client")
subdirs("oplog")
subdirs("workload")
subdirs("metrics")
subdirs("sim")
subdirs("cluster")
subdirs("harness")
