file(REMOVE_RECURSE
  "libadmire_metrics.a"
)
