file(REMOVE_RECURSE
  "CMakeFiles/admire_metrics.dir/metrics.cpp.o"
  "CMakeFiles/admire_metrics.dir/metrics.cpp.o.d"
  "libadmire_metrics.a"
  "libadmire_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admire_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
