# Empty compiler generated dependencies file for admire_metrics.
# This may be replaced when dependencies are built.
