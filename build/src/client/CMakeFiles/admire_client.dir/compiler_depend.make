# Empty compiler generated dependencies file for admire_client.
# This may be replaced when dependencies are built.
