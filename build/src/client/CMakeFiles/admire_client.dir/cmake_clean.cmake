file(REMOVE_RECURSE
  "CMakeFiles/admire_client.dir/thin_client.cpp.o"
  "CMakeFiles/admire_client.dir/thin_client.cpp.o.d"
  "libadmire_client.a"
  "libadmire_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admire_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
