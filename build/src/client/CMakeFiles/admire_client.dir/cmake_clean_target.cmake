file(REMOVE_RECURSE
  "libadmire_client.a"
)
