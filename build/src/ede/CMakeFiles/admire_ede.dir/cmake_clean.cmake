file(REMOVE_RECURSE
  "CMakeFiles/admire_ede.dir/engine.cpp.o"
  "CMakeFiles/admire_ede.dir/engine.cpp.o.d"
  "CMakeFiles/admire_ede.dir/operational_state.cpp.o"
  "CMakeFiles/admire_ede.dir/operational_state.cpp.o.d"
  "CMakeFiles/admire_ede.dir/snapshot.cpp.o"
  "CMakeFiles/admire_ede.dir/snapshot.cpp.o.d"
  "libadmire_ede.a"
  "libadmire_ede.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admire_ede.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
