# Empty dependencies file for admire_ede.
# This may be replaced when dependencies are built.
