file(REMOVE_RECURSE
  "libadmire_ede.a"
)
