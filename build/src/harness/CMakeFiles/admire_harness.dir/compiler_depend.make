# Empty compiler generated dependencies file for admire_harness.
# This may be replaced when dependencies are built.
