file(REMOVE_RECURSE
  "CMakeFiles/admire_harness.dir/experiments.cpp.o"
  "CMakeFiles/admire_harness.dir/experiments.cpp.o.d"
  "libadmire_harness.a"
  "libadmire_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admire_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
