file(REMOVE_RECURSE
  "libadmire_harness.a"
)
