file(REMOVE_RECURSE
  "CMakeFiles/admire_recovery.dir/recovery.cpp.o"
  "CMakeFiles/admire_recovery.dir/recovery.cpp.o.d"
  "libadmire_recovery.a"
  "libadmire_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admire_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
