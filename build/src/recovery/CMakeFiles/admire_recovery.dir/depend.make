# Empty dependencies file for admire_recovery.
# This may be replaced when dependencies are built.
