
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recovery/recovery.cpp" "src/recovery/CMakeFiles/admire_recovery.dir/recovery.cpp.o" "gcc" "src/recovery/CMakeFiles/admire_recovery.dir/recovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mirror/CMakeFiles/admire_mirror.dir/DependInfo.cmake"
  "/root/repo/build/src/ede/CMakeFiles/admire_ede.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/admire_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/admire_common.dir/DependInfo.cmake"
  "/root/repo/build/src/adapt/CMakeFiles/admire_adapt.dir/DependInfo.cmake"
  "/root/repo/build/src/checkpoint/CMakeFiles/admire_checkpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/admire_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/admire_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/admire_queueing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
