file(REMOVE_RECURSE
  "libadmire_recovery.a"
)
