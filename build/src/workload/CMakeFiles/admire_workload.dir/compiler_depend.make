# Empty compiler generated dependencies file for admire_workload.
# This may be replaced when dependencies are built.
