file(REMOVE_RECURSE
  "libadmire_workload.a"
)
