
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/delta_stream.cpp" "src/workload/CMakeFiles/admire_workload.dir/delta_stream.cpp.o" "gcc" "src/workload/CMakeFiles/admire_workload.dir/delta_stream.cpp.o.d"
  "/root/repo/src/workload/faa_stream.cpp" "src/workload/CMakeFiles/admire_workload.dir/faa_stream.cpp.o" "gcc" "src/workload/CMakeFiles/admire_workload.dir/faa_stream.cpp.o.d"
  "/root/repo/src/workload/requests.cpp" "src/workload/CMakeFiles/admire_workload.dir/requests.cpp.o" "gcc" "src/workload/CMakeFiles/admire_workload.dir/requests.cpp.o.d"
  "/root/repo/src/workload/scenario.cpp" "src/workload/CMakeFiles/admire_workload.dir/scenario.cpp.o" "gcc" "src/workload/CMakeFiles/admire_workload.dir/scenario.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/admire_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/admire_workload.dir/trace.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/workload/CMakeFiles/admire_workload.dir/trace_io.cpp.o" "gcc" "src/workload/CMakeFiles/admire_workload.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/serialize/CMakeFiles/admire_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/admire_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/admire_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
