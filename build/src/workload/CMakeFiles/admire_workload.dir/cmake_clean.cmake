file(REMOVE_RECURSE
  "CMakeFiles/admire_workload.dir/delta_stream.cpp.o"
  "CMakeFiles/admire_workload.dir/delta_stream.cpp.o.d"
  "CMakeFiles/admire_workload.dir/faa_stream.cpp.o"
  "CMakeFiles/admire_workload.dir/faa_stream.cpp.o.d"
  "CMakeFiles/admire_workload.dir/requests.cpp.o"
  "CMakeFiles/admire_workload.dir/requests.cpp.o.d"
  "CMakeFiles/admire_workload.dir/scenario.cpp.o"
  "CMakeFiles/admire_workload.dir/scenario.cpp.o.d"
  "CMakeFiles/admire_workload.dir/trace.cpp.o"
  "CMakeFiles/admire_workload.dir/trace.cpp.o.d"
  "CMakeFiles/admire_workload.dir/trace_io.cpp.o"
  "CMakeFiles/admire_workload.dir/trace_io.cpp.o.d"
  "libadmire_workload.a"
  "libadmire_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admire_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
