# Empty compiler generated dependencies file for admire_common.
# This may be replaced when dependencies are built.
