file(REMOVE_RECURSE
  "CMakeFiles/admire_common.dir/cpu_work.cpp.o"
  "CMakeFiles/admire_common.dir/cpu_work.cpp.o.d"
  "CMakeFiles/admire_common.dir/logging.cpp.o"
  "CMakeFiles/admire_common.dir/logging.cpp.o.d"
  "CMakeFiles/admire_common.dir/stats.cpp.o"
  "CMakeFiles/admire_common.dir/stats.cpp.o.d"
  "CMakeFiles/admire_common.dir/status.cpp.o"
  "CMakeFiles/admire_common.dir/status.cpp.o.d"
  "libadmire_common.a"
  "libadmire_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admire_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
