file(REMOVE_RECURSE
  "libadmire_common.a"
)
