file(REMOVE_RECURSE
  "libadmire_sim.a"
)
