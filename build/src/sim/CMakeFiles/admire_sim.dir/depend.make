# Empty dependencies file for admire_sim.
# This may be replaced when dependencies are built.
