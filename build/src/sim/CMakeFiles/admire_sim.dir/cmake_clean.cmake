file(REMOVE_RECURSE
  "CMakeFiles/admire_sim.dir/cost_model.cpp.o"
  "CMakeFiles/admire_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/admire_sim.dir/engine.cpp.o"
  "CMakeFiles/admire_sim.dir/engine.cpp.o.d"
  "CMakeFiles/admire_sim.dir/sim_cluster.cpp.o"
  "CMakeFiles/admire_sim.dir/sim_cluster.cpp.o.d"
  "libadmire_sim.a"
  "libadmire_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admire_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
