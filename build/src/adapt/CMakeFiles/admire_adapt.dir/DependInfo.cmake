
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adapt/controller.cpp" "src/adapt/CMakeFiles/admire_adapt.dir/controller.cpp.o" "gcc" "src/adapt/CMakeFiles/admire_adapt.dir/controller.cpp.o.d"
  "/root/repo/src/adapt/directive.cpp" "src/adapt/CMakeFiles/admire_adapt.dir/directive.cpp.o" "gcc" "src/adapt/CMakeFiles/admire_adapt.dir/directive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rules/CMakeFiles/admire_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/admire_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/admire_common.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/admire_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/admire_event.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
