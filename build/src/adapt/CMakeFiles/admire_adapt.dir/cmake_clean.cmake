file(REMOVE_RECURSE
  "CMakeFiles/admire_adapt.dir/controller.cpp.o"
  "CMakeFiles/admire_adapt.dir/controller.cpp.o.d"
  "CMakeFiles/admire_adapt.dir/directive.cpp.o"
  "CMakeFiles/admire_adapt.dir/directive.cpp.o.d"
  "libadmire_adapt.a"
  "libadmire_adapt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admire_adapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
