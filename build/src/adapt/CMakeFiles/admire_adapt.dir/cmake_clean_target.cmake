file(REMOVE_RECURSE
  "libadmire_adapt.a"
)
