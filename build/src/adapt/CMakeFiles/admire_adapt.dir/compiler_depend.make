# Empty compiler generated dependencies file for admire_adapt.
# This may be replaced when dependencies are built.
