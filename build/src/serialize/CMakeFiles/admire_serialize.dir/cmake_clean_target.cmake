file(REMOVE_RECURSE
  "libadmire_serialize.a"
)
