file(REMOVE_RECURSE
  "CMakeFiles/admire_serialize.dir/event_codec.cpp.o"
  "CMakeFiles/admire_serialize.dir/event_codec.cpp.o.d"
  "libadmire_serialize.a"
  "libadmire_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admire_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
