# Empty dependencies file for admire_serialize.
# This may be replaced when dependencies are built.
