# Empty dependencies file for admire_mirror.
# This may be replaced when dependencies are built.
