file(REMOVE_RECURSE
  "libadmire_mirror.a"
)
