file(REMOVE_RECURSE
  "CMakeFiles/admire_mirror.dir/main_unit_core.cpp.o"
  "CMakeFiles/admire_mirror.dir/main_unit_core.cpp.o.d"
  "CMakeFiles/admire_mirror.dir/mirror_aux_core.cpp.o"
  "CMakeFiles/admire_mirror.dir/mirror_aux_core.cpp.o.d"
  "CMakeFiles/admire_mirror.dir/mirroring_api.cpp.o"
  "CMakeFiles/admire_mirror.dir/mirroring_api.cpp.o.d"
  "CMakeFiles/admire_mirror.dir/pipeline_core.cpp.o"
  "CMakeFiles/admire_mirror.dir/pipeline_core.cpp.o.d"
  "libadmire_mirror.a"
  "libadmire_mirror.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admire_mirror.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
