file(REMOVE_RECURSE
  "CMakeFiles/admire_transport.dir/inprocess_link.cpp.o"
  "CMakeFiles/admire_transport.dir/inprocess_link.cpp.o.d"
  "CMakeFiles/admire_transport.dir/tcp.cpp.o"
  "CMakeFiles/admire_transport.dir/tcp.cpp.o.d"
  "libadmire_transport.a"
  "libadmire_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admire_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
