
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/inprocess_link.cpp" "src/transport/CMakeFiles/admire_transport.dir/inprocess_link.cpp.o" "gcc" "src/transport/CMakeFiles/admire_transport.dir/inprocess_link.cpp.o.d"
  "/root/repo/src/transport/tcp.cpp" "src/transport/CMakeFiles/admire_transport.dir/tcp.cpp.o" "gcc" "src/transport/CMakeFiles/admire_transport.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/serialize/CMakeFiles/admire_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/admire_common.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/admire_event.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
