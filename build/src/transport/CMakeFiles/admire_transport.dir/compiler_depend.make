# Empty compiler generated dependencies file for admire_transport.
# This may be replaced when dependencies are built.
