file(REMOVE_RECURSE
  "libadmire_transport.a"
)
