
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oplog/oplog.cpp" "src/oplog/CMakeFiles/admire_oplog.dir/oplog.cpp.o" "gcc" "src/oplog/CMakeFiles/admire_oplog.dir/oplog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/serialize/CMakeFiles/admire_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/admire_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/admire_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
