file(REMOVE_RECURSE
  "libadmire_oplog.a"
)
