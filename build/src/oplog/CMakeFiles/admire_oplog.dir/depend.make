# Empty dependencies file for admire_oplog.
# This may be replaced when dependencies are built.
