file(REMOVE_RECURSE
  "CMakeFiles/admire_oplog.dir/oplog.cpp.o"
  "CMakeFiles/admire_oplog.dir/oplog.cpp.o.d"
  "libadmire_oplog.a"
  "libadmire_oplog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admire_oplog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
