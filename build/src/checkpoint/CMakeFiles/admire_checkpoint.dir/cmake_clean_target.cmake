file(REMOVE_RECURSE
  "libadmire_checkpoint.a"
)
