
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checkpoint/coordinator.cpp" "src/checkpoint/CMakeFiles/admire_checkpoint.dir/coordinator.cpp.o" "gcc" "src/checkpoint/CMakeFiles/admire_checkpoint.dir/coordinator.cpp.o.d"
  "/root/repo/src/checkpoint/messages.cpp" "src/checkpoint/CMakeFiles/admire_checkpoint.dir/messages.cpp.o" "gcc" "src/checkpoint/CMakeFiles/admire_checkpoint.dir/messages.cpp.o.d"
  "/root/repo/src/checkpoint/participant.cpp" "src/checkpoint/CMakeFiles/admire_checkpoint.dir/participant.cpp.o" "gcc" "src/checkpoint/CMakeFiles/admire_checkpoint.dir/participant.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/queueing/CMakeFiles/admire_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/admire_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/admire_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/admire_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
