file(REMOVE_RECURSE
  "CMakeFiles/admire_checkpoint.dir/coordinator.cpp.o"
  "CMakeFiles/admire_checkpoint.dir/coordinator.cpp.o.d"
  "CMakeFiles/admire_checkpoint.dir/messages.cpp.o"
  "CMakeFiles/admire_checkpoint.dir/messages.cpp.o.d"
  "CMakeFiles/admire_checkpoint.dir/participant.cpp.o"
  "CMakeFiles/admire_checkpoint.dir/participant.cpp.o.d"
  "libadmire_checkpoint.a"
  "libadmire_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admire_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
