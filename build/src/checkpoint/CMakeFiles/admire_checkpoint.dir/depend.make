# Empty dependencies file for admire_checkpoint.
# This may be replaced when dependencies are built.
