# Empty compiler generated dependencies file for admire_cluster.
# This may be replaced when dependencies are built.
