file(REMOVE_RECURSE
  "CMakeFiles/admire_cluster.dir/central_site.cpp.o"
  "CMakeFiles/admire_cluster.dir/central_site.cpp.o.d"
  "CMakeFiles/admire_cluster.dir/cluster.cpp.o"
  "CMakeFiles/admire_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/admire_cluster.dir/load_balancer.cpp.o"
  "CMakeFiles/admire_cluster.dir/load_balancer.cpp.o.d"
  "CMakeFiles/admire_cluster.dir/mirror_site.cpp.o"
  "CMakeFiles/admire_cluster.dir/mirror_site.cpp.o.d"
  "CMakeFiles/admire_cluster.dir/remote_mirror.cpp.o"
  "CMakeFiles/admire_cluster.dir/remote_mirror.cpp.o.d"
  "CMakeFiles/admire_cluster.dir/replayer.cpp.o"
  "CMakeFiles/admire_cluster.dir/replayer.cpp.o.d"
  "libadmire_cluster.a"
  "libadmire_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admire_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
