file(REMOVE_RECURSE
  "libadmire_cluster.a"
)
