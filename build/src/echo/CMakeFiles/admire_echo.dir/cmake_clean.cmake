file(REMOVE_RECURSE
  "CMakeFiles/admire_echo.dir/bridge.cpp.o"
  "CMakeFiles/admire_echo.dir/bridge.cpp.o.d"
  "CMakeFiles/admire_echo.dir/channel.cpp.o"
  "CMakeFiles/admire_echo.dir/channel.cpp.o.d"
  "libadmire_echo.a"
  "libadmire_echo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admire_echo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
