file(REMOVE_RECURSE
  "libadmire_echo.a"
)
