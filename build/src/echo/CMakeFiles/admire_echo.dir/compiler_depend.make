# Empty compiler generated dependencies file for admire_echo.
# This may be replaced when dependencies are built.
