
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queueing/backup_queue.cpp" "src/queueing/CMakeFiles/admire_queueing.dir/backup_queue.cpp.o" "gcc" "src/queueing/CMakeFiles/admire_queueing.dir/backup_queue.cpp.o.d"
  "/root/repo/src/queueing/ready_queue.cpp" "src/queueing/CMakeFiles/admire_queueing.dir/ready_queue.cpp.o" "gcc" "src/queueing/CMakeFiles/admire_queueing.dir/ready_queue.cpp.o.d"
  "/root/repo/src/queueing/status_table.cpp" "src/queueing/CMakeFiles/admire_queueing.dir/status_table.cpp.o" "gcc" "src/queueing/CMakeFiles/admire_queueing.dir/status_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/event/CMakeFiles/admire_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/admire_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
