file(REMOVE_RECURSE
  "libadmire_queueing.a"
)
