# Empty compiler generated dependencies file for admire_queueing.
# This may be replaced when dependencies are built.
