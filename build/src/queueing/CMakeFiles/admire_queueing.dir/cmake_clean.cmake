file(REMOVE_RECURSE
  "CMakeFiles/admire_queueing.dir/backup_queue.cpp.o"
  "CMakeFiles/admire_queueing.dir/backup_queue.cpp.o.d"
  "CMakeFiles/admire_queueing.dir/ready_queue.cpp.o"
  "CMakeFiles/admire_queueing.dir/ready_queue.cpp.o.d"
  "CMakeFiles/admire_queueing.dir/status_table.cpp.o"
  "CMakeFiles/admire_queueing.dir/status_table.cpp.o.d"
  "libadmire_queueing.a"
  "libadmire_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admire_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
