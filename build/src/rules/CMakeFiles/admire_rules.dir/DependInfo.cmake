
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/coalescer.cpp" "src/rules/CMakeFiles/admire_rules.dir/coalescer.cpp.o" "gcc" "src/rules/CMakeFiles/admire_rules.dir/coalescer.cpp.o.d"
  "/root/repo/src/rules/params.cpp" "src/rules/CMakeFiles/admire_rules.dir/params.cpp.o" "gcc" "src/rules/CMakeFiles/admire_rules.dir/params.cpp.o.d"
  "/root/repo/src/rules/rule_engine.cpp" "src/rules/CMakeFiles/admire_rules.dir/rule_engine.cpp.o" "gcc" "src/rules/CMakeFiles/admire_rules.dir/rule_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/queueing/CMakeFiles/admire_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/admire_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/admire_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
