file(REMOVE_RECURSE
  "CMakeFiles/admire_rules.dir/coalescer.cpp.o"
  "CMakeFiles/admire_rules.dir/coalescer.cpp.o.d"
  "CMakeFiles/admire_rules.dir/params.cpp.o"
  "CMakeFiles/admire_rules.dir/params.cpp.o.d"
  "CMakeFiles/admire_rules.dir/rule_engine.cpp.o"
  "CMakeFiles/admire_rules.dir/rule_engine.cpp.o.d"
  "libadmire_rules.a"
  "libadmire_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admire_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
