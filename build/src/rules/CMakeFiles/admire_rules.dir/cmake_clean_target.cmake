file(REMOVE_RECURSE
  "libadmire_rules.a"
)
