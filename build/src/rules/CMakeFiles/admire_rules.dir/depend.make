# Empty dependencies file for admire_rules.
# This may be replaced when dependencies are built.
