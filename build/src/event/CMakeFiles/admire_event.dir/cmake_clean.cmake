file(REMOVE_RECURSE
  "CMakeFiles/admire_event.dir/event.cpp.o"
  "CMakeFiles/admire_event.dir/event.cpp.o.d"
  "CMakeFiles/admire_event.dir/payload.cpp.o"
  "CMakeFiles/admire_event.dir/payload.cpp.o.d"
  "CMakeFiles/admire_event.dir/vector_timestamp.cpp.o"
  "CMakeFiles/admire_event.dir/vector_timestamp.cpp.o.d"
  "libadmire_event.a"
  "libadmire_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admire_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
