# Empty compiler generated dependencies file for admire_event.
# This may be replaced when dependencies are built.
