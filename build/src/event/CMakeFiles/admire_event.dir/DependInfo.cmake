
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/event/event.cpp" "src/event/CMakeFiles/admire_event.dir/event.cpp.o" "gcc" "src/event/CMakeFiles/admire_event.dir/event.cpp.o.d"
  "/root/repo/src/event/payload.cpp" "src/event/CMakeFiles/admire_event.dir/payload.cpp.o" "gcc" "src/event/CMakeFiles/admire_event.dir/payload.cpp.o.d"
  "/root/repo/src/event/vector_timestamp.cpp" "src/event/CMakeFiles/admire_event.dir/vector_timestamp.cpp.o" "gcc" "src/event/CMakeFiles/admire_event.dir/vector_timestamp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/admire_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
