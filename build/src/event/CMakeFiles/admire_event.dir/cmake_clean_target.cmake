file(REMOVE_RECURSE
  "libadmire_event.a"
)
