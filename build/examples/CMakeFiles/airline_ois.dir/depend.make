# Empty dependencies file for airline_ois.
# This may be replaced when dependencies are built.
