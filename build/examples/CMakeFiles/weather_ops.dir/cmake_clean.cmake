file(REMOVE_RECURSE
  "CMakeFiles/weather_ops.dir/weather_ops.cpp.o"
  "CMakeFiles/weather_ops.dir/weather_ops.cpp.o.d"
  "weather_ops"
  "weather_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
