# Empty compiler generated dependencies file for weather_ops.
# This may be replaced when dependencies are built.
