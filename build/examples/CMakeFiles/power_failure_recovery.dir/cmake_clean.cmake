file(REMOVE_RECURSE
  "CMakeFiles/power_failure_recovery.dir/power_failure_recovery.cpp.o"
  "CMakeFiles/power_failure_recovery.dir/power_failure_recovery.cpp.o.d"
  "power_failure_recovery"
  "power_failure_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_failure_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
