# Empty compiler generated dependencies file for multiprocess_cluster.
# This may be replaced when dependencies are built.
