file(REMOVE_RECURSE
  "CMakeFiles/multiprocess_cluster.dir/multiprocess_cluster.cpp.o"
  "CMakeFiles/multiprocess_cluster.dir/multiprocess_cluster.cpp.o.d"
  "multiprocess_cluster"
  "multiprocess_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprocess_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
