# Empty dependencies file for mirror_failover.
# This may be replaced when dependencies are built.
