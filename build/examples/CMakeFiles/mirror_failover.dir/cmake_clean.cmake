file(REMOVE_RECURSE
  "CMakeFiles/mirror_failover.dir/mirror_failover.cpp.o"
  "CMakeFiles/mirror_failover.dir/mirror_failover.cpp.o.d"
  "mirror_failover"
  "mirror_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mirror_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
