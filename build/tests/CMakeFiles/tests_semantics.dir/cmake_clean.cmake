file(REMOVE_RECURSE
  "CMakeFiles/tests_semantics.dir/adapt/adapt_test.cpp.o"
  "CMakeFiles/tests_semantics.dir/adapt/adapt_test.cpp.o.d"
  "CMakeFiles/tests_semantics.dir/checkpoint/membership_test.cpp.o"
  "CMakeFiles/tests_semantics.dir/checkpoint/membership_test.cpp.o.d"
  "CMakeFiles/tests_semantics.dir/checkpoint/protocol_test.cpp.o"
  "CMakeFiles/tests_semantics.dir/checkpoint/protocol_test.cpp.o.d"
  "CMakeFiles/tests_semantics.dir/checkpoint/soak_test.cpp.o"
  "CMakeFiles/tests_semantics.dir/checkpoint/soak_test.cpp.o.d"
  "CMakeFiles/tests_semantics.dir/ede/ede_test.cpp.o"
  "CMakeFiles/tests_semantics.dir/ede/ede_test.cpp.o.d"
  "CMakeFiles/tests_semantics.dir/rules/coalescer_test.cpp.o"
  "CMakeFiles/tests_semantics.dir/rules/coalescer_test.cpp.o.d"
  "CMakeFiles/tests_semantics.dir/rules/filter_test.cpp.o"
  "CMakeFiles/tests_semantics.dir/rules/filter_test.cpp.o.d"
  "CMakeFiles/tests_semantics.dir/rules/params_test.cpp.o"
  "CMakeFiles/tests_semantics.dir/rules/params_test.cpp.o.d"
  "CMakeFiles/tests_semantics.dir/rules/rule_engine_test.cpp.o"
  "CMakeFiles/tests_semantics.dir/rules/rule_engine_test.cpp.o.d"
  "tests_semantics"
  "tests_semantics.pdb"
  "tests_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
