# Empty compiler generated dependencies file for tests_semantics.
# This may be replaced when dependencies are built.
