# Empty dependencies file for tests_mirror.
# This may be replaced when dependencies are built.
