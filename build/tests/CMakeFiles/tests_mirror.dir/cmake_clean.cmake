file(REMOVE_RECURSE
  "CMakeFiles/tests_mirror.dir/mirror/api_test.cpp.o"
  "CMakeFiles/tests_mirror.dir/mirror/api_test.cpp.o.d"
  "CMakeFiles/tests_mirror.dir/mirror/pipeline_core_test.cpp.o"
  "CMakeFiles/tests_mirror.dir/mirror/pipeline_core_test.cpp.o.d"
  "CMakeFiles/tests_mirror.dir/mirror/units_test.cpp.o"
  "CMakeFiles/tests_mirror.dir/mirror/units_test.cpp.o.d"
  "CMakeFiles/tests_mirror.dir/workload/trace_io_test.cpp.o"
  "CMakeFiles/tests_mirror.dir/workload/trace_io_test.cpp.o.d"
  "CMakeFiles/tests_mirror.dir/workload/workload_test.cpp.o"
  "CMakeFiles/tests_mirror.dir/workload/workload_test.cpp.o.d"
  "tests_mirror"
  "tests_mirror.pdb"
  "tests_mirror[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_mirror.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
