# Empty dependencies file for tests_foundation.
# This may be replaced when dependencies are built.
