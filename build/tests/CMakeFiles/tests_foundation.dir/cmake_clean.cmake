file(REMOVE_RECURSE
  "CMakeFiles/tests_foundation.dir/common/bounded_queue_test.cpp.o"
  "CMakeFiles/tests_foundation.dir/common/bounded_queue_test.cpp.o.d"
  "CMakeFiles/tests_foundation.dir/common/clock_test.cpp.o"
  "CMakeFiles/tests_foundation.dir/common/clock_test.cpp.o.d"
  "CMakeFiles/tests_foundation.dir/common/rng_test.cpp.o"
  "CMakeFiles/tests_foundation.dir/common/rng_test.cpp.o.d"
  "CMakeFiles/tests_foundation.dir/common/stats_test.cpp.o"
  "CMakeFiles/tests_foundation.dir/common/stats_test.cpp.o.d"
  "CMakeFiles/tests_foundation.dir/common/status_test.cpp.o"
  "CMakeFiles/tests_foundation.dir/common/status_test.cpp.o.d"
  "CMakeFiles/tests_foundation.dir/event/event_test.cpp.o"
  "CMakeFiles/tests_foundation.dir/event/event_test.cpp.o.d"
  "CMakeFiles/tests_foundation.dir/event/vector_timestamp_test.cpp.o"
  "CMakeFiles/tests_foundation.dir/event/vector_timestamp_test.cpp.o.d"
  "CMakeFiles/tests_foundation.dir/serialize/codec_test.cpp.o"
  "CMakeFiles/tests_foundation.dir/serialize/codec_test.cpp.o.d"
  "CMakeFiles/tests_foundation.dir/serialize/wire_test.cpp.o"
  "CMakeFiles/tests_foundation.dir/serialize/wire_test.cpp.o.d"
  "tests_foundation"
  "tests_foundation.pdb"
  "tests_foundation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_foundation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
