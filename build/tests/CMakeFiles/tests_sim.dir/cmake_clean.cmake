file(REMOVE_RECURSE
  "CMakeFiles/tests_sim.dir/metrics/metrics_test.cpp.o"
  "CMakeFiles/tests_sim.dir/metrics/metrics_test.cpp.o.d"
  "CMakeFiles/tests_sim.dir/sim/cost_sensitivity_test.cpp.o"
  "CMakeFiles/tests_sim.dir/sim/cost_sensitivity_test.cpp.o.d"
  "CMakeFiles/tests_sim.dir/sim/failure_injection_test.cpp.o"
  "CMakeFiles/tests_sim.dir/sim/failure_injection_test.cpp.o.d"
  "CMakeFiles/tests_sim.dir/sim/sim_cluster_test.cpp.o"
  "CMakeFiles/tests_sim.dir/sim/sim_cluster_test.cpp.o.d"
  "CMakeFiles/tests_sim.dir/sim/sim_engine_test.cpp.o"
  "CMakeFiles/tests_sim.dir/sim/sim_engine_test.cpp.o.d"
  "tests_sim"
  "tests_sim.pdb"
  "tests_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
