
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/harness/harness_test.cpp" "tests/CMakeFiles/tests_integration.dir/harness/harness_test.cpp.o" "gcc" "tests/CMakeFiles/tests_integration.dir/harness/harness_test.cpp.o.d"
  "/root/repo/tests/integration/concurrency_test.cpp" "tests/CMakeFiles/tests_integration.dir/integration/concurrency_test.cpp.o" "gcc" "tests/CMakeFiles/tests_integration.dir/integration/concurrency_test.cpp.o.d"
  "/root/repo/tests/integration/cross_runtime_test.cpp" "tests/CMakeFiles/tests_integration.dir/integration/cross_runtime_test.cpp.o" "gcc" "tests/CMakeFiles/tests_integration.dir/integration/cross_runtime_test.cpp.o.d"
  "/root/repo/tests/integration/invariants_test.cpp" "tests/CMakeFiles/tests_integration.dir/integration/invariants_test.cpp.o" "gcc" "tests/CMakeFiles/tests_integration.dir/integration/invariants_test.cpp.o.d"
  "/root/repo/tests/integration/model_based_test.cpp" "tests/CMakeFiles/tests_integration.dir/integration/model_based_test.cpp.o" "gcc" "tests/CMakeFiles/tests_integration.dir/integration/model_based_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/admire_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/admire_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/admire_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/admire_client.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/admire_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/mirror/CMakeFiles/admire_mirror.dir/DependInfo.cmake"
  "/root/repo/build/src/adapt/CMakeFiles/admire_adapt.dir/DependInfo.cmake"
  "/root/repo/build/src/checkpoint/CMakeFiles/admire_checkpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/ede/CMakeFiles/admire_ede.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/admire_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/admire_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/echo/CMakeFiles/admire_echo.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/admire_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/admire_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/admire_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/admire_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/admire_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/admire_common.dir/DependInfo.cmake"
  "/root/repo/build/src/oplog/CMakeFiles/admire_oplog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
