file(REMOVE_RECURSE
  "CMakeFiles/tests_integration.dir/harness/harness_test.cpp.o"
  "CMakeFiles/tests_integration.dir/harness/harness_test.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/concurrency_test.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/concurrency_test.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/cross_runtime_test.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/cross_runtime_test.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/invariants_test.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/invariants_test.cpp.o.d"
  "CMakeFiles/tests_integration.dir/integration/model_based_test.cpp.o"
  "CMakeFiles/tests_integration.dir/integration/model_based_test.cpp.o.d"
  "tests_integration"
  "tests_integration.pdb"
  "tests_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
