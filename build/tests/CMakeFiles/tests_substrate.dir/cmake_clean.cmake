file(REMOVE_RECURSE
  "CMakeFiles/tests_substrate.dir/echo/bridge_test.cpp.o"
  "CMakeFiles/tests_substrate.dir/echo/bridge_test.cpp.o.d"
  "CMakeFiles/tests_substrate.dir/echo/channel_roles_test.cpp.o"
  "CMakeFiles/tests_substrate.dir/echo/channel_roles_test.cpp.o.d"
  "CMakeFiles/tests_substrate.dir/echo/channel_test.cpp.o"
  "CMakeFiles/tests_substrate.dir/echo/channel_test.cpp.o.d"
  "CMakeFiles/tests_substrate.dir/queueing/queues_test.cpp.o"
  "CMakeFiles/tests_substrate.dir/queueing/queues_test.cpp.o.d"
  "CMakeFiles/tests_substrate.dir/transport/inprocess_link_test.cpp.o"
  "CMakeFiles/tests_substrate.dir/transport/inprocess_link_test.cpp.o.d"
  "CMakeFiles/tests_substrate.dir/transport/tcp_test.cpp.o"
  "CMakeFiles/tests_substrate.dir/transport/tcp_test.cpp.o.d"
  "tests_substrate"
  "tests_substrate.pdb"
  "tests_substrate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
