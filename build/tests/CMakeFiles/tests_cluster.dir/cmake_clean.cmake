file(REMOVE_RECURSE
  "CMakeFiles/tests_cluster.dir/client/thin_client_test.cpp.o"
  "CMakeFiles/tests_cluster.dir/client/thin_client_test.cpp.o.d"
  "CMakeFiles/tests_cluster.dir/cluster/cluster_test.cpp.o"
  "CMakeFiles/tests_cluster.dir/cluster/cluster_test.cpp.o.d"
  "CMakeFiles/tests_cluster.dir/cluster/remote_mirror_test.cpp.o"
  "CMakeFiles/tests_cluster.dir/cluster/remote_mirror_test.cpp.o.d"
  "CMakeFiles/tests_cluster.dir/cluster/replayer_test.cpp.o"
  "CMakeFiles/tests_cluster.dir/cluster/replayer_test.cpp.o.d"
  "CMakeFiles/tests_cluster.dir/oplog/oplog_test.cpp.o"
  "CMakeFiles/tests_cluster.dir/oplog/oplog_test.cpp.o.d"
  "CMakeFiles/tests_cluster.dir/recovery/recovery_test.cpp.o"
  "CMakeFiles/tests_cluster.dir/recovery/recovery_test.cpp.o.d"
  "tests_cluster"
  "tests_cluster.pdb"
  "tests_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
