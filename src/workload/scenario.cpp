#include "workload/scenario.h"

namespace admire::workload {

Trace make_ois_trace(const ScenarioConfig& config) {
  FaaStreamConfig faa;
  faa.stream = 0;
  faa.num_flights = config.num_flights;
  faa.num_events = config.faa_events;
  faa.mean_interarrival =
      config.faa_events > 0
          ? std::max<Nanos>(1, config.event_horizon /
                                   static_cast<Nanos>(config.faa_events))
          : kMilli;
  faa.padding_bytes = config.event_padding;
  faa.seed = config.seed;

  std::vector<Trace> parts;
  parts.push_back(generate_faa_stream(faa));

  if (config.include_delta_stream) {
    DeltaStreamConfig delta;
    delta.stream = 1;
    delta.num_flights = config.num_flights;
    delta.passengers_per_flight = config.passengers_per_flight;
    delta.horizon = config.event_horizon;
    delta.padding_bytes = std::min<std::size_t>(config.event_padding, 256);
    delta.seed = config.seed ^ 0x9E3779B9;
    parts.push_back(generate_delta_stream(delta));
  }

  return merge_traces(std::move(parts));
}

}  // namespace admire::workload
