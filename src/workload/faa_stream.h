// Synthetic FAA flight-position stream — the paper's experiments replay "a
// demo replay of original FAA streams [containing] flight position entries
// for different flights". This generator reproduces the structural
// properties the semantic rules exploit: long per-flight runs of position
// updates (overwritable), flights landing mid-trace, and a tail of
// positions arriving after landing (discardable via complex-seq rules).
#pragma once

#include "common/rng.h"
#include "workload/trace.h"

namespace admire::workload {

struct FaaStreamConfig {
  StreamId stream = 0;
  std::uint32_t num_flights = 50;
  std::uint64_t num_events = 5000;
  /// Mean inter-arrival between consecutive stream events (exponential
  /// jitter around it keeps per-flight runs irregular but reproducible).
  Nanos mean_interarrival = 2 * kMilli;
  /// Padding appended to each event (experiments sweep wire size).
  std::size_t padding_bytes = 1024;
  std::uint64_t seed = 0x1;
};

Trace generate_faa_stream(const FaaStreamConfig& config);

/// Deterministic kinematic model for one flight; exposed for tests.
class FlightTrack {
 public:
  FlightTrack(FlightKey flight, Rng& rng);

  /// Advance by dt and return the new position report.
  event::FaaPosition step(Nanos dt);

  FlightKey flight() const { return flight_; }

 private:
  FlightKey flight_;
  event::FaaPosition pos_;
};

}  // namespace admire::workload
