// Timed event traces: the unit of workload exchanged between generators,
// the threaded replayer and the discrete-event simulator. Deterministic
// given the generator seed.
#pragma once

#include <vector>

#include "common/types.h"
#include "event/event.h"

namespace admire::workload {

struct TimedEvent {
  Nanos at = 0;  ///< arrival time at the central site (virtual ns from t=0)
  event::Event ev;
};

struct Trace {
  std::vector<TimedEvent> items;

  Nanos duration() const { return items.empty() ? 0 : items.back().at; }
  std::size_t size() const { return items.size(); }
  bool empty() const { return items.empty(); }

  /// Total wire bytes across all events.
  std::uint64_t total_bytes() const;

  /// Count of events of one type.
  std::size_t count_type(event::EventType t) const;
};

/// Stable merge of several traces by arrival time (ties broken by input
/// order, preserving per-stream FIFO).
Trace merge_traces(std::vector<Trace> traces);

/// Client-request arrival times (initial-state requests hitting mirrors).
struct RequestTrace {
  std::vector<Nanos> arrivals;  ///< sorted, ns from t=0

  std::size_t size() const { return arrivals.size(); }

  /// Requests per second over the span [0, horizon].
  double rate_over(Nanos horizon) const;
};

}  // namespace admire::workload
