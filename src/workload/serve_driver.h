// Simulated client population for the serving plane: N worker threads,
// each multiplexing many nonblocking TCP connections through its own epoll
// loop — the flash-crowd counterpart of the event-side trace replayers.
// Every connection runs a closed loop (request -> response -> next
// request), draws queries from the same serve::QueryMix the DES uses, and
// honors RETRY_AFTER hints with real backoff, so the threaded runtime and
// the simulator face the same client behavior.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "common/stats.h"
#include "serve/query.h"

namespace admire::workload {

struct ServeDriverConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< required: the front end's listening port
  /// Client threads; connections are split evenly across them. One epoll
  /// loop per thread scales to tens of thousands of concurrent
  /// connections without a thread per client.
  std::size_t threads = 2;
  std::size_t connections = 64;  ///< concurrent connections, total
  /// Closed-loop requests per connection (a flash crowd's rebooting
  /// display issues 1: connect, fetch initial state, disconnect).
  std::size_t requests_per_connection = 1;
  serve::QueryMix mix;
  std::uint32_t flight_space = 256;  ///< query flight ids drawn from [1, N]
  /// Flight-key skew (uniform / Zipfian / hotspot) — the same deterministic
  /// serve::FlightPicker the DES draws from, so both runtimes can present
  /// identical key popularity to the cache and the adaptive index.
  serve::FlightDist flight_dist;
  std::uint64_t seed = 0xC11E47;
  /// RETRY_AFTER handling: wait the server's hint, then retry the same
  /// request, up to max_retries attempts; afterwards the request counts
  /// as given up, not served.
  std::size_t max_retries = 8;
  /// Per-run wall-clock budget; connections still outstanding when it
  /// expires are counted as errors.
  std::chrono::milliseconds deadline{30'000};
};

struct ServeDriverReport {
  std::uint64_t connections_opened = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t requests_ok = 0;
  std::uint64_t responses_shed = 0;    ///< RETRY_AFTER answers (per attempt)
  std::uint64_t requests_given_up = 0; ///< retries exhausted
  std::uint64_t protocol_errors = 0;   ///< bad frames / decode failures
  std::uint64_t io_errors = 0;         ///< resets, timeouts, short reads
  std::uint64_t payload_bytes = 0;     ///< OK-response state bytes received
  std::uint64_t max_version = 0;       ///< newest status-table version seen
  /// Per-request latency, first attempt -> OK response (includes backoff
  /// waits — what a shed client actually experiences).
  SampleStats latency_ns;

  std::uint64_t requests_attempted() const {
    return requests_ok + requests_given_up;
  }
  double shed_rate() const {
    const double total = static_cast<double>(requests_ok + responses_shed);
    return total == 0.0 ? 0.0 : static_cast<double>(responses_shed) / total;
  }
};

/// Run the full client population to completion (or the deadline) and
/// aggregate every thread's counters. Blocking.
ServeDriverReport run_serve_driver(const ServeDriverConfig& config);

}  // namespace admire::workload
