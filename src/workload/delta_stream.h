// Synthetic Delta-internal stream: flight lifecycle status transitions,
// gate-reader passenger boardings and baggage scans — "current flight
// status (landed, taxiing), passenger and baggage information" (§3.3).
// A configurable fraction of flights completes the landed → at-runway →
// at-gate sequence within the trace, exercising the complex-tuple rule.
#pragma once

#include "common/rng.h"
#include "workload/trace.h"

namespace admire::workload {

struct DeltaStreamConfig {
  StreamId stream = 1;
  std::uint32_t num_flights = 50;
  /// Passengers ticketed (and eventually boarded) per flight.
  std::uint32_t passengers_per_flight = 8;
  std::uint32_t bags_per_flight = 4;
  /// Fraction of flights that complete arrival within the trace.
  double arriving_fraction = 0.5;
  /// Lifecycle events for flight i are spread across [0, horizon].
  Nanos horizon = 10 * kSecond;
  std::size_t padding_bytes = 256;
  std::uint64_t seed = 0x2;
};

Trace generate_delta_stream(const DeltaStreamConfig& config);

}  // namespace admire::workload
