#include "workload/serve_driver.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "serve/protocol.h"

namespace admire::workload {

namespace {

using SteadyTime = std::chrono::steady_clock::time_point;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// One simulated client connection's state machine.
struct ClientConn {
  enum class State { kConnecting, kWaiting, kBackoff, kDone };

  int fd = -1;
  State state = State::kConnecting;
  serve::FrameReader reader;
  Bytes out;
  std::size_t out_off = 0;
  std::size_t remaining = 0;    ///< requests left on this connection
  std::size_t attempt = 0;      ///< retries of the current request
  serve::Request current;       ///< request in flight / being retried
  SteadyTime req_start{};       ///< first attempt of the current request
  SteadyTime retry_at{};        ///< kBackoff: earliest resend time
};

/// One worker thread: its epoll loop, its slice of the connections, its
/// private counters (merged after join — no shared atomics on the hot
/// path).
class DriverWorker {
 public:
  DriverWorker(const ServeDriverConfig& config, std::size_t conns,
               std::uint64_t seed)
      : config_(config),
        num_conns_(conns),
        rng_(seed),
        picker_(config.flight_dist,
                std::max<std::uint32_t>(1, config.flight_space)) {}

  void run() {
    if (num_conns_ == 0) return;
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      report_.io_errors += num_conns_;
      return;
    }
    conns_.resize(num_conns_);
    const SteadyTime deadline =
        std::chrono::steady_clock::now() + config_.deadline;
    for (auto& c : conns_) start_connect(c);
    loop(deadline);
    for (auto& c : conns_) {
      if (c.state != ClientConn::State::kDone) {
        ++report_.io_errors;  // still outstanding at the deadline
        finish(c);
      }
    }
    ::close(epoll_fd_);
  }

  ServeDriverReport& report() { return report_; }

 private:
  void loop(SteadyTime deadline) {
    constexpr int kMaxEvents = 256;
    epoll_event events[kMaxEvents];
    while (live_ > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return;
      int timeout_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count());
      for (const auto& c : conns_) {
        if (c.state != ClientConn::State::kBackoff) continue;
        const int until = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(c.retry_at -
                                                                  now)
                .count());
        timeout_ms = std::clamp(until, 0, timeout_ms);
      }
      const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents,
                                 std::max(timeout_ms, 0));
      if (n < 0 && errno != EINTR) return;
      for (int i = 0; i < n; ++i) {
        auto& c = *static_cast<ClientConn*>(events[i].data.ptr);
        if (c.state == ClientConn::State::kDone) continue;
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          ++report_.io_errors;
          finish(c);
          continue;
        }
        if (c.state == ClientConn::State::kConnecting &&
            (events[i].events & EPOLLOUT) != 0) {
          on_connected(c);
          continue;
        }
        if ((events[i].events & EPOLLIN) != 0) readable(c);
        if (c.state != ClientConn::State::kDone &&
            (events[i].events & EPOLLOUT) != 0) {
          flush(c);
        }
      }
      const auto after = std::chrono::steady_clock::now();
      for (auto& c : conns_) {
        if (c.state == ClientConn::State::kBackoff && c.retry_at <= after) {
          c.state = ClientConn::State::kWaiting;
          send_current(c);  // resend the same request after the hint
        }
      }
    }
  }

  void start_connect(ClientConn& c) {
    c.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (c.fd < 0 || !set_nonblocking(c.fd)) {
      ++report_.connect_failures;
      finish(c);
      return;
    }
    const int one = 1;
    ::setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
      ++report_.connect_failures;
      finish(c);
      return;
    }
    c.remaining = config_.requests_per_connection;
    ++live_;
    const int rc =
        ::connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    epoll_event ev{};
    ev.data.ptr = &c;
    if (rc == 0) {
      ev.events = EPOLLIN;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, c.fd, &ev);
      on_connected(c);
      return;
    }
    if (errno != EINPROGRESS) {
      --live_;
      ++report_.connect_failures;
      finish(c);
      return;
    }
    ev.events = EPOLLOUT;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, c.fd, &ev);
  }

  void on_connected(ClientConn& c) {
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
    if (soerr != 0) {
      --live_;
      ++report_.connect_failures;
      finish(c);
      return;
    }
    ++report_.connections_opened;
    c.state = ClientConn::State::kWaiting;
    update_events(c);
    next_request(c);
  }

  void next_request(ClientConn& c) {
    if (c.remaining == 0) {
      --live_;
      finish(c);
      return;
    }
    --c.remaining;
    c.attempt = 0;
    const serve::QueryKey q = serve::pick_query(
        config_.mix, rng_.next_double(), picker_.pick(rng_.next_double()));
    c.current.id = next_id_++;
    c.current.shape = q.shape;
    c.current.key = q.key;
    c.req_start = std::chrono::steady_clock::now();
    send_current(c);
  }

  void send_current(ClientConn& c) {
    const Bytes frame = serve::frame_request(c.current);
    c.out.insert(c.out.end(), frame.begin(), frame.end());
    flush(c);
  }

  void flush(ClientConn& c) {
    while (c.out_off < c.out.size()) {
      const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                               c.out.size() - c.out_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        --live_;
        ++report_.io_errors;
        finish(c);
        return;
      }
      c.out_off += static_cast<std::size_t>(n);
    }
    if (c.out_off >= c.out.size()) {
      c.out.clear();
      c.out_off = 0;
    }
    update_events(c);
  }

  void readable(ClientConn& c) {
    std::byte chunk[64 * 1024];
    while (true) {
      const ssize_t n = ::recv(c.fd, chunk, sizeof(chunk), 0);
      if (n == 0) {
        --live_;
        ++report_.io_errors;  // server closed with a request outstanding
        finish(c);
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        --live_;
        ++report_.io_errors;
        finish(c);
        return;
      }
      c.reader.feed(ByteSpan(chunk, static_cast<std::size_t>(n)));
      while (auto body = c.reader.next()) {
        auto resp = serve::decode_response(*body);
        if (!resp) {
          ++report_.protocol_errors;
          --live_;
          finish(c);
          return;
        }
        on_response(c, resp.value());
        if (c.state == ClientConn::State::kDone) return;
      }
      if (c.reader.poisoned()) {
        ++report_.protocol_errors;
        --live_;
        finish(c);
        return;
      }
      if (static_cast<std::size_t>(n) < sizeof(chunk)) return;
    }
  }

  void on_response(ClientConn& c, const serve::Response& resp) {
    switch (resp.code) {
      case serve::ResponseCode::kOk: {
        const auto now = std::chrono::steady_clock::now();
        ++report_.requests_ok;
        report_.latency_ns.add(static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                                 c.req_start)
                .count()));
        if (resp.state) report_.payload_bytes += resp.state->size();
        report_.max_version = std::max(report_.max_version, resp.version);
        next_request(c);
        return;
      }
      case serve::ResponseCode::kRetryAfter: {
        ++report_.responses_shed;
        if (++c.attempt > config_.max_retries) {
          ++report_.requests_given_up;
          next_request(c);
          return;
        }
        c.state = ClientConn::State::kBackoff;
        c.retry_at = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(
                         std::max<std::uint32_t>(1, resp.retry_after_ms));
        return;
      }
      case serve::ResponseCode::kBadRequest:
      case serve::ResponseCode::kShuttingDown:
        ++report_.protocol_errors;
        ++report_.requests_given_up;
        --live_;
        finish(c);
        return;
    }
  }

  void update_events(ClientConn& c) {
    if (c.fd < 0) return;
    epoll_event ev{};
    ev.data.ptr = &c;
    ev.events = EPOLLIN | (c.out_off < c.out.size() ? EPOLLOUT : 0u);
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
  }

  void finish(ClientConn& c) {
    if (c.fd >= 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd, nullptr);
      ::close(c.fd);
      c.fd = -1;
    }
    c.state = ClientConn::State::kDone;
  }

  const ServeDriverConfig& config_;
  const std::size_t num_conns_;
  Rng rng_;
  serve::FlightPicker picker_;
  int epoll_fd_ = -1;
  std::vector<ClientConn> conns_;
  std::size_t live_ = 0;  ///< connections not yet kDone
  std::uint64_t next_id_ = 1;
  ServeDriverReport report_;
};

}  // namespace

ServeDriverReport run_serve_driver(const ServeDriverConfig& config) {
  const std::size_t threads = std::max<std::size_t>(1, config.threads);
  std::vector<std::unique_ptr<DriverWorker>> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    // Split the population evenly; earlier threads take the remainder.
    const std::size_t base = config.connections / threads;
    const std::size_t conns = base + (t < config.connections % threads ? 1 : 0);
    workers.push_back(std::make_unique<DriverWorker>(
        config, conns, config.seed ^ (0x9E3779B97F4A7C15ULL * (t + 1))));
  }
  std::vector<std::thread> pool;
  pool.reserve(workers.size());
  for (auto& w : workers) pool.emplace_back([&w] { w->run(); });
  for (auto& th : pool) th.join();

  ServeDriverReport total;
  for (auto& w : workers) {
    const ServeDriverReport& r = w->report();
    total.connections_opened += r.connections_opened;
    total.connect_failures += r.connect_failures;
    total.requests_ok += r.requests_ok;
    total.responses_shed += r.responses_shed;
    total.requests_given_up += r.requests_given_up;
    total.protocol_errors += r.protocol_errors;
    total.io_errors += r.io_errors;
    total.payload_bytes += r.payload_bytes;
    total.max_version = std::max(total.max_version, r.max_version);
    for (std::size_t i = 0; i < r.latency_ns.count(); ++i) {
      // SampleStats has no merge; re-adding keeps exact percentiles.
      total.latency_ns.add(r.latency_ns.sample(i));
    }
  }
  return total;
}

}  // namespace admire::workload
