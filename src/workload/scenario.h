// Canonical experiment scenarios: pre-assembled OIS workloads matching the
// paper's evaluation setup — the "flight positions" event sequence plus the
// Delta lifecycle stream, with knobs for the axes the figures sweep
// (event size, mirror count handled elsewhere, request rate).
#pragma once

#include "workload/delta_stream.h"
#include "workload/faa_stream.h"
#include "workload/requests.h"

namespace admire::workload {

struct ScenarioConfig {
  std::uint64_t faa_events = 5000;
  std::uint32_t num_flights = 50;
  std::size_t event_padding = 1024;   ///< the figures' event-size axis
  Nanos event_horizon = 10 * kSecond; ///< arrival span of the event sequence
  bool include_delta_stream = true;
  std::uint32_t passengers_per_flight = 8;
  std::uint64_t seed = 42;
};

/// The merged two-stream OIS input trace (§3.3: "Two types of event
/// streams exist in our application").
Trace make_ois_trace(const ScenarioConfig& config);

/// Number of distinct input streams in traces built by make_ois_trace.
inline constexpr std::size_t kOisStreams = 2;

}  // namespace admire::workload
