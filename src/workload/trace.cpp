#include "workload/trace.h"

#include <algorithm>

namespace admire::workload {

std::uint64_t Trace::total_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& item : items) sum += item.ev.wire_size();
  return sum;
}

std::size_t Trace::count_type(event::EventType t) const {
  return static_cast<std::size_t>(
      std::count_if(items.begin(), items.end(),
                    [&](const TimedEvent& e) { return e.ev.type() == t; }));
}

Trace merge_traces(std::vector<Trace> traces) {
  Trace out;
  std::size_t total = 0;
  for (const auto& t : traces) total += t.items.size();
  out.items.reserve(total);
  for (auto& t : traces) {
    out.items.insert(out.items.end(),
                     std::make_move_iterator(t.items.begin()),
                     std::make_move_iterator(t.items.end()));
  }
  std::stable_sort(out.items.begin(), out.items.end(),
                   [](const TimedEvent& a, const TimedEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

double RequestTrace::rate_over(Nanos horizon) const {
  if (horizon <= 0) return 0.0;
  return static_cast<double>(arrivals.size()) / to_seconds(horizon);
}

}  // namespace admire::workload
