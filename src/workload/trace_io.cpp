#include "workload/trace_io.h"

#include <cstdio>
#include <memory>

#include "serialize/event_codec.h"
#include "serialize/wire.h"

namespace admire::workload {

namespace {
constexpr std::uint32_t kMagic = 0x41444D54;  // "ADMT"
constexpr std::uint16_t kVersion = 1;
}  // namespace

Bytes encode_trace(const Trace& trace) {
  serialize::Writer body(trace.size() * 64);
  body.varint(trace.size());
  Nanos prev = 0;
  for (const auto& item : trace.items) {
    // Delta-encoded arrival times: traces are time-sorted, so deltas are
    // small non-negative varints.
    body.varint(static_cast<std::uint64_t>(item.at - prev));
    prev = item.at;
    body.bytes(serialize::encode_event(item.ev));
  }
  const Bytes& inner = body.buffer();

  serialize::Writer out(inner.size() + 24);
  out.u32(kMagic);
  out.u16(kVersion);
  out.u64(fnv1a(ByteSpan(inner.data(), inner.size())));
  out.raw(ByteSpan(inner.data(), inner.size()));
  return out.take();
}

Result<Trace> decode_trace(ByteSpan data) {
  serialize::Reader header(data);
  if (header.u32() != kMagic) {
    return err(StatusCode::kCorrupt, "bad trace magic");
  }
  if (header.u16() != kVersion) {
    return err(StatusCode::kCorrupt, "unsupported trace version");
  }
  const std::uint64_t checksum = header.u64();
  if (!header.ok()) return err(StatusCode::kCorrupt, "truncated trace header");
  ByteSpan body(data.data() + header.position(),
                data.size() - header.position());
  if (fnv1a(body) != checksum) {
    return err(StatusCode::kCorrupt, "trace checksum mismatch");
  }

  serialize::Reader r(body);
  const std::uint64_t count = r.varint();
  if (!r.ok() || count > 100'000'000) {
    return err(StatusCode::kCorrupt, "implausible trace length");
  }
  Trace trace;
  trace.items.reserve(count);
  Nanos at = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    at += static_cast<Nanos>(r.varint());
    const Bytes wire = r.bytes();
    if (!r.ok()) return err(StatusCode::kCorrupt, "truncated trace item");
    auto ev = serialize::decode_event(ByteSpan(wire.data(), wire.size()));
    if (!ev.is_ok()) return ev.status();
    trace.items.push_back(TimedEvent{at, std::move(ev).value()});
  }
  if (r.remaining() != 0) {
    return err(StatusCode::kCorrupt, "trailing bytes after trace");
  }
  return trace;
}

Status save_trace(const Trace& trace, const std::string& path) {
  const Bytes data = encode_trace(trace);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (!file) return err(StatusCode::kUnavailable, "cannot open " + path);
  if (std::fwrite(data.data(), 1, data.size(), file.get()) != data.size()) {
    return err(StatusCode::kUnavailable, "short write to " + path);
  }
  return Status::ok();
}

Result<Trace> load_trace(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!file) return err(StatusCode::kNotFound, "cannot open " + path);
  if (std::fseek(file.get(), 0, SEEK_END) != 0) {
    return err(StatusCode::kUnavailable, "seek failed");
  }
  const long size = std::ftell(file.get());
  if (size < 0) return err(StatusCode::kUnavailable, "tell failed");
  std::rewind(file.get());
  Bytes data(static_cast<std::size_t>(size));
  if (std::fread(data.data(), 1, data.size(), file.get()) != data.size()) {
    return err(StatusCode::kUnavailable, "short read from " + path);
  }
  return decode_trace(ByteSpan(data.data(), data.size()));
}

}  // namespace admire::workload
