#include "workload/delta_stream.h"

#include <algorithm>

namespace admire::workload {

namespace {

event::DeltaStatus status_of(FlightKey flight, event::FlightStatus s,
                             std::uint32_t ticketed, std::uint16_t gate) {
  event::DeltaStatus st;
  st.flight = flight;
  st.status = s;
  st.gate = gate;
  st.passengers_ticketed = ticketed;
  return st;
}

}  // namespace

Trace generate_delta_stream(const DeltaStreamConfig& config) {
  Rng rng(config.seed);
  struct Pending {
    Nanos at;
    event::Event ev;  // seq filled after the global time sort
  };
  std::vector<Pending> pending;

  for (std::uint32_t i = 0; i < config.num_flights; ++i) {
    const auto flight = static_cast<FlightKey>(i + 1);
    const auto gate = static_cast<std::uint16_t>(1 + rng.next_below(60));
    const bool arrives = rng.next_double() < config.arriving_fraction;
    const double h = static_cast<double>(config.horizon);

    // Departure phase in the first third of the horizon.
    Nanos t = static_cast<Nanos>(rng.next_double() * h * 0.15);
    auto push_status = [&](event::FlightStatus s) {
      pending.push_back(
          {t, event::make_delta_status(
                  config.stream, 0,
                  status_of(flight, s, config.passengers_per_flight, gate),
                  config.padding_bytes)});
    };

    push_status(event::FlightStatus::kScheduled);
    t += static_cast<Nanos>(rng.next_double() * h * 0.05);
    push_status(event::FlightStatus::kBoarding);

    // Gate-reader swipes while boarding.
    for (std::uint32_t p = 0; p < config.passengers_per_flight; ++p) {
      t += static_cast<Nanos>(rng.next_double() * h * 0.02);
      event::PassengerBoarded pb;
      pb.flight = flight;
      pb.passenger_id = flight * 1000 + p;
      pending.push_back({t, event::make_passenger_boarded(config.stream, 0, pb)});
    }
    for (std::uint32_t b = 0; b < config.bags_per_flight; ++b) {
      const Nanos bag_t =
          t - static_cast<Nanos>(rng.next_double() * h * 0.03);
      event::BaggageLoaded bl;
      bl.flight = flight;
      bl.bag_id = flight * 1000 + b;
      pending.push_back({std::max<Nanos>(bag_t, 0),
                         event::make_baggage_loaded(config.stream, 0, bl)});
    }

    t += static_cast<Nanos>(rng.next_double() * h * 0.05);
    push_status(event::FlightStatus::kDeparted);

    if (arrives) {
      // Arrival phase in the last half: landed -> at runway -> at gate.
      t = static_cast<Nanos>(h * (0.5 + rng.next_double() * 0.4));
      push_status(event::FlightStatus::kLanded);
      t += static_cast<Nanos>(rng.next_double() * h * 0.03);
      push_status(event::FlightStatus::kAtRunway);
      t += static_cast<Nanos>(rng.next_double() * h * 0.03);
      push_status(event::FlightStatus::kAtGate);
    }
  }

  std::stable_sort(pending.begin(), pending.end(),
                   [](const Pending& a, const Pending& b) {
                     return a.at < b.at;
                   });

  Trace trace;
  trace.items.reserve(pending.size());
  SeqNo seq = 1;
  for (auto& p : pending) {
    p.ev.mutable_header().seq = seq++;
    trace.items.push_back(TimedEvent{p.at, std::move(p.ev)});
  }
  return trace;
}

}  // namespace admire::workload
