// Trace persistence: save/load timed event traces as binary files so
// experiments replay bit-identical workloads across machines and runs —
// the equivalent of the paper's "demo replay of original FAA streams".
#pragma once

#include <string>

#include "common/status.h"
#include "workload/trace.h"

namespace admire::workload {

/// File format: magic+version header, varint item count, then per item a
/// varint arrival time delta and a length-prefixed encoded event, followed
/// by a trailing checksum over the whole body.
Status save_trace(const Trace& trace, const std::string& path);

/// Load a trace written by save_trace; kCorrupt on any mismatch.
Result<Trace> load_trace(const std::string& path);

/// In-memory variants (tests, embedding traces in other streams).
Bytes encode_trace(const Trace& trace);
Result<Trace> decode_trace(ByteSpan data);

}  // namespace admire::workload
