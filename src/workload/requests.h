// Client-request load generators — the httperf substitute. The paper uses
// httperf as a constant-rate or bursty source of initial-state requests
// against mirror sites; these open-loop generators provide the same rate
// semantics deterministically.
#pragma once

#include "common/rng.h"
#include "workload/trace.h"

namespace admire::workload {

/// Constant-rate arrivals (httperf's default open-loop behaviour) with
/// optional small jitter so arrivals do not phase-lock with event arrivals.
RequestTrace constant_rate_requests(double per_second, Nanos duration,
                                    std::uint64_t seed = 0x10,
                                    double jitter_fraction = 0.1);

/// Poisson process at the given mean rate.
RequestTrace poisson_requests(double per_second, Nanos duration,
                              std::uint64_t seed = 0x11);

/// Bursty square-wave load (Fig. 9): `base_per_second` normally, spiking to
/// `burst_per_second` for `duty` of each `period`.
RequestTrace bursty_requests(double base_per_second, double burst_per_second,
                             Nanos period, double duty, Nanos duration,
                             std::uint64_t seed = 0x12);

/// Power-failure recovery spike: `count` simultaneous initial-state
/// requests at time `at` (an airport terminal coming back up), on top of a
/// light background rate.
RequestTrace recovery_spike_requests(std::size_t count, Nanos at,
                                     double background_per_second,
                                     Nanos duration,
                                     std::uint64_t seed = 0x13);

/// Merge request traces (sorted result).
RequestTrace merge_requests(std::vector<RequestTrace> traces);

}  // namespace admire::workload
