#include "workload/requests.h"

#include <algorithm>
#include <cmath>

namespace admire::workload {

RequestTrace constant_rate_requests(double per_second, Nanos duration,
                                    std::uint64_t seed,
                                    double jitter_fraction) {
  RequestTrace out;
  if (per_second <= 0.0 || duration <= 0) return out;
  Rng rng(seed);
  const double gap_ns = 1e9 / per_second;
  double t = gap_ns * rng.next_double();  // random phase
  while (t < static_cast<double>(duration)) {
    out.arrivals.push_back(static_cast<Nanos>(t));
    const double jitter = 1.0 + jitter_fraction * (rng.next_double() - 0.5);
    t += gap_ns * jitter;
  }
  return out;
}

RequestTrace poisson_requests(double per_second, Nanos duration,
                              std::uint64_t seed) {
  RequestTrace out;
  if (per_second <= 0.0 || duration <= 0) return out;
  Rng rng(seed);
  double t = 0.0;
  const double mean_gap_ns = 1e9 / per_second;
  while (true) {
    t += rng.next_exponential(mean_gap_ns);
    if (t >= static_cast<double>(duration)) break;
    out.arrivals.push_back(static_cast<Nanos>(t));
  }
  return out;
}

RequestTrace bursty_requests(double base_per_second, double burst_per_second,
                             Nanos period, double duty, Nanos duration,
                             std::uint64_t seed) {
  RequestTrace out;
  if (duration <= 0 || period <= 0) return out;
  Rng rng(seed);
  double t = 0.0;
  while (t < static_cast<double>(duration)) {
    const double phase =
        std::fmod(t, static_cast<double>(period)) / static_cast<double>(period);
    const double rate = phase < duty ? burst_per_second : base_per_second;
    if (rate <= 0.0) {
      // Skip to the next phase boundary.
      const double next_boundary =
          (std::floor(t / static_cast<double>(period)) + (phase < duty ? duty : 1.0)) *
          static_cast<double>(period);
      t = next_boundary + 1.0;
      continue;
    }
    t += rng.next_exponential(1e9 / rate);
    if (t < static_cast<double>(duration)) {
      out.arrivals.push_back(static_cast<Nanos>(t));
    }
  }
  return out;
}

RequestTrace recovery_spike_requests(std::size_t count, Nanos at,
                                     double background_per_second,
                                     Nanos duration, std::uint64_t seed) {
  RequestTrace out = poisson_requests(background_per_second, duration, seed);
  Rng rng(seed ^ 0xABCD);
  for (std::size_t i = 0; i < count; ++i) {
    // The terminal's displays reconnect within a ~50 ms window.
    out.arrivals.push_back(at + static_cast<Nanos>(rng.next_double() * 50.0 *
                                                   static_cast<double>(kMilli)));
  }
  std::sort(out.arrivals.begin(), out.arrivals.end());
  return out;
}

RequestTrace merge_requests(std::vector<RequestTrace> traces) {
  RequestTrace out;
  for (auto& t : traces) {
    out.arrivals.insert(out.arrivals.end(), t.arrivals.begin(),
                        t.arrivals.end());
  }
  std::sort(out.arrivals.begin(), out.arrivals.end());
  return out;
}

}  // namespace admire::workload
