#include "workload/faa_stream.h"

#include <cmath>

namespace admire::workload {

FlightTrack::FlightTrack(FlightKey flight, Rng& rng) : flight_(flight) {
  pos_.flight = flight;
  pos_.lat_deg = 24.0 + rng.next_double() * 25.0;    // continental US-ish
  pos_.lon_deg = -125.0 + rng.next_double() * 58.0;
  pos_.altitude_ft = 28'000.0 + rng.next_double() * 10'000.0;
  pos_.ground_speed_kts = 380.0 + rng.next_double() * 160.0;
  pos_.heading_deg = rng.next_double() * 360.0;
}

event::FaaPosition FlightTrack::step(Nanos dt) {
  const double hours = to_seconds(dt) / 3600.0;
  const double dist_nm = pos_.ground_speed_kts * hours;
  const double heading_rad = pos_.heading_deg * 3.14159265358979 / 180.0;
  pos_.lat_deg += dist_nm / 60.0 * std::cos(heading_rad);
  pos_.lon_deg += dist_nm / 60.0 * std::sin(heading_rad) /
                  std::max(0.2, std::cos(pos_.lat_deg * 3.14159265 / 180.0));
  // Gentle heading drift keeps tracks plausible without extra state.
  pos_.heading_deg = std::fmod(pos_.heading_deg + dist_nm * 0.05, 360.0);
  return pos_;
}

Trace generate_faa_stream(const FaaStreamConfig& config) {
  Rng rng(config.seed);
  Trace trace;
  trace.items.reserve(config.num_events);

  std::vector<FlightTrack> tracks;
  tracks.reserve(config.num_flights);
  for (std::uint32_t i = 0; i < config.num_flights; ++i) {
    tracks.emplace_back(static_cast<FlightKey>(i + 1), rng);
  }

  Nanos now = 0;
  Nanos last_step_for_flight = 0;
  SeqNo seq = 1;
  for (std::uint64_t i = 0; i < config.num_events; ++i) {
    now += static_cast<Nanos>(rng.next_exponential(
        static_cast<double>(config.mean_interarrival)));
    // Round-robin-with-jitter flight selection: every flight receives long
    // runs of updates while arrival order interleaves realistically.
    auto& track = tracks[rng.next_below(tracks.size())];
    const Nanos dt = now - last_step_for_flight;
    last_step_for_flight = now;
    const event::FaaPosition pos = track.step(std::max<Nanos>(dt, kMilli));
    trace.items.push_back(TimedEvent{
        now, event::make_faa_position(config.stream, seq++, pos,
                                      config.padding_bytes)});
  }
  return trace;
}

}  // namespace admire::workload
