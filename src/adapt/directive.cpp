#include "adapt/directive.h"

#include <algorithm>

#include "serialize/wire.h"

namespace admire::adapt {

namespace {

std::uint32_t adjust(std::uint32_t value, int percent) {
  const double adjusted =
      static_cast<double>(value) * (1.0 + static_cast<double>(percent) / 100.0);
  return static_cast<std::uint32_t>(std::max(1.0, adjusted));
}

void encode_spec(const rules::MirrorFunctionSpec& spec, serialize::Writer& w) {
  w.bytes(to_bytes(spec.name));
  w.u8(spec.coalesce_enabled ? 1 : 0);
  w.u32(spec.coalesce_max);
  w.u32(spec.overwrite_max);
  w.u32(spec.checkpoint_every);
}

bool decode_spec(serialize::Reader& r, rules::MirrorFunctionSpec& spec) {
  const Bytes name = r.bytes();
  spec.name = std::string(as_string_view(ByteSpan(name.data(), name.size())));
  spec.coalesce_enabled = r.u8() != 0;
  spec.coalesce_max = r.u32();
  spec.overwrite_max = r.u32();
  spec.checkpoint_every = r.u32();
  return r.ok();
}

}  // namespace

rules::MirrorFunctionSpec apply_adjustments(
    rules::MirrorFunctionSpec spec,
    const std::vector<ParamAdjustment>& adjustments) {
  for (const auto& a : adjustments) {
    switch (a.id) {
      case ParamId::kCoalesceMax:
        spec.coalesce_max = adjust(spec.coalesce_max, a.percent);
        spec.coalesce_enabled = spec.coalesce_max > 1;
        break;
      case ParamId::kOverwriteMax:
        spec.overwrite_max = adjust(spec.overwrite_max, a.percent);
        break;
      case ParamId::kCheckpointEvery:
        spec.checkpoint_every = adjust(spec.checkpoint_every, a.percent);
        break;
    }
  }
  return spec;
}

Bytes encode_directive(const AdaptationDirective& d) {
  serialize::Writer w(64);
  w.u8(1);  // tag: directive
  w.u64(d.epoch);
  w.u8(d.engaged ? 1 : 0);
  encode_spec(d.spec, w);
  return w.take();
}

Result<AdaptationDirective> decode_directive(ByteSpan body) {
  serialize::Reader r(body);
  if (r.u8() != 1) return err(StatusCode::kCorrupt, "not a directive");
  AdaptationDirective d;
  d.epoch = r.u64();
  d.engaged = r.u8() != 0;
  if (!decode_spec(r, d.spec) || r.remaining() != 0) {
    return err(StatusCode::kCorrupt, "bad directive spec");
  }
  return d;
}

Bytes encode_report(const MonitorReport& report) {
  serialize::Writer w(32);
  w.u8(2);  // tag: report
  w.u32(report.site);
  w.varint(report.samples.size());
  for (const auto& s : report.samples) {
    w.u8(static_cast<std::uint8_t>(s.variable));
    w.f64(s.value);
  }
  return w.take();
}

Result<MonitorReport> decode_report(ByteSpan body) {
  serialize::Reader r(body);
  if (r.u8() != 2) return err(StatusCode::kCorrupt, "not a report");
  MonitorReport report;
  report.site = r.u32();
  const std::uint64_t n = r.varint();
  if (!r.ok() || n > 1024) return err(StatusCode::kCorrupt, "bad report");
  for (std::uint64_t i = 0; i < n; ++i) {
    MonitorSample s;
    s.variable = static_cast<MonitoredVariable>(r.u8());
    s.value = r.f64();
    report.samples.push_back(s);
  }
  if (!r.ok() || r.remaining() != 0) {
    return err(StatusCode::kCorrupt, "truncated report");
  }
  return report;
}

}  // namespace admire::adapt
