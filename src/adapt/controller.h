// AdaptationController — the decision maker running at the central site
// (paper §3.2.2: "while the monitored decision variables are dispersed
// across mirror sites, adaptation decisions are made at the main site,
// thereby ensuring that all mirrors are adapted in the same fashion").
//
// Strategy implemented is the paper's: each monitored variable has a
// primary and a secondary threshold; reaching the primary engages the
// modified mirroring configuration, and the original is reinstalled only
// when the value falls below (primary - secondary) — a hysteresis band
// that prevents oscillation.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <set>

#include "adapt/directive.h"

namespace admire::adapt {

/// How the engaged regime modifies mirroring.
enum class PolicyMode : std::uint8_t {
  kSwitchFunction = 0,  ///< install `engaged_spec` wholesale (Fig. 9 style)
  kAdjustParams = 1,    ///< apply set_adapt() percent adjustments to normal
};

struct AdaptationPolicy {
  std::vector<ThresholdSpec> thresholds;
  PolicyMode mode = PolicyMode::kSwitchFunction;
  rules::MirrorFunctionSpec normal_spec;
  rules::MirrorFunctionSpec engaged_spec;          // kSwitchFunction
  std::vector<ParamAdjustment> adjustments;        // kAdjustParams
};

class AdaptationController {
 public:
  explicit AdaptationController(AdaptationPolicy policy)
      : policy_(std::move(policy)) {}

  /// Ingest a monitor report from a site (latest value per variable wins).
  void ingest(const MonitorReport& report);

  /// Convenience for locally observed values at the central site.
  void observe(SiteId site, MonitoredVariable variable, double value);

  /// Evaluate thresholds; returns a new directive exactly when the regime
  /// flips (engage or release), nullopt while it is unchanged. The caller
  /// piggybacks the directive on the next checkpoint message.
  std::optional<AdaptationDirective> evaluate();

  /// The spec that should currently be installed.
  rules::MirrorFunctionSpec current_spec() const;

  bool engaged() const;
  std::uint64_t transitions() const;

  /// Highest value currently known for a variable across all sites
  /// (excluded sites are not consulted).
  double max_value(MonitoredVariable variable) const;

  /// Failure-detection hook: a suspect or dead mirror's stale monitor
  /// values must not drive cluster-wide adaptation (its queues look long
  /// precisely because it stopped making progress). Excluded sites keep
  /// reporting, but evaluate()/max_value() ignore their values until
  /// re-included.
  void set_site_excluded(SiteId site, bool excluded);
  bool site_excluded(SiteId site) const;

  const AdaptationPolicy& policy() const { return policy_; }

 private:
  rules::MirrorFunctionSpec engaged_spec_locked() const;

  AdaptationPolicy policy_;
  mutable std::mutex mu_;
  // (site, variable) -> latest value
  std::map<std::pair<SiteId, MonitoredVariable>, double> values_;
  std::set<SiteId> excluded_;
  bool engaged_ = false;
  std::uint64_t epoch_ = 0;
  std::uint64_t transitions_ = 0;
};

/// Mirror-side applier: installs directives in epoch order, at most once.
class DirectiveApplier {
 public:
  /// Returns the spec to install when `d` is new; nullopt when stale.
  std::optional<rules::MirrorFunctionSpec> apply(const AdaptationDirective& d);

  std::uint64_t last_epoch() const;
  std::uint64_t applied_count() const;

 private:
  mutable std::mutex mu_;
  std::uint64_t last_epoch_ = 0;
  std::uint64_t applied_ = 0;
};

}  // namespace admire::adapt
