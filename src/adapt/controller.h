// AdaptationController — the decision maker running at the central site
// (paper §3.2.2: "while the monitored decision variables are dispersed
// across mirror sites, adaptation decisions are made at the main site,
// thereby ensuring that all mirrors are adapted in the same fashion").
//
// The controller owns the mechanics — per-site monitor values, fd-driven
// exclusions, regime state, monotone directive epochs — and delegates the
// regime decision itself to a pluggable Strategy (strategy.h). The default
// ThresholdStrategy is the paper's policy: each monitored variable has a
// primary and a secondary threshold; reaching the primary engages the
// modified mirroring configuration, and the original is reinstalled only
// when the value falls below (primary - secondary) — a hysteresis band
// that prevents oscillation.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>

#include "adapt/directive.h"
#include "adapt/strategy.h"

namespace admire::obs {
class Registry;
class Counter;
class Gauge;
class Histogram;
}  // namespace admire::obs

namespace admire::adapt {

/// How the engaged regime modifies mirroring.
enum class PolicyMode : std::uint8_t {
  kSwitchFunction = 0,  ///< install `engaged_spec` wholesale (Fig. 9 style)
  kAdjustParams = 1,    ///< apply set_adapt() percent adjustments to normal
};

struct AdaptationPolicy {
  std::vector<ThresholdSpec> thresholds;
  PolicyMode mode = PolicyMode::kSwitchFunction;
  rules::MirrorFunctionSpec normal_spec;
  rules::MirrorFunctionSpec engaged_spec;          // kSwitchFunction
  std::vector<ParamAdjustment> adjustments;        // kAdjustParams
  StrategyConfig strategy;  ///< decision maker; defaults to kThreshold
};

class AdaptationController {
 public:
  explicit AdaptationController(AdaptationPolicy policy)
      : policy_(std::move(policy)),
        strategy_(make_strategy(policy_.strategy, policy_.thresholds)) {}

  /// Ingest a monitor report from a site (latest value per variable wins).
  void ingest(const MonitorReport& report);

  /// Convenience for locally observed values at the central site.
  void observe(SiteId site, MonitoredVariable variable, double value);

  /// Feed the strategy the current per-variable cluster maxima and let it
  /// decide the regime; returns a new directive exactly when the regime
  /// flips (engage or release), nullopt while it is unchanged. The caller
  /// piggybacks the directive on the next checkpoint message.
  std::optional<AdaptationDirective> evaluate();

  /// The spec that should currently be installed.
  rules::MirrorFunctionSpec current_spec() const;

  bool engaged() const;
  std::uint64_t transitions() const;

  /// Highest value currently known for a variable across all sites
  /// (excluded sites are not consulted).
  double max_value(MonitoredVariable variable) const;

  /// Failure-detection hook: a suspect or dead mirror's stale monitor
  /// values must not drive cluster-wide adaptation (its queues look long
  /// precisely because it stopped making progress). Excluded sites keep
  /// reporting, but evaluate()/max_value() ignore their values until
  /// re-included.
  void set_site_excluded(SiteId site, bool excluded);
  bool site_excluded(SiteId site) const;

  /// Permanently drop a failed/removed site's monitor values (and any
  /// exclusion mark). Without this a dead site's last readings pin the
  /// per-variable maxima forever, and a replacement incarnation reusing
  /// the SiteId inherits them.
  void forget_site(SiteId site);

  /// Number of sites with at least one retained monitor value.
  std::size_t tracked_sites() const;

  /// Register the adapt.* metric family (see OBSERVABILITY.md): per-
  /// variable max gauges, engaged/excluded gauges, transition counters and
  /// the per-strategy decision-latency histogram. Wall-clock is used only
  /// to time the strategy call for that histogram — never for decisions —
  /// so instrumenting a DES run does not perturb determinism.
  void instrument(obs::Registry& registry);

  std::string_view strategy_name() const;

  const AdaptationPolicy& policy() const { return policy_; }

 private:
  rules::MirrorFunctionSpec engaged_spec_locked() const;
  double max_of_locked(MonitoredVariable variable) const;

  AdaptationPolicy policy_;
  mutable std::mutex mu_;
  std::unique_ptr<Strategy> strategy_;
  // (site, variable) -> latest value
  std::map<std::pair<SiteId, MonitoredVariable>, double> values_;
  std::set<SiteId> excluded_;
  bool engaged_ = false;
  std::uint64_t epoch_ = 0;
  std::uint64_t transitions_ = 0;

  // Metric sinks (null until instrument(); updated under mu_).
  obs::Gauge* value_gauges_[kNumMonitoredVariables] = {};
  obs::Gauge* engaged_gauge_ = nullptr;
  obs::Gauge* excluded_gauge_ = nullptr;
  obs::Counter* transitions_counter_ = nullptr;
  obs::Counter* engage_counter_ = nullptr;
  obs::Counter* release_counter_ = nullptr;
  obs::Histogram* decision_hist_ = nullptr;
};

/// Mirror-side applier: installs directives in epoch order, at most once.
class DirectiveApplier {
 public:
  /// Returns the spec to install when `d` is new; nullopt when stale.
  std::optional<rules::MirrorFunctionSpec> apply(const AdaptationDirective& d);

  std::uint64_t last_epoch() const;
  std::uint64_t applied_count() const;

 private:
  mutable std::mutex mu_;
  std::uint64_t last_epoch_ = 0;
  std::uint64_t applied_ = 0;
};

}  // namespace admire::adapt
