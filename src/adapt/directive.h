// Adaptation vocabulary (paper §3.2.2): monitored variables, threshold
// specifications, the directives the central site distributes to mirrors,
// and the monitor reports mirrors send back. Both directives and reports
// are encoded to opaque bytes so they can ride in the checkpoint messages'
// piggyback slot ("adaptation messages are piggybacked onto checkpointing
// messages").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "rules/params.h"

namespace admire::adapt {

/// Runtime quantities the paper monitors: "the lengths of the ready and
/// backup queues in mirror sites ... the length of an application level
/// buffer holding all pending client requests". kUpdateDelayMs and
/// kShedRate extend the paper's set with end-to-end signals (EDE update
/// delay, serving-plane admission sheds) for the utility/bandit strategies;
/// the on-wire sample encoding carries the variable as a u8, so old and new
/// reports interoperate.
enum class MonitoredVariable : std::uint8_t {
  kReadyQueueLength = 0,
  kBackupQueueLength = 1,
  kPendingRequests = 2,
  kUpdateDelayMs = 3,
  kShedRate = 4,
};

constexpr const char* monitored_variable_name(MonitoredVariable v) {
  switch (v) {
    case MonitoredVariable::kReadyQueueLength: return "ready_queue";
    case MonitoredVariable::kBackupQueueLength: return "backup_queue";
    case MonitoredVariable::kPendingRequests: return "pending_requests";
    case MonitoredVariable::kUpdateDelayMs: return "update_delay_ms";
    case MonitoredVariable::kShedRate: return "shed_rate";
  }
  return "unknown";
}

/// set_monitor_values(index, p, s): engage when value >= primary; the
/// modification "remains valid" until value < (primary - secondary).
struct ThresholdSpec {
  MonitoredVariable variable = MonitoredVariable::kReadyQueueLength;
  double primary = 0.0;
  double secondary = 0.0;

  bool operator==(const ThresholdSpec&) const = default;
};

/// Parameters adjustable by percent via set_adapt(p_id, p).
enum class ParamId : std::uint8_t {
  kCoalesceMax = 0,
  kOverwriteMax = 1,
  kCheckpointEvery = 2,
};

struct ParamAdjustment {
  ParamId id = ParamId::kOverwriteMax;
  int percent = 0;  ///< applied when engaged, e.g. +100 doubles the value

  bool operator==(const ParamAdjustment&) const = default;
};

/// Apply percent adjustments to a function spec (minimum value 1 each).
rules::MirrorFunctionSpec apply_adjustments(
    rules::MirrorFunctionSpec spec,
    const std::vector<ParamAdjustment>& adjustments);

/// One monitored-value sample shipped from a mirror to the central site.
struct MonitorSample {
  MonitoredVariable variable = MonitoredVariable::kReadyQueueLength;
  double value = 0.0;

  bool operator==(const MonitorSample&) const = default;
};

struct MonitorReport {
  SiteId site = 0;
  std::vector<MonitorSample> samples;

  bool operator==(const MonitorReport&) const = default;
};

/// The directive the central site broadcasts: install `spec` (and remember
/// whether the system is in the engaged regime). Epochs are monotone so
/// mirrors apply each directive at most once and in order.
struct AdaptationDirective {
  std::uint64_t epoch = 0;
  bool engaged = false;
  rules::MirrorFunctionSpec spec;

  bool operator==(const AdaptationDirective&) const = default;
};

Bytes encode_directive(const AdaptationDirective& d);
Result<AdaptationDirective> decode_directive(ByteSpan body);

Bytes encode_report(const MonitorReport& r);
Result<MonitorReport> decode_report(ByteSpan body);

}  // namespace admire::adapt
