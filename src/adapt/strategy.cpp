#include "adapt/strategy.h"

#include <algorithm>

namespace admire::adapt {

double CostWeights::cost(const StrategyInputs& in) const {
  return ready_queue * in.of(MonitoredVariable::kReadyQueueLength) +
         backup_queue * in.of(MonitoredVariable::kBackupQueueLength) +
         pending_requests * in.of(MonitoredVariable::kPendingRequests) +
         update_delay_ms * in.of(MonitoredVariable::kUpdateDelayMs) +
         shed_rate * in.of(MonitoredVariable::kShedRate);
}

std::optional<bool> ThresholdStrategy::evaluate(bool currently_engaged) {
  if (!currently_engaged) {
    for (const auto& t : thresholds_) {
      if (in_.of(t.variable) >= t.primary) return true;
    }
    return std::nullopt;
  }
  // Engaged: release only when every variable has fallen below its
  // secondary (hysteresis) threshold.
  for (const auto& t : thresholds_) {
    if (in_.of(t.variable) >= t.primary - t.secondary) return std::nullopt;
  }
  return false;
}

std::optional<bool> PidStrategy::evaluate(bool currently_engaged) {
  const double error = in_.of(config_.variable) - config_.setpoint;
  integral_ = std::clamp(integral_ + error, -config_.integral_limit,
                         config_.integral_limit);
  const double derivative = has_prev_ ? error - prev_error_ : 0.0;
  prev_error_ = error;
  has_prev_ = true;
  const double output =
      config_.kp * error + config_.ki * integral_ + config_.kd * derivative;
  if (!currently_engaged && output >= config_.engage_above) return true;
  if (currently_engaged && output <= config_.release_below) return false;
  return std::nullopt;
}

std::optional<bool> UtilityStrategy::evaluate(bool currently_engaged) {
  const double load = config_.weights.cost(in_);
  const double u_normal = -load;
  const double u_engaged =
      -load * (1.0 - config_.engaged_relief) - config_.engaged_penalty;
  const double u_current = currently_engaged ? u_engaged : u_normal;
  const double u_other = currently_engaged ? u_normal : u_engaged;
  if (u_other > u_current + config_.switch_margin) return !currently_engaged;
  return std::nullopt;
}

double BanditStrategy::windowed_mean(const std::deque<double>& rewards) const {
  double sum = 0.0;
  for (double r : rewards) sum += r;
  return sum / static_cast<double>(rewards.size());
}

void BanditStrategy::credit(bool regime, double reward) {
  auto& window = rewards_[regime ? 1 : 0];
  window.push_back(reward);
  while (window.size() > config_.window) window.pop_front();
}

std::optional<bool> BanditStrategy::evaluate(bool currently_engaged) {
  // The regime active since the last round produced these inputs — credit
  // it with reward = negative weighted cost.
  credit(currently_engaged, -config_.weights.cost(in_));

  if (dwell_left_ > 0) {
    --dwell_left_;
    return std::nullopt;
  }

  bool choice;
  if (rewards_[0].empty()) {
    choice = false;  // explore the unplayed arm first
  } else if (rewards_[1].empty()) {
    choice = true;
  } else if (rng_.next_double() < config_.epsilon) {
    choice = rng_.next_bool(0.5);
  } else {
    choice = windowed_mean(rewards_[1]) > windowed_mean(rewards_[0]);
  }
  if (choice != currently_engaged) {
    dwell_left_ = config_.min_dwell;
    return choice;
  }
  return std::nullopt;
}

std::unique_ptr<Strategy> make_strategy(
    const StrategyConfig& config,
    const std::vector<ThresholdSpec>& thresholds) {
  switch (config.kind) {
    case StrategyKind::kThreshold:
      return std::make_unique<ThresholdStrategy>(thresholds);
    case StrategyKind::kPid:
      return std::make_unique<PidStrategy>(config.pid);
    case StrategyKind::kUtility:
      return std::make_unique<UtilityStrategy>(config.utility);
    case StrategyKind::kBandit:
      return std::make_unique<BanditStrategy>(config.bandit);
  }
  return std::make_unique<ThresholdStrategy>(thresholds);
}

}  // namespace admire::adapt
