// Pluggable adaptation strategies (ROADMAP item 1, RDMSim-style): the
// decision-making half of §3.2.2 extracted behind a Strategy interface so
// the paper's threshold+hysteresis policy becomes one implementation among
// several. The AdaptationController keeps every mechanical guarantee —
// epoch-ordered directives, per-site value tracking, failure-detection
// exclusions — and delegates only the regime decision:
//
//   ingest()    sees the cluster-wide per-variable maxima for one
//               evaluation round (the paper's "decision variables");
//   evaluate()  answers which regime should be active: nullopt keeps the
//               current one, true selects the engaged (modified-mirroring)
//               regime, false the normal regime.
//
// Strategies are deliberately deterministic given their input sequence —
// BanditStrategy draws from its own seeded PRNG — so the discrete-event
// simulator replays any scenario bit-identically.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "adapt/directive.h"
#include "common/rng.h"

namespace admire::adapt {

/// Number of distinct MonitoredVariable values (array sizing).
inline constexpr std::size_t kNumMonitoredVariables = 5;

/// What a strategy sees each evaluation round: the highest value currently
/// known for each monitored variable across all non-excluded sites.
struct StrategyInputs {
  std::array<double, kNumMonitoredVariables> values{};

  double of(MonitoredVariable v) const {
    return values[static_cast<std::size_t>(v)];
  }
  double& of(MonitoredVariable v) {
    return values[static_cast<std::size_t>(v)];
  }
};

/// The pluggable decision maker. One instance lives inside one
/// AdaptationController and is called under the controller's lock, so
/// implementations need no synchronization of their own.
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Stable identifier ("threshold", "pid", ...) used in metric names and
  /// scenario scorecards.
  virtual std::string_view name() const = 0;

  /// Observe the decision variables for this evaluation round. Called
  /// exactly once before each evaluate().
  virtual void ingest(const StrategyInputs& inputs) = 0;

  /// Decide the regime: nullopt = no opinion (keep `currently_engaged`),
  /// true = engaged regime, false = normal regime.
  virtual std::optional<bool> evaluate(bool currently_engaged) = 0;
};

// --- Strategy configurations (plain data, copyable) -------------------------

/// PID setpoint tracking on one monitored variable's cluster-wide max.
/// Engage when the control output exceeds `engage_above`, release when it
/// falls below `release_below` — the gap is the hysteresis band. The
/// integral term is clamped to ±integral_limit (anti-windup), so a long
/// saturated burst does not leave the controller stuck engaged long after
/// the load subsided.
struct PidStrategyConfig {
  MonitoredVariable variable = MonitoredVariable::kPendingRequests;
  double setpoint = 0.0;  ///< target for the variable's cluster max
  double kp = 1.0;
  double ki = 0.1;
  double kd = 0.0;
  double integral_limit = 50.0;  ///< anti-windup clamp on |integral|
  double engage_above = 1.0;
  double release_below = -1.0;

  bool operator==(const PidStrategyConfig&) const = default;
};

/// Weights folding the decision variables into one scalar load figure
/// (shared by UtilityStrategy's utilities and BanditStrategy's rewards).
struct CostWeights {
  double ready_queue = 1.0;
  double backup_queue = 0.5;
  double pending_requests = 2.0;
  double update_delay_ms = 1.0;  ///< central EDE mean update delay
  double shed_rate = 4.0;        ///< serving-plane sheds since last round

  double cost(const StrategyInputs& in) const;

  bool operator==(const CostWeights&) const = default;
};

/// Utility-based selection: each regime gets a utility and the argmax wins.
///   u(normal)  = -load
///   u(engaged) = -load * (1 - engaged_relief) - engaged_penalty
/// where `load` is the weighted cost of the current inputs. The engaged
/// regime's more aggressive coalescing/overwriting is expected to relieve
/// `engaged_relief` of the load but costs `engaged_penalty` in mirroring
/// fidelity; `switch_margin` is the extra utility a challenger regime must
/// clear to dethrone the incumbent (anti-flapping at indifference points).
struct UtilityStrategyConfig {
  CostWeights weights;
  double engaged_relief = 0.5;
  double engaged_penalty = 4.0;
  double switch_margin = 0.5;

  bool operator==(const UtilityStrategyConfig&) const = default;
};

/// Epsilon-greedy bandit over the two regimes with a seeded PRNG. Each
/// round the regime that was active since the previous round is credited
/// reward = -cost(inputs) into a sliding window of the last `window`
/// rewards per regime; with probability epsilon the strategy explores a
/// uniformly random regime, otherwise it exploits the regime with the
/// higher windowed mean (unplayed regimes are explored first). A regime
/// switch starts a dwell period of `min_dwell` rounds during which the
/// choice is frozen, bounding oscillation.
struct BanditStrategyConfig {
  double epsilon = 0.1;
  std::uint64_t seed = 0xB4D17;
  std::size_t window = 8;
  std::size_t min_dwell = 2;
  CostWeights weights;

  bool operator==(const BanditStrategyConfig&) const = default;
};

enum class StrategyKind : std::uint8_t {
  kThreshold = 0,  ///< the paper's threshold+hysteresis (§3.2.2)
  kPid = 1,
  kUtility = 2,
  kBandit = 3,
};

constexpr const char* strategy_kind_name(StrategyKind k) {
  switch (k) {
    case StrategyKind::kThreshold: return "threshold";
    case StrategyKind::kPid: return "pid";
    case StrategyKind::kUtility: return "utility";
    case StrategyKind::kBandit: return "bandit";
  }
  return "unknown";
}

/// Tagged union selecting and parameterizing the controller's strategy.
/// Embedded in AdaptationPolicy, so ClusterConfig (threaded) and SimConfig
/// (DES) select strategies through the identical struct. kThreshold reads
/// its thresholds from AdaptationPolicy::thresholds (the paper's fields).
struct StrategyConfig {
  StrategyKind kind = StrategyKind::kThreshold;
  PidStrategyConfig pid;
  UtilityStrategyConfig utility;
  BanditStrategyConfig bandit;

  bool operator==(const StrategyConfig&) const = default;
};

// --- Implementations --------------------------------------------------------

/// The paper's policy, bit-for-bit: engage when any monitored variable
/// reaches its primary threshold; release only when every variable fell
/// below (primary - secondary).
class ThresholdStrategy final : public Strategy {
 public:
  explicit ThresholdStrategy(std::vector<ThresholdSpec> thresholds)
      : thresholds_(std::move(thresholds)) {}

  std::string_view name() const override { return "threshold"; }
  void ingest(const StrategyInputs& inputs) override { in_ = inputs; }
  std::optional<bool> evaluate(bool currently_engaged) override;

 private:
  std::vector<ThresholdSpec> thresholds_;
  StrategyInputs in_;
};

class PidStrategy final : public Strategy {
 public:
  explicit PidStrategy(PidStrategyConfig config) : config_(config) {}

  std::string_view name() const override { return "pid"; }
  void ingest(const StrategyInputs& inputs) override { in_ = inputs; }
  std::optional<bool> evaluate(bool currently_engaged) override;

  double integral() const { return integral_; }  ///< anti-windup tests

 private:
  PidStrategyConfig config_;
  StrategyInputs in_;
  double integral_ = 0.0;
  double prev_error_ = 0.0;
  bool has_prev_ = false;
};

class UtilityStrategy final : public Strategy {
 public:
  explicit UtilityStrategy(UtilityStrategyConfig config) : config_(config) {}

  std::string_view name() const override { return "utility"; }
  void ingest(const StrategyInputs& inputs) override { in_ = inputs; }
  std::optional<bool> evaluate(bool currently_engaged) override;

 private:
  UtilityStrategyConfig config_;
  StrategyInputs in_;
};

class BanditStrategy final : public Strategy {
 public:
  explicit BanditStrategy(BanditStrategyConfig config)
      : config_(config), rng_(config.seed) {}

  std::string_view name() const override { return "bandit"; }
  void ingest(const StrategyInputs& inputs) override { in_ = inputs; }
  std::optional<bool> evaluate(bool currently_engaged) override;

 private:
  double windowed_mean(const std::deque<double>& rewards) const;
  void credit(bool regime, double reward);

  BanditStrategyConfig config_;
  Rng rng_;
  StrategyInputs in_;
  std::deque<double> rewards_[2];  ///< [0] normal, [1] engaged
  std::size_t dwell_left_ = 0;
};

/// Factory for the tagged union. `thresholds` backs kThreshold (the
/// paper's AdaptationPolicy::thresholds).
std::unique_ptr<Strategy> make_strategy(
    const StrategyConfig& config, const std::vector<ThresholdSpec>& thresholds);

}  // namespace admire::adapt
