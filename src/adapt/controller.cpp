#include "adapt/controller.h"

#include <algorithm>
#include <chrono>

#include "obs/registry.h"

namespace admire::adapt {

void AdaptationController::ingest(const MonitorReport& report) {
  std::lock_guard lock(mu_);
  for (const auto& s : report.samples) {
    values_[{report.site, s.variable}] = s.value;
  }
}

void AdaptationController::observe(SiteId site, MonitoredVariable variable,
                                   double value) {
  std::lock_guard lock(mu_);
  values_[{site, variable}] = value;
}

double AdaptationController::max_of_locked(MonitoredVariable v) const {
  double m = 0.0;
  for (const auto& [key, value] : values_) {
    if (key.second == v && !excluded_.contains(key.first)) {
      m = std::max(m, value);
    }
  }
  return m;
}

std::optional<AdaptationDirective> AdaptationController::evaluate() {
  std::lock_guard lock(mu_);

  StrategyInputs inputs;
  for (std::size_t i = 0; i < kNumMonitoredVariables; ++i) {
    inputs.values[i] = max_of_locked(static_cast<MonitoredVariable>(i));
    if (value_gauges_[i] != nullptr) value_gauges_[i]->set(inputs.values[i]);
  }
  strategy_->ingest(inputs);

  std::optional<bool> decision;
  if (decision_hist_ != nullptr) {
    const auto t0 = std::chrono::steady_clock::now();
    decision = strategy_->evaluate(engaged_);
    const auto t1 = std::chrono::steady_clock::now();
    decision_hist_->observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  } else {
    decision = strategy_->evaluate(engaged_);
  }

  const bool should_engage = decision.value_or(engaged_);
  if (should_engage == engaged_) return std::nullopt;
  engaged_ = should_engage;
  ++transitions_;
  if (engaged_gauge_ != nullptr) engaged_gauge_->set(engaged_ ? 1.0 : 0.0);
  if (transitions_counter_ != nullptr) transitions_counter_->inc();
  if (engaged_ && engage_counter_ != nullptr) engage_counter_->inc();
  if (!engaged_ && release_counter_ != nullptr) release_counter_->inc();

  AdaptationDirective d;
  d.epoch = ++epoch_;
  d.engaged = engaged_;
  d.spec = engaged_ ? engaged_spec_locked() : policy_.normal_spec;
  return d;
}

rules::MirrorFunctionSpec AdaptationController::engaged_spec_locked() const {
  if (policy_.mode == PolicyMode::kSwitchFunction) return policy_.engaged_spec;
  return apply_adjustments(policy_.normal_spec, policy_.adjustments);
}

rules::MirrorFunctionSpec AdaptationController::current_spec() const {
  std::lock_guard lock(mu_);
  return engaged_ ? engaged_spec_locked() : policy_.normal_spec;
}

bool AdaptationController::engaged() const {
  std::lock_guard lock(mu_);
  return engaged_;
}

std::uint64_t AdaptationController::transitions() const {
  std::lock_guard lock(mu_);
  return transitions_;
}

double AdaptationController::max_value(MonitoredVariable variable) const {
  std::lock_guard lock(mu_);
  return max_of_locked(variable);
}

void AdaptationController::set_site_excluded(SiteId site, bool excluded) {
  std::lock_guard lock(mu_);
  if (excluded) {
    excluded_.insert(site);
  } else {
    excluded_.erase(site);
  }
  if (excluded_gauge_ != nullptr) {
    excluded_gauge_->set(static_cast<double>(excluded_.size()));
  }
}

bool AdaptationController::site_excluded(SiteId site) const {
  std::lock_guard lock(mu_);
  return excluded_.contains(site);
}

void AdaptationController::forget_site(SiteId site) {
  std::lock_guard lock(mu_);
  values_.erase(values_.lower_bound({site, static_cast<MonitoredVariable>(0)}),
                values_.upper_bound(
                    {site, static_cast<MonitoredVariable>(
                               kNumMonitoredVariables - 1)}));
  excluded_.erase(site);
  if (excluded_gauge_ != nullptr) {
    excluded_gauge_->set(static_cast<double>(excluded_.size()));
  }
}

std::size_t AdaptationController::tracked_sites() const {
  std::lock_guard lock(mu_);
  std::set<SiteId> sites;
  for (const auto& [key, value] : values_) sites.insert(key.first);
  return sites.size();
}

void AdaptationController::instrument(obs::Registry& registry) {
  std::lock_guard lock(mu_);
  for (std::size_t i = 0; i < kNumMonitoredVariables; ++i) {
    value_gauges_[i] = &registry.gauge(
        std::string("adapt.value.") +
        monitored_variable_name(static_cast<MonitoredVariable>(i)));
  }
  engaged_gauge_ = &registry.gauge("adapt.engaged");
  excluded_gauge_ = &registry.gauge("adapt.excluded_sites");
  transitions_counter_ = &registry.counter("adapt.transitions_total");
  engage_counter_ = &registry.counter("adapt.engage_total");
  release_counter_ = &registry.counter("adapt.release_total");
  decision_hist_ = &registry.histogram(
      std::string("adapt.decision_ns.") + std::string(strategy_->name()),
      obs::Histogram::latency_bounds());
  engaged_gauge_->set(engaged_ ? 1.0 : 0.0);
  excluded_gauge_->set(static_cast<double>(excluded_.size()));
}

std::string_view AdaptationController::strategy_name() const {
  return strategy_->name();
}

std::optional<rules::MirrorFunctionSpec> DirectiveApplier::apply(
    const AdaptationDirective& d) {
  std::lock_guard lock(mu_);
  if (d.epoch <= last_epoch_) return std::nullopt;  // stale or duplicate
  last_epoch_ = d.epoch;
  ++applied_;
  return d.spec;
}

std::uint64_t DirectiveApplier::last_epoch() const {
  std::lock_guard lock(mu_);
  return last_epoch_;
}

std::uint64_t DirectiveApplier::applied_count() const {
  std::lock_guard lock(mu_);
  return applied_;
}

}  // namespace admire::adapt
