#include "adapt/controller.h"

#include <algorithm>

namespace admire::adapt {

void AdaptationController::ingest(const MonitorReport& report) {
  std::lock_guard lock(mu_);
  for (const auto& s : report.samples) {
    values_[{report.site, s.variable}] = s.value;
  }
}

void AdaptationController::observe(SiteId site, MonitoredVariable variable,
                                   double value) {
  std::lock_guard lock(mu_);
  values_[{site, variable}] = value;
}

std::optional<AdaptationDirective> AdaptationController::evaluate() {
  std::lock_guard lock(mu_);

  auto max_of = [&](MonitoredVariable v) {
    double m = 0.0;
    for (const auto& [key, value] : values_) {
      if (key.second == v && !excluded_.contains(key.first)) {
        m = std::max(m, value);
      }
    }
    return m;
  };

  bool should_engage = engaged_;
  if (!engaged_) {
    // Engage when any monitored variable reaches its primary threshold.
    for (const auto& t : policy_.thresholds) {
      if (max_of(t.variable) >= t.primary) {
        should_engage = true;
        break;
      }
    }
  } else {
    // Release only when every variable fell below (primary - secondary).
    should_engage = false;
    for (const auto& t : policy_.thresholds) {
      if (max_of(t.variable) >= t.primary - t.secondary) {
        should_engage = true;
        break;
      }
    }
  }

  if (should_engage == engaged_) return std::nullopt;
  engaged_ = should_engage;
  ++transitions_;

  AdaptationDirective d;
  d.epoch = ++epoch_;
  d.engaged = engaged_;
  d.spec = engaged_ ? engaged_spec_locked() : policy_.normal_spec;
  return d;
}

rules::MirrorFunctionSpec AdaptationController::engaged_spec_locked() const {
  if (policy_.mode == PolicyMode::kSwitchFunction) return policy_.engaged_spec;
  return apply_adjustments(policy_.normal_spec, policy_.adjustments);
}

rules::MirrorFunctionSpec AdaptationController::current_spec() const {
  std::lock_guard lock(mu_);
  return engaged_ ? engaged_spec_locked() : policy_.normal_spec;
}

bool AdaptationController::engaged() const {
  std::lock_guard lock(mu_);
  return engaged_;
}

std::uint64_t AdaptationController::transitions() const {
  std::lock_guard lock(mu_);
  return transitions_;
}

double AdaptationController::max_value(MonitoredVariable variable) const {
  std::lock_guard lock(mu_);
  double m = 0.0;
  for (const auto& [key, value] : values_) {
    if (key.second == variable && !excluded_.contains(key.first)) {
      m = std::max(m, value);
    }
  }
  return m;
}

void AdaptationController::set_site_excluded(SiteId site, bool excluded) {
  std::lock_guard lock(mu_);
  if (excluded) {
    excluded_.insert(site);
  } else {
    excluded_.erase(site);
  }
}

bool AdaptationController::site_excluded(SiteId site) const {
  std::lock_guard lock(mu_);
  return excluded_.contains(site);
}

std::optional<rules::MirrorFunctionSpec> DirectiveApplier::apply(
    const AdaptationDirective& d) {
  std::lock_guard lock(mu_);
  if (d.epoch <= last_epoch_) return std::nullopt;  // stale or duplicate
  last_epoch_ = d.epoch;
  ++applied_;
  return d.spec;
}

std::uint64_t DirectiveApplier::last_epoch() const {
  std::lock_guard lock(mu_);
  return last_epoch_;
}

std::uint64_t DirectiveApplier::applied_count() const {
  std::lock_guard lock(mu_);
  return applied_;
}

}  // namespace admire::adapt
