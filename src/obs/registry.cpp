#include "obs/registry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace admire::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> Histogram::latency_bounds() {
  // 1us .. 10s, roughly x10 per decade with a 1-2-5 split in the middle.
  return {1e3, 1e4, 1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6,
          1e7, 2.5e7, 5e7, 1e8, 5e8, 1e9, 1e10};
}

std::vector<double> Histogram::size_bounds() {
  return {0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000};
}

std::uint64_t Snapshot::counter_or(std::string_view name,
                                   std::uint64_t def) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return def;
}

double Snapshot::gauge_or(std::string_view name, double def) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return def;
}

const Snapshot::Hist* Snapshot::histogram(std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

void append_number(std::string& out, double v) {
  char buf[64];
  // %.17g round-trips doubles; trim to %g for readability of exact values.
  std::snprintf(buf, sizeof buf, "%g", v);
  out += buf;
}

}  // namespace

std::string Snapshot::to_json_line() const {
  std::string out;
  out.reserve(1024);
  out += "{\"ts_ns\":";
  out += std::to_string(taken_at);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    append_json_escaped(out, name);
    out += "\":";
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    append_json_escaped(out, name);
    out += "\":";
    append_number(out, v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    append_json_escaped(out, h.name);
    out += "\":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out.push_back(',');
      append_number(out, h.bounds[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) out.push_back(',');
      out += std::to_string(h.buckets[i]);
    }
    out += "],\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    append_number(out, h.sum);
    out.push_back('}');
  }
  out += "}}";
  return out;
}

std::string Snapshot::to_human() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof buf, "--- metrics snapshot @ %.3fs ---\n",
                to_seconds(taken_at));
  out += buf;
  for (const auto& [name, v] : counters) {
    std::snprintf(buf, sizeof buf, "  counter %-44s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(v));
    out += buf;
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(buf, sizeof buf, "  gauge   %-44s %g\n", name.c_str(), v);
    out += buf;
  }
  for (const auto& h : histograms) {
    std::snprintf(buf, sizeof buf,
                  "  histo   %-44s count=%llu mean=%g\n", h.name.c_str(),
                  static_cast<unsigned long long>(h.count),
                  h.count ? h.sum / static_cast<double>(h.count) : 0.0);
    out += buf;
  }
  return out;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

std::uint64_t Registry::register_probe(std::string name,
                                       std::function<double()> fn) {
  std::lock_guard lock(mu_);
  const std::uint64_t id = next_probe_id_++;
  probes_[id] = Probe{std::move(name), std::move(fn)};
  return id;
}

void Registry::unregister_probe(std::uint64_t id) {
  std::lock_guard lock(mu_);
  probes_.erase(id);
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.taken_at = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count();
  std::lock_guard lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size() + probes_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [id, probe] : probes_) {
    snap.gauges.emplace_back(probe.name, probe.fn ? probe.fn() : 0.0);
  }
  std::sort(snap.gauges.begin(), snap.gauges.end());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    Snapshot::Hist out;
    out.name = name;
    out.bounds = h->bounds();
    out.buckets = h->bucket_counts();
    out.count = h->count();
    out.sum = h->sum();
    snap.histograms.push_back(std::move(out));
  }
  return snap;
}

std::size_t Registry::num_instruments() const {
  std::lock_guard lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size() +
         probes_.size();
}

Registry& Registry::global() {
  static Registry* g = new Registry();  // intentionally leaked, see header
  return *g;
}

void ProbeGroup::add(Registry& reg, std::string name,
                     std::function<double()> fn) {
  reg_ = &reg;
  ids_.push_back(reg.register_probe(std::move(name), std::move(fn)));
}

void ProbeGroup::clear() {
  if (reg_ == nullptr) return;
  for (const std::uint64_t id : ids_) reg_->unregister_probe(id);
  ids_.clear();
}

}  // namespace admire::obs
