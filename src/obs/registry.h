// Runtime metrics registry: named counters, gauges and fixed-bucket
// histograms with cheap (relaxed-atomic) hot-path updates, plus pull-style
// "probe" gauges sampled only when a snapshot is taken. The running system
// registers its queue depths, rule savings, checkpoint cadence and
// transport throughput here, so operability is a first-class subsystem
// rather than bench-binary-only instrumentation (see OBSERVABILITY.md for
// the full metric vocabulary).
//
// Ownership model: instruments returned by counter()/gauge()/histogram()
// are owned by the registry and live as long as it does, so components may
// cache the references and update them lock-free. Probes reference
// component state and must be unregistered before that state dies — use
// ProbeGroup for RAII unregistration.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace admire::obs {

/// Monotonically increasing event count. inc() is one relaxed atomic add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (queue depth, high-water mark, configuration knob).
class Gauge {
 public:
  void set(double v) { bits_.store(pack(v), std::memory_order_relaxed); }
  void add(double d) {
    // Single-writer add is the common case; CAS keeps concurrent adders safe.
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(cur, pack(unpack(cur) + d),
                                        std::memory_order_relaxed)) {
    }
  }
  /// Raise to `v` if below (high-water tracking).
  void set_max(double v) {
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (unpack(cur) < v && !bits_.compare_exchange_weak(
                                  cur, pack(v), std::memory_order_relaxed)) {
    }
  }
  double value() const { return unpack(bits_.load(std::memory_order_relaxed)); }

 private:
  static std::uint64_t pack(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    return bits;
  }
  static double unpack(std::uint64_t bits) {
    double v;
    __builtin_memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram with inclusive upper bounds (a sample lands in
/// the first bucket whose bound is >= the value; larger samples go to the
/// implicit +inf overflow bucket). observe() is a linear scan over a small
/// bound array plus three relaxed atomic adds — no locks on the hot path.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Sum kept in integer nanoscale ticks to stay atomic without a lock;
    // callers observe values where 1.0 maps to one tick.
    sum_ticks_.fetch_add(static_cast<std::int64_t>(v),
                         std::memory_order_relaxed);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const {
    return static_cast<double>(sum_ticks_.load(std::memory_order_relaxed));
  }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  /// Per-bucket counts including the +inf overflow bucket (size = bounds+1).
  std::vector<std::uint64_t> bucket_counts() const;

  /// Default bucket bounds for nanosecond latencies: 1us .. 10s, log scale.
  static std::vector<double> latency_bounds();
  /// Default bucket bounds for small cardinalities (queue trims, batches).
  static std::vector<double> size_bounds();

 private:
  const std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_ticks_{0};
};

/// Point-in-time copy of everything in a registry, safe to format/export
/// after the fact. Probes are sampled at snapshot time into `gauges`.
struct Snapshot {
  Nanos taken_at = 0;  ///< steady-clock ns at capture (0 in unit tests)
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  struct Hist {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  ///< bounds.size()+1 (last = +inf)
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<Hist> histograms;

  /// Lookup helpers (0 / nullptr when absent) for tests and bench readers.
  std::uint64_t counter_or(std::string_view name, std::uint64_t def = 0) const;
  double gauge_or(std::string_view name, double def = 0.0) const;
  const Hist* histogram(std::string_view name) const;

  /// One JSON object on one line (JSON-lines exporter format).
  std::string to_json_line() const;
  /// Multi-line human-readable dump (SIGUSR1 / debugging).
  std::string to_human() const;
};

class Registry {
 public:
  /// Find-or-create by name. The returned reference is stable for the
  /// registry's lifetime; creating is mutex-guarded, updating is lock-free.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` must be sorted ascending; ignored when the histogram already
  /// exists (first registration wins).
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Pull-style gauge: `fn` is invoked at snapshot time only, so hot paths
  /// that already maintain a size/counter pay nothing extra. Returns an id
  /// for unregister_probe(); prefer ProbeGroup over manual management.
  std::uint64_t register_probe(std::string name, std::function<double()> fn);
  void unregister_probe(std::uint64_t id);

  Snapshot snapshot() const;

  std::size_t num_instruments() const;

  /// Process-wide default registry (used when a component is not handed an
  /// explicit one). Never destroyed, so cached instrument references from
  /// any thread stay valid at exit.
  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  struct Probe {
    std::string name;
    std::function<double()> fn;
  };
  std::uint64_t next_probe_id_ = 1;
  std::map<std::uint64_t, Probe> probes_;
};

/// RAII batch of probes: add() registers against one registry, destruction
/// unregisters everything — components embed one of these so their probes
/// can never outlive the state they read.
class ProbeGroup {
 public:
  ProbeGroup() = default;
  ~ProbeGroup() { clear(); }
  ProbeGroup(const ProbeGroup&) = delete;
  ProbeGroup& operator=(const ProbeGroup&) = delete;

  void add(Registry& reg, std::string name, std::function<double()> fn);
  void clear();
  bool empty() const { return ids_.empty(); }

 private:
  Registry* reg_ = nullptr;
  std::vector<std::uint64_t> ids_;
};

}  // namespace admire::obs
