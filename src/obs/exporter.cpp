#include "obs/exporter.h"

#include <csignal>

namespace admire::obs {

namespace {

// SIGUSR1 plumbing: the handler may only touch lock-free state, so it sets
// a flag that the exporter thread polls each tick.
std::atomic<bool> g_sigusr1_pending{false};
std::atomic<SnapshotExporter*> g_sigusr1_owner{nullptr};

void on_sigusr1(int) { g_sigusr1_pending.store(true); }

}  // namespace

SnapshotExporter::SnapshotExporter(Registry& registry, ExporterOptions options)
    : registry_(registry), options_(std::move(options)) {}

SnapshotExporter::~SnapshotExporter() { stop(); }

Status SnapshotExporter::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return Status::ok();
  if (!options_.path.empty()) {
    std::lock_guard lock(file_mu_);
    file_ = std::fopen(options_.path.c_str(), "a");
    if (file_ == nullptr) {
      running_.store(false);
      return err(StatusCode::kUnavailable,
                 "cannot open metrics file: " + options_.path);
    }
  }
  if (options_.handle_sigusr1) {
    g_sigusr1_owner.store(this);
    std::signal(SIGUSR1, &on_sigusr1);
  }
  {
    std::lock_guard lock(wake_mu_);
    stopping_ = false;
  }
  thread_ = std::thread([this] { run(); });
  return Status::ok();
}

void SnapshotExporter::stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard lock(wake_mu_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (options_.handle_sigusr1 && g_sigusr1_owner.load() == this) {
    std::signal(SIGUSR1, SIG_DFL);
    g_sigusr1_owner.store(nullptr);
  }
  (void)export_now();  // final snapshot so short runs always leave one line
  std::lock_guard lock(file_mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status SnapshotExporter::export_now() {
  std::lock_guard lock(file_mu_);
  return write_line_locked();
}

Status SnapshotExporter::write_line_locked() {
  bool opened_here = false;
  if (file_ == nullptr) {
    if (options_.path.empty()) return Status::ok();  // nothing to write to
    file_ = std::fopen(options_.path.c_str(), "a");
    if (file_ == nullptr) {
      return err(StatusCode::kUnavailable,
                 "cannot open metrics file: " + options_.path);
    }
    opened_here = true;
  }
  const std::string line = registry_.snapshot().to_json_line();
  std::fprintf(file_, "%s\n", line.c_str());
  std::fflush(file_);
  exports_.fetch_add(1, std::memory_order_relaxed);
  if (opened_here) {
    std::fclose(file_);
    file_ = nullptr;
  }
  return Status::ok();
}

void SnapshotExporter::dump_human(std::FILE* out) const {
  const std::string dump = registry_.snapshot().to_human();
  std::fputs(dump.c_str(), out);
  std::fflush(out);
}

void SnapshotExporter::run() {
  while (true) {
    {
      std::unique_lock lock(wake_mu_);
      wake_cv_.wait_for(lock, options_.interval, [&] { return stopping_; });
      if (stopping_) return;
    }
    if (g_sigusr1_pending.exchange(false) &&
        g_sigusr1_owner.load() == this) {
      dump_human();
    }
    (void)export_now();
  }
}

}  // namespace admire::obs
