// Event-path tracer: per-event span timestamps across the pipeline stages
// of §3.2.1 — ingest -> rule engine -> ready queue -> mirror()/fwd() ->
// apply — sampled 1-in-N so tracing is affordable on the hot path. The
// untraced (N-1)/N of events pay exactly one branch; sampled events pay a
// short mutex-guarded map update (sampling keeps contention negligible).
//
// Completed spans land in a bounded ring readable by tests/exporters, and
// stage-to-stage latencies feed registry histograms named
// "trace.<from>_to_<to>_ns" so the periodic JSON snapshot carries the
// pipeline's timing shape without any extra machinery.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "obs/registry.h"

namespace admire::obs {

/// Pipeline stages a traced event passes through, in order.
enum class Stage : std::uint8_t {
  kIngest = 0,      ///< entered the receiving task (timestamping)
  kRules = 1,       ///< rule-engine decision made
  kReadyQueue = 2,  ///< placed on the ready queue (accepted events only)
  kMirrorSend = 3,  ///< emitted by the sending task toward mirrors
  kForward = 4,     ///< fwd()'d to the local main unit
  kApply = 5,       ///< folded into operational state by the EDE
};
inline constexpr std::size_t kNumStages = 6;

const char* stage_name(Stage s);

class Tracer {
 public:
  /// One completed (or evicted) span: stage timestamps in ns; 0 = stage not
  /// reached (e.g. a rule-discarded event never touches the ready queue).
  struct Span {
    std::uint64_t key = 0;
    std::array<Nanos, kNumStages> at{};
  };

  /// Trace one event in every `sample_every` (per stream, by sequence
  /// number); retain up to `capacity` completed spans.
  explicit Tracer(std::uint32_t sample_every = 64, std::size_t capacity = 256,
                  Registry* registry = nullptr);

  /// Stable key for an event position (stream, seq).
  static std::uint64_t key_of(StreamId stream, SeqNo seq) {
    return (static_cast<std::uint64_t>(stream) << 48) |
           (seq & 0xFFFF'FFFF'FFFFull);
  }

  /// Hot-path gate: true for the 1-in-N events this tracer follows.
  bool sampled(SeqNo seq) const { return seq % sample_every_ == 0; }

  /// Record `stage` happening at time `at` for the event `key`. Callers
  /// should gate on sampled() first; record() re-checks nothing and accepts
  /// any key. kApply completes the span (moves it to the ring).
  void record(std::uint64_t key, Stage stage, Nanos at);

  /// Mark a span finished early (event discarded by rules / end of path).
  void finish(std::uint64_t key);

  /// Move every still-active span to the completed ring (quiesce).
  void flush();

  std::uint32_t sample_every() const { return sample_every_; }
  std::uint64_t spans_started() const;
  std::uint64_t spans_completed() const;
  std::vector<Span> completed() const;

 private:
  void complete_locked(std::uint64_t key);
  void observe_latencies(const Span& span);

  const std::uint32_t sample_every_;
  const std::size_t capacity_;

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Span> active_;
  std::deque<Span> ring_;
  std::uint64_t started_ = 0;
  std::uint64_t completed_count_ = 0;

  // Optional registry sinks (null = ring only).
  Histogram* ingest_to_ready_ = nullptr;
  Histogram* ready_to_send_ = nullptr;
  Histogram* ingest_to_apply_ = nullptr;
};

}  // namespace admire::obs
