// Periodic metrics snapshot exporter: a background thread appends one
// JSON-lines snapshot of a Registry to a file every interval, and dumps a
// human-readable snapshot to stderr on SIGUSR1 or an explicit API call.
// Signal handling is async-safe: the handler only sets a flag; the export
// thread notices it on its next tick (<= one interval of latency).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/registry.h"

namespace admire::obs {

struct ExporterOptions {
  /// JSON-lines output path; empty = no file (human dumps still work).
  std::string path;
  std::chrono::milliseconds interval{1000};
  /// Install a SIGUSR1 handler while running (process-global; last
  /// installed exporter wins, restored on stop()).
  bool handle_sigusr1 = false;
};

class SnapshotExporter {
 public:
  SnapshotExporter(Registry& registry, ExporterOptions options);
  ~SnapshotExporter();

  SnapshotExporter(const SnapshotExporter&) = delete;
  SnapshotExporter& operator=(const SnapshotExporter&) = delete;

  /// Open the output file and start the periodic thread. kUnavailable if
  /// the file cannot be opened.
  Status start();
  /// Final snapshot, join, close. Idempotent.
  void stop();

  /// Append one snapshot line right now (also usable without start()).
  Status export_now();

  /// Write the human-readable dump to `out` (default stderr).
  void dump_human(std::FILE* out = stderr) const;

  std::uint64_t exports_written() const {
    return exports_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  Status write_line_locked();

  Registry& registry_;
  const ExporterOptions options_;

  std::mutex file_mu_;
  std::FILE* file_ = nullptr;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stopping_ = false;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> exports_{0};
};

}  // namespace admire::obs
