#include "obs/tracer.h"

namespace admire::obs {

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kIngest:
      return "ingest";
    case Stage::kRules:
      return "rules";
    case Stage::kReadyQueue:
      return "ready_queue";
    case Stage::kMirrorSend:
      return "mirror_send";
    case Stage::kForward:
      return "forward";
    case Stage::kApply:
      return "apply";
  }
  return "?";
}

Tracer::Tracer(std::uint32_t sample_every, std::size_t capacity,
               Registry* registry)
    : sample_every_(sample_every == 0 ? 1 : sample_every),
      capacity_(capacity == 0 ? 1 : capacity) {
  if (registry != nullptr) {
    ingest_to_ready_ = &registry->histogram("trace.ingest_to_ready_ns",
                                            Histogram::latency_bounds());
    ready_to_send_ = &registry->histogram("trace.ready_to_send_ns",
                                          Histogram::latency_bounds());
    ingest_to_apply_ = &registry->histogram("trace.ingest_to_apply_ns",
                                            Histogram::latency_bounds());
  }
}

void Tracer::record(std::uint64_t key, Stage stage, Nanos at) {
  std::lock_guard lock(mu_);
  auto it = active_.find(key);
  if (it == active_.end()) {
    if (stage != Stage::kIngest) return;  // late stage for an evicted span
    // Bound the active table: evict the arbitrary first span if a source
    // never completes (e.g. events dropped mid-pipeline at shutdown).
    if (active_.size() >= capacity_) complete_locked(active_.begin()->first);
    it = active_.emplace(key, Span{key, {}}).first;
    ++started_;
  }
  it->second.at[static_cast<std::size_t>(stage)] = at;
  if (stage == Stage::kApply) complete_locked(key);
}

void Tracer::finish(std::uint64_t key) {
  std::lock_guard lock(mu_);
  complete_locked(key);
}

void Tracer::flush() {
  std::lock_guard lock(mu_);
  while (!active_.empty()) complete_locked(active_.begin()->first);
}

void Tracer::complete_locked(std::uint64_t key) {
  auto it = active_.find(key);
  if (it == active_.end()) return;
  observe_latencies(it->second);
  ring_.push_back(it->second);
  if (ring_.size() > capacity_) ring_.pop_front();
  active_.erase(it);
  ++completed_count_;
}

void Tracer::observe_latencies(const Span& span) {
  const auto at = [&](Stage s) {
    return span.at[static_cast<std::size_t>(s)];
  };
  if (ingest_to_ready_ != nullptr && at(Stage::kIngest) > 0 &&
      at(Stage::kReadyQueue) >= at(Stage::kIngest)) {
    ingest_to_ready_->observe(
        static_cast<double>(at(Stage::kReadyQueue) - at(Stage::kIngest)));
  }
  if (ready_to_send_ != nullptr && at(Stage::kReadyQueue) > 0 &&
      at(Stage::kMirrorSend) >= at(Stage::kReadyQueue)) {
    ready_to_send_->observe(
        static_cast<double>(at(Stage::kMirrorSend) - at(Stage::kReadyQueue)));
  }
  if (ingest_to_apply_ != nullptr && at(Stage::kIngest) > 0 &&
      at(Stage::kApply) >= at(Stage::kIngest)) {
    ingest_to_apply_->observe(
        static_cast<double>(at(Stage::kApply) - at(Stage::kIngest)));
  }
}

std::uint64_t Tracer::spans_started() const {
  std::lock_guard lock(mu_);
  return started_;
}

std::uint64_t Tracer::spans_completed() const {
  std::lock_guard lock(mu_);
  return completed_count_;
}

std::vector<Tracer::Span> Tracer::completed() const {
  std::lock_guard lock(mu_);
  return {ring_.begin(), ring_.end()};
}

}  // namespace admire::obs
