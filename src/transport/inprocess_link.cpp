#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "transport/link.h"

namespace admire::transport {
namespace {

using SteadyTime = std::chrono::steady_clock::time_point;

/// One direction of a shaped pipe: a bounded queue whose items become
/// visible only after their computed delivery time (latency + serialization
/// time at the configured bandwidth, FIFO per link).
class ShapedPipe {
 public:
  ShapedPipe(std::size_t capacity, LinkShaping shaping)
      : capacity_(capacity), shaping_(shaping) {}

  Status send(Bytes message) {
    std::unique_lock lock(mu_);
    if (!closed_ && items_.size() >= capacity_ && stalls_ != nullptr) {
      stalls_->inc();  // sender is about to block on back-pressure
    }
    writable_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return err(StatusCode::kClosed, "link closed");
    if (msgs_ != nullptr) {
      msgs_->inc();
      bytes_->inc(message.size());
    }
    const std::size_t size = message.size();
    items_.push_back(Item{compute_delivery(size, std::chrono::steady_clock::now()),
                          std::move(message), nullptr});
    lock.unlock();
    readable_.notify_one();
    return Status::ok();
  }

  /// Batched enqueue: takes the queue lock once for the whole batch
  /// (re-waiting only when capacity back-pressure forces it), the
  /// in-process equivalent of the TCP link's single writev. `make_item`
  /// produces the i-th queued buffer — a copy for span batches, a move for
  /// owned batches, a refcount bump for shared batches.
  template <typename MakeItem>
  Status enqueue_batch(std::size_t count, MakeItem&& make_item) {
    if (count == 0) return Status::ok();
    std::unique_lock lock(mu_);
    if (batch_size_ != nullptr) {
      batch_size_->observe(static_cast<double>(count));
    }
    std::size_t i = 0;
    while (i < count) {
      if (!closed_ && items_.size() >= capacity_) {
        if (stalls_ != nullptr) stalls_->inc();
        if (i > 0) readable_.notify_one();  // let the receiver drain
        writable_.wait(lock,
                       [&] { return closed_ || items_.size() < capacity_; });
      }
      if (closed_) return err(StatusCode::kClosed, "link closed");
      std::size_t run_bytes = 0;
      const std::size_t run_start = i;
      const auto now = std::chrono::steady_clock::now();
      while (i < count && items_.size() < capacity_) {
        Item item = make_item(i);
        const std::size_t size = item.size();
        item.deliver_at = compute_delivery(size, now);
        items_.push_back(std::move(item));
        run_bytes += size;
        ++i;
      }
      if (msgs_ != nullptr && i > run_start) {
        msgs_->inc(i - run_start);
        bytes_->inc(run_bytes);
      }
    }
    lock.unlock();
    readable_.notify_one();
    return Status::ok();
  }

  Status send_batch(std::span<const ByteSpan> messages) {
    return enqueue_batch(messages.size(), [&](std::size_t i) {
      return Item{{}, Bytes(messages[i].begin(), messages[i].end()), nullptr};
    });
  }

  Status send_batch_owned(std::vector<Bytes>&& messages) {
    return enqueue_batch(messages.size(), [&](std::size_t i) {
      return Item{{}, std::move(messages[i]), nullptr};
    });
  }

  Status send_batch_shared(std::span<const SharedBytes> messages) {
    return enqueue_batch(messages.size(), [&](std::size_t i) {
      return Item{{}, Bytes{}, messages[i]};
    });
  }

  std::optional<Bytes> receive() {
    std::unique_lock lock(mu_);
    while (true) {
      readable_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;  // closed and drained
      const auto ready = items_.front().deliver_at;
      const auto now = std::chrono::steady_clock::now();
      if (ready <= now) break;
      // Head-of-line shaping delay: wait until the head is deliverable.
      readable_.wait_until(lock, ready);
    }
    Bytes out = items_.front().take_owned();
    items_.pop_front();
    lock.unlock();
    writable_.notify_one();
    return out;
  }

  /// Blocking batched receive: one lock hold, one clock read and one
  /// writers' wake-up for the whole drained run. Shaping is honored — the
  /// drain stops at the first item whose delivery time is still ahead.
  std::vector<Bytes> receive_batch(std::size_t max) {
    std::vector<Bytes> out;
    if (max == 0) return out;
    std::unique_lock lock(mu_);
    while (true) {
      readable_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return out;  // closed and drained
      const auto ready = items_.front().deliver_at;
      const auto now = std::chrono::steady_clock::now();
      if (ready <= now) break;
      readable_.wait_until(lock, ready);
    }
    const auto now = std::chrono::steady_clock::now();
    while (out.size() < max && !items_.empty() &&
           items_.front().deliver_at <= now) {
      out.push_back(items_.front().take_owned());
      items_.pop_front();
    }
    lock.unlock();
    writable_.notify_all();
    return out;
  }

  /// receive_batch handing out refcounted buffers: shared sends come back
  /// as the sender's buffers (zero copy), owned sends are wrapped.
  std::vector<SharedBytes> receive_batch_shared(std::size_t max) {
    std::vector<SharedBytes> out;
    if (max == 0) return out;
    std::unique_lock lock(mu_);
    while (true) {
      readable_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return out;  // closed and drained
      const auto ready = items_.front().deliver_at;
      const auto now = std::chrono::steady_clock::now();
      if (ready <= now) break;
      readable_.wait_until(lock, ready);
    }
    const auto now = std::chrono::steady_clock::now();
    while (out.size() < max && !items_.empty() &&
           items_.front().deliver_at <= now) {
      out.push_back(items_.front().take_shared());
      items_.pop_front();
    }
    lock.unlock();
    writable_.notify_all();
    return out;
  }

  std::optional<Bytes> receive_for(std::chrono::milliseconds d) {
    const auto deadline = std::chrono::steady_clock::now() + d;
    std::unique_lock lock(mu_);
    while (true) {
      if (!readable_.wait_until(lock, deadline,
                                [&] { return closed_ || !items_.empty(); })) {
        return std::nullopt;  // timeout
      }
      if (items_.empty()) return std::nullopt;  // closed and drained
      const auto ready = items_.front().deliver_at;
      if (ready <= std::chrono::steady_clock::now()) break;
      if (ready >= deadline) {
        readable_.wait_until(lock, deadline);
        if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
      } else {
        readable_.wait_until(lock, ready);
      }
    }
    Bytes out = items_.front().take_owned();
    items_.pop_front();
    lock.unlock();
    writable_.notify_one();
    return out;
  }

  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    readable_.notify_all();
    writable_.notify_all();
  }

  bool is_closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t pending() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  /// Attach send-side instruments (owned by a registry). Counted under the
  /// pipe mutex, so plain pointers are safe once set before traffic starts.
  void set_send_instruments(obs::Counter* msgs, obs::Counter* bytes,
                            obs::Counter* stalls,
                            obs::Histogram* batch_size = nullptr) {
    std::lock_guard lock(mu_);
    msgs_ = msgs;
    bytes_ = bytes;
    stalls_ = stalls;
    batch_size_ = batch_size;
  }

 private:
  /// Exactly one of `owned` / `shared` carries the message: `shared` for
  /// zero-copy fan-out sends, `owned` otherwise.
  struct Item {
    SteadyTime deliver_at;
    Bytes owned;
    SharedBytes shared;

    std::size_t size() const { return shared ? shared->size() : owned.size(); }
    Bytes take_owned() {
      return shared ? Bytes(shared->begin(), shared->end())
                    : std::move(owned);
    }
    SharedBytes take_shared() {
      return shared ? std::move(shared)
                    : std::make_shared<const Bytes>(std::move(owned));
    }
  };

  SteadyTime compute_delivery(std::size_t size, SteadyTime now) {
    auto start = std::max(now, link_free_at_);
    if (shaping_.bytes_per_second > 0.0) {
      const auto tx = std::chrono::nanoseconds(static_cast<Nanos>(
          static_cast<double>(size) / shaping_.bytes_per_second * 1e9));
      link_free_at_ = start + tx;
      start = link_free_at_;
    }
    return start + std::chrono::nanoseconds(shaping_.latency);
  }

  const std::size_t capacity_;
  const LinkShaping shaping_;
  mutable std::mutex mu_;
  std::condition_variable readable_;
  std::condition_variable writable_;
  std::deque<Item> items_;
  SteadyTime link_free_at_{};
  bool closed_ = false;
  obs::Counter* msgs_ = nullptr;
  obs::Counter* bytes_ = nullptr;
  obs::Counter* stalls_ = nullptr;
  obs::Histogram* batch_size_ = nullptr;
};

/// Endpoint pairing one outgoing and one incoming pipe.
class InProcessEndpoint final : public MessageLink {
 public:
  InProcessEndpoint(std::shared_ptr<ShapedPipe> out,
                    std::shared_ptr<ShapedPipe> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  ~InProcessEndpoint() override { close(); }

  Status send(Bytes message) override { return out_->send(std::move(message)); }

  Status send_batch(std::span<const ByteSpan> messages) override {
    return out_->send_batch(messages);
  }

  Status send_batch_owned(std::vector<Bytes>&& messages) override {
    return out_->send_batch_owned(std::move(messages));
  }

  Status send_batch_shared(std::span<const SharedBytes> messages) override {
    return out_->send_batch_shared(messages);
  }

  bool prefers_owned_batches() const override { return true; }

  std::optional<Bytes> receive() override { return count_in(in_->receive()); }

  std::vector<Bytes> receive_batch(std::size_t max) override {
    std::vector<Bytes> out = in_->receive_batch(max);
    if (!out.empty()) {
      if (auto* msgs = msgs_in_.load(std::memory_order_acquire)) {
        std::size_t total = 0;
        for (const Bytes& m : out) total += m.size();
        msgs->inc(out.size());
        bytes_in_.load(std::memory_order_acquire)->inc(total);
      }
    }
    return out;
  }

  std::vector<SharedBytes> receive_batch_shared(std::size_t max) override {
    std::vector<SharedBytes> out = in_->receive_batch_shared(max);
    if (!out.empty()) {
      if (auto* msgs = msgs_in_.load(std::memory_order_acquire)) {
        std::size_t total = 0;
        for (const SharedBytes& m : out) total += m->size();
        msgs->inc(out.size());
        bytes_in_.load(std::memory_order_acquire)->inc(total);
      }
    }
    return out;
  }

  std::optional<Bytes> receive_for(std::chrono::milliseconds d) override {
    return count_in(in_->receive_for(d));
  }

  void close() override {
    out_->close();
    in_->close();
  }

  bool is_closed() const override {
    return out_->is_closed() || in_->is_closed();
  }

  std::size_t pending() const override { return in_->pending(); }

  void instrument(obs::Registry& registry, const std::string& name) override {
    const std::string prefix = "transport.link." + name;
    out_->set_send_instruments(&registry.counter(prefix + ".msgs_out_total"),
                               &registry.counter(prefix + ".bytes_out_total"),
                               &registry.counter(prefix + ".send_stalls_total"),
                               &registry.histogram(prefix + ".batch_size",
                                                   obs::Histogram::size_bounds()));
    msgs_in_.store(&registry.counter(prefix + ".msgs_in_total"),
                   std::memory_order_release);
    bytes_in_.store(&registry.counter(prefix + ".bytes_in_total"),
                    std::memory_order_release);
  }

 private:
  std::optional<Bytes> count_in(std::optional<Bytes> message) {
    if (message.has_value()) {
      if (auto* msgs = msgs_in_.load(std::memory_order_acquire)) {
        msgs->inc();
        bytes_in_.load(std::memory_order_acquire)->inc(message->size());
      }
    }
    return message;
  }

  std::shared_ptr<ShapedPipe> out_;
  std::shared_ptr<ShapedPipe> in_;
  std::atomic<obs::Counter*> msgs_in_{nullptr};
  std::atomic<obs::Counter*> bytes_in_{nullptr};
};

}  // namespace

std::pair<std::shared_ptr<MessageLink>, std::shared_ptr<MessageLink>>
make_inprocess_link_pair(std::size_t capacity, LinkShaping shaping) {
  auto a_to_b = std::make_shared<ShapedPipe>(capacity, shaping);
  auto b_to_a = std::make_shared<ShapedPipe>(capacity, shaping);
  return {std::make_shared<InProcessEndpoint>(a_to_b, b_to_a),
          std::make_shared<InProcessEndpoint>(b_to_a, a_to_b)};
}

}  // namespace admire::transport
