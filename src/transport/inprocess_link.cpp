#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "transport/link.h"

namespace admire::transport {
namespace {

using SteadyTime = std::chrono::steady_clock::time_point;

/// One direction of a shaped pipe: a bounded queue whose items become
/// visible only after their computed delivery time (latency + serialization
/// time at the configured bandwidth, FIFO per link).
class ShapedPipe {
 public:
  ShapedPipe(std::size_t capacity, LinkShaping shaping)
      : capacity_(capacity), shaping_(shaping) {}

  Status send(Bytes message) {
    std::unique_lock lock(mu_);
    if (!closed_ && items_.size() >= capacity_ && stalls_ != nullptr) {
      stalls_->inc();  // sender is about to block on back-pressure
    }
    writable_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return err(StatusCode::kClosed, "link closed");
    if (msgs_ != nullptr) {
      msgs_->inc();
      bytes_->inc(message.size());
    }
    items_.push_back(Item{compute_delivery(message.size()), std::move(message)});
    lock.unlock();
    readable_.notify_one();
    return Status::ok();
  }

  std::optional<Bytes> receive() {
    std::unique_lock lock(mu_);
    while (true) {
      readable_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;  // closed and drained
      const auto ready = items_.front().deliver_at;
      const auto now = std::chrono::steady_clock::now();
      if (ready <= now) break;
      // Head-of-line shaping delay: wait until the head is deliverable.
      readable_.wait_until(lock, ready);
    }
    Bytes out = std::move(items_.front().message);
    items_.pop_front();
    lock.unlock();
    writable_.notify_one();
    return out;
  }

  std::optional<Bytes> receive_for(std::chrono::milliseconds d) {
    const auto deadline = std::chrono::steady_clock::now() + d;
    std::unique_lock lock(mu_);
    while (true) {
      if (!readable_.wait_until(lock, deadline,
                                [&] { return closed_ || !items_.empty(); })) {
        return std::nullopt;  // timeout
      }
      if (items_.empty()) return std::nullopt;  // closed and drained
      const auto ready = items_.front().deliver_at;
      if (ready <= std::chrono::steady_clock::now()) break;
      if (ready >= deadline) {
        readable_.wait_until(lock, deadline);
        if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
      } else {
        readable_.wait_until(lock, ready);
      }
    }
    Bytes out = std::move(items_.front().message);
    items_.pop_front();
    lock.unlock();
    writable_.notify_one();
    return out;
  }

  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    readable_.notify_all();
    writable_.notify_all();
  }

  bool is_closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t pending() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  /// Attach send-side counters (owned by a registry). Counted under the
  /// pipe mutex, so plain pointers are safe once set before traffic starts.
  void set_send_instruments(obs::Counter* msgs, obs::Counter* bytes,
                            obs::Counter* stalls) {
    std::lock_guard lock(mu_);
    msgs_ = msgs;
    bytes_ = bytes;
    stalls_ = stalls;
  }

 private:
  struct Item {
    SteadyTime deliver_at;
    Bytes message;
  };

  SteadyTime compute_delivery(std::size_t size) {
    const auto now = std::chrono::steady_clock::now();
    auto start = std::max(now, link_free_at_);
    if (shaping_.bytes_per_second > 0.0) {
      const auto tx = std::chrono::nanoseconds(static_cast<Nanos>(
          static_cast<double>(size) / shaping_.bytes_per_second * 1e9));
      link_free_at_ = start + tx;
      start = link_free_at_;
    }
    return start + std::chrono::nanoseconds(shaping_.latency);
  }

  const std::size_t capacity_;
  const LinkShaping shaping_;
  mutable std::mutex mu_;
  std::condition_variable readable_;
  std::condition_variable writable_;
  std::deque<Item> items_;
  SteadyTime link_free_at_{};
  bool closed_ = false;
  obs::Counter* msgs_ = nullptr;
  obs::Counter* bytes_ = nullptr;
  obs::Counter* stalls_ = nullptr;
};

/// Endpoint pairing one outgoing and one incoming pipe.
class InProcessEndpoint final : public MessageLink {
 public:
  InProcessEndpoint(std::shared_ptr<ShapedPipe> out,
                    std::shared_ptr<ShapedPipe> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  ~InProcessEndpoint() override { close(); }

  Status send(Bytes message) override { return out_->send(std::move(message)); }

  std::optional<Bytes> receive() override { return count_in(in_->receive()); }

  std::optional<Bytes> receive_for(std::chrono::milliseconds d) override {
    return count_in(in_->receive_for(d));
  }

  void close() override {
    out_->close();
    in_->close();
  }

  bool is_closed() const override {
    return out_->is_closed() || in_->is_closed();
  }

  std::size_t pending() const override { return in_->pending(); }

  void instrument(obs::Registry& registry, const std::string& name) override {
    const std::string prefix = "transport.link." + name;
    out_->set_send_instruments(&registry.counter(prefix + ".msgs_out_total"),
                               &registry.counter(prefix + ".bytes_out_total"),
                               &registry.counter(prefix + ".send_stalls_total"));
    msgs_in_.store(&registry.counter(prefix + ".msgs_in_total"),
                   std::memory_order_release);
    bytes_in_.store(&registry.counter(prefix + ".bytes_in_total"),
                    std::memory_order_release);
  }

 private:
  std::optional<Bytes> count_in(std::optional<Bytes> message) {
    if (message.has_value()) {
      if (auto* msgs = msgs_in_.load(std::memory_order_acquire)) {
        msgs->inc();
        bytes_in_.load(std::memory_order_acquire)->inc(message->size());
      }
    }
    return message;
  }

  std::shared_ptr<ShapedPipe> out_;
  std::shared_ptr<ShapedPipe> in_;
  std::atomic<obs::Counter*> msgs_in_{nullptr};
  std::atomic<obs::Counter*> bytes_in_{nullptr};
};

}  // namespace

std::pair<std::shared_ptr<MessageLink>, std::shared_ptr<MessageLink>>
make_inprocess_link_pair(std::size_t capacity, LinkShaping shaping) {
  auto a_to_b = std::make_shared<ShapedPipe>(capacity, shaping);
  auto b_to_a = std::make_shared<ShapedPipe>(capacity, shaping);
  return {std::make_shared<InProcessEndpoint>(a_to_b, b_to_a),
          std::make_shared<InProcessEndpoint>(b_to_a, a_to_b)};
}

}  // namespace admire::transport
