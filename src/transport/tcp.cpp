#include "transport/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>

#include "serialize/event_codec.h"

namespace admire::transport {
namespace {

Status errno_status(StatusCode code, const char* what) {
  return err(code, std::string(what) + ": " + std::strerror(errno));
}

/// MessageLink over a connected socket. One mutex serializes writers; the
/// reader side is single-consumer (receive() performs the blocking reads
/// and incremental frame parsing itself — no extra reader thread).
class TcpLink final : public MessageLink {
 public:
  explicit TcpLink(int fd) : fd_(fd) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }

  ~TcpLink() override { close(); }

  Status send(Bytes message) override {
    const ByteSpan body(message.data(), message.size());
    return send_batch(std::span<const ByteSpan>(&body, 1));
  }

  /// Zero-copy vectored send: each message body is framed by a 12-byte
  /// prefix written straight from a stack-side header array, and the whole
  /// batch goes out through as few writev() calls as the iovec limit
  /// allows — bodies are never copied into a contiguous framed buffer.
  Status send_batch(std::span<const ByteSpan> messages) override {
    if (messages.empty()) return Status::ok();
    std::lock_guard lock(send_mu_);
    if (closed_.load(std::memory_order_acquire)) {
      return err(StatusCode::kClosed, "tcp link closed");
    }
    if (auto* batch = batch_size_.load(std::memory_order_acquire)) {
      batch->observe(static_cast<double>(messages.size()));
    }
    // Frame+send in chunks: each message contributes two iovecs (header,
    // body), bounded well under IOV_MAX.
    constexpr std::size_t kChunk = 128;
    std::array<std::array<std::byte, serialize::kFrameHeaderSize>, kChunk>
        headers;
    std::array<struct iovec, 2 * kChunk> iov;
    std::size_t total_bytes = 0;
    for (std::size_t base = 0; base < messages.size(); base += kChunk) {
      const std::size_t n = std::min(kChunk, messages.size() - base);
      std::size_t chunk_bytes = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const ByteSpan body = messages[base + i];
        serialize::frame_header(body, headers[i].data());
        iov[2 * i] = {headers[i].data(), serialize::kFrameHeaderSize};
        iov[2 * i + 1] = {const_cast<std::byte*>(body.data()), body.size()};
        chunk_bytes += serialize::kFrameHeaderSize + body.size();
      }
      Status st = write_iovs(iov.data(), 2 * n, chunk_bytes);
      if (!st.is_ok()) return st;
      total_bytes += chunk_bytes;
    }
    if (auto* msgs = msgs_out_.load(std::memory_order_acquire)) {
      msgs->inc(messages.size());
      bytes_out_.load(std::memory_order_acquire)->inc(total_bytes);
    }
    return Status::ok();
  }

  std::optional<Bytes> receive() override { return receive_impl(-1); }

  std::optional<Bytes> receive_for(std::chrono::milliseconds d) override {
    return receive_impl(static_cast<int>(d.count()));
  }

  void close() override {
    bool expected = false;
    if (closed_.compare_exchange_strong(expected, true)) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
    }
  }

  bool is_closed() const override {
    return closed_.load(std::memory_order_acquire);
  }

  std::size_t pending() const override { return 0; }  // kernel-buffered

  void instrument(obs::Registry& registry, const std::string& name) override {
    const std::string prefix = "transport.link." + name;
    msgs_out_.store(&registry.counter(prefix + ".msgs_out_total"),
                    std::memory_order_release);
    bytes_out_.store(&registry.counter(prefix + ".bytes_out_total"),
                     std::memory_order_release);
    msgs_in_.store(&registry.counter(prefix + ".msgs_in_total"),
                   std::memory_order_release);
    bytes_in_.store(&registry.counter(prefix + ".bytes_in_total"),
                    std::memory_order_release);
    writev_calls_.store(&registry.counter(prefix + ".writev_calls_total"),
                        std::memory_order_release);
    batch_size_.store(&registry.histogram(prefix + ".batch_size",
                                          obs::Histogram::size_bounds()),
                      std::memory_order_release);
  }

 private:
  /// Issue one vectored write syscall (sendmsg — writev semantics plus
  /// MSG_NOSIGNAL) until `total` bytes are on the wire, advancing through
  /// the iovec list on partial writes. Caller holds send_mu_.
  Status write_iovs(struct iovec* iov, std::size_t iovcnt, std::size_t total) {
    std::size_t written = 0;
    std::size_t first = 0;  // first iovec with unwritten bytes
    while (written < total) {
      struct msghdr msg{};
      msg.msg_iov = iov + first;
      msg.msg_iovlen = iovcnt - first;
      const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
      if (auto* calls = writev_calls_.load(std::memory_order_acquire)) {
        calls->inc();
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        return errno_status(StatusCode::kUnavailable, "writev");
      }
      written += static_cast<std::size_t>(n);
      std::size_t advanced = static_cast<std::size_t>(n);
      while (first < iovcnt && advanced >= iov[first].iov_len) {
        advanced -= iov[first].iov_len;
        ++first;
      }
      if (first < iovcnt && advanced > 0) {
        iov[first].iov_base = static_cast<std::byte*>(iov[first].iov_base) +
                              advanced;
        iov[first].iov_len -= advanced;
      }
    }
    return Status::ok();
  }
  std::optional<Bytes> receive_impl(int timeout_ms) {
    std::lock_guard lock(recv_mu_);
    while (true) {
      // Drain any already-buffered complete frame first.
      auto res = parser_.next();
      if (res.is_ok()) {
        Bytes out = std::move(res).value();
        if (auto* msgs = msgs_in_.load(std::memory_order_acquire)) {
          msgs->inc();
          bytes_in_.load(std::memory_order_acquire)->inc(out.size());
        }
        return out;
      }
      if (res.status().code() == StatusCode::kCorrupt) {
        close();
        return std::nullopt;
      }
      if (closed_.load(std::memory_order_acquire)) return std::nullopt;

      struct pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr == 0) return std::nullopt;  // timeout
      if (pr < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      std::byte buf[16 * 1024];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n == 0) {
        close();
        // Peer closed: any partially buffered frame is unusable.
        return std::nullopt;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        close();
        return std::nullopt;
      }
      parser_.feed(ByteSpan(buf, static_cast<std::size_t>(n)));
    }
  }

  int fd_;
  std::atomic<bool> closed_{false};
  std::mutex send_mu_;
  std::mutex recv_mu_;
  serialize::FrameParser parser_;
  std::atomic<obs::Counter*> msgs_out_{nullptr};
  std::atomic<obs::Counter*> bytes_out_{nullptr};
  std::atomic<obs::Counter*> msgs_in_{nullptr};
  std::atomic<obs::Counter*> bytes_in_{nullptr};
  std::atomic<obs::Counter*> writev_calls_{nullptr};
  std::atomic<obs::Histogram*> batch_size_{nullptr};
};

}  // namespace

Result<std::shared_ptr<MessageLink>> tcp_connect(
    const std::string& host, std::uint16_t port,
    std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return errno_status(StatusCode::kInternal, "socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return err(StatusCode::kInvalidArgument, "bad address: " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
      return std::static_pointer_cast<MessageLink>(
          std::make_shared<TcpLink>(fd));
    }
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) {
      return errno_status(StatusCode::kUnavailable, "connect");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Result<std::unique_ptr<TcpListener>> TcpListener::bind(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status(StatusCode::kInternal, "socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return errno_status(StatusCode::kUnavailable, "bind");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return errno_status(StatusCode::kUnavailable, "listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return errno_status(StatusCode::kInternal, "getsockname");
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));
}

TcpListener::~TcpListener() { close(); }

Result<std::shared_ptr<MessageLink>> TcpListener::accept() {
  while (true) {
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd >= 0) {
      return std::static_pointer_cast<MessageLink>(
          std::make_shared<TcpLink>(cfd));
    }
    if (errno == EINTR) continue;
    return err(StatusCode::kClosed, "listener closed");
  }
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace admire::transport
