#include "transport/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>

#include "serialize/event_codec.h"

namespace admire::transport {
namespace {

Status errno_status(StatusCode code, const char* what) {
  return err(code, std::string(what) + ": " + std::strerror(errno));
}

/// MessageLink over a connected socket. One mutex serializes writers; the
/// reader side is single-consumer (receive() performs the blocking reads
/// and incremental frame parsing itself — no extra reader thread).
class TcpLink final : public MessageLink {
 public:
  explicit TcpLink(int fd) : fd_(fd) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }

  ~TcpLink() override { close(); }

  Status send(Bytes message) override {
    const Bytes framed = serialize::frame(message);
    std::lock_guard lock(send_mu_);
    if (closed_.load(std::memory_order_acquire)) {
      return err(StatusCode::kClosed, "tcp link closed");
    }
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return errno_status(StatusCode::kUnavailable, "send");
      }
      off += static_cast<std::size_t>(n);
    }
    if (auto* msgs = msgs_out_.load(std::memory_order_acquire)) {
      msgs->inc();
      bytes_out_.load(std::memory_order_acquire)->inc(framed.size());
    }
    return Status::ok();
  }

  std::optional<Bytes> receive() override { return receive_impl(-1); }

  std::optional<Bytes> receive_for(std::chrono::milliseconds d) override {
    return receive_impl(static_cast<int>(d.count()));
  }

  void close() override {
    bool expected = false;
    if (closed_.compare_exchange_strong(expected, true)) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
    }
  }

  bool is_closed() const override {
    return closed_.load(std::memory_order_acquire);
  }

  std::size_t pending() const override { return 0; }  // kernel-buffered

  void instrument(obs::Registry& registry, const std::string& name) override {
    const std::string prefix = "transport.link." + name;
    msgs_out_.store(&registry.counter(prefix + ".msgs_out_total"),
                    std::memory_order_release);
    bytes_out_.store(&registry.counter(prefix + ".bytes_out_total"),
                     std::memory_order_release);
    msgs_in_.store(&registry.counter(prefix + ".msgs_in_total"),
                   std::memory_order_release);
    bytes_in_.store(&registry.counter(prefix + ".bytes_in_total"),
                    std::memory_order_release);
  }

 private:
  std::optional<Bytes> receive_impl(int timeout_ms) {
    std::lock_guard lock(recv_mu_);
    while (true) {
      // Drain any already-buffered complete frame first.
      auto res = parser_.next();
      if (res.is_ok()) {
        Bytes out = std::move(res).value();
        if (auto* msgs = msgs_in_.load(std::memory_order_acquire)) {
          msgs->inc();
          bytes_in_.load(std::memory_order_acquire)->inc(out.size());
        }
        return out;
      }
      if (res.status().code() == StatusCode::kCorrupt) {
        close();
        return std::nullopt;
      }
      if (closed_.load(std::memory_order_acquire)) return std::nullopt;

      struct pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr == 0) return std::nullopt;  // timeout
      if (pr < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      std::byte buf[16 * 1024];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n == 0) {
        close();
        // Peer closed: any partially buffered frame is unusable.
        return std::nullopt;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        close();
        return std::nullopt;
      }
      parser_.feed(ByteSpan(buf, static_cast<std::size_t>(n)));
    }
  }

  int fd_;
  std::atomic<bool> closed_{false};
  std::mutex send_mu_;
  std::mutex recv_mu_;
  serialize::FrameParser parser_;
  std::atomic<obs::Counter*> msgs_out_{nullptr};
  std::atomic<obs::Counter*> bytes_out_{nullptr};
  std::atomic<obs::Counter*> msgs_in_{nullptr};
  std::atomic<obs::Counter*> bytes_in_{nullptr};
};

}  // namespace

Result<std::shared_ptr<MessageLink>> tcp_connect(
    const std::string& host, std::uint16_t port,
    std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return errno_status(StatusCode::kInternal, "socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return err(StatusCode::kInvalidArgument, "bad address: " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
      return std::static_pointer_cast<MessageLink>(
          std::make_shared<TcpLink>(fd));
    }
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) {
      return errno_status(StatusCode::kUnavailable, "connect");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Result<std::unique_ptr<TcpListener>> TcpListener::bind(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status(StatusCode::kInternal, "socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return errno_status(StatusCode::kUnavailable, "bind");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return errno_status(StatusCode::kUnavailable, "listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return errno_status(StatusCode::kInternal, "getsockname");
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));
}

TcpListener::~TcpListener() { close(); }

Result<std::shared_ptr<MessageLink>> TcpListener::accept() {
  while (true) {
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd >= 0) {
      return std::static_pointer_cast<MessageLink>(
          std::make_shared<TcpLink>(cfd));
    }
    if (errno == EINTR) continue;
    return err(StatusCode::kClosed, "listener closed");
  }
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace admire::transport
