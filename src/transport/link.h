// Bidirectional frame-oriented message links. The mirroring middleware is
// written against this abstraction so the same code runs over in-process
// queues (threaded single-process cluster emulation) or TCP sockets
// (multi-process cluster emulation on one box).
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/registry.h"

namespace admire::transport {

/// Refcounted immutable message buffer. Queue-backed links move these
/// through without copying, so one encoded frame can fan out to M links
/// for M refcount bumps instead of M deep copies.
using SharedBytes = std::shared_ptr<const Bytes>;

/// One endpoint of a reliable, ordered, bidirectional message pipe.
/// send() enqueues one message body; receive() blocks for the next one.
/// Implementations must be safe for one concurrent sender and one
/// concurrent receiver per endpoint (the aux-unit task structure needs
/// exactly that).
class MessageLink {
 public:
  virtual ~MessageLink() = default;

  /// Enqueue one message. kClosed once either side has closed.
  virtual Status send(Bytes message) = 0;

  /// Enqueue several messages as one transport operation, preserving
  /// order. Equivalent to N send() calls on the wire (the receiver sees N
  /// ordinary messages) but lets implementations amortize per-message
  /// costs: the TCP link frames all bodies into a single writev, the
  /// in-process link takes its queue lock once. Fails atomically per
  /// message: messages before the failure point were sent. The spans must
  /// stay valid for the duration of the call; no copy is taken on paths
  /// that can write them through directly.
  virtual Status send_batch(std::span<const ByteSpan> messages) {
    for (const ByteSpan& m : messages) {
      Status st = send(Bytes(m.begin(), m.end()));
      if (!st.is_ok()) return st;
    }
    return Status::ok();
  }

  /// send_batch variant that transfers buffer ownership to the link.
  /// Queue-backed links (in-process) enqueue the buffers directly — zero
  /// copies; wire-backed links write through spans over the owned buffers —
  /// also zero extra copies. Prefer this when the caller would otherwise
  /// throw the buffers away.
  virtual Status send_batch_owned(std::vector<Bytes>&& messages) {
    std::vector<ByteSpan> spans;
    spans.reserve(messages.size());
    for (const Bytes& m : messages) spans.emplace_back(m.data(), m.size());
    return send_batch(std::span<const ByteSpan>(spans.data(), spans.size()));
  }

  /// True when send_batch_owned() can exploit buffer ownership (saving the
  /// producer a staging copy); callers may use it to pick how they stage
  /// outgoing batches.
  virtual bool prefers_owned_batches() const { return false; }

  /// send_batch variant over refcounted buffers. The in-process link
  /// enqueues the shared_ptrs themselves (a fan-out to M mirrors of the
  /// same buffers costs M refcount bumps, zero copies); wire-backed links
  /// write through spans over the shared buffers. The buffers must not be
  /// mutated after the call (receivers may alias them).
  virtual Status send_batch_shared(std::span<const SharedBytes> messages) {
    std::vector<ByteSpan> spans;
    spans.reserve(messages.size());
    for (const SharedBytes& m : messages) {
      spans.emplace_back(m->data(), m->size());
    }
    return send_batch(std::span<const ByteSpan>(spans.data(), spans.size()));
  }

  /// Blocking receive; nullopt means closed-and-drained.
  virtual std::optional<Bytes> receive() = 0;

  /// Blocking batched receive: waits like receive() for the first message,
  /// then drains up to `max` already-available messages in the same
  /// operation (one lock/wake round-trip instead of one per message).
  /// Empty means closed-and-drained. Default: a single receive().
  virtual std::vector<Bytes> receive_batch(std::size_t max) {
    std::vector<Bytes> out;
    if (max == 0) return out;
    if (auto m = receive()) out.push_back(std::move(*m));
    return out;
  }

  /// receive_batch over refcounted buffers. When the sender used
  /// send_batch_shared over a queue-backed link, the very same buffers come
  /// out here — the receive side of the zero-copy fan-out. Other paths
  /// wrap owned buffers without copying their contents.
  virtual std::vector<SharedBytes> receive_batch_shared(std::size_t max) {
    std::vector<Bytes> owned = receive_batch(max);
    std::vector<SharedBytes> out;
    out.reserve(owned.size());
    for (Bytes& m : owned) {
      out.push_back(std::make_shared<const Bytes>(std::move(m)));
    }
    return out;
  }

  /// Receive with timeout; nullopt on timeout or closed-and-drained
  /// (check is_closed() to distinguish when it matters).
  virtual std::optional<Bytes> receive_for(std::chrono::milliseconds d) = 0;

  /// Half-close: wakes blocked peers; further sends fail.
  virtual void close() = 0;

  virtual bool is_closed() const = 0;

  /// Messages queued toward this endpoint but not yet received (best
  /// effort; used by monitoring, not for protocol decisions).
  virtual std::size_t pending() const = 0;

  /// Register this endpoint's traffic counters with a metrics registry
  /// under `transport.link.<name>.{msgs,bytes}_{in,out}_total` (plus
  /// `.send_stalls_total` where the implementation can observe
  /// back-pressure, `.batch_size` — a histogram of messages per
  /// send_batch — and `.writev_calls_total` where the implementation
  /// issues vectored writes). Default: not instrumented (no-op).
  virtual void instrument(obs::Registry& registry, const std::string& name) {
    (void)registry;
    (void)name;
  }
};

/// Optional traffic shaping for in-process links: emulate link latency and
/// finite bandwidth so threaded-mode experiments see transfer costs.
struct LinkShaping {
  Nanos latency = 0;              ///< one-way propagation delay
  double bytes_per_second = 0.0;  ///< 0 = unlimited
};

/// Create a connected pair of in-process endpoints. `capacity` bounds the
/// number of in-flight messages per direction (back-pressure).
std::pair<std::shared_ptr<MessageLink>, std::shared_ptr<MessageLink>>
make_inprocess_link_pair(std::size_t capacity = 1024,
                         LinkShaping shaping = {});

}  // namespace admire::transport
