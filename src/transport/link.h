// Bidirectional frame-oriented message links. The mirroring middleware is
// written against this abstraction so the same code runs over in-process
// queues (threaded single-process cluster emulation) or TCP sockets
// (multi-process cluster emulation on one box).
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/registry.h"

namespace admire::transport {

/// One endpoint of a reliable, ordered, bidirectional message pipe.
/// send() enqueues one message body; receive() blocks for the next one.
/// Implementations must be safe for one concurrent sender and one
/// concurrent receiver per endpoint (the aux-unit task structure needs
/// exactly that).
class MessageLink {
 public:
  virtual ~MessageLink() = default;

  /// Enqueue one message. kClosed once either side has closed.
  virtual Status send(Bytes message) = 0;

  /// Blocking receive; nullopt means closed-and-drained.
  virtual std::optional<Bytes> receive() = 0;

  /// Receive with timeout; nullopt on timeout or closed-and-drained
  /// (check is_closed() to distinguish when it matters).
  virtual std::optional<Bytes> receive_for(std::chrono::milliseconds d) = 0;

  /// Half-close: wakes blocked peers; further sends fail.
  virtual void close() = 0;

  virtual bool is_closed() const = 0;

  /// Messages queued toward this endpoint but not yet received (best
  /// effort; used by monitoring, not for protocol decisions).
  virtual std::size_t pending() const = 0;

  /// Register this endpoint's traffic counters with a metrics registry
  /// under `transport.link.<name>.{msgs,bytes}_{in,out}_total` (plus
  /// `.send_stalls_total` where the implementation can observe
  /// back-pressure). Default: not instrumented (no-op).
  virtual void instrument(obs::Registry& registry, const std::string& name) {
    (void)registry;
    (void)name;
  }
};

/// Optional traffic shaping for in-process links: emulate link latency and
/// finite bandwidth so threaded-mode experiments see transfer costs.
struct LinkShaping {
  Nanos latency = 0;              ///< one-way propagation delay
  double bytes_per_second = 0.0;  ///< 0 = unlimited
};

/// Create a connected pair of in-process endpoints. `capacity` bounds the
/// number of in-flight messages per direction (back-pressure).
std::pair<std::shared_ptr<MessageLink>, std::shared_ptr<MessageLink>>
make_inprocess_link_pair(std::size_t capacity = 1024,
                         LinkShaping shaping = {});

}  // namespace admire::transport
