// TCP realization of MessageLink: length-prefixed checksummed frames over a
// loopback (or real) socket. Used for multi-process cluster emulation on
// one box — each mirror site can run as its own OS process.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "transport/link.h"

namespace admire::transport {

/// Connect to a listening peer. Blocking; retries for up to `timeout`
/// (covers the race where the client starts before the server's listen()).
Result<std::shared_ptr<MessageLink>> tcp_connect(
    const std::string& host, std::uint16_t port,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

/// Listening socket accepting MessageLink connections.
class TcpListener {
 public:
  /// Bind and listen on 127.0.0.1:`port`; port 0 picks a free port
  /// (see port() for the actual value).
  static Result<std::unique_ptr<TcpListener>> bind(std::uint16_t port);

  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Blocking accept of the next connection; kClosed after close().
  Result<std::shared_ptr<MessageLink>> accept();

  /// Unblocks pending accept() calls.
  void close();

  std::uint16_t port() const { return port_; }

 private:
  TcpListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}

  int fd_;
  std::uint16_t port_;
};

}  // namespace admire::transport
