#include "faultinject/faulty_link.h"

#include <algorithm>

namespace admire::faultinject {

FaultyLink::FaultyLink(std::shared_ptr<transport::MessageLink> inner,
                       std::uint64_t seed, std::shared_ptr<Clock> clock)
    : inner_(std::move(inner)),
      clock_(clock ? std::move(clock) : std::make_shared<SteadyClock>()),
      rng_(seed) {}

void FaultyLink::set_faults(const FaultSpec& spec) {
  std::lock_guard lock(mu_);
  spec_ = spec;
}

FaultSpec FaultyLink::faults() const {
  std::lock_guard lock(mu_);
  return spec_;
}

void FaultyLink::crash() {
  std::lock_guard lock(mu_);
  crashed_ = true;
  // In-flight messages die with the node.
  dropped_ += pending_.size();
  if (obs_dropped_ != nullptr && !pending_.empty()) {
    obs_dropped_->inc(pending_.size());
  }
  pending_.clear();
}

bool FaultyLink::crashed() const {
  std::lock_guard lock(mu_);
  return crashed_;
}

void FaultyLink::heal() {
  std::lock_guard lock(mu_);
  crashed_ = false;
  spec_ = FaultSpec{};
}

std::uint64_t FaultyLink::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}
std::uint64_t FaultyLink::delayed() const {
  std::lock_guard lock(mu_);
  return delayed_;
}
std::uint64_t FaultyLink::duplicated() const {
  std::lock_guard lock(mu_);
  return duplicated_;
}
std::uint64_t FaultyLink::reordered() const {
  std::lock_guard lock(mu_);
  return reordered_;
}

void FaultyLink::instrument(obs::Registry& registry, const std::string& name) {
  inner_->instrument(registry, name);
  const std::string prefix = "faults.link." + name;
  obs::Counter& dropped = registry.counter(prefix + ".dropped_total");
  obs::Counter& delayed = registry.counter(prefix + ".delayed_total");
  obs::Counter& duplicated = registry.counter(prefix + ".duplicated_total");
  obs::Counter& reordered = registry.counter(prefix + ".reordered_total");
  std::lock_guard lock(mu_);
  obs_dropped_ = &dropped;
  obs_delayed_ = &delayed;
  obs_duplicated_ = &duplicated;
  obs_reordered_ = &reordered;
}

bool FaultyLink::outbound_blocked_locked() {
  // The coin is flipped even while partitioned/crashed so the deterministic
  // fault sequence does not depend on when a partition was active.
  const bool coin_drop = spec_.drop_send > 0.0 && rng_.next_bool(spec_.drop_send);
  if (crashed_ || spec_.partition_out || coin_drop) {
    ++dropped_;
    if (obs_dropped_ != nullptr) obs_dropped_->inc();
    return true;
  }
  return false;
}

Status FaultyLink::send(Bytes message) {
  {
    std::lock_guard lock(mu_);
    if (outbound_blocked_locked()) return Status::ok();  // silent black-hole
  }
  return inner_->send(std::move(message));
}

Status FaultyLink::send_batch(std::span<const ByteSpan> messages) {
  // Faults apply per message, so forward survivors one by one; fault paths
  // are control-plane traffic, never the zero-copy hot path.
  for (const ByteSpan& m : messages) {
    Status st = send(Bytes(m.begin(), m.end()));
    if (!st.is_ok()) return st;
  }
  return Status::ok();
}

std::optional<Bytes> FaultyLink::pop_due_locked(Nanos now) {
  if (pending_.empty() || pending_.front().ready_at > now) return std::nullopt;
  Bytes out = std::move(pending_.front().message);
  pending_.pop_front();
  return out;
}

std::optional<Bytes> FaultyLink::receive_for(std::chrono::milliseconds d) {
  const auto deadline = std::chrono::steady_clock::now() + d;
  while (true) {
    {
      std::lock_guard lock(mu_);
      if (auto out = pop_due_locked(clock_->now())) return out;
    }
    const auto now = std::chrono::steady_clock::now();
    auto slice = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    if (slice.count() < 0) return std::nullopt;
    // Wake at least every millisecond so delayed messages become visible
    // promptly and fault-knob changes take effect.
    slice = std::min(slice, std::chrono::milliseconds(1));
    auto raw = inner_->receive_for(slice);
    if (!raw.has_value()) {
      std::lock_guard lock(mu_);
      if (inner_->is_closed() && pending_.empty()) return std::nullopt;
      if (std::chrono::steady_clock::now() >= deadline &&
          pop_due_locked(clock_->now()) == std::nullopt) {
        return std::nullopt;
      }
      continue;
    }
    std::lock_guard lock(mu_);
    // Receive-side fault pipeline for the message just pulled off the wire.
    const bool coin_drop =
        spec_.drop_recv > 0.0 && rng_.next_bool(spec_.drop_recv);
    const bool coin_dup =
        spec_.duplicate > 0.0 && rng_.next_bool(spec_.duplicate);
    const bool coin_reorder =
        spec_.reorder > 0.0 && rng_.next_bool(spec_.reorder);
    if (crashed_ || spec_.partition_in || coin_drop) {
      ++dropped_;
      if (obs_dropped_ != nullptr) obs_dropped_->inc();
      continue;
    }
    const Nanos ready_at = clock_->now() + spec_.delay;
    if (spec_.delay > 0) {
      ++delayed_;
      if (obs_delayed_ != nullptr) obs_delayed_->inc();
    }
    Pending item{ready_at, std::move(*raw)};
    if (coin_dup) {
      ++duplicated_;
      if (obs_duplicated_ != nullptr) obs_duplicated_->inc();
      pending_.push_back(Pending{ready_at, Bytes(item.message)});
    }
    if (coin_reorder && !pending_.empty()) {
      ++reordered_;
      if (obs_reordered_ != nullptr) obs_reordered_->inc();
      // Deliver this message before the one in front of it: genuine
      // out-of-order arrival from the receiver's point of view.
      const Nanos earlier = pending_.back().ready_at;
      item.ready_at = std::min(item.ready_at, earlier);
      pending_.insert(pending_.end() - 1, std::move(item));
    } else {
      pending_.push_back(std::move(item));
    }
  }
}

std::optional<Bytes> FaultyLink::receive() {
  while (true) {
    if (auto out = receive_for(std::chrono::milliseconds(50))) return out;
    std::lock_guard lock(mu_);
    if (inner_->is_closed() && pending_.empty()) return std::nullopt;
  }
}

void FaultyLink::close() { inner_->close(); }

bool FaultyLink::is_closed() const { return inner_->is_closed(); }

std::size_t FaultyLink::pending() const {
  std::lock_guard lock(mu_);
  return inner_->pending() + pending_.size();
}

}  // namespace admire::faultinject
