// Deterministic fault injection over transport::MessageLink: a decorator
// that drops, delays, duplicates, reorders, one-way-partitions or
// crash-stops traffic on one endpoint, driven by a seeded PRNG so every
// test run sees the same fault sequence. Used by the control plane's
// heartbeat paths (tests kill a mirror by crash-stopping its heartbeat
// link), by transport tests, and by bench/fig_failover.
//
// Fault model:
//  * send-side faults apply when this endpoint sends (drop_send,
//    partition_out, crash);
//  * receive-side faults apply as messages are pulled from the inner
//    endpoint (drop_recv, delay, duplicate, reorder, partition_in, crash).
//  * crash-stop = both directions black-holed from that instant on; the
//    inner link stays open (a crashed node does not TCP-FIN politely).
//  * heal() clears every fault (used by rejoin scenarios).
//
// Delay is modeled at the receiver: an arriving message becomes visible
// `delay` after it was pulled off the inner link, timed on the injected
// Clock. All knobs are settable at runtime from another thread.
#pragma once

#include <deque>
#include <memory>
#include <mutex>

#include "common/clock.h"
#include "common/rng.h"
#include "transport/link.h"

namespace admire::faultinject {

/// Probabilistic/deterministic fault knobs; all default to "no fault".
struct FaultSpec {
  double drop_send = 0.0;       ///< P(outgoing message silently discarded)
  double drop_recv = 0.0;       ///< P(incoming message silently discarded)
  double duplicate = 0.0;       ///< P(incoming message delivered twice)
  double reorder = 0.0;         ///< P(incoming message held behind the next)
  Nanos delay = 0;              ///< fixed added delivery latency (slow node)
  bool partition_in = false;    ///< nothing gets in (one-way partition)
  bool partition_out = false;   ///< nothing gets out (one-way partition)
};

class FaultyLink final : public transport::MessageLink {
 public:
  /// `clock` times delayed deliveries; null = private SteadyClock.
  FaultyLink(std::shared_ptr<transport::MessageLink> inner,
             std::uint64_t seed = 0xFA17,
             std::shared_ptr<Clock> clock = nullptr);

  // --- Fault controls (thread-safe, effective immediately) ---------------
  void set_faults(const FaultSpec& spec);
  FaultSpec faults() const;
  /// Crash-stop: black-hole both directions until heal().
  void crash();
  bool crashed() const;
  /// Clear every fault, including a crash.
  void heal();

  /// Messages discarded / delayed / duplicated / reordered so far.
  std::uint64_t dropped() const;
  std::uint64_t delayed() const;
  std::uint64_t duplicated() const;
  std::uint64_t reordered() const;

  /// Register `faults.link.<name>.{dropped,delayed,duplicated,reordered}
  /// _total` with `registry` (also forwards to the inner link's
  /// instrument under the same name).
  void instrument(obs::Registry& registry, const std::string& name) override;

  // --- MessageLink ------------------------------------------------------
  Status send(Bytes message) override;
  Status send_batch(std::span<const ByteSpan> messages) override;
  std::optional<Bytes> receive() override;
  std::optional<Bytes> receive_for(std::chrono::milliseconds d) override;
  void close() override;
  bool is_closed() const override;
  std::size_t pending() const override;

 private:
  bool outbound_blocked_locked();  ///< also burns the rng for determinism
  std::optional<Bytes> pop_due_locked(Nanos now);

  std::shared_ptr<transport::MessageLink> inner_;
  std::shared_ptr<Clock> clock_;

  mutable std::mutex mu_;
  FaultSpec spec_;
  bool crashed_ = false;
  Rng rng_;
  struct Pending {
    Nanos ready_at;
    Bytes message;
  };
  std::deque<Pending> pending_;  ///< delayed/reordered inbound messages
  std::uint64_t dropped_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
  obs::Counter* obs_dropped_ = nullptr;
  obs::Counter* obs_delayed_ = nullptr;
  obs::Counter* obs_duplicated_ = nullptr;
  obs::Counter* obs_reordered_ = nullptr;
};

}  // namespace admire::faultinject
