// Scenario schedules: a timed script of fault actions against named
// mirrors ("at t=5s partition mirror 2 for 3s"), shared verbatim by the
// threaded cluster's control plane (wall time, applied to FaultyLinks) and
// the discrete-event simulator (virtual time, applied to per-mirror fault
// state) — the same scenario text produces the same suspicion-state-machine
// transitions in both runtimes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "faultinject/faulty_link.h"

namespace admire::faultinject {

enum class FaultKind : std::uint8_t {
  kCrashStop = 0,     ///< node dies: all its traffic black-holed from `at`
  kPartitionIn = 1,   ///< one-way partition: nothing reaches the observer
  kPartitionOut = 2,  ///< one-way partition: node's sends are lost
  kDelay = 3,         ///< slow node / slow link: add `delay` per message
  kDrop = 4,          ///< lossy link: drop with `probability`
  kHeal = 5,          ///< clear all faults on the mirror
  kRejoin = 6,        ///< drive recovery: bootstrap a replacement mirror
};

constexpr const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kCrashStop: return "crash-stop";
    case FaultKind::kPartitionIn: return "partition-in";
    case FaultKind::kPartitionOut: return "partition-out";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kHeal: return "heal";
    case FaultKind::kRejoin: return "rejoin";
  }
  return "unknown";
}

struct ScheduledFault {
  Nanos at = 0;             ///< when the action fires (run-relative)
  std::size_t mirror = 0;   ///< mirror index (0-based) the action targets
  FaultKind kind = FaultKind::kCrashStop;
  Nanos duration = 0;       ///< >0: auto-heal this fault after `duration`
  Nanos delay = 0;          ///< kDelay: added per-message latency
  double probability = 0.0; ///< kDrop: per-message drop probability
};

/// An ordered fault script. Actions fire in `at` order; ties fire in
/// script order.
class Schedule {
 public:
  Schedule() = default;
  Schedule(std::initializer_list<ScheduledFault> faults)
      : actions_(faults) {
    normalize();
  }

  void add(ScheduledFault f) {
    actions_.push_back(f);
    normalize();
  }

  const std::vector<ScheduledFault>& actions() const { return actions_; }
  bool empty() const { return actions_.empty(); }

  /// Actions with `at` in (`from`, `to`] — the threaded driver polls this
  /// each monitor tick with its previous and current clock reading.
  std::vector<ScheduledFault> due(Nanos from, Nanos to) const;

  /// Expand auto-heal durations into explicit kHeal actions (the simulator
  /// schedules each returned action as one calendar entry).
  std::vector<ScheduledFault> expanded() const;

  /// Apply one action to a FaultyLink (kRejoin is cluster-level, not a
  /// link fault: it is a no-op here and handled by the caller).
  static void apply(const ScheduledFault& f, FaultyLink& link);

 private:
  void normalize();  ///< stable-sort by `at`

  std::vector<ScheduledFault> actions_;
};

}  // namespace admire::faultinject
