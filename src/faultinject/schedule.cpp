#include "faultinject/schedule.h"

#include <algorithm>

namespace admire::faultinject {

void Schedule::normalize() {
  std::stable_sort(actions_.begin(), actions_.end(),
                   [](const ScheduledFault& a, const ScheduledFault& b) {
                     return a.at < b.at;
                   });
}

std::vector<ScheduledFault> Schedule::due(Nanos from, Nanos to) const {
  std::vector<ScheduledFault> out;
  for (const auto& f : actions_) {
    if (f.at > from && f.at <= to) out.push_back(f);
    if (f.at > to) break;
  }
  return out;
}

std::vector<ScheduledFault> Schedule::expanded() const {
  std::vector<ScheduledFault> out;
  for (const auto& f : actions_) {
    out.push_back(f);
    if (f.duration > 0 && f.kind != FaultKind::kRejoin) {
      ScheduledFault heal;
      heal.at = f.at + f.duration;
      heal.mirror = f.mirror;
      heal.kind = FaultKind::kHeal;
      out.push_back(heal);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ScheduledFault& a, const ScheduledFault& b) {
                     return a.at < b.at;
                   });
  return out;
}

void Schedule::apply(const ScheduledFault& f, FaultyLink& link) {
  switch (f.kind) {
    case FaultKind::kCrashStop:
      link.crash();
      break;
    case FaultKind::kPartitionIn: {
      FaultSpec spec = link.faults();
      spec.partition_in = true;
      link.set_faults(spec);
      break;
    }
    case FaultKind::kPartitionOut: {
      FaultSpec spec = link.faults();
      spec.partition_out = true;
      link.set_faults(spec);
      break;
    }
    case FaultKind::kDelay: {
      FaultSpec spec = link.faults();
      spec.delay = f.delay;
      link.set_faults(spec);
      break;
    }
    case FaultKind::kDrop: {
      FaultSpec spec = link.faults();
      spec.drop_recv = f.probability;
      link.set_faults(spec);
      break;
    }
    case FaultKind::kHeal:
      link.heal();
      break;
    case FaultKind::kRejoin:
      break;  // cluster-level action; the control plane handles it
  }
}

}  // namespace admire::faultinject
