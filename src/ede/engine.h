// Event Derivation Engine (paper §2): "EDE code performs transactional and
// analytical processing of newly arrived data events, according to a set of
// business rules". Each process() call folds one event into operational
// state and returns the derived output events — the "continuous state
// updates" the central site distributes to regular clients, plus complex
// events like "all passengers of a flight have boarded".
#pragma once

#include <cstdint>
#include <vector>

#include "ede/operational_state.h"
#include "event/event.h"
#include "event/vector_timestamp.h"

namespace admire::ede {

struct EdeCounters {
  std::uint64_t events_processed = 0;
  std::uint64_t updates_emitted = 0;
  std::uint64_t all_boarded_derived = 0;
  std::uint64_t arrivals_recorded = 0;
  std::uint64_t incomplete_departures = 0;
  std::uint64_t gate_changes = 0;
};

class Ede {
 public:
  explicit Ede(OperationalState* state) : state_(state) {}

  /// Apply business logic for one data event. Returned events are ready to
  /// publish on the site's client-output channel; their headers inherit the
  /// input's ingress_time so update delay is measurable end-to-end.
  std::vector<event::Event> process(const event::Event& ev);

  /// VTS of the most recent event processed — the unit's checkpoint-reply
  /// input ("the most recent event processed by the sites' business
  /// logic").
  event::VectorTimestamp progress() const;

  /// Fast-forward the progress marker (recovery: a restored snapshot
  /// already covers events up to `vts`).
  void seed_progress(const event::VectorTimestamp& vts) {
    progress_.merge(vts);
  }

  const EdeCounters& counters() const { return counters_; }
  OperationalState& state() { return *state_; }
  const OperationalState& state() const { return *state_; }

 private:
  OperationalState* state_;  // not owned
  EdeCounters counters_;
  event::VectorTimestamp progress_;
};

}  // namespace admire::ede
