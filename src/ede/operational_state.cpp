#include "ede/operational_state.h"

#include "serialize/wire.h"

namespace admire::ede {

std::optional<FlightRecord> OperationalState::get(FlightKey flight) const {
  std::lock_guard lock(mu_);
  auto it = flights_.find(flight);
  if (it == flights_.end()) return std::nullopt;
  return it->second;
}

std::size_t OperationalState::flight_count() const {
  std::lock_guard lock(mu_);
  return flights_.size();
}

std::uint64_t OperationalState::version() const {
  std::lock_guard lock(mu_);
  return version_;
}

void encode_flight_record(const FlightRecord& rec, serialize::Writer& w) {
  w.u32(rec.flight);
  w.u8(rec.has_position ? 1 : 0);
  if (rec.has_position) {
    w.f64(rec.position.lat_deg);
    w.f64(rec.position.lon_deg);
    w.f64(rec.position.altitude_ft);
    w.f64(rec.position.ground_speed_kts);
    w.f64(rec.position.heading_deg);
  }
  w.u8(static_cast<std::uint8_t>(rec.status));
  w.u16(rec.gate);
  w.u32(rec.passengers_boarded);
  w.u32(rec.passengers_ticketed);
  w.u32(rec.bags_loaded);
  w.u64(rec.updates_applied);
  w.bytes(rec.app_body);
}

bool decode_flight_record(serialize::Reader& r, FlightRecord& rec) {
  rec.flight = r.u32();
  rec.position.flight = rec.flight;
  rec.has_position = r.u8() != 0;
  if (rec.has_position) {
    rec.position.lat_deg = r.f64();
    rec.position.lon_deg = r.f64();
    rec.position.altitude_ft = r.f64();
    rec.position.ground_speed_kts = r.f64();
    rec.position.heading_deg = r.f64();
  }
  rec.status = static_cast<event::FlightStatus>(r.u8());
  rec.gate = r.u16();
  rec.passengers_boarded = r.u32();
  rec.passengers_ticketed = r.u32();
  rec.bags_loaded = r.u32();
  rec.updates_applied = r.u64();
  rec.app_body = r.bytes();
  return r.ok();
}

namespace {
void encode_record(const FlightRecord& r, serialize::Writer& w) {
  encode_flight_record(r, w);
}

bool decode_record(serialize::Reader& r, FlightRecord& rec) {
  return decode_flight_record(r, rec);
}
}  // namespace

std::uint64_t OperationalState::fingerprint() const {
  std::lock_guard lock(mu_);
  serialize::Writer w(flights_.size() * 64);
  for (const auto& [key, rec] : flights_) {
    // updates_applied is excluded: coalescing legitimately folds several
    // raw events into one applied update at mirrors; semantic state fields
    // must still converge.
    w.u32(rec.flight);
    w.u8(rec.has_position ? 1 : 0);
    w.f64(rec.has_position ? rec.position.lat_deg : 0.0);
    w.f64(rec.has_position ? rec.position.lon_deg : 0.0);
    w.f64(rec.has_position ? rec.position.altitude_ft : 0.0);
    w.u8(static_cast<std::uint8_t>(rec.status));
    w.u16(rec.gate);
    w.u32(rec.passengers_boarded);
    w.u32(rec.passengers_ticketed);
    w.u32(rec.bags_loaded);
    w.u64(fnv1a(ByteSpan(rec.app_body.data(), rec.app_body.size())));
  }
  const Bytes& buf = w.buffer();
  return fnv1a(ByteSpan(buf.data(), buf.size()));
}

Bytes OperationalState::serialize() const {
  std::lock_guard lock(mu_);
  serialize::Writer w(flights_.size() * 80 + 16);
  w.varint(flights_.size());
  for (const auto& [key, rec] : flights_) encode_record(rec, w);
  return w.take();
}

OperationalState::RangeSlice OperationalState::serialize_range(
    FlightKey from, std::size_t max_records) const {
  std::lock_guard lock(mu_);
  RangeSlice out;
  serialize::Writer w(std::min(max_records, flights_.size()) * 80 + 16);
  auto it = flights_.lower_bound(from);
  while (it != flights_.end() && out.count < max_records) {
    encode_record(it->second, w);
    out.last_key = it->first;
    ++out.count;
    ++it;
  }
  out.done = it == flights_.end();
  out.records = w.take();
  return out;
}

Status OperationalState::deserialize(ByteSpan data) {
  serialize::Reader r(data);
  const std::uint64_t n = r.varint();
  if (!r.ok() || n > 10'000'000) {
    return err(StatusCode::kCorrupt, "bad state header");
  }
  std::map<FlightKey, FlightRecord> rebuilt;
  for (std::uint64_t i = 0; i < n; ++i) {
    FlightRecord rec;
    if (!decode_record(r, rec)) {
      return err(StatusCode::kCorrupt, "bad flight record");
    }
    rebuilt[rec.flight] = rec;
  }
  if (r.remaining() != 0) {
    return err(StatusCode::kCorrupt, "trailing bytes after state");
  }
  std::lock_guard lock(mu_);
  flights_ = std::move(rebuilt);
  ++version_;
  ++replaces_;
  return Status::ok();
}

OperationalState::VersionedFlights OperationalState::all_flights_versioned()
    const {
  std::lock_guard lock(mu_);
  VersionedFlights out;
  out.version = version_;
  out.records.reserve(flights_.size());
  for (const auto& [key, rec] : flights_) out.records.push_back(rec);
  return out;
}

OperationalState::ManyResult OperationalState::get_many(
    const std::vector<FlightKey>& keys) const {
  std::lock_guard lock(mu_);
  ManyResult out;
  out.version = version_;
  out.flight_count = flights_.size();
  out.inserts = inserts_;
  out.replaces = replaces_;
  out.records.reserve(keys.size());
  for (FlightKey key : keys) {
    auto it = flights_.find(key);
    if (it == flights_.end()) {
      ++out.missing;
      continue;
    }
    out.records.push_back(it->second);
  }
  return out;
}

OperationalState::KeySet OperationalState::all_flight_keys() const {
  std::lock_guard lock(mu_);
  KeySet out;
  out.inserts = inserts_;
  out.replaces = replaces_;
  out.keys.reserve(flights_.size());
  for (const auto& [key, rec] : flights_) out.keys.push_back(key);
  return out;
}

std::uint64_t OperationalState::inserts_total() const {
  std::lock_guard lock(mu_);
  return inserts_;
}

std::uint64_t OperationalState::replaces_total() const {
  std::lock_guard lock(mu_);
  return replaces_;
}

std::vector<FlightRecord> OperationalState::all_flights() const {
  std::lock_guard lock(mu_);
  std::vector<FlightRecord> out;
  out.reserve(flights_.size());
  for (const auto& [key, rec] : flights_) out.push_back(rec);
  return out;
}

void OperationalState::clear() {
  std::lock_guard lock(mu_);
  flights_.clear();
  ++version_;
  ++replaces_;
}

}  // namespace admire::ede
