// SnapshotService: builds initial-state views for recovering thin clients
// (paper §1/§2: "preparation of suitable initialization state for thin
// clients, so that such clients can understand future data events").
// Serving these requests is the mirror sites' primary task.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "ede/operational_state.h"
#include "event/event.h"

namespace admire::ede {

class SnapshotService {
 public:
  explicit SnapshotService(const OperationalState* state,
                           std::size_t max_chunk_bytes = 16 * 1024)
      : state_(state), max_chunk_bytes_(max_chunk_bytes) {}

  /// Serialize current state into kSnapshot events (>= 1 chunk even for
  /// empty state, so the client always gets a definite answer).
  std::vector<event::Event> build(std::uint64_t request_id) const;

  /// Reassemble chunks back into an OperationalState (client-side /
  /// recovery path). Chunks may arrive in any order but must be complete
  /// and belong to one request.
  static Status restore(const std::vector<event::Event>& chunks,
                        OperationalState& out);

  std::uint64_t snapshots_built() const {
    return built_.load(std::memory_order_relaxed);
  }

  /// Bytes of the most recent full-state serialization (cost reporting).
  std::size_t last_state_bytes() const {
    return last_bytes_.load(std::memory_order_relaxed);
  }

 private:
  const OperationalState* state_;  // not owned
  const std::size_t max_chunk_bytes_;
  mutable std::atomic<std::uint64_t> built_{0};
  mutable std::atomic<std::size_t> last_bytes_{0};
};

}  // namespace admire::ede
