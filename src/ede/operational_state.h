// OperationalState: the OIS's replicated application state — one record
// per flight, updated by business logic from incoming events. "All mirrors
// produce the same output events, and produce identical modifications to
// their locally maintained application states" (§3.1); tests assert exactly
// that via fingerprint().
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "event/event.h"

namespace admire::serialize {
class Writer;
class Reader;
}  // namespace admire::serialize

namespace admire::ede {

struct FlightRecord {
  FlightKey flight = 0;
  event::FaaPosition position;       ///< last known position
  bool has_position = false;
  event::FlightStatus status = event::FlightStatus::kScheduled;
  std::uint16_t gate = 0;
  std::uint32_t passengers_boarded = 0;
  std::uint32_t passengers_ticketed = 0;
  std::uint32_t bags_loaded = 0;
  std::uint64_t updates_applied = 0;  ///< events folded into this record
  /// Opaque application body of the most recent update for this flight.
  /// Part of the initial view a recovering thin client needs to interpret
  /// future events, so snapshot size — and request-servicing cost — scales
  /// with the event size the experiments sweep.
  Bytes app_body;

  bool operator==(const FlightRecord&) const = default;
};

/// Wire codec for one flight record (the §6 per-flight layout in
/// PROTOCOL.md). Shared by the full-state snapshot serializer and the
/// serving plane's query responses, so the two cannot drift.
void encode_flight_record(const FlightRecord& rec, serialize::Writer& w);
bool decode_flight_record(serialize::Reader& r, FlightRecord& rec);

class OperationalState {
 public:
  /// Fetch-or-create the record for `flight` and apply `fn` to it under
  /// the state lock.
  template <typename Fn>
  void update(FlightKey flight, Fn&& fn) {
    std::lock_guard lock(mu_);
    auto [it, inserted] = flights_.try_emplace(flight);
    if (inserted) ++inserts_;
    auto& rec = it->second;
    rec.flight = flight;
    fn(rec);
    ++version_;
  }

  std::optional<FlightRecord> get(FlightKey flight) const;

  std::size_t flight_count() const;
  std::uint64_t version() const;

  /// Deterministic content hash over all records (order-independent by
  /// construction: map iteration is key-ordered). Equal states <=> equal
  /// fingerprints for the record fields.
  std::uint64_t fingerprint() const;

  /// Serialize the full state (the payload a recovering client needs to
  /// "understand future data events being streamed"). Deterministic.
  Bytes serialize() const;

  /// One bounded, key-ordered slice of the table for the chunked rejoin
  /// transfer (DESIGN.md §17): up to `max_records` records with key >=
  /// `from`, as a raw encode_flight_record() sequence (no count header —
  /// chunks concatenate).
  struct RangeSlice {
    Bytes records;
    std::size_t count = 0;
    FlightKey last_key = 0;  ///< highest key included (0 when count == 0)
    bool done = true;        ///< no records beyond last_key remained
  };
  RangeSlice serialize_range(FlightKey from, std::size_t max_records) const;

  /// Rebuild from serialize() output; kCorrupt on malformed input.
  Status deserialize(ByteSpan data);

  std::vector<FlightRecord> all_flights() const;

  /// Atomic capture of every record plus the version they reflect — the
  /// serving plane stamps query responses with this version so a client
  /// can tell exactly which status-table state it was answered from.
  struct VersionedFlights {
    std::vector<FlightRecord> records;
    std::uint64_t version = 0;
  };
  VersionedFlights all_flights_versioned() const;

  /// Atomic capture of the records for an explicit key set, returned in
  /// the order the keys were given (callers pass ascending keys so the
  /// result encodes identically to a filtered all_flights_versioned()).
  /// Carries the counters the adaptive index (src/index) needs to prove
  /// that a key set it selected is still complete: a keyed read is only
  /// trusted when `inserts`/`replaces` match what the index absorbed.
  struct ManyResult {
    std::vector<FlightRecord> records;
    std::uint64_t version = 0;
    std::size_t missing = 0;       ///< requested keys absent from the table
    std::size_t flight_count = 0;  ///< table size at capture
    std::uint64_t inserts = 0;     ///< record creations since construction
    std::uint64_t replaces = 0;    ///< clear()/deserialize() table swaps
  };
  ManyResult get_many(const std::vector<FlightKey>& keys) const;

  /// Atomic capture of every flight key (ascending) plus the insert and
  /// replace counters at that instant — the adaptive index seeds itself
  /// from this and then tracks inserts incrementally via its update hook.
  struct KeySet {
    std::vector<FlightKey> keys;
    std::uint64_t inserts = 0;
    std::uint64_t replaces = 0;
  };
  KeySet all_flight_keys() const;

  /// Monotone count of record creations (never decremented; updates to an
  /// existing flight do not count).
  std::uint64_t inserts_total() const;
  /// Count of whole-table swaps: clear() and successful deserialize().
  std::uint64_t replaces_total() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::map<FlightKey, FlightRecord> flights_;
  std::uint64_t version_ = 0;
  std::uint64_t inserts_ = 0;
  std::uint64_t replaces_ = 0;
};

}  // namespace admire::ede
