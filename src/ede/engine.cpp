#include "ede/engine.h"

namespace admire::ede {

namespace {

event::Event status_broadcast(const event::Event& src,
                              event::FlightStatus status) {
  event::Derived d;
  d.flight = src.key();
  d.kind = event::Derived::Kind::kStatusBroadcast;
  d.status = status;
  event::Event out = event::make_derived(d);
  out.mutable_header().ingress_time = src.header().ingress_time;
  out.mutable_header().vts = src.header().vts;
  out.mutable_header().coalesced = src.header().coalesced;
  return out;
}

}  // namespace

std::vector<event::Event> Ede::process(const event::Event& ev) {
  std::vector<event::Event> outputs;
  ++counters_.events_processed;
  progress_.merge(ev.header().vts);

  switch (ev.type()) {
    case event::EventType::kFaaPosition: {
      const auto* pos = ev.as<event::FaaPosition>();
      if (pos == nullptr) break;
      event::FlightStatus status{};
      state_->update(pos->flight, [&](FlightRecord& rec) {
        rec.position = *pos;
        rec.has_position = true;
        rec.app_body = Bytes(ev.padding().begin(), ev.padding().end());
        if (rec.status == event::FlightStatus::kScheduled ||
            rec.status == event::FlightStatus::kDeparted) {
          rec.status = event::FlightStatus::kEnRoute;
        }
        rec.updates_applied += ev.header().coalesced;
        status = rec.status;
      });
      outputs.push_back(status_broadcast(ev, status));
      break;
    }
    case event::EventType::kDeltaStatus: {
      const auto* st = ev.as<event::DeltaStatus>();
      if (st == nullptr) break;
      bool gate_changed = false;
      bool departure_incomplete = false;
      state_->update(st->flight, [&](FlightRecord& rec) {
        rec.status = st->status;
        if (!ev.padding().empty()) {
          rec.app_body = Bytes(ev.padding().begin(), ev.padding().end());
        }
        if (st->gate != 0) {
          gate_changed = rec.gate != 0 && rec.gate != st->gate;
          rec.gate = st->gate;
        }
        if (st->passengers_ticketed != 0) {
          rec.passengers_ticketed = st->passengers_ticketed;
        }
        // Analytical rule: a departure with ticketed passengers still
        // unboarded needs operational attention.
        departure_incomplete = st->status == event::FlightStatus::kDeparted &&
                               rec.passengers_ticketed > 0 &&
                               rec.passengers_boarded <
                                   rec.passengers_ticketed;
        rec.updates_applied += ev.header().coalesced;
      });
      if (event::is_on_ground_final(st->status)) {
        ++counters_.arrivals_recorded;
      }
      outputs.push_back(status_broadcast(ev, st->status));
      auto alert = [&](event::Derived::Kind kind) {
        event::Derived d;
        d.flight = st->flight;
        d.kind = kind;
        d.status = st->status;
        event::Event out = event::make_derived(d);
        out.mutable_header().ingress_time = ev.header().ingress_time;
        out.mutable_header().vts = ev.header().vts;
        outputs.push_back(std::move(out));
      };
      if (gate_changed) {
        alert(event::Derived::Kind::kGateChanged);
        ++counters_.gate_changes;
      }
      if (departure_incomplete) {
        alert(event::Derived::Kind::kDepartureIncomplete);
        ++counters_.incomplete_departures;
      }
      break;
    }
    case event::EventType::kPassengerBoarded: {
      const auto* pb = ev.as<event::PassengerBoarded>();
      if (pb == nullptr) break;
      bool all_boarded = false;
      state_->update(pb->flight, [&](FlightRecord& rec) {
        ++rec.passengers_boarded;
        rec.updates_applied += ev.header().coalesced;
        all_boarded = rec.passengers_ticketed > 0 &&
                      rec.passengers_boarded >= rec.passengers_ticketed;
      });
      if (all_boarded) {
        // Business rule from §2: "determines from multiple events received
        // from gate readers that all passengers of a flight have boarded".
        event::Derived d;
        d.flight = pb->flight;
        d.kind = event::Derived::Kind::kAllBoarded;
        d.status = event::FlightStatus::kAllBoarded;
        event::Event derived = event::make_derived(d);
        derived.mutable_header().ingress_time = ev.header().ingress_time;
        derived.mutable_header().vts = ev.header().vts;
        state_->update(pb->flight, [&](FlightRecord& rec) {
          rec.status = event::FlightStatus::kAllBoarded;
        });
        outputs.push_back(std::move(derived));
        ++counters_.all_boarded_derived;
      }
      break;
    }
    case event::EventType::kBaggageLoaded: {
      const auto* bl = ev.as<event::BaggageLoaded>();
      if (bl == nullptr) break;
      state_->update(bl->flight, [&](FlightRecord& rec) {
        ++rec.bags_loaded;
        rec.updates_applied += ev.header().coalesced;
      });
      break;
    }
    case event::EventType::kDerived: {
      const auto* d = ev.as<event::Derived>();
      if (d == nullptr) break;
      // Combined events produced by the rule engine (e.g. FLIGHT_ARRIVED)
      // fold into state like the statuses they collapse.
      state_->update(d->flight, [&](FlightRecord& rec) {
        rec.status = d->status;
        rec.updates_applied += ev.header().coalesced;
      });
      if (d->kind == event::Derived::Kind::kFlightArrived) {
        ++counters_.arrivals_recorded;
      }
      outputs.push_back(status_broadcast(ev, d->status));
      break;
    }
    case event::EventType::kSnapshot:
    case event::EventType::kControl:
      // Not business events; nothing to derive.
      break;
  }

  counters_.updates_emitted += outputs.size();
  return outputs;
}

event::VectorTimestamp Ede::progress() const { return progress_; }

}  // namespace admire::ede
