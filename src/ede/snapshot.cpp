#include "ede/snapshot.h"

#include <algorithm>

namespace admire::ede {

std::vector<event::Event> SnapshotService::build(
    std::uint64_t request_id) const {
  const Bytes full = state_->serialize();
  last_bytes_.store(full.size(), std::memory_order_relaxed);
  built_.fetch_add(1, std::memory_order_relaxed);

  const std::size_t chunk_count =
      std::max<std::size_t>(1, (full.size() + max_chunk_bytes_ - 1) /
                                   std::max<std::size_t>(1, max_chunk_bytes_));
  std::vector<event::Event> out;
  out.reserve(chunk_count);
  for (std::size_t i = 0; i < chunk_count; ++i) {
    const std::size_t begin = i * max_chunk_bytes_;
    const std::size_t end = std::min(full.size(), begin + max_chunk_bytes_);
    event::Snapshot chunk;
    chunk.request_id = request_id;
    chunk.chunk_index = static_cast<std::uint32_t>(i);
    chunk.chunk_count = static_cast<std::uint32_t>(chunk_count);
    if (begin < end) {
      chunk.state.assign(full.begin() + static_cast<std::ptrdiff_t>(begin),
                         full.begin() + static_cast<std::ptrdiff_t>(end));
    }
    out.push_back(event::make_snapshot(chunk));
  }
  return out;
}

Status SnapshotService::restore(const std::vector<event::Event>& chunks,
                                OperationalState& out) {
  if (chunks.empty()) {
    return err(StatusCode::kInvalidArgument, "no snapshot chunks");
  }
  std::vector<const event::Snapshot*> parts;
  parts.reserve(chunks.size());
  std::uint64_t request_id = 0;
  std::uint32_t expected = 0;
  for (const auto& ev : chunks) {
    const auto* snap = ev.as<event::Snapshot>();
    if (snap == nullptr) {
      return err(StatusCode::kInvalidArgument, "non-snapshot event");
    }
    if (parts.empty()) {
      request_id = snap->request_id;
      expected = snap->chunk_count;
    } else if (snap->request_id != request_id) {
      return err(StatusCode::kInvalidArgument, "mixed snapshot requests");
    }
    parts.push_back(snap);
  }
  if (parts.size() != expected) {
    return err(StatusCode::kCorrupt, "incomplete snapshot");
  }
  std::sort(parts.begin(), parts.end(),
            [](const auto* a, const auto* b) {
              return a->chunk_index < b->chunk_index;
            });
  Bytes full;
  for (std::uint32_t i = 0; i < parts.size(); ++i) {
    if (parts[i]->chunk_index != i) {
      return err(StatusCode::kCorrupt, "duplicate or missing chunk");
    }
    full.insert(full.end(), parts[i]->state.begin(), parts[i]->state.end());
  }
  return out.deserialize(ByteSpan(full.data(), full.size()));
}

}  // namespace admire::ede
