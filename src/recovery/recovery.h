// Recovery support — the paper's stated future work: "extending the
// mirroring infrastructure with recovery support, for both client
// failures, and failures of a node within the cluster server" (§6).
//
// Three flows are provided, all built on the pieces the base design
// already maintains for exactly this purpose:
//  * Chunked bootstrap (DESIGN.md §17): a brand-new (or wiped) mirror
//    subscribes to the live data channel FIRST, then streams the donor's
//    state in bounded, key-ordered chunks via a ChunkCursor. Each chunk
//    carries the donor's EDE progress at its capture instant, so the
//    joiner's RejoinFilter can discard, per key range, exactly the live
//    events whose effects the chunk already folded in. The donor is never
//    paused for more than one chunk's capture.
//  * Monolithic bootstrap (legacy): one snapshot + one restore point; kept
//    for small states and as the simulator's instant-recovery baseline.
//  * Stale rejoin: a mirror that was down briefly asks a donor for the
//    backup-queue suffix after its last-applied vector timestamp — valid
//    whenever the missed events have not yet been trimmed by a global
//    checkpoint commit beyond that point.
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "ede/snapshot.h"
#include "event/vector_timestamp.h"
#include "mirror/main_unit_core.h"
#include "obs/registry.h"

namespace admire::recovery {

/// Live-stream deduplication for a joiner: events whose effects the
/// restored state already contains must not be applied twice (the counting
/// folds — passengers_boarded, bags_loaded — are not idempotent).
/// Thread-safe.
///
/// Two modes share one filter:
///  * Whole-state floor (legacy ctor): one restore point covering every
///    key; events it dominates are skipped.
///  * Range anchors (chunked ctor): the chunk transfer leaves one anchor
///    per key range [prev.upto+1 .. upto]; an event is skipped iff the
///    anchor covering ITS key dominates it. Correct because each chunk's
///    slice and anchor are captured atomically under the donor's fold
///    lock: an event's effect is in the chunk iff the anchor covers the
///    event (given the per-stream in-order fold contract, DESIGN.md §17).
class RejoinFilter {
 public:
  /// One chunk's coverage: every key <= `upto` not covered by an earlier
  /// range was transferred at donor progress `anchor`. The final range
  /// from a completed transfer has upto = max FlightKey, so every key is
  /// covered.
  struct Range {
    FlightKey upto = 0;
    event::VectorTimestamp anchor;
  };

  /// Whole-state restore point (monolithic bootstrap / stale rejoin).
  explicit RejoinFilter(event::VectorTimestamp restore_point)
      : floor_(std::move(restore_point)) {}

  /// Per-range anchors from a chunked transfer; `ranges` must be sorted by
  /// ascending `upto` (ChunkCursor::ranges() produces exactly this).
  explicit RejoinFilter(std::vector<Range> ranges)
      : ranges_(std::move(ranges)) {}

  /// True if the event is NEW relative to the restored state and should be
  /// applied. Events with no vector timestamp are always applied; keyless
  /// stamped events are checked against the whole-state floor only.
  bool should_apply(const event::Event& ev);

  /// Merge `vts` into the whole-state floor — used after a post-transfer
  /// replay (e.g. the simulator's backup-queue suffix) advances the entire
  /// state past the per-range anchors.
  void raise_floor(const event::VectorTimestamp& vts);

  std::uint64_t skipped() const;

 private:
  mutable std::mutex mu_;
  event::VectorTimestamp floor_;
  std::vector<Range> ranges_;  ///< ascending upto; empty in floor mode
  std::uint64_t skipped_ = 0;
};

/// One bounded slice of donor state plus the delta-transfer metadata the
/// joiner needs to splice it against the live stream.
struct StateChunk {
  Bytes records;          ///< raw encode_flight_record() sequence
  std::size_t count = 0;  ///< records in this chunk
  /// Keys covered by this chunk: (previous chunk's upto, upto]. The final
  /// chunk claims the whole remaining key space (max FlightKey) so the
  /// resulting range set covers every key, present or future.
  FlightKey upto = 0;
  event::VectorTimestamp anchor;  ///< donor EDE progress at capture
  bool final_chunk = false;
};

/// Donor-side chunk producer: walks the donor's state table in key order,
/// capturing one bounded slice (and its fold-progress anchor) per next()
/// call. The donor's fold lock is held only inside next(), never across
/// calls — the caller paces the transfer (and the donor's pause pattern)
/// by how often it calls next().
class ChunkCursor {
 public:
  /// `chunk_records` is the per-chunk record bound (>= 1 enforced).
  ChunkCursor(mirror::MainUnitCore& donor, std::size_t chunk_records);

  bool done() const { return done_; }

  /// Capture and return the next chunk. Must not be called after done().
  StateChunk next();

  /// The per-range anchors accumulated so far — complete (covers all keys)
  /// once done(). Feed to RejoinFilter's chunked constructor.
  const std::vector<RejoinFilter::Range>& ranges() const { return ranges_; }

  /// Donor progress when the first / most recent chunk was captured.
  const event::VectorTimestamp& start_anchor() const { return start_anchor_; }
  const event::VectorTimestamp& end_anchor() const { return end_anchor_; }

  std::uint64_t chunks_produced() const { return chunks_; }
  std::uint64_t bytes_produced() const { return bytes_; }

 private:
  mirror::MainUnitCore& donor_;
  const std::size_t chunk_records_;
  FlightKey next_from_ = 0;
  bool done_ = false;
  std::vector<RejoinFilter::Range> ranges_;
  event::VectorTimestamp start_anchor_;
  event::VectorTimestamp end_anchor_;
  std::uint64_t chunks_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Fold one chunk's records into `target` (insert-or-replace per flight).
/// kCorrupt when the chunk bytes don't decode to exactly `count` records.
Status install_chunk(const StateChunk& chunk, ede::OperationalState& target);

/// Everything a joining mirror needs from a donor (monolithic form).
struct RecoveryPackage {
  std::vector<event::Event> snapshot_chunks;  ///< kSnapshot events
  event::VectorTimestamp as_of;  ///< stream progress the snapshot covers
  std::vector<event::Event> replay;  ///< events after `as_of`, in order
};

/// Build a bootstrap package from a live donor site: a snapshot of its
/// operational state stamped with its current EDE progress. (No replay
/// part — the joiner filters the live stream instead.)
RecoveryPackage build_bootstrap_package(mirror::MainUnitCore& donor,
                                        std::uint64_t request_id);

/// Build a rejoin package for a mirror whose state is current up to
/// `stale_as_of`: the donor's backup-queue suffix after that point.
/// Fails with kExhausted when the donor's backup no longer reaches back
/// far enough (a commit already trimmed events the joiner needs) — the
/// caller must fall back to a full bootstrap.
Result<RecoveryPackage> build_rejoin_package(mirror::MainUnitCore& donor,
                                             const event::VectorTimestamp&
                                                 stale_as_of);

/// Install a package into a (fresh or stale) mirror main unit: restore the
/// snapshot if present, then replay the suffix through the EDE. Replay
/// failures propagate: the FIRST non-ok status is returned, with
/// `*events_applied` (when non-null) counting the events applied before
/// the failure (== replay size on success).
Status install_package(const RecoveryPackage& package,
                       mirror::MainUnitCore& target,
                       std::size_t* events_applied = nullptr);

/// Outcome of replaying an operational-log tail into a main unit.
struct LogReplayReport {
  std::size_t events_seen = 0;     ///< records recovered from the log
  std::size_t events_applied = 0;  ///< records newer than the floor, applied
  bool truncated_tail = false;     ///< log ended in a torn record
  /// Index of a torn NON-final segment replay stopped at (history exists
  /// past the hole but was not spliced in) — see oplog::ReadResult.
  std::optional<std::uint32_t> gap_segment;
};

/// Restart path for an update-log consumer (a node rebuilding its DERIVED
/// view from its own durable log): replay every logged event not already
/// covered by `after` into `target`, stopping — and propagating — on the
/// first apply failure. NOT a substitute for the mirror-stream delta: the
/// log holds published updates, which fold less than their raw sources
/// (DESIGN.md §17), so a mirror must bootstrap from a donor instead.
Result<LogReplayReport> replay_log_tail(const std::string& base_path,
                                        const event::VectorTimestamp& after,
                                        mirror::MainUnitCore& target);

/// Instrument handles for the recovery.* observability family (cached
/// registry references; see OBSERVABILITY.md).
struct RecoveryMetrics {
  obs::Counter* chunks = nullptr;          ///< recovery.chunks_total
  obs::Counter* bytes = nullptr;           ///< recovery.bytes_total
  obs::Counter* replay_events = nullptr;   ///< recovery.replay_events_total
  obs::Counter* bootstraps = nullptr;      ///< recovery.bootstraps_total
  obs::Histogram* donor_pause = nullptr;   ///< recovery.donor_pause_ns
  obs::Histogram* reintegration = nullptr; ///< recovery.reintegration_ns
  void instrument(obs::Registry& reg);
};

}  // namespace admire::recovery
