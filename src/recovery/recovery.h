// Recovery support — the paper's stated future work: "extending the
// mirroring infrastructure with recovery support, for both client
// failures, and failures of a node within the cluster server" (§6).
//
// Two flows are provided, both built on the pieces the base design
// already maintains for exactly this purpose:
//  * Bootstrap: a brand-new (or wiped) mirror obtains a state snapshot
//    from any live donor site, then joins the live data channel, with a
//    RejoinFilter discarding events the snapshot already covers.
//  * Stale rejoin: a mirror that was down briefly asks a donor for the
//    backup-queue suffix after its last-applied vector timestamp — valid
//    whenever the missed events have not yet been trimmed by a global
//    checkpoint commit beyond that point.
#pragma once

#include <mutex>
#include <vector>

#include "common/status.h"
#include "ede/snapshot.h"
#include "event/vector_timestamp.h"
#include "mirror/main_unit_core.h"

namespace admire::recovery {

/// Everything a joining mirror needs from a donor.
struct RecoveryPackage {
  std::vector<event::Event> snapshot_chunks;  ///< kSnapshot events
  event::VectorTimestamp as_of;  ///< stream progress the snapshot covers
  std::vector<event::Event> replay;  ///< events after `as_of`, in order
};

/// Build a bootstrap package from a live donor site: a snapshot of its
/// operational state stamped with its current EDE progress. (No replay
/// part — the joiner filters the live stream instead.)
RecoveryPackage build_bootstrap_package(mirror::MainUnitCore& donor,
                                        std::uint64_t request_id);

/// Build a rejoin package for a mirror whose state is current up to
/// `stale_as_of`: the donor's backup-queue suffix after that point.
/// Fails with kExhausted when the donor's backup no longer reaches back
/// far enough (a commit already trimmed events the joiner needs) — the
/// caller must fall back to a full bootstrap.
Result<RecoveryPackage> build_rejoin_package(mirror::MainUnitCore& donor,
                                             const event::VectorTimestamp&
                                                 stale_as_of);

/// Install a package into a (fresh or stale) mirror main unit: restore the
/// snapshot if present, then replay the suffix through the EDE.
Status install_package(const RecoveryPackage& package,
                       mirror::MainUnitCore& target);

/// Live-stream deduplication for a joiner: events whose vector timestamp
/// is already covered by the restore point must not be applied twice.
/// Thread-safe.
class RejoinFilter {
 public:
  explicit RejoinFilter(event::VectorTimestamp restore_point)
      : restore_point_(std::move(restore_point)) {}

  /// True if the event is NEW relative to the restore point and should be
  /// applied. Events with no vector timestamp are always applied.
  bool should_apply(const event::Event& ev);

  std::uint64_t skipped() const;

 private:
  mutable std::mutex mu_;
  event::VectorTimestamp restore_point_;
  std::uint64_t skipped_ = 0;
};

}  // namespace admire::recovery
