#include "recovery/recovery.h"

namespace admire::recovery {

RecoveryPackage build_bootstrap_package(mirror::MainUnitCore& donor,
                                        std::uint64_t request_id) {
  RecoveryPackage package;
  // Progress first: a concurrent event processed between the two reads
  // would make `as_of` conservative (too old), which is safe — the joiner
  // merely re-applies an event the snapshot may already contain, and
  // per-flight records are last-writer-wins on replay from the donor's
  // own ordered stream. The reverse order could silently *lose* events.
  package.as_of = donor.progress();
  package.snapshot_chunks = donor.build_snapshot(request_id);
  return package;
}

Result<RecoveryPackage> build_rejoin_package(
    mirror::MainUnitCore& donor, const event::VectorTimestamp& stale_as_of) {
  // The donor can only supply the suffix if nothing the joiner needs was
  // trimmed. The donor's backup holds everything after its last applied
  // commit, so the joiner's point must be at or beyond that commit.
  const auto applied = donor.participant().applied();
  if (!stale_as_of.dominates(applied)) {
    return err(StatusCode::kExhausted,
               "donor backup no longer covers the joiner's gap; "
               "fall back to bootstrap");
  }
  RecoveryPackage package;
  package.as_of = stale_as_of;
  package.replay = donor.backup().entries_after(stale_as_of);
  return package;
}

Status install_package(const RecoveryPackage& package,
                       mirror::MainUnitCore& target) {
  if (!package.snapshot_chunks.empty()) {
    auto status = ede::SnapshotService::restore(package.snapshot_chunks,
                                                target.state());
    if (!status.is_ok()) return status;
  }
  target.seed_progress(package.as_of);
  for (const auto& ev : package.replay) {
    (void)target.process(ev);
  }
  return Status::ok();
}

bool RejoinFilter::should_apply(const event::Event& ev) {
  std::lock_guard lock(mu_);
  const auto& vts = ev.header().vts;
  if (vts.num_streams() == 0) return true;  // unstamped: cannot dedup
  if (restore_point_.dominates(vts)) {
    ++skipped_;
    return false;
  }
  return true;
}

std::uint64_t RejoinFilter::skipped() const {
  std::lock_guard lock(mu_);
  return skipped_;
}

}  // namespace admire::recovery
