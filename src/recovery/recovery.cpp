#include "recovery/recovery.h"

#include <algorithm>

#include "oplog/oplog.h"
#include "serialize/wire.h"

namespace admire::recovery {

ChunkCursor::ChunkCursor(mirror::MainUnitCore& donor,
                         std::size_t chunk_records)
    : donor_(donor), chunk_records_(std::max<std::size_t>(1, chunk_records)) {}

StateChunk ChunkCursor::next() {
  auto captured = donor_.capture_range(next_from_, chunk_records_);
  StateChunk chunk;
  chunk.records = std::move(captured.slice.records);
  chunk.count = captured.slice.count;
  chunk.anchor = captured.anchor;
  chunk.final_chunk = captured.slice.done;
  if (captured.slice.done) {
    // The final chunk claims the remaining key space: keys that appear
    // AFTER this capture arrive via live events the anchor cannot
    // dominate, so claiming them is safe and makes the range cover total.
    chunk.upto = std::numeric_limits<FlightKey>::max();
    done_ = true;
  } else {
    chunk.upto = captured.slice.last_key;
    next_from_ = captured.slice.last_key + 1;
  }
  if (chunks_ == 0) start_anchor_ = chunk.anchor;
  end_anchor_ = chunk.anchor;
  ranges_.push_back(RejoinFilter::Range{chunk.upto, chunk.anchor});
  ++chunks_;
  bytes_ += chunk.records.size();
  return chunk;
}

Status install_chunk(const StateChunk& chunk, ede::OperationalState& target) {
  serialize::Reader r(ByteSpan(chunk.records.data(), chunk.records.size()));
  std::size_t decoded = 0;
  while (r.remaining() > 0) {
    ede::FlightRecord rec;
    if (!ede::decode_flight_record(r, rec)) {
      return err(StatusCode::kCorrupt, "bad flight record in state chunk");
    }
    target.update(rec.flight, [&](ede::FlightRecord& slot) { slot = rec; });
    ++decoded;
  }
  if (decoded != chunk.count) {
    return err(StatusCode::kCorrupt, "state chunk record count mismatch");
  }
  return Status::ok();
}

RecoveryPackage build_bootstrap_package(mirror::MainUnitCore& donor,
                                        std::uint64_t request_id) {
  RecoveryPackage package;
  // Progress first: a concurrent event processed between the two reads
  // would make `as_of` conservative (too old), which is safe — the joiner
  // merely re-applies an event the snapshot may already contain, and
  // per-flight records are last-writer-wins on replay from the donor's
  // own ordered stream. The reverse order could silently *lose* events.
  package.as_of = donor.progress();
  package.snapshot_chunks = donor.build_snapshot(request_id);
  return package;
}

Result<RecoveryPackage> build_rejoin_package(
    mirror::MainUnitCore& donor, const event::VectorTimestamp& stale_as_of) {
  // The donor can only supply the suffix if nothing the joiner needs was
  // trimmed. The donor's backup holds everything after its last applied
  // commit, so the joiner's point must be at or beyond that commit.
  const auto applied = donor.participant().applied();
  if (!stale_as_of.dominates(applied)) {
    return err(StatusCode::kExhausted,
               "donor backup no longer covers the joiner's gap; "
               "fall back to bootstrap");
  }
  RecoveryPackage package;
  package.as_of = stale_as_of;
  package.replay = donor.backup().entries_after(stale_as_of);
  return package;
}

Status install_package(const RecoveryPackage& package,
                       mirror::MainUnitCore& target,
                       std::size_t* events_applied) {
  if (events_applied != nullptr) *events_applied = 0;
  if (!package.snapshot_chunks.empty()) {
    auto status = ede::SnapshotService::restore(package.snapshot_chunks,
                                                target.state());
    if (!status.is_ok()) return status;
  }
  target.seed_progress(package.as_of);
  for (const auto& ev : package.replay) {
    auto status = target.apply_replay(ev);
    if (!status.is_ok()) return status;  // first failure wins; stop replaying
    if (events_applied != nullptr) ++*events_applied;
  }
  return Status::ok();
}

Result<LogReplayReport> replay_log_tail(const std::string& base_path,
                                        const event::VectorTimestamp& after,
                                        mirror::MainUnitCore& target) {
  auto read = oplog::read_log(base_path);
  if (!read.is_ok()) return read.status();
  LogReplayReport report;
  report.events_seen = read.value().events.size();
  report.truncated_tail = read.value().truncated_tail;
  report.gap_segment = read.value().gap_segment;
  for (const auto& ev : read.value().events) {
    const auto& vts = ev.header().vts;
    if (vts.num_streams() > 0 && after.dominates(vts)) continue;
    auto status = target.apply_replay(ev);
    if (!status.is_ok()) return status;
    ++report.events_applied;
  }
  return report;
}

bool RejoinFilter::should_apply(const event::Event& ev) {
  std::lock_guard lock(mu_);
  const auto& vts = ev.header().vts;
  if (vts.num_streams() == 0) return true;  // unstamped: cannot dedup
  if (floor_.num_streams() > 0 && floor_.dominates(vts)) {
    ++skipped_;
    return false;
  }
  const FlightKey key = ev.key();
  if (key != 0 && !ranges_.empty()) {
    // First range whose upto covers the key — ranges are ascending and a
    // completed transfer ends with upto = max, so a hit is guaranteed.
    auto it = std::lower_bound(
        ranges_.begin(), ranges_.end(), key,
        [](const Range& r, FlightKey k) { return r.upto < k; });
    if (it != ranges_.end() && it->anchor.dominates(vts)) {
      ++skipped_;
      return false;
    }
  }
  return true;
}

void RejoinFilter::raise_floor(const event::VectorTimestamp& vts) {
  std::lock_guard lock(mu_);
  floor_.merge(vts);
}

std::uint64_t RejoinFilter::skipped() const {
  std::lock_guard lock(mu_);
  return skipped_;
}

void RecoveryMetrics::instrument(obs::Registry& reg) {
  chunks = &reg.counter("recovery.chunks_total");
  bytes = &reg.counter("recovery.bytes_total");
  replay_events = &reg.counter("recovery.replay_events_total");
  bootstraps = &reg.counter("recovery.bootstraps_total");
  donor_pause =
      &reg.histogram("recovery.donor_pause_ns", obs::Histogram::latency_bounds());
  reintegration = &reg.histogram("recovery.reintegration_ns",
                                 obs::Histogram::latency_bounds());
}

}  // namespace admire::recovery
