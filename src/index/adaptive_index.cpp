#include "index/adaptive_index.h"

#include <algorithm>

namespace admire::index {

// The absent mask packs one bit per attribute value.
static_assert(serve::kNumAirports <= 32, "absent_mask is a u32 bitmap");
static_assert(serve::kNumAirlines <= 32, "absent_mask is a u32 bitmap");
static_assert(serve::kNumRegions <= 32, "absent_mask is a u32 bitmap");

void AdaptiveIndex::Column::seed(const std::vector<FlightKey>& all) {
  keys = all;
  pieces.clear();
  resolved_keys = 0;
  if (!keys.empty()) {
    pieces.push_back(
        Piece{0, static_cast<std::uint32_t>(keys.size()), -1, 0});
  }
}

void AdaptiveIndex::Column::absorb(const std::vector<FlightKey>& fresh) {
  if (fresh.empty()) return;
  const auto begin = static_cast<std::uint32_t>(keys.size());
  keys.insert(keys.end(), fresh.begin(), fresh.end());
  pieces.push_back(
      Piece{begin, static_cast<std::uint32_t>(keys.size()), -1, 0});
}

void AdaptiveIndex::Column::clear() {
  keys.clear();
  pieces.clear();
  resolved_keys = 0;
}

std::uint64_t AdaptiveIndex::Column::collect(std::uint32_t value,
                                             std::vector<FlightKey>& out,
                                             std::uint64_t& cracks_out) {
  const std::uint32_t bit = 1u << value;
  std::uint64_t moved = 0;
  for (std::size_t pi = 0; pi < pieces.size(); ++pi) {
    Piece& p = pieces[pi];
    if (p.value >= 0) {
      if (static_cast<std::uint32_t>(p.value) == value) {
        out.insert(out.end(), keys.begin() + p.begin, keys.begin() + p.end);
      }
      continue;
    }
    if ((p.absent_mask & bit) != 0) continue;  // proven empty for value
    // Crack: deterministic in-place partition [== value | rest].
    std::uint32_t w = p.begin;
    for (std::uint32_t i = p.begin; i < p.end; ++i) {
      if (derive(keys[i]) == value) {
        std::swap(keys[w], keys[i]);
        ++w;
      }
    }
    ++cracks_out;
    moved += p.end - p.begin;
    if (w == p.begin) {
      p.absent_mask |= bit;  // nothing here derives to value
      continue;
    }
    out.insert(out.end(), keys.begin() + p.begin, keys.begin() + w);
    resolved_keys += w - p.begin;
    if (w == p.end) {
      p.value = static_cast<std::int32_t>(value);
      continue;
    }
    // Split: resolved prefix + mixed remainder that provably lacks value.
    Piece rest{w, p.end, -1, p.absent_mask | bit};
    p.end = w;
    p.value = static_cast<std::int32_t>(value);
    pieces.insert(pieces.begin() + static_cast<std::ptrdiff_t>(pi) + 1, rest);
    ++pi;  // the remainder needs no further work for this value
  }
  return moved;
}

double AdaptiveIndex::Column::coverage() const {
  if (keys.empty()) return 0.0;
  return static_cast<double>(resolved_keys) /
         static_cast<double>(keys.size());
}

AdaptiveIndex::AdaptiveIndex(const ede::OperationalState* state,
                             IndexConfig config)
    : state_(state), config_(config) {
  columns_[0].derive = serve::airport_of;
  columns_[1].derive = serve::airline_of;
  columns_[2].derive = serve::region_of;
}

std::size_t AdaptiveIndex::column_slot(serve::QueryShape shape) {
  switch (shape) {
    case serve::QueryShape::kAirport: return 0;
    case serve::QueryShape::kAirline: return 1;
    case serve::QueryShape::kRegion: return 2;
    default: return SIZE_MAX;
  }
}

void AdaptiveIndex::seed_locked() {
  auto snap = state_->all_flight_keys();
  seed_inserts_ = snap.inserts;
  seed_replaces_ = snap.replaces;
  hook_inserts_ = 0;
  known_.clear();
  known_.insert(snap.keys.begin(), snap.keys.end());
  pending_.clear();
  for (auto& col : columns_) col.seed(snap.keys);
  seeded_ = true;
}

void AdaptiveIndex::absorb_pending_locked() {
  if (pending_.empty()) return;
  for (auto& col : columns_) col.absorb(pending_);
  absorbed_.fetch_add(pending_.size(), std::memory_order_relaxed);
  if (absorbed_counter_ != nullptr) absorbed_counter_->inc(pending_.size());
  pending_.clear();
}

std::optional<AdaptiveIndex::Candidates> AdaptiveIndex::candidates(
    serve::QueryShape shape, std::uint32_t value) {
  const std::size_t slot = column_slot(shape);
  if (slot == SIZE_MAX) return std::nullopt;
  std::lock_guard lock(mu_);
  if (!seeded_) seed_locked();
  absorb_pending_locked();
  Column& col = columns_[slot];
  if (col.keys.size() < config_.min_keys) return std::nullopt;
  // Out-of-domain values (a malformed client key) match nothing, and
  // cracking on them would waste a mask bit the u32 doesn't have.
  const std::uint32_t cardinality =
      slot == 0 ? serve::kNumAirports
                : slot == 1 ? serve::kNumAirlines : serve::kNumRegions;
  Candidates out;
  out.expected_inserts = seed_inserts_ + hook_inserts_;
  out.expected_replaces = seed_replaces_;
  if (value < cardinality) {
    std::uint64_t cracks = 0;
    out.crack_keys = col.collect(value, out.keys, cracks);
    if (cracks > 0) {
      cracks_.fetch_add(cracks, std::memory_order_relaxed);
      crack_keys_.fetch_add(out.crack_keys, std::memory_order_relaxed);
      if (cracks_counter_ != nullptr) cracks_counter_->inc(cracks);
      if (crack_keys_counter_ != nullptr) {
        crack_keys_counter_->inc(out.crack_keys);
      }
    }
    // Resolved runs accumulate in crack order; keyed state reads want
    // ascending keys so the answer encodes exactly like a filtered scan.
    std::sort(out.keys.begin(), out.keys.end());
  }
  return out;
}

void AdaptiveIndex::note_flight(FlightKey flight) {
  std::lock_guard lock(mu_);
  if (!seeded_) return;  // the next query seeds from the full key set
  if (!known_.insert(flight).second) return;
  pending_.push_back(flight);
  ++hook_inserts_;
}

void AdaptiveIndex::reset() {
  std::lock_guard lock(mu_);
  seeded_ = false;
  known_.clear();
  pending_.clear();
  hook_inserts_ = 0;
  for (auto& col : columns_) col.clear();
  resets_.fetch_add(1, std::memory_order_relaxed);
  if (resets_counter_ != nullptr) resets_counter_->inc();
}

std::size_t AdaptiveIndex::key_count() const {
  std::lock_guard lock(mu_);
  return columns_[0].keys.size() + pending_.size();
}

std::size_t AdaptiveIndex::piece_count() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& col : columns_) n += col.pieces.size();
  return n;
}

double AdaptiveIndex::coverage(serve::QueryShape shape) const {
  const std::size_t slot = column_slot(shape);
  if (slot == SIZE_MAX) return 0.0;
  std::lock_guard lock(mu_);
  return columns_[slot].coverage();
}

bool AdaptiveIndex::seeded() const {
  std::lock_guard lock(mu_);
  return seeded_;
}

void AdaptiveIndex::instrument(obs::Registry& registry,
                               const std::string& label) {
  cracks_counter_ = &registry.counter("index." + label + ".cracks_total");
  crack_keys_counter_ =
      &registry.counter("index." + label + ".crack_keys_total");
  absorbed_counter_ =
      &registry.counter("index." + label + ".absorbed_keys_total");
  resets_counter_ = &registry.counter("index." + label + ".resets_total");
  probes_.add(registry, "index." + label + ".keys",
              [this] { return static_cast<double>(key_count()); });
  probes_.add(registry, "index." + label + ".pieces",
              [this] { return static_cast<double>(piece_count()); });
  probes_.add(registry, "index." + label + ".coverage.airport",
              [this] { return coverage(serve::QueryShape::kAirport); });
  probes_.add(registry, "index." + label + ".coverage.airline",
              [this] { return coverage(serve::QueryShape::kAirline); });
  probes_.add(registry, "index." + label + ".coverage.region",
              [this] { return coverage(serve::QueryShape::kRegion); });
}

}  // namespace admire::index
