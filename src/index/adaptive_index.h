// AdaptiveIndex: self-tuning secondary indexes over a mirror's replicated
// ede::OperationalState, built by database cracking (the CrackStore /
// scrack lineage, SNIPPETS.md §3) — zero upfront configuration, the index
// organizes itself from the observed query pattern, independently per
// mirror, in the autonomic spirit of H2O (PAPERS.md).
//
// One cracked column per grouping attribute (airport, airline, region —
// the deterministic derivations in serve/query.h). Each column holds every
// known flight key in an order that evolves with the queries: a lookup for
// attribute value v partitions only the still-mixed pieces it touches into
// a resolved run of v-keys plus a remainder, so a hot attribute converges
// toward fully indexed while a cold one stays a single scan-cheap piece.
// Repeated lookups of the same value touch only resolved runs — O(result)
// — because a cracked remainder remembers which values it provably lacks.
//
// Completeness proof instead of trust: the index answers with candidate
// KEYS, never records. The serving plane fetches the records atomically
// via OperationalState::get_many() and only uses the answer when the
// state's insert/replace counters match what the index has absorbed
// through its on_state_update/on_state_replaced hooks — any racing insert
// or snapshot restore fails the check and the build falls back to the full
// scan (the correctness oracle). Grouping attributes are derived from the
// immutable flight key, so membership can never go stale any other way.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "ede/operational_state.h"
#include "obs/registry.h"
#include "serve/query.h"

namespace admire::index {

/// Knobs (documented in SERVING.md §4; ride along inside ServeConfig).
struct IndexConfig {
  /// Below this many tracked flights the full scan is already cheap and
  /// the index abstains (candidates() returns nullopt). 0 = always index.
  std::size_t min_keys = 0;
};

class AdaptiveIndex {
 public:
  /// `state` must outlive the index. The index seeds itself lazily from
  /// state->all_flight_keys() on the first query after construction or
  /// reset(), so hooks may start arriving before any query has run.
  explicit AdaptiveIndex(const ede::OperationalState* state,
                         IndexConfig config = {});

  /// What a lookup returned: the matching flight keys (ascending) plus the
  /// counters a keyed state read must match for the answer to be complete.
  struct Candidates {
    std::vector<FlightKey> keys;
    std::uint64_t expected_inserts = 0;   ///< vs ManyResult::inserts
    std::uint64_t expected_replaces = 0;  ///< vs ManyResult::replaces
    std::uint64_t crack_keys = 0;  ///< keys moved cracking for this lookup
  };

  /// Candidate keys for (shape, value). Cracks the touched pieces as a
  /// side effect. nullopt when the index abstains: a shape it does not
  /// cover (kFlight is a point read, kFullState wants everything) or
  /// fewer than IndexConfig::min_keys tracked flights.
  std::optional<Candidates> candidates(serve::QueryShape shape,
                                       std::uint32_t value);

  /// Update-path hook: the site applied an event for `flight`. New keys
  /// are absorbed into every column as an appended mixed piece on the next
  /// query; known keys are a cheap no-op (attributes derive from the
  /// immutable key, so an update never moves a flight between groups).
  void note_flight(FlightKey flight);

  /// Recovery hook: the whole table was replaced (snapshot restore,
  /// rejoin seed) or cleared. Tears the index down; it re-seeds lazily.
  void reset();

  // --- Introspection (tests, probes, benches) ---------------------------
  std::size_t key_count() const;
  std::size_t piece_count() const;  ///< across all columns
  /// Fraction of this attribute's keys inside resolved (cracked-out)
  /// pieces — 1.0 = fully indexed. 0.0 for shapes the index doesn't cover.
  double coverage(serve::QueryShape shape) const;
  bool seeded() const;

  std::uint64_t cracks() const {
    return cracks_.load(std::memory_order_relaxed);
  }
  std::uint64_t crack_keys_total() const {
    return crack_keys_.load(std::memory_order_relaxed);
  }
  std::uint64_t absorbed_keys() const {
    return absorbed_.load(std::memory_order_relaxed);
  }
  std::uint64_t resets() const {
    return resets_.load(std::memory_order_relaxed);
  }

  /// Register the index.<label>.* family: cracks_total, crack_keys_total,
  /// absorbed_keys_total, resets_total counters plus keys / pieces /
  /// coverage.{airport,airline,region} probes.
  void instrument(obs::Registry& registry, const std::string& label);

 private:
  /// One contiguous run of `keys`. value >= 0: resolved — every key in
  /// [begin, end) derives to `value`. value < 0: mixed — unpartitioned,
  /// except that the values in `absent_mask` are proven not to occur here
  /// (set when a crack for that value came up empty), so repeated hot
  /// lookups skip it without rescanning.
  struct Piece {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    std::int32_t value = -1;
    std::uint32_t absent_mask = 0;
  };

  /// One cracked column: all known keys, reordered in place as queries
  /// partition them. Cardinalities are protocol constants <= 32, so the
  /// absent mask fits a u32 (static_asserted in the .cpp).
  struct Column {
    std::uint32_t (*derive)(FlightKey) = nullptr;
    std::vector<FlightKey> keys;
    std::vector<Piece> pieces;
    std::uint64_t resolved_keys = 0;

    void seed(const std::vector<FlightKey>& all);
    void absorb(const std::vector<FlightKey>& fresh);
    void clear();
    /// Append every key deriving to `value` onto `out`, cracking the mixed
    /// pieces it had to touch. Returns keys moved while cracking.
    std::uint64_t collect(std::uint32_t value, std::vector<FlightKey>& out,
                          std::uint64_t& cracks_out);
    double coverage() const;
  };

  static constexpr std::size_t kNumColumns = 3;
  /// kAirport/kAirline/kRegion -> column slot; SIZE_MAX = not covered.
  static std::size_t column_slot(serve::QueryShape shape);

  void seed_locked();
  void absorb_pending_locked();

  const ede::OperationalState* state_;  // not owned
  const IndexConfig config_;

  mutable std::mutex mu_;
  bool seeded_ = false;
  Column columns_[kNumColumns];
  std::unordered_set<FlightKey> known_;
  std::vector<FlightKey> pending_;  ///< noted, not yet in the columns
  std::uint64_t seed_inserts_ = 0;   ///< state inserts counter at seed time
  std::uint64_t seed_replaces_ = 0;  ///< state replaces counter at seed time
  std::uint64_t hook_inserts_ = 0;   ///< new keys absorbed via note_flight

  std::atomic<std::uint64_t> cracks_{0};
  std::atomic<std::uint64_t> crack_keys_{0};
  std::atomic<std::uint64_t> absorbed_{0};
  std::atomic<std::uint64_t> resets_{0};
  obs::Counter* cracks_counter_ = nullptr;
  obs::Counter* crack_keys_counter_ = nullptr;
  obs::Counter* absorbed_counter_ = nullptr;
  obs::Counter* resets_counter_ = nullptr;
  obs::ProbeGroup probes_;
};

}  // namespace admire::index
