// Measurement vocabulary of the evaluation: update-delay recording, the
// paper's predictability/perturbation metric, and figure-style printers
// shared by the bench binaries.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "obs/registry.h"

namespace admire::metrics {

/// Thread-safe latency recorder combining exact percentiles with a
/// time-binned series (for delay-over-time plots like Fig. 9).
class LatencyRecorder {
 public:
  explicit LatencyRecorder(Nanos series_bin = kSecond)
      : series_(series_bin) {}

  /// Record one sample: `delay` observed for an event that entered the
  /// system at time `at`.
  void add(Nanos at, Nanos delay);

  std::size_t count() const;
  double mean() const;          ///< ns
  double percentile(double q) const;
  double max() const;

  std::vector<TimeSeries::Bin> series_bins() const;

  /// The scalability metric of §1: "how does a server react to additional
  /// loads ... with respect to deviations in the levels of service offered
  /// to its regular clients". Quantified as the coefficient of variation
  /// of the delay samples — low = predictable service.
  double perturbation() const;

 private:
  mutable std::mutex mu_;
  SampleStats samples_;
  OnlineStats online_;
  TimeSeries series_;
};

/// One curve of a figure: label + (x, y) points.
struct Series {
  std::string label;
  std::vector<std::pair<double, double>> points;
};

/// Print a whole figure: title, axis labels, one block per curve, in the
/// plain-text format EXPERIMENTS.md records.
void print_figure(const std::string& figure_id, const std::string& title,
                  const std::string& x_label, const std::string& y_label,
                  const std::vector<Series>& series);

/// Print a PASS/FAIL line for a paper-expected qualitative property.
/// Returns `ok` so benches can accumulate an exit code.
bool print_check(const std::string& what, bool ok, const std::string& detail);

/// Read one metric from a registry snapshot by name, regardless of kind:
/// counters and gauges (incl. sampled probes) return their value,
/// histograms their sample count; `def` when the name is absent.
double snapshot_value(const obs::Snapshot& snap, std::string_view name,
                      double def = 0.0);

/// Print every instrument whose name starts with one of `prefixes`, in the
/// plain-text block style the figure benches use (histograms print count
/// and mean). Benches call this so EXPERIMENTS.md records the registry
/// view alongside the figure series.
void print_snapshot_block(const std::string& title, const obs::Snapshot& snap,
                          const std::vector<std::string>& prefixes);

}  // namespace admire::metrics
