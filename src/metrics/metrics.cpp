#include "metrics/metrics.h"

#include <cmath>
#include <cstdio>

namespace admire::metrics {

void LatencyRecorder::add(Nanos at, Nanos delay) {
  std::lock_guard lock(mu_);
  samples_.add(static_cast<double>(delay));
  online_.add(static_cast<double>(delay));
  series_.add(at, static_cast<double>(delay));
}

std::size_t LatencyRecorder::count() const {
  std::lock_guard lock(mu_);
  return samples_.count();
}

double LatencyRecorder::mean() const {
  std::lock_guard lock(mu_);
  return online_.mean();
}

double LatencyRecorder::percentile(double q) const {
  std::lock_guard lock(mu_);
  return samples_.percentile(q);
}

double LatencyRecorder::max() const {
  std::lock_guard lock(mu_);
  return online_.max();
}

std::vector<TimeSeries::Bin> LatencyRecorder::series_bins() const {
  std::lock_guard lock(mu_);
  return series_.bins();
}

double LatencyRecorder::perturbation() const {
  std::lock_guard lock(mu_);
  const double m = online_.mean();
  if (m <= 0.0) return 0.0;
  return online_.stddev() / m;
}

void print_figure(const std::string& figure_id, const std::string& title,
                  const std::string& x_label, const std::string& y_label,
                  const std::vector<Series>& series) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", figure_id.c_str(), title.c_str());
  std::printf("==============================================================\n");
  for (const auto& s : series) {
    std::printf("%s", format_series(s.label, s.points, x_label, y_label).c_str());
  }
}

bool print_check(const std::string& what, bool ok, const std::string& detail) {
  std::printf("[%s] %s — %s\n", ok ? "PASS" : "FAIL", what.c_str(),
              detail.c_str());
  return ok;
}

double snapshot_value(const obs::Snapshot& snap, std::string_view name,
                      double def) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return static_cast<double>(v);
  }
  for (const auto& [n, v] : snap.gauges) {
    if (n == name) return v;
  }
  if (const auto* h = snap.histogram(name)) {
    return static_cast<double>(h->count);
  }
  return def;
}

namespace {

bool matches_any(std::string_view name,
                 const std::vector<std::string>& prefixes) {
  for (const auto& p : prefixes) {
    if (name.substr(0, p.size()) == p) return true;
  }
  return prefixes.empty();
}

}  // namespace

void print_snapshot_block(const std::string& title, const obs::Snapshot& snap,
                          const std::vector<std::string>& prefixes) {
  std::printf("--- registry: %s ---\n", title.c_str());
  for (const auto& [name, v] : snap.counters) {
    if (matches_any(name, prefixes)) std::printf("  %s = %llu\n", name.c_str(),
                                                 static_cast<unsigned long long>(v));
  }
  for (const auto& [name, v] : snap.gauges) {
    if (matches_any(name, prefixes)) std::printf("  %s = %.0f\n", name.c_str(), v);
  }
  for (const auto& h : snap.histograms) {
    if (matches_any(h.name, prefixes)) {
      std::printf("  %s: count=%llu mean=%.0f\n", h.name.c_str(),
                  static_cast<unsigned long long>(h.count),
                  h.count == 0 ? 0.0 : h.sum / static_cast<double>(h.count));
    }
  }
}

}  // namespace admire::metrics
