// PipelineCore: the central auxiliary unit's synchronous decision logic —
// timestamping and semantic-rule filtering on receive (receiving task),
// coalescing and backup-queue bookkeeping on send (sending task), and
// checkpoint-due accounting. It contains *no* threads and never blocks:
// the threaded runtime (cluster/) and the discrete-event simulator (sim/)
// both drive this same object, so experiments measured in virtual time
// exercise exactly the logic that ships in the threaded middleware.
//
// Since the receive side was sharded (see sharded_pipeline_core.h), this is
// the single-shard specialization: one RuleEngine + StatusTable + Coalescer
// + ready queue behind one lock, with the exact pre-sharding semantics and
// metric names. Code that wants parallel ingest constructs a
// ShardedPipelineCore directly; code written against the classic
// single-core surface (ready()/status_table()) keeps using this type.
#pragma once

#include "mirror/sharded_pipeline_core.h"

namespace admire::mirror {

class PipelineCore : public ShardedPipelineCore {
 public:
  PipelineCore(rules::MirroringParams params, std::size_t num_streams);

  // --- Introspection (single-shard surface) ------------------------------
  queueing::ReadyQueue& ready() { return shard_ready(0); }
  const queueing::ReadyQueue& ready() const { return shard_ready(0); }
  queueing::StatusTable& status_table() { return shard_table(0); }
};

}  // namespace admire::mirror
