// PipelineCore: the central auxiliary unit's synchronous decision logic —
// timestamping and semantic-rule filtering on receive (receiving task),
// coalescing and backup-queue bookkeeping on send (sending task), and
// checkpoint-due accounting. It contains *no* threads and never blocks:
// the threaded runtime (cluster/) and the discrete-event simulator (sim/)
// both drive this same object, so experiments measured in virtual time
// exercise exactly the logic that ships in the threaded middleware.
#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <vector>

#include "common/types.h"
#include "event/event.h"
#include "event/vector_timestamp.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "queueing/backup_queue.h"
#include "queueing/ready_queue.h"
#include "queueing/status_table.h"
#include "rules/coalescer.h"
#include "rules/params.h"
#include "rules/rule_engine.h"

namespace admire::mirror {

struct PipelineCounters {
  std::uint64_t received = 0;       ///< raw events offered to the pipeline
  std::uint64_t enqueued = 0;       ///< events placed on the ready queue
  std::uint64_t sent = 0;           ///< wire events emitted by send steps
  std::uint64_t bytes_sent = 0;     ///< wire bytes across all emitted events
  std::uint64_t checkpoints_due = 0;
};

class PipelineCore {
 public:
  PipelineCore(rules::MirroringParams params, std::size_t num_streams);

  // --- Receiving task (paper §3.2.1) -----------------------------------
  /// "retrieves events from the incoming data streams, performs the
  /// timestamping and event conversion when necessary, and places the
  /// resulting events into the ready queue" — after the rule engine has
  /// had its say.
  struct ReceiveOutcome {
    rules::ReceiveAction action;
    bool enqueued = false;           ///< event reached the ready queue
    bool combined_enqueued = false;  ///< a tuple-completion event did too
    /// Fires once per checkpoint_every *processed* events (§3.2.1: "once
    /// per 50 processed events"); the control task should open a round.
    bool checkpoint_due = false;
    /// The stamped event to fwd() to the local main unit. Set for every
    /// data event regardless of the rule decision: semantic rules reduce
    /// *mirroring* traffic, while "regular clients on the main site"
    /// continue to receive the full update stream (§3.2.1).
    std::optional<event::Event> forward;
  };
  ReceiveOutcome on_incoming(event::Event ev, Nanos now);

  // --- Sending task ------------------------------------------------------
  /// "Events are removed from the ready queue, sent onto all outgoing
  /// channels, and temporarily stored in the backup queue". One step pops
  /// one ready event; coalescing may hold it back (empty to_send) or
  /// release several. checkpoint_due fires once per `checkpoint_every`
  /// sent events.
  struct SendStep {
    std::vector<event::Event> to_send;
    /// Total wire size of the ready-queue events this step consumed (also
    /// set when coalescing buffered them and to_send is empty) —
    /// cost-model input for the extraction/combine work of §3.3.
    std::size_t offered_bytes = 0;
  };
  /// nullopt when the ready queue is empty. `now` (0 = unknown) feeds the
  /// ready-queue wait histogram and the event tracer.
  std::optional<SendStep> try_send_step(Nanos now = 0);

  /// Batched send step: drain up to `max` ready events in one swap-based
  /// pop and run each through coalescing/backup accounting. The sending
  /// task uses this to convert accumulated send credits into one vectored
  /// fan-out instead of `max` lock round-trips. nullopt when the ready
  /// queue is empty.
  std::optional<SendStep> try_send_batch(std::size_t max, Nanos now = 0);

  /// Flush coalescing buffers (quiesce / end of stream). The returned
  /// events have been backed up and counted like normal sends.
  SendStep flush(Nanos now = 0);

  // --- Adaptation --------------------------------------------------------
  /// Install a new mirroring function (set_mirror()/adaptation path).
  /// Takes effect for subsequently received/sent events.
  void install(const rules::MirrorFunctionSpec& spec);

  /// Replace the full parameter set (init()-time configuration).
  void install_params(rules::MirroringParams params);

  rules::MirrorFunctionSpec current_spec() const;

  // --- Introspection -----------------------------------------------------
  queueing::ReadyQueue& ready() { return ready_; }
  const queueing::ReadyQueue& ready() const { return ready_; }
  queueing::BackupQueue& backup() { return backup_; }
  const queueing::BackupQueue& backup() const { return backup_; }
  queueing::StatusTable& status_table() { return table_; }

  rules::RuleCounters rule_counters() const;
  PipelineCounters counters() const;

  /// Current merged vector timestamp (last stamped event).
  event::VectorTimestamp stamp() const;

  std::uint32_t checkpoint_every() const;

  // --- Observability ------------------------------------------------------
  /// Register this pipeline's metrics with `registry` under the given site
  /// label: `queue.<site>.{ready,backup}.*`, `rules.<site>.*` and
  /// `pipeline.<site>.{received,enqueued,sent,bytes_sent,checkpoints_due}`
  /// probes. Call before traffic starts; the probes read counters under the
  /// pipeline mutex so snapshots see consistent values.
  void instrument(obs::Registry& registry, const std::string& site);

  /// Attach an event-path tracer; sampled data events get kIngest/kRules/
  /// kReadyQueue spans in on_incoming and kMirrorSend in try_send_step.
  /// Pass nullptr to detach. The tracer must outlive traffic.
  void set_tracer(obs::Tracer* tracer) {
    tracer_.store(tracer, std::memory_order_release);
  }
  obs::Tracer* tracer() const {
    return tracer_.load(std::memory_order_acquire);
  }

 private:
  void account_send(const event::Event& ev, SendStep& step);

  mutable std::mutex mu_;  // guards engine_, coalescer_, vts_, counters_
  rules::RuleEngine engine_;
  rules::Coalescer coalescer_;
  queueing::ReadyQueue ready_;
  queueing::BackupQueue backup_;
  queueing::StatusTable table_;
  event::VectorTimestamp vts_;
  PipelineCounters counters_;
  std::uint32_t received_since_checkpoint_ = 0;
  std::atomic<std::uint32_t> checkpoint_every_{50};
  std::atomic<obs::Tracer*> tracer_{nullptr};
  obs::ProbeGroup probes_;
};

}  // namespace admire::mirror
