// ShardedPipelineCore: the receiving task of §3.2.1 split into N
// flight-keyed shards so ingest scales past one core. Every semantic rule
// the paper describes — overwrite runs, complex-sequence latches,
// complex-tuple progress — and the coalescer's combine buffers are keyed by
// flight id, so the whole hot-path state partitions cleanly: events route
// to shard hash(flight_id) % N, each shard owns its own RuleEngine +
// StatusTable + Coalescer + ready-queue segment behind its own lock, and
// cross-shard state is reduced to a handful of atomics (vector-timestamp
// components, pipeline counters, checkpoint cadence).
//
// The sending task of §3.2.1 ("events are removed from the ready queue,
// sent onto all outgoing channels, and temporarily stored in the backup
// queue") is sharded the same way: D drain shards (D <= N), drain shard d
// owning the rx segments {i : i % D == d} — coalescer release decisions,
// send-rule work and backup accounting for those flights run under drain
// shard d's lock alone, and concurrent drains merge only at the transmit
// (TxStage outbox) boundary. Each rx shard backs its flights up on its own
// BackupQueue segment; BackupView presents the merged queue to checkpoint
// trim / rejoin replay, so backup contents are invariant to the drain
// shard count (see DESIGN.md §14).
//
// Invariants the sharding preserves (tests/mirror/sharded_pipeline_test.cpp
// proves them):
//  - Rule decisions are byte-identical to the single-shard pipeline for the
//    same per-flight event order: a flight's entire rule state lives in
//    exactly one shard, so shard count cannot change any accept/discard/
//    absorb outcome or the merged RuleCounters.
//  - Per-flight FIFO order holds end to end: a flight maps to one ready
//    segment, every ready segment is owned by exactly one drain shard, and
//    each drain shard is serialized under its own lock — so a flight's
//    events are popped, coalesced and backed up by one drain at a time, in
//    segment FIFO order, for any rx/drain shard count.
//  - Checkpoint-due fires once per checkpoint_every processed events
//    globally — counted on a monotonic atomic, not per shard.
//  - Vector timestamps stay globally consistent: per-stream maxima live in
//    a striped atomic array merged on read, so a stamp taken by any shard
//    dominates every event already observed. Concurrent stamping can
//    produce incomparable stamps for racing events, which is exactly the
//    partial order the dominance-based backup trim is built for.
//
// PipelineCore (pipeline_core.h) is the N=1 specialization; both the
// threaded runtime and the discrete-event simulator drive this same object.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "event/event.h"
#include "event/vector_timestamp.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "queueing/backup_queue.h"
#include "queueing/ready_queue.h"
#include "queueing/status_table.h"
#include "rules/coalescer.h"
#include "rules/params.h"
#include "rules/rule_engine.h"

namespace admire::mirror {

struct PipelineCounters {
  std::uint64_t received = 0;       ///< raw events offered to the pipeline
  std::uint64_t enqueued = 0;       ///< events placed on the ready queue
  std::uint64_t sent = 0;           ///< wire events emitted by send steps
  std::uint64_t bytes_sent = 0;     ///< wire bytes across all emitted events
  std::uint64_t checkpoints_due = 0;
};

class ShardedPipelineCore {
 public:
  /// `num_shards` is clamped to >= 1; pass `resolve_shards(requested)` to
  /// get the hardware-concurrency-capped default for requested == 0.
  /// `num_drain_shards` is clamped to [1, num_shards]; pass
  /// `resolve_drain_shards(requested, num_shards)` for the same
  /// 0-means-auto convention.
  ShardedPipelineCore(rules::MirroringParams params, std::size_t num_streams,
                      std::size_t num_shards, std::size_t num_drain_shards = 1);
  ~ShardedPipelineCore();

  ShardedPipelineCore(const ShardedPipelineCore&) = delete;
  ShardedPipelineCore& operator=(const ShardedPipelineCore&) = delete;

  // --- Receiving task (paper §3.2.1) -----------------------------------
  /// "retrieves events from the incoming data streams, performs the
  /// timestamping and event conversion when necessary, and places the
  /// resulting events into the ready queue" — after the rule engine has
  /// had its say. Safe to call from multiple threads concurrently as long
  /// as each flight's events are offered in order by one caller at a time
  /// (the rx pool routes inboxes by flight hash to guarantee this).
  struct ReceiveOutcome {
    rules::ReceiveAction action;
    bool enqueued = false;           ///< event reached the ready queue
    bool combined_enqueued = false;  ///< a tuple-completion event did too
    /// Fires once per checkpoint_every *processed* events (§3.2.1: "once
    /// per 50 processed events"); the control task should open a round.
    bool checkpoint_due = false;
    /// The stamped event to fwd() to the local main unit. Set for every
    /// data event regardless of the rule decision: semantic rules reduce
    /// *mirroring* traffic, while "regular clients on the main site"
    /// continue to receive the full update stream (§3.2.1).
    std::optional<event::Event> forward;
  };
  ReceiveOutcome on_incoming(event::Event ev, Nanos now);

  // --- Sending task ------------------------------------------------------
  /// "Events are removed from the ready queue, sent onto all outgoing
  /// channels, and temporarily stored in the backup queue". One step pops
  /// one ready event; coalescing may hold it back (empty to_send) or
  /// release several.
  struct SendStep {
    std::vector<event::Event> to_send;
    /// Total wire size of the ready-queue events this step consumed (also
    /// set when coalescing buffered them and to_send is empty) —
    /// cost-model input for the extraction/combine work of §3.3.
    std::size_t offered_bytes = 0;
    /// Ready-queue events this step removed (>= to_send.size() is NOT
    /// implied either way: coalescing can buffer or release multiples).
    std::size_t consumed = 0;
  };
  /// nullopt when every ready segment is empty. `now` (0 = unknown) feeds
  /// the ready-queue wait histogram and the event tracer.
  std::optional<SendStep> try_send_step(Nanos now = 0);

  /// Batched send step: drain up to `max` ready events across the shard
  /// segments and run each through coalescing/backup accounting. Segments
  /// are merged fairly — round-robin passes, each shard yielding an equal
  /// chunk — so one hot shard cannot starve the others, while per-flight
  /// FIFO order is untouched (a flight lives in exactly one segment).
  /// With one drain shard this IS the whole drain; with D > 1 it walks
  /// every drain shard in turn (a convenience for single-threaded
  /// callers — a drain pool calls try_send_batch_shard per worker).
  /// nullopt when every segment is empty.
  std::optional<SendStep> try_send_batch(std::size_t max, Nanos now = 0);

  /// One drain shard's send step/batch: pops only the rx segments this
  /// drain shard owns, under this drain shard's lock — distinct drain
  /// shards run fully concurrently (disjoint segments, coalescers and
  /// backup segments; only counters and the TxStage boundary are shared).
  std::optional<SendStep> try_send_step_shard(std::size_t drain_shard,
                                              Nanos now = 0);
  std::optional<SendStep> try_send_batch_shard(std::size_t drain_shard,
                                               std::size_t max, Nanos now = 0);

  /// Flush every segment and every shard coalescer (quiesce / end of
  /// stream). The returned events have been backed up and counted like
  /// normal sends. A caller that hands send steps to a per-destination
  /// transmit stage must publish this remainder too, then quiesce the
  /// stage's outboxes — counting here says "consumed by the send task",
  /// not "delivered to every destination".
  ///
  /// Safe (and exactly-once) concurrent with active drain workers: each
  /// drain shard's segments and coalescer are emptied under that drain
  /// shard's lock, so a worker can never re-buffer an event after its
  /// coalescer was flushed, and no coalesced event is released twice.
  /// Idempotent — a second flush over a quiesced pipeline returns empty.
  /// Events ingested *while* flush runs may land after its sweep; callers
  /// quiesce ingest first (or call flush again).
  SendStep flush(Nanos now = 0);

  // --- Adaptation --------------------------------------------------------
  /// Install a new mirroring function (set_mirror()/adaptation path) on
  /// every shard. Takes effect for subsequently received/sent events.
  void install(const rules::MirrorFunctionSpec& spec);

  /// Replace the full parameter set (init()-time configuration).
  void install_params(rules::MirroringParams params);

  rules::MirrorFunctionSpec current_spec() const;

  // --- Sharding ----------------------------------------------------------
  std::size_t num_shards() const { return shards_.size(); }
  std::size_t num_drain_shards() const { return drain_shards_.size(); }

  /// The shard an event with this flight key routes to. Key 0 (control /
  /// keyless events) always routes to shard 0.
  static std::size_t shard_of_key(FlightKey key, std::size_t num_shards);

  /// The drain shard that owns rx shard `rx_shard`: rx_shard % D, so the
  /// segments spread evenly and drain shard 0 always owns rx shard 0
  /// (control events included).
  static std::size_t drain_shard_of(std::size_t rx_shard,
                                    std::size_t num_drain_shards);

  /// 0 -> hardware_concurrency capped at kMaxAutoShards; otherwise the
  /// requested count clamped to >= 1.
  static std::size_t resolve_shards(std::size_t requested);
  /// Drain-shard requests clamp exactly like rx-shard requests (shared
  /// helper: routes through resolve_shards) with one extra bound: never
  /// more drain shards than rx shards — a drain shard with no segments
  /// would spin on nothing.
  static std::size_t resolve_drain_shards(std::size_t requested,
                                          std::size_t num_rx_shards);
  static constexpr std::size_t kMaxAutoShards = 8;

  /// Ready-queue depth summed over all segments (adaptation input).
  std::size_t ready_size() const;
  std::size_t shard_ready_size(std::size_t shard) const;
  std::uint64_t shard_received(std::size_t shard) const;
  /// Ready events drain shard `d` has consumed from its segments.
  std::uint64_t drain_shard_drained(std::size_t d) const;
  /// max/mean of per-shard received counts (1.0 = perfectly balanced,
  /// num_shards() = everything on one shard); 0 before any traffic.
  double shard_imbalance() const;

  // --- Introspection -----------------------------------------------------
  /// Merged view over the per-rx-shard backup segments (one segment at
  /// N=1, where every call is byte-identical to the classic single
  /// BackupQueue). Checkpoint trim, rejoin replay and adaptation inputs
  /// all go through this.
  queueing::BackupView& backup() { return backup_view_; }
  const queueing::BackupView& backup() const { return backup_view_; }

  /// Merged rule counters across all shards. Byte-identical to a
  /// single-shard run of the same per-flight workload.
  rules::RuleCounters rule_counters() const;
  PipelineCounters counters() const;

  /// Current merged vector timestamp (dominates every stamped event).
  event::VectorTimestamp stamp() const;

  std::uint32_t checkpoint_every() const {
    return checkpoint_every_.load(std::memory_order_relaxed);
  }

  // --- Observability ------------------------------------------------------
  /// Register this pipeline's metrics with `registry` under the given site
  /// label. With one shard the names are exactly the classic single-core
  /// set (`queue.<site>.ready.*` etc.); with N > 1 the aggregate names are
  /// kept (summed/maxed over shards) and per-shard
  /// `pipeline.<site>.shard<k>.*` plus `pipeline.<site>.shard_imbalance`
  /// are added (see OBSERVABILITY.md). Call before traffic starts.
  void instrument(obs::Registry& registry, const std::string& site);

  /// Attach an event-path tracer; sampled data events get kIngest/kRules/
  /// kReadyQueue spans in on_incoming and kMirrorSend in send steps.
  /// Pass nullptr to detach. The tracer must outlive traffic.
  void set_tracer(obs::Tracer* tracer) {
    tracer_.store(tracer, std::memory_order_release);
  }
  obs::Tracer* tracer() const {
    return tracer_.load(std::memory_order_acquire);
  }

 protected:
  // N=1 back-compat accessors for PipelineCore.
  queueing::ReadyQueue& shard_ready(std::size_t shard) {
    return shards_[shard]->ready;
  }
  const queueing::ReadyQueue& shard_ready(std::size_t shard) const {
    return shards_[shard]->ready;
  }
  queueing::StatusTable& shard_table(std::size_t shard) {
    return shards_[shard]->table;
  }

 private:
  /// One flight partition: rule + coalescer + status state behind its own
  /// lock, plus its segment of the ready queue (internally locked, so the
  /// drain can pop without taking the shard lock first) and its segment of
  /// the backup queue (internally locked; pushed to only by the one drain
  /// shard that owns this rx shard, read/trimmed through BackupView).
  struct Shard {
    explicit Shard(const rules::MirroringParams& params)
        : engine(params),
          coalescer(params.function.coalesce_enabled,
                    params.function.coalesce_max) {}

    mutable std::mutex mu;  // guards engine, coalescer, table
    rules::RuleEngine engine;
    rules::Coalescer coalescer;
    queueing::StatusTable table;
    queueing::ReadyQueue ready;
    queueing::BackupQueue backup;
    std::atomic<std::uint64_t> received{0};
    std::atomic<std::uint64_t> enqueued{0};
    // Send-side accounting lives on the rx shard (summed on read): each
    // counter is written by the one drain shard that owns this segment,
    // so parallel drains never share a counter cache line.
    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> bytes_sent{0};
  };

  /// One send-task partition: owns the rx segments `owned` (indices
  /// i % D == d) — every pop/coalesce/backup decision for those flights
  /// happens under `mu`, which is also what makes flush() exactly-once
  /// against active drain workers. Padded: D drainer threads each hammer
  /// their own lock word.
  struct alignas(64) DrainShard {
    mutable std::mutex mu;
    std::size_t cursor = 0;  ///< rotating fair-merge start, guarded by mu
    std::vector<std::size_t> owned;
    std::atomic<std::uint64_t> drained{0};  ///< ready events consumed
  };

  void observe_stamp(StreamId stream, SeqNo seq);
  void account_send(Shard& shard, const event::Event& ev, SendStep& step);
  /// Offer a popped segment batch to the shard's coalescer and account the
  /// released events into `step`. Takes the shard lock.
  void coalesce_into(Shard& shard, std::vector<event::Event> popped,
                     SendStep& step);
  void trace_send_step(const SendStep& step, Nanos now) const;
  /// Acquire drain shard `ds`'s lock, feeding the drain.lock_wait_ns
  /// histogram when instrumented (0 for uncontended acquisitions).
  std::unique_lock<std::mutex> lock_drain(DrainShard& ds);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<DrainShard>> drain_shards_;
  queueing::BackupView backup_view_;

  // Vector timestamp, striped: one atomic max-seq per stream known at
  // construction; streams beyond that (rare) spill into a mutex-guarded
  // overflow VTS. Components are cache-line padded — every ingest thread
  // CASes its stream's max and reads the others, so packed atomics would
  // ping-pong one line between all rx threads.
  struct alignas(64) PaddedSeqNo {
    std::atomic<SeqNo> value{0};
  };
  std::vector<PaddedSeqNo> vts_comps_;
  mutable std::mutex vts_overflow_mu_;
  event::VectorTimestamp vts_overflow_;
  std::atomic<bool> vts_has_overflow_{false};

  // Global pipeline accounting. `received_` doubles as the processed-event
  // count for checkpoint cadence: due fires when it hits a multiple of
  // checkpoint_every, which a monotonic counter makes exactly-once under
  // concurrency with no reset race. It sits on its own cache line: it is
  // the one counter every ingest thread hits, and sharing a line with the
  // drain-side counters would couple the two tasks' cores. Enqueued and
  // sent/bytes counts live on the shards (summed on read) so neither
  // accepts nor parallel drains touch a shared line.
  alignas(64) std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> checkpoints_due_{0};
  std::atomic<std::uint32_t> checkpoint_every_{50};

  std::atomic<obs::Tracer*> tracer_{nullptr};
  std::atomic<obs::Histogram*> drain_lock_wait_{nullptr};
  obs::ProbeGroup probes_;
};

}  // namespace admire::mirror
