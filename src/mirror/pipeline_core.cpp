#include "mirror/pipeline_core.h"

namespace admire::mirror {

PipelineCore::PipelineCore(rules::MirroringParams params,
                           std::size_t num_streams)
    : ShardedPipelineCore(std::move(params), num_streams, /*num_shards=*/1) {}

}  // namespace admire::mirror
