#include "mirror/pipeline_core.h"

namespace admire::mirror {

PipelineCore::PipelineCore(rules::MirroringParams params,
                           std::size_t num_streams)
    : engine_(std::move(params)),
      coalescer_(engine_.params().function.coalesce_enabled,
                 engine_.params().function.coalesce_max),
      vts_(num_streams) {
  const std::uint32_t every = engine_.params().function.checkpoint_every;
  checkpoint_every_.store(every == 0 ? 50 : every);
}

PipelineCore::ReceiveOutcome PipelineCore::on_incoming(event::Event ev,
                                                       Nanos now) {
  obs::Tracer* tracer = tracer_.load(std::memory_order_acquire);
  const bool traced = tracer != nullptr && event::is_data_event(ev.type()) &&
                      tracer->sampled(ev.seq());
  const std::uint64_t tkey =
      traced ? obs::Tracer::key_of(ev.stream(), ev.seq()) : 0;
  if (traced) tracer->record(tkey, obs::Stage::kIngest, now);

  std::lock_guard lock(mu_);
  ++counters_.received;

  // Timestamping: ingress time + vector timestamp ("events themselves are
  // uniquely timestamped when they enter the primary site", §3.3).
  if (ev.header().ingress_time == 0) ev.mutable_header().ingress_time = now;
  if (event::is_data_event(ev.type())) {
    vts_.observe(ev.stream(), ev.seq());
    ev.mutable_header().vts = vts_;
  }

  // Checkpointing runs "at a constant frequency of once per 50 processed
  // events" (§3.2.1) — counted on processed (received) events so the
  // frequency knob is meaningful regardless of how selective the mirror
  // function is.
  bool checkpoint_due = false;
  if (++received_since_checkpoint_ >= checkpoint_every()) {
    received_since_checkpoint_ = 0;
    checkpoint_due = true;
    ++counters_.checkpoints_due;
  }

  const rules::ReceiveDecision decision = engine_.on_receive(ev, table_);
  if (traced) tracer->record(tkey, obs::Stage::kRules, now);
  ReceiveOutcome outcome{decision.action, false, false, checkpoint_due,
                         std::nullopt};
  if (event::is_data_event(ev.type())) outcome.forward = ev;
  if (decision.action == rules::ReceiveAction::kAccept) {
    ready_.push(std::move(ev), now);
    outcome.enqueued = true;
    ++counters_.enqueued;
    if (traced) tracer->record(tkey, obs::Stage::kReadyQueue, now);
  } else if (traced) {
    // Discarded/absorbed events never reach the ready queue: close the
    // span now instead of letting it linger until eviction.
    tracer->finish(tkey);
  }
  if (decision.combined.has_value()) {
    ready_.push(std::move(*decision.combined), now);
    outcome.combined_enqueued = true;
    ++counters_.enqueued;
  }
  return outcome;
}

void PipelineCore::account_send(const event::Event& ev, SendStep& step) {
  (void)step;
  backup_.push(ev);
  ++counters_.sent;
  counters_.bytes_sent += ev.wire_size();
}

std::optional<PipelineCore::SendStep> PipelineCore::try_send_step(Nanos now) {
  return try_send_batch(1, now);
}

std::optional<PipelineCore::SendStep> PipelineCore::try_send_batch(
    std::size_t max, Nanos now) {
  std::vector<event::Event> popped = ready_.pop_batch(max, now);
  if (popped.empty()) return std::nullopt;
  std::lock_guard lock(mu_);
  SendStep step;
  for (event::Event& ev : popped) {
    step.offered_bytes += ev.wire_size();
    for (event::Event& out : coalescer_.offer(std::move(ev))) {
      account_send(out, step);
      step.to_send.push_back(std::move(out));
    }
  }
  if (obs::Tracer* tracer = tracer_.load(std::memory_order_acquire)) {
    for (const auto& out : step.to_send) {
      if (event::is_data_event(out.type()) && tracer->sampled(out.seq())) {
        tracer->record(obs::Tracer::key_of(out.stream(), out.seq()),
                       obs::Stage::kMirrorSend, now);
      }
    }
  }
  return step;
}

PipelineCore::SendStep PipelineCore::flush(Nanos now) {
  SendStep step;
  // Drain whatever is still on the ready queue, then the coalescer.
  while (auto ev = ready_.try_pop(now)) {
    std::lock_guard lock(mu_);
    for (auto& out : coalescer_.offer(std::move(*ev))) {
      account_send(out, step);
      step.to_send.push_back(std::move(out));
    }
  }
  std::lock_guard lock(mu_);
  for (auto& out : coalescer_.flush_all()) {
    account_send(out, step);
    step.to_send.push_back(std::move(out));
  }
  return step;
}

void PipelineCore::install(const rules::MirrorFunctionSpec& spec) {
  std::lock_guard lock(mu_);
  rules::MirroringParams params = engine_.params();
  params.function = spec;
  engine_.install(std::move(params));
  coalescer_.configure(spec.coalesce_enabled, spec.coalesce_max);
  checkpoint_every_.store(spec.checkpoint_every == 0 ? 50
                                                     : spec.checkpoint_every);
}

void PipelineCore::install_params(rules::MirroringParams params) {
  std::lock_guard lock(mu_);
  coalescer_.configure(params.function.coalesce_enabled,
                       params.function.coalesce_max);
  const std::uint32_t every = params.function.checkpoint_every;
  checkpoint_every_.store(every == 0 ? 50 : every);
  engine_.install(std::move(params));
}

rules::MirrorFunctionSpec PipelineCore::current_spec() const {
  std::lock_guard lock(mu_);
  return engine_.params().function;
}

rules::RuleCounters PipelineCore::rule_counters() const {
  std::lock_guard lock(mu_);
  return engine_.counters();
}

PipelineCounters PipelineCore::counters() const {
  std::lock_guard lock(mu_);
  return counters_;
}

event::VectorTimestamp PipelineCore::stamp() const {
  std::lock_guard lock(mu_);
  return vts_;
}

void PipelineCore::instrument(obs::Registry& registry,
                              const std::string& site) {
  ready_.instrument(registry, "queue." + site + ".ready");
  backup_.instrument(registry, "queue." + site + ".backup");
  const std::string prefix = "pipeline." + site;
  // Resolve the registry sinks before taking mu_: counter() locks the
  // registry, and Registry::snapshot() invokes the probes registered
  // below while holding that same lock — resolving under mu_ would
  // invert the two locks (pipeline → registry vs registry → pipeline).
  const auto rule_sinks =
      rules::RuleEngine::resolve_counters(registry, "rules." + site);
  {
    std::lock_guard lock(mu_);
    engine_.install_counters(rule_sinks);
  }
  probes_.add(registry, prefix + ".received_total", [this] {
    std::lock_guard lock(mu_);
    return static_cast<double>(counters_.received);
  });
  probes_.add(registry, prefix + ".enqueued_total", [this] {
    std::lock_guard lock(mu_);
    return static_cast<double>(counters_.enqueued);
  });
  probes_.add(registry, prefix + ".sent_total", [this] {
    std::lock_guard lock(mu_);
    return static_cast<double>(counters_.sent);
  });
  probes_.add(registry, prefix + ".bytes_sent_total", [this] {
    std::lock_guard lock(mu_);
    return static_cast<double>(counters_.bytes_sent);
  });
  probes_.add(registry, prefix + ".checkpoints_due_total", [this] {
    std::lock_guard lock(mu_);
    return static_cast<double>(counters_.checkpoints_due);
  });
}

std::uint32_t PipelineCore::checkpoint_every() const {
  // Atomic because account_send reads it while mu_ is held and external
  // monitors read it without the lock.
  return checkpoint_every_.load(std::memory_order_relaxed);
}

}  // namespace admire::mirror
