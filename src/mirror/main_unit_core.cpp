#include "mirror/main_unit_core.h"

namespace admire::mirror {

std::vector<event::Event> MainUnitCore::process(const event::Event& ev) {
  std::lock_guard lock(mu_);
  backup_.push(ev);
  return ede_.process(ev);
}

Status MainUnitCore::apply_replay(const event::Event& ev) {
  bool valid = true;
  switch (ev.type()) {
    case event::EventType::kFaaPosition:
      valid = ev.as<event::FaaPosition>() != nullptr;
      break;
    case event::EventType::kDeltaStatus:
      valid = ev.as<event::DeltaStatus>() != nullptr;
      break;
    case event::EventType::kPassengerBoarded:
      valid = ev.as<event::PassengerBoarded>() != nullptr;
      break;
    case event::EventType::kBaggageLoaded:
      valid = ev.as<event::BaggageLoaded>() != nullptr;
      break;
    case event::EventType::kDerived:
      valid = ev.as<event::Derived>() != nullptr;
      break;
    default:
      break;  // kSnapshot / kControl fold as no-ops; nothing to validate
  }
  if (!valid) {
    return err(StatusCode::kCorrupt,
               "replay event payload does not match its declared type");
  }
  (void)process(ev);
  return Status::ok();
}

MainUnitCore::CapturedRange MainUnitCore::capture_range(
    FlightKey from, std::size_t max_records) const {
  std::lock_guard lock(mu_);
  CapturedRange out;
  out.slice = state_->serialize_range(from, max_records);
  out.anchor = ede_.progress();
  return out;
}

checkpoint::ControlMessage MainUnitCore::on_chkpt(
    const checkpoint::ControlMessage& chkpt) {
  return participant_.make_reply(chkpt, progress());
}

std::size_t MainUnitCore::on_commit(const checkpoint::ControlMessage& commit) {
  return participant_.apply_commit(commit, backup_);
}

event::VectorTimestamp MainUnitCore::progress() const {
  std::lock_guard lock(mu_);
  return ede_.progress();
}

void MainUnitCore::seed_progress(const event::VectorTimestamp& vts) {
  std::lock_guard lock(mu_);
  ede_.seed_progress(vts);
}

}  // namespace admire::mirror
