#include "mirror/main_unit_core.h"

namespace admire::mirror {

std::vector<event::Event> MainUnitCore::process(const event::Event& ev) {
  std::lock_guard lock(mu_);
  backup_.push(ev);
  return ede_.process(ev);
}

checkpoint::ControlMessage MainUnitCore::on_chkpt(
    const checkpoint::ControlMessage& chkpt) {
  return participant_.make_reply(chkpt, progress());
}

std::size_t MainUnitCore::on_commit(const checkpoint::ControlMessage& commit) {
  return participant_.apply_commit(commit, backup_);
}

event::VectorTimestamp MainUnitCore::progress() const {
  std::lock_guard lock(mu_);
  return ede_.progress();
}

void MainUnitCore::seed_progress(const event::VectorTimestamp& vts) {
  std::lock_guard lock(mu_);
  ede_.seed_progress(vts);
}

}  // namespace admire::mirror
