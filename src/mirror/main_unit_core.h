// MainUnitCore: the per-site "main unit" of Fig. 2 — the EDE business
// logic plus its checkpoint-participant role (Fig. 3, Main Unit column).
// Synchronous; driven by the threaded runtime or the simulator.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "checkpoint/messages.h"
#include "checkpoint/participant.h"
#include "common/types.h"
#include "ede/engine.h"
#include "ede/operational_state.h"
#include "ede/snapshot.h"
#include "event/event.h"
#include "queueing/backup_queue.h"

namespace admire::mirror {

class MainUnitCore {
 public:
  explicit MainUnitCore(SiteId site)
      : site_(site),
        state_(std::make_unique<ede::OperationalState>()),
        ede_(state_.get()),
        snapshots_(state_.get()),
        participant_(site) {}

  SiteId site() const { return site_; }

  /// Process one forwarded data event: fold into operational state, record
  /// it in this unit's backup queue, and return derived client updates.
  std::vector<event::Event> process(const event::Event& ev);

  /// Recovery replay: validate the event's payload against its declared
  /// type BEFORE folding (Ede::process silently drops a mismatched body —
  /// fine on the live path where the codec already validated, fatal on a
  /// replay where a dropped event means a silently divergent mirror), then
  /// process it. kCorrupt when the payload does not match the type.
  Status apply_replay(const event::Event& ev);

  /// Chunked-rejoin donor side (DESIGN.md §17): atomically capture one
  /// key-ordered state slice AND the EDE progress it reflects. Holding this
  /// unit's lock for one bounded slice — instead of the whole table — is
  /// what keeps the donor serving during a bootstrap.
  struct CapturedRange {
    ede::OperationalState::RangeSlice slice;
    event::VectorTimestamp anchor;  ///< EDE progress at capture
  };
  CapturedRange capture_range(FlightKey from, std::size_t max_records) const;

  /// Fig. 3 Main Unit, CHKPT: "chkpt_rep = min{chkpt, last in backup}".
  checkpoint::ControlMessage on_chkpt(const checkpoint::ControlMessage& chkpt);

  /// Fig. 3 Main Unit, COMMIT: "if commit in backup queue, update backup
  /// queue". Returns entries trimmed.
  std::size_t on_commit(const checkpoint::ControlMessage& commit);

  /// Build an initial-state snapshot for one client request.
  std::vector<event::Event> build_snapshot(std::uint64_t request_id) {
    return snapshots_.build(request_id);
  }

  ede::OperationalState& state() { return *state_; }
  const ede::OperationalState& state() const { return *state_; }
  const ede::EdeCounters& ede_counters() const { return ede_.counters(); }
  queueing::BackupQueue& backup() { return backup_; }
  checkpoint::Participant& participant() { return participant_; }
  ede::SnapshotService& snapshot_service() { return snapshots_; }

  /// VTS of the most recent event processed by business logic.
  event::VectorTimestamp progress() const;

  /// Recovery: mark events up to `vts` as already covered (a restored
  /// snapshot folded them in).
  void seed_progress(const event::VectorTimestamp& vts);

 private:
  const SiteId site_;
  std::unique_ptr<ede::OperationalState> state_;
  mutable std::mutex mu_;  // serializes EDE processing
  ede::Ede ede_;
  ede::SnapshotService snapshots_;
  queueing::BackupQueue backup_;
  checkpoint::Participant participant_;
};

}  // namespace admire::mirror
