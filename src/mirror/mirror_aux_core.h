// MirrorAuxCore: the auxiliary unit of a *mirror* site (Fig. 3, Mirror Aux
// Unit column). It receives already rule-filtered events from the central
// site, records them in its backup queue, hands them to the local main
// unit, and relays checkpoint control traffic between the central site and
// its main unit.
#pragma once

#include <mutex>

#include "checkpoint/messages.h"
#include "checkpoint/participant.h"
#include "common/types.h"
#include "event/event.h"
#include "obs/registry.h"
#include "queueing/backup_queue.h"
#include "queueing/ready_queue.h"

namespace admire::mirror {

class MirrorAuxCore {
 public:
  explicit MirrorAuxCore(SiteId site) : site_(site), participant_(site) {}

  SiteId site() const { return site_; }

  /// A mirrored data event arrived on the data channel: enqueue it for the
  /// local main unit and retain a backup copy. `now` (0 = unknown) stamps
  /// the ready-queue entry for the wait-time histogram.
  void on_mirrored(event::Event ev, Nanos now = 0);

  /// Next event to forward to the local main unit (the mirror aux's
  /// sending step); nullopt when none pending.
  std::optional<event::Event> next_for_main(Nanos now = 0);

  /// Register `queue.<site label>.{ready,backup}.*` plus
  /// `mirror.<site label>.received_total` with `registry`.
  void instrument(obs::Registry& registry, const std::string& site);

  /// Fig. 3: "CHKPT: forward to main unit" — pure relay; returned message
  /// is what the driver must deliver to the main unit (identity, kept as a
  /// method so tests can assert relay counts).
  checkpoint::ControlMessage relay_chkpt(const checkpoint::ControlMessage& m);

  /// Fig. 3: "CHKPT_REP: if chkpt_rep in backup queue, forward to central
  /// site". Forwarding a reply that references an already-trimmed event is
  /// harmless (commits are monotone at the coordinator), so the guard only
  /// filters replies for views this aux has provably already committed.
  std::optional<checkpoint::ControlMessage> relay_reply(
      const checkpoint::ControlMessage& reply);

  /// Fig. 3: "COMMIT: if commit in backup queue, update backup queue;
  /// forward to main unit". Returns the message to forward.
  checkpoint::ControlMessage on_commit(const checkpoint::ControlMessage& m);

  queueing::BackupQueue& backup() { return backup_; }
  queueing::ReadyQueue& ready() { return ready_; }
  checkpoint::Participant& participant() { return participant_; }

  std::uint64_t mirrored_received() const {
    std::lock_guard lock(mu_);
    return received_;
  }

 private:
  const SiteId site_;
  mutable std::mutex mu_;
  queueing::ReadyQueue ready_;
  queueing::BackupQueue backup_;
  checkpoint::Participant participant_;
  std::uint64_t received_ = 0;
  obs::ProbeGroup probes_;
};

}  // namespace admire::mirror
