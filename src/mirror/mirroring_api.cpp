#include "mirror/mirroring_api.h"

namespace admire::mirror {

MirroringApi::MirroringApi() : function_(rules::simple_mirroring()) {}

MirroringApi& MirroringApi::init(bool coalesce, std::uint32_t number,
                                 std::uint32_t l) {
  function_ = rules::simple_mirroring();
  function_.coalesce_enabled = coalesce;
  function_.coalesce_max = number;
  function_.overwrite_max = l;
  function_.name = coalesce || l > 1 ? "custom" : "simple";
  overwrite_rules_.clear();
  filter_rules_.clear();
  complex_seq_rules_.clear();
  complex_tuple_rules_.clear();
  thresholds_.clear();
  adjustments_.clear();
  engaged_spec_.reset();
  reinstall();
  return *this;
}

MirroringApi& MirroringApi::set_params(bool coalesce, std::uint32_t number,
                                       std::uint32_t checkpoint_every) {
  function_.coalesce_enabled = coalesce;
  function_.coalesce_max = number;
  function_.checkpoint_every = checkpoint_every;
  reinstall();
  return *this;
}

MirroringApi& MirroringApi::set_overwrite(event::EventType t,
                                          std::uint32_t l) {
  // Replace an existing rule for the same type.
  for (auto& rule : overwrite_rules_) {
    if (rule.type == t) {
      rule.max_length = l;
      reinstall();
      return *this;
    }
  }
  overwrite_rules_.push_back({t, l});
  reinstall();
  return *this;
}

MirroringApi& MirroringApi::set_filter(event::EventType t,
                                       rules::EventMatcher drop_if) {
  rules::FilterRule rule;
  rule.type = t;
  rule.drop_if = std::move(drop_if);
  filter_rules_.push_back(std::move(rule));
  reinstall();
  return *this;
}

MirroringApi& MirroringApi::set_complex_seq(event::EventType t1,
                                            rules::EventMatcher value,
                                            event::EventType t2) {
  rules::ComplexSeqRule rule;
  rule.trigger_type = t1;
  rule.trigger_value = std::move(value);
  rule.suppressed_type = t2;
  complex_seq_rules_.push_back(std::move(rule));
  reinstall();
  return *this;
}

MirroringApi& MirroringApi::set_complex_tuple(rules::ComplexTupleRule rule) {
  complex_tuple_rules_.push_back(std::move(rule));
  reinstall();
  return *this;
}

MirroringApi& MirroringApi::set_adapt(adapt::ParamId p_id, int percent) {
  for (auto& a : adjustments_) {
    if (a.id == p_id) {
      a.percent = percent;
      return *this;
    }
  }
  adjustments_.push_back({p_id, percent});
  return *this;
}

MirroringApi& MirroringApi::set_adapt_function(
    rules::MirrorFunctionSpec engaged_spec) {
  engaged_spec_ = std::move(engaged_spec);
  return *this;
}

MirroringApi& MirroringApi::set_monitor_values(adapt::MonitoredVariable index,
                                               double primary,
                                               double secondary) {
  for (auto& t : thresholds_) {
    if (t.variable == index) {
      t.primary = primary;
      t.secondary = secondary;
      return *this;
    }
  }
  thresholds_.push_back({index, primary, secondary});
  return *this;
}

MirroringApi& MirroringApi::set_mirror(CustomFunction func) {
  std::lock_guard lock(hooks_mu_);
  custom_mirror_ = std::move(func);
  return *this;
}

MirroringApi& MirroringApi::set_fwd(CustomFunction func) {
  std::lock_guard lock(hooks_mu_);
  custom_fwd_ = std::move(func);
  return *this;
}

MirroringApi& MirroringApi::use_function(rules::MirrorFunctionSpec spec) {
  function_ = std::move(spec);
  reinstall();
  return *this;
}

MirroringApi& MirroringApi::load(const rules::MirroringParams& params) {
  function_ = params.function;
  overwrite_rules_ = params.overwrite_rules;
  filter_rules_ = params.filter_rules;
  complex_seq_rules_ = params.complex_seq_rules;
  complex_tuple_rules_ = params.complex_tuple_rules;
  reinstall();
  return *this;
}

rules::MirroringParams MirroringApi::params() const {
  rules::MirroringParams p;
  p.function = function_;
  p.overwrite_rules = overwrite_rules_;
  p.filter_rules = filter_rules_;
  p.complex_seq_rules = complex_seq_rules_;
  p.complex_tuple_rules = complex_tuple_rules_;
  return p;
}

adapt::AdaptationPolicy MirroringApi::adaptation_policy() const {
  adapt::AdaptationPolicy policy;
  policy.thresholds = thresholds_;
  policy.normal_spec = function_;
  if (engaged_spec_.has_value()) {
    policy.mode = adapt::PolicyMode::kSwitchFunction;
    policy.engaged_spec = *engaged_spec_;
  } else {
    policy.mode = adapt::PolicyMode::kAdjustParams;
    policy.adjustments = adjustments_;
  }
  return policy;
}

void MirroringApi::bind(ShardedPipelineCore* core, EventSink mirror_sink,
                        EventSink fwd_sink,
                        std::function<void()> checkpoint_trigger,
                        BatchEventSink mirror_batch_sink) {
  core_ = core;
  mirror_sink_ = std::move(mirror_sink);
  mirror_batch_sink_ = std::move(mirror_batch_sink);
  fwd_sink_ = std::move(fwd_sink);
  checkpoint_trigger_ = std::move(checkpoint_trigger);
  reinstall();
}

void MirroringApi::mirror(const event::Event& ev) const {
  if (!mirror_sink_ && !mirror_batch_sink_) return;
  CustomFunction custom;
  {
    std::lock_guard lock(hooks_mu_);
    custom = custom_mirror_;
  }
  if (custom && mirror_sink_) {
    custom(ev, mirror_sink_);
  } else if (mirror_sink_) {
    mirror_sink_(ev);
  } else {
    mirror_batch_sink_(std::span<const event::Event>(&ev, 1));
  }
}

void MirroringApi::mirror_batch(std::span<const event::Event> events) const {
  if (events.empty()) return;
  CustomFunction custom;
  {
    std::lock_guard lock(hooks_mu_);
    custom = custom_mirror_;
  }
  // A custom mirroring function has per-event semantics (it may filter or
  // transform each event), so batches are unbundled for it.
  if (custom && mirror_sink_) {
    for (const event::Event& ev : events) custom(ev, mirror_sink_);
    return;
  }
  if (mirror_batch_sink_) {
    mirror_batch_sink_(events);
    return;
  }
  if (!mirror_sink_) return;
  for (const event::Event& ev : events) mirror_sink_(ev);
}

void MirroringApi::fwd(const event::Event& ev) const {
  if (!fwd_sink_) return;
  CustomFunction custom;
  {
    std::lock_guard lock(hooks_mu_);
    custom = custom_fwd_;
  }
  if (custom) {
    custom(ev, fwd_sink_);
  } else {
    fwd_sink_(ev);
  }
}

void MirroringApi::checkpoint() const {
  if (checkpoint_trigger_) checkpoint_trigger_();
}

void MirroringApi::reinstall() const {
  if (core_ != nullptr) core_->install_params(params());
}

}  // namespace admire::mirror
