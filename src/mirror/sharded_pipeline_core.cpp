#include "mirror/sharded_pipeline_core.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <thread>

namespace admire::mirror {

ShardedPipelineCore::ShardedPipelineCore(rules::MirroringParams params,
                                         std::size_t num_streams,
                                         std::size_t num_shards,
                                         std::size_t num_drain_shards)
    : vts_comps_(num_streams), vts_overflow_(num_streams) {
  const std::uint32_t every = params.function.checkpoint_every;
  checkpoint_every_.store(every == 0 ? 50 : every);
  const std::size_t n = std::max<std::size_t>(1, num_shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(params));
  }
  const std::size_t d =
      std::clamp<std::size_t>(num_drain_shards, 1, shards_.size());
  drain_shards_.reserve(d);
  for (std::size_t k = 0; k < d; ++k) {
    drain_shards_.push_back(std::make_unique<DrainShard>());
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    drain_shards_[drain_shard_of(i, d)]->owned.push_back(i);
  }
  std::vector<queueing::BackupQueue*> segments;
  segments.reserve(shards_.size());
  for (auto& shard : shards_) segments.push_back(&shard->backup);
  backup_view_.attach(std::move(segments));
}

ShardedPipelineCore::~ShardedPipelineCore() = default;

std::size_t ShardedPipelineCore::shard_of_key(FlightKey key,
                                              std::size_t num_shards) {
  if (num_shards <= 1 || key == 0) return 0;
  // Fibonacci-style mix: flight keys are often small consecutive integers,
  // so a plain modulo would put adjacent flights on adjacent shards and a
  // strided workload on one.
  std::uint64_t h = static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ULL;
  h ^= h >> 32;
  return static_cast<std::size_t>(h % num_shards);
}

std::size_t ShardedPipelineCore::resolve_shards(std::size_t requested) {
  if (requested > 0) return requested;
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw, 1, kMaxAutoShards);
}

std::size_t ShardedPipelineCore::drain_shard_of(std::size_t rx_shard,
                                                std::size_t num_drain_shards) {
  if (num_drain_shards <= 1) return 0;
  return rx_shard % num_drain_shards;
}

std::size_t ShardedPipelineCore::resolve_drain_shards(
    std::size_t requested, std::size_t num_rx_shards) {
  return std::min(resolve_shards(requested),
                  std::max<std::size_t>(1, num_rx_shards));
}

void ShardedPipelineCore::observe_stamp(StreamId stream, SeqNo seq) {
  if (stream < vts_comps_.size()) {
    std::atomic<SeqNo>& comp = vts_comps_[stream].value;
    SeqNo cur = comp.load(std::memory_order_relaxed);
    while (cur < seq && !comp.compare_exchange_weak(
                            cur, seq, std::memory_order_release,
                            std::memory_order_relaxed)) {
    }
  } else {
    std::lock_guard lock(vts_overflow_mu_);
    vts_overflow_.observe(stream, seq);
    vts_has_overflow_.store(true, std::memory_order_release);
  }
}

event::VectorTimestamp ShardedPipelineCore::stamp() const {
  event::VectorTimestamp out(vts_comps_.size());
  for (std::size_t s = 0; s < vts_comps_.size(); ++s) {
    const SeqNo seq = vts_comps_[s].value.load(std::memory_order_acquire);
    if (seq != 0) out.observe(static_cast<StreamId>(s), seq);
  }
  if (vts_has_overflow_.load(std::memory_order_acquire)) {
    std::lock_guard lock(vts_overflow_mu_);
    out.merge(vts_overflow_);
  }
  return out;
}

ShardedPipelineCore::ReceiveOutcome ShardedPipelineCore::on_incoming(
    event::Event ev, Nanos now) {
  obs::Tracer* tracer = tracer_.load(std::memory_order_acquire);
  const bool traced = tracer != nullptr && event::is_data_event(ev.type()) &&
                      tracer->sampled(ev.seq());
  const std::uint64_t tkey =
      traced ? obs::Tracer::key_of(ev.stream(), ev.seq()) : 0;
  if (traced) tracer->record(tkey, obs::Stage::kIngest, now);

  const std::uint64_t seen =
      received_.fetch_add(1, std::memory_order_relaxed) + 1;

  // Timestamping: ingress time + vector timestamp ("events themselves are
  // uniquely timestamped when they enter the primary site", §3.3).
  if (ev.header().ingress_time == 0) ev.mutable_header().ingress_time = now;
  if (event::is_data_event(ev.type())) {
    observe_stamp(ev.stream(), ev.seq());
    ev.mutable_header().vts = stamp();
  }

  // Checkpointing runs "at a constant frequency of once per 50 processed
  // events" (§3.2.1) — counted on processed (received) events so the
  // frequency knob is meaningful regardless of how selective the mirror
  // function is. The monotonic counter makes the cadence exactly-once
  // across concurrently ingesting shards.
  bool checkpoint_due = false;
  const std::uint32_t every = checkpoint_every();
  if (every > 0 && seen % every == 0) {
    checkpoint_due = true;
    checkpoints_due_.fetch_add(1, std::memory_order_relaxed);
  }

  Shard& shard = *shards_[shard_of_key(ev.key(), shards_.size())];
  shard.received.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(shard.mu);
  const rules::ReceiveDecision decision = shard.engine.on_receive(ev, shard.table);
  if (traced) tracer->record(tkey, obs::Stage::kRules, now);
  ReceiveOutcome outcome{decision.action, false, false, checkpoint_due,
                         std::nullopt};
  if (event::is_data_event(ev.type())) outcome.forward = ev;
  if (decision.action == rules::ReceiveAction::kAccept) {
    shard.ready.push(std::move(ev), now);
    outcome.enqueued = true;
    shard.enqueued.fetch_add(1, std::memory_order_relaxed);
    if (traced) tracer->record(tkey, obs::Stage::kReadyQueue, now);
  } else if (traced) {
    // Discarded/absorbed events never reach the ready queue: close the
    // span now instead of letting it linger until eviction.
    tracer->finish(tkey);
  }
  if (decision.combined.has_value()) {
    shard.ready.push(std::move(*decision.combined), now);
    outcome.combined_enqueued = true;
    shard.enqueued.fetch_add(1, std::memory_order_relaxed);
  }
  return outcome;
}

void ShardedPipelineCore::account_send(Shard& shard, const event::Event& ev,
                                       SendStep& step) {
  (void)step;
  // Coalesced/combined events keep their flight key, so every wire event a
  // shard's coalescer releases backs up on that same shard's segment —
  // backup contents are a function of the rx partition alone, invariant to
  // how many drain shards consume it.
  shard.backup.push(ev);
  shard.sent.fetch_add(1, std::memory_order_relaxed);
  shard.bytes_sent.fetch_add(ev.wire_size(), std::memory_order_relaxed);
}

void ShardedPipelineCore::coalesce_into(Shard& shard,
                                        std::vector<event::Event> popped,
                                        SendStep& step) {
  std::lock_guard lock(shard.mu);
  for (event::Event& ev : popped) {
    step.offered_bytes += ev.wire_size();
    for (event::Event& out : shard.coalescer.offer(std::move(ev))) {
      account_send(shard, out, step);
      step.to_send.push_back(std::move(out));
    }
  }
}

void ShardedPipelineCore::trace_send_step(const SendStep& step,
                                          Nanos now) const {
  obs::Tracer* tracer = tracer_.load(std::memory_order_acquire);
  if (tracer == nullptr) return;
  for (const auto& out : step.to_send) {
    if (event::is_data_event(out.type()) && tracer->sampled(out.seq())) {
      tracer->record(obs::Tracer::key_of(out.stream(), out.seq()),
                     obs::Stage::kMirrorSend, now);
    }
  }
}

std::unique_lock<std::mutex> ShardedPipelineCore::lock_drain(DrainShard& ds) {
  obs::Histogram* lock_wait =
      drain_lock_wait_.load(std::memory_order_acquire);
  std::unique_lock<std::mutex> lock(ds.mu, std::defer_lock);
  if (lock_wait == nullptr) {
    lock.lock();
    return lock;
  }
  if (lock.try_lock()) {
    lock_wait->observe(0.0);
    return lock;
  }
  const auto t0 = std::chrono::steady_clock::now();
  lock.lock();
  lock_wait->observe(static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  return lock;
}

std::optional<ShardedPipelineCore::SendStep> ShardedPipelineCore::try_send_step(
    Nanos now) {
  return try_send_batch(1, now);
}

std::optional<ShardedPipelineCore::SendStep>
ShardedPipelineCore::try_send_step_shard(std::size_t drain_shard, Nanos now) {
  return try_send_batch_shard(drain_shard, 1, now);
}

std::optional<ShardedPipelineCore::SendStep>
ShardedPipelineCore::try_send_batch(std::size_t max, Nanos now) {
  if (drain_shards_.size() == 1) return try_send_batch_shard(0, max, now);
  // Single-threaded convenience over a sharded drain: visit every drain
  // shard once, splitting the quota evenly across the shards still to
  // come. A drain pool wants try_send_batch_shard per worker instead.
  SendStep step;
  bool consumed_any = false;
  std::size_t remaining = max;
  for (std::size_t d = 0; d < drain_shards_.size() && remaining > 0; ++d) {
    const std::size_t left = drain_shards_.size() - d;
    const std::size_t share =
        std::max<std::size_t>(1, (remaining + left - 1) / left);
    auto sub = try_send_batch_shard(d, std::min(share, remaining), now);
    if (!sub.has_value()) continue;
    consumed_any = true;
    remaining -= std::min(remaining, sub->consumed);
    step.consumed += sub->consumed;
    step.offered_bytes += sub->offered_bytes;
    step.to_send.insert(step.to_send.end(),
                        std::make_move_iterator(sub->to_send.begin()),
                        std::make_move_iterator(sub->to_send.end()));
  }
  if (!consumed_any) return std::nullopt;
  return step;
}

std::optional<ShardedPipelineCore::SendStep>
ShardedPipelineCore::try_send_batch_shard(std::size_t drain_shard,
                                          std::size_t max, Nanos now) {
  if (max == 0 || drain_shard >= drain_shards_.size()) return std::nullopt;
  DrainShard& ds = *drain_shards_[drain_shard];
  std::unique_lock<std::mutex> drain = lock_drain(ds);
  SendStep step;
  bool consumed_any = false;
  std::size_t remaining = max;
  // Fair merge: round-robin passes over this drain shard's segments
  // starting one past the previous drain's start, each segment yielding an
  // equal share of the remaining quota, until the quota is spent or every
  // owned segment is empty. Per-flight FIFO is preserved regardless: a
  // flight lives in exactly one segment, owned by exactly one drain shard,
  // and that drain shard's consumers are serialized by ds.mu.
  const auto& owned = ds.owned;
  const std::size_t start = ds.cursor;
  ds.cursor = (ds.cursor + 1) % owned.size();
  while (remaining > 0) {
    bool progress = false;
    const std::size_t share = std::max<std::size_t>(1, remaining / owned.size());
    for (std::size_t i = 0; i < owned.size() && remaining > 0; ++i) {
      Shard& shard = *shards_[owned[(start + i) % owned.size()]];
      std::vector<event::Event> popped =
          shard.ready.pop_batch(std::min(share, remaining), now);
      if (popped.empty()) continue;
      progress = true;
      consumed_any = true;
      remaining -= popped.size();
      step.consumed += popped.size();
      coalesce_into(shard, std::move(popped), step);
    }
    if (!progress) break;
  }
  if (!consumed_any) return std::nullopt;
  ds.drained.fetch_add(step.consumed, std::memory_order_relaxed);
  trace_send_step(step, now);
  return step;
}

ShardedPipelineCore::SendStep ShardedPipelineCore::flush(Nanos now) {
  SendStep step;
  // Sweep one drain shard at a time, holding its lock across BOTH its
  // segment drain and its coalescer flush: a concurrent drain worker on
  // the same shard is excluded for the whole sweep, so it can neither
  // re-buffer an event into a just-flushed coalescer nor double-release
  // one this flush already emitted (exactly-once quiesce, the drain-pool
  // regression in tests/stress). Distinct drain shards keep draining.
  for (auto& ds : drain_shards_) {
    std::unique_lock<std::mutex> drain = lock_drain(*ds);
    for (const std::size_t idx : ds->owned) {
      Shard& shard = *shards_[idx];
      std::vector<event::Event> popped;
      while (auto ev = shard.ready.try_pop(now)) {
        popped.push_back(std::move(*ev));
      }
      if (!popped.empty()) {
        step.consumed += popped.size();
        ds->drained.fetch_add(popped.size(), std::memory_order_relaxed);
        coalesce_into(shard, std::move(popped), step);
      }
    }
    for (const std::size_t idx : ds->owned) {
      Shard& shard = *shards_[idx];
      std::lock_guard lock(shard.mu);
      for (event::Event& out : shard.coalescer.flush_all()) {
        account_send(shard, out, step);
        step.to_send.push_back(std::move(out));
      }
    }
  }
  return step;
}

void ShardedPipelineCore::install(const rules::MirrorFunctionSpec& spec) {
  checkpoint_every_.store(spec.checkpoint_every == 0 ? 50
                                                     : spec.checkpoint_every);
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    rules::MirroringParams params = shard->engine.params();
    params.function = spec;
    shard->engine.install(std::move(params));
    shard->coalescer.configure(spec.coalesce_enabled, spec.coalesce_max);
  }
}

void ShardedPipelineCore::install_params(rules::MirroringParams params) {
  const std::uint32_t every = params.function.checkpoint_every;
  checkpoint_every_.store(every == 0 ? 50 : every);
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    shard->coalescer.configure(params.function.coalesce_enabled,
                               params.function.coalesce_max);
    shard->engine.install(params);
  }
}

rules::MirrorFunctionSpec ShardedPipelineCore::current_spec() const {
  std::lock_guard lock(shards_[0]->mu);
  return shards_[0]->engine.params().function;
}

std::size_t ShardedPipelineCore::ready_size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->ready.size();
  return total;
}

std::size_t ShardedPipelineCore::shard_ready_size(std::size_t shard) const {
  return shards_[shard]->ready.size();
}

std::uint64_t ShardedPipelineCore::shard_received(std::size_t shard) const {
  return shards_[shard]->received.load(std::memory_order_relaxed);
}

std::uint64_t ShardedPipelineCore::drain_shard_drained(std::size_t d) const {
  return drain_shards_[d]->drained.load(std::memory_order_relaxed);
}

double ShardedPipelineCore::shard_imbalance() const {
  std::uint64_t total = 0;
  std::uint64_t peak = 0;
  for (const auto& shard : shards_) {
    const std::uint64_t r = shard->received.load(std::memory_order_relaxed);
    total += r;
    peak = std::max(peak, r);
  }
  if (total == 0) return 0.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(shards_.size());
  return static_cast<double>(peak) / mean;
}

rules::RuleCounters ShardedPipelineCore::rule_counters() const {
  rules::RuleCounters merged;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    merged += shard->engine.counters();
  }
  return merged;
}

PipelineCounters ShardedPipelineCore::counters() const {
  PipelineCounters out;
  out.received = received_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    out.enqueued += shard->enqueued.load(std::memory_order_relaxed);
    out.sent += shard->sent.load(std::memory_order_relaxed);
    out.bytes_sent += shard->bytes_sent.load(std::memory_order_relaxed);
  }
  out.checkpoints_due = checkpoints_due_.load(std::memory_order_relaxed);
  return out;
}

void ShardedPipelineCore::instrument(obs::Registry& registry,
                                     const std::string& site) {
  // One rx shard: the view delegates and the classic queue.<site>.backup.*
  // names are byte-identical to the unsharded queue. N > 1: aggregate
  // names on the view (depth = sum, high_water = max per segment,
  // trim_events fed once per commit with the merged size) plus
  // per-segment queue.<site>.shard<k>.backup.* families.
  backup_view_.instrument(registry, "queue." + site + ".backup");
  if (shards_.size() > 1) {
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      shards_[k]->backup.instrument(
          registry,
          "queue." + site + ".shard" + std::to_string(k) + ".backup");
    }
  }
  // Resolve the registry sinks before taking any shard lock: counter()
  // locks the registry, and Registry::snapshot() invokes the probes
  // registered below while holding that same lock — resolving under a
  // shard lock would invert the two orders. Every shard shares the same
  // sinks (registry counters are atomic), so `rules.<site>.*` stays the
  // merged total regardless of shard count.
  const auto rule_sinks =
      rules::RuleEngine::resolve_counters(registry, "rules." + site);
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    shard->engine.install_counters(rule_sinks);
  }
  if (shards_.size() == 1) {
    shards_[0]->ready.instrument(registry, "queue." + site + ".ready");
  } else {
    // Per-segment queues under shard<k>, plus the classic aggregate names
    // (sum over segments; high_water is the max per-segment mark, a floor
    // on the true simultaneous total) so dashboards and adaptation inputs
    // keep working unchanged.
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      shards_[k]->ready.instrument(
          registry,
          "queue." + site + ".shard" + std::to_string(k) + ".ready");
    }
    probes_.add(registry, "queue." + site + ".ready.depth", [this] {
      return static_cast<double>(ready_size());
    });
    probes_.add(registry, "queue." + site + ".ready.pushed_total", [this] {
      std::uint64_t total = 0;
      for (const auto& shard : shards_) total += shard->ready.pushed_count();
      return static_cast<double>(total);
    });
    probes_.add(registry, "queue." + site + ".ready.high_water", [this] {
      std::size_t peak = 0;
      for (const auto& shard : shards_) {
        peak = std::max(peak, shard->ready.high_water());
      }
      return static_cast<double>(peak);
    });
  }
  const std::string prefix = "pipeline." + site;
  probes_.add(registry, prefix + ".received_total", [this] {
    return static_cast<double>(received_.load(std::memory_order_relaxed));
  });
  probes_.add(registry, prefix + ".enqueued_total", [this] {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->enqueued.load(std::memory_order_relaxed);
    }
    return static_cast<double>(total);
  });
  probes_.add(registry, prefix + ".sent_total", [this] {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->sent.load(std::memory_order_relaxed);
    }
    return static_cast<double>(total);
  });
  probes_.add(registry, prefix + ".bytes_sent_total", [this] {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->bytes_sent.load(std::memory_order_relaxed);
    }
    return static_cast<double>(total);
  });
  probes_.add(registry, prefix + ".checkpoints_due_total", [this] {
    return static_cast<double>(
        checkpoints_due_.load(std::memory_order_relaxed));
  });
  if (shards_.size() > 1) {
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      const std::string sp = prefix + ".shard" + std::to_string(k);
      Shard* shard = shards_[k].get();
      probes_.add(registry, sp + ".received_total", [shard] {
        return static_cast<double>(
            shard->received.load(std::memory_order_relaxed));
      });
      probes_.add(registry, sp + ".enqueued_total", [shard] {
        return static_cast<double>(
            shard->enqueued.load(std::memory_order_relaxed));
      });
      probes_.add(registry, sp + ".ready_depth", [shard] {
        return static_cast<double>(shard->ready.size());
      });
    }
    probes_.add(registry, prefix + ".shard_imbalance",
                [this] { return shard_imbalance(); });
  }
  // Drain-side contention metrics (OBSERVABILITY.md "Parallel drain").
  // The lock-wait histogram registers at every shard count so a D=1 run
  // provides the "before" profile the bench sweep compares against;
  // per-drain-shard counters appear only when the drain is actually
  // sharded, mirroring the rx shard<k> convention.
  drain_lock_wait_.store(
      &registry.histogram(prefix + ".drain.lock_wait_ns",
                          obs::Histogram::latency_bounds()),
      std::memory_order_release);
  probes_.add(registry, prefix + ".drain.drained_total", [this] {
    std::uint64_t total = 0;
    for (const auto& ds : drain_shards_) {
      total += ds->drained.load(std::memory_order_relaxed);
    }
    return static_cast<double>(total);
  });
  if (drain_shards_.size() > 1) {
    for (std::size_t k = 0; k < drain_shards_.size(); ++k) {
      DrainShard* ds = drain_shards_[k].get();
      probes_.add(registry,
                  prefix + ".drain.shard" + std::to_string(k) +
                      ".drained_total",
                  [ds] {
                    return static_cast<double>(
                        ds->drained.load(std::memory_order_relaxed));
                  });
    }
  }
}

}  // namespace admire::mirror
