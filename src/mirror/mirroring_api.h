// The paper's Table 1 mirroring API, verbatim surface:
//
//   init(int c, int number, int l)    initialize mirroring w/ parameters
//   mirror()                          execute mirroring function
//   fwd()                             execute forwarding function
//   set_mirror(void* func)            set new mirroring function
//   set_fwd(void* func)               set new forwarding function
//   set_params(int c, int number, int f)
//   set_overwrite(ev_type t, int l)
//   set_complex_seq(t1, *value, t2)
//   set_complex_tuple(*t, *values, n)
//   set_adapt(int p_id, int p)
//   set_monitor_values(index, p, s)
//
// MirroringApi is the type-safe C++ rendering: configuration calls build a
// MirroringParams + AdaptationPolicy; bind() attaches the API to a running
// central site's pipeline so mirror()/fwd()/checkpoint() act on it.
#pragma once

#include <functional>
#include <mutex>
#include <optional>
#include <span>

#include "adapt/controller.h"
#include "event/event.h"
#include "mirror/pipeline_core.h"
#include "rules/params.h"

namespace admire::mirror {

/// Receives events the mirroring/forwarding functions emit.
using EventSink = std::function<void(const event::Event&)>;

/// Batch-capable sink: receives a whole send step's worth of events in one
/// call so the delivery path (channel fan-out, vectored transport) can
/// amortize per-event costs. Optional — sites that don't provide one fall
/// back to per-event EventSink delivery.
using BatchEventSink = std::function<void(std::span<const event::Event>)>;

/// A custom mirroring/forwarding function (set_mirror/set_fwd): receives
/// the event plus the default sink so it can delegate, filter or transform.
using CustomFunction =
    std::function<void(const event::Event&, const EventSink& fallthrough)>;

class MirroringApi {
 public:
  MirroringApi();

  // --- Configuration (Table 1) ------------------------------------------
  /// init(c, number, l): coalescing on/off, max coalesced, and default
  /// overwrite sequence length. Re-initializes previous configuration.
  MirroringApi& init(bool coalesce, std::uint32_t number, std::uint32_t l);

  /// set_params(c, number, f): coalesce up to `number`; checkpoint at `f`.
  MirroringApi& set_params(bool coalesce, std::uint32_t number,
                           std::uint32_t checkpoint_every);

  /// set_overwrite(t, l).
  MirroringApi& set_overwrite(event::EventType t, std::uint32_t l);

  /// Type/content filter (§1): drop matching events from the mirror
  /// stream. Empty matcher = filter every event of the type.
  MirroringApi& set_filter(event::EventType t,
                           rules::EventMatcher drop_if = nullptr);

  /// set_complex_seq(t1, value, t2).
  MirroringApi& set_complex_seq(event::EventType t1, rules::EventMatcher value,
                                event::EventType t2);

  /// set_complex_tuple(t[], values[], n): the full rule object form.
  MirroringApi& set_complex_tuple(rules::ComplexTupleRule rule);

  /// set_adapt(p_id, p): when adaptation engages, modify parameter p_id by
  /// p percent.
  MirroringApi& set_adapt(adapt::ParamId p_id, int percent);

  /// Adaptation in function-switch form (the paper's Fig. 9 usage).
  MirroringApi& set_adapt_function(rules::MirrorFunctionSpec engaged_spec);

  /// set_monitor_values(index, p, s).
  MirroringApi& set_monitor_values(adapt::MonitoredVariable index,
                                   double primary, double secondary);

  /// set_mirror(func) / set_fwd(func).
  MirroringApi& set_mirror(CustomFunction func);
  MirroringApi& set_fwd(CustomFunction func);

  /// Install a whole function preset (simple/selective/...).
  MirroringApi& use_function(rules::MirrorFunctionSpec spec);

  /// Seed the API's configuration from an existing parameter set (used by
  /// hosting sites constructed with a ready-made MirroringParams).
  MirroringApi& load(const rules::MirroringParams& params);

  // --- Materialized configuration ---------------------------------------
  rules::MirroringParams params() const;
  adapt::AdaptationPolicy adaptation_policy() const;
  bool adaptation_configured() const { return !thresholds_.empty(); }

  // --- Runtime binding ----------------------------------------------------
  /// Attach to a running pipeline (sharded or the single-shard
  /// PipelineCore). `mirror_sink` delivers to all mirror sites' aux units;
  /// `fwd_sink` to the local main unit; `checkpoint_trigger` opens a
  /// checkpoint round. `mirror_batch_sink`, when provided, lets
  /// mirror_batch() deliver a whole send step in one call (custom mirror
  /// functions still see events one at a time). Hosting sites running a
  /// per-destination transmit stage bind both sinks to a publish that fans
  /// the batch into one outbox per destination — delivery to a destination
  /// then completes asynchronously on that destination's tx worker, in
  /// publish order.
  void bind(ShardedPipelineCore* core, EventSink mirror_sink,
            EventSink fwd_sink, std::function<void()> checkpoint_trigger,
            BatchEventSink mirror_batch_sink = nullptr);

  bool bound() const { return core_ != nullptr; }

  /// mirror(): run the (custom or default) mirroring function on `ev`.
  void mirror(const event::Event& ev) const;

  /// Batched mirror(): one call per send step. Uses the batch sink when
  /// bound with one and no custom mirroring function is installed;
  /// otherwise degrades to per-event mirror() semantics.
  void mirror_batch(std::span<const event::Event> events) const;

  /// fwd(): run the (custom or default) forwarding function on `ev`.
  void fwd(const event::Event& ev) const;

  /// checkpoint(): invoke the checkpointing procedure now.
  void checkpoint() const;

  /// Push configuration changes made after bind() into the live pipeline.
  void reinstall() const;

 private:
  rules::MirrorFunctionSpec function_;
  std::vector<rules::OverwriteRule> overwrite_rules_;
  std::vector<rules::FilterRule> filter_rules_;
  std::vector<rules::ComplexSeqRule> complex_seq_rules_;
  std::vector<rules::ComplexTupleRule> complex_tuple_rules_;
  std::vector<adapt::ThresholdSpec> thresholds_;
  std::vector<adapt::ParamAdjustment> adjustments_;
  std::optional<rules::MirrorFunctionSpec> engaged_spec_;

  // Guards the hooks/sinks: set_mirror()/set_fwd() may be called at
  // runtime while site tasks are invoking mirror()/fwd() concurrently.
  mutable std::mutex hooks_mu_;
  CustomFunction custom_mirror_;
  CustomFunction custom_fwd_;

  ShardedPipelineCore* core_ = nullptr;  // not owned
  EventSink mirror_sink_;
  BatchEventSink mirror_batch_sink_;
  EventSink fwd_sink_;
  std::function<void()> checkpoint_trigger_;
};

}  // namespace admire::mirror
