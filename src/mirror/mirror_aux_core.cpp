#include "mirror/mirror_aux_core.h"

namespace admire::mirror {

void MirrorAuxCore::on_mirrored(event::Event ev, Nanos now) {
  {
    std::lock_guard lock(mu_);
    ++received_;
  }
  backup_.push(ev);
  ready_.push(std::move(ev), now);
}

std::optional<event::Event> MirrorAuxCore::next_for_main(Nanos now) {
  return ready_.try_pop(now);
}

void MirrorAuxCore::instrument(obs::Registry& registry,
                               const std::string& site) {
  ready_.instrument(registry, "queue." + site + ".ready");
  backup_.instrument(registry, "queue." + site + ".backup");
  probes_.add(registry, "mirror." + site + ".received_total", [this] {
    std::lock_guard lock(mu_);
    return static_cast<double>(received_);
  });
}

checkpoint::ControlMessage MirrorAuxCore::relay_chkpt(
    const checkpoint::ControlMessage& m) {
  return m;
}

std::optional<checkpoint::ControlMessage> MirrorAuxCore::relay_reply(
    const checkpoint::ControlMessage& reply) {
  // Guard: drop replies for views this aux already applied a commit for —
  // they can no longer influence the (monotone) coordinator commit.
  if (participant_.applied().dominates(reply.vts) &&
      !(participant_.applied() == reply.vts) && !backup_.contains(reply.vts)) {
    return std::nullopt;
  }
  return reply;
}

checkpoint::ControlMessage MirrorAuxCore::on_commit(
    const checkpoint::ControlMessage& m) {
  participant_.apply_commit(m, backup_);
  return m;
}

}  // namespace admire::mirror
