#include "cluster/cluster.h"

#include <chrono>
#include <future>
#include <thread>

namespace admire::cluster {

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      clock_(std::make_shared<SteadyClock>()),
      registry_(std::make_shared<echo::ChannelRegistry>()),
      lb_(config_.lb) {
  if (!config_.obs) config_.obs = std::make_shared<obs::Registry>();
  // Every echo channel (existing and future) reports msgs/bytes under
  // transport.channel.<name>.*.
  registry_->instrument_all(*config_.obs);
  lb_.instrument(*config_.obs);
  recovery_metrics_.instrument(*config_.obs);

  CentralSiteConfig central_config;
  central_config.params = config_.params;
  central_config.adaptation = config_.adaptation;
  central_config.num_streams = config_.num_streams;
  central_config.rx_shards = config_.rx_shards;
  central_config.rx_threads = config_.rx_threads;
  central_config.drain_shards = config_.drain_shards;
  central_config.burn_per_event = config_.burn_per_event;
  central_config.obs = config_.obs.get();
  central_config.trace_sample_every = config_.trace_sample_every;
  central_config.tx_queue_cap = config_.tx_queue_cap;
  central_config.tx_policy = config_.tx_policy;
  central_config.serve = config_.serve;
  central_ = std::make_unique<ThreadedCentralSite>(
      central_config, registry_, clock_, config_.num_mirrors);

  for (std::size_t i = 0; i < config_.num_mirrors; ++i) {
    MirrorSiteConfig mc;
    mc.site = next_site_id_++;
    mc.burn_per_event = config_.burn_per_event;
    mc.burn_per_request = config_.burn_per_request;
    mc.serve = config_.serve;
    mc.obs = config_.obs.get();
    mirrors_.push_back(
        std::make_unique<ThreadedMirrorSite>(mc, registry_, clock_));
  }

  if (!config_.oplog_path.empty()) {
    oplog_ = std::make_unique<oplog::LogWriter>(config_.oplog_path);
    if (oplog_->ok()) {
      oplog_sub_ = registry_->by_name("central.updates")
                       ->subscribe([this](const event::Event& ev) {
                         (void)oplog_->append(ev);
                       });
    }
  }

  if (config_.central_serves_requests) {
    central_requests_ = std::make_unique<RequestService>(
        [this](std::uint64_t id) {
          return central_->serve_request(id, config_.burn_per_request);
        },
        clock_);
    lb_.add_target(LoadBalancer::Target{
        "central",
        [this](std::uint64_t id, ServiceCallback cb) {
          return central_requests_->submit(id, std::move(cb));
        },
        [this] { return central_requests_->pending(); },
        [this](const serve::Request& req) {
          return central_->serving().handle(req).response;
        }});
  }
  for (std::size_t i = 0; i < mirrors_.size(); ++i) {
    auto* site = mirrors_[i].get();
    lb_.add_target(LoadBalancer::Target{
        "mirror" + std::to_string(site->site()),
        [site](std::uint64_t id, ServiceCallback cb) {
          return site->submit_request(id, std::move(cb));
        },
        [site] { return site->pending_requests(); },
        [site](const serve::Request& req) {
          return site->serving().handle(req).response;
        }});
  }
  failed_.assign(mirrors_.size(), false);

  if (config_.control_plane) {
    control_plane_ =
        std::make_unique<ControlPlane>(*config_.control_plane, *this);
  }
}

Cluster::~Cluster() { stop(); }

void Cluster::start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  central_->start();
  {
    std::lock_guard lock(membership_mu_);
    for (auto& m : mirrors_) m->start();
  }
  if (central_requests_) central_requests_->start();
  if (control_plane_) control_plane_->start();
  if (config_.serve_front_end && !front_end_) {
    serve::FrontEndConfig fc;
    fc.port = config_.serve_port;
    auto fe = serve::FrontEnd::start(
        fc, [this](const serve::Request& req) { return serve(req); },
        config_.obs.get(), "front");
    if (fe) front_end_ = std::move(fe).value();
  }
  if (!config_.obs_export_path.empty()) {
    obs::ExporterOptions opts;
    opts.path = config_.obs_export_path;
    opts.interval = config_.obs_export_interval;
    exporter_ =
        std::make_unique<obs::SnapshotExporter>(*config_.obs, std::move(opts));
    if (!exporter_->start().is_ok()) exporter_.reset();
  }
}

void Cluster::stop() {
  if (!started_.exchange(false)) return;
  // The front door goes first so no client request races site teardown.
  if (front_end_) front_end_->stop();
  // The control plane next: its monitor thread drives fail/rejoin and
  // must be quiescent before membership is torn down underneath it.
  if (control_plane_) control_plane_->stop();
  if (exporter_) exporter_->stop();  // writes a final snapshot
  if (central_requests_) central_requests_->stop();
  // Central stops first: its shutdown flushes the per-destination outboxes
  // into the still-live mirror inboxes, and each mirror's event loop then
  // folds the remainder when its own (closed) inbox drains — so a plain
  // stop() loses nothing that reached the send path.
  central_->stop();
  std::vector<ThreadedMirrorSite*> mirrors;
  {
    std::lock_guard lock(membership_mu_);
    for (auto& m : mirrors_) mirrors.push_back(m.get());
  }
  for (auto* m : mirrors) m->stop();
}

ThreadedMirrorSite& Cluster::mirror(std::size_t i) {
  std::lock_guard lock(membership_mu_);
  return *mirrors_.at(i);
}

std::size_t Cluster::num_mirrors() const {
  std::lock_guard lock(membership_mu_);
  return mirrors_.size();
}

Status Cluster::ingest(event::Event ev) {
  return central_->ingest(std::move(ev));
}

void Cluster::drain() {
  central_->drain();
  std::vector<ThreadedMirrorSite*> mirrors;
  {
    std::lock_guard lock(membership_mu_);
    for (auto& m : mirrors_) mirrors.push_back(m.get());
  }
  for (auto* m : mirrors) m->drain();
}

void Cluster::checkpoint_and_wait(std::chrono::milliseconds timeout) {
  const std::uint64_t target = central_->coordinator().rounds_committed() + 1;
  central_->trigger_checkpoint();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (central_->coordinator().rounds_committed() < target &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

Status Cluster::submit_request(std::uint64_t request_id,
                               ServiceCallback callback) {
  return lb_.route(request_id, std::move(callback));
}

serve::Response Cluster::serve(const serve::Request& req) {
  auto routed = lb_.serve(req);
  if (routed) return std::move(routed).value();
  // No routable site (failover window, shutdown race): tell the client to
  // back off and retry, the same contract as an admission shed.
  serve::Response resp;
  resp.id = req.id;
  resp.code = serve::ResponseCode::kRetryAfter;
  resp.retry_after_ms = config_.serve.retry_after_ms;
  return resp;
}

Result<std::vector<event::Event>> Cluster::request_snapshot(
    std::uint64_t request_id, std::chrono::milliseconds timeout) {
  auto promise =
      std::make_shared<std::promise<std::vector<event::Event>>>();
  auto future = promise->get_future();
  auto status = submit_request(
      request_id, [promise](std::uint64_t, std::vector<event::Event> chunks) {
        promise->set_value(std::move(chunks));
      });
  if (!status.is_ok()) return status;
  if (future.wait_for(timeout) != std::future_status::ready) {
    return err(StatusCode::kTimeout, "snapshot request timed out");
  }
  return future.get();
}

void Cluster::fail_mirror(std::size_t i) {
  ThreadedMirrorSite* victim = nullptr;
  {
    std::lock_guard lock(membership_mu_);
    if (i >= mirrors_.size()) return;
    if (failed_.size() < mirrors_.size()) {
      failed_.resize(mirrors_.size(), false);
    }
    if (failed_[i]) return;  // double-fail: membership already shrank
    failed_[i] = true;
    victim = mirrors_[i].get();
    // Out of the request pool before its threads stop, so no route lands
    // on a half-dead site.
    lb_.set_health("mirror" + std::to_string(victim->site()),
                   TargetHealth::kDown);
  }
  victim->stop();
  // Drop the dead site's monitor values from the adaptation controller so
  // its final (typically inflated) readings stop pinning the cluster
  // maxima, and a replacement incarnation reusing the SiteId starts fresh.
  if (auto* controller = central_->controller()) {
    controller->forget_site(victim->site());
  }
  // Discard the dead destination's transmit outbox (everything queued for
  // it is shed and counted in tx.<dest>.dropped_total) and retire its tx
  // worker. After the stop() above: the closed inbox has unblocked any
  // worker mid-push, so the remove cannot deadlock on a full dead mirror.
  central_->drop_tx_destination("mirror" + std::to_string(victim->site()));
  // Checkpoint membership shrinks; an unblocked commit is broadcast so the
  // surviving sites are not left waiting on the dead one. The coordinator
  // serializes this against in-flight rounds internally; membership_mu_
  // serializes it against concurrent fail/join membership changes.
  auto& coord = central_->coordinator();
  auto commit = coord.set_expected_replies(coord.expected_replies() - 1);
  if (commit.has_value()) {
    central_->core().backup().trim_committed(commit->vts);
    central_->main_unit().on_commit(*commit);
    auto ctrl_down = registry_->by_name("ctrl.down");
    if (ctrl_down) ctrl_down->submit(checkpoint::to_control_event(*commit));
  }
}

bool Cluster::mirror_failed(std::size_t i) const {
  std::lock_guard lock(membership_mu_);
  return i < failed_.size() && failed_[i];
}

Result<std::size_t> Cluster::join_new_mirror(std::size_t donor) {
  JoinOptions options;
  options.donor = donor;
  return join_new_mirror(options);
}

Result<std::size_t> Cluster::join_new_mirror(const JoinOptions& options) {
  const std::size_t chunk_records =
      options.chunk_records.value_or(config_.recovery_chunk_records);
  const auto chunk_interval =
      options.chunk_interval.value_or(config_.recovery_chunk_interval);
  const Nanos join_start = clock_->now();

  // Phase 1 (membership locked): allocate the identity, subscribe, and
  // resolve the donor. Subscribe FIRST so no event falls between the donor
  // state transfer and the live stream; the inbox buffers until start().
  // The tx destination must exist before any state is captured: an event
  // published before the outbox existed never reaches the joiner's buffer,
  // so its only carrier is the transferred state — the barrier below makes
  // sure the donor has folded it before the first capture. Everything
  // published after flows through the new outbox (duplicates are
  // RejoinFilter'd). A re-used destination name resumes the same
  // tx.<dest>.* counters — sequence continuity across the fail/rejoin
  // cycle stays visible.
  std::unique_ptr<ThreadedMirrorSite> site;
  mirror::MainUnitCore* donor_main = nullptr;
  SiteId site_id = 0;
  event::VectorTimestamp subscribe_watermark;
  {
    std::lock_guard lock(membership_mu_);
    if (options.donor > mirrors_.size()) {
      return err(StatusCode::kInvalidArgument, "no such donor site");
    }
    if (options.donor != 0 && failed_[options.donor - 1]) {
      return err(StatusCode::kInvalidArgument, "donor site has failed");
    }
    MirrorSiteConfig mc;
    mc.site = next_site_id_++;
    mc.burn_per_event = config_.burn_per_event;
    mc.burn_per_request = config_.burn_per_request;
    mc.serve = config_.serve;
    mc.obs = config_.obs.get();
    site = std::make_unique<ThreadedMirrorSite>(mc, registry_, clock_);
    site_id = mc.site;
    central_->add_tx_destination("mirror" + std::to_string(mc.site));
    // Central progress as of the subscription: everything folded at the
    // central at or before this point may have been published before the
    // joiner's outbox existed.
    subscribe_watermark = central_->main_unit().progress();
    // Stable across the unlocked phase: mirror slots are never erased
    // (fail_mirror freezes them in place), and the unique_ptr targets
    // survive vector growth.
    donor_main = options.donor == 0
                     ? &central_->main_unit()
                     : &mirrors_[options.donor - 1]->main_unit();
  }

  // Phase 2 (UNLOCKED): stream the donor's state. The donor's fold lock is
  // held only inside each capture and membership_mu_ not at all, so the
  // donor keeps serving and the cluster keeps routing/failing/joining
  // while a large table transfers.
  //
  // Capture barrier (the threaded analog of the DES busy_until() wait):
  // the donor must first catch up to everything published before the
  // subscription. A mirror donor lags the central by its rx queue; an
  // event it folds only after its key-range's capture is in no chunk, and
  // one published before the subscription is in no buffer either — lost
  // with no error. The central donor passes immediately (it folds before
  // it publishes). A donor that deliberately tracks a stream subset never
  // catches up — fail the join loudly rather than seed partial state.
  if (options.donor != 0) {
    const auto barrier_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!donor_main->progress().dominates(subscribe_watermark)) {
      if (std::chrono::steady_clock::now() >= barrier_deadline) {
        central_->drop_tx_destination("mirror" + std::to_string(site_id));
        return err(StatusCode::kUnavailable,
                   "donor never caught up to the live stream");
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  Status status;
  if (chunk_records == 0) {
    // Legacy monolithic bootstrap: one snapshot, one restore point.
    const auto package = recovery::build_bootstrap_package(
        *donor_main, next_recovery_request_.fetch_add(1));
    status = site->seed_from(package);
  } else {
    recovery::ChunkCursor cursor(*donor_main, chunk_records);
    std::size_t index = 0;
    while (!cursor.done()) {
      const Nanos capture_start = clock_->now();
      const auto chunk = cursor.next();
      const Nanos pause_ns = clock_->now() - capture_start;
      status = site->install_chunk(chunk);
      if (!status.is_ok()) break;
      if (recovery_metrics_.chunks != nullptr) {
        recovery_metrics_.chunks->inc();
        recovery_metrics_.bytes->inc(chunk.records.size());
        recovery_metrics_.donor_pause->observe(static_cast<double>(pause_ns));
      }
      if (options.on_chunk) options.on_chunk(index);
      ++index;
      if (!cursor.done() && chunk_interval.count() > 0) {
        std::this_thread::sleep_for(chunk_interval);
      }
    }
    if (status.is_ok()) {
      status = site->arm_rejoin_filter(cursor.ranges(), cursor.end_anchor());
    }
  }
  if (!status.is_ok()) {
    // The half-joined site never started and never entered membership;
    // retire its tx outbox so the central stage stops queueing for a
    // destination that will never drain.
    central_->drop_tx_destination("mirror" + std::to_string(site_id));
    return status;
  }

  // Phase 3 (membership locked): go live and join the pools.
  std::lock_guard lock(membership_mu_);
  site->start();
  auto& coord = central_->coordinator();
  (void)coord.set_expected_replies(coord.expected_replies() + 1);
  auto* raw = site.get();
  lb_.add_target(LoadBalancer::Target{
      "mirror" + std::to_string(site_id),
      [raw](std::uint64_t id, ServiceCallback cb) {
        return raw->submit_request(id, std::move(cb));
      },
      [raw] { return raw->pending_requests(); },
      [raw](const serve::Request& req) {
        return raw->serving().handle(req).response;
      }});
  mirrors_.push_back(std::move(site));
  failed_.push_back(false);
  if (recovery_metrics_.bootstraps != nullptr) {
    recovery_metrics_.bootstraps->inc();
    recovery_metrics_.reintegration->observe(
        static_cast<double>(clock_->now() - join_start));
  }
  return mirrors_.size() - 1;
}

std::vector<std::uint64_t> Cluster::state_fingerprints() const {
  std::lock_guard lock(membership_mu_);
  std::vector<std::uint64_t> out;
  out.push_back(central_->main_unit().state().fingerprint());
  for (const auto& m : mirrors_) {
    out.push_back(m->main_unit().state().fingerprint());
  }
  return out;
}

}  // namespace admire::cluster
