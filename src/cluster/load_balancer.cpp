#include "cluster/load_balancer.h"

namespace admire::cluster {

void LoadBalancer::add_target(Target target) {
  std::lock_guard lock(mu_);
  if (obs_ != nullptr) {
    (void)obs_->counter("cluster.lb.picks." + target.name);
  }
  targets_.push_back(std::move(target));
  routed_.resize(targets_.size(), 0);
}

std::size_t LoadBalancer::num_targets() const {
  std::lock_guard lock(mu_);
  return targets_.size();
}

void LoadBalancer::set_health(const std::string& name, TargetHealth health) {
  std::lock_guard lock(mu_);
  for (auto& t : targets_) {
    if (t.name == name) t.health = health;
  }
}

TargetHealth LoadBalancer::health(const std::string& name) const {
  std::lock_guard lock(mu_);
  for (const auto& t : targets_) {
    if (t.name == name) return t.health;
  }
  return TargetHealth::kDown;
}

std::size_t LoadBalancer::pick_locked() {
  // Routable set: healthy targets, or degraded ones when nothing is healthy.
  std::vector<std::size_t> candidates;
  candidates.reserve(targets_.size());
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (targets_[i].health == TargetHealth::kHealthy) candidates.push_back(i);
  }
  if (candidates.empty()) {
    for (std::size_t i = 0; i < targets_.size(); ++i) {
      if (targets_[i].health == TargetHealth::kDegraded) {
        candidates.push_back(i);
      }
    }
  }
  if (candidates.empty()) return targets_.size();
  if (candidates.size() < targets_.size()) ++rerouted_;

  if (policy_ == LbPolicy::kLeastLoaded) {
    std::size_t best = candidates[0];
    std::uint64_t best_pending =
        targets_[best].pending ? targets_[best].pending() : 0;
    for (std::size_t c = 1; c < candidates.size(); ++c) {
      const std::size_t i = candidates[c];
      const std::uint64_t p = targets_[i].pending ? targets_[i].pending() : 0;
      if (p < best_pending) {
        best_pending = p;
        best = i;
      }
    }
    return best;
  }
  const std::uint64_t c = cursor_.fetch_add(1, std::memory_order_relaxed);
  return candidates[c % candidates.size()];
}

Status LoadBalancer::route(std::uint64_t request_id,
                           ServiceCallback callback) {
  std::function<Status(std::uint64_t, ServiceCallback)> submit;
  {
    std::lock_guard lock(mu_);
    if (targets_.empty()) {
      return err(StatusCode::kNotFound, "no request targets registered");
    }
    const std::size_t idx = pick_locked();
    if (idx >= targets_.size()) {
      if (obs_ != nullptr) obs_->counter("cluster.lb.unroutable_total").inc();
      return err(StatusCode::kUnavailable, "no routable request target");
    }
    if (routed_.size() < targets_.size()) routed_.resize(targets_.size(), 0);
    ++routed_[idx];
    if (obs_ != nullptr) {
      obs_->counter("cluster.lb.picks." + targets_[idx].name).inc();
    }
    submit = targets_[idx].submit;
  }
  // Submit outside the lock: the target may complete synchronously and its
  // callback must be free to query the balancer.
  return submit(request_id, std::move(callback));
}

Result<serve::Response> LoadBalancer::serve(const serve::Request& req) {
  std::function<serve::Response(const serve::Request&)> handler;
  {
    std::lock_guard lock(mu_);
    if (targets_.empty()) {
      return err(StatusCode::kNotFound, "no request targets registered");
    }
    const std::size_t idx = pick_locked();
    if (idx >= targets_.size()) {
      if (obs_ != nullptr) obs_->counter("cluster.lb.unroutable_total").inc();
      return err(StatusCode::kUnavailable, "no routable request target");
    }
    if (!targets_[idx].serve) {
      return err(StatusCode::kUnavailable,
                 "target '" + targets_[idx].name + "' has no serving plane");
    }
    if (routed_.size() < targets_.size()) routed_.resize(targets_.size(), 0);
    ++routed_[idx];
    if (obs_ != nullptr) {
      obs_->counter("cluster.lb.picks." + targets_[idx].name).inc();
    }
    handler = targets_[idx].serve;
  }
  // Handle outside the lock — the handler may do a full table scan.
  return handler(req);
}

void LoadBalancer::instrument(obs::Registry& registry) {
  std::lock_guard lock(mu_);
  obs_ = &registry;
  // Pre-create so the snapshot shows zero-pick targets too.
  for (const auto& t : targets_) {
    (void)registry.counter("cluster.lb.picks." + t.name);
  }
}

std::vector<std::uint64_t> LoadBalancer::routed_counts() const {
  std::lock_guard lock(mu_);
  return routed_;
}

std::uint64_t LoadBalancer::rerouted_count() const {
  std::lock_guard lock(mu_);
  return rerouted_;
}

}  // namespace admire::cluster
