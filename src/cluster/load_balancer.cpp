#include "cluster/load_balancer.h"

namespace admire::cluster {

std::size_t LoadBalancer::pick() {
  if (targets_.empty()) return 0;
  if (policy_ == LbPolicy::kLeastLoaded) {
    std::size_t best = 0;
    std::uint64_t best_pending = targets_[0].pending ? targets_[0].pending() : 0;
    for (std::size_t i = 1; i < targets_.size(); ++i) {
      const std::uint64_t p = targets_[i].pending ? targets_[i].pending() : 0;
      if (p < best_pending) {
        best_pending = p;
        best = i;
      }
    }
    return best;
  }
  return cursor_.fetch_add(1, std::memory_order_relaxed) % targets_.size();
}

Status LoadBalancer::route(std::uint64_t request_id,
                           ServiceCallback callback) {
  if (targets_.empty()) {
    return err(StatusCode::kNotFound, "no request targets registered");
  }
  const std::size_t idx = pick();
  {
    std::lock_guard lock(mu_);
    if (routed_.size() < targets_.size()) routed_.resize(targets_.size(), 0);
    ++routed_[idx];
    if (obs_ != nullptr) {
      obs_->counter("cluster.lb.picks." + targets_[idx].name).inc();
    }
  }
  return targets_[idx].submit(request_id, std::move(callback));
}

void LoadBalancer::instrument(obs::Registry& registry) {
  std::lock_guard lock(mu_);
  obs_ = &registry;
  // Pre-create so the snapshot shows zero-pick targets too.
  for (const auto& t : targets_) {
    (void)registry.counter("cluster.lb.picks." + t.name);
  }
}

std::vector<std::uint64_t> LoadBalancer::routed_counts() const {
  std::lock_guard lock(mu_);
  return routed_;
}

}  // namespace admire::cluster
