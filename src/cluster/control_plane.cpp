#include "cluster/control_plane.h"

#include <stdexcept>
#include <string>

#include "cluster/cluster.h"
#include "common/logging.h"

namespace admire::cluster {

namespace {
std::string target_name(SiteId site) {
  return "mirror" + std::to_string(site);
}
}  // namespace

ControlPlane::ControlPlane(ControlPlaneConfig config, Cluster& cluster)
    : config_(std::move(config)),
      cluster_(cluster),
      detector_(config_.detector),
      clock_(cluster.clock()) {
  detector_.instrument(cluster_.obs());
  rejoin_ns_ = &cluster_.obs().histogram("fd.rejoin_time_ns",
                                         obs::Histogram::latency_bounds());
}

ControlPlane::~ControlPlane() { stop(); }

void ControlPlane::start() {
  if (started_) return;
  started_ = true;
  epoch_ = clock_->now();
  actions_ = config_.schedule.expanded();
  schedule_cursor_ = 0;
  for (std::size_t i = 0; i < cluster_.num_mirrors(); ++i) attach_mirror(i);
  {
    std::lock_guard lock(wake_mu_);
    stop_ = false;
  }
  monitor_thread_ = std::thread([this] { monitor_loop(); });
}

void ControlPlane::stop() {
  {
    std::lock_guard lock(wake_mu_);
    if (!started_) return;
    stop_ = true;
  }
  wake_cv_.notify_all();
  if (monitor_thread_.joinable()) monitor_thread_.join();
  {
    std::lock_guard lock(mu_);
    for (auto& ctl : ctls_) ctl.link->close();
  }
  started_ = false;
}

SiteId ControlPlane::wire_mirror(std::size_t i) {
  ThreadedMirrorSite& mirror = cluster_.mirror(i);
  const SiteId site = mirror.site();
  auto [mirror_end, central_end] = transport::make_inprocess_link_pair(256);
  auto faulty = std::make_shared<faultinject::FaultyLink>(
      std::move(central_end), config_.fault_seed + site, clock_);
  faulty->instrument(cluster_.obs(), "hb." + target_name(site));
  mirror.start_heartbeats(std::move(mirror_end),
                          config_.detector.heartbeat_interval);
  MirrorCtl ctl;
  ctl.index = i;
  ctl.site = site;
  ctl.link = std::move(faulty);
  std::lock_guard lock(mu_);
  ctls_.push_back(std::move(ctl));
  return site;
}

void ControlPlane::attach_mirror(std::size_t i) {
  const SiteId site = wire_mirror(i);
  detector_.track(site, clock_->now());
}

faultinject::FaultyLink& ControlPlane::fault(std::size_t i) {
  std::lock_guard lock(mu_);
  for (auto& ctl : ctls_) {
    if (ctl.index == i) return *ctl.link;
  }
  throw std::out_of_range("no control-plane entry for mirror " +
                          std::to_string(i));
}

Result<std::size_t> ControlPlane::rejoin_mirror(std::size_t i) {
  SiteId site = 0;
  {
    std::lock_guard lock(mu_);
    for (auto& ctl : ctls_) {
      if (ctl.index == i) site = ctl.site;
    }
  }
  if (site == 0) {
    return err(StatusCode::kNotFound, "mirror not under control plane");
  }
  if (detector_.health(site) != fd::Health::kDead) {
    return err(StatusCode::kInvalidArgument,
               "rejoin target is not a dead mirror");
  }
  return do_rejoin(site, clock_->now());
}

std::vector<ControlPlane::RejoinRecord> ControlPlane::rejoin_records() const {
  std::lock_guard lock(mu_);
  return rejoins_;
}

void ControlPlane::monitor_loop() {
  while (true) {
    {
      std::unique_lock lock(wake_mu_);
      wake_cv_.wait_for(lock, config_.poll_interval,
                        [this] { return stop_; });
      if (stop_) return;
    }
    const Nanos now = clock_->now();
    std::vector<fd::Transition> transitions;
    drain_links(now, transitions);
    auto polled = detector_.poll(now);
    transitions.insert(transitions.end(), polled.begin(), polled.end());
    react(transitions, now);
    apply_due_schedule(now);
    run_pending_rejoins(now);
  }
}

void ControlPlane::drain_links(Nanos now, std::vector<fd::Transition>& out) {
  // Snapshot the link set: the vector only grows (monitor thread is the
  // sole mutator while running) and links are shared_ptrs.
  std::vector<std::shared_ptr<faultinject::FaultyLink>> links;
  {
    std::lock_guard lock(mu_);
    links.reserve(ctls_.size());
    for (const auto& ctl : ctls_) links.push_back(ctl.link);
  }
  for (const auto& link : links) {
    while (auto m = link->receive_for(std::chrono::milliseconds(0))) {
      auto hb = fd::decode_heartbeat(ByteSpan(m->data(), m->size()));
      if (!hb.is_ok()) continue;  // foreign traffic; not a protocol error
      auto ts = detector_.on_heartbeat(hb.value(), now);
      out.insert(out.end(), ts.begin(), ts.end());
    }
  }
}

void ControlPlane::react(const std::vector<fd::Transition>& transitions,
                         Nanos now) {
  auto* controller = cluster_.central().controller();
  for (const auto& t : transitions) {
    switch (t.to) {
      case fd::Health::kSuspect:
        cluster_.load_balancer().set_health(target_name(t.site),
                                            TargetHealth::kDegraded);
        if (controller != nullptr) {
          controller->set_site_excluded(t.site, true);
        }
        break;
      case fd::Health::kDead: {
        cluster_.load_balancer().set_health(target_name(t.site),
                                            TargetHealth::kDown);
        std::size_t index = 0;
        {
          std::lock_guard lock(mu_);
          for (auto& ctl : ctls_) {
            if (ctl.site != t.site) continue;
            index = ctl.index;
            ctl.failed = true;
            ctl.dead_at = t.at;
            if (config_.auto_rejoin) {
              ctl.rejoin_pending = true;
              ctl.rejoin_due = now + config_.rejoin_after;
            }
          }
        }
        ADMIRE_LOG(kWarn, "control-plane: mirror site ", t.site,
                   " declared dead");
        if (config_.auto_fail) cluster_.fail_mirror(index);
        break;
      }
      case fd::Health::kAlive:
        cluster_.load_balancer().set_health(target_name(t.site),
                                            TargetHealth::kHealthy);
        if (controller != nullptr) {
          controller->set_site_excluded(t.site, false);
        }
        if (t.from == fd::Health::kRejoining) {
          std::lock_guard lock(mu_);
          for (auto& r : rejoins_) {
            if (r.new_site == t.site && r.rejoined_at == 0) {
              r.rejoined_at = t.at;
              if (rejoin_ns_ != nullptr && r.dead_at != 0) {
                rejoin_ns_->observe(static_cast<double>(t.at - r.dead_at));
              }
            }
          }
        }
        break;
      case fd::Health::kRejoining:
        break;  // bootstrap in progress; nothing to adjust yet
    }
  }
}

void ControlPlane::apply_due_schedule(Nanos now) {
  const Nanos rel = now - epoch_;
  while (schedule_cursor_ < actions_.size() &&
         actions_[schedule_cursor_].at <= rel) {
    const auto f = actions_[schedule_cursor_++];
    if (f.kind == faultinject::FaultKind::kRejoin) {
      std::lock_guard lock(mu_);
      for (auto& ctl : ctls_) {
        if (ctl.index == f.mirror) {
          ctl.rejoin_pending = true;
          ctl.rejoin_due = now;
        }
      }
      continue;
    }
    std::shared_ptr<faultinject::FaultyLink> link;
    {
      std::lock_guard lock(mu_);
      for (auto& ctl : ctls_) {
        if (ctl.index == f.mirror) link = ctl.link;
      }
    }
    if (link) faultinject::Schedule::apply(f, *link);
  }
}

void ControlPlane::run_pending_rejoins(Nanos now) {
  std::vector<SiteId> due;
  {
    std::lock_guard lock(mu_);
    for (auto& ctl : ctls_) {
      if (!ctl.rejoin_pending || now < ctl.rejoin_due) continue;
      // Wait until the detector has actually declared the site dead — a
      // scheduled rejoin may be scripted before detection completes.
      if (detector_.health(ctl.site) != fd::Health::kDead) continue;
      ctl.rejoin_pending = false;
      due.push_back(ctl.site);
    }
  }
  for (SiteId site : due) {
    auto result = do_rejoin(site, now);
    if (!result.is_ok()) {
      ADMIRE_LOG(kError, "control-plane: rejoin for dead site ", site,
                 " failed: ", result.status().message());
    }
  }
}

Result<std::size_t> ControlPlane::do_rejoin(SiteId dead_site, Nanos now) {
  auto joined = cluster_.join_new_mirror(0);
  if (!joined.is_ok()) return joined;
  const std::size_t new_index = joined.value();
  const SiteId new_site = wire_mirror(new_index);
  Nanos dead_at = 0;
  {
    std::lock_guard lock(mu_);
    for (const auto& ctl : ctls_) {
      if (ctl.site == dead_site) dead_at = ctl.dead_at;
    }
    rejoins_.push_back(RejoinRecord{dead_site, new_site, dead_at, 0});
  }
  detector_.begin_rejoin(dead_site, new_site, now);
  ADMIRE_LOG(kInfo, "control-plane: site ", new_site,
             " bootstrapping to replace dead site ", dead_site);
  return new_index;
}

}  // namespace admire::cluster
