// TxStage: the per-destination transmit half of the §3.2.1 sending task.
// The drain shards keep coalescing / backup accounting / per-flight FIFO
// serialized per flight key (each drain shard under its own lock — see
// sharded_pipeline_core.h), but instead of writing to every outgoing
// channel inline they publish each SendStep's events into one bounded
// outbox per destination (each mirror channel plus the local fwd path),
// and a dedicated tx worker drains each outbox into its sink. A dead-slow
// destination therefore fills only its own outbox — the backpressure
// policy decides whether the publisher blocks on it or the oldest queued
// batches are shed — while healthy destinations keep draining at full
// speed (TerraServer-style slow-component isolation; per-replica sender
// queues as in Middleware-based Database Replication).
//
// Ordering: publish() appends a batch to every open outbox atomically per
// outbox (per-outbox lock), and each outbox is drained FIFO by one worker,
// so per-destination delivery order equals publish order. Concurrent
// publishers (the drain pool) interleave whole batches, never events
// within a batch — and since a flight is drained by exactly one drain
// shard, per-flight FIFO survives end to end for any drain shard count.
// kDropOldest may shed whole batches from an outbox's front, which drops
// events but never reorders the survivors.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "event/event.h"
#include "obs/registry.h"

namespace admire::cluster {

/// What publish() does when a destination's outbox is at tx_queue_cap.
enum class TxPolicy : std::uint8_t {
  kBlock = 0,      ///< publisher waits for the worker (lossless backpressure)
  kDropOldest = 1  ///< shed the oldest queued batches (bounded staleness)
};

struct TxStageConfig {
  /// Per-destination outbox capacity in events; 0 = unbounded. A batch
  /// larger than the cap is still accepted when the outbox is empty, so an
  /// oversized SendStep cannot deadlock a kBlock publisher.
  std::size_t queue_cap = 0;
  TxPolicy policy = TxPolicy::kBlock;
  /// When set, each destination registers tx.<dest>.{enqueued,sent,dropped,
  /// stalls}_total counters and a tx.<dest>.depth probe.
  obs::Registry* obs = nullptr;
};

class TxStage {
 public:
  using BatchSink = std::function<void(std::span<const event::Event>)>;

  explicit TxStage(TxStageConfig config);
  ~TxStage();

  TxStage(const TxStage&) = delete;
  TxStage& operator=(const TxStage&) = delete;

  /// Add a destination. Its worker starts immediately if the stage is
  /// running, otherwise on start(). Re-adding a previously removed name
  /// resumes the same obs counters, so sequence continuity across a
  /// fail/rejoin cycle is visible in the metrics. No-op if live.
  void add_destination(const std::string& name, BatchSink sink);

  /// Remove a destination: mark it closed (unblocking any publisher waiting
  /// on its cap), discard everything still queued (counted as dropped), and
  /// join its worker. The sink must already be unblocked — callers stop the
  /// mirror (closing its inbox) *before* dropping its destination. No-op if
  /// unknown.
  void remove_destination(const std::string& name);

  /// Spawn a worker per registered destination. Idempotent.
  void start();

  /// Drain every outbox to empty, then join all workers. Queued batches are
  /// delivered, not dropped — stop() is a flush, matching the BoundedQueue
  /// close-then-drain convention. Idempotent.
  void stop();

  /// Copy `events` into every open outbox (event copies are refcount bumps)
  /// applying the backpressure policy per destination. Safe for concurrent
  /// publishers — the drain pool's sending tasks all publish here; batches
  /// enqueue atomically per outbox, so publishers interleave whole batches
  /// and a single publisher's batches stay in its publish order.
  void publish(std::span<const event::Event> events);

  /// Block until every outbox is empty and no sink call is in flight — the
  /// tx analogue of the recv-side quiesce in drain().
  void quiesce();

  std::vector<std::string> destination_names() const;
  bool has_destination(const std::string& name) const;

  /// Aggregate counters across live destinations (removed destinations'
  /// history lives only in the obs registry).
  std::uint64_t total_enqueued() const;
  std::uint64_t total_sent() const;
  std::uint64_t total_dropped() const;
  std::uint64_t total_stalls() const;

  std::uint64_t sent_to(const std::string& name) const;
  std::uint64_t dropped_from(const std::string& name) const;
  std::size_t depth_of(const std::string& name) const;

 private:
  struct Outbox {
    std::string name;
    BatchSink sink;

    std::mutex mu;
    std::condition_variable cv;          // worker waits: batch available/close
    std::condition_variable drained_cv;  // publisher/quiesce waits: space/empty
    std::deque<std::vector<event::Event>> batches;
    std::size_t queued_events = 0;  // Σ batch sizes, for the cap check
    bool open = true;               // false: no new batches accepted
    bool draining = false;          // worker is inside sink()
    std::thread worker;

    std::atomic<std::uint64_t> enqueued{0};
    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> stalls{0};

    obs::Counter* obs_enqueued = nullptr;
    obs::Counter* obs_sent = nullptr;
    obs::Counter* obs_dropped = nullptr;
    obs::Counter* obs_stalls = nullptr;
    obs::ProbeGroup probes;
  };

  void worker_loop(Outbox& box);
  void spawn_worker_locked(Outbox& box);
  void enqueue_into(Outbox& box, std::span<const event::Event> events);
  std::shared_ptr<Outbox> find(const std::string& name) const;

  const TxStageConfig config_;
  mutable std::mutex mu_;  // guards outboxes_ membership + running_
  bool running_ = false;
  std::vector<std::shared_ptr<Outbox>> outboxes_;
};

}  // namespace admire::cluster
