#include "cluster/central_site.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace admire::cluster {

using checkpoint::ControlKind;
using checkpoint::ControlMessage;

ThreadedCentralSite::ThreadedCentralSite(
    CentralSiteConfig config, std::shared_ptr<echo::ChannelRegistry> registry,
    std::shared_ptr<Clock> clock, std::size_t num_mirrors)
    : config_(std::move(config)),
      registry_(std::move(registry)),
      clock_(std::move(clock)),
      num_mirrors_(num_mirrors),
      core_(config_.params, config_.num_streams,
            mirror::ShardedPipelineCore::resolve_shards(config_.rx_shards),
            mirror::ShardedPipelineCore::resolve_drain_shards(
                config_.drain_shards,
                mirror::ShardedPipelineCore::resolve_shards(
                    config_.rx_shards))),
      main_(kCentralSite),
      serving_(&main_.state(), config_.serve, clock_),
      coordinator_(kCentralSite, /*expected_replies=*/1 + num_mirrors),
      control_inbox_(1024),
      tx_(TxStageConfig{config_.tx_queue_cap, config_.tx_policy, config_.obs}),
      update_delays_(kSecond) {
  const std::size_t rx = std::max<std::size_t>(1, config_.rx_threads);
  inboxes_.reserve(rx);
  for (std::size_t i = 0; i < rx; ++i) {
    inboxes_.push_back(
        std::make_unique<BoundedQueue<event::Event>>(config_.inbox_capacity));
  }
  drainers_.reserve(core_.num_drain_shards());
  for (std::size_t d = 0; d < core_.num_drain_shards(); ++d) {
    drainers_.push_back(std::make_unique<Drainer>());
  }
  if (config_.adaptation.has_value()) {
    controller_.emplace(*config_.adaptation);
  }
  if (config_.obs != nullptr) {
    core_.instrument(*config_.obs, "central");
    serving_.instrument(*config_.obs, "central");
    if (controller_.has_value()) controller_->instrument(*config_.obs);
    coordinator_.instrument(*config_.obs, "checkpoint.coordinator");
    request_service_ns_ =
        &config_.obs->histogram("cluster.central.request_service_ns",
                                obs::Histogram::latency_bounds());
    if (config_.trace_sample_every > 0) {
      tracer_ = std::make_unique<obs::Tracer>(config_.trace_sample_every,
                                              /*capacity=*/256, config_.obs);
      core_.set_tracer(tracer_.get());
    }
    send_probes_.add(*config_.obs, "cluster.central.send.credits_granted_total",
                     [this] {
                       return static_cast<double>(credits_granted_.load());
                     });
    send_probes_.add(*config_.obs, "cluster.central.send.credits_consumed_total",
                     [this] {
                       return static_cast<double>(credits_consumed_.load());
                     });
    send_probes_.add(*config_.obs, "cluster.central.send.batches_total",
                     [this] {
                       return static_cast<double>(send_batches_.load());
                     });
    send_probes_.add(*config_.obs, "cluster.central.send.pending_credits",
                     [this] {
                       return static_cast<double>(pending_send_credits());
                     });
  }
  data_channel_ = registry_->create_auto("central.data", echo::ChannelRole::kData);
  updates_channel_ =
      registry_->create_auto("central.updates", echo::ChannelRole::kData);
  ctrl_down_ = registry_->create_auto("ctrl.down", echo::ChannelRole::kControl);
  ctrl_up_ = registry_->create_auto("ctrl.up", echo::ChannelRole::kControl);

  // Replies from mirrors land on ctrl.up; hand them to the control task.
  ctrl_up_sub_ = ctrl_up_->subscribe([this](const event::Event& ev) {
    auto msg = checkpoint::from_control_event(ev);
    if (!msg.is_ok()) return;
    if (msg.value().kind != ControlKind::kChkptReply) return;
    (void)control_inbox_.push(
        ControlItem{ControlItem::Kind::kReply, std::move(msg).value()});
  });

  // The "local" destination covers the channel's anonymous subscribers
  // (in-process taps, tests); mirror/bridge destinations are registered by
  // name in start() / add_tx_destination().
  tx_.add_destination(kLocalTxDestination,
                      [this](std::span<const event::Event> events) {
                        data_channel_->submit_batch_unnamed(events);
                      });

  api_.load(config_.params);
  api_.bind(
      &core_,
      /*mirror_sink=*/
      [this](const event::Event& ev) {
        publish_mirror(std::span<const event::Event>(&ev, 1));
      },
      /*fwd_sink=*/
      [this](const event::Event& ev) {
        obs::Tracer* tracer = core_.tracer();
        const bool traced = tracer != nullptr &&
                            event::is_data_event(ev.type()) &&
                            tracer->sampled(ev.seq());
        const std::uint64_t tkey =
            traced ? obs::Tracer::key_of(ev.stream(), ev.seq()) : 0;
        if (traced) {
          tracer->record(tkey, obs::Stage::kForward, clock_->now());
        }
        const auto outputs = main_.process(ev);
        serving_.on_state_update(ev.header().key);  // cache freshness
        if (traced) tracer->record(tkey, obs::Stage::kApply, clock_->now());
        ede_processed_.fetch_add(1, std::memory_order_relaxed);
        if (config_.burn_per_event > 0) burn_for(config_.burn_per_event);
        for (const auto& out : outputs) {
          const Nanos now = clock_->now();
          update_delays_.add(out.header().ingress_time,
                             now - out.header().ingress_time);
          updates_channel_->submit(out);
        }
      },
      /*checkpoint_trigger=*/[this] { trigger_checkpoint(); },
      /*mirror_batch_sink=*/
      [this](std::span<const event::Event> events) { publish_mirror(events); });
}

ThreadedCentralSite::~ThreadedCentralSite() { stop(); }

void ThreadedCentralSite::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  for (auto& drainer : drainers_) {
    std::lock_guard lock(drainer->mu);
    drainer->stop = false;
  }
  // Pick up every named central.data destination subscribed so far (mirror
  // sites, remote bridges) and start their tx workers before any traffic.
  refresh_tx_destinations();
  tx_.start();
  recv_threads_.reserve(inboxes_.size());
  for (std::size_t i = 0; i < inboxes_.size(); ++i) {
    recv_threads_.emplace_back([this, i] { recv_loop(i); });
  }
  for (std::size_t d = 0; d < drainers_.size(); ++d) {
    drainers_[d]->thread = std::thread([this, d] { send_loop(d); });
  }
  control_thread_ = std::thread([this] { control_loop(); });
}

void ThreadedCentralSite::stop() {
  serving_.begin_shutdown();
  if (!running_.exchange(false)) return;
  // Shutdown ordering is the PR 6 bugfix, kept per drainer: a sending
  // task used to watch running_ and could exit while recv threads were
  // still draining closed inboxes and granting credits — those enqueued
  // events were silently never mirrored. Order now: (1) close + join the
  // receiving tasks, so every credit that will ever be granted has been;
  // (2) signal every sending task, each of which exits only at zero
  // credits; (3) flush the per-destination outboxes; (4) retire the
  // control task.
  for (auto& inbox : inboxes_) inbox->close();
  for (auto& t : recv_threads_) {
    if (t.joinable()) t.join();
  }
  recv_threads_.clear();
  for (auto& drainer : drainers_) {
    {
      std::lock_guard lock(drainer->mu);
      drainer->stop = true;
    }
    drainer->cv.notify_all();
  }
  for (auto& drainer : drainers_) {
    if (drainer->thread.joinable()) drainer->thread.join();
  }
  tx_.stop();
  control_inbox_.close();
  if (control_thread_.joinable()) control_thread_.join();
}

Status ThreadedCentralSite::ingest(event::Event ev) {
  ev.mutable_header().ingress_time = clock_->now();
  ingested_.fetch_add(1, std::memory_order_relaxed);
  // Route by flight hash: one flight -> one rx thread, so the pipeline
  // sees every flight's events in ingest order no matter how many
  // receiving tasks run.
  const std::size_t idx =
      mirror::ShardedPipelineCore::shard_of_key(ev.key(), inboxes_.size());
  return inboxes_[idx]->push(std::move(ev));
}

std::size_t ThreadedCentralSite::drainer_of_key(FlightKey key) const {
  return mirror::ShardedPipelineCore::drain_shard_of(
      mirror::ShardedPipelineCore::shard_of_key(key, core_.num_shards()),
      drainers_.size());
}

void ThreadedCentralSite::recv_loop(std::size_t inbox_idx) {
  while (auto ev = inboxes_[inbox_idx]->pop()) {
    // The drain shard is a pure function of the flight key; capture it
    // before the event moves into the pipeline. A combined (tuple
    // completion) event carries the same key, so both credits of one
    // outcome route to the same drainer.
    const std::size_t d = drainer_of_key(ev->key());
    const auto outcome = core_.on_incoming(std::move(*ev), clock_->now());
    // fwd(): the main unit's EDE sees the full stream (§3.2.1 semantics:
    // rules reduce mirror traffic, not the regular clients' updates).
    if (outcome.forward.has_value()) api_.fwd(*outcome.forward);
    if (outcome.checkpoint_due) trigger_checkpoint();
    const std::uint64_t credits = (outcome.enqueued ? 1u : 0u) +
                                  (outcome.combined_enqueued ? 1u : 0u);
    if (credits > 0) {
      credits_granted_.fetch_add(credits, std::memory_order_relaxed);
      Drainer& drainer = *drainers_[d];
      {
        std::lock_guard lock(drainer.mu);
        drainer.credits += credits;
      }
      drainer.cv.notify_one();
    }
    // Counted after the credit grant: drain()'s quiesce predicate reads
    // recv_done_ first, so the grant must already be visible when the last
    // event is accounted as received.
    recv_done_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadedCentralSite::send_loop(std::size_t drain_shard) {
  Drainer& drainer = *drainers_[drain_shard];
  while (true) {
    std::uint64_t credits = 0;
    {
      std::unique_lock lock(drainer.mu);
      // stop (set only after the recv threads joined) is the exit signal,
      // not running_: a credit granted during shutdown must still be
      // turned into a send before this task may leave.
      drainer.cv.wait(lock, [&] { return drainer.credits > 0 || drainer.stop; });
      if (drainer.credits == 0 && drainer.stop) return;
      // Convert every accumulated credit into one batched send step: the
      // backlog that built up while this task was busy drains through a
      // single pop_batch + vectored fan-out instead of per-event steps.
      credits = std::exchange(drainer.credits, 0);
    }
    // Only this drain shard's segments are popped — concurrent sending
    // tasks merge at the TxStage outbox boundary, never inside the drain.
    auto step = core_.try_send_batch_shard(drain_shard, credits, clock_->now());
    if (step.has_value()) {
      if (!step->to_send.empty()) {
        send_batches_.fetch_add(1, std::memory_order_relaxed);
      }
      dispatch(*step);
    }
    // Honest accounting: this counts consumed credits, not wire sends —
    // coalescing may buffer everything a step consumed (empty to_send),
    // and core_.counters().sent tracks the events actually emitted.
    credits_consumed_.fetch_add(credits, std::memory_order_relaxed);
  }
}

void ThreadedCentralSite::dispatch(
    const mirror::ShardedPipelineCore::SendStep& step) {
  api_.mirror_batch(std::span<const event::Event>(step.to_send.data(),
                                                  step.to_send.size()));
}

void ThreadedCentralSite::publish_mirror(std::span<const event::Event> events) {
  if (events.empty()) return;
  // One logical submission fanned out to N destinations: account it once
  // so the aggregate transport.channel.central.data.* metrics and
  // submitted_count stay byte-identical to the serial single-submit path.
  data_channel_->note_batch(events);
  tx_.publish(events);
}

void ThreadedCentralSite::refresh_tx_destinations() {
  for (const auto& name : data_channel_->destinations()) {
    add_tx_destination(name);
  }
}

void ThreadedCentralSite::add_tx_destination(const std::string& name) {
  tx_.add_destination(name,
                      [this, name](std::span<const event::Event> events) {
                        data_channel_->submit_batch_to(name, events);
                      });
}

void ThreadedCentralSite::drop_tx_destination(const std::string& name) {
  tx_.remove_destination(name);
}

std::uint64_t ThreadedCentralSite::pending_send_credits() const {
  std::uint64_t total = 0;
  for (const auto& drainer : drainers_) {
    std::lock_guard lock(drainer->mu);
    total += drainer->credits;
  }
  return total;
}

void ThreadedCentralSite::trigger_checkpoint() {
  (void)control_inbox_.push(
      ControlItem{ControlItem::Kind::kStartRound, ControlMessage{}});
}

void ThreadedCentralSite::control_loop() {
  while (auto item = control_inbox_.pop()) {
    switch (item->kind) {
      case ControlItem::Kind::kStartRound:
        start_round();
        break;
      case ControlItem::Kind::kReply:
        handle_reply(item->msg);
        break;
    }
  }
}

void ThreadedCentralSite::start_round() {
  Bytes piggyback = evaluate_adaptation();
  const auto last = core_.backup().last_vts();
  ControlMessage chkpt = coordinator_.begin_round(
      last.value_or(core_.stamp()), std::move(piggyback), clock_->now());
  // Own main unit replies locally, without the network.
  handle_reply(main_.on_chkpt(chkpt));
  ctrl_down_->submit(checkpoint::to_control_event(chkpt));
}

void ThreadedCentralSite::handle_reply(const ControlMessage& reply) {
  if (!reply.piggyback.empty() && controller_.has_value()) {
    auto report = adapt::decode_report(
        ByteSpan(reply.piggyback.data(), reply.piggyback.size()));
    if (report.is_ok()) controller_->ingest(report.value());
  }
  auto commit = coordinator_.on_reply(reply, clock_->now());
  if (!commit.has_value()) return;
  core_.backup().trim_committed(commit->vts);
  main_.on_commit(*commit);
  ctrl_down_->submit(checkpoint::to_control_event(*commit));
}

Bytes ThreadedCentralSite::evaluate_adaptation() {
  if (!controller_.has_value()) return {};
  controller_->observe(kCentralSite,
                       adapt::MonitoredVariable::kReadyQueueLength,
                       static_cast<double>(core_.ready_size()));
  controller_->observe(kCentralSite,
                       adapt::MonitoredVariable::kBackupQueueLength,
                       static_cast<double>(core_.backup().size()));
  controller_->observe(kCentralSite, adapt::MonitoredVariable::kPendingRequests,
                       static_cast<double>(pending_requests_.load()));
  // End-to-end signals for the utility/bandit strategies (harmless extras
  // for the threshold strategy, which only reads its configured variables).
  controller_->observe(kCentralSite, adapt::MonitoredVariable::kUpdateDelayMs,
                       update_delays_.mean() / 1e6);
  const std::uint64_t shed = serving_.admission().shed();
  controller_->observe(
      kCentralSite, adapt::MonitoredVariable::kShedRate,
      static_cast<double>(shed - adaptation_shed_seen_));
  adaptation_shed_seen_ = shed;
  auto directive = controller_->evaluate();
  if (!directive.has_value()) return {};
  adaptation_transitions_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(adaptation_sequence_mu_);
    adaptation_sequence_.push_back(directive->engaged);
  }
  core_.install(directive->spec);
  ADMIRE_LOG(kInfo, "central: adaptation ",
             directive->engaged ? "ENGAGED" : "RELEASED", " -> ",
             directive->spec.name);
  return adapt::encode_directive(*directive);
}

void ThreadedCentralSite::drain() {
  // Phase 1: wait for the receiving and sending tasks to catch up. The
  // predicate reads the honest credit counters: every granted credit has
  // been consumed by the send task (credits_granted == credits_consumed +
  // pending, with pending 0 here).
  const auto inboxes_empty = [this] {
    for (const auto& inbox : inboxes_) {
      if (inbox->size() > 0) return false;
    }
    return true;
  };
  while (!inboxes_empty() || recv_done_.load() < ingested_.load() ||
         credits_consumed_.load() < credits_granted_.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  // Phase 2: flush coalescing buffers and dispatch the remainder inline.
  auto step = core_.flush(clock_->now());
  if (!step.to_send.empty()) dispatch(step);
  // Phase 3: wait for every destination's tx worker to empty its outbox —
  // only then has every mirrored event actually reached its channel.
  tx_.quiesce();
}

std::vector<event::Event> ThreadedCentralSite::serve_request(
    std::uint64_t request_id, Nanos burn) {
  pending_requests_.fetch_add(1, std::memory_order_relaxed);
  const Nanos start = clock_->now();
  auto chunks = main_.build_snapshot(request_id);
  if (burn > 0) burn_for(burn);
  if (request_service_ns_ != nullptr) {
    request_service_ns_->observe(static_cast<double>(clock_->now() - start));
  }
  pending_requests_.fetch_sub(1, std::memory_order_relaxed);
  return chunks;
}

}  // namespace admire::cluster
