// Cluster: single-process threaded deployment of the mirrored OIS server —
// one central site plus N mirror sites, wired through ECho event channels,
// with a request load balancer over all sites (the central site is the
// primary mirror, §3.1). This is the runtime used by integration tests and
// examples; the multi-process variant bridges the same channels over TCP
// (see examples/multiprocess_cluster.cpp).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/central_site.h"
#include "cluster/control_plane.h"
#include "cluster/load_balancer.h"
#include "cluster/mirror_site.h"
#include "cluster/request_service.h"
#include "obs/exporter.h"
#include "obs/registry.h"
#include "oplog/oplog.h"
#include "serve/front_end.h"

namespace admire::cluster {

struct ClusterConfig {
  std::size_t num_mirrors = 1;
  rules::MirroringParams params;
  std::optional<adapt::AdaptationPolicy> adaptation;
  LbPolicy lb = LbPolicy::kRoundRobin;
  /// When set, every state update the central EDE publishes is appended to
  /// a durable operational log at this base path (the §1 "logging"
  /// consumer). Segments rotate; see oplog/oplog.h.
  std::string oplog_path;
  /// Include the central site in the request pool (default: yes — it is
  /// the primary mirror).
  bool central_serves_requests = true;
  Nanos burn_per_event = 0;
  Nanos burn_per_request = 0;
  std::size_t num_streams = 2;
  /// Receive-side parallelism at the central site: flight-keyed pipeline
  /// shards (0 = auto, hardware-concurrency capped) and receiving tasks
  /// (see CentralSiteConfig::rx_shards / rx_threads).
  std::size_t rx_shards = 0;
  std::size_t rx_threads = 1;
  /// Send-side parallelism at the central site: flight-keyed drain shards,
  /// one sending task each (0 = auto, capped at the rx shard count; see
  /// CentralSiteConfig::drain_shards). 1 = the classic serialized drain.
  std::size_t drain_shards = 1;
  /// Send-side isolation: per-destination transmit outbox capacity in
  /// events (0 = unbounded) and the backpressure policy when a destination
  /// hits it (see TxStage / CentralSiteConfig).
  std::size_t tx_queue_cap = 0;
  TxPolicy tx_policy = TxPolicy::kBlock;
  /// Metrics registry the whole cluster instruments into. Null = the
  /// cluster creates a private one (recommended: keeps metric names unique
  /// when several clusters coexist in one process, e.g. under test).
  std::shared_ptr<obs::Registry> obs;
  /// When non-empty, a background exporter appends one JSON-lines metrics
  /// snapshot to this file every obs_export_interval while running (and a
  /// final one at stop()).
  std::string obs_export_path;
  std::chrono::milliseconds obs_export_interval{1000};
  /// Trace one data event in N through the central pipeline (0 = off).
  std::uint32_t trace_sample_every = 0;
  /// When set, the self-healing control plane runs: per-mirror heartbeat
  /// links, failure detection, automatic fail/rejoin (see control_plane.h).
  std::optional<ControlPlaneConfig> control_plane;
  /// Chunked rejoin (DESIGN.md §17): records per state chunk when a new
  /// mirror bootstraps via join_new_mirror. 0 = the legacy monolithic
  /// one-shot snapshot. With chunks, the donor's fold lock is held only
  /// per capture, so it keeps serving during the transfer.
  std::size_t recovery_chunk_records = 512;
  /// Pause between chunk captures — bounds the donor's transfer duty
  /// cycle (0 = stream chunks back to back).
  std::chrono::microseconds recovery_chunk_interval{0};
  /// Serving-plane knobs applied to every site (admission gate + snapshot
  /// cache); see SERVING.md.
  serve::ServeConfig serve;
  /// Start a TCP front door for the serving plane at start(): an epoll
  /// front end on 127.0.0.1:serve_port (0 = pick a free port, see
  /// serve_port()) routing framed requests across the sites via the load
  /// balancer.
  bool serve_front_end = false;
  std::uint16_t serve_port = 0;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  void start();
  void stop();

  /// Feed one source event into the central site.
  Status ingest(event::Event ev);

  /// Quiesce: every ingested event processed everywhere, coalescer flushed,
  /// mirrored copies folded into every mirror's state.
  void drain();

  /// Run the checkpoint procedure and wait for the commit to land
  /// everywhere (bounded wait).
  void checkpoint_and_wait(std::chrono::milliseconds timeout =
                               std::chrono::milliseconds(2000));

  /// Route a client initial-state request through the load balancer.
  Status submit_request(std::uint64_t request_id, ServiceCallback callback);

  /// Synchronous convenience: route a request and wait for its snapshot.
  Result<std::vector<event::Event>> request_snapshot(
      std::uint64_t request_id,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

  /// Serving plane: answer one initial-state request on whichever site the
  /// load balancer picks (health-aware). Unroutable clusters answer
  /// RETRY_AFTER so clients back off and retry, exactly as if shed.
  serve::Response serve(const serve::Request& req);

  /// TCP front door (null unless serve_front_end was configured).
  serve::FrontEnd* front_end() { return front_end_.get(); }
  /// Listening port of the front door; 0 when it is not running.
  std::uint16_t serve_port() const {
    return front_end_ ? front_end_->port() : 0;
  }

  /// Durable update log (nullptr unless configured via oplog_path).
  oplog::LogWriter* update_log() { return oplog_.get(); }

  ThreadedCentralSite& central() { return *central_; }
  ThreadedMirrorSite& mirror(std::size_t i);
  std::size_t num_mirrors() const;
  LoadBalancer& load_balancer() { return lb_; }
  /// Self-healing control plane (null unless configured).
  ControlPlane* control_plane() { return control_plane_.get(); }
  std::shared_ptr<echo::ChannelRegistry> registry() { return registry_; }
  std::shared_ptr<Clock> clock() { return clock_; }
  /// Cluster-wide metrics registry (always non-null after construction).
  obs::Registry& obs() { return *config_.obs; }
  std::shared_ptr<obs::Registry> obs_ptr() { return config_.obs; }

  /// State fingerprints: [central, mirror1, ...]. Equal values = converged
  /// replicas. Stopped (failed) mirrors are included as-is.
  std::vector<std::uint64_t> state_fingerprints() const;

  // --- Recovery (paper §6 future work) -----------------------------------
  /// Simulate a node failure: stop mirror `i`'s threads and detach it from
  /// the channels. Its slot remains (state frozen) for post-mortems.
  /// Idempotent and safe against concurrent callers and in-flight
  /// checkpoint rounds: a double fail (e.g. the failure detector and a
  /// test both reacting to the same death) shrinks membership exactly once.
  void fail_mirror(std::size_t i);

  /// True once fail_mirror(i) has completed for that slot.
  bool mirror_failed(std::size_t i) const;

  /// Per-join overrides for the chunked bootstrap.
  struct JoinOptions {
    std::size_t donor = 0;  ///< 0 = central, 1.. = mirror index+1
    /// Override ClusterConfig::recovery_chunk_records (0 = monolithic).
    std::optional<std::size_t> chunk_records;
    /// Override ClusterConfig::recovery_chunk_interval.
    std::optional<std::chrono::microseconds> chunk_interval;
    /// Test hook: runs after each chunk installs (argument = chunk index),
    /// OUTSIDE membership_mu_ and the donor's fold lock — a callback may
    /// therefore touch cluster membership APIs to prove neither is held.
    std::function<void(std::size_t)> on_chunk;
  };

  /// Bring a replacement mirror online at runtime: a new site subscribes,
  /// then bootstraps from `donor` (0 = central, 1.. = mirror index+1) —
  /// streaming bounded state chunks with per-range rejoin anchors
  /// (DESIGN.md §17), or via the legacy one-shot snapshot when the chunk
  /// size is 0 — starts, and joins the request pool. Membership is locked
  /// only around the join's bookends, never across the state transfer.
  /// Returns the new mirror's index.
  Result<std::size_t> join_new_mirror(std::size_t donor = 0);
  Result<std::size_t> join_new_mirror(const JoinOptions& options);

 private:
  ClusterConfig config_;
  std::shared_ptr<Clock> clock_;
  std::shared_ptr<echo::ChannelRegistry> registry_;
  std::unique_ptr<ThreadedCentralSite> central_;
  /// Guards membership: mirrors_/failed_ mutation (fail/join) and lookup.
  /// The unique_ptr targets are stable, so returned references outlive
  /// vector growth.
  mutable std::mutex membership_mu_;
  std::vector<std::unique_ptr<ThreadedMirrorSite>> mirrors_;
  std::vector<bool> failed_;
  std::unique_ptr<ControlPlane> control_plane_;
  std::unique_ptr<RequestService> central_requests_;
  std::unique_ptr<serve::FrontEnd> front_end_;
  std::unique_ptr<obs::SnapshotExporter> exporter_;
  std::unique_ptr<oplog::LogWriter> oplog_;
  echo::Subscription oplog_sub_;
  LoadBalancer lb_;
  recovery::RecoveryMetrics recovery_metrics_;
  std::atomic<bool> started_{false};
  SiteId next_site_id_ = 1;
  /// Atomic: bumped during the unlocked transfer phase of join_new_mirror,
  /// where concurrent joins may race.
  std::atomic<std::uint64_t> next_recovery_request_{1'000'000};
};

}  // namespace admire::cluster
