// Remote mirror sites: run a full mirror site in another process (or
// machine), attached to the central site over a single MessageLink with
// name-routed channel bridging. This packages the deployment shape of the
// paper's cluster — one OS image per site — as a reusable API:
//
//   central process:  Cluster server(config);
//                     server.start();
//                     auto handle = attach_remote_mirror(server, link);
//
//   mirror process:   RemoteMirrorHost host({.site = 7}, link);
//                     host.start();
//                     ... host.main_unit().state() replicates live ...
//
// The remote site participates in checkpointing (Fig. 3) exactly like an
// in-process mirror; the coordinator's membership is adjusted on attach.
#pragma once

#include <memory>

#include "cluster/cluster.h"
#include "echo/bridge.h"

namespace admire::cluster {

/// The mirror-process side: a complete mirror site whose channels are
/// bridged over `link` to the central process.
class RemoteMirrorHost {
 public:
  struct Config {
    SiteId site = 100;
    Nanos burn_per_event = 0;
  };

  RemoteMirrorHost(Config config,
                   std::shared_ptr<transport::MessageLink> link);
  ~RemoteMirrorHost();

  RemoteMirrorHost(const RemoteMirrorHost&) = delete;
  RemoteMirrorHost& operator=(const RemoteMirrorHost&) = delete;

  void start();
  void stop();

  /// Wait until all mirrored events received so far are folded into state.
  void drain();

  ThreadedMirrorSite& site() { return *site_; }
  mirror::MainUnitCore& main_unit() { return site_->main_unit(); }
  std::shared_ptr<echo::ChannelRegistry> registry() { return registry_; }

  /// Export an additional locally-created channel to the central process
  /// (e.g. an application results channel). Call before start().
  void export_channel(const std::shared_ptr<echo::EventChannel>& channel) {
    bridge_->export_channel(channel);
  }

 private:
  std::shared_ptr<echo::ChannelRegistry> registry_;
  std::shared_ptr<Clock> clock_;
  std::unique_ptr<ThreadedMirrorSite> site_;
  std::unique_ptr<echo::RemoteChannelBridge> bridge_;
};

/// Central-side handle for an attached remote mirror. Destroying it (or
/// calling detach()) tears down the bridge and shrinks checkpoint
/// membership.
class RemoteMirrorAttachment {
 public:
  RemoteMirrorAttachment(Cluster& cluster,
                         std::shared_ptr<transport::MessageLink> link);
  ~RemoteMirrorAttachment();

  RemoteMirrorAttachment(const RemoteMirrorAttachment&) = delete;
  RemoteMirrorAttachment& operator=(const RemoteMirrorAttachment&) = delete;

  void detach();

  std::uint64_t events_forwarded() const { return bridge_->forwarded(); }

  /// The named central.data destination this attachment's bridge drains
  /// (its own tx worker/outbox at the central site).
  const std::string& tx_destination() const { return tx_destination_; }

 private:
  Cluster& cluster_;
  std::unique_ptr<echo::RemoteChannelBridge> bridge_;
  std::string tx_destination_;
  bool attached_ = false;
};

/// Convenience: attach a remote mirror over `link` to a running cluster.
std::unique_ptr<RemoteMirrorAttachment> attach_remote_mirror(
    Cluster& cluster, std::shared_ptr<transport::MessageLink> link);

}  // namespace admire::cluster
