#include "cluster/mirror_site.h"

#include "common/logging.h"

namespace admire::cluster {

using checkpoint::ControlKind;
using checkpoint::ControlMessage;

ThreadedMirrorSite::ThreadedMirrorSite(
    MirrorSiteConfig config, std::shared_ptr<echo::ChannelRegistry> registry,
    std::shared_ptr<Clock> clock)
    : config_(config),
      registry_(std::move(registry)),
      clock_(std::move(clock)),
      aux_(config.site),
      main_(config.site),
      serving_(&main_.state(), config.serve, clock_),
      installed_spec_(rules::simple_mirroring()),
      inbox_(config.inbox_capacity),
      request_queue_(config.request_capacity),
      request_latency_(kSecond) {
  const std::string label = "mirror" + std::to_string(config.site);
  if (config_.obs != nullptr) {
    aux_.instrument(*config_.obs, label);
    serving_.instrument(*config_.obs, label);
    request_service_ns_ =
        &config_.obs->histogram("cluster." + label + ".request_service_ns",
                                obs::Histogram::latency_bounds());
    probes_.add(*config_.obs, "cluster." + label + ".pending_requests",
                [this] { return static_cast<double>(pending_requests_.load()); });
    probes_.add(*config_.obs, "cluster." + label + ".requests_served_total",
                [this] { return static_cast<double>(served_.load()); });
  }
  updates_channel_ =
      registry_->create_auto(label + ".updates", echo::ChannelRole::kData);
  auto data = registry_->by_name("central.data");
  auto ctrl_down = registry_->by_name("ctrl.down");
  ctrl_up_ = registry_->by_name("ctrl.up");
  if (!data || !ctrl_down || !ctrl_up_) {
    ADMIRE_LOG(kError, "mirror", config.site,
               ": central channels missing; create the central site first");
    return;
  }
  // Subscribe as a named destination: the central transmit stage drains one
  // outbox per mirror, so a full inbox here back-pressures (or sheds, per
  // policy) only this mirror's tx worker — never the other destinations.
  data_sub_ = data->subscribe_batch_as(
      label, [this](std::span<const event::Event> events) {
        for (const event::Event& ev : events) {
          received_.fetch_add(1, std::memory_order_relaxed);
          (void)inbox_.push(ev);
        }
      });
  ctrl_down_sub_ = ctrl_down->subscribe([this](const event::Event& ev) {
    auto msg = checkpoint::from_control_event(ev);
    if (msg.is_ok()) on_control(msg.value());
  });
}

ThreadedMirrorSite::~ThreadedMirrorSite() { stop(); }

void ThreadedMirrorSite::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  event_thread_ = std::thread([this] { event_loop(); });
  request_thread_ = std::thread([this] { request_loop(); });
}

void ThreadedMirrorSite::stop() {
  serving_.begin_shutdown();
  {
    std::lock_guard lock(hb_mu_);
    hb_stop_ = true;
  }
  hb_cv_.notify_all();
  if (hb_thread_.joinable()) hb_thread_.join();
  if (!running_.exchange(false)) return;
  data_sub_.reset();
  ctrl_down_sub_.reset();
  inbox_.close();
  request_queue_.close();
  if (event_thread_.joinable()) event_thread_.join();
  if (request_thread_.joinable()) request_thread_.join();
}

void ThreadedMirrorSite::start_heartbeats(
    std::shared_ptr<transport::MessageLink> out, Nanos interval) {
  if (hb_thread_.joinable() || !out || interval <= 0) return;
  hb_link_ = std::move(out);
  hb_interval_ = interval;
  {
    std::lock_guard lock(hb_mu_);
    hb_stop_ = false;
  }
  hb_thread_ = std::thread([this] { heartbeat_loop(); });
}

void ThreadedMirrorSite::heartbeat_loop() {
  std::unique_lock lock(hb_mu_);
  while (!hb_stop_) {
    fd::Heartbeat hb;
    hb.site = config_.site;
    hb.seq = hb_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    hb.queue_depth = inbox_.size() + aux_.ready().size();
    hb.last_applied = last_applied_.load(std::memory_order_relaxed);
    hb.sent_at = clock_->now();
    lock.unlock();
    (void)hb_link_->send(fd::encode_heartbeat(hb));  // best effort, see header
    lock.lock();
    hb_cv_.wait_for(lock, std::chrono::nanoseconds(hb_interval_),
                    [this] { return hb_stop_; });
  }
}

Status ThreadedMirrorSite::seed_from(const recovery::RecoveryPackage& package) {
  if (running_.load()) {
    return err(StatusCode::kInvalidArgument, "seed before start()");
  }
  auto status = recovery::install_package(package, main_);
  if (!status.is_ok()) return status;
  serving_.on_state_replaced();  // the whole table changed under the cache
  rejoin_filter_ = std::make_unique<recovery::RejoinFilter>(package.as_of);
  return Status::ok();
}

Status ThreadedMirrorSite::install_chunk(const recovery::StateChunk& chunk) {
  if (running_.load()) {
    return err(StatusCode::kInvalidArgument, "install chunks before start()");
  }
  return recovery::install_chunk(chunk, main_.state());
}

Status ThreadedMirrorSite::arm_rejoin_filter(
    std::vector<recovery::RejoinFilter::Range> ranges,
    const event::VectorTimestamp& as_of) {
  if (running_.load()) {
    return err(StatusCode::kInvalidArgument, "arm filter before start()");
  }
  main_.seed_progress(as_of);
  serving_.on_state_replaced();  // the whole table changed under the cache
  rejoin_filter_ = std::make_unique<recovery::RejoinFilter>(std::move(ranges));
  return Status::ok();
}

void ThreadedMirrorSite::event_loop() {
  while (auto ev = inbox_.pop()) {
    if (rejoin_filter_ && !rejoin_filter_->should_apply(*ev)) {
      processed_.fetch_add(1, std::memory_order_relaxed);  // accounted, skipped
      continue;
    }
    aux_.on_mirrored(std::move(*ev), clock_->now());
    while (auto next = aux_.next_for_main(clock_->now())) {
      if (config_.burn_per_event > 0) burn_for(config_.burn_per_event);
      const auto outputs = main_.process(*next);
      // The fold above may have changed this flight's row; drop every
      // cached serving answer that could include it BEFORE the event is
      // accounted as processed, so a post-drain() query is always fresh.
      serving_.on_state_update(next->header().key);
      last_applied_.store(next->header().ingress_time,
                          std::memory_order_relaxed);
      for (const auto& out : outputs) updates_channel_->submit(out);
      processed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

Status ThreadedMirrorSite::submit_request(std::uint64_t request_id,
                                          RequestCallback callback) {
  pending_requests_.fetch_add(1, std::memory_order_relaxed);
  auto status = request_queue_.push(
      PendingRequest{request_id, clock_->now(), std::move(callback)});
  if (!status.is_ok()) {
    pending_requests_.fetch_sub(1, std::memory_order_relaxed);
  }
  return status;
}

void ThreadedMirrorSite::request_loop() {
  while (auto req = request_queue_.pop()) {
    auto chunks = main_.build_snapshot(req->id);
    if (config_.burn_per_request > 0) burn_for(config_.burn_per_request);
    pending_requests_.fetch_sub(1, std::memory_order_relaxed);
    served_.fetch_add(1, std::memory_order_relaxed);
    const Nanos service_ns = clock_->now() - req->enqueued_at;
    request_latency_.add(req->enqueued_at, service_ns);
    if (request_service_ns_ != nullptr) {
      request_service_ns_->observe(static_cast<double>(service_ns));
    }
    if (req->callback) req->callback(req->id, std::move(chunks));
  }
}

void ThreadedMirrorSite::on_control(const ControlMessage& msg) {
  // Adaptation directives may ride on CHKPT or COMMIT (paper §3.2.2).
  if (!msg.piggyback.empty()) {
    auto directive = adapt::decode_directive(
        ByteSpan(msg.piggyback.data(), msg.piggyback.size()));
    if (directive.is_ok()) {
      if (auto spec = applier_.apply(directive.value())) {
        {
          std::lock_guard lock(spec_mu_);
          installed_spec_ = *spec;
        }
        ADMIRE_LOG(kInfo, "mirror", config_.site, ": installed function '",
                   spec->name, "'");
      }
    }
  }

  switch (msg.kind) {
    case ControlKind::kChkpt: {
      const auto relayed = aux_.relay_chkpt(msg);
      ControlMessage reply = main_.on_chkpt(relayed);
      auto forwarded = aux_.relay_reply(reply);
      if (!forwarded.has_value()) break;
      adapt::MonitorReport report;
      report.site = config_.site;
      report.samples = {
          {adapt::MonitoredVariable::kReadyQueueLength,
           static_cast<double>(inbox_.size() + aux_.ready().size())},
          {adapt::MonitoredVariable::kBackupQueueLength,
           static_cast<double>(aux_.backup().size())},
          {adapt::MonitoredVariable::kPendingRequests,
           static_cast<double>(pending_requests_.load())},
      };
      {
        // Serving-plane signal: sheds since the previous report (the
        // central utility/bandit strategies weigh it; threshold configs
        // that don't monitor kShedRate simply ignore the sample).
        const std::uint64_t shed = serving_.admission().shed();
        report.samples.push_back({adapt::MonitoredVariable::kShedRate,
                                  static_cast<double>(shed - shed_reported_)});
        shed_reported_ = shed;
      }
      forwarded->piggyback = adapt::encode_report(report);
      ctrl_up_->submit(checkpoint::to_control_event(*forwarded));
      break;
    }
    case ControlKind::kCommit: {
      const auto forwarded = aux_.on_commit(msg);
      main_.on_commit(forwarded);
      break;
    }
    case ControlKind::kChkptReply:
      break;  // not addressed to mirrors
  }
}

void ThreadedMirrorSite::drain() {
  while (running_.load() &&
         (inbox_.size() > 0 || processed_.load() < received_.load())) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

}  // namespace admire::cluster
