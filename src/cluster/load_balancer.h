// Request load balancing across the mirror pool (paper §1: "The resulting
// parallelization of request processing for clients coupled with simple
// load balancing strategies enables us to offer timely services").
#pragma once

#include <atomic>
#include <functional>
#include <vector>

#include "cluster/request_service.h"
#include "common/status.h"
#include "obs/registry.h"

namespace admire::cluster {

enum class LbPolicy : std::uint8_t {
  kRoundRobin = 0,   ///< rotate over all registered targets
  kLeastLoaded = 1,  ///< target with the fewest outstanding requests
};

class LoadBalancer {
 public:
  struct Target {
    std::string name;
    std::function<Status(std::uint64_t, ServiceCallback)> submit;
    std::function<std::uint64_t()> pending;
  };

  explicit LoadBalancer(LbPolicy policy = LbPolicy::kRoundRobin)
      : policy_(policy) {}

  void add_target(Target target) { targets_.push_back(std::move(target)); }
  std::size_t num_targets() const { return targets_.size(); }

  /// Route one request; returns the chosen target index via out-param
  /// semantics in the status message on failure.
  Status route(std::uint64_t request_id, ServiceCallback callback);

  /// Requests routed per target (distribution fairness checks).
  std::vector<std::uint64_t> routed_counts() const;

  /// Register one `cluster.lb.picks.<target name>` counter per target
  /// (covers targets added later too — route() resolves counters lazily).
  void instrument(obs::Registry& registry);

 private:
  std::size_t pick();

  LbPolicy policy_;
  std::vector<Target> targets_;
  std::atomic<std::uint64_t> cursor_{0};
  mutable std::mutex mu_;
  std::vector<std::uint64_t> routed_;
  obs::Registry* obs_ = nullptr;  // guarded by mu_
};

}  // namespace admire::cluster
