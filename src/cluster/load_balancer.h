// Request load balancing across the mirror pool (paper §1: "The resulting
// parallelization of request processing for clients coupled with simple
// load balancing strategies enables us to offer timely services").
//
// Health-aware routing: the failure-detection control plane marks targets
// degraded (suspect) or down (dead/failed). pick() only considers healthy
// targets; when none are healthy it falls back to degraded ones; down
// targets never receive requests. This is what bounds failed client
// requests during a failover to the detection window.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "cluster/request_service.h"
#include "common/status.h"
#include "obs/registry.h"
#include "serve/protocol.h"

namespace admire::cluster {

enum class LbPolicy : std::uint8_t {
  kRoundRobin = 0,   ///< rotate over all registered targets
  kLeastLoaded = 1,  ///< target with the fewest outstanding requests
};

enum class TargetHealth : std::uint8_t {
  kHealthy = 0,   ///< full member of the rotation
  kDegraded = 1,  ///< suspect: used only when no healthy target exists
  kDown = 2,      ///< dead/failed: never routed to
};

class LoadBalancer {
 public:
  struct Target {
    std::string name;
    std::function<Status(std::uint64_t, ServiceCallback)> submit;
    std::function<std::uint64_t()> pending;
    /// Serving-plane entry point (a site's RequestHandler). Optional:
    /// targets without one are answered kUnavailable when serve() picks
    /// them (legacy snapshot-only targets).
    std::function<serve::Response(const serve::Request&)> serve;
    TargetHealth health = TargetHealth::kHealthy;
  };

  explicit LoadBalancer(LbPolicy policy = LbPolicy::kRoundRobin)
      : policy_(policy) {}

  void add_target(Target target);
  std::size_t num_targets() const;

  /// Control-plane hook: change a target's health class. Unknown names are
  /// ignored (the target may already have been removed).
  void set_health(const std::string& name, TargetHealth health);
  TargetHealth health(const std::string& name) const;

  /// Route one request; returns the chosen target index via out-param
  /// semantics in the status message on failure.
  Status route(std::uint64_t request_id, ServiceCallback callback);

  /// Route one serving-plane request with the same policy and health
  /// fallback as route(). kUnavailable when no routable target exists or
  /// the picked target has no serve entry point.
  Result<serve::Response> serve(const serve::Request& req);

  /// Requests routed per target (distribution fairness checks).
  std::vector<std::uint64_t> routed_counts() const;

  /// Routes that skipped at least one non-healthy target.
  std::uint64_t rerouted_count() const;

  /// Register one `cluster.lb.picks.<target name>` counter per target
  /// (covers targets added later too — route() resolves counters lazily).
  void instrument(obs::Registry& registry);

 private:
  std::size_t pick_locked();

  LbPolicy policy_;
  std::atomic<std::uint64_t> cursor_{0};
  mutable std::mutex mu_;
  std::vector<Target> targets_;  // guarded by mu_ (grows at runtime on rejoin)
  std::vector<std::uint64_t> routed_;
  std::uint64_t rerouted_ = 0;
  obs::Registry* obs_ = nullptr;  // guarded by mu_
};

}  // namespace admire::cluster
