// TraceReplayer: replays a timed workload trace into a threaded cluster at
// real-time pace (optionally time-scaled) — the threaded counterpart of
// the simulator's open-loop source, used for latency-oriented demos and
// soak tests.
#pragma once

#include <atomic>
#include <thread>

#include "cluster/cluster.h"
#include "workload/trace.h"

namespace admire::cluster {

class TraceReplayer {
 public:
  struct Config {
    /// Virtual-to-real time scale: 2.0 plays the trace twice as fast,
    /// 0 = as fast as ingestion allows (throughput mode).
    double speedup = 1.0;
  };

  TraceReplayer(Config config, Cluster* cluster)
      : config_(config), cluster_(cluster) {}

  ~TraceReplayer() { stop(); }
  TraceReplayer(const TraceReplayer&) = delete;
  TraceReplayer& operator=(const TraceReplayer&) = delete;

  /// Start replaying `trace` on a background thread. One replay at a time.
  Status start(workload::Trace trace);

  /// Block until the whole trace has been ingested (not merely started).
  void wait();

  /// Abort an in-flight replay.
  void stop();

  bool running() const { return running_.load(); }
  std::uint64_t replayed() const { return replayed_.load(); }

 private:
  void run(workload::Trace trace);

  Config config_;
  Cluster* cluster_;  // not owned
  std::thread worker_;
  std::atomic<bool> running_{false};
  std::atomic<bool> cancel_{false};
  std::atomic<std::uint64_t> replayed_{0};
};

}  // namespace admire::cluster
