// ThreadedCentralSite: the central (primary) site of Fig. 2 running as real
// threads — receiving tasks, sending tasks (one per drain shard) and a
// control task inside the auxiliary unit (the paper's §3.1 task structure,
// with both data-path tasks scaled out by flight key), plus the main
// unit's EDE. Communication uses ECho-style event channels:
//   "central.data"    mirrored events -> mirror sites
//   "central.updates" EDE state updates -> regular clients
//   "ctrl.down"       CHKPT/COMMIT -> mirrors
//   "ctrl.up"         CHKPT_REP <- mirrors
#pragma once

#include <condition_variable>
#include <memory>
#include <optional>
#include <thread>

#include "adapt/controller.h"
#include "checkpoint/coordinator.h"
#include "cluster/tx_stage.h"
#include "common/bounded_queue.h"
#include "common/clock.h"
#include "common/cpu_work.h"
#include "echo/channel.h"
#include "metrics/metrics.h"
#include "mirror/main_unit_core.h"
#include "mirror/mirroring_api.h"
#include "mirror/pipeline_core.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "serve/request_handler.h"

namespace admire::cluster {

struct CentralSiteConfig {
  rules::MirroringParams params;
  std::optional<adapt::AdaptationPolicy> adaptation;
  std::size_t num_streams = 2;
  std::size_t inbox_capacity = 8192;
  /// Receive-side parallelism: the pipeline splits rule/coalescer/status
  /// state into this many flight-keyed shards (0 = auto, hardware
  /// concurrency capped at ShardedPipelineCore::kMaxAutoShards). Rule
  /// decisions are invariant to the shard count.
  std::size_t rx_shards = 0;
  /// Receiving tasks draining the ingest inboxes. Events route to inbox
  /// hash(flight) % rx_threads, so per-flight order is preserved for any
  /// thread count; clamped to >= 1.
  std::size_t rx_threads = 1;
  /// Send-side parallelism: the drain (coalescer release, send-rule work,
  /// backup accounting) splits into this many flight-keyed drain shards,
  /// each with its own sending task thread (0 = auto, same clamp as
  /// rx_shards, additionally capped at the rx shard count). Send decisions
  /// and backup contents are invariant to the drain shard count; 1 (the
  /// default) is the classic single sending task.
  std::size_t drain_shards = 1;
  /// Optional artificial CPU burn per processed event, emulating the
  /// paper-era business-logic cost in real time (examples use this).
  Nanos burn_per_event = 0;
  /// Metrics registry to instrument into (null = no instrumentation).
  /// Must outlive the site.
  obs::Registry* obs = nullptr;
  /// Trace one data event in N through the pipeline stages (0 = tracing
  /// off). Only meaningful when `obs` is set.
  std::uint32_t trace_sample_every = 0;
  /// Per-destination transmit outbox capacity in events (0 = unbounded)
  /// and the policy applied when a destination hits it. See TxStage.
  std::size_t tx_queue_cap = 0;
  TxPolicy tx_policy = TxPolicy::kBlock;
  /// Serving-plane knobs (admission gate + snapshot cache); see SERVING.md.
  /// The central site serves requests too — it is the primary mirror.
  serve::ServeConfig serve;
};

class ThreadedCentralSite {
 public:
  ThreadedCentralSite(CentralSiteConfig config,
                      std::shared_ptr<echo::ChannelRegistry> registry,
                      std::shared_ptr<Clock> clock, std::size_t num_mirrors);
  ~ThreadedCentralSite();

  ThreadedCentralSite(const ThreadedCentralSite&) = delete;
  ThreadedCentralSite& operator=(const ThreadedCentralSite&) = delete;

  void start();
  void stop();

  /// Feed one source event (called by workload replayers / data sources).
  Status ingest(event::Event ev);

  /// Block until every ingested event has passed the full pipeline
  /// (receiving, rules, sending, EDE) and the coalescer has been flushed.
  void drain();

  /// Explicitly run the checkpointing procedure (also triggered
  /// automatically every checkpoint_every sent events).
  void trigger_checkpoint();

  mirror::ShardedPipelineCore& core() { return core_; }
  mirror::MainUnitCore& main_unit() { return main_; }
  mirror::MirroringApi& api() { return api_; }
  checkpoint::Coordinator& coordinator() { return coordinator_; }
  /// Adaptation decision maker (null when no policy is configured). The
  /// failure-detection control plane uses this to exclude suspect sites.
  adapt::AdaptationController* controller() {
    return controller_ ? &*controller_ : nullptr;
  }
  metrics::LatencyRecorder& update_delays() { return update_delays_; }
  /// Event-path tracer (null unless trace_sample_every > 0).
  obs::Tracer* tracer() { return tracer_.get(); }

  std::uint64_t ingested() const { return ingested_.load(); }
  std::uint64_t processed_by_ede() const { return ede_processed_.load(); }

  // --- Send-task accounting ----------------------------------------------
  /// Credits granted by the receiving tasks (one per event that reached the
  /// ready queue) and credits the send loop has consumed. These are credit
  /// counters, not send counters — coalescing may buffer a consumed credit
  /// without emitting a wire event; core().counters().sent is the honest
  /// wire-event count. Invariant: credits_granted() == credits_consumed() +
  /// pending_send_credits() at quiescence.
  std::uint64_t credits_granted() const { return credits_granted_.load(); }
  std::uint64_t credits_consumed() const { return credits_consumed_.load(); }
  std::uint64_t pending_send_credits() const;
  /// Send steps that emitted at least one wire event.
  std::uint64_t send_batches() const { return send_batches_.load(); }

  // --- Per-destination transmit stage -------------------------------------
  TxStage& tx() { return tx_; }
  /// Register/remove a named central.data destination with the transmit
  /// stage at runtime (mirror join/failure). start() auto-registers every
  /// destination the channel knows plus the "local" (anonymous-subscriber)
  /// path.
  void add_tx_destination(const std::string& name);
  void drop_tx_destination(const std::string& name);
  static constexpr const char* kLocalTxDestination = "local";

  /// Request servicing at the central site (it is the primary mirror).
  std::vector<event::Event> serve_request(std::uint64_t request_id,
                                          Nanos burn = 0);
  std::uint64_t pending_requests() const { return pending_requests_.load(); }

  /// Serving plane over the central EDE state; cache invalidation rides the
  /// forward sink, so answers are never staler than the central table.
  serve::RequestHandler& serving() { return serving_; }

 private:
  void recv_loop(std::size_t inbox_idx);
  void send_loop(std::size_t drain_shard);
  void control_loop();
  void dispatch(const mirror::ShardedPipelineCore::SendStep& step);
  /// One logical mirror submission: account it once on the channel, then
  /// fan it out into the per-destination outboxes.
  void publish_mirror(std::span<const event::Event> events);
  void refresh_tx_destinations();
  void handle_reply(const checkpoint::ControlMessage& reply);
  void start_round();
  Bytes evaluate_adaptation();

  struct ControlItem {
    enum class Kind { kStartRound, kReply } kind;
    checkpoint::ControlMessage msg;
  };

  CentralSiteConfig config_;
  std::shared_ptr<echo::ChannelRegistry> registry_;
  std::shared_ptr<Clock> clock_;
  const std::size_t num_mirrors_;

  mirror::ShardedPipelineCore core_;
  mirror::MainUnitCore main_;
  serve::RequestHandler serving_;
  checkpoint::Coordinator coordinator_;
  mirror::MirroringApi api_;
  std::optional<adapt::AdaptationController> controller_;
  std::unique_ptr<obs::Tracer> tracer_;

  std::shared_ptr<echo::EventChannel> data_channel_;
  std::shared_ptr<echo::EventChannel> updates_channel_;
  std::shared_ptr<echo::EventChannel> ctrl_down_;
  std::shared_ptr<echo::EventChannel> ctrl_up_;
  echo::Subscription ctrl_up_sub_;

  /// One inbox per receiving task; ingest() routes by flight hash so each
  /// flight's events stay on one rx thread (per-flight order). Keyless
  /// (control) events all land on inbox 0.
  std::vector<std::unique_ptr<BoundedQueue<event::Event>>> inboxes_;
  BoundedQueue<ControlItem> control_inbox_;

  /// One sending task per drain shard. Credits route to the drainer whose
  /// drain shard owns the granting event's rx shard, so a drainer is woken
  /// only for flights it can actually pop — and the credit conversion in
  /// send_loop never crosses drain shards. stop is set by stop() only
  /// after the recv threads have joined, so a sending task cannot exit
  /// while credits are still being granted (the PR 6 shutdown-drop fix,
  /// kept per drainer). running_ alone is not a safe exit signal.
  struct Drainer {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::uint64_t credits = 0;  // enqueued-but-unsent events, this shard
    bool stop = false;
    std::thread thread;
  };
  std::vector<std::unique_ptr<Drainer>> drainers_;
  /// The drainer responsible for an event with this flight key.
  std::size_t drainer_of_key(FlightKey key) const;

  TxStage tx_;

  std::atomic<bool> running_{false};
  std::vector<std::thread> recv_threads_;
  std::thread control_thread_;

  std::atomic<std::uint64_t> ingested_{0};
  std::atomic<std::uint64_t> recv_done_{0};
  std::atomic<std::uint64_t> credits_granted_{0};
  /// Credits the send loop consumed (drain quiesce predicate). Formerly
  /// misnamed sends_done_: it never counted wire sends — coalescing can
  /// consume a credit without emitting — so it was renamed rather than
  /// left lying.
  std::atomic<std::uint64_t> credits_consumed_{0};
  std::atomic<std::uint64_t> send_batches_{0};
  std::atomic<std::uint64_t> ede_processed_{0};
  std::atomic<std::uint64_t> pending_requests_{0};
  std::atomic<std::uint64_t> adaptation_transitions_{0};
  std::uint64_t adaptation_shed_seen_ = 0;  ///< control thread only

  /// Engaged-state after each regime flip, in decision order — the
  /// threaded counterpart of SimResult::adaptation_timeline, compared
  /// against the DES in the strategy-parity test.
  mutable std::mutex adaptation_sequence_mu_;
  std::vector<bool> adaptation_sequence_;

  metrics::LatencyRecorder update_delays_;
  obs::Histogram* request_service_ns_ = nullptr;  // null = not instrumented
  obs::ProbeGroup send_probes_;

 public:
  std::uint64_t adaptation_transitions() const {
    return adaptation_transitions_.load();
  }
  std::vector<bool> adaptation_sequence() const {
    std::lock_guard lock(adaptation_sequence_mu_);
    return adaptation_sequence_;
  }
};

}  // namespace admire::cluster
