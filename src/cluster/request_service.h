// RequestService: a queue + worker thread servicing client initial-state
// requests against some site's snapshot builder. Used to give the central
// site (the primary mirror) the same asynchronous request path mirror
// sites have built in.
#pragma once

#include <functional>
#include <thread>

#include "common/bounded_queue.h"
#include "common/clock.h"
#include "event/event.h"
#include "metrics/metrics.h"

namespace admire::cluster {

using SnapshotServicer =
    std::function<std::vector<event::Event>(std::uint64_t request_id)>;
using ServiceCallback = std::function<void(
    std::uint64_t request_id, std::vector<event::Event> snapshot_chunks)>;

class RequestService {
 public:
  RequestService(SnapshotServicer servicer, std::shared_ptr<Clock> clock,
                 std::size_t capacity = 8192)
      : servicer_(std::move(servicer)),
        clock_(std::move(clock)),
        queue_(capacity),
        latency_(kSecond) {}

  ~RequestService() { stop(); }
  RequestService(const RequestService&) = delete;
  RequestService& operator=(const RequestService&) = delete;

  void start() {
    bool expected = false;
    if (!running_.compare_exchange_strong(expected, true)) return;
    worker_ = std::thread([this] { loop(); });
  }

  void stop() {
    if (!running_.exchange(false)) return;
    queue_.close();
    if (worker_.joinable()) worker_.join();
  }

  Status submit(std::uint64_t request_id, ServiceCallback callback) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    auto status =
        queue_.push(Item{request_id, clock_->now(), std::move(callback)});
    if (!status.is_ok()) pending_.fetch_sub(1, std::memory_order_relaxed);
    return status;
  }

  std::uint64_t pending() const { return pending_.load(); }
  std::uint64_t served() const { return served_.load(); }
  metrics::LatencyRecorder& latency() { return latency_; }

 private:
  struct Item {
    std::uint64_t id;
    Nanos enqueued_at;
    ServiceCallback callback;
  };

  void loop() {
    while (auto item = queue_.pop()) {
      auto chunks = servicer_(item->id);
      pending_.fetch_sub(1, std::memory_order_relaxed);
      served_.fetch_add(1, std::memory_order_relaxed);
      latency_.add(item->enqueued_at, clock_->now() - item->enqueued_at);
      if (item->callback) item->callback(item->id, std::move(chunks));
    }
  }

  SnapshotServicer servicer_;
  std::shared_ptr<Clock> clock_;
  BoundedQueue<Item> queue_;
  std::atomic<bool> running_{false};
  std::thread worker_;
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> served_{0};
  metrics::LatencyRecorder latency_;
};

}  // namespace admire::cluster
