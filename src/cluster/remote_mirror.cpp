#include "cluster/remote_mirror.h"

#include <atomic>
#include <string>

namespace admire::cluster {

RemoteMirrorHost::RemoteMirrorHost(
    Config config, std::shared_ptr<transport::MessageLink> link)
    : registry_(std::make_shared<echo::ChannelRegistry>()),
      clock_(std::make_shared<SteadyClock>()) {
  // Local stand-ins for the central site's channels, matched BY NAME over
  // the bridge. The mirror site subscribes to them exactly as it would
  // in-process.
  auto data = registry_->create_auto("central.data", echo::ChannelRole::kData);
  auto ctrl_down =
      registry_->create_auto("ctrl.down", echo::ChannelRole::kControl);
  auto ctrl_up = registry_->create_auto("ctrl.up", echo::ChannelRole::kControl);
  (void)data;
  (void)ctrl_down;

  MirrorSiteConfig mc;
  mc.site = config.site;
  mc.burn_per_event = config.burn_per_event;
  site_ = std::make_unique<ThreadedMirrorSite>(mc, registry_, clock_);

  bridge_ = std::make_unique<echo::RemoteChannelBridge>(
      std::move(link), registry_, echo::BridgeRouting::kByName);
  // Replies (and anything else submitted on ctrl.up locally) flow back to
  // the central process.
  bridge_->export_channel(ctrl_up);
}

RemoteMirrorHost::~RemoteMirrorHost() { stop(); }

void RemoteMirrorHost::start() {
  site_->start();
  bridge_->start();
}

void RemoteMirrorHost::stop() {
  bridge_->stop();
  site_->stop();
}

void RemoteMirrorHost::drain() { site_->drain(); }

RemoteMirrorAttachment::RemoteMirrorAttachment(
    Cluster& cluster, std::shared_ptr<transport::MessageLink> link)
    : cluster_(cluster) {
  // Process-unique destination name: each remote bridge gets its own tx
  // outbox/worker at the central site, so one slow WAN link cannot stall
  // the in-process mirrors or other remotes.
  static std::atomic<std::uint64_t> next_remote{0};
  tx_destination_ =
      "remote" + std::to_string(next_remote.fetch_add(1) + 1);
  auto registry = cluster.registry();
  bridge_ = std::make_unique<echo::RemoteChannelBridge>(
      std::move(link), registry, echo::BridgeRouting::kByName);
  bridge_->export_channel(registry->by_name("central.data"), tx_destination_);
  bridge_->export_channel(registry->by_name("ctrl.down"));
  bridge_->start();
  cluster.central().add_tx_destination(tx_destination_);
  auto& coord = cluster.central().coordinator();
  (void)coord.set_expected_replies(coord.expected_replies() + 1);
  attached_ = true;
}

RemoteMirrorAttachment::~RemoteMirrorAttachment() { detach(); }

void RemoteMirrorAttachment::detach() {
  if (!attached_) return;
  attached_ = false;
  // Stop the bridge first (closes the link, unblocking a tx worker mid
  // write), then retire this destination's outbox.
  bridge_->stop();
  cluster_.central().drop_tx_destination(tx_destination_);
  auto& coord = cluster_.central().coordinator();
  auto commit = coord.set_expected_replies(coord.expected_replies() - 1);
  if (commit.has_value()) {
    cluster_.central().core().backup().trim_committed(commit->vts);
    cluster_.central().main_unit().on_commit(*commit);
    auto ctrl_down = cluster_.registry()->by_name("ctrl.down");
    if (ctrl_down) ctrl_down->submit(checkpoint::to_control_event(*commit));
  }
}

std::unique_ptr<RemoteMirrorAttachment> attach_remote_mirror(
    Cluster& cluster, std::shared_ptr<transport::MessageLink> link) {
  return std::make_unique<RemoteMirrorAttachment>(cluster, std::move(link));
}

}  // namespace admire::cluster
