#include "cluster/tx_stage.h"

#include <algorithm>
#include <utility>

namespace admire::cluster {

TxStage::TxStage(TxStageConfig config) : config_(config) {}

TxStage::~TxStage() { stop(); }

void TxStage::add_destination(const std::string& name, BatchSink sink) {
  std::lock_guard lock(mu_);
  for (const auto& box : outboxes_) {
    if (box->name == name) return;
  }
  auto box = std::make_shared<Outbox>();
  box->name = name;
  box->sink = std::move(sink);
  if (config_.obs != nullptr) {
    const std::string prefix = "tx." + name + ".";
    box->obs_enqueued = &config_.obs->counter(prefix + "enqueued_total");
    box->obs_sent = &config_.obs->counter(prefix + "sent_total");
    box->obs_dropped = &config_.obs->counter(prefix + "dropped_total");
    box->obs_stalls = &config_.obs->counter(prefix + "stalls_total");
    Outbox* raw = box.get();
    box->probes.add(*config_.obs, prefix + "depth", [raw] {
      std::lock_guard box_lock(raw->mu);
      return static_cast<double>(raw->queued_events);
    });
  }
  if (running_) spawn_worker_locked(*box);
  outboxes_.push_back(std::move(box));
}

void TxStage::remove_destination(const std::string& name) {
  std::shared_ptr<Outbox> victim;
  {
    std::lock_guard lock(mu_);
    auto it = std::find_if(outboxes_.begin(), outboxes_.end(),
                           [&](const auto& box) { return box->name == name; });
    if (it == outboxes_.end()) return;
    victim = *it;
    outboxes_.erase(it);
  }
  {
    std::lock_guard box_lock(victim->mu);
    victim->open = false;
    std::uint64_t shed = 0;
    for (const auto& batch : victim->batches) shed += batch.size();
    victim->batches.clear();
    victim->queued_events = 0;
    if (shed > 0) {
      victim->dropped.fetch_add(shed, std::memory_order_relaxed);
      if (victim->obs_dropped != nullptr) victim->obs_dropped->inc(shed);
    }
    victim->cv.notify_all();
    victim->drained_cv.notify_all();
  }
  if (victim->worker.joinable()) victim->worker.join();
  // Unregister the depth probe before the outbox dies.
  victim->probes.clear();
}

void TxStage::start() {
  std::lock_guard lock(mu_);
  if (running_) return;
  running_ = true;
  for (auto& box : outboxes_) spawn_worker_locked(*box);
}

void TxStage::stop() {
  std::vector<std::shared_ptr<Outbox>> boxes;
  {
    std::lock_guard lock(mu_);
    if (!running_) return;
    running_ = false;
    boxes = outboxes_;
  }
  for (auto& box : boxes) {
    {
      std::lock_guard box_lock(box->mu);
      box->open = false;  // queued batches still drain (flush semantics)
      box->cv.notify_all();
      box->drained_cv.notify_all();
    }
    if (box->worker.joinable()) box->worker.join();
  }
}

void TxStage::publish(std::span<const event::Event> events) {
  if (events.empty()) return;
  std::vector<std::shared_ptr<Outbox>> boxes;
  {
    std::lock_guard lock(mu_);
    boxes = outboxes_;
  }
  for (auto& box : boxes) enqueue_into(*box, events);
}

void TxStage::enqueue_into(Outbox& box, std::span<const event::Event> events) {
  const std::size_t n = events.size();
  std::unique_lock lock(box.mu);
  if (!box.open) return;
  if (config_.queue_cap > 0 && box.queued_events + n > config_.queue_cap) {
    if (config_.policy == TxPolicy::kDropOldest) {
      std::uint64_t shed = 0;
      while (!box.batches.empty() &&
             box.queued_events + n > config_.queue_cap) {
        const std::size_t victim = box.batches.front().size();
        box.batches.pop_front();
        box.queued_events -= victim;
        shed += victim;
      }
      if (shed > 0) {
        box.dropped.fetch_add(shed, std::memory_order_relaxed);
        if (box.obs_dropped != nullptr) box.obs_dropped->inc(shed);
      }
    } else {
      // kBlock: wait for the worker to make room. An oversized batch is
      // accepted once the outbox is empty so the publisher cannot deadlock
      // against a cap smaller than one SendStep.
      bool stalled = false;
      box.drained_cv.wait(lock, [&] {
        if (!box.open || box.queued_events + n <= config_.queue_cap ||
            box.batches.empty()) {
          return true;
        }
        stalled = true;
        return false;
      });
      if (stalled) {
        box.stalls.fetch_add(1, std::memory_order_relaxed);
        if (box.obs_stalls != nullptr) box.obs_stalls->inc();
      }
      if (!box.open) return;
    }
  }
  box.batches.emplace_back(events.begin(), events.end());
  box.queued_events += n;
  box.enqueued.fetch_add(n, std::memory_order_relaxed);
  if (box.obs_enqueued != nullptr) box.obs_enqueued->inc(n);
  box.cv.notify_one();
}

void TxStage::worker_loop(Outbox& box) {
  for (;;) {
    std::vector<event::Event> batch;
    {
      std::unique_lock lock(box.mu);
      box.cv.wait(lock, [&] { return !box.batches.empty() || !box.open; });
      if (box.batches.empty()) return;  // closed and fully drained
      batch = std::move(box.batches.front());
      box.batches.pop_front();
      box.queued_events -= batch.size();
      box.draining = true;
    }
    box.sink(std::span<const event::Event>(batch.data(), batch.size()));
    {
      std::lock_guard lock(box.mu);
      box.draining = false;
      box.sent.fetch_add(batch.size(), std::memory_order_relaxed);
      if (box.obs_sent != nullptr) box.obs_sent->inc(batch.size());
      box.drained_cv.notify_all();
    }
  }
}

void TxStage::spawn_worker_locked(Outbox& box) {
  if (box.worker.joinable()) return;
  {
    // A destination re-added after remove_destination() starts closed.
    std::lock_guard box_lock(box.mu);
    box.open = true;
  }
  box.worker = std::thread([this, &box] { worker_loop(box); });
}

void TxStage::quiesce() {
  std::vector<std::shared_ptr<Outbox>> boxes;
  {
    std::lock_guard lock(mu_);
    boxes = outboxes_;
  }
  for (auto& box : boxes) {
    std::unique_lock lock(box->mu);
    box->drained_cv.wait(lock, [&] {
      return (box->batches.empty() && !box->draining) || !box->open;
    });
  }
}

std::shared_ptr<TxStage::Outbox> TxStage::find(const std::string& name) const {
  std::lock_guard lock(mu_);
  for (const auto& box : outboxes_) {
    if (box->name == name) return box;
  }
  return nullptr;
}

std::vector<std::string> TxStage::destination_names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  names.reserve(outboxes_.size());
  for (const auto& box : outboxes_) names.push_back(box->name);
  return names;
}

bool TxStage::has_destination(const std::string& name) const {
  return find(name) != nullptr;
}

std::uint64_t TxStage::total_enqueued() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& box : outboxes_) {
    total += box->enqueued.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t TxStage::total_sent() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& box : outboxes_) {
    total += box->sent.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t TxStage::total_dropped() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& box : outboxes_) {
    total += box->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t TxStage::total_stalls() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& box : outboxes_) {
    total += box->stalls.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t TxStage::sent_to(const std::string& name) const {
  auto box = find(name);
  return box == nullptr ? 0 : box->sent.load(std::memory_order_relaxed);
}

std::uint64_t TxStage::dropped_from(const std::string& name) const {
  auto box = find(name);
  return box == nullptr ? 0 : box->dropped.load(std::memory_order_relaxed);
}

std::size_t TxStage::depth_of(const std::string& name) const {
  auto box = find(name);
  if (box == nullptr) return 0;
  std::lock_guard lock(box->mu);
  return box->queued_events;
}

}  // namespace admire::cluster
