#include "cluster/replayer.h"

namespace admire::cluster {

Status TraceReplayer::start(workload::Trace trace) {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return err(StatusCode::kInvalidArgument, "replay already in progress");
  }
  cancel_.store(false);
  replayed_.store(0);
  if (worker_.joinable()) worker_.join();
  worker_ = std::thread([this, t = std::move(trace)]() mutable {
    run(std::move(t));
  });
  return Status::ok();
}

void TraceReplayer::run(workload::Trace trace) {
  const auto start = std::chrono::steady_clock::now();
  for (auto& item : trace.items) {
    if (cancel_.load(std::memory_order_acquire)) break;
    if (config_.speedup > 0.0) {
      const auto due =
          start + std::chrono::nanoseconds(static_cast<Nanos>(
                      static_cast<double>(item.at) / config_.speedup));
      std::this_thread::sleep_until(due);
    }
    if (!cluster_->ingest(std::move(item.ev)).is_ok()) break;
    replayed_.fetch_add(1, std::memory_order_relaxed);
  }
  running_.store(false, std::memory_order_release);
}

void TraceReplayer::wait() {
  if (worker_.joinable()) worker_.join();
}

void TraceReplayer::stop() {
  cancel_.store(true, std::memory_order_release);
  if (worker_.joinable()) worker_.join();
  running_.store(false);
}

}  // namespace admire::cluster
