// ControlPlane: the self-healing layer of the threaded cluster. Each
// mirror gets a dedicated out-of-band heartbeat link (in-process
// MessageLink pair, central end wrapped in a faultinject::FaultyLink so
// tests and bench/fig_failover can kill or degrade a mirror's control
// traffic deterministically). A monitor thread drains the links into the
// fd::FailureDetector, polls its suspicion state machine, and reacts to
// transitions:
//
//   suspect   -> LoadBalancer degraded + excluded from adaptation decisions
//   dead      -> LoadBalancer down, Cluster::fail_mirror() (when auto_fail),
//                optional timed auto-rejoin
//   rejoining -> a replacement mirror bootstraps via join_new_mirror();
//                its first hysteresis-satisfying beats complete the rejoin
//   alive     -> LoadBalancer healthy, re-included in adaptation
//
// The same detector logic runs under the discrete-event simulator on
// virtual time (sim/sim_cluster); this class is only the wall-clock
// driver around it.
#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/types.h"
#include "faultinject/faulty_link.h"
#include "faultinject/schedule.h"
#include "fd/detector.h"

namespace admire::cluster {

class Cluster;

struct ControlPlaneConfig {
  fd::DetectorConfig detector;
  /// React to a dead declaration by calling Cluster::fail_mirror().
  bool auto_fail = true;
  /// After a dead declaration, automatically bootstrap a replacement
  /// mirror `rejoin_after` later (0 = immediately on the next tick).
  bool auto_rejoin = false;
  Nanos rejoin_after = 0;
  /// Monitor thread tick; also bounds fault-schedule resolution.
  std::chrono::milliseconds poll_interval{5};
  /// Seed for the per-mirror FaultyLink decorators (mirror i uses
  /// fault_seed + i so links draw independent deterministic sequences).
  std::uint64_t fault_seed = 0xFA17;
  /// Fault script applied on the monitor thread, `at` relative to start().
  faultinject::Schedule schedule;
};

class ControlPlane {
 public:
  /// One completed failover, dead declaration to rejoin completion.
  struct RejoinRecord {
    SiteId dead_site = 0;
    SiteId new_site = 0;
    Nanos dead_at = 0;
    Nanos rejoined_at = 0;
  };

  ControlPlane(ControlPlaneConfig config, Cluster& cluster);
  ~ControlPlane();

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  /// Wire every existing mirror and start the monitor thread.
  void start();
  void stop();

  /// Wire mirror `i` into the control plane: heartbeat link pair, central
  /// FaultyLink, heartbeat thread on the mirror, detector tracking.
  /// Called by start() for initial mirrors and by rejoin for new ones.
  void attach_mirror(std::size_t i);

  /// Central-side fault decorator over mirror `i`'s heartbeat link (the
  /// handle scenarios use to kill/degrade a mirror's control traffic).
  faultinject::FaultyLink& fault(std::size_t i);

  /// Operator-initiated replacement of dead mirror `i` (same path the
  /// auto/scheduled rejoin takes). Returns the new mirror's index.
  Result<std::size_t> rejoin_mirror(std::size_t i);

  fd::FailureDetector& detector() { return detector_; }
  std::vector<RejoinRecord> rejoin_records() const;

 private:
  struct MirrorCtl {
    std::size_t index = 0;  ///< Cluster mirror index
    SiteId site = 0;
    std::shared_ptr<faultinject::FaultyLink> link;  ///< central receive end
    bool failed = false;       ///< fail_mirror() already ran for this site
    Nanos dead_at = 0;
    bool rejoin_pending = false;
    Nanos rejoin_due = 0;
  };

  void monitor_loop();
  void drain_links(Nanos now, std::vector<fd::Transition>& out);
  void react(const std::vector<fd::Transition>& transitions, Nanos now);
  void apply_due_schedule(Nanos now);
  void run_pending_rejoins(Nanos now);
  /// Wiring only (link pair + FaultyLink + heartbeat thread + ctl entry);
  /// detector registration is the caller's choice (track vs begin_rejoin).
  SiteId wire_mirror(std::size_t i);
  Result<std::size_t> do_rejoin(SiteId dead_site, Nanos now);

  ControlPlaneConfig config_;
  Cluster& cluster_;
  fd::FailureDetector detector_;
  std::shared_ptr<Clock> clock_;
  Nanos epoch_ = 0;  ///< clock reading at start(); schedule `at` is relative

  mutable std::mutex mu_;
  std::vector<MirrorCtl> ctls_;
  std::vector<RejoinRecord> rejoins_;
  obs::Histogram* rejoin_ns_ = nullptr;  ///< fd.rejoin_time_ns
  /// schedule.expanded(), consumed front-to-back as virtual due times pass.
  std::vector<faultinject::ScheduledFault> actions_;
  std::size_t schedule_cursor_ = 0;

  std::thread monitor_thread_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_ = false;
  bool started_ = false;
};

}  // namespace admire::cluster
