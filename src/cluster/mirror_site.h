// ThreadedMirrorSite: a secondary mirror site — auxiliary unit (receive
// mirrored events, relay control traffic) + main unit (EDE) + the request
// service that is "a mirror site's primary task" (§3.1): answering client
// initial-state requests from the locally replicated operational state.
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <thread>

#include "adapt/controller.h"
#include "common/bounded_queue.h"
#include "common/clock.h"
#include "common/cpu_work.h"
#include "echo/channel.h"
#include "metrics/metrics.h"
#include "mirror/main_unit_core.h"
#include "mirror/mirror_aux_core.h"
#include "fd/heartbeat.h"
#include "obs/registry.h"
#include "recovery/recovery.h"
#include "serve/request_handler.h"
#include "transport/link.h"

namespace admire::cluster {

struct MirrorSiteConfig {
  SiteId site = 1;
  std::size_t inbox_capacity = 8192;
  std::size_t request_capacity = 8192;
  Nanos burn_per_event = 0;    ///< artificial EDE cost (real-time emulation)
  Nanos burn_per_request = 0;  ///< artificial snapshot-service cost
  /// Serving-plane knobs (admission gate + snapshot cache); see SERVING.md.
  serve::ServeConfig serve;
  /// Metrics registry to instrument into (null = no instrumentation).
  /// Must outlive the site.
  obs::Registry* obs = nullptr;
};

/// Completion callback for a serviced client request.
using RequestCallback =
    std::function<void(std::uint64_t request_id,
                       std::vector<event::Event> snapshot_chunks)>;

class ThreadedMirrorSite {
 public:
  /// Wires itself to the central site's channels in `registry`
  /// ("central.data", "ctrl.down", "ctrl.up") and creates its own
  /// "mirror<N>.updates" output channel.
  ThreadedMirrorSite(MirrorSiteConfig config,
                     std::shared_ptr<echo::ChannelRegistry> registry,
                     std::shared_ptr<Clock> clock);
  ~ThreadedMirrorSite();

  ThreadedMirrorSite(const ThreadedMirrorSite&) = delete;
  ThreadedMirrorSite& operator=(const ThreadedMirrorSite&) = delete;

  void start();
  void stop();

  /// Control plane: start a heartbeat thread that sends an encoded
  /// fd::Heartbeat (liveness + queue depth + last-applied progress) over
  /// `out` every `interval` ns. Callable before or after start(); stops
  /// with stop(). Send failures are ignored — a dead control link must
  /// never take down the data path (that asymmetry is the whole point of
  /// out-of-band heartbeats).
  void start_heartbeats(std::shared_ptr<transport::MessageLink> out,
                        Nanos interval);

  std::uint64_t heartbeats_sent() const { return hb_seq_.load(); }

  /// Enqueue a client initial-state request; the callback fires on the
  /// request-service thread when the snapshot is ready.
  Status submit_request(std::uint64_t request_id, RequestCallback callback);

  /// Wait until all mirrored events received so far are folded into state.
  void drain();

  /// Recovery (call before start()): install a donor's package — restore
  /// the snapshot, replay the suffix, and arm a RejoinFilter so live
  /// events already covered by the restore point are skipped. The site
  /// must have been constructed (subscribed) *before* the package was
  /// built, so no event can fall in the gap.
  Status seed_from(const recovery::RecoveryPackage& package);

  /// Chunked recovery (call before start()): fold one donor state chunk
  /// into the local table. Live events meanwhile buffer in the inbox (the
  /// subscription exists from construction) and are filtered at start.
  Status install_chunk(const recovery::StateChunk& chunk);

  /// Chunked recovery (call before start(), after the last chunk): arm a
  /// range-anchored RejoinFilter from the completed transfer and seed EDE
  /// progress with the final capture anchor — the chunked analog of
  /// seed_from()'s restore point.
  Status arm_rejoin_filter(std::vector<recovery::RejoinFilter::Range> ranges,
                           const event::VectorTimestamp& as_of);

  std::uint64_t rejoin_skipped() const {
    return rejoin_filter_ ? rejoin_filter_->skipped() : 0;
  }

  SiteId site() const { return config_.site; }
  mirror::MirrorAuxCore& aux() { return aux_; }
  mirror::MainUnitCore& main_unit() { return main_; }
  /// Serving plane over this site's replicated state. Its snapshot cache is
  /// invalidated by the event loop after every fold, so answers are never
  /// staler than the local status table.
  serve::RequestHandler& serving() { return serving_; }
  metrics::LatencyRecorder& request_latency() { return request_latency_; }

  std::uint64_t pending_requests() const { return pending_requests_.load(); }
  std::uint64_t events_processed() const { return processed_.load(); }
  /// Mirrored events delivered to this site's inbox (counted at the channel
  /// subscription, before the event loop folds them into aux state).
  std::uint64_t events_received() const { return received_.load(); }
  std::uint64_t requests_served() const { return served_.load(); }
  /// Copy of the currently installed function (updated by adaptation
  /// directives arriving on the control channel).
  rules::MirrorFunctionSpec installed_spec() const {
    std::lock_guard lock(spec_mu_);
    return installed_spec_;
  }

 private:
  void event_loop();
  void request_loop();
  void heartbeat_loop();
  void on_control(const checkpoint::ControlMessage& msg);

  MirrorSiteConfig config_;
  std::shared_ptr<echo::ChannelRegistry> registry_;
  std::shared_ptr<Clock> clock_;

  mirror::MirrorAuxCore aux_;
  mirror::MainUnitCore main_;
  serve::RequestHandler serving_;
  std::uint64_t shed_reported_ = 0;  ///< control thread only (kShedRate delta)
  adapt::DirectiveApplier applier_;
  mutable std::mutex spec_mu_;
  rules::MirrorFunctionSpec installed_spec_;
  std::unique_ptr<recovery::RejoinFilter> rejoin_filter_;

  std::shared_ptr<echo::EventChannel> updates_channel_;
  std::shared_ptr<echo::EventChannel> ctrl_up_;
  echo::Subscription data_sub_;
  echo::Subscription ctrl_down_sub_;

  BoundedQueue<event::Event> inbox_;
  struct PendingRequest {
    std::uint64_t id;
    Nanos enqueued_at;
    RequestCallback callback;
  };
  BoundedQueue<PendingRequest> request_queue_;

  std::atomic<bool> running_{false};
  std::thread event_thread_;
  std::thread request_thread_;

  std::shared_ptr<transport::MessageLink> hb_link_;
  Nanos hb_interval_ = 0;
  std::thread hb_thread_;
  std::mutex hb_mu_;
  std::condition_variable hb_cv_;
  bool hb_stop_ = false;
  std::atomic<std::uint64_t> hb_seq_{0};
  std::atomic<Nanos> last_applied_{0};

  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> pending_requests_{0};
  std::atomic<std::uint64_t> served_{0};

  metrics::LatencyRecorder request_latency_;
  obs::Histogram* request_service_ns_ = nullptr;  // null = not instrumented
  obs::ProbeGroup probes_;
};

}  // namespace admire::cluster
