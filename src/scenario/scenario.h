// Scenario library + strategy × scenario matrix runner (ROADMAP item 1).
//
// A Scenario is a named, fully deterministic experiment: an event/request
// workload (harness::RunSpec + extra scenario-shaped request arrivals), an
// optional failure-detection config and fault script, and serving-plane
// knobs. The library covers the situations RDMSim-style strategy
// comparisons need — diurnal load, flash crowds, sustained overload,
// correlated mirror failures, one-way partitions, lossy/slow WAN links —
// and the ScenarioRunner plays every adaptation strategy against every
// scenario on the DES, scoring each run into a ScoreCard. Same seed →
// bit-identical scorecards, so the matrix is a CI artifact
// (bench/fig_scenarios → BENCH_scenarios.json), not a flaky benchmark.
#pragma once

#include <string>
#include <vector>

#include "adapt/strategy.h"
#include "fd/detector.h"
#include "harness/experiments.h"

namespace admire::scenario {

/// One named deterministic experiment.
struct Scenario {
  std::string name;
  std::string description;
  harness::RunSpec spec;  ///< events + base request load
  /// Scenario-shaped request arrivals merged on top of the spec's load
  /// (diurnal wave, flash crowd spike, ...).
  workload::RequestTrace extra_requests;
  /// Failure detection + fault script (empty = healthy cluster).
  std::optional<fd::DetectorConfig> fd;
  faultinject::Schedule faults;
  bool auto_rejoin = false;
  Nanos rejoin_after = 0;
  double control_loss = 0.0;  ///< per-control-message drop probability
  /// Run the serving plane (admission gate + cache) so shed-rate signals
  /// feed the strategies; sized by serve_max_in_flight.
  bool serving = false;
  std::size_t serve_max_in_flight = 64;
};

/// One strategy's performance under one scenario. Doubles are exact-equal
/// comparable here because the DES is deterministic: the same seed must
/// reproduce the same card bit-for-bit.
struct ScoreCard {
  std::string scenario;
  std::string strategy;
  double update_p50_ms = 0.0;  ///< central EDE update delay
  double update_p99_ms = 0.0;
  double mirror_p99_ms = 0.0;  ///< what mirror-attached clients see
  std::uint64_t transitions = 0;      ///< regime flips (oscillation)
  double engaged_fraction = 0.0;      ///< time engaged / total time
  std::uint64_t requests_served = 0;
  std::uint64_t requests_shed = 0;    ///< RETRY_AFTER answers
  std::uint64_t requests_dropped = 0; ///< clients that exhausted retries
  std::size_t rejoins = 0;
  double rejoin_ms_mean = 0.0;        ///< dead -> back-alive interval

  bool operator==(const ScoreCard&) const = default;
};

/// The paper-flavoured base policy every strategy run shares: pending /
/// ready-queue thresholds (used by ThresholdStrategy), fnA normally and
/// fnB (coalescing+overwriting) when engaged.
adapt::AdaptationPolicy default_scenario_policy();

/// All four strategy configurations, threshold first.
std::vector<adapt::StrategyConfig> all_strategies();

/// The standard library: ≥6 scenarios, all derived deterministically from
/// `seed`.
std::vector<Scenario> standard_scenarios(std::uint64_t seed = 42);

// Individual generators (composable in custom matrices).
Scenario diurnal_load(std::uint64_t seed);
Scenario flash_crowd(std::uint64_t seed);
Scenario sustained_overload(std::uint64_t seed);
Scenario correlated_failures(std::uint64_t seed);
Scenario one_way_partition(std::uint64_t seed);
Scenario lossy_wan(std::uint64_t seed);
Scenario slow_wan(std::uint64_t seed);

/// Sinusoidal-rate arrivals (day/night wave) via Lewis thinning:
/// rate(t) = base + amplitude * (1 + sin(2π t / period - π/2)) / 2,
/// i.e. starts at `base`, peaks at base + amplitude mid-period.
workload::RequestTrace diurnal_requests(double base_per_second,
                                        double amplitude_per_second,
                                        Nanos period, Nanos duration,
                                        std::uint64_t seed);

struct MatrixConfig {
  std::vector<adapt::StrategyConfig> strategies = all_strategies();
  adapt::AdaptationPolicy base_policy = default_scenario_policy();
};

/// Runs each strategy against each scenario on the DES.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(MatrixConfig config = {})
      : config_(std::move(config)) {}

  /// One cell of the matrix.
  ScoreCard run_one(const Scenario& scenario,
                    const adapt::StrategyConfig& strategy) const;

  /// The full matrix, scenario-major: for each scenario, every strategy.
  std::vector<ScoreCard> run_matrix(
      const std::vector<Scenario>& scenarios) const;

  const MatrixConfig& config() const { return config_; }

 private:
  MatrixConfig config_;
};

}  // namespace admire::scenario
